// Adversarial index-family shootout: the shapes where the paper's
// interval labeling pays Theta(n^2) — the Fig 3.6 complete-bipartite
// crossing and a hub-and-spoke DAG — measured across all three snapshot
// index families (intervals, tree covers, 2-hop labels) plus what the
// auto selector picks.  Emits label bytes, build time, and point-probe
// latency per family, and per graph the bytes ratio intervals/auto that
// the hot-metrics manifest gates (direction "higher": auto must keep
// beating forced intervals by a wide margin on these shapes).

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/compressed_closure.h"
#include "core/hop_label_index.h"
#include "core/index_family.h"
#include "core/tree_cover_index.h"
#include "graph/generators.h"

namespace {

using namespace trel;
using bench_util::Fmt;

struct FamilyRun {
  int64_t label_bytes = 0;
  double build_ms = 0.0;
  double us_per_probe = 0.0;
  int64_t hits = 0;  // Keeps the probe loop from being optimized away.
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Builds one family's index and drives `probes` random point queries
// through it.  The probe callback owns the index so each family pays its
// own memory-access pattern, nothing else.
FamilyRun Measure(const Digraph& graph, int64_t probes, IndexFamily family) {
  FamilyRun run;
  const auto build_start = std::chrono::steady_clock::now();
  std::function<bool(NodeId, NodeId)> probe;
  StatusOr<CompressedClosure> closure = CompressedClosure();
  TreeCoverIndex trees;
  HopLabelIndex hop;
  switch (family) {
    case IndexFamily::kIntervals: {
      closure = CompressedClosure::Build(graph);
      TREL_CHECK(closure.ok());
      run.label_bytes = closure->ArenaByteSize();
      probe = [&closure](NodeId u, NodeId v) { return closure->Reaches(u, v); };
      break;
    }
    case IndexFamily::kTrees: {
      trees = TreeCoverIndex::Build(graph);
      run.label_bytes = trees.LabelBytes();
      probe = [&trees](NodeId u, NodeId v) { return trees.Reaches(u, v); };
      break;
    }
    case IndexFamily::kHop: {
      hop = HopLabelIndex::Build(graph);
      run.label_bytes = hop.LabelBytes();
      probe = [&hop](NodeId u, NodeId v) { return hop.Reaches(u, v); };
      break;
    }
  }
  run.build_ms = MsSince(build_start);

  Random rng(7);
  const NodeId n = graph.NumNodes();
  std::vector<std::pair<NodeId, NodeId>> pairs(
      static_cast<size_t>(probes));
  for (auto& [u, v] : pairs) {
    u = static_cast<NodeId>(rng.Uniform(static_cast<uint64_t>(n)));
    v = static_cast<NodeId>(rng.Uniform(static_cast<uint64_t>(n)));
  }
  const auto probe_start = std::chrono::steady_clock::now();
  for (const auto& [u, v] : pairs) run.hits += probe(u, v) ? 1 : 0;
  run.us_per_probe =
      MsSince(probe_start) * 1000.0 / static_cast<double>(probes);
  return run;
}

}  // namespace

int main() {
  const bool smoke = bench_util::SmokeMode();
  const int64_t probes = smoke ? 2000 : 200000;

  // The two adversarial shapes, smoke-shrunk to stay under the CI cap.
  const NodeId bip = static_cast<NodeId>(bench_util::ScaleN(250, 60));
  const NodeId hub_sources = static_cast<NodeId>(bench_util::ScaleN(900, 90));
  const NodeId hub_sinks = static_cast<NodeId>(bench_util::ScaleN(700, 70));
  std::vector<std::pair<std::string, Digraph>> graphs;
  graphs.emplace_back("fig3_6_bipartite", CompleteBipartite(bip, bip));
  graphs.emplace_back("hub_spine", HubDag(hub_sources, 8, hub_sinks, 10));

  std::printf("Adversarial shapes: index families vs forced intervals\n\n");
  bench_util::Table table({"graph", "family", "label_bytes", "build_ms",
                           "us_per_probe", "selected"});
  bench_util::BenchReport report("micro_adversarial");
  report.config()
      .Set("smoke", smoke)
      .Set("probes", probes)
      .Set("bipartite_width", static_cast<int64_t>(bip))
      .Set("hub_sources", static_cast<int64_t>(hub_sources))
      .Set("hub_sinks", static_cast<int64_t>(hub_sinks));

  for (const auto& [graph_name, graph] : graphs) {
    auto closure = CompressedClosure::Build(graph);
    TREL_CHECK(closure.ok());
    const IndexFamily picked =
        SelectIndexFamily(graph, closure->TotalIntervals());

    int64_t intervals_bytes = 0;
    int64_t auto_bytes = 0;
    double auto_us = 0.0;
    for (const IndexFamily family :
         {IndexFamily::kIntervals, IndexFamily::kTrees, IndexFamily::kHop}) {
      const FamilyRun run = Measure(graph, probes, family);
      if (family == IndexFamily::kIntervals) intervals_bytes = run.label_bytes;
      if (family == picked) {
        auto_bytes = run.label_bytes;
        auto_us = run.us_per_probe;
      }
      const std::string row_name =
          graph_name + "/" + IndexFamilyName(family);
      table.AddRow({graph_name, IndexFamilyName(family), Fmt(run.label_bytes),
                    Fmt(run.build_ms), Fmt(run.us_per_probe, 4),
                    family == picked ? "auto" : ""});
      report.AddRow()
          .Set("name", row_name)
          .Set("label_bytes", run.label_bytes)
          .Set("build_ms", run.build_ms)
          .Set("us_per_probe", run.us_per_probe)
          .Set("hits", run.hits)
          .Set("selected", family == picked);
    }
    // The ratio row the manifest gates: how many times smaller the
    // auto-selected family's labels are than forced intervals.
    report.AddRow()
        .Set("name", graph_name + "/auto_vs_intervals")
        .Set("auto_family", IndexFamilyName(picked))
        .Set("bytes_intervals_over_auto",
             static_cast<double>(intervals_bytes) /
                 static_cast<double>(auto_bytes))
        .Set("auto_us_per_probe", auto_us);
  }
  table.Print();
  if (!report.WriteIfEnabled()) return 1;
  return 0;
}
