// Section 3.3 (end): "We finally performed experiments in all cases to
// assess the benefits of interval merging.  We found the additional
// compression obtained was rather small, usually less than 5%."

#include <cstdio>

#include "bench/bench_util.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"

int main() {
  using namespace trel;
  using bench_util::Fmt;

  std::printf("Adjacent-interval merging benefit (paper: usually <5%%)\n\n");
  bench_util::Table table(
      {"nodes", "degree", "intervals", "merged", "reduction%"});
  const std::vector<NodeId> sizes = bench_util::SmokeMode()
                                        ? std::vector<NodeId>{100, 200}
                                        : std::vector<NodeId>{200, 500, 1000};
  for (NodeId n : sizes) {
    for (double degree : {1.0, 2.0, 4.0, 8.0}) {
      int64_t plain_total = 0, merged_total = 0;
      for (int seed = 0; seed < 3; ++seed) {
        Digraph graph = RandomDag(n, degree, 4000 + seed);
        ClosureOptions plain_options;
        auto plain = CompressedClosure::Build(graph, plain_options);
        ClosureOptions merged_options;
        merged_options.labeling.merge_adjacent = true;
        auto merged = CompressedClosure::Build(graph, merged_options);
        if (!plain.ok() || !merged.ok()) return 1;
        plain_total += plain->TotalIntervals();
        merged_total += merged->TotalIntervals();
      }
      table.AddRow(
          {Fmt(static_cast<int64_t>(n)), Fmt(degree, 1), Fmt(plain_total),
           Fmt(merged_total),
           Fmt(100.0 * (plain_total - merged_total) / plain_total)});
    }
  }
  table.Print();
  return 0;
}
