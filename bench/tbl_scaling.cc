// Scaling beyond the paper's 1000-node experiments: build time and
// storage as the graph grows to 10^5 nodes ("the space of concepts in a
// knowledge base can easily become quite large").  Alg1's predecessor
// bitsets are Theta(n^2) bits, so the optimal cover is measured to 10k
// nodes and the DFS-cover heuristic carries the larger sizes.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"

int main() {
  using namespace trel;
  using bench_util::Fmt;

  std::printf("Scaling (degree 2 random DAGs)\n\n");
  bench_util::Table table({"nodes", "strategy", "build_ms", "intervals",
                           "ivls/node"});
  const std::vector<NodeId> sizes =
      bench_util::SmokeMode()
          ? std::vector<NodeId>{100, 200}
          : std::vector<NodeId>{1000, 5000, 10000, 50000, 100000};
  for (NodeId n : sizes) {
    Digraph graph = RandomDag(n, 2.0, 11000);
    for (TreeCoverStrategy strategy :
         {TreeCoverStrategy::kOptimal, TreeCoverStrategy::kDfs}) {
      if (strategy == TreeCoverStrategy::kOptimal && n > 10000) continue;
      ClosureOptions options;
      options.strategy = strategy;
      Stopwatch watch;
      auto closure = CompressedClosure::Build(graph, options);
      if (!closure.ok()) return 1;
      table.AddRow({Fmt(static_cast<int64_t>(n)),
                    TreeCoverStrategyName(strategy),
                    Fmt(watch.ElapsedSeconds() * 1000.0, 1),
                    Fmt(closure->TotalIntervals()),
                    Fmt(static_cast<double>(closure->TotalIntervals()) / n)});
    }
  }
  table.Print();
  return 0;
}
