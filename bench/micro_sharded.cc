// Sharded write-path shootout (DESIGN.md §"Sharded query service"): on
// the clustered 50k-node DAG the partitioner exists for, measure a full
// publish of the corpus (end-to-end Load: closure build + export +
// arena + swap) and a forced-optimal steady-state republish through the
// monolithic QueryService against the sharded service at K in {1,2,4}
// — K writer threads each publishing their own shard — plus the
// read-side toll the boundary layer charges: single Reaches and
// 4096-pair BatchReaches latency at K=4 over K=1.  The hot-metrics
// manifest gates the k4-over-mono full-publish speedup (direction
// "higher"; the acceptance bar is >= 2x at full size) and both
// read-latency ratios (the bar is within 2x of single-shard).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "graph/digraph.h"
#include "graph/generators.h"
#include "service/query_service.h"
#include "service/sharded_service.h"

namespace {

using namespace trel;
using bench_util::Fmt;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// One representative parent per shard, so every rep dirties every
// shard's writer before the publish fan-out.
std::vector<NodeId> ParentPerShard(const ShardedQueryService& service,
                                   NodeId num_nodes) {
  std::vector<NodeId> parents(static_cast<size_t>(service.num_shards()),
                              kNoNode);
  for (NodeId v = 0; v < num_nodes; ++v) {
    NodeId& slot = parents[static_cast<size_t>(service.ShardOf(v))];
    if (slot == kNoNode) slot = v;
  }
  return parents;
}

struct PublishRun {
  double load_ms = 0.0;
  double publish_ms = 0.0;  // Best-of-reps full republish.
};

// Monolithic baseline: end-to-end Load, then best-of-reps forced-optimal
// full publishes, each preceded by one dirty leaf so Publish() cannot
// no-op.
PublishRun MeasureMonoPublish(const Digraph& graph, int reps) {
  ServiceOptions options;
  options.num_workers = 0;
  options.delta_publish = false;  // Every publish is a full rebuild.
  options.publish_strategy = PublishStrategySetting::kForceOptimal;
  QueryService service(options);
  PublishRun run;
  auto start = std::chrono::steady_clock::now();
  TREL_CHECK(service.Load(graph).ok());
  run.load_ms = MsSince(start);
  for (int r = 0; r < reps; ++r) {
    TREL_CHECK(service.AddLeafUnder(0).ok());
    start = std::chrono::steady_clock::now();
    service.Publish();
    const double ms = MsSince(start);
    if (r == 0 || ms < run.publish_ms) run.publish_ms = ms;
  }
  return run;
}

// Sharded write path: dirty every shard, then K writer threads each
// PublishShard their own shard concurrently (the boundary republish
// rides on whichever thread reaches it first; the rest skip clean).
PublishRun MeasureShardedPublish(ShardedQueryService* service,
                                 const Digraph& graph, int reps) {
  PublishRun run;
  auto start = std::chrono::steady_clock::now();
  TREL_CHECK(service->Load(graph).ok());
  run.load_ms = MsSince(start);
  const std::vector<NodeId> parents =
      ParentPerShard(*service, graph.NumNodes());
  for (int r = 0; r < reps; ++r) {
    for (NodeId parent : parents) {
      if (parent != kNoNode) TREL_CHECK(service->AddLeafUnder(parent).ok());
    }
    start = std::chrono::steady_clock::now();
    std::vector<std::thread> writers;
    writers.reserve(static_cast<size_t>(service->num_shards()));
    for (int s = 0; s < service->num_shards(); ++s) {
      writers.emplace_back([service, s] { service->PublishShard(s); });
    }
    for (std::thread& w : writers) w.join();
    const double ms = MsSince(start);
    if (r == 0 || ms < run.publish_ms) run.publish_ms = ms;
  }
  return run;
}

struct ReadRun {
  double single_us = 0.0;          // Per single Reaches().
  double batch_us_per_pair = 0.0;  // Per pair inside 4096-pair batches.
};

ReadRun MeasureReads(const ShardedQueryService& service, NodeId num_nodes,
                     int64_t singles, int batches, int batch_size,
                     uint64_t seed) {
  Random rng(seed);
  auto pick = [&]() {
    return static_cast<NodeId>(rng.Uniform(static_cast<uint64_t>(num_nodes)));
  };
  ReadRun run;
  uint64_t sink = 0;  // Defeats dead-code elimination of the queries.
  auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < singles; ++i) {
    sink += service.Reaches(pick(), pick()) ? 1 : 0;
  }
  run.single_us = MsSince(start) * 1000.0 / static_cast<double>(singles);
  std::vector<std::pair<NodeId, NodeId>> pairs(
      static_cast<size_t>(batch_size));
  double batch_ms = 0.0;
  for (int b = 0; b < batches; ++b) {
    for (auto& p : pairs) p = {pick(), pick()};
    start = std::chrono::steady_clock::now();
    const std::vector<uint8_t> bits = service.BatchReaches(pairs);
    batch_ms += MsSince(start);
    for (uint8_t bit : bits) sink += bit;
  }
  run.batch_us_per_pair =
      batch_ms * 1000.0 /
      static_cast<double>(static_cast<int64_t>(batches) * batch_size);
  if (sink == 0xffffffffffffffffULL) std::printf("unreachable\n");
  return run;
}

}  // namespace

int main() {
  // TREL_PUBLISH in the environment would override the forced tiers
  // below (the ci.sh publish matrix exports it) — this bench forces its
  // own, so drop it.
  unsetenv("TREL_PUBLISH");
  const bool smoke = bench_util::SmokeMode();
  // Full size: 16 clusters of 3125 nodes (50k total, ~150k arcs) with 3
  // gateways per cluster and 8% cross-cluster arcs — the partitioner's
  // home turf.  Smoke keeps the shape at 1/25 the cluster size.
  const int num_clusters = 16;
  const NodeId cluster_size = smoke ? 125 : 3125;
  const double avg_degree = 3.0;
  const int gateways = 3;
  const double cross_fraction = 0.08;
  const int reps = static_cast<int>(bench_util::ScaleReps(3));
  const int64_t singles = smoke ? 2000 : 20000;
  const int batches = smoke ? 2 : 8;
  const int batch_size = 4096;
  const Digraph graph = ClusteredDag(num_clusters, cluster_size, avg_degree,
                                     gateways, cross_fraction, /*seed=*/17);

  const PublishRun mono = MeasureMonoPublish(graph, reps);

  const std::vector<int> shard_counts = {1, 2, 4};
  std::vector<PublishRun> sharded_runs;
  std::vector<std::unique_ptr<ShardedQueryService>> services;
  for (int k : shard_counts) {
    ShardedServiceOptions options;
    options.num_shards = k;
    options.shard.delta_publish = false;
    options.shard.publish_strategy = PublishStrategySetting::kForceOptimal;
    services.push_back(std::make_unique<ShardedQueryService>(options));
    sharded_runs.push_back(
        MeasureShardedPublish(services.back().get(), graph, reps));
  }

  const NodeId n = graph.NumNodes();
  const ReadRun read_k1 =
      MeasureReads(*services[0], n, singles, batches, batch_size, /*seed=*/5);
  const ReadRun read_k4 =
      MeasureReads(*services[2], n, singles, batches, batch_size, /*seed=*/5);

  // Full-corpus publish throughput: end-to-end Load is the honest
  // measure (closure build + export + arena + swap for the whole graph);
  // the republish column isolates the steady-state export/swap cost,
  // where the sharded win is the smaller label volume, not parallelism.
  const double load_speedup = mono.load_ms / sharded_runs[2].load_ms;
  const double republish_speedup =
      mono.publish_ms / sharded_runs[2].publish_ms;
  const double single_ratio = read_k4.single_us / read_k1.single_us;
  const double batch_ratio =
      read_k4.batch_us_per_pair / read_k1.batch_us_per_pair;

  std::printf("Sharded write path on ClusteredDag(%d, %d, %.1f, %d, %.2f): "
              "%d nodes, %lld arcs\n\n",
              num_clusters, static_cast<int>(cluster_size), avg_degree,
              gateways, cross_fraction, static_cast<int>(n),
              static_cast<long long>(graph.NumArcs()));
  bench_util::Table table({"config", "load_ms", "full_publish_ms"});
  table.AddRow({"mono", Fmt(mono.load_ms), Fmt(mono.publish_ms)});
  for (size_t i = 0; i < shard_counts.size(); ++i) {
    table.AddRow({"k" + std::to_string(shard_counts[i]),
                  Fmt(sharded_runs[i].load_ms),
                  Fmt(sharded_runs[i].publish_ms)});
  }
  table.Print();
  std::printf("\nfull publish speedup (mono/k4 load):  %.2fx\n", load_speedup);
  std::printf("republish speedup (mono/k4):          %.2fx\n",
              republish_speedup);
  std::printf("single Reaches us (k1, k4):  %.3f, %.3f (ratio %.2fx)\n",
              read_k1.single_us, read_k4.single_us, single_ratio);
  std::printf("batch us/pair (k1, k4):      %.3f, %.3f (ratio %.2fx)\n",
              read_k1.batch_us_per_pair, read_k4.batch_us_per_pair,
              batch_ratio);

  bench_util::BenchReport report("micro_sharded");
  report.config()
      .Set("smoke", smoke)
      .Set("num_clusters", num_clusters)
      .Set("cluster_size", static_cast<int64_t>(cluster_size))
      .Set("avg_degree", avg_degree)
      .Set("gateways", gateways)
      .Set("cross_fraction", cross_fraction)
      .Set("nodes", static_cast<int64_t>(n))
      .Set("arcs", graph.NumArcs())
      .Set("reps", reps)
      .Set("singles", singles)
      .Set("batches", batches)
      .Set("batch_size", batch_size);
  report.AddRow()
      .Set("name", "publish/mono")
      .Set("load_ms", mono.load_ms)
      .Set("publish_ms", mono.publish_ms);
  for (size_t i = 0; i < shard_counts.size(); ++i) {
    report.AddRow()
        .Set("name", "publish/k" + std::to_string(shard_counts[i]))
        .Set("load_ms", sharded_runs[i].load_ms)
        .Set("publish_ms", sharded_runs[i].publish_ms);
  }
  report.AddRow()
      .Set("name", "read/k1")
      .Set("single_us", read_k1.single_us)
      .Set("batch_us_per_pair", read_k1.batch_us_per_pair);
  report.AddRow()
      .Set("name", "read/k4")
      .Set("single_us", read_k4.single_us)
      .Set("batch_us_per_pair", read_k4.batch_us_per_pair);
  // The gated rows: partitioned full publishes must stay ahead of the
  // monolith, and the boundary layer's read toll must not creep.
  report.AddRow()
      .Set("name", "publish/k4_over_mono")
      .Set("load_speedup", load_speedup)
      .Set("republish_speedup", republish_speedup);
  report.AddRow()
      .Set("name", "read/k4_over_k1")
      .Set("single_ratio", single_ratio)
      .Set("batch_ratio", batch_ratio);
  if (!report.WriteIfEnabled()) return 1;
  return 0;
}
