#ifndef TREL_BENCH_GBENCH_REPORT_H_
#define TREL_BENCH_GBENCH_REPORT_H_

// JSON bridge for the google-benchmark binaries: a ConsoleReporter
// subclass that mirrors every completed run into a bench_util::BenchReport
// row (name, iterations, µs/op, ops/s), so micro benches emit the same
// BENCH_<name>.json files as the manual table benches.  Console output is
// unchanged — the subclass forwards to the base after capturing.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace trel {
namespace bench_util {

class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      JsonObject& row = report_->AddRow();
      row.Set("name", run.benchmark_name());
      row.Set("iterations", static_cast<int64_t>(run.iterations));
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      row.Set("us_per_op", run.real_accumulated_time * 1e6 / iters);
      row.Set("ops_per_sec", run.real_accumulated_time > 0
                                 ? iters / run.real_accumulated_time
                                 : 0.0);
      row.Set("cpu_us_per_op", run.cpu_accumulated_time * 1e6 / iters);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
};

// Drop-in replacement for BENCHMARK_MAIN()'s body: runs the registered
// benchmarks with a capturing reporter and writes BENCH_<name>.json when
// TREL_BENCH_JSON is set.  Returns the process exit code.
inline int RunBenchmarksWithJson(const std::string& bench_name, int argc,
                                 char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchReport report(bench_name);
  report.config().Set("smoke", SmokeMode());
  JsonCapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return report.WriteIfEnabled() ? 0 : 1;
}

}  // namespace bench_util
}  // namespace trel

#endif  // TREL_BENCH_GBENCH_REPORT_H_
