// Section 4 measurement: cost of incremental updates against the
// alternative the paper worries about — recomputing the compressed
// closure from scratch after every change.
//
// Paper's claim: "the incremental cost of adding new nodes and
// relationships should be less than recomputing the transitive closure";
// leaf additions are constant-time, non-tree arcs propagate only to
// affected predecessors, and hierarchy refinement with reserved gaps
// needs no propagation at all.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/compressed_closure.h"
#include "core/dynamic_closure.h"
#include "graph/generators.h"

namespace {

// Microseconds per operation over `ops` operations of `fn`.
template <typename Fn>
double MicrosPerOp(int ops, Fn&& fn) {
  trel::Stopwatch watch;
  for (int i = 0; i < ops; ++i) fn(i);
  return static_cast<double>(watch.ElapsedMicros()) / ops;
}

}  // namespace

int main() {
  using namespace trel;
  using bench_util::Fmt;

  std::printf("Incremental update cost vs rebuild (microseconds/op)\n\n");
  bench_util::Table table({"nodes", "add_leaf", "add_arc", "remove_arc",
                           "refine", "rebuild"});

  const std::vector<NodeId> sizes =
      bench_util::SmokeMode() ? std::vector<NodeId>{100, 200}
                              : std::vector<NodeId>{200, 500, 1000, 2000};
  for (NodeId n : sizes) {
    Digraph graph = RandomDag(n, 2.0, 6000 + n);

    auto built = DynamicClosure::Build(graph);
    if (!built.ok()) return 1;
    DynamicClosure closure = std::move(built).value();
    Random rng(1);

    const double add_leaf = MicrosPerOp(200, [&](int) {
      const NodeId parent = static_cast<NodeId>(
          rng.Uniform(static_cast<uint64_t>(closure.NumNodes())));
      (void)closure.AddLeafUnder(parent);
    });

    const double add_arc = MicrosPerOp(100, [&](int) {
      for (;;) {
        const NodeId a = static_cast<NodeId>(
            rng.Uniform(static_cast<uint64_t>(closure.NumNodes())));
        const NodeId b = static_cast<NodeId>(
            rng.Uniform(static_cast<uint64_t>(closure.NumNodes())));
        if (closure.AddArc(a, b).ok()) break;
      }
    });

    const double remove_arc = MicrosPerOp(50, [&](int) {
      auto arcs = closure.graph().Arcs();
      const auto& [a, b] = arcs[rng.Uniform(arcs.size())];
      (void)closure.RemoveArc(a, b);
    });

    // Refinement on a freshly built index (full reserve pools).
    auto fresh = DynamicClosure::Build(graph);
    if (!fresh.ok()) return 1;
    DynamicClosure refiner = std::move(fresh).value();
    const double refine = MicrosPerOp(100, [&](int i) {
      const NodeId child = static_cast<NodeId>((i * 13 + 7) % n);
      (void)refiner.RefineAbove(child,
                                refiner.graph().InNeighbors(child));
    });

    const double rebuild = MicrosPerOp(5, [&](int) {
      auto rebuilt = CompressedClosure::Build(graph);
      if (!rebuilt.ok()) std::exit(1);
    });

    table.AddRow({Fmt(static_cast<int64_t>(n)), Fmt(add_leaf), Fmt(add_arc),
                  Fmt(remove_arc), Fmt(refine), Fmt(rebuild)});
  }
  table.Print();
  std::printf(
      "\nNote: remove_arc re-propagates interval sets (correctness-first "
      "implementation of the paper's deletion algorithms) but skips the "
      "tree-cover recomputation that dominates rebuild.\n");
  return 0;
}
