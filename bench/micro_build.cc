// Construction-cost microbenchmarks: "the complexity of computing the
// compressed transitive closure of a graph is the same as the computation
// of its transitive closure ... compression is a one-time activity."

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/chain_cover.h"
#include "bench/bench_util.h"
#include "bench/gbench_report.h"
#include "core/chain_propagator.h"
#include "core/compressed_closure.h"
#include "core/tree_cover.h"
#include "graph/generators.h"
#include "graph/reachability.h"

namespace trel {
namespace {

// Full-size args normally; one tiny fixed-iteration shape in CI smoke
// mode (see bench_util::SmokeMode).
void BuildSizes(benchmark::internal::Benchmark* b) {
  if (bench_util::SmokeMode()) {
    b->Arg(200)->Iterations(5);
    return;
  }
  b->Arg(500)->Arg(1000)->Arg(2000);
}

void BM_BuildCompressedOptimal(benchmark::State& state) {
  Digraph graph = RandomDag(static_cast<NodeId>(state.range(0)), 2.0, 8100);
  for (auto _ : state) {
    auto closure = CompressedClosure::Build(graph);
    benchmark::DoNotOptimize(closure);
  }
}
BENCHMARK(BM_BuildCompressedOptimal)->Apply(BuildSizes);

void BM_BuildCompressedDfsCover(benchmark::State& state) {
  Digraph graph = RandomDag(static_cast<NodeId>(state.range(0)), 2.0, 8100);
  ClosureOptions options;
  options.strategy = TreeCoverStrategy::kDfs;
  for (auto _ : state) {
    auto closure = CompressedClosure::Build(graph, options);
    benchmark::DoNotOptimize(closure);
  }
}
BENCHMARK(BM_BuildCompressedDfsCover)->Apply(BuildSizes);

void BM_BuildFullClosureMatrix(benchmark::State& state) {
  Digraph graph = RandomDag(static_cast<NodeId>(state.range(0)), 2.0, 8100);
  for (auto _ : state) {
    ReachabilityMatrix matrix(graph);
    benchmark::DoNotOptimize(matrix);
  }
}
BENCHMARK(BM_BuildFullClosureMatrix)->Apply(BuildSizes);

// The chain-fast publish tier's label build on its home shape (a
// chain-structured DAG, node count = range(0)), against the Alg1-optimal
// build of the SAME graph below — the per-publish trade DESIGN.md §4d
// quantifies.  Chain count scales with size so eligibility holds.
void BM_BuildChainFast(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Digraph graph = ChainedDag(std::max(2, static_cast<int>(n / 125)),
                             std::min<NodeId>(n, 125), 3.0, 8100);
  for (auto _ : state) {
    auto build = BuildChainLabeling(graph, LabelingOptions{});
    benchmark::DoNotOptimize(build);
  }
}
BENCHMARK(BM_BuildChainFast)->Apply(BuildSizes);

void BM_BuildOptimalOnChainedDag(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Digraph graph = ChainedDag(std::max(2, static_cast<int>(n / 125)),
                             std::min<NodeId>(n, 125), 3.0, 8100);
  for (auto _ : state) {
    auto closure = CompressedClosure::Build(graph);
    benchmark::DoNotOptimize(closure);
  }
}
BENCHMARK(BM_BuildOptimalOnChainedDag)->Apply(BuildSizes);

void BM_BuildChainCoverGreedy(benchmark::State& state) {
  Digraph graph = RandomDag(static_cast<NodeId>(state.range(0)), 2.0, 8100);
  for (auto _ : state) {
    auto cover = ChainCover::Build(graph, ChainCover::Method::kGreedy);
    benchmark::DoNotOptimize(cover);
  }
}
BENCHMARK(BM_BuildChainCoverGreedy)
    ->Apply([](benchmark::internal::Benchmark* b) {
      if (bench_util::SmokeMode()) {
        b->Arg(200)->Iterations(5);
        return;
      }
      b->Arg(500)->Arg(1000);
    });

}  // namespace
}  // namespace trel

int main(int argc, char** argv) {
  return trel::bench_util::RunBenchmarksWithJson("micro_build", argc, argv);
}
