// Construction-cost microbenchmarks: "the complexity of computing the
// compressed transitive closure of a graph is the same as the computation
// of its transitive closure ... compression is a one-time activity."

#include <benchmark/benchmark.h>

#include "baselines/chain_cover.h"
#include "core/compressed_closure.h"
#include "core/tree_cover.h"
#include "graph/generators.h"
#include "graph/reachability.h"

namespace trel {
namespace {

void BM_BuildCompressedOptimal(benchmark::State& state) {
  Digraph graph = RandomDag(static_cast<NodeId>(state.range(0)), 2.0, 8100);
  for (auto _ : state) {
    auto closure = CompressedClosure::Build(graph);
    benchmark::DoNotOptimize(closure);
  }
}
BENCHMARK(BM_BuildCompressedOptimal)->Arg(500)->Arg(1000)->Arg(2000);

void BM_BuildCompressedDfsCover(benchmark::State& state) {
  Digraph graph = RandomDag(static_cast<NodeId>(state.range(0)), 2.0, 8100);
  ClosureOptions options;
  options.strategy = TreeCoverStrategy::kDfs;
  for (auto _ : state) {
    auto closure = CompressedClosure::Build(graph, options);
    benchmark::DoNotOptimize(closure);
  }
}
BENCHMARK(BM_BuildCompressedDfsCover)->Arg(500)->Arg(1000)->Arg(2000);

void BM_BuildFullClosureMatrix(benchmark::State& state) {
  Digraph graph = RandomDag(static_cast<NodeId>(state.range(0)), 2.0, 8100);
  for (auto _ : state) {
    ReachabilityMatrix matrix(graph);
    benchmark::DoNotOptimize(matrix);
  }
}
BENCHMARK(BM_BuildFullClosureMatrix)->Arg(500)->Arg(1000)->Arg(2000);

void BM_BuildChainCoverGreedy(benchmark::State& state) {
  Digraph graph = RandomDag(static_cast<NodeId>(state.range(0)), 2.0, 8100);
  for (auto _ : state) {
    auto cover = ChainCover::Build(graph, ChainCover::Method::kGreedy);
    benchmark::DoNotOptimize(cover);
  }
}
BENCHMARK(BM_BuildChainCoverGreedy)->Arg(500)->Arg(1000);

}  // namespace
}  // namespace trel

BENCHMARK_MAIN();
