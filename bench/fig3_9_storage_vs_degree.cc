// Figure 3.9: storage required for a 1000-node random graph as a function
// of average out-degree, as a multiple of the original graph's storage.
//
// Paper's reported shape: the full transitive closure grows steeply up to
// degree ~4 (most of the ~495,000 possible pairs present) and then
// flattens/dips relative to the growing graph; the compressed closure
// rises a little at low degree and then *decreases*, eventually dropping
// below the size of the original graph itself.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"

int main() {
  using namespace trel;
  using bench_util::Fmt;

  const NodeId kNodes = static_cast<NodeId>(bench_util::ScaleN(1000));
  const int kSeeds = static_cast<int>(bench_util::ScaleReps(3, 1));

  std::printf("Figure 3.9: storage vs average degree (n=%d, %d seeds)\n",
              kNodes, kSeeds);
  std::printf("units: graph=arcs, closure=pairs, compressed=2*intervals\n\n");

  bench_util::Table table({"degree", "graph", "closure", "compressed",
                           "closure/graph", "compressed/graph"});
  for (int degree : {1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 30, 50}) {
    double graph_units = 0, closure_units = 0, compressed_units = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Digraph graph =
          RandomDag(kNodes, degree, 1000 + seed);
      ReachabilityMatrix matrix(graph);
      auto closure = CompressedClosure::Build(graph);
      if (!closure.ok()) return 1;
      graph_units += static_cast<double>(graph.NumArcs());
      closure_units += static_cast<double>(matrix.NumClosurePairs());
      compressed_units += static_cast<double>(closure->StorageUnits());
    }
    graph_units /= kSeeds;
    closure_units /= kSeeds;
    compressed_units /= kSeeds;
    table.AddRow({Fmt(static_cast<int64_t>(degree)), Fmt(graph_units, 0),
                  Fmt(closure_units, 0), Fmt(compressed_units, 0),
                  Fmt(closure_units / graph_units),
                  Fmt(compressed_units / graph_units)});
  }
  table.Print();
  return 0;
}
