// Forward-looking comparison: the 1989 exact interval compression vs a
// GRAIL-style randomized labeling (VLDB 2010), the technique's best-known
// descendant.  GRAIL stores exactly k intervals per node but answers
// "maybe" and falls back to pruned DFS; the 1989 scheme stores a
// variable number of exact intervals and never traverses.

#include <cstdio>

#include "baselines/grail_index.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"

int main() {
  using namespace trel;
  using bench_util::Fmt;

  const NodeId kNodes = static_cast<NodeId>(bench_util::ScaleN(2000));
  const int kQueries = static_cast<int>(bench_util::ScaleN(20000, 1000));

  std::printf(
      "Exact interval compression (1989) vs GRAIL-style labeling "
      "(n=%d, %d random queries)\n\n",
      kNodes, kQueries);
  bench_util::Table table({"degree", "k", "trel_ivls", "grail_ivls",
                           "fallback%", "dfs_visits/q", "trel_us/q",
                           "grail_us/q"});

  for (double degree : {2.0, 4.0}) {
    Digraph graph = RandomDag(kNodes, degree, 9700);
    auto exact = CompressedClosure::Build(graph);
    if (!exact.ok()) return 1;

    for (int k : {1, 2, 4}) {
      auto grail = GrailIndex::Build(graph, k, 42);
      if (!grail.ok()) return 1;

      Random rng(7);
      std::vector<std::pair<NodeId, NodeId>> queries;
      queries.reserve(kQueries);
      for (int q = 0; q < kQueries; ++q) {
        queries.emplace_back(static_cast<NodeId>(rng.Uniform(kNodes)),
                             static_cast<NodeId>(rng.Uniform(kNodes)));
      }

      Stopwatch exact_watch;
      int64_t exact_true = 0;
      for (const auto& [u, v] : queries) {
        exact_true += exact->Reaches(u, v) ? 1 : 0;
      }
      const double exact_us =
          static_cast<double>(exact_watch.ElapsedMicros()) / kQueries;

      grail->ResetQueryStats();
      Stopwatch grail_watch;
      int64_t grail_true = 0;
      for (const auto& [u, v] : queries) {
        grail_true += grail->Reaches(u, v) ? 1 : 0;
      }
      const double grail_us =
          static_cast<double>(grail_watch.ElapsedMicros()) / kQueries;
      if (grail_true != exact_true) {
        std::printf("MISMATCH: exact %lld vs grail %lld\n",
                    static_cast<long long>(exact_true),
                    static_cast<long long>(grail_true));
        return 1;
      }

      const auto& stats = grail->query_stats();
      table.AddRow(
          {Fmt(degree, 1), Fmt(static_cast<int64_t>(k)),
           Fmt(exact->TotalIntervals()),
           Fmt(static_cast<int64_t>(k) * kNodes),
           Fmt(100.0 * stats.dfs_fallbacks / stats.queries),
           Fmt(static_cast<double>(stats.dfs_nodes_visited) / stats.queries),
           Fmt(exact_us, 3), Fmt(grail_us, 3)});
    }
  }
  table.Print();
  return 0;
}
