// Observability overhead microbenchmarks: the tracing-off acceptance
// budget is < 1% on single Reaches and on a 4096-query batch (DESIGN.md
// §5), so the sample_period=0 rows here are gated by bench_diff.py and
// the sampled rows (1-in-1024, 1-in-64) document what turning the
// tracer on actually costs.  google-benchmark binary.

#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bench/gbench_report.h"
#include "common/random.h"
#include "graph/generators.h"
#include "service/query_service.h"
#include "service/sharded_service.h"

namespace trel {
namespace {

// Worker pool off: batches run inline so the numbers measure the query
// path plus the tracing gate, not fan-out scheduling.
QueryService* SharedService(int64_t nodes, double degree) {
  static QueryService* service = nullptr;
  static int64_t built_nodes = -1;
  if (built_nodes != nodes) {
    delete service;
    ServiceOptions options;
    options.num_workers = 0;
    service = new QueryService(options);
    if (!service->Load(RandomDag(static_cast<NodeId>(nodes), degree, 8000))
             .ok()) {
      return nullptr;
    }
    built_nodes = nodes;
  }
  return service;
}

void SmokeOrFull(benchmark::internal::Benchmark* b,
                 const std::vector<std::vector<int64_t>>& full_args,
                 const std::vector<int64_t>& smoke_args) {
  if (bench_util::SmokeMode()) {
    b->Args(smoke_args)->Iterations(20);
    return;
  }
  for (const auto& args : full_args) b->Args(args);
}

// Args: {nodes, degree, sample_period}.  Period 0 is the default
// tracing-off configuration whose cost must stay within 1% of the
// pre-obs service Reaches path.  Each iteration answers a block of 512
// single queries so the timed quantum is microseconds — one query per
// iteration is too short for the 20-iteration smoke gate to be stable.
void BM_ServiceReaches(benchmark::State& state) {
  constexpr int kQueriesPerIter = 512;
  QueryService* service =
      SharedService(state.range(0), static_cast<double>(state.range(1)));
  if (service == nullptr) {
    state.SkipWithError("service load failed");
    return;
  }
  service->tracer().SetSamplePeriod(
      static_cast<uint32_t>(state.range(2)));
  Random rng(1);
  const NodeId n = service->Snapshot()->NumNodes();
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(kQueriesPerIter);
  for (int i = 0; i < kQueriesPerIter; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(n)),
                       static_cast<NodeId>(rng.Uniform(n)));
  }
  // Untimed warmup: fault in the arena pages and warm the caches, or
  // the first of 20 smoke iterations dominates the measurement.
  for (const auto& [u, v] : pairs) {
    benchmark::DoNotOptimize(service->Reaches(u, v));
  }
  for (auto _ : state) {
    for (const auto& [u, v] : pairs) {
      benchmark::DoNotOptimize(service->Reaches(u, v));
    }
  }
  service->tracer().SetSamplePeriod(0);
  state.SetItemsProcessed(state.iterations() * kQueriesPerIter);
}
BENCHMARK(BM_ServiceReaches)->Apply([](benchmark::internal::Benchmark* b) {
  SmokeOrFull(b, {{50000, 4, 0}, {50000, 4, 1024}, {50000, 4, 64}},
              {200, 2, 0});
});

// Args: {nodes, degree, batch_size, sample_period}.  One iteration
// answers the whole batch; ops are individual lookups.  A sampled batch
// pays the per-query tag array plus up to 32 trace records, amortized
// over `period` batches.
void BM_ServiceBatchReaches(benchmark::State& state) {
  QueryService* service =
      SharedService(state.range(0), static_cast<double>(state.range(1)));
  if (service == nullptr) {
    state.SkipWithError("service load failed");
    return;
  }
  const int64_t batch = state.range(2);
  service->tracer().SetSamplePeriod(
      static_cast<uint32_t>(state.range(3)));
  Random rng(1);
  const NodeId n = service->Snapshot()->NumNodes();
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(batch);
  for (int64_t i = 0; i < batch; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(n)),
                       static_cast<NodeId>(rng.Uniform(n)));
  }
  benchmark::DoNotOptimize(service->BatchReaches(pairs));  // untimed warmup
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->BatchReaches(pairs));
  }
  service->tracer().SetSamplePeriod(0);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ServiceBatchReaches)
    ->Apply([](benchmark::internal::Benchmark* b) {
      SmokeOrFull(b,
                  {{50000, 4, 4096, 0},
                   {50000, 4, 4096, 1024},
                   {50000, 4, 4096, 64},
                   {50000, 4, 128, 0}},
                  {200, 2, 4096, 0});
    });

// A clustered graph is the sharded front end's home shape; K=4 with
// 2K clusters keeps most pairs shard-local while the gateways keep the
// boundary bitset and hub core on the path.
ShardedQueryService* SharedShardedService(int64_t clusters,
                                          int64_t cluster_size) {
  static ShardedQueryService* service = nullptr;
  static int64_t built_clusters = -1;
  if (built_clusters != clusters) {
    delete service;
    ShardedServiceOptions options;
    options.num_shards = 4;
    service = new ShardedQueryService(options);
    if (!service
             ->Load(ClusteredDag(static_cast<int>(clusters),
                                 static_cast<NodeId>(cluster_size), 3.0,
                                 /*gateways=*/3, /*cross_fraction=*/0.08,
                                 8000))
             .ok()) {
      return nullptr;
    }
    built_clusters = clusters;
  }
  return service;
}

// Args: {clusters, cluster_size, sample_period}.  The sharded front end
// always times singles end-to-end (two clock reads feed the rollup and
// the slow log), so the period=0 row budgets that steady-state cost and
// the period=64 row adds per-stage attribution on sampled queries.
void BM_ShardedServiceReaches(benchmark::State& state) {
  constexpr int kQueriesPerIter = 512;
  ShardedQueryService* service =
      SharedShardedService(state.range(0), state.range(1));
  if (service == nullptr) {
    state.SkipWithError("sharded service load failed");
    return;
  }
  service->tracer().SetSamplePeriod(static_cast<uint32_t>(state.range(2)));
  Random rng(1);
  const NodeId n = static_cast<NodeId>(state.range(0) * state.range(1));
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(kQueriesPerIter);
  for (int i = 0; i < kQueriesPerIter; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(n)),
                       static_cast<NodeId>(rng.Uniform(n)));
  }
  for (const auto& [u, v] : pairs) {
    benchmark::DoNotOptimize(service->Reaches(u, v));  // untimed warmup
  }
  for (auto _ : state) {
    for (const auto& [u, v] : pairs) {
      benchmark::DoNotOptimize(service->Reaches(u, v));
    }
  }
  service->tracer().SetSamplePeriod(0);
  state.SetItemsProcessed(state.iterations() * kQueriesPerIter);
}
BENCHMARK(BM_ShardedServiceReaches)
    ->Apply([](benchmark::internal::Benchmark* b) {
      SmokeOrFull(b, {{8, 6250, 0}, {8, 6250, 64}}, {8, 25, 0});
    });

// Args: {clusters, cluster_size, batch_size, sample_period}.  Batches
// are always stage-timed (a handful of clock reads per batch); sampling
// adds the per-pair tag vector and up to 32 strided trace records.
void BM_ShardedServiceBatchReaches(benchmark::State& state) {
  ShardedQueryService* service =
      SharedShardedService(state.range(0), state.range(1));
  if (service == nullptr) {
    state.SkipWithError("sharded service load failed");
    return;
  }
  const int64_t batch = state.range(2);
  service->tracer().SetSamplePeriod(static_cast<uint32_t>(state.range(3)));
  Random rng(1);
  const NodeId n = static_cast<NodeId>(state.range(0) * state.range(1));
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(batch);
  for (int64_t i = 0; i < batch; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(n)),
                       static_cast<NodeId>(rng.Uniform(n)));
  }
  benchmark::DoNotOptimize(service->BatchReaches(pairs));  // untimed warmup
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->BatchReaches(pairs));
  }
  service->tracer().SetSamplePeriod(0);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ShardedServiceBatchReaches)
    ->Apply([](benchmark::internal::Benchmark* b) {
      SmokeOrFull(b, {{8, 6250, 4096, 0}, {8, 6250, 4096, 64}},
                  {8, 25, 4096, 0});
    });

}  // namespace
}  // namespace trel

int main(int argc, char** argv) {
  return trel::bench_util::RunBenchmarksWithJson("micro_obs_overhead", argc,
                                                 argv);
}
