// Figure 3.12: frequency distribution of the total interval count in the
// compressed closure over "all possible 8-node acyclic graphs",
// demonstrating how rare worst-case graphs are.
//
// Substitution (documented in DESIGN.md): all labeled 8-node DAGs are not
// enumerable (~7.8e11); the population behind the paper's experiment is
// the 2^28 DAGs over one fixed topological order.  We enumerate that
// population exhaustively for n=6 (2^15 graphs) and draw a large uniform
// sample for n=8; the histogram shape (sharp mode, thin right tail) is
// the paper's observation.

#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench/bench_util.h"
#include "core/labeling.h"
#include "core/tree_cover.h"
#include "graph/generators.h"

namespace {

int64_t IntervalCount(const trel::Digraph& graph) {
  auto cover =
      trel::ComputeTreeCover(graph, trel::TreeCoverStrategy::kOptimal);
  if (!cover.ok()) return -1;
  auto labels = trel::BuildLabels(graph, cover.value(), {});
  if (!labels.ok()) return -1;
  return labels->TotalIntervals();
}

void PrintHistogram(const std::map<int64_t, int64_t>& histogram,
                    int64_t total) {
  trel::bench_util::Table table({"intervals", "graphs", "percent"});
  for (const auto& [intervals, count] : histogram) {
    table.AddRow({trel::bench_util::Fmt(intervals),
                  trel::bench_util::Fmt(count),
                  trel::bench_util::Fmt(100.0 * count / total)});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trel;

  // Exhaustive for n=6.
  std::map<int64_t, int64_t> histogram;
  const int64_t total6 = EnumerateDagsOverOrder(6, [&](const Digraph& graph) {
    ++histogram[IntervalCount(graph)];
  });
  std::printf(
      "Figure 3.12a: interval-count distribution, ALL %lld 6-node DAGs "
      "over a fixed order\n\n",
      static_cast<long long>(total6));
  PrintHistogram(histogram, total6);

  // Sampled for n=8 (the paper's size).
  const int64_t samples =
      argc > 1 ? std::atoll(argv[1]) : bench_util::ScaleN(200000, 2000);
  histogram.clear();
  for (int64_t s = 0; s < samples; ++s) {
    ++histogram[IntervalCount(
        SampleDagOverOrder(8, static_cast<uint64_t>(s)))];
  }
  std::printf(
      "\nFigure 3.12b: interval-count distribution, %lld uniform samples "
      "of 8-node DAGs\n\n",
      static_cast<long long>(samples));
  PrintHistogram(histogram, samples);
  return 0;
}
