#ifndef TREL_BENCH_BENCH_UTIL_H_
#define TREL_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <string>
#include <vector>

namespace trel {
namespace bench_util {

// Minimal fixed-width table printer so every figure/table binary emits a
// uniform, diff-friendly report.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// CI smoke mode: when the TREL_BENCH_SMOKE environment variable is set
// (to anything but "0"), bench binaries shrink their problem sizes and
// durations to near-nothing so a CI job can execute every binary
// end-to-end as a does-it-run check, not a measurement.
inline bool SmokeMode() {
  const char* env = std::getenv("TREL_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Caps a problem size in smoke mode; identity otherwise.
inline int64_t ScaleN(int64_t n, int64_t smoke_cap = 200) {
  return SmokeMode() ? std::min(n, smoke_cap) : n;
}

// Caps a duration (seconds) in smoke mode; identity otherwise.
inline double ScaleSeconds(double seconds, double smoke_cap = 0.05) {
  return SmokeMode() ? std::min(seconds, smoke_cap) : seconds;
}

// Caps an iteration/repetition count in smoke mode; identity otherwise.
inline int64_t ScaleReps(int64_t reps, int64_t smoke_cap = 2) {
  return SmokeMode() ? std::min(reps, smoke_cap) : reps;
}

inline std::string Fmt(int64_t value) { return std::to_string(value); }

inline std::string Fmt(double value, int decimals = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace bench_util
}  // namespace trel

#endif  // TREL_BENCH_BENCH_UTIL_H_
