#ifndef TREL_BENCH_BENCH_UTIL_H_
#define TREL_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <string>
#include <vector>

namespace trel {
namespace bench_util {

// Minimal fixed-width table printer so every figure/table binary emits a
// uniform, diff-friendly report.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
  }

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// CI smoke mode: when the TREL_BENCH_SMOKE environment variable is set
// (to anything but "0"), bench binaries shrink their problem sizes and
// durations to near-nothing so a CI job can execute every binary
// end-to-end as a does-it-run check, not a measurement.
inline bool SmokeMode() {
  const char* env = std::getenv("TREL_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Caps a problem size in smoke mode; identity otherwise.
inline int64_t ScaleN(int64_t n, int64_t smoke_cap = 200) {
  return SmokeMode() ? std::min(n, smoke_cap) : n;
}

// Caps a duration (seconds) in smoke mode; identity otherwise.
inline double ScaleSeconds(double seconds, double smoke_cap = 0.05) {
  return SmokeMode() ? std::min(seconds, smoke_cap) : seconds;
}

// Caps an iteration/repetition count in smoke mode; identity otherwise.
inline int64_t ScaleReps(int64_t reps, int64_t smoke_cap = 2) {
  return SmokeMode() ? std::min(reps, smoke_cap) : reps;
}

inline std::string Fmt(int64_t value) { return std::to_string(value); }

inline std::string Fmt(double value, int decimals = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

// --- Machine-readable output (BENCH_<name>.json) ---------------------------
//
// Every bench can mirror its report into a small JSON file so the perf
// trajectory is tracked across PRs instead of living in terminal
// scrollback.  Emission is opt-in via the TREL_BENCH_JSON environment
// variable: unset or "0" disables it, "1" writes BENCH_<name>.json into
// the working directory, and any other value is treated as the output
// directory.  CI sets it during the bench smoke stage and uploads the
// files as artifacts.

inline const char* JsonOutputDir() {
  const char* env = std::getenv("TREL_BENCH_JSON");
  if (env == nullptr || env[0] == '\0' || (env[0] == '0' && env[1] == '\0')) {
    return nullptr;
  }
  if (env[0] == '1' && env[1] == '\0') return ".";
  return env;
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Ordered key -> scalar map rendered as one JSON object.  Values are
// stored pre-rendered so numbers stay unquoted.
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const std::string& value) {
    // append() instead of operator+ chains throughout: GCC 12's -Wrestrict
    // false-positives on the latter (see PR 2's notes on TREL_WERROR).
    std::string quoted;
    quoted.append(1, '"').append(JsonEscape(value)).append(1, '"');
    fields_.emplace_back(key, std::move(quoted));
    return *this;
  }
  JsonObject& Set(const std::string& key, const char* value) {
    return Set(key, std::string(value));
  }
  JsonObject& Set(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonObject& Set(const std::string& key, int value) {
    return Set(key, static_cast<int64_t>(value));
  }
  JsonObject& Set(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonObject& Set(const std::string& key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    fields_.emplace_back(key, buffer);
    return *this;
  }
  JsonObject& Set(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
  }

  std::string Render() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out.append(", ");
      out.append(1, '"')
          .append(JsonEscape(fields_[i].first))
          .append("\": ")
          .append(fields_[i].second);
    }
    out.append("}");
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

// One bench binary's machine-readable report: a config object (problem
// sizes, mode flags) plus an array of result rows (one per measured
// configuration, with µs/op and throughput fields as applicable).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  JsonObject& config() { return config_; }
  JsonObject& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  // Copies a printed table into rows keyed by header (cells that parse
  // cleanly as numbers are emitted unquoted).
  void AddTable(const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows) {
    for (const auto& row : rows) {
      JsonObject& obj = AddRow();
      for (size_t c = 0; c < row.size() && c < headers.size(); ++c) {
        char* end = nullptr;
        const double num = std::strtod(row[c].c_str(), &end);
        if (end != row[c].c_str() && *end == '\0') {
          obj.Set(headers[c], num);
        } else {
          obj.Set(headers[c], row[c]);
        }
      }
    }
  }

  // Writes BENCH_<name>.json when TREL_BENCH_JSON enables emission.
  // Returns false (after a perror-style message) on I/O failure so CI can
  // distinguish "disabled" from "broken".
  bool WriteIfEnabled() const {
    const char* dir = JsonOutputDir();
    if (dir == nullptr) return true;
    std::string path(dir);
    path.append("/BENCH_").append(name_).append(".json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_util: cannot write %s\n", path.c_str());
      return false;
    }
    std::string out = "{\"bench\": \"";
    out.append(JsonEscape(name_))
        .append("\", \"config\": ")
        .append(config_.Render())
        .append(", \"rows\": [");
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out.append(", ");
      out.append(rows_[i].Render());
    }
    out.append("]}\n");
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    if (!ok) std::fprintf(stderr, "bench_util: short write to %s\n", path.c_str());
    return ok;
  }

 private:
  std::string name_;
  JsonObject config_;
  std::vector<JsonObject> rows_;
};

}  // namespace bench_util
}  // namespace trel

#endif  // TREL_BENCH_BENCH_UTIL_H_
