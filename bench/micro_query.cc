// Query-latency microbenchmarks: the paper's motivating comparison of
// "a lookup instead of a graph traversal".  google-benchmark binary.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/chain_cover.h"
#include "baselines/full_closure.h"
#include "bench/bench_util.h"
#include "bench/gbench_report.h"
#include "common/random.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"

namespace trel {
namespace {

Digraph BenchGraph(int64_t nodes, double degree) {
  return RandomDag(static_cast<NodeId>(nodes), degree, 8000);
}

// Registers `full_args` normally; in smoke mode registers only
// `smoke_args` for a fixed handful of iterations so CI can execute the
// binary end-to-end as a does-it-run check.
void SmokeOrFull(benchmark::internal::Benchmark* b,
                 const std::vector<std::vector<int64_t>>& full_args,
                 const std::vector<int64_t>& smoke_args) {
  if (bench_util::SmokeMode()) {
    b->Args(smoke_args)->Iterations(20);
    return;
  }
  for (const auto& args : full_args) b->Args(args);
}

// Args: {nodes, degree}.  Degree matters a lot for the DFS baseline and
// barely at all for the index lookups — which is the point.

void BM_ReachesCompressed(benchmark::State& state) {
  Digraph graph = BenchGraph(state.range(0), static_cast<double>(state.range(1)));
  auto closure = CompressedClosure::Build(graph);
  Random rng(1);
  const NodeId n = graph.NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    const NodeId v = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(closure->Reaches(u, v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReachesCompressed)->Apply([](benchmark::internal::Benchmark* b) {
  // {50000, 4} is the acceptance configuration for the flat-arena work:
  // large enough that random label lookups fall out of L2, so layout
  // changes show up as throughput, not noise.
  SmokeOrFull(b, {{1000, 2}, {1000, 8}, {10000, 2}, {50000, 4}}, {200, 2});
});

// Args: {nodes, degree, batch_size}.  One iteration answers the whole
// batch; ops are individual lookups so ops/s compares directly with the
// single-query benchmarks above.  The pair set is fixed across
// iterations (regenerating it would time the RNG, not the kernel).
void BM_BatchReachesCompressed(benchmark::State& state) {
  Digraph graph =
      BenchGraph(state.range(0), static_cast<double>(state.range(1)));
  auto closure = CompressedClosure::Build(graph);
  Random rng(1);
  const NodeId n = graph.NumNodes();
  const int64_t batch = state.range(2);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(batch);
  for (int64_t i = 0; i < batch; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(n)),
                       static_cast<NodeId>(rng.Uniform(n)));
  }
  std::vector<uint8_t> out(batch);
  for (auto _ : state) {
    closure->BatchReaches(pairs.data(), batch, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchReachesCompressed)
    ->Apply([](benchmark::internal::Benchmark* b) {
      // {50000, 4, 4096} is the acceptance configuration for the SIMD
      // batch-engine work; the small and large batch sizes bracket the
      // grouped-kernel threshold.
      SmokeOrFull(b,
                  {{50000, 4, 128}, {50000, 4, 4096}, {50000, 4, 65536}},
                  {200, 2, 128});
    });

void BM_ReachesFullClosure(benchmark::State& state) {
  Digraph graph = BenchGraph(state.range(0), 2.0);
  FullClosure closure(graph);
  Random rng(1);
  const NodeId n = graph.NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    const NodeId v = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(closure.Reaches(u, v));
  }
}
BENCHMARK(BM_ReachesFullClosure)->Apply([](benchmark::internal::Benchmark* b) {
  SmokeOrFull(b, {{1000}, {10000}}, {200});
});

void BM_ReachesChainCover(benchmark::State& state) {
  Digraph graph = BenchGraph(state.range(0), 2.0);
  auto cover = ChainCover::Build(graph, ChainCover::Method::kGreedy);
  Random rng(1);
  const NodeId n = graph.NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    const NodeId v = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(cover->Reaches(u, v));
  }
}
BENCHMARK(BM_ReachesChainCover)->Apply([](benchmark::internal::Benchmark* b) {
  SmokeOrFull(b, {{1000}}, {200});
});

void BM_ReachesDfsTraversal(benchmark::State& state) {
  Digraph graph = BenchGraph(state.range(0), static_cast<double>(state.range(1)));
  Random rng(1);
  const NodeId n = graph.NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    const NodeId v = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(DfsReaches(graph, u, v));
  }
}
BENCHMARK(BM_ReachesDfsTraversal)->Apply([](benchmark::internal::Benchmark* b) {
  SmokeOrFull(b, {{1000, 2}, {1000, 8}, {10000, 2}}, {200, 2});
});

void BM_SuccessorsCompressed(benchmark::State& state) {
  Digraph graph = BenchGraph(state.range(0), 2.0);
  auto closure = CompressedClosure::Build(graph);
  Random rng(1);
  const NodeId n = graph.NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(closure->Successors(u));
  }
}
BENCHMARK(BM_SuccessorsCompressed)
    ->Apply([](benchmark::internal::Benchmark* b) {
      SmokeOrFull(b, {{1000}}, {200});
    });

void BM_SuccessorsDfs(benchmark::State& state) {
  Digraph graph = BenchGraph(state.range(0), 2.0);
  Random rng(1);
  const NodeId n = graph.NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(DfsReachableSet(graph, u));
  }
}
BENCHMARK(BM_SuccessorsDfs)->Apply([](benchmark::internal::Benchmark* b) {
  SmokeOrFull(b, {{1000}}, {200});
});

}  // namespace
}  // namespace trel

int main(int argc, char** argv) {
  return trel::bench_util::RunBenchmarksWithJson("micro_query", argc, argv);
}
