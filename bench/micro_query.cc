// Query-latency microbenchmarks: the paper's motivating comparison of
// "a lookup instead of a graph traversal".  google-benchmark binary.

#include <benchmark/benchmark.h>

#include "baselines/chain_cover.h"
#include "baselines/full_closure.h"
#include "common/random.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"

namespace trel {
namespace {

Digraph BenchGraph(int64_t nodes, double degree) {
  return RandomDag(static_cast<NodeId>(nodes), degree, 8000);
}

// Args: {nodes, degree}.  Degree matters a lot for the DFS baseline and
// barely at all for the index lookups — which is the point.

void BM_ReachesCompressed(benchmark::State& state) {
  Digraph graph = BenchGraph(state.range(0), static_cast<double>(state.range(1)));
  auto closure = CompressedClosure::Build(graph);
  Random rng(1);
  const NodeId n = graph.NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    const NodeId v = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(closure->Reaches(u, v));
  }
}
BENCHMARK(BM_ReachesCompressed)->Args({1000, 2})->Args({1000, 8})->Args({10000, 2});

void BM_ReachesFullClosure(benchmark::State& state) {
  Digraph graph = BenchGraph(state.range(0), 2.0);
  FullClosure closure(graph);
  Random rng(1);
  const NodeId n = graph.NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    const NodeId v = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(closure.Reaches(u, v));
  }
}
BENCHMARK(BM_ReachesFullClosure)->Arg(1000)->Arg(10000);

void BM_ReachesChainCover(benchmark::State& state) {
  Digraph graph = BenchGraph(state.range(0), 2.0);
  auto cover = ChainCover::Build(graph, ChainCover::Method::kGreedy);
  Random rng(1);
  const NodeId n = graph.NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    const NodeId v = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(cover->Reaches(u, v));
  }
}
BENCHMARK(BM_ReachesChainCover)->Arg(1000);

void BM_ReachesDfsTraversal(benchmark::State& state) {
  Digraph graph = BenchGraph(state.range(0), static_cast<double>(state.range(1)));
  Random rng(1);
  const NodeId n = graph.NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    const NodeId v = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(DfsReaches(graph, u, v));
  }
}
BENCHMARK(BM_ReachesDfsTraversal)->Args({1000, 2})->Args({1000, 8})->Args({10000, 2});

void BM_SuccessorsCompressed(benchmark::State& state) {
  Digraph graph = BenchGraph(state.range(0), 2.0);
  auto closure = CompressedClosure::Build(graph);
  Random rng(1);
  const NodeId n = graph.NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(closure->Successors(u));
  }
}
BENCHMARK(BM_SuccessorsCompressed)->Arg(1000);

void BM_SuccessorsDfs(benchmark::State& state) {
  Digraph graph = BenchGraph(state.range(0), 2.0);
  Random rng(1);
  const NodeId n = graph.NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    benchmark::DoNotOptimize(DfsReachableSet(graph, u));
  }
}
BENCHMARK(BM_SuccessorsDfs)->Arg(1000);

}  // namespace
}  // namespace trel

BENCHMARK_MAIN();
