// End-to-end knowledge-representation workload (the paper's Section 2.1
// motivation): a growing concept hierarchy serving a mix of subsumption
// queries and updates.  Compares three management strategies:
//   dynamic   — compressed closure maintained incrementally (this paper),
//   rebuild   — compressed closure recomputed after every update batch,
//   traverse  — no materialization; every query is a DFS ("simple pointer
//               chasing in the underlying data structure, the current
//               approach").

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/compressed_closure.h"
#include "core/dynamic_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"

namespace {

using namespace trel;

struct WorkloadOp {
  enum Kind { kQuery, kAddConcept, kAddIsA } kind;
  NodeId a;
  NodeId b;
};

// A session: concepts are added under random parents, extra IS-A links
// appear, and subsumption queries dominate (100 queries : 1 update).
std::vector<WorkloadOp> MakeWorkload(NodeId initial_nodes, int num_ops,
                                     uint64_t seed) {
  Random rng(seed);
  std::vector<WorkloadOp> ops;
  ops.reserve(static_cast<size_t>(num_ops));
  NodeId nodes = initial_nodes;
  for (int i = 0; i < num_ops; ++i) {
    const uint64_t dice = rng.Uniform(100);
    if (dice < 98) {
      ops.push_back({WorkloadOp::kQuery,
                     static_cast<NodeId>(rng.Uniform(nodes)),
                     static_cast<NodeId>(rng.Uniform(nodes))});
    } else if (dice == 98) {
      ops.push_back({WorkloadOp::kAddConcept,
                     static_cast<NodeId>(rng.Uniform(nodes)), kNoNode});
      ++nodes;
    } else {
      ops.push_back({WorkloadOp::kAddIsA,
                     static_cast<NodeId>(rng.Uniform(nodes)),
                     static_cast<NodeId>(rng.Uniform(nodes))});
    }
  }
  return ops;
}

}  // namespace

int main() {
  using bench_util::Fmt;

  const NodeId kInitial = static_cast<NodeId>(bench_util::ScaleN(2000));
  const int kOps = static_cast<int>(bench_util::ScaleN(200000, 2000));

  std::printf(
      "KR workload: %d initial concepts, %d ops (98%% subsumption queries, "
      "2%% updates)\n\n",
      kInitial, kOps);
  bench_util::Table table({"strategy", "total_ms", "us/op"});

  Digraph base = RandomDag(kInitial, 2.0, 12000);
  std::vector<WorkloadOp> ops = MakeWorkload(kInitial, kOps, 13);

  // Strategy 1: incremental dynamic closure.
  {
    auto closure = DynamicClosure::Build(base);
    if (!closure.ok()) return 1;
    Stopwatch watch;
    int64_t positives = 0;
    for (const WorkloadOp& op : ops) {
      switch (op.kind) {
        case WorkloadOp::kQuery:
          positives += closure->Reaches(op.a, op.b) ? 1 : 0;
          break;
        case WorkloadOp::kAddConcept:
          if (!closure->AddLeafUnder(op.a).ok()) return 1;
          break;
        case WorkloadOp::kAddIsA:
          (void)closure->AddArc(op.a, op.b);  // Cycles refused, fine.
          break;
      }
    }
    const double ms = watch.ElapsedSeconds() * 1000;
    table.AddRow({"dynamic (this paper)", Fmt(ms, 1),
                  Fmt(1000.0 * ms / kOps, 3)});
    (void)positives;
  }

  // Strategy 2: rebuild the static closure after every update.
  {
    Digraph graph = base;
    auto closure = CompressedClosure::Build(graph);
    if (!closure.ok()) return 1;
    Stopwatch watch;
    for (const WorkloadOp& op : ops) {
      switch (op.kind) {
        case WorkloadOp::kQuery:
          (void)closure->Reaches(op.a % graph.NumNodes(),
                                 op.b % graph.NumNodes());
          break;
        case WorkloadOp::kAddConcept: {
          const NodeId node = graph.AddNode();
          if (!graph.AddArc(op.a, node).ok()) return 1;
          auto rebuilt = CompressedClosure::Build(graph);
          if (!rebuilt.ok()) return 1;
          closure = std::move(rebuilt);
          break;
        }
        case WorkloadOp::kAddIsA: {
          if (!graph.AddArc(op.a, op.b).ok()) break;  // Duplicate.
          auto rebuilt = CompressedClosure::Build(graph);
          if (!rebuilt.ok()) {
            // Introduced a cycle: revert.
            if (!graph.RemoveArc(op.a, op.b).ok()) return 1;
            break;
          }
          closure = std::move(rebuilt);
          break;
        }
      }
    }
    const double ms = watch.ElapsedSeconds() * 1000;
    table.AddRow({"rebuild per update", Fmt(ms, 1),
                  Fmt(1000.0 * ms / kOps, 3)});
  }

  // Strategy 3: no materialization, DFS per query.
  {
    Digraph graph = base;
    Stopwatch watch;
    for (const WorkloadOp& op : ops) {
      switch (op.kind) {
        case WorkloadOp::kQuery:
          (void)DfsReaches(graph, op.a % graph.NumNodes(),
                           op.b % graph.NumNodes());
          break;
        case WorkloadOp::kAddConcept: {
          const NodeId node = graph.AddNode();
          if (!graph.AddArc(op.a, node).ok()) return 1;
          break;
        }
        case WorkloadOp::kAddIsA:
          if (graph.HasArc(op.a, op.b) || op.a == op.b) break;
          if (DfsReaches(graph, op.b, op.a)) break;  // Would be a cycle.
          if (!graph.AddArc(op.a, op.b).ok()) return 1;
          break;
      }
    }
    const double ms = watch.ElapsedSeconds() * 1000;
    table.AddRow({"DFS per query", Fmt(ms, 1), Fmt(1000.0 * ms / kOps, 3)});
  }

  table.Print();
  std::printf(
      "\nNote: the three strategies see slightly different graphs (each "
      "applies only the updates it can express); the comparison is about "
      "per-operation cost, not exact result equality.\n");
  return 0;
}
