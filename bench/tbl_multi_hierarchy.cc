// Related-work comparison (Section 5): Schubert et al.'s one-interval-
// per-hierarchy labeling vs the tree-cover interval compression.  The
// multi-hierarchy scheme misses cross-hierarchy paths on general DAGs
// (the paper: "the decomposition of a graph into hierarchies is not
// addressed"); this table quantifies both its storage and its
// undetected-pair rate, where the tree-cover scheme is exact by
// construction.

#include <cstdio>

#include "baselines/multi_hierarchy.h"
#include "bench/bench_util.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"

int main() {
  using namespace trel;
  using bench_util::Fmt;

  std::printf(
      "Schubert-style multi-hierarchy labeling vs tree-cover intervals\n\n");
  bench_util::Table table({"nodes", "degree", "hierarchies", "mh_storage",
                           "tree_storage", "closure_pairs", "missed_pairs",
                           "missed%"});
  const std::vector<NodeId> sizes = bench_util::SmokeMode()
                                        ? std::vector<NodeId>{100, 200}
                                        : std::vector<NodeId>{100, 300};
  for (NodeId n : sizes) {
    for (double degree : {1.0, 2.0, 4.0}) {
      Digraph graph = RandomDag(n, degree, 9100);
      auto multi = MultiHierarchyLabeling::Build(graph);
      auto tree = CompressedClosure::Build(graph);
      if (!multi.ok() || !tree.ok()) return 1;
      ReachabilityMatrix matrix(graph);

      int64_t pairs = 0, missed = 0;
      for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = 0; v < n; ++v) {
          if (u == v || !matrix.Reaches(u, v)) continue;
          ++pairs;
          if (!multi->Reaches(u, v)) ++missed;
        }
      }
      table.AddRow(
          {Fmt(static_cast<int64_t>(n)), Fmt(degree, 1),
           Fmt(static_cast<int64_t>(multi->NumHierarchies())),
           Fmt(multi->StorageUnits()), Fmt(tree->TotalIntervals()),
           Fmt(pairs), Fmt(missed),
           Fmt(pairs == 0 ? 0.0 : 100.0 * missed / pairs)});
    }
  }
  table.Print();
  return 0;
}
