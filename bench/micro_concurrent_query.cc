// Concurrent snapshot-query throughput: aggregate reachability QPS as
// reader threads scale from 1 to 8 while a single writer keeps growing
// the graph and publishing fresh snapshots.  Readers never lock — each
// acquires a snapshot handle, runs a block of point queries against it,
// then re-acquires — so aggregate throughput should scale with cores.
//
// The printed speedup is measured, not modeled: on a single-core host
// all thread counts share one core and the ratio stays near 1.
//
// A second section measures publish latency with delta publication on vs
// off: 10-arc update batches against a large DAG, where a delta publish
// ships only the dirty nodes (see DESIGN.md §4c) and a full publish
// re-exports the whole labeling.
//
// Usage: micro_concurrent_query [nodes] [seconds_per_config] [publish_nodes]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "graph/generators.h"
#include "service/query_service.h"

namespace trel {
namespace {

struct RunResult {
  int64_t queries = 0;
  double seconds = 0;
  uint64_t epochs_published = 0;
};

// Readers hammer point queries against snapshot handles (re-acquired
// every kBlock queries); the writer adds leaves and publishes as fast
// as it can.  Returns aggregate numbers over `duration_seconds`.
RunResult RunConfig(QueryService& service, int num_readers,
                    double duration_seconds) {
  constexpr int kBlock = 1024;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> hit_sink{0};  // Consumes results: no dead-code elim.
  std::vector<int64_t> counts(num_readers, 0);

  auto reader = [&](int id) {
    Random rng(static_cast<uint64_t>(id) * 7919 + 1);
    int64_t queries = 0;
    int64_t hits = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto snapshot = service.Snapshot();
      const NodeId n = snapshot->NumNodes();
      for (int i = 0; i < kBlock; ++i) {
        const NodeId u = static_cast<NodeId>(rng.Uniform(n));
        const NodeId v = static_cast<NodeId>(rng.Uniform(n));
        if (snapshot->Reaches(u, v)) ++hits;
      }
      queries += kBlock;
    }
    counts[id] = queries;
    hit_sink.fetch_add(hits, std::memory_order_relaxed);
  };

  const uint64_t epoch_before = service.Snapshot()->epoch;
  std::vector<std::thread> threads;
  threads.reserve(num_readers + 1);
  for (int t = 0; t < num_readers; ++t) threads.emplace_back(reader, t);

  std::thread writer([&] {
    Random rng(99);
    while (!stop.load(std::memory_order_relaxed)) {
      for (int j = 0; j < 8; ++j) {
        const NodeId parent = static_cast<NodeId>(
            rng.Uniform(service.Snapshot()->NumNodes()));
        (void)service.AddLeafUnder(parent);
      }
      service.Publish();
    }
  });

  Stopwatch timer;
  while (timer.ElapsedMicros() < static_cast<int64_t>(duration_seconds * 1e6)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  writer.join();

  RunResult result;
  result.seconds = static_cast<double>(timer.ElapsedMicros()) / 1e6;
  for (int64_t c : counts) result.queries += c;
  result.epochs_published = service.Snapshot()->epoch - epoch_before;
  return result;
}

struct PublishResult {
  int publishes = 0;
  double mean_micros = 0;
  double mean_delta_entries = 0;
};

// Applies `batches` update batches of `arcs_per_batch` random arcs each,
// publishing after every batch, and returns the mean wall-clock publish
// latency.  The same seed is used for both modes so they replay the same
// arc sequence.  `workers` > 0 gives the service a pool, which full
// publishes use to shard the snapshot arena build.
PublishResult RunPublishConfig(NodeId nodes, bool delta_publish, int batches,
                               int arcs_per_batch, int workers = 0) {
  ServiceOptions options;
  options.num_workers = workers;
  options.stats_on_publish = false;
  options.delta_publish = delta_publish;
  options.max_delta_publishes = batches + 1;  // No forced fulls mid-run.
  QueryService service(options);
  Status status = service.Load(RandomDag(nodes, 2.0, 8200));
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.message().c_str());
    std::exit(1);
  }

  Random rng(51);
  PublishResult result;
  int64_t total_micros = 0;
  int64_t total_entries = 0;
  for (int b = 0; b < batches; ++b) {
    int added = 0;
    while (added < arcs_per_batch) {
      const NodeId u = static_cast<NodeId>(rng.Uniform(nodes));
      const NodeId v = static_cast<NodeId>(rng.Uniform(nodes));
      if (service.AddArc(u, v).ok()) ++added;  // Cycles/dups re-rolled.
    }
    Stopwatch watch;
    service.Publish();
    total_micros += watch.ElapsedMicros();
    total_entries += service.Snapshot()->delta_entries;
  }
  result.publishes = batches;
  result.mean_micros = static_cast<double>(total_micros) / batches;
  result.mean_delta_entries = static_cast<double>(total_entries) / batches;
  return result;
}

}  // namespace
}  // namespace trel

int main(int argc, char** argv) {
  using namespace trel;
  const int64_t nodes =
      argc > 1 ? std::atoll(argv[1]) : bench_util::ScaleN(100000);
  const double seconds =
      argc > 2 ? std::atof(argv[2]) : bench_util::ScaleSeconds(1.5);
  const int64_t publish_nodes =
      argc > 3 ? std::atoll(argv[3]) : bench_util::ScaleN(50000);
  if (nodes <= 0 || seconds <= 0 || publish_nodes <= 0) {
    std::fprintf(stderr,
                 "usage: micro_concurrent_query [nodes>0] [seconds>0] "
                 "[publish_nodes>0]\n");
    return 2;
  }

  std::printf("# micro_concurrent_query: %lld-node DAG, %.1fs per config, "
              "%u hardware threads\n",
              static_cast<long long>(nodes), seconds,
              std::thread::hardware_concurrency());

  ServiceOptions options;
  options.num_workers = 0;          // Readers query snapshots directly.
  options.stats_on_publish = false;  // Keep the writer's publish loop lean.
  QueryService service(options);
  {
    Stopwatch timer;
    Digraph graph = RandomDag(static_cast<NodeId>(nodes), 2.0, 8000);
    Status status = service.Load(graph);
    if (!status.ok()) {
      std::fprintf(stderr, "load failed: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("# load+index: %.2fs\n",
                static_cast<double>(timer.ElapsedMicros()) / 1e6);
  }

  bench_util::Table table(
      {"readers", "queries", "Mqps", "speedup_vs_1", "snapshots_published"});
  double baseline_qps = 0;
  const std::vector<int> reader_counts =
      bench_util::SmokeMode() ? std::vector<int>{1, 2}
                              : std::vector<int>{1, 2, 4, 8};
  for (int readers : reader_counts) {
    RunResult r = RunConfig(service, readers, seconds);
    const double qps = static_cast<double>(r.queries) / r.seconds;
    if (readers == 1) baseline_qps = qps;
    table.AddRow({bench_util::Fmt(static_cast<int64_t>(readers)),
                  bench_util::Fmt(r.queries), bench_util::Fmt(qps / 1e6),
                  bench_util::Fmt(baseline_qps > 0 ? qps / baseline_qps : 0.0),
                  bench_util::Fmt(static_cast<int64_t>(r.epochs_published))});
  }
  table.Print();

  // --- Publish latency: full export vs delta overlay ----------------------
  const int batches = static_cast<int>(bench_util::ScaleReps(30, 3));
  const int arcs_per_batch = 10;
  std::printf(
      "\n# publish latency: %lld-node DAG, %d-arc update batches, "
      "%d publishes per mode\n",
      static_cast<long long>(publish_nodes), arcs_per_batch, batches);
  PublishResult full = RunPublishConfig(static_cast<NodeId>(publish_nodes),
                                        /*delta_publish=*/false, batches,
                                        arcs_per_batch);
  // Same full exports, but with a worker pool sharding the arena build.
  PublishResult pooled = RunPublishConfig(static_cast<NodeId>(publish_nodes),
                                          /*delta_publish=*/false, batches,
                                          arcs_per_batch, /*workers=*/2);
  PublishResult delta = RunPublishConfig(static_cast<NodeId>(publish_nodes),
                                         /*delta_publish=*/true, batches,
                                         arcs_per_batch);
  bench_util::Table publish_table(
      {"mode", "publishes", "mean_us", "delta_entries_mean"});
  publish_table.AddRow({"full", bench_util::Fmt(int64_t{full.publishes}),
                        bench_util::Fmt(full.mean_micros),
                        bench_util::Fmt(full.mean_delta_entries)});
  publish_table.AddRow({"full_pooled",
                        bench_util::Fmt(int64_t{pooled.publishes}),
                        bench_util::Fmt(pooled.mean_micros),
                        bench_util::Fmt(pooled.mean_delta_entries)});
  publish_table.AddRow({"delta", bench_util::Fmt(int64_t{delta.publishes}),
                        bench_util::Fmt(delta.mean_micros),
                        bench_util::Fmt(delta.mean_delta_entries)});
  publish_table.Print();
  std::printf("full/delta publish speedup: %.1fx\n",
              delta.mean_micros > 0 ? full.mean_micros / delta.mean_micros
                                    : 0.0);

  bench_util::BenchReport report("micro_concurrent_query");
  report.config()
      .Set("nodes", nodes)
      .Set("seconds_per_config", seconds)
      .Set("publish_nodes", publish_nodes)
      .Set("publish_batches", batches)
      .Set("arcs_per_batch", arcs_per_batch)
      .Set("smoke", bench_util::SmokeMode());
  report.AddTable(table.headers(), table.rows());
  report.AddTable(publish_table.headers(), publish_table.rows());
  return report.WriteIfEnabled() ? 0 : 1;
}
