// Tiered full-publish shootout (DESIGN.md §"Publish strategies"): on the
// chain-structured 50k-node DAG the fast tier exists for, measure the
// Alg1-optimal full build against the chain-fast build — as raw label
// builds (DynamicClosure::Build vs BuildWithChains) and as end-to-end
// forced service loads (TREL_PUBLISH=optimal vs chain through
// ServiceOptions) — plus the interval-count blowup the fast tier trades
// for its speed.  The hot-metrics manifest gates the alg1_over_chain
// speedup ratio (direction "higher"; the acceptance bar is >= 2x at full
// size) and the blowup ratio (lower is better, capped well under the
// kMaxChainEntriesPerNode backstop).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/chain_propagator.h"
#include "core/dynamic_closure.h"
#include "graph/generators.h"
#include "service/query_service.h"

namespace {

using namespace trel;
using bench_util::Fmt;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct BuildRun {
  double best_ms = 0.0;
  int64_t intervals = 0;
};

// Best-of-reps wall time for one full label build.  `chain` picks the
// tier; both paths produce a queryable DynamicClosure so the work is
// symmetric (cover + labels, no export).
BuildRun MeasureBuild(const Digraph& graph, int reps, bool chain) {
  BuildRun run;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    StatusOr<DynamicClosure> built = chain
                                         ? DynamicClosure::BuildWithChains(graph)
                                         : DynamicClosure::Build(graph);
    const double ms = MsSince(start);
    TREL_CHECK(built.ok()) << built.status().message();
    if (r == 0 || ms < run.best_ms) run.best_ms = ms;
    run.intervals = built->labels().TotalIntervals();
  }
  return run;
}

// Best-of-reps end-to-end Load (build + export + arena + swap) under a
// forced publish tier — what a production full publish actually costs.
double MeasureServiceLoad(const Digraph& graph, int reps,
                          PublishStrategySetting setting) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    ServiceOptions options;
    options.num_workers = 0;
    options.publish_strategy = setting;
    QueryService service(options);
    const auto start = std::chrono::steady_clock::now();
    TREL_CHECK(service.Load(graph).ok());
    const double ms = MsSince(start);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main() {
  // TREL_PUBLISH in the environment would override the forced settings
  // below (the ci.sh publish matrix sets it while rerunning the test
  // binaries) — this bench measures both tiers itself, so drop it.
  unsetenv("TREL_PUBLISH");
  const bool smoke = bench_util::SmokeMode();
  // Full size: the 50-chain, 1000-node-per-chain, degree-4 DAG from
  // EXPERIMENTS.md (50k nodes, 200k arcs).  Smoke keeps the shape (and
  // chain eligibility) at 1/25 the node count.
  const int num_chains = smoke ? 16 : 50;
  const NodeId chain_length = smoke ? 125 : 1000;
  const double avg_degree = 4.0;
  const int reps = static_cast<int>(bench_util::ScaleReps(5));
  const Digraph graph =
      ChainedDag(num_chains, chain_length, avg_degree, /*seed=*/13);

  auto signals = AnalyzeChains(graph);
  TREL_CHECK(signals.ok());
  TREL_CHECK(signals->eligible);

  const BuildRun optimal = MeasureBuild(graph, reps, /*chain=*/false);
  const BuildRun chain = MeasureBuild(graph, reps, /*chain=*/true);
  const double load_optimal_ms =
      MeasureServiceLoad(graph, reps, PublishStrategySetting::kForceOptimal);
  const double load_chain_ms =
      MeasureServiceLoad(graph, reps, PublishStrategySetting::kForceChain);

  const double build_speedup = optimal.best_ms / chain.best_ms;
  const double load_speedup = load_optimal_ms / load_chain_ms;
  const double blowup = static_cast<double>(chain.intervals) /
                        static_cast<double>(optimal.intervals);

  std::printf("Full-publish tiers on ChainedDag(%d, %d, %.1f): %d nodes, "
              "%lld arcs, %d chains\n\n",
              num_chains, static_cast<int>(chain_length), avg_degree,
              static_cast<int>(graph.NumNodes()),
              static_cast<long long>(graph.NumArcs()),
              signals->num_chains);
  bench_util::Table table(
      {"tier", "build_ms", "service_load_ms", "intervals"});
  table.AddRow({"optimal", Fmt(optimal.best_ms), Fmt(load_optimal_ms),
                Fmt(optimal.intervals)});
  table.AddRow({"chain", Fmt(chain.best_ms), Fmt(load_chain_ms),
                Fmt(chain.intervals)});
  table.Print();
  std::printf("\nbuild speedup (alg1/chain):  %.2fx\n", build_speedup);
  std::printf("load speedup (alg1/chain):   %.2fx\n", load_speedup);
  std::printf("interval blowup (chain/opt): %.2fx\n", blowup);

  bench_util::BenchReport report("micro_publish");
  report.config()
      .Set("smoke", smoke)
      .Set("num_chains", num_chains)
      .Set("chain_length", static_cast<int64_t>(chain_length))
      .Set("avg_degree", avg_degree)
      .Set("nodes", static_cast<int64_t>(graph.NumNodes()))
      .Set("arcs", graph.NumArcs())
      .Set("reps", reps);
  report.AddRow()
      .Set("name", "full_build/optimal")
      .Set("build_ms", optimal.best_ms)
      .Set("service_load_ms", load_optimal_ms)
      .Set("intervals", optimal.intervals);
  report.AddRow()
      .Set("name", "full_build/chain")
      .Set("build_ms", chain.best_ms)
      .Set("service_load_ms", load_chain_ms)
      .Set("intervals", chain.intervals);
  // The gated rows: chain-tier speedup must not regress, blowup must not
  // creep toward the entry cap.
  report.AddRow()
      .Set("name", "full_build/alg1_over_chain")
      .Set("build_speedup", build_speedup)
      .Set("load_speedup", load_speedup)
      .Set("interval_blowup", blowup);
  if (!report.WriteIfEnabled()) return 1;
  return 0;
}
