// Section 2.2 motivation measured: logical/physical page I/O per
// reachability query when the relation lives on secondary storage behind
// a small buffer pool, for three layouts:
//   base      — base relation, DFS pointer chasing (the status quo the
//               paper replaces),
//   full      — materialized closure relation, indexed lookup,
//   interval  — compressed interval closure (this paper).
//
// Expected shape: interval ~= constant few pages per query and the
// smallest file among the materialized forms at low degree; DFS touches
// an order of magnitude more pages.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "storage/buffer_pool.h"
#include "storage/closure_store.h"
#include "storage/page_store.h"

int main() {
  using namespace trel;
  using bench_util::Fmt;

  const NodeId kNodes = static_cast<NodeId>(bench_util::ScaleN(1000));
  const int kQueries = static_cast<int>(bench_util::ScaleN(300, 50));
  const size_t kPoolPages = 8;

  std::printf(
      "I/O per reachability query (n=%d, pool=%zu pages of 4KiB)\n\n",
      kNodes, kPoolPages);
  bench_util::Table table({"degree", "pages_base", "pages_full",
                           "pages_interval", "io_dfs", "io_full",
                           "io_interval"});

  for (double degree : {1.0, 2.0, 4.0}) {
    Digraph graph = RandomDag(kNodes, degree, 7000);
    auto closure = CompressedClosure::Build(graph);
    if (!closure.ok()) return 1;
    ReachabilityMatrix matrix(graph);

    auto base_store = PageStore::Open("/tmp/trel_bench_base.db");
    auto full_store = PageStore::Open("/tmp/trel_bench_full.db");
    auto interval_store_file = PageStore::Open("/tmp/trel_bench_iv.db");
    if (!base_store.ok() || !full_store.ok() || !interval_store_file.ok()) {
      return 1;
    }
    if (!AdjacencyStore::WriteGraph(graph, base_store.value()).ok()) return 1;
    std::vector<std::vector<NodeId>> lists(kNodes);
    for (NodeId v = 0; v < kNodes; ++v) lists[v] = matrix.Successors(v);
    if (!AdjacencyStore::Write(lists, full_store.value()).ok()) return 1;
    if (!IntervalStore::Write(closure.value(), interval_store_file.value())
             .ok()) {
      return 1;
    }

    BufferPool base_pool(&base_store.value(), kPoolPages);
    BufferPool full_pool(&full_store.value(), kPoolPages);
    BufferPool interval_pool(&interval_store_file.value(), kPoolPages);
    auto base = AdjacencyStore::Open(&base_pool);
    auto full = AdjacencyStore::Open(&full_pool);
    auto intervals = IntervalStore::Open(&interval_pool);
    if (!base.ok() || !full.ok() || !intervals.ok()) return 1;

    Random rng(3);
    for (int q = 0; q < kQueries; ++q) {
      const NodeId u = static_cast<NodeId>(rng.Uniform(kNodes));
      const NodeId v = static_cast<NodeId>(rng.Uniform(kNodes));
      if (!base->DfsReaches(u, v).ok() || !full->LookupReaches(u, v).ok() ||
          !intervals->Reaches(u, v).ok()) {
        return 1;
      }
    }

    table.AddRow(
        {Fmt(degree, 1), Fmt(static_cast<int64_t>(base_store->num_pages())),
         Fmt(static_cast<int64_t>(full_store->num_pages())),
         Fmt(static_cast<int64_t>(interval_store_file->num_pages())),
         Fmt(static_cast<double>(base_pool.stats().LogicalReads()) /
             kQueries),
         Fmt(static_cast<double>(full_pool.stats().LogicalReads()) /
             kQueries),
         Fmt(static_cast<double>(interval_pool.stats().LogicalReads()) /
             kQueries)});
  }
  table.Print();
  return 0;
}
