// Theorem 2 measurement: storage of the optimal tree-cover interval
// compression vs chain-decomposition compression (greedy and minimum
// chain covers), on random DAGs and on trees.
//
// Paper's claim: tree cover <= best chain cover always; on trees the gap
// is large.

#include <cstdio>

#include "core/chain_cover.h"
#include "bench/bench_util.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"

int main() {
  using namespace trel;
  using bench_util::Fmt;

  std::printf("Theorem 2: interval count vs chain-cover entry count\n\n");
  bench_util::Table table({"graph", "nodes", "tree_ivls", "chain_greedy",
                           "chain_min", "min/tree"});

  auto add_row = [&](const char* name, const Digraph& graph) {
    auto closure = CompressedClosure::Build(graph);
    auto greedy = ChainCover::Build(graph, ChainCover::Method::kGreedy);
    auto minimum = ChainCover::Build(graph, ChainCover::Method::kMinimum);
    if (!closure.ok() || !greedy.ok() || !minimum.ok()) std::exit(1);
    table.AddRow({name, Fmt(static_cast<int64_t>(graph.NumNodes())),
                  Fmt(closure->TotalIntervals()), Fmt(greedy->StorageUnits()),
                  Fmt(minimum->StorageUnits()),
                  Fmt(static_cast<double>(minimum->StorageUnits()) /
                      static_cast<double>(closure->TotalIntervals()))});
  };

  const NodeId kN = static_cast<NodeId>(bench_util::ScaleN(500));
  add_row("random_d1", RandomDag(kN, 1.0, 5001));
  add_row("random_d2", RandomDag(kN, 2.0, 5002));
  add_row("random_d4", RandomDag(kN, 4.0, 5003));
  add_row("random_d8", RandomDag(kN, 8.0, 5004));
  add_row("tree_random", RandomTree(kN, 5005));
  add_row("tree_binary",
          CompleteTree(2, bench_util::SmokeMode() ? 6 : 8));
  add_row("layered", LayeredDag(10, 20, 0.15, 5006));
  add_row("bipartite", CompleteBipartite(20, 20));

  table.Print();
  return 0;
}
