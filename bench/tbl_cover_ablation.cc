// Ablation: how much does Alg1's optimal tree cover buy over cheaper
// cover heuristics (DFS discovery, first parent, random parent)?  This
// isolates the paper's Theorem 1 contribution from the generic idea of
// interval labeling.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"

int main() {
  using namespace trel;
  using bench_util::Fmt;

  const int kSeeds = 3;
  std::printf("Tree-cover strategy ablation (interval counts, %d seeds)\n\n",
              kSeeds);
  bench_util::Table table({"nodes", "degree", "optimal", "dfs",
                           "first_parent", "random", "worst/optimal"});
  const std::vector<NodeId> sizes = bench_util::SmokeMode()
                                        ? std::vector<NodeId>{100, 200}
                                        : std::vector<NodeId>{200, 500, 1000};
  for (NodeId n : sizes) {
    for (double degree : {1.0, 2.0, 4.0, 8.0}) {
      int64_t totals[4] = {0, 0, 0, 0};
      const TreeCoverStrategy strategies[4] = {
          TreeCoverStrategy::kOptimal, TreeCoverStrategy::kDfs,
          TreeCoverStrategy::kFirstParent, TreeCoverStrategy::kRandom};
      for (int seed = 0; seed < kSeeds; ++seed) {
        Digraph graph = RandomDag(n, degree, 9000 + seed);
        for (int s = 0; s < 4; ++s) {
          ClosureOptions options;
          options.strategy = strategies[s];
          options.seed = seed;
          auto closure = CompressedClosure::Build(graph, options);
          if (!closure.ok()) return 1;
          totals[s] += closure->TotalIntervals();
        }
      }
      int64_t worst = std::max({totals[1], totals[2], totals[3]});
      table.AddRow({Fmt(static_cast<int64_t>(n)), Fmt(degree, 1),
                    Fmt(totals[0] / kSeeds), Fmt(totals[1] / kSeeds),
                    Fmt(totals[2] / kSeeds), Fmt(totals[3] / kSeeds),
                    Fmt(static_cast<double>(worst) /
                        static_cast<double>(totals[0]))});
    }
  }
  table.Print();
  return 0;
}
