// Figure 3.10: like Figure 3.9, adding the *inverse closure* baseline —
// store the non-reachable pairs consistent with a topological ordering.
//
// Paper's reported shape: the inverse closure falls rapidly with degree
// (at high density almost everything is reachable), but the compressed
// closure "stays well below that of the inverse closure" throughout.

#include <cstdio>

#include "baselines/inverse_closure.h"
#include "bench/bench_util.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"

int main() {
  using namespace trel;
  using bench_util::Fmt;

  const NodeId kNodes = static_cast<NodeId>(bench_util::ScaleN(1000));
  const int kSeeds = static_cast<int>(bench_util::ScaleReps(3, 1));

  std::printf("Figure 3.10: inverse closure vs compressed closure (n=%d)\n\n",
              kNodes);
  bench_util::Table table({"degree", "graph", "inverse", "compressed",
                           "inverse/graph", "compressed/graph"});
  for (int degree : {1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 30, 50}) {
    double graph_units = 0, inverse_units = 0, compressed_units = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Digraph graph = RandomDag(kNodes, degree, 2000 + seed);
      auto inverse = InverseClosure::Build(graph);
      auto closure = CompressedClosure::Build(graph);
      if (!inverse.ok() || !closure.ok()) return 1;
      graph_units += static_cast<double>(graph.NumArcs());
      inverse_units += static_cast<double>(inverse->StorageUnits());
      compressed_units += static_cast<double>(closure->StorageUnits());
    }
    graph_units /= kSeeds;
    inverse_units /= kSeeds;
    compressed_units /= kSeeds;
    table.AddRow({Fmt(static_cast<int64_t>(degree)), Fmt(graph_units, 0),
                  Fmt(inverse_units, 0), Fmt(compressed_units, 0),
                  Fmt(inverse_units / graph_units),
                  Fmt(compressed_units / graph_units)});
  }
  table.Print();
  return 0;
}
