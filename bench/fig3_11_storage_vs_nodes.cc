// Figure 3.11: storage for a degree-2 random graph as a function of the
// number of nodes, as a multiple of the original relation.
//
// Paper's reported shape: the full closure ratio grows with graph size
// while the compressed closure ratio grows much more slowly — compression
// gets *better* for larger graphs.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"

int main() {
  using namespace trel;
  using bench_util::Fmt;

  const double kDegree = 2.0;
  const int kSeeds = 3;

  std::printf("Figure 3.11: storage vs node count (degree=%.0f)\n\n",
              kDegree);
  bench_util::Table table({"nodes", "graph", "closure", "compressed",
                           "closure/graph", "compressed/graph"});
  const std::vector<NodeId> sizes =
      bench_util::SmokeMode()
          ? std::vector<NodeId>{100, 200}
          : std::vector<NodeId>{100, 200, 500, 1000, 2000, 4000};
  for (NodeId n : sizes) {
    double graph_units = 0, closure_units = 0, compressed_units = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Digraph graph = RandomDag(n, kDegree, 3000 + seed);
      ReachabilityMatrix matrix(graph);
      auto closure = CompressedClosure::Build(graph);
      if (!closure.ok()) return 1;
      graph_units += static_cast<double>(graph.NumArcs());
      closure_units += static_cast<double>(matrix.NumClosurePairs());
      compressed_units += static_cast<double>(closure->StorageUnits());
    }
    graph_units /= kSeeds;
    closure_units /= kSeeds;
    compressed_units /= kSeeds;
    table.AddRow({Fmt(static_cast<int64_t>(n)), Fmt(graph_units, 0),
                  Fmt(closure_units, 0), Fmt(compressed_units, 0),
                  Fmt(closure_units / graph_units),
                  Fmt(compressed_units / graph_units)});
  }
  table.Print();
  return 0;
}
