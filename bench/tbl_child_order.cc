// Section 3.2 open problem: adjacent-interval merging is order-dependent
// and "fixing an optimum ordering of node numbers to maximize the
// benefits of interval merging appears to be a combinatorial problem".
// This table measures the sibling-ordering heuristics the library offers
// (merged interval counts; lower is better).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"

int main() {
  using namespace trel;
  using bench_util::Fmt;

  const int kSeeds = 3;
  std::printf(
      "Sibling-order heuristics for adjacent-interval merging "
      "(merged interval counts, %d seeds)\n\n",
      kSeeds);
  bench_util::Table table({"nodes", "degree", "unmerged", "insertion",
                           "subtree_asc", "subtree_desc", "node_id"});
  const ChildOrder orders[] = {
      ChildOrder::kInsertion, ChildOrder::kBySubtreeSizeAsc,
      ChildOrder::kBySubtreeSizeDesc, ChildOrder::kByNodeId};

  const std::vector<NodeId> sizes = bench_util::SmokeMode()
                                        ? std::vector<NodeId>{100, 200}
                                        : std::vector<NodeId>{300, 1000};
  for (NodeId n : sizes) {
    for (double degree : {2.0, 4.0, 8.0}) {
      int64_t unmerged = 0;
      int64_t merged[4] = {0, 0, 0, 0};
      for (int seed = 0; seed < kSeeds; ++seed) {
        Digraph graph = RandomDag(n, degree, 9500 + seed);
        ClosureOptions plain;
        auto base = CompressedClosure::Build(graph, plain);
        if (!base.ok()) return 1;
        unmerged += base->TotalIntervals();
        for (int o = 0; o < 4; ++o) {
          ClosureOptions options;
          options.child_order = orders[o];
          options.labeling.merge_adjacent = true;
          auto closure = CompressedClosure::Build(graph, options);
          if (!closure.ok()) return 1;
          merged[o] += closure->TotalIntervals();
        }
      }
      table.AddRow({Fmt(static_cast<int64_t>(n)), Fmt(degree, 1),
                    Fmt(unmerged / kSeeds), Fmt(merged[0] / kSeeds),
                    Fmt(merged[1] / kSeeds), Fmt(merged[2] / kSeeds),
                    Fmt(merged[3] / kSeeds)});
    }
  }
  table.Print();
  return 0;
}
