// Section 3.2 worst case (Figures 3.6 / 3.7): a complete bipartite graph
// costs Theta(n^2/4) intervals, but inserting a single intermediary node
// carrying the same reachability collapses the compressed closure to
// O(n).  The paper argues such "meaningful bundles" are what hierarchy
// designers create anyway.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"

int main() {
  using namespace trel;
  using bench_util::Fmt;

  std::printf(
      "Worst case: complete bipartite m->m vs the intermediary fix\n\n");
  bench_util::Table table({"m", "nodes", "bipartite_ivls", "routed_ivls",
                           "bipartite/routed"});
  const std::vector<NodeId> widths =
      bench_util::SmokeMode() ? std::vector<NodeId>{4, 8, 16, 32}
                              : std::vector<NodeId>{4, 8, 16, 32, 64, 128};
  for (NodeId m : widths) {
    auto dense = CompressedClosure::Build(CompleteBipartite(m, m));
    auto routed = CompressedClosure::Build(BipartiteWithIntermediary(m, m));
    if (!dense.ok() || !routed.ok()) return 1;
    table.AddRow({Fmt(static_cast<int64_t>(m)),
                  Fmt(static_cast<int64_t>(2 * m)),
                  Fmt(dense->TotalIntervals()), Fmt(routed->TotalIntervals()),
                  Fmt(static_cast<double>(dense->TotalIntervals()) /
                      static_cast<double>(routed->TotalIntervals()))});
  }
  table.Print();
  return 0;
}
