# Benchmark targets, included from the top-level CMakeLists so that the
# build/bench directory holds only the executables (the harness runs
# `for b in build/bench/*`).

function(trel_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE
    trel_kb trel_storage trel_baselines trel_core trel_graph trel_common)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

function(trel_add_microbench name)
  trel_add_bench(${name})
  target_link_libraries(${name} PRIVATE benchmark::benchmark)
endfunction()

trel_add_bench(fig3_9_storage_vs_degree)
trel_add_bench(fig3_10_inverse_closure)
trel_add_bench(fig3_11_storage_vs_nodes)
trel_add_bench(fig3_12_interval_histogram)
trel_add_bench(tbl_merging_benefit)
trel_add_bench(tbl_worst_case_bipartite)
trel_add_bench(tbl_chain_vs_tree)
trel_add_bench(tbl_incremental_updates)
trel_add_bench(tbl_io_cost)
trel_add_bench(tbl_cover_ablation)
trel_add_bench(tbl_multi_hierarchy)
trel_add_bench(tbl_child_order)
trel_add_bench(tbl_grail_comparison)
trel_add_bench(tbl_scaling)
trel_add_bench(tbl_kb_workload)
trel_add_microbench(micro_query)
trel_add_microbench(micro_build)
trel_add_bench(micro_concurrent_query)
target_link_libraries(micro_concurrent_query PRIVATE trel_service)
trel_add_microbench(micro_obs_overhead)
target_link_libraries(micro_obs_overhead PRIVATE trel_service)
trel_add_bench(micro_adversarial)
trel_add_bench(micro_publish)
target_link_libraries(micro_publish PRIVATE trel_service)
trel_add_bench(micro_sharded)
target_link_libraries(micro_sharded PRIVATE trel_service)
