// The paper's scale claim, end to end: "an airplane, for example, may
// have close to 100,000 different kinds of parts", and such catalogues
// "must be managed as a database".  Builds a synthetic 100k-concept parts
// taxonomy, compresses its closure, and measures what the compression
// buys at that scale.
//
//   ./build/examples/parts_catalog [num_parts]

#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/closure_stats.h"
#include "core/compressed_closure.h"
#include "graph/digraph.h"
#include "graph/reachability.h"

int main(int argc, char** argv) {
  using namespace trel;

  const NodeId kParts = argc > 1 ? std::atoi(argv[1]) : 100000;
  Random rng(2024);

  // Parts hierarchy: mostly a deep composition tree, with ~10% of parts
  // shared across assemblies (extra non-tree "used-in" arcs).
  Stopwatch build_graph;
  Digraph graph(kParts);
  for (NodeId v = 1; v < kParts; ++v) {
    // Preferential shallow attachment: most parts attach near the middle
    // layers, like real BOMs.
    const NodeId parent = static_cast<NodeId>(rng.Uniform(v));
    if (!graph.AddArc(parent, v).ok()) return 1;
    if (rng.Bernoulli(0.10) && v > 2) {
      const NodeId other = static_cast<NodeId>(rng.Uniform(v));
      (void)graph.AddArc(other, v);  // Duplicate/self arcs are rejected.
    }
  }
  std::printf("catalogue: %d parts, %lld composition arcs (%.2fs to build)\n",
              kParts, static_cast<long long>(graph.NumArcs()),
              build_graph.ElapsedSeconds());

  // Compress with the DFS cover (Alg1's predecessor bitsets are quadratic
  // memory; at 100k nodes the heuristic cover is the right tool — see
  // bench/tbl_cover_ablation for what it costs in storage).
  Stopwatch compress;
  ClosureOptions options;
  options.strategy = TreeCoverStrategy::kDfs;
  auto closure = CompressedClosure::Build(graph, options);
  if (!closure.ok()) {
    std::fprintf(stderr, "%s\n", closure.status().ToString().c_str());
    return 1;
  }
  const double compress_seconds = compress.ElapsedSeconds();

  ClosureStats stats = ComputeClosureStats(graph, closure.value());
  std::printf("compressed closure built in %.2fs\n%s\n", compress_seconds,
              stats.ToString().c_str());

  // Query throughput: "is part X used in assembly Y", the subsumption
  // lookup a KR system issues constantly.
  Stopwatch queries;
  const int kQueries = 1000000;
  int64_t positive = 0;
  for (int q = 0; q < kQueries; ++q) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(kParts));
    const NodeId v = static_cast<NodeId>(rng.Uniform(kParts));
    positive += closure->Reaches(u, v) ? 1 : 0;
  }
  const double query_seconds = queries.ElapsedSeconds();
  std::printf("%d random containment queries in %.2fs (%.0f ns/query, "
              "%lld positive)\n",
              kQueries, query_seconds, 1e9 * query_seconds / kQueries,
              static_cast<long long>(positive));

  // Contrast: the uncompressed closure at this scale.  A full bit matrix
  // would need n^2/8 bytes (1.25 GB at 100k parts), so estimate the pair
  // count from a uniform sample of sources.
  Stopwatch estimate_watch;
  const int kSample = 500;
  int64_t sampled_successors = 0;
  for (int s = 0; s < kSample; ++s) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(kParts));
    sampled_successors +=
        static_cast<int64_t>(DfsReachableSet(graph, u).size()) - 1;
  }
  const double estimated_pairs =
      static_cast<double>(sampled_successors) / kSample * kParts;
  std::printf(
      "full closure: ~%.3g pairs estimated from %d sampled sources "
      "(vs %lld compressed units; estimate took %.2fs)\n",
      estimated_pairs, kSample,
      static_cast<long long>(closure->StorageUnits()),
      estimate_watch.ElapsedSeconds());
  return 0;
}
