// Knowledge-representation scenario from Section 2.1 of the paper: an
// IS-A concept hierarchy with subsumption queries, property inheritance,
// and the Section 4.1 constant-time hierarchy refinement.
//
//   ./build/examples/isa_hierarchy

#include <iostream>
#include <string>
#include <vector>

#include "kb/taxonomy.h"

namespace {

void Must(const trel::Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T MustValue(trel::StatusOr<T> result) {
  Must(result.status().ok() ? trel::Status::Ok() : result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  trel::Taxonomy kb;

  // A slice of an aircraft parts/concepts catalogue ("an airplane ... may
  // have close to 100,000 different kinds of parts").
  MustValue(kb.AddConcept("part"));
  MustValue(kb.AddConcept("engine-part", {"part"}));
  MustValue(kb.AddConcept("airframe-part", {"part"}));
  MustValue(kb.AddConcept("turbine-blade", {"engine-part"}));
  MustValue(kb.AddConcept("fuel-pump", {"engine-part"}));
  MustValue(kb.AddConcept("wing-spar", {"airframe-part"}));
  MustValue(kb.AddConcept("fastener", {"airframe-part", "engine-part"}));
  MustValue(kb.AddConcept("titanium-fastener", {"fastener"}));

  std::cout << std::boolalpha;
  std::cout << "part subsumes titanium-fastener?     "
            << kb.Subsumes("part", "titanium-fastener") << "\n";
  std::cout << "engine-part subsumes wing-spar?      "
            << kb.Subsumes("engine-part", "wing-spar") << "\n";
  std::cout << "engine-part subsumes titanium-fast.? "
            << kb.Subsumes("engine-part", "titanium-fastener") << "\n\n";

  // Inheritable properties: the nearest definition wins.
  Must(kb.SetProperty("part", "inspection-interval", "5y"));
  Must(kb.SetProperty("engine-part", "inspection-interval", "1y"));
  Must(kb.SetProperty("turbine-blade", "inspection-interval", "100h"));
  for (const char* concept_name :
       {"wing-spar", "fuel-pump", "turbine-blade", "titanium-fastener"}) {
    std::cout << concept_name << " inspection interval: "
              << MustValue(kb.LookupProperty(concept_name,
                                             "inspection-interval"))
              << "\n";
  }

  // Least common subsumer — the paper lists this among the lattice
  // operations the compressed closure accelerates.
  auto lcs = MustValue(kb.LeastCommonSubsumers("turbine-blade", "fastener"));
  std::cout << "\nLCS(turbine-blade, fastener):";
  for (const std::string& name : lcs) std::cout << " " << name;
  std::cout << "\n\n";

  // Section 4.1 refinement: interpose "rotating-part" between engine-part
  // and turbine-blade without touching any other node's labels.
  MustValue(kb.RefineAbove("rotating-part", "turbine-blade", {"engine-part"}));
  std::cout << "after refinement:\n";
  std::cout << "  rotating-part subsumes turbine-blade? "
            << kb.Subsumes("rotating-part", "turbine-blade") << "\n";
  std::cout << "  engine-part subsumes rotating-part?   "
            << kb.Subsumes("engine-part", "rotating-part") << "\n";
  std::cout << "  part subsumes rotating-part?          "
            << kb.Subsumes("part", "rotating-part") << "\n";
  std::cout << "  airframe-part subsumes rotating-part? "
            << kb.Subsumes("airframe-part", "rotating-part") << "\n";

  std::cout << "\nconcepts: " << kb.NumConcepts()
            << ", closure intervals: " << kb.closure().TotalIntervals()
            << ", renumbers so far: " << kb.closure().stats().renumbers
            << "\n";
  return 0;
}
