// Reachability over a cyclic relation: a call graph with mutual recursion.
// The paper handles cycles "by collapsing strongly connected components
// into one node"; TransitiveClosureIndex does exactly that.
//
//   ./build/examples/cyclic_call_graph

#include <iostream>
#include <string>
#include <vector>

#include "core/closure_index.h"
#include "graph/digraph.h"

int main() {
  using trel::NodeId;

  const std::vector<std::string> names = {
      "main", "parse", "eval", "apply", "gc", "print", "error"};
  trel::Digraph calls(static_cast<NodeId>(names.size()));
  // main -> parse -> eval <-> apply (mutual recursion), eval -> gc,
  // main -> print, apply -> error.
  for (auto [from, to] :
       {std::pair<NodeId, NodeId>{0, 1}, {1, 2}, {2, 3}, {3, 2}, {2, 4},
        {0, 5}, {3, 6}}) {
    auto status = calls.AddArc(from, to);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
  }

  auto index = trel::TransitiveClosureIndex::Build(calls);
  if (!index.ok()) {
    std::cerr << index.status() << "\n";
    return 1;
  }

  std::cout << "functions: " << index->NumNodes()
            << ", strongly connected components: " << index->NumComponents()
            << "\n\n";

  auto show = [&](NodeId from, NodeId to) {
    std::cout << names[from] << " can call " << names[to] << "? "
              << (index->Reaches(from, to) ? "yes" : "no") << "\n";
  };
  show(0, 6);  // main -> error (through the recursion).
  show(2, 3);  // eval -> apply.
  show(3, 2);  // apply -> eval (back edge inside the SCC).
  show(4, 0);  // gc -> main.
  show(5, 2);  // print -> eval.

  std::cout << "\neverything reachable from eval:";
  for (NodeId v : index->Successors(2)) std::cout << " " << names[v];
  std::cout << "\n";
  return 0;
}
