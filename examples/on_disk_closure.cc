// Secondary-storage scenario from Section 2.2: the relation is too large
// for main memory, so the closure lives on disk behind a small buffer
// pool.  Compares I/O per reachability query for three on-disk layouts:
//   - base relation + DFS pointer chasing (what the paper replaces),
//   - fully materialized closure relation with indexed lookup,
//   - compressed interval closure (this paper).
//
//   ./build/examples/on_disk_closure

#include <cstdint>
#include <iostream>

#include "common/random.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "storage/buffer_pool.h"
#include "storage/closure_store.h"
#include "storage/page_store.h"

int main() {
  using trel::NodeId;

  const NodeId kNodes = 2000;
  const double kDegree = 2.0;
  const size_t kPoolPages = 8;  // Deliberately tiny: cold-ish cache.
  const int kQueries = 500;

  trel::Digraph graph = trel::RandomDag(kNodes, kDegree, 99);
  auto closure = trel::CompressedClosure::Build(graph);
  if (!closure.ok()) {
    std::cerr << closure.status() << "\n";
    return 1;
  }
  trel::ReachabilityMatrix matrix(graph);

  const std::string dir = "/tmp";
  auto base_store = trel::PageStore::Open(dir + "/trel_base.db");
  auto full_store = trel::PageStore::Open(dir + "/trel_full.db");
  auto compressed_store = trel::PageStore::Open(dir + "/trel_compressed.db");
  if (!base_store.ok() || !full_store.ok() || !compressed_store.ok()) {
    std::cerr << "cannot open page stores under " << dir << "\n";
    return 1;
  }

  // Serialize the three layouts.
  if (!trel::AdjacencyStore::WriteGraph(graph, base_store.value()).ok()) {
    return 1;
  }
  std::vector<std::vector<NodeId>> successor_lists(kNodes);
  for (NodeId v = 0; v < kNodes; ++v) {
    successor_lists[v] = matrix.Successors(v);
  }
  if (!trel::AdjacencyStore::Write(successor_lists, full_store.value())
           .ok()) {
    return 1;
  }
  if (!trel::IntervalStore::Write(closure.value(), compressed_store.value())
           .ok()) {
    return 1;
  }

  std::cout << "nodes: " << kNodes << ", arcs: " << graph.NumArcs() << "\n";
  std::cout << "file pages  base/full/compressed: "
            << base_store->num_pages() << " / " << full_store->num_pages()
            << " / " << compressed_store->num_pages() << "\n\n";

  trel::BufferPool base_pool(&base_store.value(), kPoolPages);
  trel::BufferPool full_pool(&full_store.value(), kPoolPages);
  trel::BufferPool compressed_pool(&compressed_store.value(), kPoolPages);
  auto base = trel::AdjacencyStore::Open(&base_pool);
  auto full = trel::AdjacencyStore::Open(&full_pool);
  auto compressed = trel::IntervalStore::Open(&compressed_pool);
  if (!base.ok() || !full.ok() || !compressed.ok()) return 1;

  trel::Random rng(5);
  int64_t mismatches = 0;
  for (int q = 0; q < kQueries; ++q) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(kNodes));
    const NodeId v = static_cast<NodeId>(rng.Uniform(kNodes));
    auto a = base->DfsReaches(u, v);
    auto b = full->LookupReaches(u, v);
    auto c = compressed->Reaches(u, v);
    if (!a.ok() || !b.ok() || !c.ok()) return 1;
    if (a.value() != c.value() || b.value() != c.value()) ++mismatches;
  }

  std::cout << "queries: " << kQueries << ", mismatches: " << mismatches
            << "\n\n";
  auto report = [&](const char* name, const trel::BufferPool& pool,
                    const trel::PageStore& store) {
    std::cout << name << ": logical reads " << pool.stats().LogicalReads()
              << ", physical reads " << store.stats().physical_reads
              << ", per query "
              << static_cast<double>(pool.stats().LogicalReads()) / kQueries
              << " logical\n";
  };
  report("DFS on base relation   ", base_pool, base_store.value());
  report("full closure lookup    ", full_pool, full_store.value());
  report("compressed intervals   ", compressed_pool,
         compressed_store.value());
  return 0;
}
