// Deductive-database scenario (paper Sections 2 and 6): the alpha
// operator materializes the transitive closure of a base relation as a
// compressed view, and ordinary relational algebra composes around it.
//
// The workload is the paper's own motivating example: an aircraft
// parts-explosion ("an airplane ... may have close to 100,000 different
// kinds of parts").
//
//   ./build/examples/deductive_db

#include <iostream>
#include <string>

#include "relational/alpha.h"
#include "relational/operators.h"
#include "relational/relation.h"

namespace {

void Must(const trel::Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  using trel::ColumnType;
  using trel::Relation;
  using trel::Value;

  // Base relation: component(assembly, part).
  Relation component({{"assembly", ColumnType::kString},
                      {"part", ColumnType::kString}});
  for (auto [a, p] : {std::pair<const char*, const char*>
                          {"airplane", "wing"},
                      {"airplane", "fuselage"},
                      {"airplane", "engine"},
                      {"wing", "spar"},
                      {"wing", "aileron"},
                      {"wing", "fuel-tank"},
                      {"engine", "turbine"},
                      {"engine", "fuel-pump"},
                      {"turbine", "blade"},
                      {"turbine", "shaft"},
                      {"fuel-tank", "pump-feed"},
                      {"fuel-pump", "pump-feed"},
                      {"spar", "rivet"},
                      {"aileron", "rivet"}}) {
    Must(component.Append({std::string(a), std::string(p)}));
  }

  // Per-part unit weight.
  Relation weight({{"part", ColumnType::kString},
                   {"grams", ColumnType::kInt64}});
  for (auto [p, g] : {std::pair<const char*, int64_t>{"rivet", 5},
                      {"blade", 800},
                      {"shaft", 12000},
                      {"pump-feed", 350},
                      {"spar", 90000}}) {
    Must(weight.Append({std::string(p), g}));
  }

  // alpha(component): the "contains, at any depth" view, materialized in
  // compressed interval form.
  auto alpha = trel::AlphaOperator::Build(component, "assembly", "part");
  if (!alpha.ok()) {
    std::cerr << alpha.status() << "\n";
    return 1;
  }

  std::cout << "distinct parts:        " << alpha->NumValues() << "\n";
  std::cout << "base tuples:           " << component.NumTuples() << "\n";
  std::cout << "closure pairs:         " << alpha->NumClosurePairs() << "\n";
  std::cout << "compressed storage:    " << alpha->StorageUnits()
            << " units\n\n";

  std::cout << std::boolalpha;
  std::cout << "airplane contains rivet?  "
            << alpha->Reaches(std::string("airplane"), std::string("rivet"))
            << "\n";
  std::cout << "engine contains rivet?    "
            << alpha->Reaches(std::string("engine"), std::string("rivet"))
            << "\n\n";

  // sigma+join over the recursive view: every part of the wing, at any
  // depth, that has a recorded weight.
  Relation wing_parts = alpha->SuccessorsOf(std::string("wing"), "part");
  auto weighted = trel::Join(wing_parts, "part", weight, "part");
  Must(weighted.status().ok() ? trel::Status::Ok() : weighted.status());
  auto report = trel::Project(weighted.value(), {"part", "grams"});
  Must(report.status().ok() ? trel::Status::Ok() : report.status());

  std::cout << "weighted parts under wing (any depth):\n"
            << report->ToString() << "\n";

  // The same query without the compressed view would re-traverse the
  // component graph; with it, the recursive step is interval lookups.
  Relation full = alpha->Materialize();
  std::cout << "materialized closure relation: " << full.NumTuples()
            << " tuples vs " << alpha->StorageUnits()
            << " compressed units\n";
  return 0;
}
