// Crash-recovery workflow: periodic snapshots plus a write-ahead update
// log, so the materialized closure survives restarts without a rebuild
// (Section 2.2's management requirements made concrete).
//
//   ./build/examples/recovery

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/dynamic_closure.h"
#include "graph/generators.h"
#include "storage/update_log.h"

int main() {
  using namespace trel;

  const std::string snapshot_path = "/tmp/trel_recovery.snapshot";
  const std::string log_path = "/tmp/trel_recovery.log";

  // --- Day 1: build the index, snapshot it. -------------------------------
  Digraph graph = RandomDag(5000, 2.0, 77);
  auto built = DynamicClosure::Build(graph);
  if (!built.ok()) {
    std::cerr << built.status() << "\n";
    return 1;
  }
  {
    std::ofstream snapshot(snapshot_path, std::ios::binary);
    if (!built->Save(snapshot).ok()) return 1;
  }
  std::cout << "snapshot written: " << built->NumNodes() << " nodes, "
            << built->TotalIntervals() << " intervals\n";

  // --- Day 2: live updates, each journaled before acknowledgment. ---------
  std::ofstream log_stream(log_path, std::ios::binary);
  LoggedClosure live(std::move(built).value(), &log_stream);
  Random rng(5);
  int applied = 0;
  for (int i = 0; i < 500; ++i) {
    const NodeId n = live.closure().NumNodes();
    if (rng.Bernoulli(0.6)) {
      if (live.AddLeafUnder(static_cast<NodeId>(rng.Uniform(n))).ok()) {
        ++applied;
      }
    } else {
      const NodeId a = static_cast<NodeId>(rng.Uniform(n));
      const NodeId b = static_cast<NodeId>(rng.Uniform(n));
      if (live.AddArc(a, b).ok()) ++applied;
    }
  }
  log_stream.flush();
  std::cout << "journaled " << applied << " updates; index now has "
            << live.closure().NumNodes() << " nodes\n";

  // --- Crash!  Recover from snapshot + log tail. ---------------------------
  Stopwatch recovery;
  std::ifstream snapshot(snapshot_path, std::ios::binary);
  std::ifstream log_in(log_path, std::ios::binary);
  auto recovered = LoggedClosure::Recover(&snapshot, log_in);
  if (!recovered.ok()) {
    std::cerr << "recovery failed: " << recovered.status() << "\n";
    return 1;
  }
  std::cout << "recovered in " << recovery.ElapsedSeconds() << "s: "
            << recovered->NumNodes() << " nodes, "
            << recovered->TotalIntervals() << " intervals\n";

  // Verify equivalence on a sample.
  for (int q = 0; q < 100000; ++q) {
    const NodeId u =
        static_cast<NodeId>(rng.Uniform(recovered->NumNodes()));
    const NodeId v =
        static_cast<NodeId>(rng.Uniform(recovered->NumNodes()));
    if (recovered->Reaches(u, v) != live.closure().Reaches(u, v)) {
      std::cerr << "MISMATCH at " << u << "->" << v << "\n";
      return 1;
    }
  }
  std::cout << "recovered index agrees with the live one on 100000 sampled "
               "queries\n";
  return 0;
}
