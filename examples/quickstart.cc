// Quickstart: compress the transitive closure of a small DAG and query it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/compressed_closure.h"
#include "graph/digraph.h"

int main() {
  using trel::CompressedClosure;
  using trel::Digraph;
  using trel::NodeId;

  // A little module-dependency DAG:
  //        0 (app)
  //       /  \ .
  //  1 (ui)  2 (api)
  //      \   /   \ .
  //     3 (core) 4 (net)
  //        \     /
  //       5 (base)
  Digraph graph(6);
  for (auto [from, to] : {std::pair<NodeId, NodeId>{0, 1}, {0, 2}, {1, 3},
                          {2, 3}, {2, 4}, {3, 5}, {4, 5}}) {
    auto status = graph.AddArc(from, to);
    if (!status.ok()) {
      std::cerr << "AddArc failed: " << status << "\n";
      return 1;
    }
  }

  // Compress: optimal tree cover (the paper's Alg1) + interval labels.
  auto closure = CompressedClosure::Build(graph);
  if (!closure.ok()) {
    std::cerr << "Build failed: " << closure.status() << "\n";
    return 1;
  }

  std::cout << "graph arcs:            " << graph.NumArcs() << "\n";
  std::cout << "closure intervals:     " << closure->TotalIntervals() << "\n";
  std::cout << "storage units (2/ivl): " << closure->StorageUnits() << "\n\n";

  // Reachability is one interval lookup.
  std::cout << "app depends on base?   " << std::boolalpha
            << closure->Reaches(0, 5) << "\n";
  std::cout << "ui  depends on net?    " << closure->Reaches(1, 4) << "\n\n";

  // Enumerate everything the api module pulls in.
  std::cout << "api transitively depends on:";
  for (NodeId v : closure->Successors(2)) std::cout << " " << v;
  std::cout << "\n\n";

  // Peek at the labels the paper describes: postorder number + intervals.
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    std::cout << "node " << v << ": postorder " << closure->PostorderOf(v)
              << ", intervals " << closure->IntervalsOf(v) << "\n";
  }
  return 0;
}
