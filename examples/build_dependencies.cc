// Incremental dependency management: a build system keeps the transitive
// closure of module dependencies materialized so "does A depend on B" and
// "what needs rebuilding if B changes" are lookups, while the dependency
// graph keeps changing underneath it (Section 4 incremental updates).
//
//   ./build/examples/build_dependencies

#include <iostream>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/dynamic_closure.h"
#include "graph/generators.h"

namespace {

// Modules that must be rebuilt when `changed` changes = all nodes that
// (transitively) depend on it, i.e., reach it in the dependency DAG.
std::vector<trel::NodeId> RebuildSet(const trel::DynamicClosure& closure,
                                     trel::NodeId changed) {
  std::vector<trel::NodeId> result;
  for (trel::NodeId m = 0; m < closure.NumNodes(); ++m) {
    if (m != changed && closure.Reaches(m, changed)) result.push_back(m);
  }
  return result;
}

}  // namespace

int main() {
  // Start from a synthetic dependency DAG of 300 modules, avg 2 deps each.
  trel::Digraph graph = trel::RandomDag(300, 2.0, 1234);
  auto built = trel::DynamicClosure::Build(graph);
  if (!built.ok()) {
    std::cerr << built.status() << "\n";
    return 1;
  }
  trel::DynamicClosure& closure = built.value();

  std::cout << "initial modules: " << closure.NumNodes()
            << ", arcs: " << closure.graph().NumArcs()
            << ", closure intervals: " << closure.TotalIntervals() << "\n";

  // A change deep in the graph: how many modules rebuild?
  const trel::NodeId hot = 280;
  std::cout << "modules rebuilt when module " << hot
            << " changes: " << RebuildSet(closure, hot).size() << "\n\n";

  // Development continues: new modules appear, dependencies are added and
  // removed; the closure tracks along without full recomputation.
  trel::Random rng(7);
  int added_modules = 0, added_deps = 0, removed_deps = 0;
  for (int step = 0; step < 200; ++step) {
    const uint64_t op = rng.Uniform(10);
    const trel::NodeId n = closure.NumNodes();
    if (op < 3) {
      const trel::NodeId owner =
          static_cast<trel::NodeId>(rng.Uniform(static_cast<uint64_t>(n)));
      if (closure.AddLeafUnder(owner).ok()) ++added_modules;
    } else if (op < 8) {
      const trel::NodeId a =
          static_cast<trel::NodeId>(rng.Uniform(static_cast<uint64_t>(n)));
      const trel::NodeId b =
          static_cast<trel::NodeId>(rng.Uniform(static_cast<uint64_t>(n)));
      if (closure.AddArc(a, b).ok()) ++added_deps;  // Cycles are refused.
    } else {
      auto arcs = closure.graph().Arcs();
      if (!arcs.empty()) {
        const auto& [a, b] = arcs[rng.Uniform(arcs.size())];
        if (closure.RemoveArc(a, b).ok()) ++removed_deps;
      }
    }
  }
  std::cout << "applied updates: +" << added_modules << " modules, +"
            << added_deps << " deps, -" << removed_deps << " deps\n";
  std::cout << "renumbers: " << closure.stats().renumbers
            << ", propagation visits: "
            << closure.stats().propagation_node_visits << "\n";
  std::cout << "closure intervals now: " << closure.TotalIntervals() << "\n";

  // The paper suggests re-deriving the optimal cover after heavy churn.
  closure.Reoptimize();
  std::cout << "after Reoptimize():    " << closure.TotalIntervals() << "\n";

  std::cout << "modules rebuilt when module " << hot
            << " changes now: " << RebuildSet(closure, hot).size() << "\n";
  return 0;
}
