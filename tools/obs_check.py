#!/usr/bin/env python3
"""Scrape a running trel_tool exporter and validate its output.

The ``--obs`` CI stage starts ``trel_tool serve <graph> 0 <secs>`` (which
warms the service with deterministic query traffic, prints the bound
ephemeral port, then idles) and points this checker at it.  Because the
server is quiescent while being scraped, the checks can be exact:

  1. /metricsz parses as Prometheus text format 0.0.4: every sample
     belongs to a family declared by exactly one ``# TYPE`` line, and
     every value parses as a float.
  2. Histograms are internally consistent: cumulative ``le`` buckets are
     non-decreasing, the ``+Inf`` bucket equals ``_count``, and the
     exporter's documented sum identities hold (batch latency sum ==
     trel_batch_micros_total, per-phase publish sums == the matching
     ``trel_publish_phase_micros_total`` counters, delta-node histogram
     sum == trel_delta_nodes_total).
  3. Counters are monotonic: a second scrape never shows a ``*_total``
     sample below the first.
  4. /metricsz agrees with ``ServiceMetrics::Read()``: the /statusz page
     embeds the raw ``metrics: <View::ToString()>`` line, and every
     field of it must match the corresponding /metricsz sample
     (snapshot age excluded — it is the one field that moves on an idle
     server).

  5. The windowed latency families are well-formed: every
     ``trel_latency_window_us`` series carries p50/p99/p999 samples in
     non-decreasing order, a matching ``trel_latency_window_samples``, and
     a ``window`` label of the ``<N>m`` form; /statusz carries the
     ``latency_windows:`` block.

With ``--sharded K`` the checker validates a ``trel_tool serve-sharded``
exporter instead: the boundary-layer families and one labeled sample per
shard must be present, counters must stay monotonic across scrapes, and
the /statusz ``boundary_metrics:`` line
(ShardedMetricsView::ToString()) must agree with /metricsz field for
field.  The sharded surface keeps per-shard and per-stage window series
(route/boundary_bitset/hop_core/shard_query/merge, single, batch,
shard0..shardK-1); monolithic histogram checks are skipped.

With ``--expect-flight`` (the serve ran under TREL_FLIGHT_TEST_TRIGGER)
the checker additionally fetches /flightz and requires at least one
frozen capture whose payload is complete; in sharded mode the capture
must contain stage-attributed traces whose per-stage nanos sum to no
more than the recorded end-to-end latency.

Usage:
  tools/obs_check.py --port 8080 [--host 127.0.0.1] [--sharded K]
      [--expect-flight]
"""

import argparse
import json
import re
import sys
import urllib.request

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+([^\s]+)$')

# /statusz `metrics:` field -> /metricsz sample key (name + label string).
STATUSZ_TO_METRICSZ = {
    "epoch": "trel_snapshot_epoch",
    "nodes": "trel_snapshot_nodes",
    "intervals": "trel_snapshot_intervals",
    "overlay_nodes": "trel_snapshot_overlay_nodes",
    "arena_bytes": "trel_snapshot_arena_bytes",
    "reach_queries": "trel_reach_queries_total",
    "successor_queries": "trel_successor_queries_total",
    "batches": "trel_batches_total",
    "batch_us": "trel_batch_micros_total",
    "batches_rejected": "trel_batches_rejected_total",
    "delta_nodes": "trel_delta_nodes_total",
    "publishes_delta": 'trel_publishes_total{kind="delta"}',
    "publish_us_delta": 'trel_publish_micros_total{kind="delta"}',
    "publishes_chain_full": 'trel_publishes_total{kind="chain_full"}',
    "publishes_optimal_full": 'trel_publishes_total{kind="optimal_full"}',
    "publish_us_chain_full": 'trel_publish_micros_total{kind="chain_full"}',
    "publish_us_optimal_full":
        'trel_publish_micros_total{kind="optimal_full"}',
    "kernel_fast": 'trel_batch_kernel_outcomes_total{outcome="fast_path"}',
    "kernel_filter_rej":
        'trel_batch_kernel_outcomes_total{outcome="filter_reject"}',
    "kernel_group_rej":
        'trel_batch_kernel_outcomes_total{outcome="group_reject"}',
    "kernel_extras":
        'trel_batch_kernel_outcomes_total{outcome="extras_search"}',
}

# Exporter sum identities: histogram ``_sum`` series that must equal a
# counter sample on the same scrape.
SUM_IDENTITIES = [
    ("trel_batch_latency_microseconds_sum", "trel_batch_micros_total"),
    ("trel_publish_delta_nodes_sum", "trel_delta_nodes_total"),
]


def fetch(host, port, path):
    url = f"http://{host}:{port}{path}"
    with urllib.request.urlopen(url, timeout=10) as resp:
        if resp.status != 200:
            raise RuntimeError(f"GET {url} -> HTTP {resp.status}")
        return resp.read().decode("utf-8")


def parse_prometheus(text, errors):
    """Returns (types, samples) where samples maps 'name{labels}' -> float."""
    types = {}
    samples = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"metricsz:{lineno}: malformed TYPE line")
                continue
            family, kind = parts[2], parts[3]
            if family in types:
                errors.append(f"metricsz:{lineno}: duplicate TYPE {family}")
            types[family] = kind
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"metricsz:{lineno}: unparseable sample {line!r}")
            continue
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            samples[name + labels] = float(value)
        except ValueError:
            errors.append(f"metricsz:{lineno}: non-numeric value {value!r}")
            continue
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                family = name[:-len(suffix)]
                break
        if family not in types:
            errors.append(
                f"metricsz:{lineno}: sample {name} has no TYPE declaration")
    return types, samples


def strip_le(labels):
    """Drops the le="..." pair; returns (group_labels, le_value)."""
    inner = labels[1:-1]
    keep = []
    le = None
    for pair in inner.split(","):
        if pair.startswith("le="):
            le = pair[len('le="'):-1]
        elif pair:
            keep.append(pair)
    return "{" + ",".join(keep) + "}" if keep else "", le


def check_histograms(types, samples, errors):
    for family, kind in types.items():
        if kind != "histogram":
            continue
        # Group bucket samples by their non-le label set.
        groups = {}
        prefix = family + "_bucket"
        for key, value in samples.items():
            if not key.startswith(prefix + "{"):
                continue
            group, le = strip_le(key[len(prefix):])
            if le is None:
                errors.append(f"{family}: bucket without le label: {key}")
                continue
            groups.setdefault(group, []).append((le, value))
        if not groups:
            errors.append(f"{family}: histogram has no _bucket samples")
            continue
        for group, buckets in groups.items():
            finite = sorted(
                ((float(le), v) for le, v in buckets if le != "+Inf"))
            inf = [v for le, v in buckets if le == "+Inf"]
            if len(inf) != 1:
                errors.append(f"{family}{group}: expected one +Inf bucket")
                continue
            prev = 0.0
            for le, v in finite:
                if v < prev:
                    errors.append(
                        f"{family}{group}: bucket le={le:g} decreases "
                        f"({v:g} < {prev:g})")
                prev = v
            if inf[0] < prev:
                errors.append(f"{family}{group}: +Inf bucket below last "
                              f"finite bucket")
            count = samples.get(family + "_count" + group)
            if count is None:
                errors.append(f"{family}{group}: missing _count")
            elif count != inf[0]:
                errors.append(
                    f"{family}{group}: _count {count:g} != +Inf bucket "
                    f"{inf[0]:g}")
            if samples.get(family + "_sum" + group) is None:
                errors.append(f"{family}{group}: missing _sum")
    for sum_key, counter_key in SUM_IDENTITIES:
        if sum_key in samples and counter_key in samples:
            if samples[sum_key] != samples[counter_key]:
                errors.append(
                    f"sum identity: {sum_key} {samples[sum_key]:g} != "
                    f"{counter_key} {samples[counter_key]:g}")
        else:
            errors.append(f"sum identity: {sum_key} or {counter_key} absent")
    # Per-phase publish histogram sums equal the per-phase counters.
    phase_prefix = "trel_publish_phase_microseconds_sum{"
    phase_sums = {k: v for k, v in samples.items()
                  if k.startswith(phase_prefix)}
    if not phase_sums:
        errors.append("no trel_publish_phase_microseconds_sum series")
    for key, value in phase_sums.items():
        counter_key = key.replace("trel_publish_phase_microseconds_sum",
                                  "trel_publish_phase_micros_total")
        counter = samples.get(counter_key)
        if counter is None:
            errors.append(f"sum identity: {counter_key} absent")
        elif counter != value:
            errors.append(f"sum identity: {key} {value:g} != "
                          f"{counter_key} {counter:g}")


def parse_statusz_metrics_line(statusz, errors):
    """Extracts View::ToString() fields from the /statusz `metrics:` line."""
    line = None
    for candidate in statusz.splitlines():
        if candidate.startswith("metrics: "):
            line = candidate[len("metrics: "):]
            break
    if line is None:
        errors.append("statusz: no `metrics:` line")
        return {}
    fields = {}

    def grab(pattern, name, group=1):
        m = re.search(pattern, line)
        if m is None:
            errors.append(f"statusz metrics line: missing {name}")
            return
        fields[name] = float(m.group(group))

    for name in ("epoch", "nodes", "intervals", "overlay_nodes",
                 "arena_bytes", "reach_queries", "successor_queries",
                 "batch_us"):
        grab(rf"\b{name}=(\d+)", name)
    grab(r"\bbatches=(\d+)", "batches")
    grab(r"\bbatches_rejected=(\d+)", "batches_rejected")
    grab(r" delta_nodes=(\d+)", "delta_nodes")
    grab(r"batch_kernel=\[fast=(\d+) filter_rej=(\d+) group_rej=(\d+) "
         r"extras=(\d+)\]", "kernel_fast", 1)
    grab(r"batch_kernel=\[fast=(\d+) filter_rej=(\d+) group_rej=(\d+) "
         r"extras=(\d+)\]", "kernel_filter_rej", 2)
    grab(r"batch_kernel=\[fast=(\d+) filter_rej=(\d+) group_rej=(\d+) "
         r"extras=(\d+)\]", "kernel_group_rej", 3)
    grab(r"batch_kernel=\[fast=(\d+) filter_rej=(\d+) group_rej=(\d+) "
         r"extras=(\d+)\]", "kernel_extras", 4)
    grab(r"publishes=\d+ \(full=(\d+) delta=(\d+)\)", "publishes_full", 1)
    grab(r"publishes=\d+ \(full=(\d+) delta=(\d+)\)", "publishes_delta", 2)
    grab(r"publish_us=\d+ \(full=(\d+) delta=(\d+)\)", "publish_us_full", 1)
    grab(r"publish_us=\d+ \(full=(\d+) delta=(\d+)\)", "publish_us_delta", 2)
    grab(r"\bpublishes_chain_full=(\d+)", "publishes_chain_full")
    grab(r"\bpublishes_optimal_full=(\d+)", "publishes_optimal_full")
    grab(r"\bpublish_us_chain_full=(\d+)", "publish_us_chain_full")
    grab(r"\bpublish_us_optimal_full=(\d+)", "publish_us_optimal_full")
    return fields


WINDOW_SAMPLE_RE = re.compile(
    r'^trel_latency_window_us\{series="([^"]*)",window="([^"]*)",'
    r'quantile="([^"]*)"\}$')


def check_latency_windows(samples, statusz, errors, expect_series=None):
    """Validates the windowed latency families and the statusz block."""
    # Group the quantile gauges by (series, window).
    groups = {}
    for key in samples:
        m = WINDOW_SAMPLE_RE.match(key)
        if m is None:
            if key.startswith("trel_latency_window_us{"):
                errors.append(f"windows: unparseable labels in {key}")
            continue
        series, window, quantile = m.group(1), m.group(2), m.group(3)
        if not re.fullmatch(r"\d+m", window):
            errors.append(f"windows: {series}: bad window label {window!r}")
        groups.setdefault((series, window), {})[quantile] = samples[key]
    if not groups:
        errors.append("windows: no trel_latency_window_us samples")
        return
    seen_series = set()
    for (series, window), quantiles in sorted(groups.items()):
        seen_series.add(series)
        missing = {"p50", "p99", "p999"} - set(quantiles)
        if missing:
            errors.append(f"windows: {series}/{window}: missing quantiles "
                          f"{sorted(missing)}")
            continue
        if not (quantiles["p50"] <= quantiles["p99"] <= quantiles["p999"]):
            errors.append(
                f"windows: {series}/{window}: quantiles out of order "
                f"(p50={quantiles['p50']:g} p99={quantiles['p99']:g} "
                f"p999={quantiles['p999']:g})")
        count_key = (f'trel_latency_window_samples{{series="{series}",'
                     f'window="{window}"}}')
        if count_key not in samples:
            errors.append(f"windows: missing {count_key}")
    for series in expect_series or []:
        if series not in seen_series:
            errors.append(f"windows: expected series {series!r} absent")
    if "latency_windows:" not in statusz:
        errors.append("statusz: missing latency_windows: block")
    print(f"obs_check: {len(groups)} latency window series validated")


def check_flightz(args, errors, require_stages):
    """Validates the /flightz payload after a forced test trigger."""
    try:
        doc = json.loads(fetch(args.host, args.port, "/flightz"))
    except (RuntimeError, ValueError) as exc:
        errors.append(f"flightz: fetch/parse failed: {exc}")
        return
    if doc.get("total_triggered", 0) < 1:
        errors.append("flightz: total_triggered < 1 despite forced trigger")
    captures = doc.get("captures", [])
    if not captures:
        errors.append("flightz: no captures despite forced trigger")
        return
    stage_traces = 0
    for capture in captures:
        for key in ("sequence", "reason", "detail", "trigger_nanos",
                    "traces", "spans", "slow", "metrics", "windows"):
            if key not in capture:
                errors.append(f"flightz: capture missing {key!r}")
        for trace in capture.get("traces", []):
            stages = trace.get("stages")
            if stages is None:
                continue
            stage_traces += 1
            stage_sum = sum(stages.values())
            if stage_sum > trace.get("nanos", 0):
                errors.append(
                    f"flightz: trace ({trace.get('src')},{trace.get('dst')})"
                    f" stage sum {stage_sum} exceeds end-to-end "
                    f"{trace.get('nanos')} ns")
        for row in capture.get("windows", []):
            if not (row.get("p50_us", 0) <= row.get("p99_us", 0)
                    <= row.get("p999_us", 0)):
                errors.append(f"flightz: window row {row.get('series')}/"
                              f"{row.get('window')} quantiles out of order")
    if not any(c.get("reason") == "forced_test_trigger" for c in captures):
        errors.append("flightz: no capture with reason forced_test_trigger")
    if require_stages and stage_traces == 0:
        errors.append("flightz: no stage-attributed traces in any capture")
    print(f"obs_check: flightz has {len(captures)} capture(s), "
          f"{stage_traces} stage-attributed trace(s)")


# /statusz `boundary_metrics:` field -> sharded /metricsz sample key.
BOUNDARY_TO_METRICSZ = {
    "shards": "trel_sharded_shards",
    "epoch": "trel_sharded_epoch",
    "nodes": "trel_sharded_nodes",
    "hubs": "trel_boundary_hubs",
    "boundary_label_bytes": "trel_boundary_label_bytes",
    "cross_shard_queries": "trel_cross_shard_queries_total",
    "hub_hop_queries": "trel_hub_hop_queries_total",
    "boundary_republishes": "trel_boundary_republishes_total",
    "boundary_skips": "trel_boundary_skips_total",
    "hub_promotions": "trel_hub_promotions_total",
}

# Per-shard families every shard must show up in, with a shard="<s>"
# label (trel_shard_publishes_total additionally splits by kind).
PER_SHARD_FAMILIES = [
    "trel_shard_reach_queries_total",
    "trel_shard_batches_total",
    "trel_shard_snapshot_epoch",
    "trel_shard_snapshot_nodes",
]


def parse_boundary_metrics_line(statusz, errors):
    """Extracts ShardedMetricsView::ToString() fields from /statusz."""
    line = None
    for candidate in statusz.splitlines():
        if candidate.startswith("boundary_metrics: "):
            line = candidate[len("boundary_metrics: "):]
            break
    if line is None:
        errors.append("statusz: no `boundary_metrics:` line")
        return {}
    fields = {}
    for name in BOUNDARY_TO_METRICSZ:
        m = re.search(rf"\b{name}=(\d+)", line)
        if m is None:
            errors.append(f"statusz boundary_metrics line: missing {name}")
        else:
            fields[name] = float(m.group(1))
    return fields


def check_sharded(args, errors):
    first = fetch(args.host, args.port, "/metricsz")
    statusz = fetch(args.host, args.port, "/statusz")
    second = fetch(args.host, args.port, "/metricsz")

    types, samples = parse_prometheus(first, errors)
    _, samples2 = parse_prometheus(second, [])
    print(f"obs_check: {len(samples)} samples in {len(types)} families "
          f"(sharded, K={args.sharded})")

    # Boundary-layer families and declared shard count.
    for key in BOUNDARY_TO_METRICSZ.values():
        if key not in samples:
            errors.append(f"sharded: /metricsz lacks {key}")
    if samples.get("trel_sharded_shards") != float(args.sharded):
        errors.append(
            f"sharded: trel_sharded_shards = "
            f"{samples.get('trel_sharded_shards')} but expected "
            f"{args.sharded}")

    # One labeled sample per shard per family.
    for s in range(args.sharded):
        for family in PER_SHARD_FAMILIES:
            key = f'{family}{{shard="{s}"}}'
            if key not in samples:
                errors.append(f"sharded: missing {key}")
        for kind in ("delta", "chain_full", "optimal_full"):
            key = f'trel_shard_publishes_total{{shard="{s}",kind="{kind}"}}'
            if key not in samples:
                errors.append(f"sharded: missing {key}")

    # Counter monotonicity between the two scrapes.
    for key, value in samples.items():
        name = key.split("{", 1)[0]
        if types.get(name) == "counter":
            later = samples2.get(key)
            if later is None:
                errors.append(f"monotonicity: {key} vanished on re-scrape")
            elif later < value:
                errors.append(
                    f"monotonicity: {key} went {value:g} -> {later:g}")

    # /statusz `boundary_metrics:` line vs /metricsz, field for field.
    fields = parse_boundary_metrics_line(statusz, errors)
    for field, value in sorted(fields.items()):
        key = BOUNDARY_TO_METRICSZ[field]
        got = samples.get(key)
        if got is None:
            errors.append(f"agreement: /metricsz lacks {key}")
        elif got != value:
            errors.append(f"agreement: {key} = {got:g} but statusz "
                          f"{field} = {value:g}")
    if fields:
        print(f"obs_check: statusz/metricsz agreement over "
              f"{len(fields)} boundary fields")

    # Per-shard statusz lines must cover every shard.
    for s in range(args.sharded):
        if f"shard[{s}]:" not in statusz:
            errors.append(f"statusz: missing shard[{s}] line")

    # Warmed-up traffic: shard reach counters and boundary republishes
    # must be live; cross-shard traffic requires a real boundary (K > 1).
    shard_reach = sum(
        samples.get(f'trel_shard_reach_queries_total{{shard="{s}"}}', 0)
        for s in range(args.sharded))
    if shard_reach <= 0:
        errors.append("warmup: no per-shard reach queries — "
                      "serve-sharded warmup broken")
    if samples.get("trel_boundary_republishes_total", 0) <= 0:
        errors.append("warmup: no boundary republishes")
    if args.sharded > 1 and \
            samples.get("trel_cross_shard_queries_total", 0) <= 0:
        errors.append("warmup: no cross-shard queries despite K > 1")

    # Windowed latency families: per-stage, front-end, and per-shard
    # series (src/service/sharded_service.cc rollup layout).
    expect_series = ["route", "boundary_bitset", "hop_core", "shard_query",
                     "merge", "single", "batch"]
    expect_series += [f"shard{s}" for s in range(args.sharded)]
    check_latency_windows(samples, statusz, errors, expect_series)
    if args.expect_flight:
        check_flightz(args, errors, require_stages=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--sharded", type=int, default=0, metavar="K",
                        help="validate a serve-sharded exporter with K "
                             "shards instead of the monolithic surface")
    parser.add_argument("--expect-flight", action="store_true",
                        help="the serve ran under TREL_FLIGHT_TEST_TRIGGER: "
                             "require a forced /flightz capture")
    args = parser.parse_args()

    errors = []

    if args.sharded > 0:
        check_sharded(args, errors)
        if errors:
            print(f"\nobs_check: {len(errors)} failure(s):", file=sys.stderr)
            for err in errors:
                print(f"  {err}", file=sys.stderr)
            return 1
        print("obs_check: all sharded exporter checks passed")
        return 0

    first = fetch(args.host, args.port, "/metricsz")
    statusz = fetch(args.host, args.port, "/statusz")
    tracez = fetch(args.host, args.port, "/tracez")
    second = fetch(args.host, args.port, "/metricsz")

    types, samples = parse_prometheus(first, errors)
    _, samples2 = parse_prometheus(second, [])
    print(f"obs_check: {len(samples)} samples in {len(types)} families")

    counters = [f for f, kind in types.items() if kind == "counter"]
    if len(counters) < 8:
        errors.append(f"only {len(counters)} counter families "
                      f"(expected the full ServiceMetrics set)")
    check_histograms(types, samples, errors)

    # Counter monotonicity between the two scrapes.
    for key, value in samples.items():
        name = key.split("{", 1)[0]
        family = name[:-len("_total")] if name.endswith("_total") else name
        if types.get(name) == "counter" or types.get(family) == "counter" \
                or name.endswith(("_bucket", "_count", "_sum")):
            later = samples2.get(key)
            if later is None:
                errors.append(f"monotonicity: {key} vanished on re-scrape")
            elif later < value:
                errors.append(
                    f"monotonicity: {key} went {value:g} -> {later:g}")

    # /statusz `metrics:` line vs /metricsz samples, field for field.
    fields = parse_statusz_metrics_line(statusz, errors)
    for field, value in sorted(fields.items()):
        key = STATUSZ_TO_METRICSZ.get(field)
        if key is None:
            continue
        got = samples.get(key)
        if got is None:
            errors.append(f"agreement: /metricsz lacks {key}")
        elif got != value:
            errors.append(f"agreement: {key} = {got:g} but statusz "
                          f"{field} = {value:g}")
    if fields:
        print(f"obs_check: statusz/metricsz agreement over "
              f"{len(fields)} fields")

    # The publish-tier split must add up: the statusz full totals are the
    # sum of the chain_full and optimal_full tiers.
    for total_field, parts in (
            ("publishes_full",
             ("publishes_chain_full", "publishes_optimal_full")),
            ("publish_us_full",
             ("publish_us_chain_full", "publish_us_optimal_full"))):
        if total_field in fields and all(p in fields for p in parts):
            part_sum = sum(fields[p] for p in parts)
            if fields[total_field] != part_sum:
                errors.append(
                    f"tier split: {total_field} {fields[total_field]:g} != "
                    f"{' + '.join(parts)} = {part_sum:g}")

    # The warmed server must show real traffic, or the checks above are
    # vacuous.  Full publishes may be chain-fast or Alg1-optimal depending
    # on the serve graph, so the tiers are summed.
    for key in ("trel_reach_queries_total", "trel_batches_total",
                'trel_publishes_total{kind="delta"}'):
        if samples.get(key, 0) <= 0:
            errors.append(f"warmup: {key} is zero — serve warmup broken")
    full_publishes = (
        samples.get('trel_publishes_total{kind="chain_full"}', 0) +
        samples.get('trel_publishes_total{kind="optimal_full"}', 0))
    if full_publishes <= 0:
        errors.append("warmup: no chain_full/optimal_full publishes — "
                      "serve warmup broken")

    if "sample_period:" not in tracez or "slow_queries:" not in tracez:
        errors.append("tracez: missing sample_period/slow_queries sections")

    # Windowed latency families: the monolithic service keeps a `single`
    # (sampled path) and a `batch` series.
    check_latency_windows(samples, statusz, errors, ["single", "batch"])
    if args.expect_flight:
        check_flightz(args, errors, require_stages=False)

    if errors:
        print(f"\nobs_check: {len(errors)} failure(s):", file=sys.stderr)
        for err in errors:
            print(f"  {err}", file=sys.stderr)
        return 1
    print("obs_check: all exporter checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
