#!/usr/bin/env bash
# CI driver: tier-1 verification, sanitizer passes, and a bench smoke run.
#
#   tools/ci.sh                # tier-1 + ASan/UBSan tests + TSan service tests
#   tools/ci.sh --tier1        # plain build + full ctest (the ROADMAP gate)
#   tools/ci.sh --asan         # ASan/UBSan build + full ctest
#   tools/ci.sh --tsan         # TSan build + concurrent service tests
#   tools/ci.sh --bench-smoke  # run every bench binary at tiny sizes,
#                              # collecting BENCH_*.json into build/bench-json,
#                              # then gate hot metrics with tools/bench_diff.py
#   tools/ci.sh --arena-fuzz   # arena differential fuzz under ASan/UBSan,
#                              # repeated once per TREL_SIMD level
#   tools/ci.sh --simd-matrix  # tier-1 test battery under each TREL_SIMD
#                              # level the host can execute
#   tools/ci.sh --family-matrix # differential + service test battery under
#                              # each TREL_INDEX family (intervals, trees,
#                              # hop, auto) — every family must be
#                              # bit-for-bit exact
#   tools/ci.sh --publish-matrix # differential + service test battery under
#                              # each TREL_PUBLISH tier (delta, chain,
#                              # optimal, auto) — every tier must be
#                              # bit-for-bit exact
#   tools/ci.sh --shard-matrix # partitioner invariants + the sharded-vs-
#                              # monolithic differential battery once per
#                              # TREL_SHARDS in {1, 2, 4, 8} — every shard
#                              # count must be bit-for-bit exact
#   tools/ci.sh --obs          # obs unit tests, live /metricsz–/statusz–
#                              # /flightz scrapes validated by
#                              # tools/obs_check.py (monolithic and
#                              # sharded exporters at K=1 and K=4, with a
#                              # forced flight-recorder capture), and the
#                              # query tracer + latency rollup under TSan
#   tools/ci.sh --soak         # bounded serving-edge soak: delta-publish
#                              # storm under open-loop load + slow scrapes,
#                              # failing on p99 drift or bad responses
#                              # (TREL_SOAK_SMOKE=1 shrinks it for CI)
#
# Stages may be combined (e.g. `tools/ci.sh --tier1 --bench-smoke`).
# Extra configure flags for all stages can be passed via TREL_CMAKE_FLAGS
# (e.g. TREL_CMAKE_FLAGS="-DTREL_WERROR=ON" as the CI workflow does).
#
# Sanitizer builds use the TREL_SANITIZE cache option from the top-level
# CMakeLists and live in their own build trees so they never disturb the
# primary build/ directory.

set -euo pipefail
cd "$(dirname "$0")/.."

# `nproc` is a GNU coreutils tool; fall back to POSIX getconf (macOS,
# minimal containers) and finally to 2.
if command -v nproc >/dev/null 2>&1; then
  default_jobs="$(nproc)"
else
  default_jobs="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 2)"
fi
JOBS="${JOBS:-${default_jobs}}"

# Word-splitting of TREL_CMAKE_FLAGS is intentional: it carries zero or
# more -D flags.
# shellcheck disable=SC2206
EXTRA_CMAKE_FLAGS=(${TREL_CMAKE_FLAGS:-})

run() {
  echo "==> $*"
  "$@"
}

tier1() {
  # Mirrors the ROADMAP tier-1 verify command exactly.
  run cmake -B build -S . "${EXTRA_CMAKE_FLAGS[@]}"
  run cmake --build build -j "${JOBS}"
  (cd build && run ctest --output-on-failure -j "${JOBS}")
}

asan_ubsan() {
  run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTREL_SANITIZE=address,undefined "${EXTRA_CMAKE_FLAGS[@]}"
  run cmake --build build-asan -j "${JOBS}"
  # Serial on purpose: the ToolTest subprocess pipeline is flaky when two
  # ASan process trees compete for memory on small hosts.
  (cd build-asan && run ctest --output-on-failure)
}

tsan_service() {
  run cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTREL_SANITIZE=thread "${EXTRA_CMAKE_FLAGS[@]}"
  run cmake --build build-tsan -j "${JOBS}" --target query_service_test
  # tools/tsan.supp: known libstdc++ atomic<shared_ptr> internal report.
  run env TSAN_OPTIONS="suppressions=$(pwd)/tools/tsan.supp halt_on_error=1" \
    ./build-tsan/tests/query_service_test
}

bench_smoke() {
  # Executes every bench binary end-to-end at tiny sizes (TREL_BENCH_SMOKE
  # caps problem sizes at n<=200 inside the binaries) as a does-it-run
  # check, so bench code can't rot between perf-measurement sessions.
  # TREL_BENCH_JSON makes each bench drop its machine-readable
  # BENCH_<name>.json into build/bench-json (the CI workflow uploads the
  # directory as an artifact); a bench that crashes mid-emission fails
  # the loop, and a run that produces no JSON at all fails the stage.
  run cmake -B build -S . "${EXTRA_CMAKE_FLAGS[@]}"
  run cmake --build build -j "${JOBS}"
  # The diff tool gates this stage, so its own rules are self-tested
  # first — in particular "missing baseline data is a hard failure".
  run python3 tools/bench_diff_test.py
  local json_dir="build/bench-json"
  rm -rf "${json_dir}"
  mkdir -p "${json_dir}"
  local binary
  for binary in build/bench/*; do
    [[ -f "${binary}" && -x "${binary}" ]] || continue
    run env TREL_BENCH_SMOKE=1 TREL_BENCH_JSON="${json_dir}" \
      "${binary}" > /dev/null
  done
  # The open-loop load harness emits artifacts through the same pipe.
  local scenario
  for scenario in zipf_single batch_mix update_storm shard_mix; do
    run env TREL_BENCH_SMOKE=1 TREL_BENCH_JSON="${json_dir}" \
      ./build/tools/loadgen --scenario="${scenario}" > /dev/null
  done
  if ! compgen -G "${json_dir}/BENCH_*.json" > /dev/null; then
    echo "bench smoke produced no BENCH_*.json in ${json_dir}" >&2
    exit 1
  fi
  run ls "${json_dir}"
  # Gate the named hot metrics against the committed smoke baselines.
  # Smoke iteration counts are tiny, so the manifest carries generous
  # per-row thresholds; TREL_BENCH_DIFF_SKIP=1 demotes failures to a
  # report for hosts that don't resemble the baseline machine.
  # The markdown drift report lands next to the JSON so the workflow's
  # bench-json artifact upload carries it too.
  run python3 tools/bench_diff.py \
    --current "${json_dir}" \
    --baselines bench/baselines/smoke \
    --manifest bench/baselines/hot_metrics.json \
    --report "${json_dir}/bench_drift_report.md"
}

# Levels this host can execute, per the runtime dispatcher itself
# (`trel_tool simd` prints "requested=... supported=<level> active=...").
host_simd_levels() {
  local tool="$1"
  local supported
  supported="$("${tool}" simd | sed -n 's/.*supported=\([a-z0-9]*\).*/\1/p')"
  case "${supported}" in
    avx2) echo "scalar sse avx2" ;;
    sse) echo "scalar sse" ;;
    *) echo "scalar" ;;
  esac
}

simd_matrix() {
  # Re-runs the dispatch-sensitive test battery once per executable
  # TREL_SIMD level.  `trel_tool simd` exits nonzero if the dispatcher
  # resolves to a level the host cannot execute or ignores an honorable
  # request, so the matrix doubles as the dispatcher-soundness gate.
  run cmake -B build -S . "${EXTRA_CMAKE_FLAGS[@]}"
  run cmake --build build -j "${JOBS}" --target \
    trel_tool simd_dispatch_test arena_differential_test \
    compressed_closure_test query_service_test
  local level
  for level in $(host_simd_levels ./build/tools/trel_tool); do
    echo "==> simd matrix: TREL_SIMD=${level}"
    run env TREL_SIMD="${level}" ./build/tools/trel_tool simd
    run env TREL_SIMD="${level}" ./build/tests/simd_dispatch_test
    run env TREL_SIMD="${level}" ./build/tests/arena_differential_test
    run env TREL_SIMD="${level}" ./build/tests/compressed_closure_test
    run env TREL_SIMD="${level}" ./build/tests/query_service_test
  done
}

family_matrix() {
  # Re-runs the correctness battery once per index family.  TREL_INDEX
  # forces the snapshot publisher's family choice (auto lets the selector
  # score each graph), so a family whose answers drift from the interval
  # ground truth — or whose overlay/batch plumbing is wrong — fails the
  # same differential assertions the default build passes.  `trel_tool
  # index` runs first per family as a cheap does-the-override-stick probe.
  run cmake -B build -S . "${EXTRA_CMAKE_FLAGS[@]}"
  run cmake --build build -j "${JOBS}" --target \
    trel_tool arena_differential_test query_service_test \
    delta_snapshot_test snapshot_test
  local graph="build/family-graph.el"
  echo "==> ./build/tools/trel_tool generate random 500 3 11 > ${graph}"
  ./build/tools/trel_tool generate random 500 3 11 > "${graph}"
  local family
  for family in intervals trees hop auto; do
    echo "==> family matrix: TREL_INDEX=${family}"
    run env TREL_INDEX="${family}" ./build/tools/trel_tool index "${graph}"
    run env TREL_INDEX="${family}" ./build/tests/arena_differential_test
    run env TREL_INDEX="${family}" ./build/tests/query_service_test
    run env TREL_INDEX="${family}" ./build/tests/delta_snapshot_test
    run env TREL_INDEX="${family}" ./build/tests/snapshot_test
  done
}

publish_matrix() {
  # Re-runs the correctness battery once per publish tier.  TREL_PUBLISH
  # forces the full-publish strategy (auto lets the selector pick per
  # graph; delta only suppresses rebuilds — the delta gate itself never
  # moves), so a tier whose labels or provenance plumbing drift from the
  # DFS/interval ground truth fails the same differential assertions the
  # default build passes.  `trel_tool chains` runs first per tier as a
  # cheap offline probe of the same eligibility signals the service uses,
  # on both a chain-friendly and a chain-hostile graph.
  run cmake -B build -S . "${EXTRA_CMAKE_FLAGS[@]}"
  run cmake --build build -j "${JOBS}" --target \
    trel_tool arena_differential_test query_service_test \
    delta_snapshot_test snapshot_test
  local chained="build/publish-chained.el"
  local random="build/publish-random.el"
  echo "==> ./build/tools/trel_tool generate chained 16 125 4.0 7 > ${chained}"
  ./build/tools/trel_tool generate chained 16 125 4.0 7 > "${chained}"
  echo "==> ./build/tools/trel_tool generate random 500 3 11 > ${random}"
  ./build/tools/trel_tool generate random 500 3 11 > "${random}"
  local tier
  for tier in delta chain optimal auto; do
    echo "==> publish matrix: TREL_PUBLISH=${tier}"
    run env TREL_PUBLISH="${tier}" ./build/tools/trel_tool chains "${chained}"
    run env TREL_PUBLISH="${tier}" ./build/tools/trel_tool chains "${random}"
    run env TREL_PUBLISH="${tier}" ./build/tests/arena_differential_test
    run env TREL_PUBLISH="${tier}" ./build/tests/query_service_test
    run env TREL_PUBLISH="${tier}" ./build/tests/delta_snapshot_test
    run env TREL_PUBLISH="${tier}" ./build/tests/snapshot_test
  done
}

shard_matrix() {
  # Partition invariants once, then the sharded-vs-monolithic
  # differential battery once per shard count.  TREL_SHARDS pins the
  # suite's K sweep to one value, so a failure names the shard count
  # that broke.  `trel_tool partition` runs per K as a cheap offline
  # probe of the same partitioning step the sharded Load performs.
  run cmake -B build -S . "${EXTRA_CMAKE_FLAGS[@]}"
  run cmake --build build -j "${JOBS}" --target \
    trel_tool partition_test sharded_service_test
  run ./build/tests/partition_test
  local graph="build/shard-graph.el"
  echo "==> ./build/tools/trel_tool generate clustered 8 125 3.0 3 0.08 7" \
    "> ${graph}"
  ./build/tools/trel_tool generate clustered 8 125 3.0 3 0.08 7 > "${graph}"
  local k
  for k in 1 2 4 8; do
    echo "==> shard matrix: TREL_SHARDS=${k}"
    run ./build/tools/trel_tool partition "${graph}" "${k}"
    run env TREL_SHARDS="${k}" ./build/tests/sharded_service_test
  done
}

# Waits for a backgrounded trel_tool serve/serve-sharded to print its
# bound port into $1; echoes the port, or fails the stage.
wait_for_serve_port() {
  local log="$1" pid="$2" what="$3"
  local port=""
  local attempt
  for attempt in $(seq 1 100); do
    port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
      "${log}")"
    [[ -n "${port}" ]] && break
    if ! kill -0 "${pid}" 2>/dev/null; then
      echo "obs: ${what} exited before binding" >&2
      cat "${log}" >&2
      return 1
    fi
    sleep 0.1
  done
  if [[ -z "${port}" ]]; then
    echo "obs: timed out waiting for ${what} to bind" >&2
    cat "${log}" >&2
    kill "${pid}" 2>/dev/null || true
    return 1
  fi
  echo "${port}"
}

obs_stage() {
  # Observability end-to-end: run the obs unit suites, then scrape live
  # exporters (trel_tool serve / serve-sharded on ephemeral ports, warmed
  # with deterministic traffic, with a forced flight-recorder capture via
  # TREL_FLIGHT_TEST_TRIGGER) and validate /metricsz, /statusz, /tracez
  # and /flightz with tools/obs_check.py — Prometheus well-formedness,
  # histogram consistency, counter monotonicity, windowed-latency
  # ordering, field-for-field agreement of /metricsz with the
  # ServiceMetrics::Read() line embedded in /statusz, and the forced
  # capture's stage-attributed traces.  The sharded exporter runs at
  # K=1 and K=4.  Finally the lock-free tracer's and the rollup's
  # concurrency tests rerun under TSan.
  run cmake -B build -S . "${EXTRA_CMAKE_FLAGS[@]}"
  run cmake --build build -j "${JOBS}" --target trel_tool obs_test \
    rollup_test
  run ./build/tests/obs_test
  run ./build/tests/rollup_test
  local graph="build/obs-graph.el"
  local serve_log="build/obs-serve.log"
  echo "==> ./build/tools/trel_tool generate random 2000 3 17 > ${graph}"
  ./build/tools/trel_tool generate random 2000 3 17 > "${graph}"
  # Sampling on (1-in-64) so /tracez and the trace counters are
  # non-trivial; port 0 = kernel-assigned, parsed back from the log.
  env TREL_TRACE_SAMPLE=64 TREL_FLIGHT_TEST_TRIGGER=1 \
    ./build/tools/trel_tool serve "${graph}" 0 60 > "${serve_log}" &
  local serve_pid=$!
  local port
  port="$(wait_for_serve_port "${serve_log}" "${serve_pid}" \
    "trel_tool serve")" || exit 1
  echo "==> obs: exporter listening on port ${port}"
  local check_status=0
  python3 tools/obs_check.py --port "${port}" --expect-flight \
    || check_status=$?
  kill "${serve_pid}" 2>/dev/null || true
  wait "${serve_pid}" 2>/dev/null || true
  [[ "${check_status}" -eq 0 ]] || exit "${check_status}"
  # Same scrape dance against the sharded exporter: serve-sharded on a
  # clustered graph (so the boundary is non-trivial), validated by the
  # checker's --sharded mode at a degenerate and a real shard count.
  local sharded_graph="build/obs-sharded-graph.el"
  echo "==> ./build/tools/trel_tool generate clustered 8 125 3.0 3 0.08 7" \
    "> ${sharded_graph}"
  ./build/tools/trel_tool generate clustered 8 125 3.0 3 0.08 7 \
    > "${sharded_graph}"
  local k
  for k in 1 4; do
    local sharded_log="build/obs-serve-sharded-k${k}.log"
    env TREL_TRACE_SAMPLE=64 TREL_FLIGHT_TEST_TRIGGER=1 \
      ./build/tools/trel_tool serve-sharded "${sharded_graph}" "${k}" 0 60 \
      > "${sharded_log}" &
    local sharded_pid=$!
    port="$(wait_for_serve_port "${sharded_log}" "${sharded_pid}" \
      "trel_tool serve-sharded (K=${k})")" || exit 1
    echo "==> obs: sharded exporter (K=${k}) listening on port ${port}"
    check_status=0
    python3 tools/obs_check.py --port "${port}" --sharded "${k}" \
      --expect-flight || check_status=$?
    kill "${sharded_pid}" 2>/dev/null || true
    wait "${sharded_pid}" 2>/dev/null || true
    [[ "${check_status}" -eq 0 ]] || exit "${check_status}"
  done
  # Tracer and rollup concurrency tests under TSan: writers race Drain /
  # Window by design.
  run cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTREL_SANITIZE=thread "${EXTRA_CMAKE_FLAGS[@]}"
  run cmake --build build-tsan -j "${JOBS}" --target obs_test rollup_test
  run env TSAN_OPTIONS="suppressions=$(pwd)/tools/tsan.supp halt_on_error=1" \
    ./build-tsan/tests/obs_test --gtest_filter='QueryTracerTest.*'
  run env TSAN_OPTIONS="suppressions=$(pwd)/tools/tsan.supp halt_on_error=1" \
    ./build-tsan/tests/rollup_test --gtest_filter='LatencyRollupTest.*'
}

soak() {
  # Bounded (~60s real time) serving-edge soak: tools/loadgen's soak
  # scenario runs a delta-publish storm (1000 publishes full-size, 25 in
  # smoke) under open-loop query load while slow consumers scrape
  # /metricsz and /statusz over the hardened HttpServer.  loadgen exits
  # nonzero — failing this stage — on p99 drift between the run's
  # halves, on any scrape answer other than 200/503, or on malformed
  # scrape bodies.  TREL_SOAK_SMOKE=1 (the workflow default) shrinks it
  # to a does-it-run pass for shared runners.
  run cmake -B build -S . "${EXTRA_CMAKE_FLAGS[@]}"
  run cmake --build build -j "${JOBS}" --target loadgen
  local json_dir="build/bench-json"
  mkdir -p "${json_dir}"
  if [[ "${TREL_SOAK_SMOKE:-0}" == "1" ]]; then
    run env TREL_BENCH_SMOKE=1 TREL_BENCH_JSON="${json_dir}" \
      ./build/tools/loadgen --scenario=soak
  else
    # ~60s: 1000 publishes at a 50ms cadence, queries and scrapes the
    # whole way.
    run env TREL_BENCH_JSON="${json_dir}" ./build/tools/loadgen \
      --scenario=soak --duration-s=60 --rate=2000 --publish-count=1000 \
      --update-interval-ms=50
  fi
}

arena_fuzz() {
  # Differential fuzz of the flat query arena under ASan/UBSan: the
  # randomized DAG / gap-labeling / overlay-chain suite is the one most
  # likely to surface an out-of-bounds read in the Eytzinger runs or
  # coverage filters, so it gets a dedicated sanitized entry point.
  run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTREL_SANITIZE=address,undefined "${EXTRA_CMAKE_FLAGS[@]}"
  run cmake --build build-asan -j "${JOBS}" --target \
    arena_differential_test trel_tool
  # Loop every host-executable dispatch level: an out-of-bounds read in
  # a vector scan or the pipelined batch engine only fires under the
  # level that exercises that code path.
  local level
  for level in $(host_simd_levels ./build-asan/tools/trel_tool); do
    echo "==> arena fuzz: TREL_SIMD=${level}"
    run env TREL_SIMD="${level}" ./build-asan/tests/arena_differential_test
  done
}

if [[ $# -eq 0 ]]; then
  stages=(tier1 asan_ubsan tsan_service)
else
  stages=()
  for arg in "$@"; do
    case "${arg}" in
      --tier1) stages+=(tier1) ;;
      --asan) stages+=(asan_ubsan) ;;
      --tsan) stages+=(tsan_service) ;;
      --bench-smoke) stages+=(bench_smoke) ;;
      --arena-fuzz) stages+=(arena_fuzz) ;;
      --simd-matrix) stages+=(simd_matrix) ;;
      --family-matrix) stages+=(family_matrix) ;;
      --publish-matrix) stages+=(publish_matrix) ;;
      --shard-matrix) stages+=(shard_matrix) ;;
      --obs) stages+=(obs_stage) ;;
      --soak) stages+=(soak) ;;
      *)
        echo "unknown stage: ${arg}" >&2
        echo "usage: tools/ci.sh [--tier1] [--asan] [--tsan] [--bench-smoke]" \
          "[--arena-fuzz] [--simd-matrix] [--family-matrix]" \
          "[--publish-matrix] [--shard-matrix] [--obs] [--soak]" >&2
        exit 2
        ;;
    esac
  done
fi

for stage in "${stages[@]}"; do
  "${stage}"
done

echo "==> ci.sh: all requested stages passed"
