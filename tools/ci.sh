#!/usr/bin/env bash
# CI driver: tier-1 verification plus sanitizer passes.
#
#   tools/ci.sh            # tier-1 + ASan/UBSan tests + TSan service tests
#   tools/ci.sh --tier1    # tier-1 only (plain build + full ctest)
#
# Sanitizer builds use the TREL_SANITIZE cache option from the top-level
# CMakeLists and live in their own build trees so they never disturb the
# primary build/ directory.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

run() {
  echo "==> $*"
  "$@"
}

tier1() {
  # Mirrors the ROADMAP tier-1 verify command exactly.
  run cmake -B build -S .
  run cmake --build build -j "${JOBS}"
  (cd build && run ctest --output-on-failure -j "${JOBS}")
}

asan_ubsan() {
  run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTREL_SANITIZE=address,undefined
  run cmake --build build-asan -j "${JOBS}"
  # Serial on purpose: the ToolTest subprocess pipeline is flaky when two
  # ASan process trees compete for memory on small hosts.
  (cd build-asan && run ctest --output-on-failure)
}

tsan_service() {
  run cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTREL_SANITIZE=thread
  run cmake --build build-tsan -j "${JOBS}" --target query_service_test
  # tools/tsan.supp: known libstdc++ atomic<shared_ptr> internal report.
  run env TSAN_OPTIONS="suppressions=$(pwd)/tools/tsan.supp halt_on_error=1" \
    ./build-tsan/tests/query_service_test
}

if [[ "${1:-}" == "--tier1" ]]; then
  tier1
else
  tier1
  asan_ubsan
  tsan_service
fi

echo "==> ci.sh: all requested stages passed"
