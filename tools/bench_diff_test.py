#!/usr/bin/env python3
"""Self-test for tools/bench_diff.py (run by ci.sh --bench-smoke).

Exercises the gating rules end-to-end through the CLI: identical data
passes, hot-metric regressions fail, and — the rule this guards hardest
— baselines with no matching current artifact or row are a hard
failure, never a silent pass.
"""

import json
import os
import subprocess
import sys
import tempfile

BENCH_DIFF = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "bench_diff.py")

BASELINE = {
    "bench": "micro_fake",
    "config": {"smoke": True},
    "rows": [
        {"name": "BM_Fast/100", "us_per_op": 1.0, "ops_per_sec": 1e6},
        {"name": "BM_Slow/100", "us_per_op": 50.0, "ops_per_sec": 2e4},
    ],
}

MANIFEST = {
    "default_threshold": 0.15,
    "hot": [
        {"bench": "micro_fake", "row": "BM_Fast/100", "metric": "us_per_op",
         "threshold": 0.5},
    ],
}


def write_artifact(directory, doc):
    path = os.path.join(directory, f"BENCH_{doc['bench']}.json")
    with open(path, "w") as f:
        json.dump(doc, f)


def run_diff(current, baselines, manifest_path, env_extra=None,
             extra_args=None):
    env = dict(os.environ)
    env.pop("TREL_BENCH_DIFF_SKIP", None)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run(
        [sys.executable, BENCH_DIFF, "--current", current,
         "--baselines", baselines, "--manifest", manifest_path]
        + (extra_args or []),
        capture_output=True, text=True, env=env)
    return proc.returncode, proc.stdout + proc.stderr


def make_dirs(tmp, current_doc):
    current = os.path.join(tmp, "current")
    baselines = os.path.join(tmp, "baselines")
    os.makedirs(current)
    os.makedirs(baselines)
    write_artifact(baselines, BASELINE)
    if current_doc is not None:
        write_artifact(current, current_doc)
    manifest_path = os.path.join(tmp, "manifest.json")
    with open(manifest_path, "w") as f:
        json.dump(MANIFEST, f)
    return current, baselines, manifest_path


def expect(name, condition, detail):
    if condition:
        print(f"  ok: {name}")
        return True
    print(f"  FAIL: {name}: {detail}", file=sys.stderr)
    return False


def main():
    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        cur, base, manifest = make_dirs(tmp, BASELINE)
        code, out = run_diff(cur, base, manifest)
        ok &= expect("identical data passes", code == 0, out)

    with tempfile.TemporaryDirectory() as tmp:
        regressed = json.loads(json.dumps(BASELINE))
        regressed["rows"][0]["us_per_op"] = 2.0  # > 0.5 threshold on 1.0.
        cur, base, manifest = make_dirs(tmp, regressed)
        code, out = run_diff(cur, base, manifest)
        ok &= expect("hot regression fails", code == 1, out)
        ok &= expect("hot regression is explained",
                     "REGRESSED" in out and "BM_Fast/100" in out, out)

    with tempfile.TemporaryDirectory() as tmp:
        # The un-gating hole: current output missing one baseline ROW.
        shrunk = json.loads(json.dumps(BASELINE))
        del shrunk["rows"][1]  # BM_Slow/100 (not even a hot row).
        cur, base, manifest = make_dirs(tmp, shrunk)
        code, out = run_diff(cur, base, manifest)
        ok &= expect("missing baseline row fails", code == 1, out)
        ok &= expect("missing row names the row",
                     "BM_Slow/100" in out and "missing" in out, out)

    with tempfile.TemporaryDirectory() as tmp:
        # Whole artifact missing from the fresh output.
        cur, base, manifest = make_dirs(tmp, None)
        code, out = run_diff(cur, base, manifest)
        ok &= expect("missing current artifact fails", code == 1, out)
        ok &= expect("missing artifact names the file",
                     "BENCH_micro_fake.json" in out, out)

    with tempfile.TemporaryDirectory() as tmp:
        # The escape hatch downgrades everything to report-only.
        cur, base, manifest = make_dirs(tmp, None)
        code, out = run_diff(cur, base, manifest,
                             env_extra={"TREL_BENCH_DIFF_SKIP": "1"})
        ok &= expect("SKIP=1 reports without failing", code == 0, out)

    with tempfile.TemporaryDirectory() as tmp:
        # Skip mode + --report: the job passes but the drift report must
        # still exist and spell out what would have failed — that's the
        # artifact a human reads on a host that doesn't match baselines.
        regressed = json.loads(json.dumps(BASELINE))
        regressed["rows"][0]["us_per_op"] = 2.0
        cur, base, manifest = make_dirs(tmp, regressed)
        report = os.path.join(tmp, "artifacts", "bench_drift_report.md")
        code, out = run_diff(cur, base, manifest,
                             env_extra={"TREL_BENCH_DIFF_SKIP": "1"},
                             extra_args=["--report", report])
        ok &= expect("SKIP=1 with --report passes", code == 0, out)
        ok &= expect("drift report file exists", os.path.isfile(report),
                     report)
        if os.path.isfile(report):
            with open(report) as f:
                body = f.read()
            ok &= expect("report names the regressed row",
                         "BM_Fast/100" in body and "REGRESSED" in body, body)
            ok &= expect("report says it was report-only",
                         "report-only" in body, body)

    with tempfile.TemporaryDirectory() as tmp:
        # Gating pass also writes the report (with an ok row).
        cur, base, manifest = make_dirs(tmp, BASELINE)
        report = os.path.join(tmp, "report.md")
        code, out = run_diff(cur, base, manifest,
                             extra_args=["--report", report])
        ok &= expect("pass mode writes report", code == 0
                     and os.path.isfile(report), out)
        if os.path.isfile(report):
            with open(report) as f:
                body = f.read()
            ok &= expect("pass report has ok row", "| ok |" in body, body)

    with tempfile.TemporaryDirectory() as tmp:
        # Extra current rows/artifacts are fine (new benches land first).
        grown = json.loads(json.dumps(BASELINE))
        grown["rows"].append({"name": "BM_New/100", "us_per_op": 3.0})
        cur, base, manifest = make_dirs(tmp, grown)
        extra = {"bench": "micro_extra", "config": {},
                 "rows": [{"name": "BM_Only/1", "us_per_op": 1.0}]}
        write_artifact(cur, extra)
        code, out = run_diff(cur, base, manifest)
        ok &= expect("extra current rows/artifacts pass", code == 0, out)

    if not ok:
        print("bench_diff_test: FAILED", file=sys.stderr)
        return 1
    print("bench_diff_test: all cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
