#!/usr/bin/env python3
"""Compare bench JSON artifacts against committed baselines.

The bench binaries write one ``BENCH_<name>.json`` per binary when
``TREL_BENCH_JSON=<dir>`` is set (see bench/gbench_report.h and
bench/bench_util.h).  This tool diffs a directory of fresh artifacts
against a directory of committed baselines and fails on regressions of
the *hot* metrics named in a manifest — everything else is reported but
never fatal, so incidental rows don't flap CI.

Usage:
  tools/bench_diff.py --current build/bench-json \
      --baselines bench/baselines/smoke \
      --manifest bench/baselines/hot_metrics.json

Manifest format::

  {
    "default_threshold": 0.15,
    "hot": [
      {"bench": "micro_query", "row": "BM_ReachesCompressed/200/2",
       "metric": "us_per_op", "threshold": 0.60},
      ...
    ]
  }

``threshold`` is the allowed relative increase (metrics are
lower-is-better unless the entry sets "direction": "higher").  Rows are
matched by their "name" field, else by the tuple of non-numeric fields.
A missing hot row or file is itself a failure (renames must update the
manifest, not silently un-gate the job), and so is ANY baseline
artifact or row absent from the fresh output — a bench that stops
emitting must fail loudly, never silently un-gate itself.  Extra
current artifacts/rows are fine.  Set TREL_BENCH_DIFF_SKIP=1 to report
without failing (escape hatch for hosts that don't match the committed
baselines' machine).  ``--report <path>`` additionally writes a markdown
drift report — the same hot-row table and failure list, in a form CI can
upload as an artifact — in every mode, including the skip-mode pass,
which is exactly when a human most wants to see what would have failed.
tools/bench_diff_test.py self-tests these rules and runs in ci.sh
--bench-smoke.
"""

import argparse
import json
import os
import sys


def load_rows(path):
    """Returns {row_key: row_dict} for one BENCH_*.json artifact."""
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        key = row.get("name")
        if key is None:
            key = "|".join(
                f"{k}={v}"
                for k, v in sorted(row.items())
                if not isinstance(v, (int, float))
            )
        rows[key] = row
    return rows


def artifact_map(directory):
    """Returns {bench_name: path} for BENCH_<name>.json files in a dir."""
    out = {}
    if not os.path.isdir(directory):
        return out
    for entry in sorted(os.listdir(directory)):
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            out[entry[len("BENCH_"):-len(".json")]] = os.path.join(
                directory, entry
            )
    return out


def fmt_delta(base, cur):
    if base == 0:
        return "n/a"
    return f"{(cur - base) / base:+.1%}"


def write_report(path, hot_rows, failures, report_only):
    """Writes the markdown drift report uploaded as a CI artifact."""
    lines = ["# Bench drift report", ""]
    if report_only:
        lines.append("Mode: **report-only** (`TREL_BENCH_DIFF_SKIP=1` — "
                     "failures below did not gate the job).")
    else:
        lines.append("Mode: gating.")
    lines += ["", "## Hot metrics", ""]
    if hot_rows:
        lines.append("| metric | baseline | current | delta | allowed "
                     "| status |")
        lines.append("|---|---|---|---|---|---|")
        for row in hot_rows:
            lines.append(
                f"| `{row['label']}` | {row['base']:g} | {row['cur']:g} "
                f"| {row['delta']} | ±{row['threshold']:.0%} "
                f"| {row['status']} |")
    else:
        lines.append("No hot rows were comparable (see failures).")
    lines += ["", "## Failures", ""]
    if failures:
        lines += [f"- {failure}" for failure in failures]
    else:
        lines.append("None.")
    lines.append("")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as f:
        f.write("\n".join(lines))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True,
                        help="directory of fresh BENCH_*.json artifacts")
    parser.add_argument("--baselines", required=True,
                        help="directory of committed baseline artifacts")
    parser.add_argument("--manifest", required=True,
                        help="hot-metrics manifest (JSON)")
    parser.add_argument("--report", default=None,
                        help="write a markdown drift report to this path")
    parser.add_argument("--verbose", action="store_true",
                        help="print every matched row, not just hot ones")
    args = parser.parse_args()

    with open(args.manifest) as f:
        manifest = json.load(f)
    default_threshold = manifest.get("default_threshold", 0.15)

    current = artifact_map(args.current)
    baselines = artifact_map(args.baselines)

    report_only = os.environ.get("TREL_BENCH_DIFF_SKIP") == "1"
    failures = []
    hot_rows = []

    # Completeness: every baseline artifact and every baseline row must
    # still exist in the fresh output.  A bench binary that silently
    # stopped emitting (dropped from the build, renamed, crashed before
    # writing) would otherwise un-gate itself — missing data must be a
    # hard failure, not an accidental pass.  Extra current artifacts and
    # rows are fine (new benches land before their baselines).
    for bench in sorted(baselines):
        if bench not in current:
            failures.append(
                f"BENCH_{bench}.json: baseline exists but no current artifact"
                f" in {args.current} — bench not run or no longer emitting;"
                " delete the baseline if it was retired on purpose")
            continue
        cur_rows = load_rows(current[bench])
        base_rows = load_rows(baselines[bench])
        for key in sorted(set(base_rows) - set(cur_rows)):
            failures.append(
                f"{bench}:{key}: row in baseline but missing from current"
                " output — renamed or dropped; regenerate the baseline if"
                " intentional")

    # Informational sweep over everything both sides have.
    if args.verbose:
        for bench in sorted(set(current) & set(baselines)):
            cur_rows = load_rows(current[bench])
            base_rows = load_rows(baselines[bench])
            for key in sorted(set(cur_rows) & set(base_rows)):
                cur, base = cur_rows[key], base_rows[key]
                for metric, base_val in base.items():
                    if not isinstance(base_val, (int, float)):
                        continue
                    cur_val = cur.get(metric)
                    if not isinstance(cur_val, (int, float)):
                        continue
                    print(f"  {bench}:{key}:{metric} {base_val:g} -> "
                          f"{cur_val:g} ({fmt_delta(base_val, cur_val)})")

    # Gate the named hot metrics.
    for entry in manifest.get("hot", []):
        bench = entry["bench"]
        row_key = entry["row"]
        metric = entry["metric"]
        threshold = entry.get("threshold", default_threshold)
        higher_is_better = entry.get("direction") == "higher"
        label = f"{bench}:{row_key}:{metric}"

        if bench not in current:
            failures.append(f"{label}: no current artifact BENCH_{bench}.json "
                            f"in {args.current}")
            continue
        if bench not in baselines:
            failures.append(f"{label}: no baseline artifact BENCH_{bench}.json"
                            f" in {args.baselines}")
            continue
        cur_row = load_rows(current[bench]).get(row_key)
        base_row = load_rows(baselines[bench]).get(row_key)
        if cur_row is None or base_row is None:
            failures.append(
                f"{label}: row missing ({'current' if cur_row is None else 'baseline'});"
                " update the manifest if the benchmark was renamed")
            continue
        cur_val = cur_row.get(metric)
        base_val = base_row.get(metric)
        if not isinstance(cur_val, (int, float)) or not isinstance(
                base_val, (int, float)):
            failures.append(f"{label}: metric missing or non-numeric")
            continue

        if higher_is_better:
            regressed = cur_val < base_val * (1.0 - threshold)
        else:
            regressed = cur_val > base_val * (1.0 + threshold)
        status = "REGRESSED" if regressed else "ok"
        print(f"{status:>9}  {label}: {base_val:g} -> {cur_val:g} "
              f"({fmt_delta(base_val, cur_val)}, allowed ±{threshold:.0%})")
        hot_rows.append({"label": label, "base": base_val, "cur": cur_val,
                         "delta": fmt_delta(base_val, cur_val),
                         "threshold": threshold, "status": status})
        if regressed:
            failures.append(
                f"{label}: {base_val:g} -> {cur_val:g} exceeds "
                f"{threshold:.0%} threshold")

    if args.report:
        write_report(args.report, hot_rows, failures, report_only)
        print(f"bench_diff: drift report written to {args.report}")

    if failures:
        print(f"\nbench_diff: {len(failures)} hot-metric failure(s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        if report_only:
            print("bench_diff: TREL_BENCH_DIFF_SKIP=1 set — reporting only",
                  file=sys.stderr)
            return 0
        return 1
    print("bench_diff: all hot metrics within thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
