// Command-line front end for the library: generate workloads, compress
// edge lists into on-disk interval stores, query them, and report storage
// statistics.
//
//   trel_tool generate random <nodes> <avg_degree> <seed>   > graph.el
//   trel_tool generate tree <nodes> <seed>                  > graph.el
//   trel_tool stats <graph.el>
//   trel_tool compress <graph.el> <closure.db>
//   trel_tool query <closure.db> <from> <to>
//   trel_tool dot <graph.el>                                > graph.dot

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/chain_cover.h"
#include "core/chain_propagator.h"
#include "core/dynamic_closure.h"
#include "baselines/inverse_closure.h"
#include "core/closure_stats.h"
#include "core/compressed_closure.h"
#include "core/hop_label_index.h"
#include "core/index_family.h"
#include "core/simd_dispatch.h"
#include "core/tree_cover_index.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/reachability.h"
#include "obs/http_server.h"
#include "relational/alpha.h"
#include "relational/csv.h"
#include "graph/partition.h"
#include "service/exposition.h"
#include "service/query_service.h"
#include "service/sharded_service.h"
#include "storage/buffer_pool.h"
#include "storage/closure_store.h"
#include "storage/page_store.h"

namespace {

using namespace trel;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  trel_tool generate random <nodes> <avg_degree> <seed>\n"
      "  trel_tool generate tree <nodes> <seed>\n"
      "  trel_tool generate bipartite <top> <bottom>\n"
      "  trel_tool generate chained <chains> <length> <avg_degree> <seed>\n"
      "  trel_tool generate clustered <clusters> <size> <avg_degree> "
      "<gateways> <cross_fraction> <seed>\n"
      "  trel_tool stats <graph.el>\n"
      "  trel_tool compress <graph.el> <closure.db>\n"
      "  trel_tool query <closure.db> <from> <to>\n"
      "  trel_tool dot <graph.el>\n"
      "  trel_tool alpha <relation.csv> <src-col> <dst-col> <from> <to>\n"
      "  trel_tool successors <relation.csv> <src-col> <dst-col> <from>\n"
      "  trel_tool simd\n"
      "  trel_tool index <graph.el>\n"
      "  trel_tool chains <graph.el>\n"
      "  trel_tool metricsz <graph.el>\n"
      "  trel_tool tracez <graph.el> [sample_period]\n"
      "  trel_tool flightz <graph.el> [num_shards]\n"
      "  trel_tool serve <graph.el> <port> [duration_s]\n"
      "  trel_tool partition <graph.el> [num_shards]\n"
      "  trel_tool serve-sharded <graph.el> <num_shards> <port> "
      "[duration_s]\n"
      "\n"
      "environment:\n"
      "  TREL_SIMD   force a query-kernel level (scalar|sse|avx2|auto)\n"
      "  TREL_INDEX  force the snapshot index family\n"
      "              (intervals|trees|hop|auto); unknown values mean auto\n"
      "  TREL_PUBLISH  force the service publish tier\n"
      "              (delta|chain|optimal|auto); unknown values mean auto\n"
      "  TREL_TRACE_SAMPLE  sample 1-in-N queries into the tracer\n"
      "  TREL_FLIGHT_TEST_TRIGGER  force one flight-recorder capture after\n"
      "              serve/serve-sharded warmup (CI /flightz validation)\n");
  return 2;
}

// Prints the SIMD dispatch state and verifies it is sound: the active
// kernel level must never exceed what the host can execute, and a
// TREL_SIMD request for a host-supported level must be honored exactly.
// CI's --simd-matrix stage runs this under each level (see tools/ci.sh).
int SimdInfo() {
  const SimdLevel supported = HighestSupportedSimdLevel();
  const SimdLevel requested = RequestedSimdLevel(supported);
  const SimdLevel active = ActiveSimdLevel();
  const char* env = std::getenv("TREL_SIMD");
  std::printf("requested=%s supported=%s active=%s\n",
              env != nullptr ? SimdLevelName(requested) : "auto",
              SimdLevelName(supported), SimdLevelName(active));
  if (static_cast<int>(active) > static_cast<int>(supported)) {
    std::fprintf(stderr,
                 "simd: dispatcher picked %s but the host only supports %s\n",
                 SimdLevelName(active), SimdLevelName(supported));
    return 1;
  }
  const SimdLevel expected =
      static_cast<int>(requested) <= static_cast<int>(supported) ? requested
                                                                 : supported;
  if (active != expected) {
    std::fprintf(stderr, "simd: dispatcher picked %s, expected %s\n",
                 SimdLevelName(active), SimdLevelName(expected));
    return 1;
  }
  return 0;
}

// Prints the family selector's signals and decision for a graph, plus
// what each family would cost in label bytes — the offline twin of the
// choice PublishLocked makes, so operators can predict (and CI can pin)
// what a snapshot of this graph will serve from.  Honors TREL_INDEX the
// same way the service does.
int IndexInfo(const Digraph& graph) {
  auto closure = CompressedClosure::Build(graph);
  if (!closure.ok()) {
    std::cerr << closure.status() << "\n";
    return 1;
  }
  FamilySignals signals;
  const IndexFamily picked =
      SelectIndexFamily(graph, closure->TotalIntervals(), &signals);
  const IndexFamilySetting setting = IndexFamilySettingFromEnv();
  const IndexFamily resolved =
      ResolveIndexFamily(setting, graph, closure->TotalIntervals());
  const TreeCoverIndex trees = TreeCoverIndex::Build(graph);
  const HopLabelIndex hop = HopLabelIndex::Build(graph);
  const char* env = std::getenv("TREL_INDEX");

  std::printf("nodes:             %d\n", signals.num_nodes);
  std::printf("arcs:              %lld\n",
              static_cast<long long>(signals.num_arcs));
  std::printf("total intervals:   %lld\n",
              static_cast<long long>(signals.total_intervals));
  std::printf("interval blowup:   %.2f  (intervals -> trees/hop above %.1f)\n",
              signals.interval_blowup, kMaxIntervalBlowup);
  std::printf("arc density:       %.2f  (trees at or above %.1f)\n",
              signals.arc_density, kDenseArcsPerNode);
  std::printf("hub arc fraction:  %.3f  (hop at or above %.2f, top-%d hubs)\n",
              signals.hub_arc_fraction, kMinHubArcFraction, kHubProbe);
  std::printf("label bytes:       intervals=%lld trees=%lld hop=%lld\n",
              static_cast<long long>(closure->ArenaByteSize()),
              static_cast<long long>(trees.LabelBytes()),
              static_cast<long long>(hop.LabelBytes()));
  std::printf("selector picks:    %s\n", IndexFamilyName(picked));
  std::printf("TREL_INDEX:        %s\n", env != nullptr ? env : "(unset)");
  std::printf("service would use: %s\n", IndexFamilyName(resolved));
  return 0;
}

// Prints the chain analyzer's signals and the publish tier a service
// Load of this graph would build with — the offline twin of the
// PublishLocked tiering, mirroring what `trel_tool index` does for the
// family selector.  Honors TREL_PUBLISH the same way the service does.
int ChainsInfo(const Digraph& graph) {
  auto signals = AnalyzeChains(graph);
  if (!signals.ok()) {
    std::cerr << signals.status() << "\n";
    return 1;
  }
  auto closure = CompressedClosure::Build(graph);
  if (!closure.ok()) {
    std::cerr << closure.status() << "\n";
    return 1;
  }
  const LabelingOptions labeling = DynamicClosure::DefaultOptions().labeling;
  auto chain = BuildChainLabeling(graph, labeling);
  // The true width (minimum chain cover, Dilworth) bounds the greedy
  // count from below; the Hopcroft-Karp matching behind it is quadratic
  // in memory, so probe it on small graphs only.
  int width = -1;
  if (graph.NumNodes() <= 4096) {
    auto minimum = ChainCover::Build(graph, ChainCover::Method::kMinimum);
    if (minimum.ok()) width = minimum->NumChains();
  }
  const char* env = std::getenv("TREL_PUBLISH");
  const PublishStrategySetting setting = PublishStrategySettingFromEnv();
  const bool loads_chain =
      chain.ok() &&
      (setting == PublishStrategySetting::kForceChain ||
       (setting == PublishStrategySetting::kAuto && signals->eligible));

  std::printf("nodes:             %d\n", signals->num_nodes);
  std::printf("arcs:              %lld\n",
              static_cast<long long>(signals->num_arcs));
  std::printf("greedy chains:     %d  (fraction %.4f, eligible below "
              "min(%d, n/%d))\n",
              signals->num_chains, signals->chain_fraction,
              kMaxChainFastChains,
              static_cast<int>(1.0 / kMaxChainWidthFraction));
  if (width >= 0) {
    std::printf("minimum chains:    %d  (antichain width, Dilworth)\n", width);
  } else {
    std::printf("minimum chains:    (skipped; graph over 4096 nodes)\n");
  }
  std::printf("chain eligible:    %s\n", signals->eligible ? "yes" : "no");
  std::printf("alg1 intervals:    %lld\n",
              static_cast<long long>(closure->TotalIntervals()));
  if (chain.ok()) {
    const int64_t chain_intervals = chain->labels.TotalIntervals();
    std::printf("chain intervals:   %lld  (blowup %.2fx, cap %lld/node)\n",
                static_cast<long long>(chain_intervals),
                closure->TotalIntervals() > 0
                    ? static_cast<double>(chain_intervals) /
                          static_cast<double>(closure->TotalIntervals())
                    : 0.0,
                static_cast<long long>(kMaxChainEntriesPerNode));
  } else {
    std::printf("chain intervals:   (build failed: %s)\n",
                chain.status().ToString().c_str());
  }
  std::printf("TREL_PUBLISH:      %s\n", env != nullptr ? env : "(unset)");
  std::printf("load would build:  %s\n",
              loads_chain ? "chain_full" : "optimal_full");
  return 0;
}

StatusOr<Digraph> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open " + path);
  return ReadEdgeList(in);
}

int Generate(int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::string kind = argv[0];
  Digraph graph;
  if (kind == "random" && argc == 4) {
    graph = RandomDag(std::atoi(argv[1]), std::atof(argv[2]),
                      std::strtoull(argv[3], nullptr, 10));
  } else if (kind == "tree" && argc == 3) {
    graph = RandomTree(std::atoi(argv[1]),
                       std::strtoull(argv[2], nullptr, 10));
  } else if (kind == "bipartite" && argc == 3) {
    graph = CompleteBipartite(std::atoi(argv[1]), std::atoi(argv[2]));
  } else if (kind == "chained" && argc == 5) {
    graph = ChainedDag(std::atoi(argv[1]), std::atoi(argv[2]),
                       std::atof(argv[3]),
                       std::strtoull(argv[4], nullptr, 10));
  } else if (kind == "clustered" && argc == 7) {
    graph = ClusteredDag(std::atoi(argv[1]), std::atoi(argv[2]),
                         std::atof(argv[3]), std::atoi(argv[4]),
                         std::atof(argv[5]),
                         std::strtoull(argv[6], nullptr, 10));
  } else {
    return Usage();
  }
  WriteEdgeList(graph, std::cout);
  return 0;
}

int Stats(const std::string& path) {
  auto graph = LoadGraph(path);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  auto closure = CompressedClosure::Build(graph.value());
  if (!closure.ok()) {
    std::cerr << closure.status() << "\n";
    return 1;
  }
  ReachabilityMatrix matrix(graph.value());
  auto inverse = InverseClosure::Build(graph.value());
  auto chains = ChainCover::Build(graph.value());

  std::printf("nodes:                %d\n", graph->NumNodes());
  std::printf("arcs:                 %lld\n",
              static_cast<long long>(graph->NumArcs()));
  std::printf("closure pairs:        %lld\n",
              static_cast<long long>(matrix.NumClosurePairs()));
  std::printf("compressed intervals: %lld  (storage units %lld)\n",
              static_cast<long long>(closure->TotalIntervals()),
              static_cast<long long>(closure->StorageUnits()));
  if (inverse.ok()) {
    std::printf("inverse pairs:        %lld\n",
                static_cast<long long>(inverse->NumInversePairs()));
  }
  if (chains.ok()) {
    std::printf("chain entries:        %lld  (%d chains, greedy)\n",
                static_cast<long long>(chains->StorageUnits()),
                chains->NumChains());
  }
  std::printf("\n%s",
              ComputeClosureStats(graph.value(), closure.value())
                  .ToString()
                  .c_str());
  return 0;
}

// Converts a command-line token to the value type of `column` in `base`.
Value ParseValueFor(const Relation& base, const std::string& column,
                    const std::string& token) {
  auto index = base.ColumnIndex(column);
  if (index.ok() &&
      base.schema()[index.value()].type == ColumnType::kInt64) {
    return Value{static_cast<int64_t>(std::strtoll(token.c_str(), nullptr,
                                                   10))};
  }
  return Value{token};
}

// Builds the alpha view over a CSV relation and answers one query.
int Alpha(const std::string& csv_path, const std::string& src_col,
          const std::string& dst_col, const std::string& from,
          const std::string& to) {
  auto base = ReadCsvFile(csv_path);
  if (!base.ok()) {
    std::cerr << base.status() << "\n";
    return 1;
  }
  auto alpha = AlphaOperator::Build(base.value(), src_col, dst_col);
  if (!alpha.ok()) {
    std::cerr << alpha.status() << "\n";
    return 1;
  }
  const bool reaches = alpha->Reaches(ParseValueFor(base.value(), src_col, from),
                                      ParseValueFor(base.value(), dst_col, to));
  std::printf("%s %s %s  (closure pairs %lld, compressed units %lld)\n",
              from.c_str(), reaches ? "reaches" : "does not reach",
              to.c_str(), static_cast<long long>(alpha->NumClosurePairs()),
              static_cast<long long>(alpha->StorageUnits()));
  return reaches ? 0 : 1;
}

int Successors(const std::string& csv_path, const std::string& src_col,
               const std::string& dst_col, const std::string& from) {
  auto base = ReadCsvFile(csv_path);
  if (!base.ok()) {
    std::cerr << base.status() << "\n";
    return 1;
  }
  auto alpha = AlphaOperator::Build(base.value(), src_col, dst_col);
  if (!alpha.ok()) {
    std::cerr << alpha.status() << "\n";
    return 1;
  }
  WriteCsv(alpha->SuccessorsOf(ParseValueFor(base.value(), src_col, from),
                               dst_col),
           std::cout);
  return 0;
}

int Compress(const std::string& graph_path, const std::string& db_path) {
  auto graph = LoadGraph(graph_path);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  auto closure = CompressedClosure::Build(graph.value());
  if (!closure.ok()) {
    std::cerr << closure.status() << "\n";
    return 1;
  }
  auto store = PageStore::Open(db_path);
  if (!store.ok()) {
    std::cerr << store.status() << "\n";
    return 1;
  }
  Status written = IntervalStore::Write(closure.value(), store.value());
  if (!written.ok()) {
    std::cerr << written << "\n";
    return 1;
  }
  std::printf("wrote %llu pages (%lld intervals over %d nodes)\n",
              static_cast<unsigned long long>(store->num_pages()),
              static_cast<long long>(closure->TotalIntervals()),
              closure->NumNodes());
  return 0;
}

int Query(const std::string& db_path, NodeId from, NodeId to) {
  auto store = PageStore::Open(db_path, PageStore::kDefaultPageSize,
                               /*truncate=*/false);
  if (!store.ok()) {
    std::cerr << store.status() << "\n";
    return 1;
  }
  BufferPool pool(&store.value(), 16);
  auto on_disk = IntervalStore::Open(&pool);
  if (!on_disk.ok()) {
    std::cerr << on_disk.status() << "\n";
    return 1;
  }
  auto result = on_disk->Reaches(from, to);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::printf("%d %s %d  (%lld logical page reads)\n", from,
              result.value() ? "reaches" : "does not reach", to,
              static_cast<long long>(pool.stats().LogicalReads()));
  return result.value() ? 0 : 1;
}

int LoadService(const std::string& path, QueryService& service) {
  auto graph = LoadGraph(path);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  Status loaded = service.Load(graph.value());
  if (!loaded.ok()) {
    std::cerr << loaded << "\n";
    return 1;
  }
  return 0;
}

// Deterministic pseudorandom traffic so the obs endpoints show live
// counters: `singles` Reaches calls plus one BatchReaches of `batch_n`.
void WarmupQueries(QueryService& service, int singles, int batch_n) {
  const NodeId n = service.Snapshot()->NumNodes();
  if (n <= 0) return;
  uint64_t lcg = 0x2545F4914F6CDD1DULL;
  auto next = [&lcg, n]() {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<NodeId>((lcg >> 33) % static_cast<uint64_t>(n));
  };
  for (int i = 0; i < singles; ++i) {
    const NodeId u = next();
    const NodeId v = next();
    (void)service.Reaches(u, v);
  }
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(batch_n);
  for (int i = 0; i < batch_n; ++i) {
    const NodeId u = next();
    const NodeId v = next();
    pairs.emplace_back(u, v);
  }
  (void)service.BatchReaches(pairs);
}

// The full warmup sequence behind metricsz / tracez / serve: traffic
// against the initial full-export snapshot (which exercises the batch
// kernel and its outcome counters), then one incremental publish (the
// Load was a full export; this one qualifies for a delta, so the span
// log carries both kinds), then a short second round against the overlay
// snapshot.
void WarmupService(QueryService& service) {
  WarmupQueries(service, 256, 4096);
  if (service.Snapshot()->NumNodes() > 0) {
    auto leaf = service.AddLeafUnder(0);
    if (leaf.ok()) service.Publish();
  }
  WarmupQueries(service, 32, 512);
}

// CI hook (tools/ci.sh --obs): when TREL_FLIGHT_TEST_TRIGGER is set to a
// non-empty, non-"0" value, freeze one capture after warmup so /flightz
// deterministically carries warmed-up traces, spans and windows.
bool FlightTestTriggerRequested() {
  const char* env = std::getenv("TREL_FLIGHT_TEST_TRIGGER");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

int Metricsz(const std::string& path) {
  QueryService service;
  if (int rc = LoadService(path, service); rc != 0) return rc;
  WarmupService(service);
  std::cout << RenderMetricsz(service);
  return 0;
}

int Tracez(const std::string& path, uint32_t sample_period) {
  QueryService service;
  if (int rc = LoadService(path, service); rc != 0) return rc;
  service.tracer().SetSamplePeriod(sample_period == 0 ? 1 : sample_period);
  WarmupService(service);
  std::cout << RenderTracez(service);
  return 0;
}

void WarmupShardedService(ShardedQueryService& service);  // Defined below.

// Offline /flightz dump: build the service (monolithic, or sharded when
// num_shards > 0), sample every query, run the warmup traffic, force one
// capture, and print the flight-recorder JSON.
int Flightz(const std::string& path, int num_shards) {
  if (num_shards > 0) {
    auto graph = LoadGraph(path);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return 1;
    }
    ShardedServiceOptions options;
    options.num_shards = num_shards;
    options.trace_sample_period = 1;
    ShardedQueryService service(options);
    Status loaded = service.Load(graph.value());
    if (!loaded.ok()) {
      std::cerr << loaded << "\n";
      return 1;
    }
    WarmupShardedService(service);
    service.flight_recorder().ForceCapture("forced_dump");
    std::cout << RenderFlightz(service) << "\n";
    return 0;
  }
  ServiceOptions options;
  options.trace_sample_period = 1;
  QueryService service(options);
  if (int rc = LoadService(path, service); rc != 0) return rc;
  WarmupService(service);
  service.flight_recorder().ForceCapture("forced_dump");
  std::cout << RenderFlightz(service) << "\n";
  return 0;
}

// Serves /metricsz, /statusz, /tracez and /flightz on 127.0.0.1:<port>
// for `duration_seconds`, then exits.  Prints the bound port (meaningful
// with port 0 = ephemeral) on a single line once the listener is up, so
// scripts can scrape it (see tools/ci.sh --obs).
int Serve(const std::string& path, int port, int duration_seconds) {
  QueryService service;
  if (int rc = LoadService(path, service); rc != 0) return rc;
  WarmupService(service);
  if (FlightTestTriggerRequested()) {
    service.flight_recorder().ForceCapture("forced_test_trigger");
  }
  HttpServer server;
  server.Handle("/metricsz", [&service]() { return RenderMetricsz(service); });
  server.Handle("/statusz", [&service]() { return RenderStatusz(service); });
  server.Handle("/tracez", [&service]() { return RenderTracez(service); });
  server.Handle("/flightz", [&service]() { return RenderFlightz(service); });
  Status started = server.Start(port);
  if (!started.ok()) {
    std::cerr << started << "\n";
    return 1;
  }
  std::printf("listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::seconds(duration_seconds));
  server.Stop();
  return 0;
}

// Prints the shard layout a ShardedQueryService Load of this graph would
// use: per-shard sizes, the edge cut, the hub cover, and what the
// boundary index would cost — the offline twin of the sharded service's
// partitioning step, mirroring `trel_tool index` / `trel_tool chains`.
int PartitionInfo(const std::string& path, int num_shards) {
  auto graph = LoadGraph(path);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  PartitionOptions options;
  options.num_shards = num_shards;
  auto part = PartitionDag(graph.value(), options);
  if (!part.ok()) {
    std::cerr << part.status() << "\n";
    return 1;
  }
  const int64_t n = graph->NumNodes();
  const int64_t hubs = static_cast<int64_t>(part->hubs.size());
  const int64_t words = (hubs + 63) / 64;
  // Two bitset rows (hubs-out, hubs-in) per node; the hub-core 2-hop
  // labels come on top but are bounded by the same order of magnitude.
  const int64_t boundary_bytes = 2 * n * words * 8;

  std::printf("nodes:              %lld\n", static_cast<long long>(n));
  std::printf("arcs:               %lld\n",
              static_cast<long long>(part->total_arcs));
  std::printf("shards:             %d\n", part->num_shards);
  std::printf("shard sizes:       ");
  for (const int64_t size : part->shard_nodes) {
    std::printf(" %lld", static_cast<long long>(size));
  }
  std::printf("\n");
  std::printf("cut arcs:           %lld  (edge-cut fraction %.4f)\n",
              static_cast<long long>(part->cut_arcs),
              part->EdgeCutFraction());
  std::printf("hubs:               %lld  (%.2f%% of nodes)\n",
              static_cast<long long>(hubs),
              n > 0 ? 100.0 * static_cast<double>(hubs) /
                          static_cast<double>(n)
                    : 0.0);
  std::printf("boundary bitsets:   %lld bytes  (%lld words/node x2)\n",
              static_cast<long long>(boundary_bytes),
              static_cast<long long>(words));
  return 0;
}

// Sharded traffic for serve-sharded warmup: singles and one batch
// through the routing front end, so the cross-shard and per-shard
// counters are all live, then a leaf append + publish to tick the
// boundary republish path.
void WarmupShardedService(ShardedQueryService& service) {
  const int64_t n = service.MetricsView().num_nodes;
  if (n <= 0) return;
  uint64_t lcg = 0x2545F4914F6CDD1DULL;
  auto next = [&lcg, n]() {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<NodeId>((lcg >> 33) % static_cast<uint64_t>(n));
  };
  for (int i = 0; i < 256; ++i) (void)service.Reaches(next(), next());
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(4096);
  for (int i = 0; i < 4096; ++i) pairs.emplace_back(next(), next());
  (void)service.BatchReaches(pairs);
  auto leaf = service.AddLeafUnder(0);
  if (leaf.ok()) service.Publish();
  for (int i = 0; i < 32; ++i) (void)service.Reaches(next(), next());
}

// Sharded twin of Serve: /metricsz, /statusz, /tracez (the front-end
// tracer with stage attribution) and /flightz over a
// ShardedQueryService.
int ServeSharded(const std::string& path, int num_shards, int port,
                 int duration_seconds) {
  auto graph = LoadGraph(path);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  ShardedServiceOptions options;
  options.num_shards = num_shards;
  ShardedQueryService service(options);
  Status loaded = service.Load(graph.value());
  if (!loaded.ok()) {
    std::cerr << loaded << "\n";
    return 1;
  }
  WarmupShardedService(service);
  if (FlightTestTriggerRequested()) {
    service.flight_recorder().ForceCapture("forced_test_trigger");
  }
  HttpServer server;
  server.Handle("/metricsz", [&service]() { return RenderMetricsz(service); });
  server.Handle("/statusz", [&service]() { return RenderStatusz(service); });
  server.Handle("/tracez", [&service]() { return RenderTracez(service); });
  server.Handle("/flightz", [&service]() { return RenderFlightz(service); });
  Status started = server.Start(port);
  if (!started.ok()) {
    std::cerr << started << "\n";
    return 1;
  }
  std::printf("listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::seconds(duration_seconds));
  server.Stop();
  return 0;
}

int Dot(const std::string& path) {
  auto graph = LoadGraph(path);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  auto cover = ComputeTreeCover(graph.value(), TreeCoverStrategy::kOptimal);
  if (!cover.ok()) {
    std::cerr << cover.status() << "\n";
    return 1;
  }
  std::cout << ToDot(graph.value(), cover->parent);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return Generate(argc - 2, argv + 2);
  if (command == "stats" && argc == 3) return Stats(argv[2]);
  if (command == "compress" && argc == 4) return Compress(argv[2], argv[3]);
  if (command == "query" && argc == 5) {
    return Query(argv[2], std::atoi(argv[3]), std::atoi(argv[4]));
  }
  if (command == "dot" && argc == 3) return Dot(argv[2]);
  if (command == "alpha" && argc == 7) {
    return Alpha(argv[2], argv[3], argv[4], argv[5], argv[6]);
  }
  if (command == "successors" && argc == 6) {
    return Successors(argv[2], argv[3], argv[4], argv[5]);
  }
  if (command == "simd" && argc == 2) return SimdInfo();
  if (command == "index" && argc == 3) {
    auto graph = LoadGraph(argv[2]);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return 1;
    }
    return IndexInfo(graph.value());
  }
  if (command == "chains" && argc == 3) {
    auto graph = LoadGraph(argv[2]);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return 1;
    }
    return ChainsInfo(graph.value());
  }
  if (command == "metricsz" && argc == 3) return Metricsz(argv[2]);
  if (command == "tracez" && (argc == 3 || argc == 4)) {
    return Tracez(argv[2],
                  argc == 4
                      ? static_cast<uint32_t>(std::strtoul(argv[3], nullptr, 10))
                      : 1u);
  }
  if (command == "flightz" && (argc == 3 || argc == 4)) {
    return Flightz(argv[2], argc == 4 ? std::atoi(argv[3]) : 0);
  }
  if (command == "serve" && (argc == 4 || argc == 5)) {
    return Serve(argv[2], std::atoi(argv[3]),
                 argc == 5 ? std::atoi(argv[4]) : 30);
  }
  if (command == "partition" && (argc == 3 || argc == 4)) {
    return PartitionInfo(argv[2], argc == 4 ? std::atoi(argv[3]) : 4);
  }
  if (command == "serve-sharded" && (argc == 5 || argc == 6)) {
    return ServeSharded(argv[2], std::atoi(argv[3]), std::atoi(argv[4]),
                        argc == 6 ? std::atoi(argv[5]) : 30);
  }
  return Usage();
}
