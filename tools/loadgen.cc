// Open-loop load generator for the QueryService serving edge.
//
// Closed-loop drivers (issue, wait, issue) hide overload: when the
// server slows down the driver slows down with it, and the recorded
// latencies stay rosy (coordinated omission).  This harness is
// open-loop: arrivals are scheduled on a fixed-rate clock that does NOT
// wait for the server, and every latency is measured from the arrival's
// *scheduled* time — so queue buildup under overload lands in the tail
// percentiles where it belongs.
//
// Scenarios (pick with --scenario=<name> or a key=value scenario file):
//   zipf_single   Zipf-skewed single Reaches() queries.
//   batch_mix     Singles mixed with TryBatch* batches at --batch-ratio,
//                 through the admission gate (rejections reported).
//   update_storm  zipf_single under a concurrent writer publishing
//                 delta snapshots every --update-interval-ms.
//   slow_scrape   zipf_single while slow consumers scrape /metricsz and
//                 /statusz over HTTP, a few bytes at a time.
//   soak          Bounded soak: --publish-count delta publishes under
//                 open-loop load + scrapes; FAILS (exit 1) on p99 drift
//                 between the first and second half, on any scrape
//                 answer other than 200/503, or on malformed scrape
//                 bodies.  CI runs this via tools/ci.sh --soak.
//   shard_mix     Singles plus batches against a ShardedQueryService
//                 (--shards, clustered graph) while a writer thread
//                 drives per-shard publishes — the sharded serving
//                 stack under one open-loop clock.
//
// Each run prints a table and (with TREL_BENCH_JSON=<dir>) writes
// BENCH_loadgen_<scenario>.json, gated by tools/bench_diff.py like any
// other bench artifact.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "graph/digraph.h"
#include "graph/generators.h"
#include "obs/http_server.h"
#include "obs/rollup.h"
#include "service/exposition.h"
#include "service/query_service.h"
#include "service/sharded_service.h"

namespace trel {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Configuration

struct LoadgenConfig {
  std::string scenario = "zipf_single";
  int64_t nodes = 20000;
  double avg_out = 3.0;
  uint64_t seed = 42;
  double rate = 5000.0;     // Scheduled arrivals per second (open loop).
  double duration_s = 10.0;
  int threads = 4;          // Client threads draining the arrival clock.
  double zipf_s = 1.1;      // Zipf skew; ~1.1 matches web-ish popularity.
  double batch_ratio = 0.2; // batch_mix: fraction of arrivals that batch.
  int batch_size = 256;
  int update_interval_ms = 20;  // Writer publish cadence in the storms.
  int updates_per_publish = 8;
  int publish_count = 1000;     // soak: stop after this many publishes.
  int scrape_interval_ms = 50;
  int scrape_chunk_bytes = 256; // Slow consumer: bytes per read...
  int scrape_pause_ms = 2;      // ...and the stall between reads.
  double soak_drift_factor = 3.0;  // soak: p99 half-over-half budget.
  double soak_p99_floor_us = 50.0; // Below this, drift is noise.
  int shards = 4;                  // shard_mix: ShardedQueryService K.
};

bool ParseKeyValue(const std::string& key, const std::string& value,
                   LoadgenConfig* config) {
  auto as_double = [&value]() { return std::strtod(value.c_str(), nullptr); };
  auto as_int = [&value]() { return std::atoll(value.c_str()); };
  if (key == "scenario") config->scenario = value;
  else if (key == "nodes") config->nodes = as_int();
  else if (key == "avg_out") config->avg_out = as_double();
  else if (key == "seed") config->seed = static_cast<uint64_t>(as_int());
  else if (key == "rate") config->rate = as_double();
  else if (key == "duration_s") config->duration_s = as_double();
  else if (key == "threads") config->threads = static_cast<int>(as_int());
  else if (key == "zipf_s") config->zipf_s = as_double();
  else if (key == "batch_ratio") config->batch_ratio = as_double();
  else if (key == "batch_size") config->batch_size = static_cast<int>(as_int());
  else if (key == "update_interval_ms")
    config->update_interval_ms = static_cast<int>(as_int());
  else if (key == "updates_per_publish")
    config->updates_per_publish = static_cast<int>(as_int());
  else if (key == "publish_count")
    config->publish_count = static_cast<int>(as_int());
  else if (key == "scrape_interval_ms")
    config->scrape_interval_ms = static_cast<int>(as_int());
  else if (key == "scrape_chunk_bytes")
    config->scrape_chunk_bytes = static_cast<int>(as_int());
  else if (key == "scrape_pause_ms")
    config->scrape_pause_ms = static_cast<int>(as_int());
  else if (key == "soak_drift_factor") config->soak_drift_factor = as_double();
  else if (key == "soak_p99_floor_us") config->soak_p99_floor_us = as_double();
  else if (key == "shards") config->shards = static_cast<int>(as_int());
  else return false;
  return true;
}

// Scenario files are flat key=value lines ('#' comments), the same keys
// as the --key=value flags; flags given after --scenario-file override
// the file.  See tools/scenarios/ for samples.
bool LoadScenarioFile(const std::string& path, LoadgenConfig* config) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "loadgen: cannot read scenario file %s\n",
                 path.c_str());
    return false;
  }
  const auto trim = [](std::string s) {
    const size_t first = s.find_first_not_of(" \t\r");
    if (first == std::string::npos) return std::string();
    const size_t last = s.find_last_not_of(" \t\r");
    return s.substr(first, last - first + 1);
  };
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos ||
        !ParseKeyValue(trim(line.substr(0, eq)), trim(line.substr(eq + 1)),
                       config)) {
      std::fprintf(stderr, "loadgen: %s:%d: bad line '%s'\n", path.c_str(),
                   line_no, line.c_str());
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Latency recording: HDR-style histogram, log2 major buckets with 16
// linear sub-buckets each, atomic so every client thread records
// directly.  Values are nanoseconds; quantiles come back in
// microseconds.

class LatencyHistogram {
 public:
  static constexpr int kMinorBits = 4;
  static constexpr int kMinor = 1 << kMinorBits;  // 16
  static constexpr int kBuckets = 64 * kMinor;

  void Record(int64_t nanos) {
    if (nanos < 0) nanos = 0;
    count_.fetch_add(1, std::memory_order_relaxed);
    int64_t prev = max_nanos_.load(std::memory_order_relaxed);
    while (nanos > prev &&
           !max_nanos_.compare_exchange_weak(prev, nanos,
                                             std::memory_order_relaxed)) {
    }
    buckets_[Index(static_cast<uint64_t>(nanos))].fetch_add(
        1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double max_us() const {
    return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) /
           1000.0;
  }

  // Lower edge of the bucket holding the q-quantile, in microseconds.
  // Resolution is 1/16 of the value, plenty for p50/p99/p999 reporting.
  double QuantileUs(double q) const {
    const uint64_t total = count();
    if (total == 0) return 0.0;
    uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
    if (target >= total) target = total - 1;
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += buckets_[i].load(std::memory_order_relaxed);
      if (seen > target) {
        return static_cast<double>(LowerEdge(i)) / 1000.0;
      }
    }
    return max_us();
  }

  void MergeFrom(const LatencyHistogram& other) {
    for (int i = 0; i < kBuckets; ++i) {
      const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
      if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    int64_t other_max = other.max_nanos_.load(std::memory_order_relaxed);
    int64_t prev = max_nanos_.load(std::memory_order_relaxed);
    while (other_max > prev &&
           !max_nanos_.compare_exchange_weak(prev, other_max,
                                             std::memory_order_relaxed)) {
    }
  }

 private:
  static int Index(uint64_t v) {
    if (v < kMinor) return static_cast<int>(v);
    int high_bit = 63;
    while ((v >> high_bit) == 0) --high_bit;
    const int major = high_bit - kMinorBits + 1;
    const int minor =
        static_cast<int>((v >> (high_bit - kMinorBits)) & (kMinor - 1));
    return major * kMinor + minor;
  }

  static uint64_t LowerEdge(int index) {
    const int major = index / kMinor;
    const int minor = index % kMinor;
    if (major == 0) return static_cast<uint64_t>(minor);
    return static_cast<uint64_t>(kMinor + minor)
           << (major - 1);
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> max_nanos_{0};
};

// ---------------------------------------------------------------------------
// Zipf-skewed node sampling over a shuffled id space (so "rank 1" is an
// arbitrary node, not node 0, and hot keys scatter across the index).

class ZipfSampler {
 public:
  ZipfSampler(int64_t n, double s, uint64_t seed) : ids_(n) {
    cdf_.reserve(n);
    double total = 0.0;
    for (int64_t rank = 1; rank <= n; ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
    for (int64_t i = 0; i < n; ++i) ids_[i] = static_cast<NodeId>(i);
    Random rng(seed ^ 0x5eedULL);
    for (int64_t i = n - 1; i > 0; --i) {
      std::swap(ids_[i],
                ids_[rng.Uniform(static_cast<uint64_t>(i) + 1)]);
    }
  }

  NodeId Sample(double u) const {
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const size_t rank = static_cast<size_t>(it - cdf_.begin());
    return ids_[std::min(rank, ids_.size() - 1)];
  }

 private:
  std::vector<double> cdf_;
  std::vector<NodeId> ids_;
};

// ---------------------------------------------------------------------------
// The open-loop core.  One atomic arrival counter, N client threads;
// arrival i is *scheduled* at start + i/rate regardless of how the
// server is doing, and its latency runs from that scheduled instant to
// completion.  When the server falls behind, sleep_until returns
// immediately and the backlog's queueing delay lands in the recorded
// tail — exactly what a closed-loop driver hides.

struct OpenLoopStats {
  uint64_t issued = 0;
  Clock::time_point start;
};

// `op(seq, rng)` performs arrival `seq` and returns the histogram the
// driver should record its latency into (nullptr = do not record).
OpenLoopStats RunOpenLoop(
    double rate, double duration_s, int threads, uint64_t seed,
    const std::function<LatencyHistogram*(uint64_t, Random&)>& op) {
  const uint64_t total_ops =
      static_cast<uint64_t>(std::max(1.0, rate * duration_s));
  const double period_ns = 1e9 / rate;
  std::atomic<uint64_t> next{0};
  OpenLoopStats stats;
  stats.start = Clock::now();
  auto client = [&](int thread_index) {
    Random rng(seed + 0x9e3779b97f4a7c15ULL *
                          static_cast<uint64_t>(thread_index + 1));
    for (;;) {
      const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total_ops) return;
      const Clock::time_point scheduled =
          stats.start + std::chrono::nanoseconds(static_cast<int64_t>(
                            period_ns * static_cast<double>(i)));
      std::this_thread::sleep_until(scheduled);
      LatencyHistogram* hist = op(i, rng);
      if (hist != nullptr) {
        hist->Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         Clock::now() - scheduled)
                         .count());
      }
    }
  };
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (int t = 0; t < threads; ++t) clients.emplace_back(client, t);
  for (std::thread& c : clients) c.join();
  stats.issued = total_ops;
  return stats;
}

// ---------------------------------------------------------------------------
// Background actors: the delta-publish writer and the slow scraper.

// Applies a few updates and publishes every `interval_ms` until told to
// stop; small touched sets keep the publishes on the delta path (the
// "delta-publish storm" of the update scenarios).
class UpdateStorm {
 public:
  UpdateStorm(QueryService* service, const LoadgenConfig& config,
              int max_publishes)
      : service_(service), config_(config), max_publishes_(max_publishes) {
    thread_ = std::thread([this] { Run(); });
  }
  ~UpdateStorm() { Stop(); }

  void Stop() {
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
  }

  int publishes() const { return publishes_.load(std::memory_order_relaxed); }

 private:
  void Run() {
    Random rng(config_.seed ^ 0x57024ULL);
    while (!stop_.load(std::memory_order_relaxed)) {
      for (int i = 0; i < config_.updates_per_publish; ++i) {
        const NodeId parent = static_cast<NodeId>(
            rng.Uniform(static_cast<uint64_t>(config_.nodes)));
        auto leaf = service_->AddLeafUnder(parent);
        // Occasionally multi-parent the fresh leaf: an arc INTO a node
        // with no out-arcs can never close a cycle, so this never
        // fails, and it dirties a second subtree for the delta.
        if (leaf.ok() && rng.Bernoulli(0.25)) {
          const NodeId other = static_cast<NodeId>(
              rng.Uniform(static_cast<uint64_t>(config_.nodes)));
          (void)service_->AddArc(other, leaf.value());
        }
      }
      service_->Publish();
      const int done = publishes_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (max_publishes_ > 0 && done >= max_publishes_) return;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.update_interval_ms));
    }
  }

  QueryService* service_;
  const LoadgenConfig config_;
  const int max_publishes_;
  std::atomic<bool> stop_{false};
  std::atomic<int> publishes_{0};
  std::thread thread_;
};

// A deliberately slow HTTP consumer: reads the response a few hundred
// bytes at a time with a pause between reads, exactly the client shape
// that wedges a single-threaded listener.  Validates every answer.
class SlowScraper {
 public:
  SlowScraper(int port, const LoadgenConfig& config)
      : port_(port), config_(config) {
    thread_ = std::thread([this] { Run(); });
  }
  ~SlowScraper() { Stop(); }

  void Stop() {
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
  }

  int scrapes() const { return scrapes_.load(std::memory_order_relaxed); }
  int shed() const { return shed_.load(std::memory_order_relaxed); }
  int bad() const { return bad_.load(std::memory_order_relaxed); }

 private:
  void Run() {
    const char* paths[2] = {"/metricsz", "/statusz"};
    int which = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      ScrapeOnce(paths[which]);
      which ^= 1;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.scrape_interval_ms));
    }
  }

  void ScrapeOnce(const char* path) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      bad_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const std::string request =
        std::string("GET ") + path + " HTTP/1.0\r\n\r\n";
    if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(request.size())) {
      ::close(fd);
      bad_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::string response;
    std::vector<char> buf(static_cast<size_t>(config_.scrape_chunk_bytes));
    for (;;) {
      const ssize_t n = ::read(fd, buf.data(), buf.size());
      if (n <= 0) break;
      response.append(buf.data(), static_cast<size_t>(n));
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.scrape_pause_ms));
    }
    ::close(fd);
    Classify(path, response);
  }

  void Classify(const char* path, const std::string& response) {
    if (response.rfind("HTTP/1.0 503", 0) == 0) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Anything but a complete, well-formed 200 (or a clean 503 above)
    // is a hard failure: the soak gate trips on `bad() != 0`.
    bool ok = response.rfind("HTTP/1.0 200", 0) == 0;
    if (ok) {
      const size_t body = response.find("\r\n\r\n");
      ok = body != std::string::npos;
      if (ok && std::strcmp(path, "/metricsz") == 0) {
        // Prometheus text: HELP/TYPE headers and our namespace present.
        ok = response.find("# HELP trel_", body) != std::string::npos &&
             response.find("# TYPE trel_", body) != std::string::npos;
      }
      if (ok && std::strcmp(path, "/statusz") == 0) {
        ok = response.find("trel query service status", body) !=
             std::string::npos;
      }
    }
    if (ok) {
      scrapes_.fetch_add(1, std::memory_order_relaxed);
    } else {
      bad_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const int port_;
  const LoadgenConfig config_;
  std::atomic<bool> stop_{false};
  std::atomic<int> scrapes_{0};
  std::atomic<int> shed_{0};
  std::atomic<int> bad_{0};
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Scenario runners

struct ScenarioResult {
  // name -> histogram rows for the report.
  std::vector<std::pair<std::string, const LatencyHistogram*>> hists;
  std::vector<std::pair<std::string, int64_t>> counters;
  bool failed = false;
  std::string failure;
};

void AddHistRow(bench_util::BenchReport* report, bench_util::Table* table,
                const std::string& name, const LatencyHistogram& hist) {
  const double p50 = hist.QuantileUs(0.50);
  const double p99 = hist.QuantileUs(0.99);
  const double p999 = hist.QuantileUs(0.999);
  table->AddRow({name, bench_util::Fmt(static_cast<int64_t>(hist.count())),
                 bench_util::Fmt(p50), bench_util::Fmt(p99),
                 bench_util::Fmt(p999), bench_util::Fmt(hist.max_us())});
  report->AddRow()
      .Set("name", name)
      .Set("count", static_cast<int64_t>(hist.count()))
      .Set("p50_us", p50)
      .Set("p99_us", p99)
      .Set("p999_us", p999)
      .Set("max_us", hist.max_us());
}

// End-of-run snapshot of the service's own windowed latency engine
// (obs/rollup.h): one row per rollup series x window, so the bench
// artifact pairs the client-observed open-loop latencies with what the
// server measured about itself over the same interval.  Series names
// are fixed per service type (and per --shards for the sharded stack),
// so the row set is deterministic and baseline-diffable.
void AddServerWindowRows(bench_util::BenchReport* report,
                         const LatencyRollup& rollup) {
  for (int s = 0; s < rollup.num_series(); ++s) {
    for (const int minutes : LatencyRollup::WindowMinutes()) {
      const LatencyRollup::WindowStats stats = rollup.Window(s, minutes);
      report->AddRow()
          .Set("name", "server_window_" + rollup.series_name(s) + "_" +
                           std::to_string(minutes) + "m")
          .Set("count", stats.count)
          .Set("p50_us", stats.p50_us)
          .Set("p99_us", stats.p99_us)
          .Set("p999_us", stats.p999_us);
    }
  }
}

// The sharded serving stack under the same open-loop clock: zipf-skewed
// singles plus BatchReaches batches against a ShardedQueryService over
// a clustered graph (the partitioner's home shape), while one writer
// thread adds leaves and publishes the dirtied shards on the update
// cadence.  Reports the same histogram rows as batch_mix plus the
// boundary counters, as BENCH_loadgen_shard_mix.json.
int RunShardMix(const LoadgenConfig& config) {
  std::fprintf(stderr,
               "loadgen: scenario=shard_mix shards=%d nodes=%lld "
               "rate=%.0f/s duration=%.2fs threads=%d\n",
               config.shards, static_cast<long long>(config.nodes),
               config.rate, config.duration_s, config.threads);
  ShardedServiceOptions options;
  options.num_shards = config.shards;
  ShardedQueryService service(options);
  const int num_clusters = std::max(2, config.shards * 2);
  const NodeId cluster_size = static_cast<NodeId>(
      std::max<int64_t>(1, config.nodes / num_clusters));
  const int64_t nodes =
      static_cast<int64_t>(num_clusters) * static_cast<int64_t>(cluster_size);
  {
    const Digraph graph =
        ClusteredDag(num_clusters, cluster_size, config.avg_out,
                     /*gateways=*/3, /*cross_fraction=*/0.08, config.seed);
    const Status status = service.Load(graph);
    if (!status.ok()) {
      std::fprintf(stderr, "loadgen: load failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  const ZipfSampler zipf(nodes, config.zipf_s, config.seed);

  // Writer: a few leaves per tick, then per-shard publishes of exactly
  // the dirtied shards — the sharded write path, not a global Publish.
  std::atomic<bool> stop_writer{false};
  std::atomic<int64_t> shard_publishes{0};
  std::thread writer([&] {
    Random rng(config.seed ^ 0x54a6dULL);
    while (!stop_writer.load(std::memory_order_relaxed)) {
      std::vector<uint8_t> dirty(static_cast<size_t>(config.shards), 0);
      for (int i = 0; i < config.updates_per_publish; ++i) {
        const NodeId parent = static_cast<NodeId>(
            rng.Uniform(static_cast<uint64_t>(nodes)));
        if (service.AddLeafUnder(parent).ok()) {
          dirty[static_cast<size_t>(service.ShardOf(parent))] = 1;
        }
      }
      for (int s = 0; s < config.shards; ++s) {
        if (dirty[static_cast<size_t>(s)] == 0) continue;
        service.PublishShard(s);
        shard_publishes.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config.update_interval_ms));
    }
  });

  LatencyHistogram single_hist, batch_hist;
  OpenLoopStats open_loop = RunOpenLoop(
      config.rate, config.duration_s, config.threads, config.seed,
      [&](uint64_t, Random& rng) -> LatencyHistogram* {
        if (rng.Bernoulli(config.batch_ratio)) {
          std::vector<std::pair<NodeId, NodeId>> pairs;
          pairs.reserve(config.batch_size);
          for (int i = 0; i < config.batch_size; ++i) {
            pairs.emplace_back(zipf.Sample(rng.NextDouble()),
                               zipf.Sample(rng.NextDouble()));
          }
          (void)service.BatchReaches(pairs);
          return &batch_hist;
        }
        (void)service.Reaches(zipf.Sample(rng.NextDouble()),
                              zipf.Sample(rng.NextDouble()));
        return &single_hist;
      });
  stop_writer.store(true, std::memory_order_relaxed);
  writer.join();

  bench_util::Table table(
      {"class", "count", "p50_us", "p99_us", "p999_us", "max_us"});
  bench_util::BenchReport report("loadgen_shard_mix");
  report.config()
      .Set("scenario", config.scenario)
      .Set("shards", static_cast<int64_t>(config.shards))
      .Set("nodes", nodes)
      .Set("rate", config.rate)
      .Set("duration_s", config.duration_s)
      .Set("threads", config.threads)
      .Set("zipf_s", config.zipf_s)
      .Set("seed", config.seed)
      .Set("smoke", bench_util::SmokeMode());
  AddHistRow(&report, &table, "overall", single_hist);
  AddHistRow(&report, &table, "batch", batch_hist);
  const ShardedMetricsView view = service.MetricsView();
  report.AddRow()
      .Set("name", "sharded_counters")
      .Set("shard_publishes", shard_publishes.load())
      .Set("cross_shard_queries", view.cross_shard_queries)
      .Set("hub_hop_queries", view.hub_hop_queries)
      .Set("boundary_republishes", view.boundary_republishes)
      .Set("boundary_skips", view.boundary_skips);
  AddServerWindowRows(&report, service.rollup());
  table.Print();
  std::fprintf(stderr,
               "loadgen: %llu arrivals issued, %lld shard publishes, "
               "%lld cross-shard queries\n",
               static_cast<unsigned long long>(open_loop.issued),
               static_cast<long long>(shard_publishes.load()),
               static_cast<long long>(view.cross_shard_queries));
  if (!report.WriteIfEnabled()) return 1;
  return 0;
}

int RunScenario(const LoadgenConfig& config) {
  if (config.scenario == "shard_mix") return RunShardMix(config);
  std::fprintf(stderr,
               "loadgen: scenario=%s nodes=%lld rate=%.0f/s duration=%.2fs "
               "threads=%d\n",
               config.scenario.c_str(),
               static_cast<long long>(config.nodes), config.rate,
               config.duration_s, config.threads);

  ServiceOptions options;
  options.num_workers = 2;
  options.max_inflight_batches = 4;  // Exercise the admission gate.
  // Sample 1-in-64 singles so the server-side `single` window series is
  // live (the monolithic rollup only times sampled singles; batches are
  // always timed).  TREL_TRACE_SAMPLE still overrides.
  options.trace_sample_period = 64;
  QueryService service(options);
  {
    const Digraph graph = RandomDag(config.nodes, config.avg_out,
                                    static_cast<uint64_t>(config.seed));
    const Status status = service.Load(graph);
    if (!status.ok()) {
      std::fprintf(stderr, "loadgen: load failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  const ZipfSampler zipf(config.nodes, config.zipf_s, config.seed);

  LatencyHistogram single_hist, batch_hist;
  LatencyHistogram first_half, second_half;  // soak drift tracking.
  std::atomic<int64_t> batches_rejected{0};

  const bool is_soak = config.scenario == "soak";
  const bool with_storm = config.scenario == "update_storm" || is_soak;
  const bool with_scrape = config.scenario == "slow_scrape" || is_soak;
  const bool with_batches = config.scenario == "batch_mix";

  // Serving edge for the scrape scenarios: small worker set and a low
  // connection cap so shedding is reachable, like a real diagnostics
  // port under pressure.
  HttpServer::Options http_options;
  http_options.num_threads = 2;
  http_options.max_connections = 8;
  HttpServer http(http_options);
  std::unique_ptr<SlowScraper> scraper;
  if (with_scrape) {
    http.Handle("/metricsz", [&service]() { return RenderMetricsz(service); });
    http.Handle("/statusz", [&service]() { return RenderStatusz(service); });
    const Status status = http.Start(0);
    if (!status.ok()) {
      std::fprintf(stderr, "loadgen: http start failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    scraper = std::make_unique<SlowScraper>(http.port(), config);
  }
  std::unique_ptr<UpdateStorm> storm;
  if (with_storm) {
    storm = std::make_unique<UpdateStorm>(
        &service, config, is_soak ? config.publish_count : 0);
  }

  // Soak halves are split on the wall clock so drift compares early vs.
  // late behavior even when the arrival clock falls behind.
  const Clock::time_point half_mark =
      Clock::now() + std::chrono::milliseconds(
                         static_cast<int64_t>(config.duration_s * 500.0));
  OpenLoopStats open_loop = RunOpenLoop(
      config.rate, config.duration_s, config.threads, config.seed,
      [&](uint64_t seq, Random& rng) -> LatencyHistogram* {
        if (with_batches && rng.Bernoulli(config.batch_ratio)) {
          std::vector<std::pair<NodeId, NodeId>> pairs;
          pairs.reserve(config.batch_size);
          for (int i = 0; i < config.batch_size; ++i) {
            pairs.emplace_back(zipf.Sample(rng.NextDouble()),
                               zipf.Sample(rng.NextDouble()));
          }
          auto result = service.TryBatchReaches(pairs);
          if (!result.ok()) {
            batches_rejected.fetch_add(1, std::memory_order_relaxed);
            return nullptr;  // Shed, not slow: keep it out of the tail.
          }
          return &batch_hist;
        }
        const NodeId u = zipf.Sample(rng.NextDouble());
        const NodeId v = zipf.Sample(rng.NextDouble());
        (void)service.Reaches(u, v);
        if (is_soak) {
          return Clock::now() < half_mark ? &first_half : &second_half;
        }
        (void)seq;
        return &single_hist;
      });

  // Soak keeps loading until the publish target is met, so a slow box
  // still exercises all --publish-count publishes (bounded by cadence:
  // publish_count * update_interval_ms).
  if (is_soak && storm != nullptr) {
    while (storm->publishes() < config.publish_count) {
      RunOpenLoop(config.rate, 0.25, config.threads,
                  config.seed ^ storm->publishes(),
                  [&](uint64_t, Random& rng) -> LatencyHistogram* {
                    (void)service.Reaches(zipf.Sample(rng.NextDouble()),
                                          zipf.Sample(rng.NextDouble()));
                    return &second_half;
                  });
    }
  }

  if (storm != nullptr) storm->Stop();
  if (scraper != nullptr) scraper->Stop();
  if (with_scrape) http.Stop();

  // ---- Report -------------------------------------------------------------
  bench_util::Table table(
      {"class", "count", "p50_us", "p99_us", "p999_us", "max_us"});
  bench_util::BenchReport report("loadgen_" + config.scenario);
  report.config()
      .Set("scenario", config.scenario)
      .Set("nodes", config.nodes)
      .Set("rate", config.rate)
      .Set("duration_s", config.duration_s)
      .Set("threads", config.threads)
      .Set("zipf_s", config.zipf_s)
      .Set("seed", config.seed)
      .Set("smoke", bench_util::SmokeMode());

  int exit_code = 0;
  if (is_soak) {
    LatencyHistogram overall;
    overall.MergeFrom(first_half);
    overall.MergeFrom(second_half);
    AddHistRow(&report, &table, "overall", overall);
    AddHistRow(&report, &table, "first_half", first_half);
    AddHistRow(&report, &table, "second_half", second_half);
    const double p99_a = first_half.QuantileUs(0.99);
    const double p99_b = second_half.QuantileUs(0.99);
    const double budget =
        config.soak_drift_factor * std::max(p99_a, config.soak_p99_floor_us);
    const int publishes = storm != nullptr ? storm->publishes() : 0;
    const int bad_scrapes = scraper != nullptr ? scraper->bad() : 0;
    report.AddRow()
        .Set("name", "soak_verdict")
        .Set("publishes", static_cast<int64_t>(publishes))
        .Set("p99_first_half_us", p99_a)
        .Set("p99_second_half_us", p99_b)
        .Set("p99_budget_us", budget)
        .Set("good_scrapes",
             static_cast<int64_t>(scraper != nullptr ? scraper->scrapes() : 0))
        .Set("shed_scrapes",
             static_cast<int64_t>(scraper != nullptr ? scraper->shed() : 0))
        .Set("bad_scrapes", static_cast<int64_t>(bad_scrapes));
    if (publishes < config.publish_count) {
      std::fprintf(stderr, "loadgen: SOAK FAIL: only %d/%d publishes ran\n",
                   publishes, config.publish_count);
      exit_code = 1;
    }
    if (p99_b > budget) {
      std::fprintf(stderr,
                   "loadgen: SOAK FAIL: p99 drifted %.1fus -> %.1fus "
                   "(budget %.1fus)\n",
                   p99_a, p99_b, budget);
      exit_code = 1;
    }
    if (bad_scrapes != 0) {
      std::fprintf(stderr,
                   "loadgen: SOAK FAIL: %d scrape(s) returned neither a "
                   "well-formed 200 nor a 503\n",
                   bad_scrapes);
      exit_code = 1;
    }
    if (exit_code == 0) {
      std::fprintf(stderr,
                   "loadgen: soak ok: %d publishes, p99 %.1fus -> %.1fus, "
                   "%d scrapes (%d shed)\n",
                   publishes, p99_a, p99_b,
                   scraper != nullptr ? scraper->scrapes() : 0,
                   scraper != nullptr ? scraper->shed() : 0);
    }
  } else {
    AddHistRow(&report, &table, "overall", single_hist);
    if (with_batches) {
      AddHistRow(&report, &table, "batch", batch_hist);
      report.AddRow()
          .Set("name", "batch_admission")
          .Set("batches_ok", static_cast<int64_t>(batch_hist.count()))
          .Set("batches_rejected", batches_rejected.load());
    }
    if (storm != nullptr) {
      report.AddRow()
          .Set("name", "publishes")
          .Set("publishes", static_cast<int64_t>(storm->publishes()));
    }
    if (scraper != nullptr) {
      report.AddRow()
          .Set("name", "scrapes")
          .Set("good_scrapes", static_cast<int64_t>(scraper->scrapes()))
          .Set("shed_scrapes", static_cast<int64_t>(scraper->shed()))
          .Set("bad_scrapes", static_cast<int64_t>(scraper->bad()));
      if (scraper->bad() != 0) {
        std::fprintf(stderr, "loadgen: FAIL: %d malformed scrape(s)\n",
                     scraper->bad());
        exit_code = 1;
      }
    }
  }
  AddServerWindowRows(&report, service.rollup());
  table.Print();
  std::fprintf(stderr, "loadgen: %llu arrivals issued\n",
               static_cast<unsigned long long>(open_loop.issued));
  if (!report.WriteIfEnabled()) exit_code = 1;
  return exit_code;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: loadgen [--scenario=zipf_single|batch_mix|update_storm|"
      "slow_scrape|soak|shard_mix]\n"
      "               [--scenario-file=path] [--rate=N] [--duration-s=S]\n"
      "               [--threads=N] [--nodes=N] [--seed=N] [--zipf-s=S]\n"
      "               [--batch-ratio=F] [--batch-size=N]\n"
      "               [--update-interval-ms=N] [--publish-count=N] ...\n"
      "Any scenario-file key works as --key=value (dashes map to "
      "underscores).\n"
      "TREL_BENCH_SMOKE=1 shrinks sizes; TREL_BENCH_JSON=<dir> writes\n"
      "BENCH_loadgen_<scenario>.json for tools/bench_diff.py.\n");
  return 2;
}

int Main(int argc, char** argv) {
  LoadgenConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return Usage();
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) return Usage();
    std::string key = arg.substr(0, eq);
    std::replace(key.begin(), key.end(), '-', '_');
    const std::string value = arg.substr(eq + 1);
    if (key == "scenario_file") {
      if (!LoadScenarioFile(value, &config)) return 2;
    } else if (!ParseKeyValue(key, value, &config)) {
      std::fprintf(stderr, "loadgen: unknown flag --%s\n", key.c_str());
      return Usage();
    }
  }
  if (bench_util::SmokeMode()) {
    // Smoke is a does-it-run pass, not a measurement: tiny graph, short
    // clock, modest rate, and a soak target that still exercises deltas.
    config.nodes = std::min<int64_t>(config.nodes, 500);
    config.duration_s = std::min(config.duration_s, 0.4);
    config.rate = std::min(config.rate, 2000.0);
    config.threads = std::min(config.threads, 2);
    config.publish_count = std::min(config.publish_count, 25);
    config.update_interval_ms = std::min(config.update_interval_ms, 5);
    config.scrape_interval_ms = std::min(config.scrape_interval_ms, 20);
  }
  return RunScenario(config);
}

}  // namespace
}  // namespace trel

int main(int argc, char** argv) { return trel::Main(argc, argv); }
