# Empty compiler generated dependencies file for parts_catalog.
# This may be replaced when dependencies are built.
