file(REMOVE_RECURSE
  "CMakeFiles/parts_catalog.dir/parts_catalog.cc.o"
  "CMakeFiles/parts_catalog.dir/parts_catalog.cc.o.d"
  "parts_catalog"
  "parts_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parts_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
