file(REMOVE_RECURSE
  "CMakeFiles/deductive_db.dir/deductive_db.cc.o"
  "CMakeFiles/deductive_db.dir/deductive_db.cc.o.d"
  "deductive_db"
  "deductive_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deductive_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
