# Empty dependencies file for deductive_db.
# This may be replaced when dependencies are built.
