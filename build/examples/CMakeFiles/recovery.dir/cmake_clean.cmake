file(REMOVE_RECURSE
  "CMakeFiles/recovery.dir/recovery.cc.o"
  "CMakeFiles/recovery.dir/recovery.cc.o.d"
  "recovery"
  "recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
