file(REMOVE_RECURSE
  "CMakeFiles/cyclic_call_graph.dir/cyclic_call_graph.cc.o"
  "CMakeFiles/cyclic_call_graph.dir/cyclic_call_graph.cc.o.d"
  "cyclic_call_graph"
  "cyclic_call_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclic_call_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
