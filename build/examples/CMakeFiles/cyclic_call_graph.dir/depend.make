# Empty dependencies file for cyclic_call_graph.
# This may be replaced when dependencies are built.
