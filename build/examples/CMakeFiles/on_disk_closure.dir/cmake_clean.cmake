file(REMOVE_RECURSE
  "CMakeFiles/on_disk_closure.dir/on_disk_closure.cc.o"
  "CMakeFiles/on_disk_closure.dir/on_disk_closure.cc.o.d"
  "on_disk_closure"
  "on_disk_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/on_disk_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
