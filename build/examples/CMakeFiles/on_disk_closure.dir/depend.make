# Empty dependencies file for on_disk_closure.
# This may be replaced when dependencies are built.
