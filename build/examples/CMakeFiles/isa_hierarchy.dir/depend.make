# Empty dependencies file for isa_hierarchy.
# This may be replaced when dependencies are built.
