file(REMOVE_RECURSE
  "CMakeFiles/isa_hierarchy.dir/isa_hierarchy.cc.o"
  "CMakeFiles/isa_hierarchy.dir/isa_hierarchy.cc.o.d"
  "isa_hierarchy"
  "isa_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
