file(REMOVE_RECURSE
  "CMakeFiles/trel_common.dir/status.cc.o"
  "CMakeFiles/trel_common.dir/status.cc.o.d"
  "libtrel_common.a"
  "libtrel_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trel_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
