file(REMOVE_RECURSE
  "libtrel_common.a"
)
