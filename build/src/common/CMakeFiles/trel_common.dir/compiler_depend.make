# Empty compiler generated dependencies file for trel_common.
# This may be replaced when dependencies are built.
