file(REMOVE_RECURSE
  "CMakeFiles/trel_relational.dir/alpha.cc.o"
  "CMakeFiles/trel_relational.dir/alpha.cc.o.d"
  "CMakeFiles/trel_relational.dir/csv.cc.o"
  "CMakeFiles/trel_relational.dir/csv.cc.o.d"
  "CMakeFiles/trel_relational.dir/operators.cc.o"
  "CMakeFiles/trel_relational.dir/operators.cc.o.d"
  "CMakeFiles/trel_relational.dir/relation.cc.o"
  "CMakeFiles/trel_relational.dir/relation.cc.o.d"
  "libtrel_relational.a"
  "libtrel_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trel_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
