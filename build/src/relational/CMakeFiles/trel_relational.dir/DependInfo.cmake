
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/alpha.cc" "src/relational/CMakeFiles/trel_relational.dir/alpha.cc.o" "gcc" "src/relational/CMakeFiles/trel_relational.dir/alpha.cc.o.d"
  "/root/repo/src/relational/csv.cc" "src/relational/CMakeFiles/trel_relational.dir/csv.cc.o" "gcc" "src/relational/CMakeFiles/trel_relational.dir/csv.cc.o.d"
  "/root/repo/src/relational/operators.cc" "src/relational/CMakeFiles/trel_relational.dir/operators.cc.o" "gcc" "src/relational/CMakeFiles/trel_relational.dir/operators.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/relational/CMakeFiles/trel_relational.dir/relation.cc.o" "gcc" "src/relational/CMakeFiles/trel_relational.dir/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/trel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/trel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/trel_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
