# Empty dependencies file for trel_relational.
# This may be replaced when dependencies are built.
