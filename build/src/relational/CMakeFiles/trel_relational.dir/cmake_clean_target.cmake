file(REMOVE_RECURSE
  "libtrel_relational.a"
)
