# Empty dependencies file for trel_graph.
# This may be replaced when dependencies are built.
