file(REMOVE_RECURSE
  "CMakeFiles/trel_graph.dir/digraph.cc.o"
  "CMakeFiles/trel_graph.dir/digraph.cc.o.d"
  "CMakeFiles/trel_graph.dir/families.cc.o"
  "CMakeFiles/trel_graph.dir/families.cc.o.d"
  "CMakeFiles/trel_graph.dir/generators.cc.o"
  "CMakeFiles/trel_graph.dir/generators.cc.o.d"
  "CMakeFiles/trel_graph.dir/graph_io.cc.o"
  "CMakeFiles/trel_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/trel_graph.dir/reachability.cc.o"
  "CMakeFiles/trel_graph.dir/reachability.cc.o.d"
  "CMakeFiles/trel_graph.dir/scc.cc.o"
  "CMakeFiles/trel_graph.dir/scc.cc.o.d"
  "CMakeFiles/trel_graph.dir/topology.cc.o"
  "CMakeFiles/trel_graph.dir/topology.cc.o.d"
  "libtrel_graph.a"
  "libtrel_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trel_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
