file(REMOVE_RECURSE
  "libtrel_graph.a"
)
