
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/digraph.cc" "src/graph/CMakeFiles/trel_graph.dir/digraph.cc.o" "gcc" "src/graph/CMakeFiles/trel_graph.dir/digraph.cc.o.d"
  "/root/repo/src/graph/families.cc" "src/graph/CMakeFiles/trel_graph.dir/families.cc.o" "gcc" "src/graph/CMakeFiles/trel_graph.dir/families.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/trel_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/trel_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/graph/CMakeFiles/trel_graph.dir/graph_io.cc.o" "gcc" "src/graph/CMakeFiles/trel_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/graph/reachability.cc" "src/graph/CMakeFiles/trel_graph.dir/reachability.cc.o" "gcc" "src/graph/CMakeFiles/trel_graph.dir/reachability.cc.o.d"
  "/root/repo/src/graph/scc.cc" "src/graph/CMakeFiles/trel_graph.dir/scc.cc.o" "gcc" "src/graph/CMakeFiles/trel_graph.dir/scc.cc.o.d"
  "/root/repo/src/graph/topology.cc" "src/graph/CMakeFiles/trel_graph.dir/topology.cc.o" "gcc" "src/graph/CMakeFiles/trel_graph.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
