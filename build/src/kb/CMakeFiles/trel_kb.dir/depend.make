# Empty dependencies file for trel_kb.
# This may be replaced when dependencies are built.
