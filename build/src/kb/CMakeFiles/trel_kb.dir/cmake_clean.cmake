file(REMOVE_RECURSE
  "CMakeFiles/trel_kb.dir/taxonomy.cc.o"
  "CMakeFiles/trel_kb.dir/taxonomy.cc.o.d"
  "libtrel_kb.a"
  "libtrel_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trel_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
