file(REMOVE_RECURSE
  "libtrel_kb.a"
)
