# Empty dependencies file for trel_storage.
# This may be replaced when dependencies are built.
