file(REMOVE_RECURSE
  "CMakeFiles/trel_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/trel_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/trel_storage.dir/closure_store.cc.o"
  "CMakeFiles/trel_storage.dir/closure_store.cc.o.d"
  "CMakeFiles/trel_storage.dir/page_store.cc.o"
  "CMakeFiles/trel_storage.dir/page_store.cc.o.d"
  "CMakeFiles/trel_storage.dir/relation_file.cc.o"
  "CMakeFiles/trel_storage.dir/relation_file.cc.o.d"
  "CMakeFiles/trel_storage.dir/update_log.cc.o"
  "CMakeFiles/trel_storage.dir/update_log.cc.o.d"
  "libtrel_storage.a"
  "libtrel_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trel_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
