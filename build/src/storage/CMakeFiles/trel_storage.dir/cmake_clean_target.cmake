file(REMOVE_RECURSE
  "libtrel_storage.a"
)
