file(REMOVE_RECURSE
  "libtrel_baselines.a"
)
