file(REMOVE_RECURSE
  "CMakeFiles/trel_baselines.dir/chain_cover.cc.o"
  "CMakeFiles/trel_baselines.dir/chain_cover.cc.o.d"
  "CMakeFiles/trel_baselines.dir/grail_index.cc.o"
  "CMakeFiles/trel_baselines.dir/grail_index.cc.o.d"
  "CMakeFiles/trel_baselines.dir/inverse_closure.cc.o"
  "CMakeFiles/trel_baselines.dir/inverse_closure.cc.o.d"
  "CMakeFiles/trel_baselines.dir/multi_hierarchy.cc.o"
  "CMakeFiles/trel_baselines.dir/multi_hierarchy.cc.o.d"
  "libtrel_baselines.a"
  "libtrel_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trel_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
