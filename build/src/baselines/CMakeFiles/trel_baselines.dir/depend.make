# Empty dependencies file for trel_baselines.
# This may be replaced when dependencies are built.
