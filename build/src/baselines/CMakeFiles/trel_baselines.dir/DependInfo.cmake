
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/chain_cover.cc" "src/baselines/CMakeFiles/trel_baselines.dir/chain_cover.cc.o" "gcc" "src/baselines/CMakeFiles/trel_baselines.dir/chain_cover.cc.o.d"
  "/root/repo/src/baselines/grail_index.cc" "src/baselines/CMakeFiles/trel_baselines.dir/grail_index.cc.o" "gcc" "src/baselines/CMakeFiles/trel_baselines.dir/grail_index.cc.o.d"
  "/root/repo/src/baselines/inverse_closure.cc" "src/baselines/CMakeFiles/trel_baselines.dir/inverse_closure.cc.o" "gcc" "src/baselines/CMakeFiles/trel_baselines.dir/inverse_closure.cc.o.d"
  "/root/repo/src/baselines/multi_hierarchy.cc" "src/baselines/CMakeFiles/trel_baselines.dir/multi_hierarchy.cc.o" "gcc" "src/baselines/CMakeFiles/trel_baselines.dir/multi_hierarchy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/trel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/trel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/trel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
