file(REMOVE_RECURSE
  "CMakeFiles/trel_core.dir/closure_index.cc.o"
  "CMakeFiles/trel_core.dir/closure_index.cc.o.d"
  "CMakeFiles/trel_core.dir/closure_stats.cc.o"
  "CMakeFiles/trel_core.dir/closure_stats.cc.o.d"
  "CMakeFiles/trel_core.dir/compressed_closure.cc.o"
  "CMakeFiles/trel_core.dir/compressed_closure.cc.o.d"
  "CMakeFiles/trel_core.dir/dynamic_closure.cc.o"
  "CMakeFiles/trel_core.dir/dynamic_closure.cc.o.d"
  "CMakeFiles/trel_core.dir/dynamic_reachability.cc.o"
  "CMakeFiles/trel_core.dir/dynamic_reachability.cc.o.d"
  "CMakeFiles/trel_core.dir/interval.cc.o"
  "CMakeFiles/trel_core.dir/interval.cc.o.d"
  "CMakeFiles/trel_core.dir/labeling.cc.o"
  "CMakeFiles/trel_core.dir/labeling.cc.o.d"
  "CMakeFiles/trel_core.dir/lattice_ops.cc.o"
  "CMakeFiles/trel_core.dir/lattice_ops.cc.o.d"
  "CMakeFiles/trel_core.dir/path_finder.cc.o"
  "CMakeFiles/trel_core.dir/path_finder.cc.o.d"
  "CMakeFiles/trel_core.dir/predecessor_index.cc.o"
  "CMakeFiles/trel_core.dir/predecessor_index.cc.o.d"
  "CMakeFiles/trel_core.dir/tree_cover.cc.o"
  "CMakeFiles/trel_core.dir/tree_cover.cc.o.d"
  "libtrel_core.a"
  "libtrel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
