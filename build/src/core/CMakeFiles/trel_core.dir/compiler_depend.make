# Empty compiler generated dependencies file for trel_core.
# This may be replaced when dependencies are built.
