
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/closure_index.cc" "src/core/CMakeFiles/trel_core.dir/closure_index.cc.o" "gcc" "src/core/CMakeFiles/trel_core.dir/closure_index.cc.o.d"
  "/root/repo/src/core/closure_stats.cc" "src/core/CMakeFiles/trel_core.dir/closure_stats.cc.o" "gcc" "src/core/CMakeFiles/trel_core.dir/closure_stats.cc.o.d"
  "/root/repo/src/core/compressed_closure.cc" "src/core/CMakeFiles/trel_core.dir/compressed_closure.cc.o" "gcc" "src/core/CMakeFiles/trel_core.dir/compressed_closure.cc.o.d"
  "/root/repo/src/core/dynamic_closure.cc" "src/core/CMakeFiles/trel_core.dir/dynamic_closure.cc.o" "gcc" "src/core/CMakeFiles/trel_core.dir/dynamic_closure.cc.o.d"
  "/root/repo/src/core/dynamic_reachability.cc" "src/core/CMakeFiles/trel_core.dir/dynamic_reachability.cc.o" "gcc" "src/core/CMakeFiles/trel_core.dir/dynamic_reachability.cc.o.d"
  "/root/repo/src/core/interval.cc" "src/core/CMakeFiles/trel_core.dir/interval.cc.o" "gcc" "src/core/CMakeFiles/trel_core.dir/interval.cc.o.d"
  "/root/repo/src/core/labeling.cc" "src/core/CMakeFiles/trel_core.dir/labeling.cc.o" "gcc" "src/core/CMakeFiles/trel_core.dir/labeling.cc.o.d"
  "/root/repo/src/core/lattice_ops.cc" "src/core/CMakeFiles/trel_core.dir/lattice_ops.cc.o" "gcc" "src/core/CMakeFiles/trel_core.dir/lattice_ops.cc.o.d"
  "/root/repo/src/core/path_finder.cc" "src/core/CMakeFiles/trel_core.dir/path_finder.cc.o" "gcc" "src/core/CMakeFiles/trel_core.dir/path_finder.cc.o.d"
  "/root/repo/src/core/predecessor_index.cc" "src/core/CMakeFiles/trel_core.dir/predecessor_index.cc.o" "gcc" "src/core/CMakeFiles/trel_core.dir/predecessor_index.cc.o.d"
  "/root/repo/src/core/tree_cover.cc" "src/core/CMakeFiles/trel_core.dir/tree_cover.cc.o" "gcc" "src/core/CMakeFiles/trel_core.dir/tree_cover.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/trel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/trel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
