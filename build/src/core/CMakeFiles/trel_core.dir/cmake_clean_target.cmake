file(REMOVE_RECURSE
  "libtrel_core.a"
)
