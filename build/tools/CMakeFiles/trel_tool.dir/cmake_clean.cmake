file(REMOVE_RECURSE
  "CMakeFiles/trel_tool.dir/trel_tool.cc.o"
  "CMakeFiles/trel_tool.dir/trel_tool.cc.o.d"
  "trel_tool"
  "trel_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trel_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
