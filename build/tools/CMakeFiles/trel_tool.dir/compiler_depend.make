# Empty compiler generated dependencies file for trel_tool.
# This may be replaced when dependencies are built.
