# Empty compiler generated dependencies file for tbl_merging_benefit.
# This may be replaced when dependencies are built.
