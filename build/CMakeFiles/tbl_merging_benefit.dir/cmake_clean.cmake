file(REMOVE_RECURSE
  "CMakeFiles/tbl_merging_benefit.dir/bench/tbl_merging_benefit.cc.o"
  "CMakeFiles/tbl_merging_benefit.dir/bench/tbl_merging_benefit.cc.o.d"
  "bench/tbl_merging_benefit"
  "bench/tbl_merging_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_merging_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
