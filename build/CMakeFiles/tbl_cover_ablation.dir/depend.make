# Empty dependencies file for tbl_cover_ablation.
# This may be replaced when dependencies are built.
