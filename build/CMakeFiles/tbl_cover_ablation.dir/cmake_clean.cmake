file(REMOVE_RECURSE
  "CMakeFiles/tbl_cover_ablation.dir/bench/tbl_cover_ablation.cc.o"
  "CMakeFiles/tbl_cover_ablation.dir/bench/tbl_cover_ablation.cc.o.d"
  "bench/tbl_cover_ablation"
  "bench/tbl_cover_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_cover_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
