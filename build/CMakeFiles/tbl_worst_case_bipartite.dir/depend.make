# Empty dependencies file for tbl_worst_case_bipartite.
# This may be replaced when dependencies are built.
