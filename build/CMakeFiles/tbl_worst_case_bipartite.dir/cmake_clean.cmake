file(REMOVE_RECURSE
  "CMakeFiles/tbl_worst_case_bipartite.dir/bench/tbl_worst_case_bipartite.cc.o"
  "CMakeFiles/tbl_worst_case_bipartite.dir/bench/tbl_worst_case_bipartite.cc.o.d"
  "bench/tbl_worst_case_bipartite"
  "bench/tbl_worst_case_bipartite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_worst_case_bipartite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
