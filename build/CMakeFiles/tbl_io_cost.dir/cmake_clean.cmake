file(REMOVE_RECURSE
  "CMakeFiles/tbl_io_cost.dir/bench/tbl_io_cost.cc.o"
  "CMakeFiles/tbl_io_cost.dir/bench/tbl_io_cost.cc.o.d"
  "bench/tbl_io_cost"
  "bench/tbl_io_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_io_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
