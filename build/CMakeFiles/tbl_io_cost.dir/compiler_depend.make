# Empty compiler generated dependencies file for tbl_io_cost.
# This may be replaced when dependencies are built.
