# Empty compiler generated dependencies file for fig3_12_interval_histogram.
# This may be replaced when dependencies are built.
