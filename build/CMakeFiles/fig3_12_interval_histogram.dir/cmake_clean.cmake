file(REMOVE_RECURSE
  "CMakeFiles/fig3_12_interval_histogram.dir/bench/fig3_12_interval_histogram.cc.o"
  "CMakeFiles/fig3_12_interval_histogram.dir/bench/fig3_12_interval_histogram.cc.o.d"
  "bench/fig3_12_interval_histogram"
  "bench/fig3_12_interval_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_12_interval_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
