# Empty dependencies file for tbl_scaling.
# This may be replaced when dependencies are built.
