file(REMOVE_RECURSE
  "CMakeFiles/tbl_scaling.dir/bench/tbl_scaling.cc.o"
  "CMakeFiles/tbl_scaling.dir/bench/tbl_scaling.cc.o.d"
  "bench/tbl_scaling"
  "bench/tbl_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
