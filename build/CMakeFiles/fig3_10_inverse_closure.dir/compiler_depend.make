# Empty compiler generated dependencies file for fig3_10_inverse_closure.
# This may be replaced when dependencies are built.
