file(REMOVE_RECURSE
  "CMakeFiles/fig3_10_inverse_closure.dir/bench/fig3_10_inverse_closure.cc.o"
  "CMakeFiles/fig3_10_inverse_closure.dir/bench/fig3_10_inverse_closure.cc.o.d"
  "bench/fig3_10_inverse_closure"
  "bench/fig3_10_inverse_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_10_inverse_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
