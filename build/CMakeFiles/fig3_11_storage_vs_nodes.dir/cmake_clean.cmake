file(REMOVE_RECURSE
  "CMakeFiles/fig3_11_storage_vs_nodes.dir/bench/fig3_11_storage_vs_nodes.cc.o"
  "CMakeFiles/fig3_11_storage_vs_nodes.dir/bench/fig3_11_storage_vs_nodes.cc.o.d"
  "bench/fig3_11_storage_vs_nodes"
  "bench/fig3_11_storage_vs_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_11_storage_vs_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
