# Empty dependencies file for fig3_11_storage_vs_nodes.
# This may be replaced when dependencies are built.
