# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3_11_storage_vs_nodes.
