file(REMOVE_RECURSE
  "CMakeFiles/fig3_9_storage_vs_degree.dir/bench/fig3_9_storage_vs_degree.cc.o"
  "CMakeFiles/fig3_9_storage_vs_degree.dir/bench/fig3_9_storage_vs_degree.cc.o.d"
  "bench/fig3_9_storage_vs_degree"
  "bench/fig3_9_storage_vs_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_9_storage_vs_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
