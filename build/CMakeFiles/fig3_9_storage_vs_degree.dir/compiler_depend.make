# Empty compiler generated dependencies file for fig3_9_storage_vs_degree.
# This may be replaced when dependencies are built.
