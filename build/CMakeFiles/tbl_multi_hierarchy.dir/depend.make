# Empty dependencies file for tbl_multi_hierarchy.
# This may be replaced when dependencies are built.
