file(REMOVE_RECURSE
  "CMakeFiles/tbl_multi_hierarchy.dir/bench/tbl_multi_hierarchy.cc.o"
  "CMakeFiles/tbl_multi_hierarchy.dir/bench/tbl_multi_hierarchy.cc.o.d"
  "bench/tbl_multi_hierarchy"
  "bench/tbl_multi_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_multi_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
