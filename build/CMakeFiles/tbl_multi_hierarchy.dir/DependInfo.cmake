
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tbl_multi_hierarchy.cc" "CMakeFiles/tbl_multi_hierarchy.dir/bench/tbl_multi_hierarchy.cc.o" "gcc" "CMakeFiles/tbl_multi_hierarchy.dir/bench/tbl_multi_hierarchy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kb/CMakeFiles/trel_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/trel_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/trel_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/trel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/trel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/trel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/trel_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
