# Empty compiler generated dependencies file for tbl_kb_workload.
# This may be replaced when dependencies are built.
