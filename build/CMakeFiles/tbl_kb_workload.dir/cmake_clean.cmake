file(REMOVE_RECURSE
  "CMakeFiles/tbl_kb_workload.dir/bench/tbl_kb_workload.cc.o"
  "CMakeFiles/tbl_kb_workload.dir/bench/tbl_kb_workload.cc.o.d"
  "bench/tbl_kb_workload"
  "bench/tbl_kb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_kb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
