# Empty dependencies file for tbl_child_order.
# This may be replaced when dependencies are built.
