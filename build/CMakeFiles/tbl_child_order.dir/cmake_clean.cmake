file(REMOVE_RECURSE
  "CMakeFiles/tbl_child_order.dir/bench/tbl_child_order.cc.o"
  "CMakeFiles/tbl_child_order.dir/bench/tbl_child_order.cc.o.d"
  "bench/tbl_child_order"
  "bench/tbl_child_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_child_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
