# Empty dependencies file for tbl_incremental_updates.
# This may be replaced when dependencies are built.
