file(REMOVE_RECURSE
  "CMakeFiles/tbl_incremental_updates.dir/bench/tbl_incremental_updates.cc.o"
  "CMakeFiles/tbl_incremental_updates.dir/bench/tbl_incremental_updates.cc.o.d"
  "bench/tbl_incremental_updates"
  "bench/tbl_incremental_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_incremental_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
