# Empty dependencies file for tbl_grail_comparison.
# This may be replaced when dependencies are built.
