file(REMOVE_RECURSE
  "CMakeFiles/tbl_grail_comparison.dir/bench/tbl_grail_comparison.cc.o"
  "CMakeFiles/tbl_grail_comparison.dir/bench/tbl_grail_comparison.cc.o.d"
  "bench/tbl_grail_comparison"
  "bench/tbl_grail_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_grail_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
