file(REMOVE_RECURSE
  "CMakeFiles/micro_query.dir/bench/micro_query.cc.o"
  "CMakeFiles/micro_query.dir/bench/micro_query.cc.o.d"
  "bench/micro_query"
  "bench/micro_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
