# Empty dependencies file for tbl_chain_vs_tree.
# This may be replaced when dependencies are built.
