file(REMOVE_RECURSE
  "CMakeFiles/tbl_chain_vs_tree.dir/bench/tbl_chain_vs_tree.cc.o"
  "CMakeFiles/tbl_chain_vs_tree.dir/bench/tbl_chain_vs_tree.cc.o.d"
  "bench/tbl_chain_vs_tree"
  "bench/tbl_chain_vs_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_chain_vs_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
