file(REMOVE_RECURSE
  "CMakeFiles/update_log_test.dir/update_log_test.cc.o"
  "CMakeFiles/update_log_test.dir/update_log_test.cc.o.d"
  "update_log_test"
  "update_log_test.pdb"
  "update_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
