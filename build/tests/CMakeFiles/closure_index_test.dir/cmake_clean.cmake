file(REMOVE_RECURSE
  "CMakeFiles/closure_index_test.dir/closure_index_test.cc.o"
  "CMakeFiles/closure_index_test.dir/closure_index_test.cc.o.d"
  "closure_index_test"
  "closure_index_test.pdb"
  "closure_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closure_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
