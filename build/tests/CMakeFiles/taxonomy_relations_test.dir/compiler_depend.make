# Empty compiler generated dependencies file for taxonomy_relations_test.
# This may be replaced when dependencies are built.
