file(REMOVE_RECURSE
  "CMakeFiles/taxonomy_relations_test.dir/taxonomy_relations_test.cc.o"
  "CMakeFiles/taxonomy_relations_test.dir/taxonomy_relations_test.cc.o.d"
  "taxonomy_relations_test"
  "taxonomy_relations_test.pdb"
  "taxonomy_relations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxonomy_relations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
