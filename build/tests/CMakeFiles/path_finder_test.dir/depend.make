# Empty dependencies file for path_finder_test.
# This may be replaced when dependencies are built.
