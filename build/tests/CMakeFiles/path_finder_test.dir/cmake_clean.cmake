file(REMOVE_RECURSE
  "CMakeFiles/path_finder_test.dir/path_finder_test.cc.o"
  "CMakeFiles/path_finder_test.dir/path_finder_test.cc.o.d"
  "path_finder_test"
  "path_finder_test.pdb"
  "path_finder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_finder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
