# Empty compiler generated dependencies file for lemma4_test.
# This may be replaced when dependencies are built.
