# Empty dependencies file for grail_index_test.
# This may be replaced when dependencies are built.
