file(REMOVE_RECURSE
  "CMakeFiles/grail_index_test.dir/grail_index_test.cc.o"
  "CMakeFiles/grail_index_test.dir/grail_index_test.cc.o.d"
  "grail_index_test"
  "grail_index_test.pdb"
  "grail_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grail_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
