# Empty compiler generated dependencies file for dynamic_reachability_test.
# This may be replaced when dependencies are built.
