file(REMOVE_RECURSE
  "CMakeFiles/dynamic_reachability_test.dir/dynamic_reachability_test.cc.o"
  "CMakeFiles/dynamic_reachability_test.dir/dynamic_reachability_test.cc.o.d"
  "dynamic_reachability_test"
  "dynamic_reachability_test.pdb"
  "dynamic_reachability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_reachability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
