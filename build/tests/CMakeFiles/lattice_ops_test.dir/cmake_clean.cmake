file(REMOVE_RECURSE
  "CMakeFiles/lattice_ops_test.dir/lattice_ops_test.cc.o"
  "CMakeFiles/lattice_ops_test.dir/lattice_ops_test.cc.o.d"
  "lattice_ops_test"
  "lattice_ops_test.pdb"
  "lattice_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
