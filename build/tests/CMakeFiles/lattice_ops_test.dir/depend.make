# Empty dependencies file for lattice_ops_test.
# This may be replaced when dependencies are built.
