file(REMOVE_RECURSE
  "CMakeFiles/tree_cover_test.dir/tree_cover_test.cc.o"
  "CMakeFiles/tree_cover_test.dir/tree_cover_test.cc.o.d"
  "tree_cover_test"
  "tree_cover_test.pdb"
  "tree_cover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_cover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
