# Empty dependencies file for interval_fuzz_test.
# This may be replaced when dependencies are built.
