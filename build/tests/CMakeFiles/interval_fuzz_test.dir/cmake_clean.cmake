file(REMOVE_RECURSE
  "CMakeFiles/interval_fuzz_test.dir/interval_fuzz_test.cc.o"
  "CMakeFiles/interval_fuzz_test.dir/interval_fuzz_test.cc.o.d"
  "interval_fuzz_test"
  "interval_fuzz_test.pdb"
  "interval_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
