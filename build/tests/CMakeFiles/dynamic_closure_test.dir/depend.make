# Empty dependencies file for dynamic_closure_test.
# This may be replaced when dependencies are built.
