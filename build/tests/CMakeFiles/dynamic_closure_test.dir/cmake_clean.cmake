file(REMOVE_RECURSE
  "CMakeFiles/dynamic_closure_test.dir/dynamic_closure_test.cc.o"
  "CMakeFiles/dynamic_closure_test.dir/dynamic_closure_test.cc.o.d"
  "dynamic_closure_test"
  "dynamic_closure_test.pdb"
  "dynamic_closure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_closure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
