file(REMOVE_RECURSE
  "CMakeFiles/dynamic_stress_test.dir/dynamic_stress_test.cc.o"
  "CMakeFiles/dynamic_stress_test.dir/dynamic_stress_test.cc.o.d"
  "dynamic_stress_test"
  "dynamic_stress_test.pdb"
  "dynamic_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
