# Empty dependencies file for dynamic_stress_test.
# This may be replaced when dependencies are built.
