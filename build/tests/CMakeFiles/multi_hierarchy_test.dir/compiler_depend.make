# Empty compiler generated dependencies file for multi_hierarchy_test.
# This may be replaced when dependencies are built.
