file(REMOVE_RECURSE
  "CMakeFiles/multi_hierarchy_test.dir/multi_hierarchy_test.cc.o"
  "CMakeFiles/multi_hierarchy_test.dir/multi_hierarchy_test.cc.o.d"
  "multi_hierarchy_test"
  "multi_hierarchy_test.pdb"
  "multi_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
