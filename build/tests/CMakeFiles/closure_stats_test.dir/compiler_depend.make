# Empty compiler generated dependencies file for closure_stats_test.
# This may be replaced when dependencies are built.
