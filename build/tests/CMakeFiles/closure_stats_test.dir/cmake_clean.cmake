file(REMOVE_RECURSE
  "CMakeFiles/closure_stats_test.dir/closure_stats_test.cc.o"
  "CMakeFiles/closure_stats_test.dir/closure_stats_test.cc.o.d"
  "closure_stats_test"
  "closure_stats_test.pdb"
  "closure_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closure_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
