# Empty compiler generated dependencies file for compressed_closure_test.
# This may be replaced when dependencies are built.
