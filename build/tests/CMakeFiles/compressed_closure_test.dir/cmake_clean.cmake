file(REMOVE_RECURSE
  "CMakeFiles/compressed_closure_test.dir/compressed_closure_test.cc.o"
  "CMakeFiles/compressed_closure_test.dir/compressed_closure_test.cc.o.d"
  "compressed_closure_test"
  "compressed_closure_test.pdb"
  "compressed_closure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_closure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
