# Empty compiler generated dependencies file for alpha_differential_test.
# This may be replaced when dependencies are built.
