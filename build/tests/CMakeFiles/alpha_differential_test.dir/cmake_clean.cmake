file(REMOVE_RECURSE
  "CMakeFiles/alpha_differential_test.dir/alpha_differential_test.cc.o"
  "CMakeFiles/alpha_differential_test.dir/alpha_differential_test.cc.o.d"
  "alpha_differential_test"
  "alpha_differential_test.pdb"
  "alpha_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
