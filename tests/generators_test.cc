#include "graph/generators.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "graph/reachability.h"
#include "graph/topology.h"

namespace trel {
namespace {

TEST(RandomDagTest, ProducesRequestedArcCount) {
  Digraph graph = RandomDag(200, 3.0, 1);
  EXPECT_EQ(graph.NumNodes(), 200);
  EXPECT_EQ(graph.NumArcs(), 600);
  EXPECT_TRUE(IsAcyclic(graph));
}

TEST(RandomDagTest, DeterministicPerSeed) {
  Digraph a = RandomDag(100, 2.0, 9);
  Digraph b = RandomDag(100, 2.0, 9);
  Digraph c = RandomDag(100, 2.0, 10);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(RandomDagTest, DenseRequestCapsAtMaximum) {
  // 10 nodes -> at most 45 arcs; asking for degree 100 must cap, stay
  // acyclic, and be a complete order.
  Digraph graph = RandomDag(10, 100.0, 2);
  EXPECT_EQ(graph.NumArcs(), 45);
  EXPECT_TRUE(IsAcyclic(graph));
}

TEST(RandomDagTest, DensePathUsesShuffle) {
  // Degree just over half the maximum exercises the enumerate-and-shuffle
  // branch.
  const NodeId n = 40;
  Digraph graph = RandomDag(n, 12.0, 3);  // 480 of 780 possible.
  EXPECT_EQ(graph.NumArcs(), 480);
  EXPECT_TRUE(IsAcyclic(graph));
}

TEST(RandomTreeTest, EveryNonRootHasOneParent) {
  Digraph tree = RandomTree(50, 4);
  EXPECT_EQ(tree.NumArcs(), 49);
  EXPECT_EQ(tree.InDegree(0), 0);
  for (NodeId v = 1; v < 50; ++v) {
    EXPECT_EQ(tree.InDegree(v), 1);
    EXPECT_LT(tree.InNeighbors(v)[0], v);
  }
}

TEST(CompleteTreeTest, SizesMatchFormula) {
  Digraph tree = CompleteTree(2, 3);  // 1+2+4+8 = 15 nodes.
  EXPECT_EQ(tree.NumNodes(), 15);
  EXPECT_EQ(tree.NumArcs(), 14);
  Digraph single = CompleteTree(3, 0);
  EXPECT_EQ(single.NumNodes(), 1);
}

TEST(LayeredDagTest, ArcsOnlyBetweenConsecutiveLayers) {
  Digraph graph = LayeredDag(3, 4, 1.0, 0);
  EXPECT_EQ(graph.NumNodes(), 12);
  EXPECT_EQ(graph.NumArcs(), 2 * 4 * 4);
  for (const auto& [from, to] : graph.Arcs()) {
    EXPECT_EQ(to / 4, from / 4 + 1);
  }
}

TEST(BipartiteTest, CompleteBipartiteReachability) {
  Digraph graph = CompleteBipartite(3, 4);
  EXPECT_EQ(graph.NumNodes(), 7);
  EXPECT_EQ(graph.NumArcs(), 12);
  ReachabilityMatrix matrix(graph);
  EXPECT_EQ(matrix.NumClosurePairs(), 12);
}

TEST(BipartiteTest, IntermediaryPreservesTopBottomReachability) {
  Digraph direct = CompleteBipartite(3, 4);
  Digraph routed = BipartiteWithIntermediary(3, 4);
  ReachabilityMatrix matrix(routed);
  // Top u reaches bottom b in the routed graph iff it did directly.
  for (NodeId u = 0; u < 3; ++u) {
    for (NodeId b = 0; b < 4; ++b) {
      EXPECT_TRUE(matrix.Reaches(u, 3 + 1 + b));
    }
  }
  EXPECT_EQ(routed.NumArcs(), 3 + 4);
  (void)direct;
}

TEST(EnumerateDagsTest, CountsAllGraphsOverOrder) {
  int64_t with_two_arcs = 0;
  const int64_t total = EnumerateDagsOverOrder(3, [&](const Digraph& graph) {
    EXPECT_TRUE(IsAcyclic(graph));
    if (graph.NumArcs() == 2) ++with_two_arcs;
  });
  EXPECT_EQ(total, 8);          // 2^(3 choose 2).
  EXPECT_EQ(with_two_arcs, 3);  // (3 choose 2) masks with two bits set.
}

TEST(HubDagTest, LayoutAndHubDominanceHold) {
  const NodeId sources = 50, hubs = 4, sinks = 40;
  const Digraph graph = HubDag(sources, hubs, sinks, 77);
  ASSERT_EQ(graph.NumNodes(), sources + hubs + sinks);
  EXPECT_TRUE(IsAcyclic(graph));
  // Sources only emit arcs; sinks only receive; hubs do both.
  int64_t hub_incident = 0;
  for (const auto& [u, v] : graph.Arcs()) {
    EXPECT_LT(u, sources + hubs);   // Sinks never emit.
    EXPECT_GE(v, sources);          // Sources never receive.
    const bool u_hub = u >= sources && u < sources + hubs;
    const bool v_hub = v >= sources && v < sources + hubs;
    if (u_hub || v_hub) ++hub_incident;
  }
  // Almost every arc touches a hub; the direct source->sink shortcuts
  // (one per 16 sources) are the only exceptions.
  EXPECT_GE(hub_incident, graph.NumArcs() - (sources / 16 + 1));
  EXPECT_LT(hub_incident, graph.NumArcs());  // But some shortcut exists.
  // Every source reaches at least one hub.
  ReachabilityMatrix matrix(graph);
  for (NodeId s = 0; s < sources; ++s) {
    bool any = false;
    for (NodeId h = 0; h < hubs; ++h) any |= matrix.Reaches(s, sources + h);
    EXPECT_TRUE(any) << "source " << s;
  }
}

TEST(HubDagTest, DeterministicPerSeed) {
  const Digraph a = HubDag(30, 3, 20, 5);
  const Digraph b = HubDag(30, 3, 20, 5);
  const Digraph c = HubDag(30, 3, 20, 6);
  EXPECT_EQ(a.Arcs(), b.Arcs());
  EXPECT_NE(a.Arcs(), c.Arcs());
}

TEST(ClusteredDagTest, ArcCountLayoutAndGatewayFunnelHold) {
  const int clusters = 6, gateways = 2;
  const NodeId cluster_size = 50;
  const Digraph graph =
      ClusteredDag(clusters, cluster_size, 3.0, gateways, 0.1, 11);
  ASSERT_EQ(graph.NumNodes(), clusters * cluster_size);
  EXPECT_TRUE(IsAcyclic(graph));
  // Arc budget: round(n * degree), split ~90/10 intra/cross (the cross
  // loop may fall short only if its attempt cap trips, which it should
  // not at this density).
  EXPECT_EQ(graph.NumArcs(), 900);
  int64_t cross = 0;
  for (const auto& [u, v] : graph.Arcs()) {
    const int cu = u / cluster_size;
    const int cv = v / cluster_size;
    EXPECT_LE(cu, cv);
    if (cu == cv) {
      EXPECT_LT(u, v);  // Intra arcs ascend in id: acyclic by layout.
    } else {
      ++cross;
      // Cross arcs leave through one of the source cluster's gateways.
      EXPECT_GE(u, (cu + 1) * cluster_size - gateways);
    }
  }
  EXPECT_EQ(cross, 90);
}

TEST(ClusteredDagTest, DeterministicPerSeed) {
  const Digraph a = ClusteredDag(4, 25, 2.0, 2, 0.1, 3);
  const Digraph b = ClusteredDag(4, 25, 2.0, 2, 0.1, 3);
  const Digraph c = ClusteredDag(4, 25, 2.0, 2, 0.1, 4);
  EXPECT_EQ(a.Arcs(), b.Arcs());
  EXPECT_NE(a.Arcs(), c.Arcs());
}

TEST(ClusteredDagTest, SingleClusterHasNoCrossArcs) {
  const NodeId cluster_size = 40;
  const Digraph graph = ClusteredDag(1, cluster_size, 2.0, 1, 0.5, 7);
  EXPECT_TRUE(IsAcyclic(graph));
  EXPECT_EQ(graph.NumArcs(), 80);  // Cross share folded back into intra.
}

TEST(SampleDagTest, UniformSamplesAreAcyclicAndVaried) {
  int64_t arcs_total = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Digraph graph = SampleDagOverOrder(8, seed);
    EXPECT_TRUE(IsAcyclic(graph));
    arcs_total += graph.NumArcs();
  }
  // Expected arcs per sample = 28/2 = 14.
  EXPECT_NEAR(static_cast<double>(arcs_total) / 20.0, 14.0, 3.0);
}

}  // namespace
}  // namespace trel
