#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/graph_io.h"
#include "graph/reachability.h"
#include "graph/scc.h"
#include "graph/topology.h"
#include "tests/test_util.h"

namespace trel {
namespace {

using testing_util::GraphFromArcs;

TEST(DigraphTest, AddNodesAndArcs) {
  Digraph graph(3);
  EXPECT_EQ(graph.NumNodes(), 3);
  EXPECT_EQ(graph.NumArcs(), 0);
  EXPECT_TRUE(graph.AddArc(0, 1).ok());
  EXPECT_TRUE(graph.AddArc(1, 2).ok());
  EXPECT_EQ(graph.NumArcs(), 2);
  EXPECT_TRUE(graph.HasArc(0, 1));
  EXPECT_FALSE(graph.HasArc(1, 0));
  const NodeId added = graph.AddNode();
  EXPECT_EQ(added, 3);
  EXPECT_EQ(graph.NumNodes(), 4);
}

TEST(DigraphTest, RejectsSelfLoopsDuplicatesAndBadEndpoints) {
  Digraph graph(2);
  EXPECT_EQ(graph.AddArc(0, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(graph.AddArc(0, 5).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(graph.AddArc(-1, 1).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(graph.AddArc(0, 1).ok());
  EXPECT_EQ(graph.AddArc(0, 1).code(), StatusCode::kAlreadyExists);
}

TEST(DigraphTest, RemoveArcUpdatesBothDirections) {
  Digraph graph = GraphFromArcs(3, {{0, 1}, {0, 2}, {1, 2}});
  EXPECT_TRUE(graph.RemoveArc(0, 2).ok());
  EXPECT_FALSE(graph.HasArc(0, 2));
  EXPECT_EQ(graph.NumArcs(), 2);
  EXPECT_EQ(graph.InDegree(2), 1);
  EXPECT_EQ(graph.RemoveArc(0, 2).code(), StatusCode::kNotFound);
}

TEST(DigraphTest, RootsAndLeaves) {
  Digraph graph = GraphFromArcs(4, {{0, 1}, {0, 2}, {2, 3}});
  EXPECT_EQ(graph.RootNodes(), (std::vector<NodeId>{0}));
  EXPECT_EQ(graph.LeafNodes(), (std::vector<NodeId>{1, 3}));
}

TEST(DigraphTest, ArcsEnumeration) {
  Digraph graph = GraphFromArcs(3, {{0, 1}, {1, 2}});
  auto arcs = graph.Arcs();
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_EQ(arcs[0], (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(arcs[1], (std::pair<NodeId, NodeId>{1, 2}));
}

TEST(TopologyTest, OrdersRespectArcs) {
  Digraph graph = GraphFromArcs(5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}});
  auto order = TopologicalOrder(graph);
  ASSERT_TRUE(order.ok());
  auto position = PositionsInOrder(order.value(), graph.NumNodes());
  for (const auto& [from, to] : graph.Arcs()) {
    EXPECT_LT(position[from], position[to]);
  }
}

TEST(TopologyTest, DetectsCycle) {
  Digraph graph = GraphFromArcs(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(TopologicalOrder(graph).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(IsAcyclic(graph));
  EXPECT_TRUE(IsAcyclic(GraphFromArcs(3, {{0, 1}, {1, 2}})));
}

TEST(SccTest, AcyclicGraphHasSingletonComponents) {
  Digraph graph = GraphFromArcs(4, {{0, 1}, {1, 2}, {2, 3}});
  Condensation condensation = CondenseScc(graph);
  EXPECT_EQ(condensation.NumComponents(), 4);
  EXPECT_EQ(condensation.dag.NumArcs(), 3);
}

TEST(SccTest, CollapsesCycle) {
  // 0 -> (1 <-> 2) -> 3, plus 2 -> 1 back edge forms the SCC {1,2}.
  Digraph graph = GraphFromArcs(4, {{0, 1}, {1, 2}, {2, 1}, {2, 3}});
  Condensation condensation = CondenseScc(graph);
  EXPECT_EQ(condensation.NumComponents(), 3);
  EXPECT_EQ(condensation.component_of[1], condensation.component_of[2]);
  EXPECT_NE(condensation.component_of[0], condensation.component_of[1]);
  EXPECT_TRUE(IsAcyclic(condensation.dag));
}

TEST(SccTest, LargeCycleCollapsesToOneComponent) {
  const int n = 1000;  // Also exercises the iterative Tarjan's depth.
  Digraph graph(n);
  for (int v = 0; v < n; ++v) {
    ASSERT_TRUE(graph.AddArc(v, (v + 1) % n).ok());
  }
  Condensation condensation = CondenseScc(graph);
  EXPECT_EQ(condensation.NumComponents(), 1);
  EXPECT_EQ(static_cast<int>(condensation.members[0].size()), n);
}

TEST(ReachabilityTest, DfsReachesFollowsPaths) {
  Digraph graph = GraphFromArcs(5, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_TRUE(DfsReaches(graph, 0, 2));
  EXPECT_TRUE(DfsReaches(graph, 0, 0));
  EXPECT_FALSE(DfsReaches(graph, 0, 4));
  EXPECT_FALSE(DfsReaches(graph, 2, 0));
}

TEST(ReachabilityTest, MatrixMatchesDfsOnDag) {
  Digraph graph = testing_util::PaperStyleDag();
  ReachabilityMatrix matrix(graph);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      EXPECT_EQ(matrix.Reaches(u, v), DfsReaches(graph, u, v))
          << u << "->" << v;
    }
  }
}

TEST(ReachabilityTest, MatrixHandlesCycles) {
  Digraph graph = GraphFromArcs(3, {{0, 1}, {1, 0}, {1, 2}});
  ReachabilityMatrix matrix(graph);
  EXPECT_TRUE(matrix.Reaches(0, 1));
  EXPECT_TRUE(matrix.Reaches(1, 0));
  EXPECT_TRUE(matrix.Reaches(0, 2));
  EXPECT_FALSE(matrix.Reaches(2, 0));
  EXPECT_EQ(matrix.NumClosurePairs(), 4);  // 0->1, 0->2, 1->0, 1->2.
}

TEST(ReachabilityTest, ClosurePairsCountExcludesDiagonal) {
  // Chain 0->1->2: pairs (0,1),(0,2),(1,2).
  Digraph graph = GraphFromArcs(3, {{0, 1}, {1, 2}});
  ReachabilityMatrix matrix(graph);
  EXPECT_EQ(matrix.NumClosurePairs(), 3);
  EXPECT_EQ(matrix.Successors(0), (std::vector<NodeId>{1, 2}));
}

TEST(GraphIoTest, EdgeListRoundTrip) {
  Digraph graph = GraphFromArcs(4, {{0, 1}, {2, 3}});
  std::ostringstream os;
  WriteEdgeList(graph, os);
  std::istringstream is(os.str());
  auto read = ReadEdgeList(is);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value() == graph);
}

TEST(GraphIoTest, ReadRejectsMalformedInput) {
  {
    std::istringstream is("0 1\n");
    EXPECT_EQ(ReadEdgeList(is).status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::istringstream is("# nodes 2\n0 x\n");
    EXPECT_EQ(ReadEdgeList(is).status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::istringstream is("# nodes 2\n0 5\n");
    EXPECT_EQ(ReadEdgeList(is).status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(GraphIoTest, DotMarksNonTreeArcsDashed) {
  Digraph graph = GraphFromArcs(3, {{0, 1}, {0, 2}, {1, 2}});
  std::vector<NodeId> parent = {kNoNode, 0, 1};
  const std::string dot = ToDot(graph, parent);
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n2 [style=dashed];"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2;"), std::string::npos);
}

}  // namespace
}  // namespace trel
