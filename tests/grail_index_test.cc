#include "baselines/grail_index.h"

#include <gtest/gtest.h>

#include "graph/families.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "tests/test_util.h"

namespace trel {
namespace {

using testing_util::GraphFromArcs;

TEST(GrailIndexTest, RejectsBadInput) {
  Digraph cyclic = GraphFromArcs(2, {{0, 1}, {1, 0}});
  EXPECT_FALSE(GrailIndex::Build(cyclic, 2, 1).ok());
  Digraph dag = GraphFromArcs(2, {{0, 1}});
  EXPECT_FALSE(GrailIndex::Build(dag, 0, 1).ok());
}

TEST(GrailIndexTest, LabelsNeverRejectReachablePairs) {
  // Soundness of the necessary condition: a reachable pair must be
  // admitted by every label.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Digraph graph = RandomDag(50, 2.5, 200 + seed);
    auto index = GrailIndex::Build(graph, 3, seed);
    ASSERT_TRUE(index.ok());
    ReachabilityMatrix matrix(graph);
    for (NodeId u = 0; u < graph.NumNodes(); ++u) {
      for (NodeId v = 0; v < graph.NumNodes(); ++v) {
        if (matrix.Reaches(u, v)) {
          EXPECT_TRUE(index->LabelsAdmit(u, v)) << u << "->" << v;
        }
      }
    }
  }
}

TEST(GrailIndexTest, ExactQueriesMatchGroundTruth) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Digraph graph = RandomDag(60, 2.0, 210 + seed);
    auto index = GrailIndex::Build(graph, 2, seed);
    ASSERT_TRUE(index.ok());
    ReachabilityMatrix matrix(graph);
    for (NodeId u = 0; u < graph.NumNodes(); ++u) {
      for (NodeId v = 0; v < graph.NumNodes(); ++v) {
        ASSERT_EQ(index->Reaches(u, v), matrix.Reaches(u, v))
            << u << "->" << v << " seed " << seed;
      }
    }
  }
}

TEST(GrailIndexTest, MoreLabelsMeanFewerFallbacks) {
  Digraph graph = RandomDag(300, 3.0, 220);
  auto one = GrailIndex::Build(graph, 1, 5);
  auto four = GrailIndex::Build(graph, 4, 5);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  for (NodeId u = 0; u < graph.NumNodes(); u += 3) {
    for (NodeId v = 0; v < graph.NumNodes(); v += 7) {
      (void)one->Reaches(u, v);
      (void)four->Reaches(u, v);
    }
  }
  EXPECT_LE(four->query_stats().dfs_fallbacks,
            one->query_stats().dfs_fallbacks);
}

TEST(GrailIndexTest, StorageIsExactlyKPerNode) {
  Digraph graph = GridDag(6, 6);
  auto index = GrailIndex::Build(graph, 3, 1);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->StorageUnits(), 2 * 3 * 36);
}

}  // namespace
}  // namespace trel
