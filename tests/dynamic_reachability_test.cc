#include "core/dynamic_reachability.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "tests/test_util.h"

namespace trel {
namespace {

using testing_util::GraphFromArcs;

void ExpectConsistent(const DynamicReachability& index) {
  ReachabilityMatrix truth(index.graph());
  for (NodeId u = 0; u < index.NumNodes(); ++u) {
    std::vector<NodeId> expected;
    for (NodeId v = 0; v < index.NumNodes(); ++v) {
      ASSERT_EQ(index.Reaches(u, v), truth.Reaches(u, v))
          << u << "->" << v;
      if (u != v && truth.Reaches(u, v)) expected.push_back(v);
    }
    ASSERT_EQ(index.Successors(u), expected) << "node " << u;
  }
}

TEST(DynamicReachabilityTest, BuildOnCyclicGraph) {
  Digraph graph = GraphFromArcs(4, {{0, 1}, {1, 2}, {2, 1}, {2, 3}});
  auto index = DynamicReachability::Build(graph);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->NumComponents(), 3);
  ExpectConsistent(index.value());
}

TEST(DynamicReachabilityTest, CycleCreatingArcMergesClasses) {
  Digraph graph = GraphFromArcs(4, {{0, 1}, {1, 2}, {2, 3}});
  auto index = DynamicReachability::Build(graph);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->Reaches(3, 0));
  ASSERT_TRUE(index->AddArc(3, 1).ok());  // 1-2-3 become one class.
  EXPECT_TRUE(index->Reaches(3, 1));
  EXPECT_TRUE(index->Reaches(2, 1));
  EXPECT_FALSE(index->Reaches(1, 0));
  EXPECT_EQ(index->NumComponents(), 2);
  ExpectConsistent(index.value());
}

TEST(DynamicReachabilityTest, RemovalSplitsClass) {
  Digraph graph = GraphFromArcs(3, {{0, 1}, {1, 2}, {2, 0}});
  auto index = DynamicReachability::Build(graph);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->NumComponents(), 1);
  ASSERT_TRUE(index->RemoveArc(2, 0).ok());
  EXPECT_EQ(index->NumComponents(), 3);
  EXPECT_TRUE(index->Reaches(0, 2));
  EXPECT_FALSE(index->Reaches(2, 0));
  ExpectConsistent(index.value());
}

TEST(DynamicReachabilityTest, ParallelComponentArcsSurviveRemoval) {
  // Two arcs between the same components: removing one keeps
  // reachability.
  Digraph graph = GraphFromArcs(4, {{0, 1}, {1, 0}, {0, 2}, {1, 3}, {2, 3},
                                    {3, 2}});
  auto index = DynamicReachability::Build(graph);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->NumComponents(), 2);
  ASSERT_TRUE(index->RemoveArc(0, 2).ok());
  EXPECT_TRUE(index->Reaches(0, 2));  // Still via 1 -> 3.
  ExpectConsistent(index.value());
}

TEST(DynamicReachabilityTest, AddNodeStartsIsolated) {
  DynamicReachability index;
  const NodeId a = index.AddNode();
  const NodeId b = index.AddNode();
  EXPECT_FALSE(index.Reaches(a, b));
  ASSERT_TRUE(index.AddArc(a, b).ok());
  EXPECT_TRUE(index.Reaches(a, b));
  ASSERT_TRUE(index.AddArc(b, a).ok());  // Now a 2-cycle.
  EXPECT_TRUE(index.Reaches(b, a));
  EXPECT_EQ(index.NumComponents(), 1);
}

TEST(DynamicReachabilityTest, RandomizedSoakWithCycles) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Random rng(seed);
    DynamicReachability index;
    for (int i = 0; i < 8; ++i) index.AddNode();
    for (int step = 0; step < 80; ++step) {
      const NodeId n = index.NumNodes();
      const uint64_t op = rng.Uniform(10);
      if (op < 2) {
        index.AddNode();
      } else if (op < 8) {
        const NodeId a = static_cast<NodeId>(rng.Uniform(n));
        const NodeId b = static_cast<NodeId>(rng.Uniform(n));
        Status s = index.AddArc(a, b);
        ASSERT_TRUE(s.ok() || s.code() == StatusCode::kAlreadyExists ||
                    s.code() == StatusCode::kInvalidArgument)
            << s.ToString();
      } else {
        auto arcs = index.graph().Arcs();
        if (!arcs.empty()) {
          const auto& [a, b] = arcs[rng.Uniform(arcs.size())];
          ASSERT_TRUE(index.RemoveArc(a, b).ok());
        }
      }
      if (step % 8 == 7) ExpectConsistent(index);
    }
    ExpectConsistent(index);
  }
}

}  // namespace
}  // namespace trel
