// Model-based fuzzing of IntervalSet: long random operation sequences
// checked against a naive reference implementation.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/interval.h"

namespace trel {
namespace {

// Reference model: just remembers every inserted interval.
class NaiveIntervalSet {
 public:
  void Insert(Interval interval) { intervals_.push_back(interval); }

  bool Contains(Label x) const {
    for (const Interval& interval : intervals_) {
      if (interval.Contains(x)) return true;
    }
    return false;
  }

 private:
  std::vector<Interval> intervals_;
};

class IntervalFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalFuzzTest, LongInsertSequencesMatchModel) {
  Random rng(GetParam());
  IntervalSet set;
  NaiveIntervalSet model;
  constexpr Label kUniverse = 400;

  for (int step = 0; step < 500; ++step) {
    const Label lo = static_cast<Label>(rng.Uniform(kUniverse));
    const Label hi = lo + static_cast<Label>(rng.Uniform(30));
    set.Insert({lo, hi});
    model.Insert({lo, hi});

    if (step % 50 == 49) {
      for (Label x = -2; x <= kUniverse + 32; ++x) {
        ASSERT_EQ(set.Contains(x), model.Contains(x))
            << "x=" << x << " step=" << step;
      }
      // Structural invariants: sorted antichain.
      const auto& members = set.intervals();
      for (size_t i = 1; i < members.size(); ++i) {
        ASSERT_LT(members[i - 1].lo, members[i].lo);
        ASSERT_LT(members[i - 1].hi, members[i].hi);
      }
    }
  }
}

TEST_P(IntervalFuzzTest, MergeAdjacentPreservesCoverageAndIsIdempotent) {
  Random rng(GetParam() + 1000);
  IntervalSet set;
  NaiveIntervalSet model;
  constexpr Label kUniverse = 300;
  for (int k = 0; k < 120; ++k) {
    const Label lo = static_cast<Label>(rng.Uniform(kUniverse));
    const Label hi = lo + static_cast<Label>(rng.Uniform(12));
    set.Insert({lo, hi});
    model.Insert({lo, hi});
  }

  IntervalSet merged = set;
  merged.MergeAdjacent();
  EXPECT_LE(merged.size(), set.size());
  // Merging only coalesces touching intervals ([a,b] + [lo<=b+1, c]), so
  // point coverage is preserved exactly.
  for (Label x = -2; x <= kUniverse + 16; ++x) {
    ASSERT_EQ(merged.Contains(x), model.Contains(x)) << x;
  }

  IntervalSet twice = merged;
  const int second_merges = twice.MergeAdjacent();
  EXPECT_EQ(second_merges, 0);
  EXPECT_TRUE(twice == merged);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace trel
