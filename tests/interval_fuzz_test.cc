// Model-based fuzzing of IntervalSet: long random operation sequences
// checked against a naive reference implementation.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/interval.h"

namespace trel {
namespace {

// Reference model: just remembers every inserted interval.
class NaiveIntervalSet {
 public:
  void Insert(Interval interval) { intervals_.push_back(interval); }

  bool Contains(Label x) const {
    for (const Interval& interval : intervals_) {
      if (interval.Contains(x)) return true;
    }
    return false;
  }

 private:
  std::vector<Interval> intervals_;
};

class IntervalFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalFuzzTest, LongInsertSequencesMatchModel) {
  Random rng(GetParam());
  IntervalSet set;
  NaiveIntervalSet model;
  constexpr Label kUniverse = 400;

  for (int step = 0; step < 500; ++step) {
    const Label lo = static_cast<Label>(rng.Uniform(kUniverse));
    const Label hi = lo + static_cast<Label>(rng.Uniform(30));
    set.Insert({lo, hi});
    model.Insert({lo, hi});

    if (step % 50 == 49) {
      for (Label x = -2; x <= kUniverse + 32; ++x) {
        ASSERT_EQ(set.Contains(x), model.Contains(x))
            << "x=" << x << " step=" << step;
      }
      // Structural invariants: sorted antichain.
      const auto& members = set.intervals();
      for (size_t i = 1; i < members.size(); ++i) {
        ASSERT_LT(members[i - 1].lo, members[i].lo);
        ASSERT_LT(members[i - 1].hi, members[i].hi);
      }
    }
  }
}

TEST_P(IntervalFuzzTest, MergeAdjacentPreservesCoverageAndIsIdempotent) {
  Random rng(GetParam() + 1000);
  IntervalSet set;
  NaiveIntervalSet model;
  constexpr Label kUniverse = 300;
  for (int k = 0; k < 120; ++k) {
    const Label lo = static_cast<Label>(rng.Uniform(kUniverse));
    const Label hi = lo + static_cast<Label>(rng.Uniform(12));
    set.Insert({lo, hi});
    model.Insert({lo, hi});
  }

  IntervalSet merged = set;
  merged.MergeAdjacent();
  EXPECT_LE(merged.size(), set.size());
  // Merging only coalesces touching intervals ([a,b] + [lo<=b+1, c]), so
  // point coverage is preserved exactly.
  for (Label x = -2; x <= kUniverse + 16; ++x) {
    ASSERT_EQ(merged.Contains(x), model.Contains(x)) << x;
  }

  IntervalSet twice = merged;
  const int second_merges = twice.MergeAdjacent();
  EXPECT_EQ(second_merges, 0);
  EXPECT_TRUE(twice == merged);
}

// Interleaves Insert and MergeAdjacent in one long random sequence, over
// a label universe that includes negatives and the INT64 boundaries.
// MergeAdjacent only coalesces touching members, so point-coverage
// agreement with the naive model must survive any interleaving; the
// sorted-antichain structural invariants must hold after every step.
TEST_P(IntervalFuzzTest, InterleavedInsertAndMergeMatchModel) {
  Random rng(GetParam() + 2000);
  IntervalSet set;
  NaiveIntervalSet model;
  constexpr Label kMax = std::numeric_limits<Label>::max();
  constexpr Label kMin = std::numeric_limits<Label>::min();

  // Probe points: the small universe, its negative mirror, and the
  // extreme boundary neighborhoods.
  std::vector<Label> probes;
  for (Label x = -220; x <= 220; ++x) probes.push_back(x);
  for (Label d = 0; d <= 4; ++d) {
    probes.push_back(kMax - d);
    probes.push_back(kMin + d);
  }

  auto random_interval = [&rng]() -> Interval {
    switch (rng.Uniform(8)) {
      case 0:  // Hugging the INT64 maximum (exercises hi == kMax).
        return {kMax - static_cast<Label>(rng.Uniform(4)), kMax};
      case 1: {  // Hugging the INT64 minimum.
        const Label lo = kMin + static_cast<Label>(rng.Uniform(4));
        return {lo, lo + static_cast<Label>(rng.Uniform(3))};
      }
      default: {  // Small universe straddling zero.
        const Label lo = static_cast<Label>(rng.Uniform(400)) - 200;
        return {lo, lo + static_cast<Label>(rng.Uniform(25))};
      }
    }
  };

  for (int step = 0; step < 400; ++step) {
    if (rng.Bernoulli(0.3)) {
      set.MergeAdjacent();  // The model needs no merging: coverage-equal.
    } else {
      const Interval interval = random_interval();
      set.Insert(interval);
      model.Insert(interval);
    }

    // Structural invariants after *every* operation: sorted antichain
    // (strictly increasing lo and hi), all members well-formed.
    const auto& members = set.intervals();
    for (size_t i = 0; i < members.size(); ++i) {
      ASSERT_LE(members[i].lo, members[i].hi) << "step " << step;
      if (i > 0) {
        ASSERT_LT(members[i - 1].lo, members[i].lo) << "step " << step;
        ASSERT_LT(members[i - 1].hi, members[i].hi) << "step " << step;
      }
    }

    if (step % 40 == 39) {
      for (Label x : probes) {
        ASSERT_EQ(set.Contains(x), model.Contains(x))
            << "x=" << x << " step=" << step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace trel
