// Cross-cutting differential suite: every reachability structure in the
// library must agree with DFS ground truth on the same workload, for
// every graph family.  This is the integration net under the per-module
// unit tests — a regression anywhere in the stack trips it.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/chain_cover.h"
#include "baselines/full_closure.h"
#include "baselines/grail_index.h"
#include "baselines/inverse_closure.h"
#include "baselines/multi_hierarchy.h"
#include "core/compressed_closure.h"
#include "core/dynamic_closure.h"
#include "core/predecessor_index.h"
#include "graph/families.h"
#include "graph/generators.h"
#include "graph/reachability.h"

namespace trel {
namespace {

struct FamilyParam {
  std::string name;
  Digraph (*make)(uint64_t seed);
};

Digraph MakeRandomSparse(uint64_t seed) { return RandomDag(70, 1.5, seed); }
Digraph MakeRandomDense(uint64_t seed) { return RandomDag(45, 6.0, seed); }
Digraph MakeTree(uint64_t seed) { return RandomTree(80, seed); }
Digraph MakeGrid(uint64_t) { return GridDag(7, 9); }
Digraph MakeSeriesParallel(uint64_t seed) {
  return SeriesParallelDag(60, seed);
}
Digraph MakePowerLaw(uint64_t seed) { return PowerLawDag(70, 2.0, 10, seed); }
Digraph MakeGenealogy(uint64_t seed) { return GenealogyDag(70, 4, seed); }
Digraph MakeBipartite(uint64_t) { return CompleteBipartite(9, 9); }
Digraph MakeLayered(uint64_t seed) { return LayeredDag(6, 8, 0.3, seed); }

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<FamilyParam, uint64_t>> {};

TEST_P(DifferentialTest, AllIndexesAgreeWithGroundTruth) {
  const auto& [family, seed] = GetParam();
  const Digraph graph = family.make(seed);
  const ReachabilityMatrix truth(graph);

  auto compressed = CompressedClosure::Build(graph);
  ASSERT_TRUE(compressed.ok());
  auto dynamic = DynamicClosure::Build(graph);
  ASSERT_TRUE(dynamic.ok());
  auto bidirectional = BidirectionalClosure::Build(graph);
  ASSERT_TRUE(bidirectional.ok());
  auto inverse = InverseClosure::Build(graph);
  ASSERT_TRUE(inverse.ok());
  auto chains = ChainCover::Build(graph, ChainCover::Method::kGreedy);
  ASSERT_TRUE(chains.ok());
  auto grail = GrailIndex::Build(graph, 2, seed);
  ASSERT_TRUE(grail.ok());
  auto multi = MultiHierarchyLabeling::Build(graph);
  ASSERT_TRUE(multi.ok());
  FullClosure full(graph);

  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      const bool expected = truth.Reaches(u, v);
      ASSERT_EQ(compressed->Reaches(u, v), expected)
          << family.name << " compressed " << u << "->" << v;
      ASSERT_EQ(dynamic->Reaches(u, v), expected)
          << family.name << " dynamic " << u << "->" << v;
      ASSERT_EQ(bidirectional->Reaches(u, v), expected)
          << family.name << " bidirectional " << u << "->" << v;
      ASSERT_EQ(inverse->Reaches(u, v), expected)
          << family.name << " inverse " << u << "->" << v;
      ASSERT_EQ(chains->Reaches(u, v), expected)
          << family.name << " chains " << u << "->" << v;
      ASSERT_EQ(grail->Reaches(u, v), expected)
          << family.name << " grail " << u << "->" << v;
      ASSERT_EQ(full.Reaches(u, v), expected)
          << family.name << " full " << u << "->" << v;
      if (multi->Reaches(u, v)) {  // Sound but incomplete by design.
        ASSERT_TRUE(expected)
            << family.name << " multi-hierarchy false positive " << u
            << "->" << v;
      }
    }
  }

  // Theorem 2 spot check rides along: tree storage <= greedy chains.
  EXPECT_LE(compressed->TotalIntervals(), chains->StorageUnits())
      << family.name;
}

std::vector<FamilyParam> Families() {
  return {
      {"random_sparse", MakeRandomSparse},
      {"random_dense", MakeRandomDense},
      {"tree", MakeTree},
      {"grid", MakeGrid},
      {"series_parallel", MakeSeriesParallel},
      {"power_law", MakePowerLaw},
      {"genealogy", MakeGenealogy},
      {"bipartite", MakeBipartite},
      {"layered", MakeLayered},
  };
}

INSTANTIATE_TEST_SUITE_P(
    Families, DifferentialTest,
    ::testing::Combine(::testing::ValuesIn(Families()),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<FamilyParam, uint64_t>>&
           info) {
      return std::get<0>(info.param).name + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace trel
