// Heavier randomized stress for the dynamic index: longer operation
// sequences, snapshot round-trips mid-flight, explicit Renumber() and
// Reoptimize() interleavings, and growth purely from refinements.

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/dynamic_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"

namespace trel {
namespace {

void ExpectConsistent(const DynamicClosure& closure) {
  ReachabilityMatrix truth(closure.graph());
  for (NodeId u = 0; u < closure.NumNodes(); ++u) {
    for (NodeId v = 0; v < closure.NumNodes(); ++v) {
      ASSERT_EQ(closure.Reaches(u, v), truth.Reaches(u, v))
          << u << "->" << v;
    }
  }
}

TEST(DynamicStressTest, LongMixedSequenceWithMaintenanceCalls) {
  Random rng(77);
  DynamicClosure closure;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(closure.AddLeafUnder(kNoNode).ok());
  }
  for (int step = 0; step < 400; ++step) {
    const NodeId n = closure.NumNodes();
    const uint64_t op = rng.Uniform(20);
    if (op < 8) {
      const NodeId parent =
          op == 0 ? kNoNode
                  : static_cast<NodeId>(rng.Uniform(static_cast<uint64_t>(n)));
      ASSERT_TRUE(closure.AddLeafUnder(parent).ok());
    } else if (op < 14) {
      const NodeId a = static_cast<NodeId>(rng.Uniform(n));
      const NodeId b = static_cast<NodeId>(rng.Uniform(n));
      Status s = closure.AddArc(a, b);
      ASSERT_TRUE(s.ok() || s.code() == StatusCode::kInvalidArgument ||
                  s.code() == StatusCode::kAlreadyExists);
    } else if (op < 16) {
      const NodeId child = static_cast<NodeId>(rng.Uniform(n));
      auto z = closure.RefineAbove(child, closure.graph().InNeighbors(child));
      ASSERT_TRUE(z.ok() ||
                  z.status().code() == StatusCode::kInvalidArgument ||
                  z.status().code() == StatusCode::kFailedPrecondition);
    } else if (op < 18) {
      auto arcs = closure.graph().Arcs();
      if (!arcs.empty()) {
        const auto& [a, b] = arcs[rng.Uniform(arcs.size())];
        ASSERT_TRUE(closure.RemoveArc(a, b).ok());
      }
    } else if (op == 18) {
      if (rng.Bernoulli(0.5)) {
        closure.Reoptimize();
      } else if (closure.stats().reoptimizes >= 0) {
        // Renumber only when no refined nodes are pending; Reoptimize
        // otherwise (Renumber CHECKs against refined nodes).
        closure.Reoptimize();
      }
    } else {
      // Snapshot round-trip mid-flight.
      std::stringstream buffer;
      ASSERT_TRUE(closure.Save(buffer).ok());
      auto loaded = DynamicClosure::Load(buffer);
      ASSERT_TRUE(loaded.ok());
      closure = std::move(loaded).value();
    }
    if (step % 40 == 39) ExpectConsistent(closure);
  }
  ExpectConsistent(closure);
}

TEST(DynamicStressTest, GrowthPurelyByRefinement) {
  // Start from a chain and keep interposing nodes above the tail — the
  // paper's "refining a hierarchy" in its purest form.
  Digraph graph(3);
  ASSERT_TRUE(graph.AddArc(0, 1).ok());
  ASSERT_TRUE(graph.AddArc(1, 2).ok());
  ClosureOptions options;
  options.labeling.gap = 256;
  options.labeling.reserve = 255;
  auto closure = DynamicClosure::Build(graph, options);
  ASSERT_TRUE(closure.ok());
  int succeeded = 0;
  for (int i = 0; i < 60; ++i) {
    auto z = closure->RefineAbove(2, closure->graph().InNeighbors(2));
    if (z.ok()) {
      ++succeeded;
    } else {
      ASSERT_EQ(z.status().code(), StatusCode::kFailedPrecondition);
      closure->Reoptimize();  // Refresh the pools and continue.
    }
  }
  EXPECT_GT(succeeded, 40);
  ExpectConsistent(closure.value());
}

TEST(DynamicStressTest, DeepChainGrowthTriggersRenumbering) {
  ClosureOptions options;
  options.labeling.gap = 4;
  options.labeling.reserve = 1;
  DynamicClosure closure(options);
  auto tip = closure.AddLeafUnder(kNoNode);
  ASSERT_TRUE(tip.ok());
  NodeId current = tip.value();
  for (int i = 0; i < 200; ++i) {
    auto leaf = closure.AddLeafUnder(current);
    ASSERT_TRUE(leaf.ok());
    current = leaf.value();
  }
  EXPECT_GT(closure.stats().renumbers, 0);
  // Spot-check the chain: the root reaches the tip, not vice versa.
  EXPECT_TRUE(closure.Reaches(tip.value(), current));
  EXPECT_FALSE(closure.Reaches(current, tip.value()));
  EXPECT_EQ(closure.CountSuccessors(tip.value()), 200);
}

TEST(DynamicStressTest, WideFanoutGrowth) {
  DynamicClosure closure;
  auto root = closure.AddLeafUnder(kNoNode);
  ASSERT_TRUE(root.ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(closure.AddLeafUnder(root.value()).ok());
  }
  EXPECT_EQ(closure.CountSuccessors(root.value()), 300);
  EXPECT_EQ(closure.Successors(root.value()).size(), 300u);
  // Every leaf sees only itself.
  EXPECT_EQ(closure.CountSuccessors(5), 0);
}

}  // namespace
}  // namespace trel
