// Unit tests for the runtime SIMD dispatcher.  ci.sh's --simd-matrix
// stage runs this binary once per TREL_SIMD level, so the
// ActiveRespectsRequest test doubles as the guard that a requested,
// host-supported level is honored exactly (and anything else clamps).

#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "core/arena_kernels.h"
#include "core/simd_dispatch.h"

namespace trel {
namespace {

int L(SimdLevel level) { return static_cast<int>(level); }

TEST(SimdDispatchTest, LevelNames) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSse), "sse");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(SimdDispatchTest, DetectionIsStable) {
  const SimdLevel a = HighestSupportedSimdLevel();
  const SimdLevel b = HighestSupportedSimdLevel();
  EXPECT_EQ(a, b);
  EXPECT_GE(L(a), L(SimdLevel::kScalar));
  EXPECT_LE(L(a), L(SimdLevel::kAvx2));
}

TEST(SimdDispatchTest, TablesAreCompleteAndHonest) {
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse, SimdLevel::kAvx2}) {
    const ArenaKernels& table = KernelsForLevel(level);
    // A table may degrade (non-x86 build) but never report MORE than was
    // asked for, and must always be fully populated.
    EXPECT_LE(L(table.level), L(level)) << SimdLevelName(level);
    EXPECT_NE(table.name, nullptr);
    EXPECT_NE(table.extras_contains, nullptr);
    EXPECT_NE(table.filter_intersects, nullptr);
    EXPECT_NE(table.batch_reaches, nullptr);
    EXPECT_STREQ(table.name, SimdLevelName(table.level));
  }
  EXPECT_EQ(KernelsForLevel(SimdLevel::kScalar).level, SimdLevel::kScalar);
}

TEST(SimdDispatchTest, RequestedLevelParsesEnvironment) {
  // Read-only: does not mutate TREL_SIMD (other tests in this process
  // depend on the ambient value).
  const char* env = std::getenv("TREL_SIMD");
  const SimdLevel fallback = SimdLevel::kScalar;
  const SimdLevel requested = RequestedSimdLevel(fallback);
  if (env == nullptr || env[0] == '\0') {
    EXPECT_EQ(requested, fallback);
  } else if (std::strcmp(env, "scalar") == 0) {
    EXPECT_EQ(requested, SimdLevel::kScalar);
  } else if (std::strcmp(env, "sse") == 0) {
    EXPECT_EQ(requested, SimdLevel::kSse);
  } else if (std::strcmp(env, "avx2") == 0) {
    EXPECT_EQ(requested, SimdLevel::kAvx2);
  } else {
    EXPECT_EQ(requested, fallback);  // Unknown values warn and fall back.
  }
}

TEST(SimdDispatchTest, ActiveRespectsRequest) {
  const SimdLevel supported = HighestSupportedSimdLevel();
  const SimdLevel requested = RequestedSimdLevel(supported);
  const SimdLevel active = ActiveSimdLevel();

  // The dispatcher must never hand out a level the host can't execute,
  // regardless of the environment.
  ASSERT_LE(L(active), L(supported));
  EXPECT_EQ(&ActiveKernels(), &KernelsForLevel(active));

  // A host-executable request must be honored exactly — modulo a build
  // whose kernel TU degraded to scalar (non-x86), where the table is
  // authoritative.
  const SimdLevel granted =
      L(requested) <= L(supported) ? requested : supported;
  EXPECT_EQ(active, KernelsForLevel(granted).level);
}

}  // namespace
}  // namespace trel
