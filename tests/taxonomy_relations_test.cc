#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "kb/taxonomy.h"
#include "relational/csv.h"

namespace trel {
namespace {

Taxonomy SmallTaxonomy() {
  Taxonomy taxonomy;
  TREL_CHECK(taxonomy.AddConcept("animal").ok());
  TREL_CHECK(taxonomy.AddConcept("bird", {"animal"}).ok());
  TREL_CHECK(taxonomy.AddConcept("fish", {"animal"}).ok());
  TREL_CHECK(taxonomy.AddConcept("penguin", {"bird"}).ok());
  TREL_CHECK(taxonomy.SetProperty("bird", "can-fly", "yes").ok());
  TREL_CHECK(taxonomy.SetProperty("penguin", "can-fly", "no").ok());
  return taxonomy;
}

TEST(TaxonomyRelationsTest, ExportSchemasAndContents) {
  Taxonomy taxonomy = SmallTaxonomy();
  Relation concepts = taxonomy.ConceptsRelation();
  EXPECT_EQ(concepts.NumTuples(), 4);
  Relation isa = taxonomy.IsaRelation();
  EXPECT_EQ(isa.NumTuples(), 3);
  Relation properties = taxonomy.PropertiesRelation();
  EXPECT_EQ(properties.NumTuples(), 2);
}

TEST(TaxonomyRelationsTest, RoundTripPreservesSemantics) {
  Taxonomy original = SmallTaxonomy();
  auto restored = Taxonomy::FromRelations(original.ConceptsRelation(),
                                          original.IsaRelation(),
                                          original.PropertiesRelation());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (const char* a : {"animal", "bird", "fish", "penguin"}) {
    for (const char* b : {"animal", "bird", "fish", "penguin"}) {
      EXPECT_EQ(original.Subsumes(a, b), restored->Subsumes(a, b))
          << a << " vs " << b;
    }
  }
  EXPECT_EQ(restored->LookupProperty("penguin", "can-fly").value(), "no");
  EXPECT_EQ(restored->LookupProperty("fish", "can-fly").status().code(),
            StatusCode::kNotFound);
}

TEST(TaxonomyRelationsTest, RoundTripThroughCsvText) {
  Taxonomy original = SmallTaxonomy();
  std::ostringstream concepts_csv, isa_csv, properties_csv;
  WriteCsv(original.ConceptsRelation(), concepts_csv);
  WriteCsv(original.IsaRelation(), isa_csv);
  WriteCsv(original.PropertiesRelation(), properties_csv);

  std::istringstream c(concepts_csv.str()), i(isa_csv.str()),
      p(properties_csv.str());
  auto concepts = ReadCsv(c);
  auto isa = ReadCsv(i);
  auto properties = ReadCsv(p);
  ASSERT_TRUE(concepts.ok());
  ASSERT_TRUE(isa.ok());
  ASSERT_TRUE(properties.ok());
  auto restored = Taxonomy::FromRelations(concepts.value(), isa.value(),
                                          properties.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->Subsumes("animal", "penguin"));
  EXPECT_FALSE(restored->Subsumes("fish", "penguin"));
}

TEST(TaxonomyRelationsTest, FromRelationsValidatesInput) {
  Relation bad_concepts({{"wrong", ColumnType::kString}});
  Relation isa({{"child", ColumnType::kString},
                {"parent", ColumnType::kString}});
  Relation properties({{"concept", ColumnType::kString},
                       {"key", ColumnType::kString},
                       {"value", ColumnType::kString}});
  EXPECT_FALSE(
      Taxonomy::FromRelations(bad_concepts, isa, properties).ok());

  Relation concepts({{"name", ColumnType::kString}});
  TREL_CHECK(concepts.Append({std::string("a")}).ok());
  TREL_CHECK(isa.Append({std::string("a"), std::string("missing")}).ok());
  EXPECT_FALSE(Taxonomy::FromRelations(concepts, isa, properties).ok());
}

}  // namespace
}  // namespace trel
