#include "core/path_finder.h"

#include <vector>

#include <gtest/gtest.h>

#include "graph/families.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "tests/test_util.h"

namespace trel {
namespace {

using testing_util::GraphFromArcs;

CompressedClosure MustBuild(const Digraph& graph) {
  auto closure = CompressedClosure::Build(graph);
  TREL_CHECK(closure.ok());
  return std::move(closure).value();
}

// A path must start and end correctly and follow real arcs.
void ExpectValidPath(const Digraph& graph, const std::vector<NodeId>& path,
                     NodeId source, NodeId target) {
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), source);
  EXPECT_EQ(path.back(), target);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(graph.HasArc(path[i], path[i + 1]))
        << path[i] << "->" << path[i + 1];
  }
}

TEST(PathFinderTest, TrivialAndDirectPaths) {
  Digraph graph = GraphFromArcs(3, {{0, 1}, {1, 2}});
  CompressedClosure closure = MustBuild(graph);
  EXPECT_EQ(FindPath(graph, closure, 0, 0), (std::vector<NodeId>{0}));
  EXPECT_EQ(FindPath(graph, closure, 0, 2), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_TRUE(FindPath(graph, closure, 2, 0).empty());
}

TEST(PathFinderTest, FindsWitnessesOnRandomDags) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Digraph graph = RandomDag(60, 2.0, 100 + seed);
    CompressedClosure closure = MustBuild(graph);
    ReachabilityMatrix matrix(graph);
    for (NodeId u = 0; u < graph.NumNodes(); u += 2) {
      for (NodeId v = 0; v < graph.NumNodes(); v += 3) {
        const std::vector<NodeId> path = FindPath(graph, closure, u, v);
        if (matrix.Reaches(u, v)) {
          ExpectValidPath(graph, path, u, v);
        } else {
          EXPECT_TRUE(path.empty());
        }
      }
    }
  }
}

TEST(PathFinderTest, GridPathsHaveManhattanLength) {
  // In a grid DAG every source-to-target path has the same length.
  Digraph graph = GridDag(5, 7);
  CompressedClosure closure = MustBuild(graph);
  const std::vector<NodeId> path =
      FindPath(graph, closure, 0, 5 * 7 - 1);
  EXPECT_EQ(path.size(), 1u + (5 - 1) + (7 - 1));
}

}  // namespace
}  // namespace trel
