#include "core/tree_cover.h"

#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "tests/test_util.h"

namespace trel {
namespace {

using testing_util::GraphFromArcs;

TEST(TreeCoverTest, FailsOnCyclicGraph) {
  Digraph graph = GraphFromArcs(2, {{0, 1}, {1, 0}});
  EXPECT_EQ(ComputeTreeCover(graph, TreeCoverStrategy::kOptimal)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(TreeCoverTest, TreeInputIsItsOwnCover) {
  Digraph tree = RandomTree(30, 1);
  for (TreeCoverStrategy strategy :
       {TreeCoverStrategy::kOptimal, TreeCoverStrategy::kDfs,
        TreeCoverStrategy::kFirstParent, TreeCoverStrategy::kRandom}) {
    auto cover = ComputeTreeCover(tree, strategy, 5);
    ASSERT_TRUE(cover.ok());
    for (NodeId v = 1; v < 30; ++v) {
      EXPECT_EQ(cover->parent[v], tree.InNeighbors(v)[0])
          << TreeCoverStrategyName(strategy);
    }
    EXPECT_EQ(cover->roots, (std::vector<NodeId>{0}));
  }
}

TEST(TreeCoverTest, EveryParentIsAnImmediatePredecessor) {
  Digraph graph = RandomDag(100, 3.0, 7);
  for (TreeCoverStrategy strategy :
       {TreeCoverStrategy::kOptimal, TreeCoverStrategy::kDfs,
        TreeCoverStrategy::kFirstParent, TreeCoverStrategy::kRandom}) {
    auto cover = ComputeTreeCover(graph, strategy, 11);
    ASSERT_TRUE(cover.ok());
    int non_roots = 0;
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      if (cover->parent[v] == kNoNode) {
        EXPECT_EQ(graph.InDegree(v), 0) << TreeCoverStrategyName(strategy);
      } else {
        EXPECT_TRUE(graph.HasArc(cover->parent[v], v));
        ++non_roots;
      }
    }
    // Children lists are consistent with parents.
    int children_total = 0;
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      for (NodeId c : cover->children[v]) {
        EXPECT_EQ(cover->parent[c], v);
        ++children_total;
      }
    }
    EXPECT_EQ(children_total, non_roots);
  }
}

TEST(TreeCoverTest, OptimalPicksPredecessorWithLargestPredSet) {
  // Diamond with an extra tail: pred(1) = {0}; pred(2) = {0, 1}.
  // Node 3 has arcs from 1 and 2; Alg1 must pick 2.
  Digraph graph = GraphFromArcs(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  auto cover = ComputeTreeCover(graph, TreeCoverStrategy::kOptimal);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->parent[3], 2);
}

TEST(TreeCoverFromParentsTest, ValidatesParents) {
  Digraph graph = GraphFromArcs(3, {{0, 1}, {1, 2}});
  EXPECT_TRUE(TreeCoverFromParents(graph, {kNoNode, 0, 1}).ok());
  // 0 is not an immediate predecessor of 2.
  EXPECT_EQ(TreeCoverFromParents(graph, {kNoNode, 0, 0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TreeCoverFromParents(graph, {kNoNode, 0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TreeCoverTest, MultipleRootsAllCovered) {
  // Two disjoint chains.
  Digraph graph = GraphFromArcs(4, {{0, 1}, {2, 3}});
  auto cover = ComputeTreeCover(graph, TreeCoverStrategy::kOptimal);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->roots, (std::vector<NodeId>{0, 2}));
}

}  // namespace
}  // namespace trel
