#include "kb/taxonomy.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace trel {
namespace {

// Builds the small vehicle taxonomy used across tests.
Taxonomy VehicleTaxonomy() {
  Taxonomy taxonomy;
  TREL_CHECK(taxonomy.AddConcept("thing").ok());
  TREL_CHECK(taxonomy.AddConcept("vehicle", {"thing"}).ok());
  TREL_CHECK(taxonomy.AddConcept("watercraft", {"vehicle"}).ok());
  TREL_CHECK(taxonomy.AddConcept("car", {"vehicle"}).ok());
  TREL_CHECK(taxonomy.AddConcept("amphibious-car", {"car", "watercraft"}).ok());
  TREL_CHECK(taxonomy.AddConcept("sports-car", {"car"}).ok());
  return taxonomy;
}

TEST(TaxonomyTest, SubsumptionFollowsIsAPaths) {
  Taxonomy taxonomy = VehicleTaxonomy();
  EXPECT_TRUE(taxonomy.Subsumes("thing", "sports-car"));
  EXPECT_TRUE(taxonomy.Subsumes("vehicle", "amphibious-car"));
  EXPECT_TRUE(taxonomy.Subsumes("watercraft", "amphibious-car"));
  EXPECT_TRUE(taxonomy.Subsumes("car", "car"));  // Reflexive.
  EXPECT_FALSE(taxonomy.Subsumes("watercraft", "sports-car"));
  EXPECT_FALSE(taxonomy.Subsumes("sports-car", "car"));
}

TEST(TaxonomyTest, RejectsDuplicatesAndUnknownParents) {
  Taxonomy taxonomy = VehicleTaxonomy();
  EXPECT_EQ(taxonomy.AddConcept("car").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(taxonomy.AddConcept("boat", {"nonexistent"}).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(taxonomy.AddConcept("").ok());
  EXPECT_EQ(taxonomy.Find("nonexistent").status().code(),
            StatusCode::kNotFound);
}

TEST(TaxonomyTest, DescendantsAndAncestors) {
  Taxonomy taxonomy = VehicleTaxonomy();
  auto descendants = taxonomy.DescendantsOf("car");
  ASSERT_TRUE(descendants.ok());
  std::vector<std::string> got = descendants.value();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got,
            (std::vector<std::string>{"amphibious-car", "sports-car"}));

  auto ancestors = taxonomy.AncestorsOf("amphibious-car");
  ASSERT_TRUE(ancestors.ok());
  got = ancestors.value();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::string>{"car", "thing", "vehicle",
                                           "watercraft"}));
}

TEST(TaxonomyTest, LeastCommonSubsumers) {
  Taxonomy taxonomy = VehicleTaxonomy();
  auto lcs = taxonomy.LeastCommonSubsumers("sports-car", "amphibious-car");
  ASSERT_TRUE(lcs.ok());
  EXPECT_EQ(lcs.value(), (std::vector<std::string>{"car"}));

  lcs = taxonomy.LeastCommonSubsumers("watercraft", "sports-car");
  ASSERT_TRUE(lcs.ok());
  EXPECT_EQ(lcs.value(), (std::vector<std::string>{"vehicle"}));
}

TEST(TaxonomyTest, PropertyInheritanceFindsNearestDefinition) {
  Taxonomy taxonomy = VehicleTaxonomy();
  ASSERT_TRUE(taxonomy.SetProperty("vehicle", "movable", "yes").ok());
  ASSERT_TRUE(taxonomy.SetProperty("car", "wheels", "4").ok());
  ASSERT_TRUE(taxonomy.SetProperty("sports-car", "wheels", "4-low-profile")
                  .ok());

  EXPECT_EQ(taxonomy.LookupProperty("sports-car", "wheels").value(),
            "4-low-profile");  // Own definition wins.
  EXPECT_EQ(taxonomy.LookupProperty("amphibious-car", "wheels").value(),
            "4");  // Inherited from car.
  EXPECT_EQ(taxonomy.LookupProperty("sports-car", "movable").value(),
            "yes");  // Inherited from vehicle, two levels up.
  EXPECT_EQ(taxonomy.LookupProperty("thing", "wheels").status().code(),
            StatusCode::kNotFound);
}

TEST(TaxonomyTest, AddIsAUpdatesSubsumption) {
  Taxonomy taxonomy = VehicleTaxonomy();
  ASSERT_TRUE(taxonomy.AddConcept("toy", {"thing"}).ok());
  EXPECT_FALSE(taxonomy.Subsumes("toy", "sports-car"));
  ASSERT_TRUE(taxonomy.AddIsA("sports-car", "toy").ok());
  EXPECT_TRUE(taxonomy.Subsumes("toy", "sports-car"));
  // Cycles rejected.
  EXPECT_FALSE(taxonomy.AddIsA("thing", "sports-car").ok());
}

TEST(TaxonomyTest, RefineAboveInterposesConcept) {
  Taxonomy taxonomy = VehicleTaxonomy();
  // Interpose "land-vehicle" between vehicle and car.
  auto refined = taxonomy.RefineAbove("land-vehicle", "car", {"vehicle"});
  ASSERT_TRUE(refined.ok()) << refined.status().ToString();
  EXPECT_TRUE(taxonomy.Subsumes("land-vehicle", "car"));
  EXPECT_TRUE(taxonomy.Subsumes("land-vehicle", "sports-car"));
  EXPECT_TRUE(taxonomy.Subsumes("vehicle", "land-vehicle"));
  EXPECT_FALSE(taxonomy.Subsumes("land-vehicle", "watercraft"));
}

TEST(TaxonomyTest, ScalesToThousandsOfConcepts) {
  Taxonomy taxonomy;
  ASSERT_TRUE(taxonomy.AddConcept("part-0").ok());
  // A parts hierarchy: each part belongs under an earlier part.
  for (int i = 1; i < 2000; ++i) {
    const std::string parent = "part-" + std::to_string((i - 1) / 2);
    ASSERT_TRUE(
        taxonomy.AddConcept("part-" + std::to_string(i), {parent}).ok());
  }
  EXPECT_EQ(taxonomy.NumConcepts(), 2000);
  EXPECT_TRUE(taxonomy.Subsumes("part-0", "part-1999"));
  EXPECT_TRUE(taxonomy.Subsumes("part-1", "part-1023"));
  EXPECT_FALSE(taxonomy.Subsumes("part-2", "part-1023"));
  // Heap-shaped tree: subtree of part-1 holds 2^(k-1) nodes per level k,
  // all present through the last level => 1023 nodes incl. itself.
  auto descendants = taxonomy.DescendantsOf("part-1");
  ASSERT_TRUE(descendants.ok());
  EXPECT_EQ(descendants->size(), 1022u);
}


TEST(TaxonomyTest, RefineAboveErrorPaths) {
  Taxonomy taxonomy = VehicleTaxonomy();
  // Duplicate name.
  EXPECT_EQ(taxonomy.RefineAbove("car", "sports-car", {"car"}).status().code(),
            StatusCode::kAlreadyExists);
  // Unknown child/parent.
  EXPECT_EQ(taxonomy.RefineAbove("x", "ghost", {"car"}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(taxonomy.RefineAbove("x", "car", {"ghost"}).status().code(),
            StatusCode::kNotFound);
  // Missing one of the child's immediate parents (amphibious-car has two).
  EXPECT_EQ(
      taxonomy.RefineAbove("x", "amphibious-car", {"car"}).status().code(),
      StatusCode::kFailedPrecondition);
}

TEST(TaxonomyTest, DiamondPropertyResolutionIsNearest) {
  Taxonomy taxonomy;
  TREL_CHECK(taxonomy.AddConcept("top").ok());
  TREL_CHECK(taxonomy.AddConcept("left", {"top"}).ok());
  TREL_CHECK(taxonomy.AddConcept("right", {"top"}).ok());
  TREL_CHECK(taxonomy.AddConcept("bottom", {"left", "right"}).ok());
  TREL_CHECK(taxonomy.SetProperty("top", "color", "grey").ok());
  TREL_CHECK(taxonomy.SetProperty("right", "color", "red").ok());
  // BFS from bottom sees left and right before top; right defines it.
  EXPECT_EQ(taxonomy.LookupProperty("bottom", "color").value(), "red");
  // Overriding on the nearer left parent wins by discovery order.
  TREL_CHECK(taxonomy.SetProperty("left", "color", "blue").ok());
  EXPECT_EQ(taxonomy.LookupProperty("bottom", "color").value(), "blue");
}

TEST(TaxonomyTest, LcsOfUnrelatedTreesIsEmpty) {
  Taxonomy taxonomy;
  TREL_CHECK(taxonomy.AddConcept("a").ok());
  TREL_CHECK(taxonomy.AddConcept("b").ok());
  auto lcs = taxonomy.LeastCommonSubsumers("a", "b");
  ASSERT_TRUE(lcs.ok());
  EXPECT_TRUE(lcs->empty());
}

}  // namespace
}  // namespace trel
