#include "core/lattice_ops.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/predecessor_index.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "tests/test_util.h"

namespace trel {
namespace {

using testing_util::GraphFromArcs;

BidirectionalClosure MustBuild(const Digraph& graph) {
  auto closure = BidirectionalClosure::Build(graph);
  TREL_CHECK(closure.ok());
  return std::move(closure).value();
}

TEST(ReverseGraphTest, FlipsEveryArc) {
  Digraph graph = GraphFromArcs(3, {{0, 1}, {1, 2}});
  Digraph reversed = ReverseGraph(graph);
  EXPECT_TRUE(reversed.HasArc(1, 0));
  EXPECT_TRUE(reversed.HasArc(2, 1));
  EXPECT_EQ(reversed.NumArcs(), 2);
}

TEST(BidirectionalClosureTest, PredecessorsMatchScanBaseline) {
  Digraph graph = RandomDag(70, 2.5, 61);
  BidirectionalClosure closure = MustBuild(graph);
  ReachabilityMatrix matrix(graph);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    std::vector<NodeId> expected;
    for (NodeId u = 0; u < graph.NumNodes(); ++u) {
      if (u != v && matrix.Reaches(u, v)) expected.push_back(u);
    }
    std::vector<NodeId> got = closure.Predecessors(v);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "node " << v;
    EXPECT_EQ(closure.CountPredecessors(v),
              static_cast<int64_t>(expected.size()));
  }
}

TEST(LatticeOpsTest, DiamondLca) {
  //    0
  //   / \ .
  //  1   2
  //   \ /
  //    3
  Digraph graph = GraphFromArcs(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  BidirectionalClosure closure = MustBuild(graph);
  LatticeOps ops(&closure);
  EXPECT_EQ(ops.LeastCommonAncestors(1, 2), (std::vector<NodeId>{0}));
  EXPECT_EQ(ops.GreatestCommonDescendants(1, 2), (std::vector<NodeId>{3}));
  // Comparable pair: the lower node is its own common-descendant rep, the
  // upper is the LCA.
  EXPECT_EQ(ops.LeastCommonAncestors(0, 3), (std::vector<NodeId>{0}));
  EXPECT_EQ(ops.GreatestCommonDescendants(0, 3), (std::vector<NodeId>{3}));
}

TEST(LatticeOpsTest, MultipleMinimalAncestors) {
  // Two incomparable common ancestors 0 and 1 over children 2 and 3.
  Digraph graph = GraphFromArcs(4, {{0, 2}, {0, 3}, {1, 2}, {1, 3}});
  BidirectionalClosure closure = MustBuild(graph);
  LatticeOps ops(&closure);
  EXPECT_EQ(ops.LeastCommonAncestors(2, 3), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(ops.GreatestCommonDescendants(0, 1),
            (std::vector<NodeId>{2, 3}));
}

TEST(LatticeOpsTest, DisjointnessAndComparability) {
  // Two separate chains.
  Digraph graph = GraphFromArcs(4, {{0, 1}, {2, 3}});
  BidirectionalClosure closure = MustBuild(graph);
  LatticeOps ops(&closure);
  EXPECT_TRUE(ops.AreDisjoint(0, 2));
  EXPECT_TRUE(ops.AreDisjoint(1, 3));
  EXPECT_FALSE(ops.AreDisjoint(0, 1));  // Comparable.
  EXPECT_TRUE(ops.Comparable(0, 1));
  EXPECT_FALSE(ops.Comparable(0, 2));
  EXPECT_TRUE(ops.LeastCommonAncestors(0, 2).empty());
  EXPECT_TRUE(ops.GreatestCommonDescendants(0, 2).empty());
}

// Property: LCA results are common ancestors and are pairwise
// incomparable; ditto for GCD, on random DAGs.
TEST(LatticeOpsTest, RandomizedLcaInvariants) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Digraph graph = RandomDag(35, 1.8, 70 + seed);
    BidirectionalClosure closure = MustBuild(graph);
    LatticeOps ops(&closure);
    ReachabilityMatrix matrix(graph);
    for (NodeId u = 0; u < graph.NumNodes(); u += 3) {
      for (NodeId v = u + 1; v < graph.NumNodes(); v += 4) {
        const std::vector<NodeId> lca = ops.LeastCommonAncestors(u, v);
        for (NodeId c : lca) {
          EXPECT_TRUE(matrix.Reaches(c, u));
          EXPECT_TRUE(matrix.Reaches(c, v));
        }
        for (NodeId a : lca) {
          for (NodeId b : lca) {
            if (a != b) {
              EXPECT_FALSE(matrix.Reaches(a, b));
            }
          }
        }
        // Completeness: every common ancestor reaches some LCA member.
        for (NodeId c = 0; c < graph.NumNodes(); ++c) {
          if (!matrix.Reaches(c, u) || !matrix.Reaches(c, v)) continue;
          bool reaches_minimal = false;
          for (NodeId a : lca) {
            reaches_minimal |= matrix.Reaches(c, a);
          }
          EXPECT_TRUE(reaches_minimal) << "ancestor " << c;
        }
      }
    }
  }
}

}  // namespace
}  // namespace trel
