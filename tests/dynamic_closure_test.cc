#include "core/dynamic_closure.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "tests/test_util.h"

namespace trel {
namespace {

using testing_util::GraphFromArcs;

// Checks the dynamic index against DFS ground truth on its own graph.
void ExpectConsistent(const DynamicClosure& closure) {
  const Digraph& graph = closure.graph();
  ReachabilityMatrix matrix(graph);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      ASSERT_EQ(closure.Reaches(u, v), matrix.Reaches(u, v))
          << u << "->" << v;
    }
  }
}

TEST(DynamicClosureTest, BuildFromGraphMatchesGroundTruth) {
  Digraph graph = RandomDag(60, 2.0, 3);
  auto closure = DynamicClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  ExpectConsistent(closure.value());
}

TEST(DynamicClosureTest, GrowFromEmpty) {
  DynamicClosure closure;
  auto root = closure.AddLeafUnder(kNoNode);
  ASSERT_TRUE(root.ok());
  auto a = closure.AddLeafUnder(root.value());
  auto b = closure.AddLeafUnder(root.value());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = closure.AddLeafUnder(a.value());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(closure.Reaches(root.value(), c.value()));
  EXPECT_TRUE(closure.Reaches(a.value(), c.value()));
  EXPECT_FALSE(closure.Reaches(b.value(), c.value()));
  EXPECT_FALSE(closure.Reaches(c.value(), root.value()));
  ExpectConsistent(closure);
  // Leaf insertion under an existing parent must not renumber with the
  // default gap.
  EXPECT_EQ(closure.stats().renumbers, 0);
}

TEST(DynamicClosureTest, PaperFigure41GapExample) {
  // Figure 4.1: with gap 10, adding x under b gets the midpoint number and
  // the interval [floor+1, mid]; no other node's labels change.
  Digraph graph = GraphFromArcs(2, {{0, 1}});  // b=0 with child 1.
  ClosureOptions options;
  options.labeling.gap = 10;
  auto closure = DynamicClosure::Build(graph, options);
  ASSERT_TRUE(closure.ok());
  // Postorder: node1=10, node0=20.
  EXPECT_EQ(closure->labels().postorder[1], 10);
  EXPECT_EQ(closure->labels().postorder[0], 20);
  auto x = closure->AddLeafUnder(0);
  ASSERT_TRUE(x.ok());
  // Hole below 20 is (10, 20): midpoint 15, interval [11, 15].
  EXPECT_EQ(closure->labels().postorder[x.value()], 15);
  EXPECT_EQ(closure->labels().tree_interval[x.value()], (Interval{11, 15}));
  // Untouched labels.
  EXPECT_EQ(closure->labels().postorder[1], 10);
  EXPECT_EQ(closure->labels().postorder[0], 20);
  EXPECT_EQ(closure->stats().renumbers, 0);
  ExpectConsistent(closure.value());
}

TEST(DynamicClosureTest, AddLeafRenumbersWhenHoleExhausted) {
  ClosureOptions options;
  options.labeling.gap = 2;
  options.labeling.reserve = 0;
  DynamicClosure closure(options);
  auto root = closure.AddLeafUnder(kNoNode);
  ASSERT_TRUE(root.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(closure.AddLeafUnder(root.value()).ok());
  }
  EXPECT_GT(closure.stats().renumbers, 0);
  ExpectConsistent(closure);
}

TEST(DynamicClosureTest, GapOneAlwaysRenumbersButStaysCorrect) {
  ClosureOptions options;
  options.labeling.gap = 1;
  DynamicClosure closure(options);
  auto root = closure.AddLeafUnder(kNoNode);
  ASSERT_TRUE(root.ok());
  NodeId tip = root.value();
  for (int i = 0; i < 6; ++i) {
    auto leaf = closure.AddLeafUnder(tip);
    ASSERT_TRUE(leaf.ok());
    tip = leaf.value();
  }
  EXPECT_EQ(closure.stats().renumbers, 6);
  ExpectConsistent(closure);
}

TEST(DynamicClosureTest, AddArcPropagatesToAllPredecessors) {
  // Two chains 0->1->2 and 3->4->5; connect 2 -> 3: everything upstream
  // of 2 must now reach the second chain.
  Digraph graph = GraphFromArcs(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  auto closure = DynamicClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  EXPECT_FALSE(closure->Reaches(0, 5));
  ASSERT_TRUE(closure->AddArc(2, 3).ok());
  EXPECT_TRUE(closure->Reaches(0, 5));
  EXPECT_TRUE(closure->Reaches(2, 4));
  EXPECT_FALSE(closure->Reaches(3, 0));
  ExpectConsistent(closure.value());
}

TEST(DynamicClosureTest, AddArcRejectsCyclesAndDuplicates) {
  Digraph graph = GraphFromArcs(3, {{0, 1}, {1, 2}});
  auto closure = DynamicClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->AddArc(2, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(closure->AddArc(1, 1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(closure->AddArc(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(closure->AddArc(0, 9).code(), StatusCode::kInvalidArgument);
  // Redundant (already implied) arc is fine.
  EXPECT_TRUE(closure->AddArc(0, 2).ok());
  ExpectConsistent(closure.value());
}

TEST(DynamicClosureTest, AddArcPropagationStopsAtSubsumption) {
  // Chain 0->1->...->29 plus a shortcut 0->29 to an already-reachable
  // node: no interval changes anywhere, so only node 0 is visited.
  Digraph graph(30);
  for (NodeId v = 0; v + 1 < 30; ++v) {
    ASSERT_TRUE(graph.AddArc(v, v + 1).ok());
  }
  auto closure = DynamicClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  const int64_t before = closure->stats().propagation_node_visits;
  ASSERT_TRUE(closure->AddArc(0, 29).ok());
  EXPECT_EQ(closure->stats().propagation_node_visits, before + 1);
  ExpectConsistent(closure.value());
}

TEST(DynamicClosureTest, RefineAboveIsConstantTimeWhenCovered) {
  // e -> h and x -> h; refine z between {e, x} and h (the paper's
  // Figure 4.2 scenario).
  Digraph graph = GraphFromArcs(4, {{0, 1}, {1, 3}, {2, 3}});  // e=1? no:
  // 0 -> 1 (a chain head), arcs (1,3) and (2,3): e=1, x=2, h=3.
  auto closure = DynamicClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  const int64_t visits_before = closure->stats().propagation_node_visits;
  auto z = closure->RefineAbove(3, {1, 2});
  ASSERT_TRUE(z.ok()) << z.status().ToString();
  // Both parents already reached h: constant time, no flood.
  EXPECT_EQ(closure->stats().propagation_node_visits, visits_before);
  EXPECT_TRUE(closure->Reaches(1, z.value()));
  EXPECT_TRUE(closure->Reaches(2, z.value()));
  EXPECT_TRUE(closure->Reaches(0, z.value()));  // Through e.
  EXPECT_TRUE(closure->Reaches(z.value(), 3));
  EXPECT_FALSE(closure->Reaches(3, z.value()));
  ExpectConsistent(closure.value());
}

TEST(DynamicClosureTest, RefineAboveEnforcesSoundnessPrecondition) {
  Digraph graph = GraphFromArcs(3, {{0, 2}, {1, 2}});
  auto closure = DynamicClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  // Leaving out predecessor 1 would let it claim the new node falsely.
  EXPECT_EQ(closure->RefineAbove(2, {0}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(closure->RefineAbove(2, {0, 1}).ok());
  ExpectConsistent(closure.value());
}

TEST(DynamicClosureTest, RefineAboveExhaustsReservePool) {
  Digraph graph = GraphFromArcs(2, {{0, 1}});
  ClosureOptions options;
  options.labeling.gap = 8;
  options.labeling.reserve = 2;
  auto closure = DynamicClosure::Build(graph, options);
  ASSERT_TRUE(closure.ok());
  auto z1 = closure->RefineAbove(1, {0});
  ASSERT_TRUE(z1.ok());
  // The second refinement must name z1 as a parent (it now precedes 1).
  auto z2 = closure->RefineAbove(1, {0, z1.value()});
  ASSERT_TRUE(z2.ok()) << z2.status().ToString();
  auto z3 = closure->RefineAbove(1, {0, z1.value(), z2.value()});
  EXPECT_EQ(z3.status().code(), StatusCode::kFailedPrecondition);
  ExpectConsistent(closure.value());
}

TEST(DynamicClosureTest, RefineAbovePropagatesToNewAncestors) {
  // Parent 4 does not reach child 2 yet; refinement must update it.
  Digraph graph = GraphFromArcs(5, {{0, 2}, {1, 2}, {3, 4}});
  auto closure = DynamicClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  auto z = closure->RefineAbove(2, {0, 1, 4});
  ASSERT_TRUE(z.ok());
  EXPECT_TRUE(closure->Reaches(4, 2));
  EXPECT_TRUE(closure->Reaches(3, 2));  // Through 4.
  ExpectConsistent(closure.value());
}

TEST(DynamicClosureTest, RemoveNonTreeArc) {
  Digraph graph = GraphFromArcs(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  auto closure = DynamicClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  // Remove whichever arc into 3 is not the tree arc.
  const NodeId tree_parent = closure->TreeParent(3);
  const NodeId other = tree_parent == 1 ? 2 : 1;
  ASSERT_TRUE(closure->RemoveArc(other, 3).ok());
  EXPECT_FALSE(closure->Reaches(other, 3));
  EXPECT_TRUE(closure->Reaches(tree_parent, 3));
  EXPECT_TRUE(closure->Reaches(0, 3));
  ExpectConsistent(closure.value());
}

TEST(DynamicClosureTest, RemoveTreeArcDetachesSubtree) {
  // Chain 0->1->2 with extra arc 3->1: removing the tree arc (0,1) keeps
  // 1 reachable from 3 only.
  Digraph graph = GraphFromArcs(4, {{0, 1}, {1, 2}, {3, 1}});
  auto closure = DynamicClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  const NodeId tree_parent = closure->TreeParent(1);
  ASSERT_TRUE(closure->RemoveArc(tree_parent, 1).ok());
  const NodeId remaining = tree_parent == 0 ? 3 : 0;
  EXPECT_FALSE(closure->Reaches(tree_parent, 1));
  EXPECT_FALSE(closure->Reaches(tree_parent, 2));
  EXPECT_TRUE(closure->Reaches(remaining, 1));
  EXPECT_TRUE(closure->Reaches(remaining, 2));
  ExpectConsistent(closure.value());
}

TEST(DynamicClosureTest, RemoveArcErrors) {
  Digraph graph = GraphFromArcs(2, {{0, 1}});
  auto closure = DynamicClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->RemoveArc(1, 0).code(), StatusCode::kNotFound);
  EXPECT_EQ(closure->RemoveArc(0, 7).code(), StatusCode::kInvalidArgument);
}

TEST(DynamicClosureTest, ReoptimizeRestoresOptimalStorage) {
  Digraph graph = RandomDag(80, 2.0, 17);
  auto dynamic = DynamicClosure::Build(graph);
  ASSERT_TRUE(dynamic.ok());
  // Degrade the cover with a burst of updates.
  Random rng(5);
  for (int i = 0; i < 40; ++i) {
    const NodeId parent = static_cast<NodeId>(
        rng.Uniform(static_cast<uint64_t>(dynamic->NumNodes())));
    ASSERT_TRUE(dynamic->AddLeafUnder(parent).ok());
  }
  const int64_t degraded = dynamic->TotalIntervals();
  dynamic->Reoptimize();
  EXPECT_LE(dynamic->TotalIntervals(), degraded);
  ExpectConsistent(dynamic.value());
}

// ---------------------------------------------------------------------------
// Randomized operation soak: every mutation keeps the index equivalent to
// ground-truth DFS reachability on the evolving graph.
// ---------------------------------------------------------------------------

struct SoakParam {
  uint64_t seed;
  Label gap;
  Label reserve;
};

class DynamicSoakTest : public ::testing::TestWithParam<SoakParam> {};

TEST_P(DynamicSoakTest, RandomOperationSequenceStaysConsistent) {
  const SoakParam& param = GetParam();
  Random rng(param.seed);
  ClosureOptions options;
  options.labeling.gap = param.gap;
  options.labeling.reserve = param.reserve;
  DynamicClosure closure(options);

  // Seed a few roots.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(closure.AddLeafUnder(kNoNode).ok());
  }

  for (int step = 0; step < 120; ++step) {
    const NodeId n = closure.NumNodes();
    const uint64_t op = rng.Uniform(10);
    if (op < 4) {  // Add a leaf.
      const NodeId parent =
          rng.Uniform(5) == 0
              ? kNoNode
              : static_cast<NodeId>(rng.Uniform(static_cast<uint64_t>(n)));
      ASSERT_TRUE(closure.AddLeafUnder(parent).ok());
    } else if (op < 7) {  // Add a random arc (may be rejected).
      const NodeId a =
          static_cast<NodeId>(rng.Uniform(static_cast<uint64_t>(n)));
      const NodeId b =
          static_cast<NodeId>(rng.Uniform(static_cast<uint64_t>(n)));
      Status s = closure.AddArc(a, b);
      ASSERT_TRUE(s.ok() || s.code() == StatusCode::kInvalidArgument ||
                  s.code() == StatusCode::kAlreadyExists)
          << s.ToString();
    } else if (op < 8) {  // Refine above a random child.
      const NodeId child =
          static_cast<NodeId>(rng.Uniform(static_cast<uint64_t>(n)));
      auto z = closure.RefineAbove(child, closure.graph().InNeighbors(child));
      ASSERT_TRUE(z.ok() || z.status().code() == StatusCode::kInvalidArgument ||
                  z.status().code() == StatusCode::kFailedPrecondition)
          << z.status().ToString();
    } else {  // Remove a random existing arc.
      auto arcs = closure.graph().Arcs();
      if (!arcs.empty()) {
        const auto& [a, b] = arcs[rng.Uniform(arcs.size())];
        ASSERT_TRUE(closure.RemoveArc(a, b).ok());
      }
    }
    if (step % 10 == 9) ExpectConsistent(closure);
  }
  ExpectConsistent(closure);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DynamicSoakTest,
    ::testing::Values(SoakParam{1, 64, 16}, SoakParam{2, 64, 16},
                      SoakParam{3, 64, 0}, SoakParam{4, 8, 3},
                      SoakParam{5, 4, 1}, SoakParam{6, 2, 0},
                      SoakParam{7, 1, 0}, SoakParam{8, 256, 64},
                      SoakParam{9, 16, 7}, SoakParam{10, 32, 8},
                      SoakParam{11, 128, 100}, SoakParam{12, 3, 2},
                      SoakParam{13, 64, 63}, SoakParam{14, 2, 1}),
    [](const ::testing::TestParamInfo<SoakParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_gap" +
             std::to_string(info.param.gap) + "_res" +
             std::to_string(info.param.reserve);
    });

TEST(DynamicClosureTest, SuccessorsMatchGroundTruthAfterUpdates) {
  Digraph graph = RandomDag(40, 2.0, 30);
  auto closure = DynamicClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  ASSERT_TRUE(closure->AddLeafUnder(5).ok());
  ASSERT_TRUE(closure->AddArc(7, 39).ok() ||
              closure->graph().HasArc(7, 39) || closure->Reaches(39, 7));
  ReachabilityMatrix matrix(closure->graph());
  for (NodeId u = 0; u < closure->NumNodes(); ++u) {
    std::vector<NodeId> got = closure->Successors(u);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, matrix.Successors(u)) << "node " << u;
  }
}

}  // namespace
}  // namespace trel
