// Model-based test for the buffer pool: a long random trace of reads and
// writes over a small page file, checked against (a) an in-memory
// reference model of page contents and (b) a reference LRU simulation
// that predicts exactly which accesses hit.

#include <list>
#include <map>
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace trel {
namespace {

// Reference LRU over page ids only.
class LruModel {
 public:
  explicit LruModel(size_t capacity) : capacity_(capacity) {}

  // Returns true if the access hits; updates recency either way.
  bool Access(uint64_t page) {
    auto it = std::find(order_.begin(), order_.end(), page);
    const bool hit = it != order_.end();
    if (hit) order_.erase(it);
    order_.push_front(page);
    if (order_.size() > capacity_) order_.pop_back();
    return hit;
  }

 private:
  size_t capacity_;
  std::list<uint64_t> order_;
};

class BufferPoolModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BufferPoolModelTest, RandomTraceMatchesModels) {
  const std::string path = ::testing::TempDir() + "/pool_model_" +
                           std::to_string(GetParam()) + ".db";
  auto store = PageStore::Open(path, 128);
  ASSERT_TRUE(store.ok());
  const uint64_t kPages = 12;
  const size_t kCapacity = 4;
  for (uint64_t p = 0; p < kPages; ++p) store->AllocatePage();

  BufferPool pool(&store.value(), kCapacity);
  LruModel lru(kCapacity);
  std::map<uint64_t, std::vector<uint8_t>> contents;
  for (uint64_t p = 0; p < kPages; ++p) {
    contents[p] = std::vector<uint8_t>(128, 0);
  }

  Random rng(GetParam());
  int64_t expected_hits = 0, expected_misses = 0;
  for (int step = 0; step < 600; ++step) {
    const uint64_t page = rng.Uniform(kPages);
    if (rng.Bernoulli(0.35)) {
      // Write through the pool.
      std::vector<uint8_t> data(128, static_cast<uint8_t>(step & 0xFF));
      ASSERT_TRUE(pool.PutPage(page, data).ok());
      contents[page] = data;
      // PutPage counts neither hit nor miss but does touch recency.
      lru.Access(page);
    } else {
      auto got = pool.GetPage(page);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(*got.value(), contents[page]) << "page " << page;
      if (lru.Access(page)) {
        ++expected_hits;
      } else {
        ++expected_misses;
      }
    }
  }
  EXPECT_EQ(pool.stats().hits, expected_hits);
  EXPECT_EQ(pool.stats().misses, expected_misses);

  // After a flush, the store holds the reference contents.
  ASSERT_TRUE(pool.Flush().ok());
  for (uint64_t p = 0; p < kPages; ++p) {
    std::vector<uint8_t> read;
    ASSERT_TRUE(store->ReadPage(p, read).ok());
    EXPECT_EQ(read, contents[p]) << "page " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferPoolModelTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace trel
