// Hardening regression tests for the embedded HTTP listener: slow-loris
// read deadlines, request-size caps, mid-response disconnects (the
// SIGPIPE hole), connection-cap shedding, and concurrent scrapes.

#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace trel {
namespace {

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void SendStr(int fd, const std::string& data) {
  EXPECT_EQ(::send(fd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));
}

std::string RecvAll(int fd) {
  std::string response;
  char buf[4096];
  ssize_t got;
  while ((got = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(got));
  }
  return response;
}

std::string HttpGet(int port, const std::string& path) {
  const int fd = ConnectTo(port);
  SendStr(fd, "GET " + path + " HTTP/1.0\r\n\r\n");
  const std::string response = RecvAll(fd);
  ::close(fd);
  return response;
}

// Polls `pred` for up to `budget_ms`; true if it became true in time.
// Stats counters bump on other threads, so tests wait rather than race.
bool WaitFor(const std::function<bool()>& pred, int budget_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Slow loris: a client trickling bytes must be cut off by the TOTAL
// read deadline, no matter how steadily it dribbles.  (The old
// single-threaded listener reset a 2s timer on every recv, so one byte
// every 1.9s could hold the whole server for hours.)

TEST(HttpServerHardeningTest, SlowLorisCutOffByTotalDeadline) {
  HttpServer::Options options;
  options.request_deadline_ms = 300;
  HttpServer server(options);
  server.Handle("/hello", []() { return std::string("hi\n"); });
  ASSERT_TRUE(server.Start(0).ok());

  const auto start = std::chrono::steady_clock::now();
  const int fd = ConnectTo(server.port());
  SendStr(fd, "GET /hello HT");  // Never finishes the request line...
  std::atomic<bool> done{false};
  std::thread dribbler([&] {
    // ...but keeps the socket warm: one byte every 50ms, each arriving
    // well inside any per-recv timeout.  Only a total budget stops it.
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      (void)::send(fd, "T", 1, MSG_NOSIGNAL);
    }
  });

  const std::string response = RecvAll(fd);
  done.store(true);
  dribbler.join();
  ::close(fd);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_NE(response.find("408"), std::string::npos) << response;
  // Cut off near the 300ms budget, not after minutes of dribbling.
  // (Generous bound: CI machines stall, but never by 10s.)
  EXPECT_LT(elapsed.count(), 10000);
  EXPECT_GE(server.stats().deadline_expired, 1);

  // The listener is not wedged: a normal request still works.
  EXPECT_NE(HttpGet(server.port(), "/hello").find("200 OK"),
            std::string::npos);
  server.Stop();
}

TEST(HttpServerHardeningTest, OversizeRequestAnswered431) {
  HttpServer::Options options;
  options.max_request_bytes = 512;
  HttpServer server(options);
  server.Handle("/hello", []() { return std::string("hi\n"); });
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = ConnectTo(server.port());
  SendStr(fd, "GET /hello HTTP/1.0\r\nX-Junk: " + std::string(4096, 'a') +
                  "\r\n\r\n");
  const std::string response = RecvAll(fd);
  ::close(fd);

  EXPECT_NE(response.find("431"), std::string::npos) << response;
  EXPECT_GE(server.stats().too_large, 1);
  server.Stop();
}

TEST(HttpServerHardeningTest, UnparseableRequestAnswered400) {
  HttpServer server;
  server.Handle("/hello", []() { return std::string("hi\n"); });
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = ConnectTo(server.port());
  SendStr(fd, "NONSENSE\r\n\r\n");
  const std::string response = RecvAll(fd);
  ::close(fd);

  EXPECT_NE(response.find("400"), std::string::npos) << response;
  EXPECT_GE(server.stats().bad_requests, 1);
  server.Stop();
}

// ---------------------------------------------------------------------------
// SIGPIPE: a client that closes mid-response must cost a send_errors
// counter, never the process.  (SendAll used to rely solely on
// MSG_NOSIGNAL being defined; a raised SIGPIPE's default disposition is
// process death, which gtest cannot even report.)

TEST(HttpServerHardeningTest, ClientDisconnectMidResponseSurvives) {
  HttpServer server;
  // Big enough that the kernel cannot buffer it all: the server's send
  // loop is still writing when the client vanishes.
  const std::string big(8 * 1024 * 1024, 'x');
  server.Handle("/big", [&big]() { return big; });
  server.Handle("/hello", []() { return std::string("hi\n"); });
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = ConnectTo(server.port());
  SendStr(fd, "GET /big HTTP/1.0\r\n\r\n");
  char buf[128];
  EXPECT_GT(::read(fd, buf, sizeof(buf)), 0);  // Response started...
  ::close(fd);                                 // ...and the peer is gone.

  EXPECT_TRUE(WaitFor([&] { return server.stats().send_errors >= 1; }));

  // The process survived and the worker is free again.
  EXPECT_NE(HttpGet(server.port(), "/hello").find("200 OK"),
            std::string::npos);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Concurrency: shedding at the connection cap, scrapes in parallel.

TEST(HttpServerHardeningTest, ConnectionCapSheds503) {
  HttpServer::Options options;
  options.num_threads = 1;
  options.max_connections = 2;
  HttpServer server(options);

  std::mutex mutex;
  std::condition_variable released_cv;
  bool released = false;
  std::atomic<int> handler_entered{0};
  server.Handle("/slow", [&]() {
    handler_entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mutex);
    released_cv.wait(lock, [&] { return released; });
    return std::string("slow done\n");
  });
  ASSERT_TRUE(server.Start(0).ok());

  // A occupies the single worker (blocked in the handler); B occupies
  // the second and last connection slot, queued for a worker.
  const int fd_a = ConnectTo(server.port());
  SendStr(fd_a, "GET /slow HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(WaitFor([&] { return handler_entered.load() >= 1; }));
  const int fd_b = ConnectTo(server.port());
  SendStr(fd_b, "GET /slow HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(WaitFor([&] { return server.stats().accepted >= 2; }));

  // C is over the cap: shed with a 503 straight from the accept thread,
  // while the worker is still stuck serving A.
  const int fd_c = ConnectTo(server.port());
  SendStr(fd_c, "GET /slow HTTP/1.0\r\n\r\n");
  const std::string shed_response = RecvAll(fd_c);
  ::close(fd_c);
  EXPECT_NE(shed_response.find("503"), std::string::npos) << shed_response;
  EXPECT_GE(server.stats().shed, 1);

  // Release the handler: both admitted connections complete normally.
  {
    std::lock_guard<std::mutex> lock(mutex);
    released = true;
  }
  released_cv.notify_all();
  const std::string response_a = RecvAll(fd_a);
  const std::string response_b = RecvAll(fd_b);
  ::close(fd_a);
  ::close(fd_b);
  EXPECT_NE(response_a.find("200 OK"), std::string::npos);
  EXPECT_NE(response_b.find("200 OK"), std::string::npos);

  // With the backlog drained, capacity is back.
  ASSERT_TRUE(WaitFor([&] { return server.stats().served_ok >= 2; }));
  EXPECT_NE(HttpGet(server.port(), "/slow").find("200 OK"),
            std::string::npos);
  server.Stop();
}

TEST(HttpServerHardeningTest, ConcurrentScrapesAllComplete) {
  HttpServer server;
  // A metricsz-sized body; every byte must arrive on every scrape.
  std::string body = "# HELP trel_test A test family.\n# TYPE trel_test counter\n";
  for (int i = 0; i < 200; ++i) {
    body += "trel_test{row=\"" + std::to_string(i) + "\"} " +
            std::to_string(i * 7) + "\n";
  }
  server.Handle("/metricsz", [&body]() { return body; });
  ASSERT_TRUE(server.Start(0).ok());

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 5;
  std::atomic<int> complete{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string response = HttpGet(server.port(), "/metricsz");
        if (response.find("200 OK") != std::string::npos &&
            response.find("row=\"199\"") != std::string::npos) {
          complete.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(complete.load(), kThreads * kRequestsPerThread);
  EXPECT_GE(server.stats().served_ok, kThreads * kRequestsPerThread);
  EXPECT_EQ(server.stats().send_errors, 0);
  server.Stop();
}

}  // namespace
}  // namespace trel
