#ifndef TREL_TESTS_TEST_UTIL_H_
#define TREL_TESTS_TEST_UTIL_H_

#include <initializer_list>
#include <utility>
#include <vector>

#include "common/check.h"
#include "graph/digraph.h"

namespace trel {
namespace testing_util {

// Builds a digraph from an arc list; aborts on invalid arcs (tests supply
// literals).
inline Digraph GraphFromArcs(
    NodeId num_nodes,
    std::initializer_list<std::pair<NodeId, NodeId>> arcs) {
  Digraph graph(num_nodes);
  for (const auto& [from, to] : arcs) {
    TREL_CHECK(graph.AddArc(from, to).ok());
  }
  return graph;
}

// The paper's running example (Figure 3.2): a DAG whose tree cover and
// intervals are discussed throughout Sections 3 and 4.  Nodes:
// 0=a 1=b 2=c 3=d 4=e 5=f 6=g 7=h 8=i 9=j.  A two-level DAG with one
// root, two shared leaves.
inline Digraph PaperStyleDag() {
  return GraphFromArcs(10, {{0, 1},
                            {0, 2},
                            {0, 3},
                            {1, 4},
                            {1, 5},
                            {2, 5},
                            {2, 6},
                            {3, 6},
                            {4, 7},
                            {5, 7},
                            {5, 8},
                            {6, 9},
                            {6, 8}});
}

}  // namespace testing_util
}  // namespace trel

#endif  // TREL_TESTS_TEST_UTIL_H_
