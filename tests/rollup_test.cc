// Tests for the windowed latency engine (obs/rollup.h) and the anomaly
// flight recorder (obs/flight_recorder.h).  Both take an injectable
// monotonic clock, so every minute boundary and detector threshold here
// is exact, not sleep-based.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "obs/rollup.h"
#include "obs/slow_log.h"

namespace trel {
namespace {

// NowFn is a plain function pointer, so the fake clock lives in a
// file-scope atomic the tests advance directly.
std::atomic<int64_t> g_fake_nanos{0};

int64_t FakeNow() { return g_fake_nanos.load(std::memory_order_relaxed); }

void SetMinute(int64_t minute) {
  g_fake_nanos.store(minute * LatencyRollup::kNanosPerMinute,
                     std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// LatencyRollup

TEST(LatencyRollupTest, EmptyWindowReportsZeros) {
  SetMinute(10);
  LatencyRollup rollup({"a", "b"}, &FakeNow);
  const LatencyRollup::WindowStats stats = rollup.Window(0, 1);
  EXPECT_EQ(stats.count, 0);
  EXPECT_EQ(stats.sum_nanos, 0);
  EXPECT_EQ(stats.p50_us, 0.0);
  EXPECT_EQ(stats.p999_us, 0.0);
}

TEST(LatencyRollupTest, RecordsFoldIntoCurrentMinuteWindow) {
  SetMinute(10);
  LatencyRollup rollup({"a"}, &FakeNow);
  for (int i = 0; i < 100; ++i) rollup.Record(0, 1000);  // 1 us each.
  const LatencyRollup::WindowStats stats = rollup.Window(0, 1);
  EXPECT_EQ(stats.count, 100);
  EXPECT_EQ(stats.sum_nanos, 100 * 1000);
  // 1000 ns lands in bucket [512, 1024); the reported quantile is the
  // bucket's upper edge, 1024 ns = 1.024 us.
  EXPECT_DOUBLE_EQ(stats.p50_us, 1.024);
  EXPECT_DOUBLE_EQ(stats.p99_us, 1.024);
  EXPECT_DOUBLE_EQ(stats.p999_us, 1.024);
}

TEST(LatencyRollupTest, MinuteRotationSplitsWindows) {
  SetMinute(10);
  LatencyRollup rollup({"a"}, &FakeNow);
  for (int i = 0; i < 50; ++i) rollup.Record(0, 1000);
  SetMinute(11);
  for (int i = 0; i < 30; ++i) rollup.Record(0, 2000);
  // The 1m window covers only the current minute.
  EXPECT_EQ(rollup.Window(0, 1).count, 30);
  // A 2m (and the exported 5m) window folds both minutes.
  EXPECT_EQ(rollup.Window(0, 2).count, 80);
  EXPECT_EQ(rollup.Window(0, 5).count, 80);
}

TEST(LatencyRollupTest, SkipMinutesYieldsTrailingBaseline) {
  SetMinute(10);
  LatencyRollup rollup({"a"}, &FakeNow);
  for (int i = 0; i < 50; ++i) rollup.Record(0, 1000);
  SetMinute(11);
  for (int i = 0; i < 30; ++i) rollup.Record(0, 2000);
  // skip_minutes=1 excludes the current minute: only minute 10 remains.
  const LatencyRollup::WindowStats baseline = rollup.Window(0, 1, 1);
  EXPECT_EQ(baseline.count, 50);
  EXPECT_EQ(baseline.sum_nanos, 50 * 1000);
}

TEST(LatencyRollupTest, StaleMinutesFallOutOfEveryWindow) {
  SetMinute(0);
  LatencyRollup rollup({"a"}, &FakeNow);
  for (int i = 0; i < 10; ++i) rollup.Record(0, 1000);
  // Advance past the largest window without recording: the stamped
  // minute 0 is older than any window base, so nothing folds.
  SetMinute(7);
  EXPECT_EQ(rollup.Window(0, 5).count, 0);
  // The ring cell for minute 8 is minute 0's slot (kRingMinutes = 8);
  // the first record of the new minute reclaims and clears it.
  SetMinute(8);
  rollup.Record(0, 4000);
  EXPECT_EQ(rollup.Window(0, 5).count, 1);
}

TEST(LatencyRollupTest, QuantilesAreOrderedAcrossASpread) {
  SetMinute(3);
  LatencyRollup rollup({"a"}, &FakeNow);
  // 900 fast, 90 medium, 10 slow: p50 in the fast bucket, p99 in the
  // medium one, p999 in the slow one.
  for (int i = 0; i < 900; ++i) rollup.Record(0, 1000);        // ~1 us
  for (int i = 0; i < 90; ++i) rollup.Record(0, 100 * 1000);   // ~100 us
  for (int i = 0; i < 10; ++i) rollup.Record(0, 10 * 1000 * 1000);  // ~10 ms
  const LatencyRollup::WindowStats stats = rollup.Window(0, 1);
  EXPECT_EQ(stats.count, 1000);
  EXPECT_LE(stats.p50_us, stats.p99_us);
  EXPECT_LE(stats.p99_us, stats.p999_us);
  EXPECT_LT(stats.p50_us, 10.0);
  EXPECT_GT(stats.p99_us, 50.0);
  EXPECT_GT(stats.p999_us, 5000.0);
}

TEST(LatencyRollupTest, OutOfRangeSeriesAndNegativeNanosAreSafe) {
  SetMinute(5);
  LatencyRollup rollup({"a"}, &FakeNow);
  rollup.Record(-1, 1000);
  rollup.Record(7, 1000);
  rollup.Record(0, -12345);  // Clamped to 0 ns.
  EXPECT_EQ(rollup.Window(-1, 1).count, 0);
  EXPECT_EQ(rollup.Window(7, 1).count, 0);
  const LatencyRollup::WindowStats stats = rollup.Window(0, 1);
  EXPECT_EQ(stats.count, 1);
  EXPECT_EQ(stats.sum_nanos, 0);
}

TEST(LatencyRollupTest, ExportedWindowListIsAscending) {
  const std::vector<int>& windows = LatencyRollup::WindowMinutes();
  ASSERT_GE(windows.size(), 2u);
  for (size_t i = 1; i < windows.size(); ++i) {
    EXPECT_LT(windows[i - 1], windows[i]);
  }
}

// Writers hammer Record across two series while a reader folds windows
// and another thread flips the minute to force rotation races.  Run
// under TSan by ci.sh --obs; the assertion here is only sanity (the
// rotation instant may drop a bounded number of racing records).
TEST(LatencyRollupTest, ConcurrentWritersAndReaders) {
  SetMinute(100);
  LatencyRollup rollup({"a", "b"}, &FakeNow);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread rotator([&stop] {
    int64_t minute = 100;
    while (!stop.load(std::memory_order_relaxed)) {
      SetMinute(++minute % 3 + 100);  // Bounce across three minutes.
      std::this_thread::yield();
    }
  });
  std::thread reader([&rollup, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)rollup.Window(0, 1);
      (void)rollup.Window(1, 5, 1);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rollup, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rollup.Record(t % 2, 1000 + i);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  rotator.join();
  reader.join();
  SetMinute(100);  // Restore a quiet clock for the fold below.
  const int64_t total =
      rollup.Window(0, 5).count + rollup.Window(1, 5).count;
  EXPECT_GE(total, 0);
  EXPECT_LE(total, int64_t{kThreads} * kPerThread);
}

// ---------------------------------------------------------------------------
// FlightRecorder

TEST(FlightRecorderTest, ForceCaptureRunsBuilderAndFreezesWindows) {
  SetMinute(10);
  LatencyRollup rollup({"a", "b"}, &FakeNow);
  rollup.Record(0, 1000);
  FlightRecorder::Options options;
  FlightRecorder recorder(options, &FakeNow);
  recorder.Attach(&rollup, [](FlightCapture* capture) {
    TraceRecord r;
    r.source = 7;
    r.target = 9;
    r.answer = true;
    capture->traces.push_back(r);
    capture->metrics = "epoch=3 nodes=10";
  });
  EXPECT_TRUE(recorder.ForceCapture("forced_test_trigger"));
  EXPECT_EQ(recorder.TotalTriggered(), 1);
  const std::vector<FlightCapture> captures = recorder.Captures();
  ASSERT_EQ(captures.size(), 1u);
  EXPECT_EQ(captures[0].reason, "forced_test_trigger");
  ASSERT_EQ(captures[0].traces.size(), 1u);
  EXPECT_EQ(captures[0].traces[0].source, 7);
  // One window row per series x exported window.
  EXPECT_EQ(captures[0].windows.size(),
            2 * LatencyRollup::WindowMinutes().size());
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"total_triggered\":1"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"forced_test_trigger\""),
            std::string::npos);
  EXPECT_NE(json.find("\"metrics\":\"epoch=3 nodes=10\""), std::string::npos);
  EXPECT_NE(json.find("\"series\":\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"window\":\"5m\""), std::string::npos);
}

TEST(FlightRecorderTest, PublishStallFiresOncePerEpoch) {
  SetMinute(10);
  FlightRecorder recorder(FlightRecorder::Options(), &FakeNow);
  FlightRecorder::Inputs inputs;
  inputs.has_publish = true;
  inputs.last_publish_micros = 2 * 1000 * 1000;  // 2 s > 1 s default.
  inputs.last_publish_epoch = 5;
  EXPECT_TRUE(recorder.Check(inputs));
  EXPECT_EQ(recorder.Captures().back().reason, "publish_stall");
  // Same stalled epoch again: no second capture.
  EXPECT_FALSE(recorder.Check(inputs));
  // A new stalled epoch re-arms the detector.
  inputs.last_publish_epoch = 6;
  EXPECT_TRUE(recorder.Check(inputs));
  EXPECT_EQ(recorder.TotalTriggered(), 2);
}

TEST(FlightRecorderTest, RejectedBurstComparesDeltasNotTotals) {
  SetMinute(10);
  FlightRecorder recorder(FlightRecorder::Options(), &FakeNow);
  FlightRecorder::Inputs inputs;
  inputs.batches_rejected = 1000;  // Large total; first check only seeds.
  EXPECT_FALSE(recorder.Check(inputs));
  inputs.batches_rejected = 1007;  // +7 < default burst of 8.
  EXPECT_FALSE(recorder.Check(inputs));
  inputs.batches_rejected = 1015;  // +8 since the last check.
  EXPECT_TRUE(recorder.Check(inputs));
  EXPECT_EQ(recorder.Captures().back().reason, "rejected_burst");
}

TEST(FlightRecorderTest, BoundarySpikeComparesDeltas) {
  SetMinute(10);
  FlightRecorder::Options options;
  options.boundary_spike = 4;
  FlightRecorder recorder(options, &FakeNow);
  FlightRecorder::Inputs inputs;
  inputs.boundary_republishes = 50;
  EXPECT_FALSE(recorder.Check(inputs));  // Seeds.
  inputs.boundary_republishes = 54;
  EXPECT_TRUE(recorder.Check(inputs));
  EXPECT_EQ(recorder.Captures().back().reason, "boundary_spike");
}

TEST(FlightRecorderTest, P99DriftFiresDeterministically) {
  FlightRecorder::Options options;
  options.p99_drift_factor = 4.0;
  options.min_window_count = 64;
  LatencyRollup rollup({"a"}, &FakeNow);
  FlightRecorder recorder(options, &FakeNow);
  recorder.Attach(&rollup, [](FlightCapture*) {});
  // Baseline: four quiet minutes at ~1 us.
  for (int64_t minute = 10; minute <= 13; ++minute) {
    SetMinute(minute);
    for (int i = 0; i < 32; ++i) rollup.Record(0, 1000);
  }
  // Current minute: enough samples, 1000x slower.
  SetMinute(14);
  for (int i = 0; i < 64; ++i) rollup.Record(0, 1000 * 1000);
  FlightRecorder::Inputs inputs;
  EXPECT_TRUE(recorder.Check(inputs));
  EXPECT_EQ(recorder.Captures().back().reason, "p99_drift");
  // Re-armed at most once per minute.
  EXPECT_FALSE(recorder.Check(inputs));
  // The next minute the anomalous minute 14 is part of the trailing
  // baseline, so the load must degrade a further 4x over it to fire
  // again — a sustained-but-stable anomaly does not flood the ring.
  SetMinute(15);
  for (int i = 0; i < 64; ++i) rollup.Record(0, 20 * 1000 * 1000);
  EXPECT_TRUE(recorder.Check(inputs));
}

TEST(FlightRecorderTest, DriftRequiresMinimumWindowCounts) {
  FlightRecorder::Options options;
  options.min_window_count = 64;
  LatencyRollup rollup({"a"}, &FakeNow);
  FlightRecorder recorder(options, &FakeNow);
  recorder.Attach(&rollup, [](FlightCapture*) {});
  // Thin baseline (under min_window_count): never fires, however bad
  // the current minute looks.
  SetMinute(20);
  for (int i = 0; i < 8; ++i) rollup.Record(0, 1000);
  SetMinute(21);
  for (int i = 0; i < 64; ++i) rollup.Record(0, 1000 * 1000);
  EXPECT_FALSE(recorder.Check(FlightRecorder::Inputs()));
  EXPECT_EQ(recorder.TotalTriggered(), 0);
}

TEST(FlightRecorderTest, CaptureRingIsBounded) {
  SetMinute(10);
  FlightRecorder::Options options;
  options.max_captures = 2;
  FlightRecorder recorder(options, &FakeNow);
  recorder.ForceCapture("one");
  recorder.ForceCapture("two");
  recorder.ForceCapture("three");
  EXPECT_EQ(recorder.TotalTriggered(), 3);
  const std::vector<FlightCapture> captures = recorder.Captures();
  ASSERT_EQ(captures.size(), 2u);
  EXPECT_EQ(captures[0].reason, "two");
  EXPECT_EQ(captures[1].reason, "three");
  // Sequences stay monotone across evictions.
  EXPECT_LT(captures[0].sequence, captures[1].sequence);
}

// ---------------------------------------------------------------------------
// SlowQueryEntry rendering (shared by /tracez and the flight recorder)

TEST(SlowQueryEntryTest, SingleToStringWithoutShards) {
  SlowQueryEntry entry;
  entry.sequence = 3;
  entry.epoch = 9;
  entry.source = 4;
  entry.target = 17;
  entry.micros = 12000;
  entry.answer = true;
  entry.tag = ProbeTag::kSlot;
  EXPECT_EQ(entry.ToString(),
            "seq=3 epoch=9 single n=1 first=(4,17) us=12000 answer=1 "
            "tag=slot");
}

TEST(SlowQueryEntryTest, SingleToStringWithShardAttribution) {
  SlowQueryEntry entry;
  entry.sequence = 8;
  entry.epoch = 2;
  entry.source = 1;
  entry.target = 5;
  entry.micros = 15000;
  entry.answer = false;
  entry.tag = ProbeTag::kBoundaryBitset;
  entry.source_shard = 0;
  entry.target_shard = 3;
  entry.cross_shard = true;
  EXPECT_EQ(entry.ToString(),
            "seq=8 epoch=2 single n=1 first=(1,5) us=15000 answer=0 "
            "tag=boundary shards=(0,3) cross=1");
}

TEST(SlowQueryEntryTest, BatchToStringCarriesKernelStats) {
  SlowQueryEntry entry;
  entry.sequence = 11;
  entry.epoch = 4;
  entry.is_batch = true;
  entry.source = 2;
  entry.target = 6;
  entry.num_queries = 256;
  entry.micros = 250000;
  entry.stats.fast_path = 200;
  entry.stats.filter_rejects = 40;
  entry.stats.group_rejects = 10;
  entry.stats.extras_searches = 6;
  EXPECT_EQ(entry.ToString(),
            "seq=11 epoch=4 batch n=256 first=(2,6) us=250000 "
            "stats[fast=200 filter=40 group=10 extras=6]");
}

}  // namespace
}  // namespace trel
