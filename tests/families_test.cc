#include "graph/families.h"


#include <algorithm>
#include <gtest/gtest.h>

#include "core/compressed_closure.h"
#include "graph/reachability.h"
#include "graph/topology.h"

namespace trel {
namespace {

TEST(GridDagTest, StructureAndReachability) {
  Digraph graph = GridDag(3, 4);
  EXPECT_EQ(graph.NumNodes(), 12);
  // Arcs: right 3*3 + down 2*4 = 17.
  EXPECT_EQ(graph.NumArcs(), 17);
  EXPECT_TRUE(IsAcyclic(graph));
  ReachabilityMatrix matrix(graph);
  EXPECT_TRUE(matrix.Reaches(0, 11));   // Corner to corner.
  EXPECT_FALSE(matrix.Reaches(11, 0));
  EXPECT_FALSE(matrix.Reaches(3, 4));   // (0,3) cannot reach (1,0).
}

TEST(SeriesParallelDagTest, AcyclicAndDeterministic) {
  Digraph a = SeriesParallelDag(40, 3);
  Digraph b = SeriesParallelDag(40, 3);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(IsAcyclic(a));
  EXPECT_GT(a.NumNodes(), 10);
}

TEST(SeriesParallelDagTest, CompressesToNearTreeSize) {
  // Series-parallel reachability is structured; the closure should be
  // close to one interval per node.
  Digraph graph = SeriesParallelDag(120, 9);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  EXPECT_LT(closure->TotalIntervals(), 2 * graph.NumNodes());
}

TEST(PowerLawDagTest, RespectsDegreeCapAndAcyclicity) {
  Digraph graph = PowerLawDag(300, 2.0, 20, 4);
  EXPECT_TRUE(IsAcyclic(graph));
  int max_out = 0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    max_out = std::max(max_out, graph.OutDegree(v));
  }
  EXPECT_LE(max_out, 20);
  EXPECT_GE(graph.NumArcs(), 299);  // At least ~1 per non-sink node.
}

TEST(GenealogyDagTest, EveryNonFounderHasTwoParents) {
  Digraph graph = GenealogyDag(200, 5, 6);
  EXPECT_TRUE(IsAcyclic(graph));
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(graph.InDegree(v), 0);
  }
  for (NodeId v = 5; v < 200; ++v) {
    EXPECT_EQ(graph.InDegree(v), 2);
  }
}

}  // namespace
}  // namespace trel
