#include "baselines/multi_hierarchy.h"

#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/reachability.h"
#include "tests/test_util.h"

namespace trel {
namespace {

using testing_util::GraphFromArcs;

TEST(MultiHierarchyTest, RejectsCycles) {
  Digraph graph = GraphFromArcs(2, {{0, 1}, {1, 0}});
  EXPECT_FALSE(MultiHierarchyLabeling::Build(graph).ok());
}

TEST(MultiHierarchyTest, ExactOnTrees) {
  Digraph tree = RandomTree(60, 80);
  auto labeling = MultiHierarchyLabeling::Build(tree);
  ASSERT_TRUE(labeling.ok());
  EXPECT_EQ(labeling->NumHierarchies(), 1);
  ReachabilityMatrix matrix(tree);
  for (NodeId u = 0; u < tree.NumNodes(); ++u) {
    for (NodeId v = 0; v < tree.NumNodes(); ++v) {
      EXPECT_EQ(labeling->Reaches(u, v), matrix.Reaches(u, v))
          << u << "->" << v;
    }
  }
}

TEST(MultiHierarchyTest, NumHierarchiesEqualsMaxInDegree) {
  Digraph graph = GraphFromArcs(5, {{0, 4}, {1, 4}, {2, 4}, {3, 4}});
  auto labeling = MultiHierarchyLabeling::Build(graph);
  ASSERT_TRUE(labeling.ok());
  EXPECT_EQ(labeling->NumHierarchies(), 4);
}

TEST(MultiHierarchyTest, SoundButIncompleteOnDags) {
  // 0 -> 1 -> 3 and 2 -> 3; with 0->1 in forest 0 and the diamond split,
  // cross-forest paths can be missed but nothing false is reported.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Digraph graph = RandomDag(40, 2.0, 90 + seed);
    auto labeling = MultiHierarchyLabeling::Build(graph);
    ASSERT_TRUE(labeling.ok());
    ReachabilityMatrix matrix(graph);
    for (NodeId u = 0; u < graph.NumNodes(); ++u) {
      for (NodeId v = 0; v < graph.NumNodes(); ++v) {
        if (labeling->Reaches(u, v)) {
          EXPECT_TRUE(matrix.Reaches(u, v))
              << "false positive " << u << "->" << v;
        }
      }
    }
  }
}

TEST(MultiHierarchyTest, MissesCrossForestPaths) {
  // Force a cross-forest path: 0->1 (forest 0), 2->1 (forest 1), and
  // 1->3.  Path 2->1->3 exists; in forest 1, node 1 has no child (3's
  // parent lives in forest 0), so 2->3 is invisible to the labeling.
  Digraph graph = GraphFromArcs(4, {{0, 1}, {2, 1}, {1, 3}});
  auto labeling = MultiHierarchyLabeling::Build(graph);
  ASSERT_TRUE(labeling.ok());
  EXPECT_TRUE(labeling->Reaches(0, 3));
  EXPECT_TRUE(labeling->Reaches(2, 1));
  EXPECT_FALSE(labeling->Reaches(2, 3)) << "expected the documented miss";
  ReachabilityMatrix matrix(graph);
  EXPECT_TRUE(matrix.Reaches(2, 3));
}

TEST(MultiHierarchyTest, StorageCountsNonIsolatedEntries) {
  // A single chain: one hierarchy, every node stored once.
  Digraph chain = GraphFromArcs(4, {{0, 1}, {1, 2}, {2, 3}});
  auto labeling = MultiHierarchyLabeling::Build(chain);
  ASSERT_TRUE(labeling.ok());
  EXPECT_EQ(labeling->StorageUnits(), 4);
}

}  // namespace
}  // namespace trel
