// Persistence across close/reopen: a compressed closure written to a page
// file must answer identically after the process-level handle is dropped
// and the file is reopened cold.

#include <string>

#include <gtest/gtest.h>

#include "core/compressed_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "storage/buffer_pool.h"
#include "storage/closure_store.h"
#include "storage/page_store.h"

namespace trel {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PersistenceTest, PageStoreReopenPreservesContents) {
  const std::string path = TempPath("reopen.db");
  {
    auto store = PageStore::Open(path, 256);
    ASSERT_TRUE(store.ok());
    store->AllocatePage();
    store->AllocatePage();
    std::vector<uint8_t> data(256, 0x3C);
    ASSERT_TRUE(store->WritePage(1, data).ok());
  }  // Store closed here.
  auto reopened = PageStore::Open(path, 256, /*truncate=*/false);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->num_pages(), 2u);
  std::vector<uint8_t> read;
  ASSERT_TRUE(reopened->ReadPage(1, read).ok());
  EXPECT_EQ(read, std::vector<uint8_t>(256, 0x3C));
}

TEST(PersistenceTest, ReopenRejectsTornFile) {
  const std::string path = TempPath("torn.db");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[100] = {0};
    std::fwrite(junk, 1, sizeof(junk), f);  // Not a multiple of 256.
    std::fclose(f);
  }
  EXPECT_FALSE(PageStore::Open(path, 256, /*truncate=*/false).ok());
}

TEST(PersistenceTest, IntervalStoreSurvivesReopen) {
  const std::string path = TempPath("closure_reopen.db");
  Digraph graph = RandomDag(120, 2.5, 400);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  {
    auto store = PageStore::Open(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(IntervalStore::Write(closure.value(), store.value()).ok());
  }

  auto reopened = PageStore::Open(path, PageStore::kDefaultPageSize,
                                  /*truncate=*/false);
  ASSERT_TRUE(reopened.ok());
  BufferPool pool(&reopened.value(), 8);
  auto on_disk = IntervalStore::Open(&pool);
  ASSERT_TRUE(on_disk.ok());
  ReachabilityMatrix truth(graph);
  for (NodeId u = 0; u < graph.NumNodes(); u += 3) {
    for (NodeId v = 0; v < graph.NumNodes(); v += 2) {
      auto got = on_disk->Reaches(u, v);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got.value(), truth.Reaches(u, v)) << u << "->" << v;
    }
  }
}

TEST(PersistenceTest, BufferPoolFlushThenReopenSeesWrites) {
  const std::string path = TempPath("flush_reopen.db");
  {
    auto store = PageStore::Open(path, 256);
    ASSERT_TRUE(store.ok());
    store->AllocatePage();
    BufferPool pool(&store.value(), 2);
    std::vector<uint8_t> data(256, 0x42);
    ASSERT_TRUE(pool.PutPage(0, data).ok());
    ASSERT_TRUE(pool.Flush().ok());
  }
  auto reopened = PageStore::Open(path, 256, /*truncate=*/false);
  ASSERT_TRUE(reopened.ok());
  std::vector<uint8_t> read;
  ASSERT_TRUE(reopened->ReadPage(0, read).ok());
  EXPECT_EQ(read, std::vector<uint8_t>(256, 0x42));
}

}  // namespace
}  // namespace trel
