// Observability subsystem (src/obs/ + service exposition): the sampled
// query tracer, publish spans, slow-query log, Prometheus rendering, the
// embedded HTTP listener, and their agreement with ServiceMetrics.
// QueryTracerTest.ConcurrentRecordAndDrain is a TSan target of
// tools/ci.sh --obs.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/compressed_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "obs/histogram.h"
#include "obs/http_server.h"
#include "obs/prometheus.h"
#include "obs/slow_log.h"
#include "obs/span_log.h"
#include "obs/trace.h"
#include "service/exposition.h"
#include "service/query_service.h"

namespace trel {
namespace {

// ---------------------------------------------------------------------------
// PowerOfTwoBucket

TEST(PowerOfTwoBucketTest, PowersLandInOwnBucket) {
  // The bucket scheme's defining property: 2^i is the first value of
  // bucket i, so it must land exactly there.
  for (int i = 0; i < 22; ++i) {
    EXPECT_EQ(PowerOfTwoBucket(int64_t{1} << i, 22), i) << "2^" << i;
  }
  // And the largest value of bucket i is 2^(i+1) - 1.
  for (int i = 1; i < 21; ++i) {
    EXPECT_EQ(PowerOfTwoBucket((int64_t{1} << (i + 1)) - 1, 22), i);
  }
}

TEST(PowerOfTwoBucketTest, EdgesAndClamping) {
  EXPECT_EQ(PowerOfTwoBucket(0, 22), 0);
  EXPECT_EQ(PowerOfTwoBucket(1, 22), 0);
  EXPECT_EQ(PowerOfTwoBucket(2, 22), 1);
  // Everything at or past 2^21 collapses into the last bucket.
  EXPECT_EQ(PowerOfTwoBucket(int64_t{1} << 21, 22), 21);
  EXPECT_EQ(PowerOfTwoBucket(int64_t{1} << 40, 22), 21);
  EXPECT_EQ(PowerOfTwoBucket(INT64_MAX, 22), 21);
}

// ---------------------------------------------------------------------------
// ServiceMetrics::View::ToString golden

TEST(ServiceMetricsViewTest, ToStringGolden) {
  ServiceMetrics::View view;
  view.current_epoch = 3;
  view.snapshot_age_seconds = 0.5;
  view.snapshot_num_nodes = 10;
  view.snapshot_total_intervals = 12;
  view.snapshot_overlay_nodes = 1;
  view.snapshot_arena_bytes = 2048;
  view.simd_level = 0;
  view.simd_level_name = "scalar";
  view.reach_queries = 100;
  view.successor_queries = 5;
  view.batches = 2;
  view.batch_micros_total = 300;
  view.batches_rejected = 1;
  view.batch_fast_path = 50;
  view.batch_filter_rejects = 30;
  view.batch_group_rejects = 10;
  view.batch_extras_searches = 10;
  view.publishes = 3;
  view.publishes_full = 2;
  view.publishes_delta = 1;
  view.publishes_chain_full = 1;
  view.publishes_optimal_full = 1;
  view.publish_micros_total = 1020;
  view.publish_full_micros_total = 1000;
  view.publish_delta_micros_total = 20;
  view.publish_chain_full_micros_total = 300;
  view.publish_optimal_full_micros_total = 700;
  view.delta_nodes_total = 4;
  view.batch_latency_histogram[8] = 2;  // [256, 512) us.
  view.delta_nodes_histogram[2] = 1;    // [4, 8) nodes.
  view.index_family = 2;
  view.index_family_name = "hop";
  view.family_label_bytes = 4096;
  view.family_selects = {5, 0, 2};
  view.last_publish_strategy = "chain_full";
  view.chain_full_intervals_last = 24;
  view.optimal_full_intervals_last = 12;
  view.chain_interval_blowup = 2.0;

  EXPECT_EQ(view.ToString(),
            "epoch=3 age_s=0.5 nodes=10 intervals=12 overlay_nodes=1 "
            "arena_bytes=2048 simd=scalar reach_queries=100 "
            "successor_queries=5 batches=2 batch_us=300 batches_rejected=1 "
            "batch_kernel=[fast=50 filter_rej=30 group_rej=10 extras=10] "
            "publishes=3 (full=2 delta=1) publish_us=1020 (full=1000 "
            "delta=20) delta_nodes=4 latency_hist_us=[<512:2] "
            "delta_nodes_hist=[<8:1] index_family=hop "
            "family_label_bytes=4096 "
            "family_selects=[intervals=5 trees=0 hop=2] "
            "publish_strategy=chain_full publishes_chain_full=1 "
            "publishes_optimal_full=1 publish_us_chain_full=300 "
            "publish_us_optimal_full=700 chain_intervals_last=24 "
            "optimal_intervals_last=12 chain_blowup=2");
}

// ---------------------------------------------------------------------------
// Prometheus text rendering

TEST(PrometheusTest, CounterAndGaugeGolden) {
  PrometheusText text;
  text.Family("demo_total", "A demo counter.", "counter");
  text.Sample("demo_total", "", int64_t{7});
  text.Sample("demo_total", "kind=\"full\"", int64_t{2});
  text.Family("demo_ratio", "A demo gauge.", "gauge");
  text.Sample("demo_ratio", "", 0.25);
  EXPECT_EQ(text.str(),
            "# HELP demo_total A demo counter.\n"
            "# TYPE demo_total counter\n"
            "demo_total 7\n"
            "demo_total{kind=\"full\"} 2\n"
            "# HELP demo_ratio A demo gauge.\n"
            "# TYPE demo_ratio gauge\n"
            "demo_ratio 0.25\n");
}

TEST(PrometheusTest, HistogramCumulativeGolden) {
  // Buckets {1, 2, 0, 3}: cumulative counts 1, 3, 3; the open-ended last
  // bucket folds into +Inf = 6.  _sum is the tracked total, not derived.
  const int64_t buckets[4] = {1, 2, 0, 3};
  PrometheusText text;
  text.Histogram("demo", "kind=\"full\"", buckets, 4, 40);
  EXPECT_EQ(text.str(),
            "demo_bucket{kind=\"full\",le=\"2\"} 1\n"
            "demo_bucket{kind=\"full\",le=\"4\"} 3\n"
            "demo_bucket{kind=\"full\",le=\"8\"} 3\n"
            "demo_bucket{kind=\"full\",le=\"+Inf\"} 6\n"
            "demo_sum{kind=\"full\"} 40\n"
            "demo_count{kind=\"full\"} 6\n");
}

TEST(PrometheusTest, UnlabeledHistogramAndLabelEscaping) {
  const int64_t buckets[2] = {4, 0};
  PrometheusText text;
  text.Histogram("h", "", buckets, 2, 5);
  EXPECT_EQ(text.str(),
            "h_bucket{le=\"2\"} 4\n"
            "h_bucket{le=\"+Inf\"} 4\n"
            "h_sum 5\n"
            "h_count 4\n");
  EXPECT_EQ(PrometheusText::Label("name", "a\"b\\c\nd"),
            "name=\"a\\\"b\\\\c\\nd\"");
}

// ---------------------------------------------------------------------------
// QueryTracer

TEST(QueryTracerTest, DisabledByDefault) {
  QueryTracer tracer;
  EXPECT_EQ(tracer.sample_period(), 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(tracer.ShouldSample());
  EXPECT_EQ(tracer.TotalSampled(), 0u);
  EXPECT_TRUE(tracer.Drain().empty());
}

TEST(QueryTracerTest, PeriodRoundsUpToPowerOfTwo) {
  QueryTracer tracer;
  tracer.SetSamplePeriod(1);
  EXPECT_EQ(tracer.sample_period(), 1u);
  tracer.SetSamplePeriod(100);
  EXPECT_EQ(tracer.sample_period(), 128u);
  tracer.SetSamplePeriod(1024);
  EXPECT_EQ(tracer.sample_period(), 1024u);
  tracer.SetSamplePeriod(0);
  EXPECT_EQ(tracer.sample_period(), 0u);
}

TEST(QueryTracerTest, SamplesOneInPeriod) {
  QueryTracer tracer;
  tracer.SetSamplePeriod(4);
  int sampled = 0;
  for (int i = 0; i < 400; ++i) sampled += tracer.ShouldSample() ? 1 : 0;
  EXPECT_EQ(sampled, 100);
}

TEST(QueryTracerTest, RecordDrainRoundTrip) {
  QueryTracer tracer;
  tracer.SetSamplePeriod(1);
  tracer.Record(/*source=*/3, /*target=*/9, /*answer=*/true,
                /*from_batch=*/false, ProbeTag::kExtrasSearch,
                /*extras_probes=*/5, /*epoch=*/2, /*nanos=*/1234);
  tracer.Record(7, 1, false, true, ProbeTag::kFilterReject, 0, 2, 88);
  const std::vector<TraceRecord> records = tracer.Drain();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sequence, 0u);
  EXPECT_EQ(records[0].source, 3);
  EXPECT_EQ(records[0].target, 9);
  EXPECT_TRUE(records[0].answer);
  EXPECT_FALSE(records[0].from_batch);
  EXPECT_EQ(records[0].tag, ProbeTag::kExtrasSearch);
  EXPECT_EQ(records[0].extras_probes, 5u);
  EXPECT_EQ(records[0].epoch, 2u);
  EXPECT_EQ(records[0].nanos, 1234u);
  EXPECT_EQ(records[1].sequence, 1u);
  EXPECT_EQ(records[1].tag, ProbeTag::kFilterReject);
  EXPECT_TRUE(records[1].from_batch);
  EXPECT_EQ(tracer.TotalSampled(), 2u);
  const auto tags = tracer.TagCounts();
  EXPECT_EQ(tags[static_cast<int>(ProbeTag::kExtrasSearch)], 1u);
  EXPECT_EQ(tags[static_cast<int>(ProbeTag::kFilterReject)], 1u);
}

TEST(QueryTracerTest, RingRetainsNewestRecords) {
  QueryTracer tracer(/*ring_capacity=*/4);
  tracer.SetSamplePeriod(1);
  // Single thread -> single ring; 20 records overwrite down to the last 4.
  for (int i = 0; i < 20; ++i) {
    tracer.Record(i, i, false, false, ProbeTag::kSlot, 0, 1, i);
  }
  const std::vector<TraceRecord> records = tracer.Drain();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().sequence, 16u);
  EXPECT_EQ(records.back().sequence, 19u);
  EXPECT_EQ(tracer.TotalSampled(), 20u);
}

TEST(QueryTracerTest, ConcurrentRecordAndDrain) {
  QueryTracer tracer(/*ring_capacity=*/64);
  tracer.SetSamplePeriod(1);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&tracer, w]() {
      for (int i = 0; i < kPerWriter; ++i) {
        tracer.Record(w, i, (i & 1) != 0, false, ProbeTag::kFilterReject, 0,
                      1, i);
      }
    });
  }
  // Drain concurrently with the writers; torn slots must be skipped, not
  // misread, and every surfaced record must be internally consistent.
  for (int round = 0; round < 50; ++round) {
    for (const TraceRecord& r : tracer.Drain()) {
      EXPECT_LT(r.source, kWriters);
      EXPECT_LT(static_cast<int>(r.target), kPerWriter);
      EXPECT_EQ(r.answer, (r.target & 1) != 0);
      EXPECT_EQ(r.tag, ProbeTag::kFilterReject);
    }
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(tracer.TotalSampled(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
}

TEST(QueryTracerTest, PeriodFromEnv) {
  ASSERT_EQ(setenv("TREL_TRACE_SAMPLE", "100", 1), 0);
  EXPECT_EQ(QueryTracer::PeriodFromEnv(), 100u);
  ASSERT_EQ(setenv("TREL_TRACE_SAMPLE", "0", 1), 0);
  EXPECT_EQ(QueryTracer::PeriodFromEnv(), 0u);
  ASSERT_EQ(setenv("TREL_TRACE_SAMPLE", "garbage", 1), 0);
  EXPECT_EQ(QueryTracer::PeriodFromEnv(), 0u);
  ASSERT_EQ(unsetenv("TREL_TRACE_SAMPLE"), 0);
  EXPECT_EQ(QueryTracer::PeriodFromEnv(), 0u);
}

// ---------------------------------------------------------------------------
// SpanLog

TEST(SpanLogTest, AggregateSplitsByStrategy) {
  SpanLog log(/*capacity=*/8);
  PublishSpan optimal;
  optimal.epoch = 1;
  optimal.strategy = PublishStrategy::kOptimalFull;
  optimal.total_micros = 100;
  optimal.phase_micros[static_cast<int>(PublishPhase::kExport)] = 60;
  optimal.phase_micros[static_cast<int>(PublishPhase::kArenaBuild)] = 30;
  log.Record(optimal);
  PublishSpan delta;
  delta.epoch = 2;
  delta.strategy = PublishStrategy::kDelta;
  delta.total_micros = 5;
  delta.phase_micros[static_cast<int>(PublishPhase::kDrain)] = 3;
  log.Record(delta);
  PublishSpan chain;
  chain.epoch = 3;
  chain.strategy = PublishStrategy::kChainFull;
  chain.total_micros = 40;
  chain.phase_micros[static_cast<int>(PublishPhase::kRebuild)] = 25;
  log.Record(chain);

  const int kDelta = static_cast<int>(PublishStrategy::kDelta);
  const int kChain = static_cast<int>(PublishStrategy::kChainFull);
  const int kOptimal = static_cast<int>(PublishStrategy::kOptimalFull);
  const SpanLog::Aggregate agg = log.Read();
  EXPECT_EQ(agg.count[kDelta], 1);
  EXPECT_EQ(agg.count[kChain], 1);
  EXPECT_EQ(agg.count[kOptimal], 1);
  EXPECT_EQ(agg.total_micros[kDelta], 5);
  EXPECT_EQ(agg.total_micros[kChain], 40);
  EXPECT_EQ(agg.total_micros[kOptimal], 100);
  EXPECT_EQ(agg.phase_micros_total[kOptimal]
                                  [static_cast<int>(PublishPhase::kExport)],
            60);
  EXPECT_EQ(agg.phase_micros_total[kOptimal][static_cast<int>(
                PublishPhase::kArenaBuild)],
            30);
  EXPECT_EQ(
      agg.phase_micros_total[kDelta][static_cast<int>(PublishPhase::kDrain)],
      3);
  EXPECT_EQ(agg.phase_micros_total[kChain]
                                  [static_cast<int>(PublishPhase::kRebuild)],
            25);
  // 60us -> bucket 5 ([32, 64)); 3us -> bucket 1 ([2, 4));
  // 25us -> bucket 4 ([16, 32)).
  EXPECT_EQ(
      agg.phase_histogram[kOptimal][static_cast<int>(PublishPhase::kExport)][5],
      1);
  EXPECT_EQ(
      agg.phase_histogram[kDelta][static_cast<int>(PublishPhase::kDrain)][1],
      1);
  EXPECT_EQ(
      agg.phase_histogram[kChain][static_cast<int>(PublishPhase::kRebuild)][4],
      1);

  const std::vector<PublishSpan> recent = log.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].strategy, PublishStrategy::kOptimalFull);
  EXPECT_EQ(recent[1].strategy, PublishStrategy::kDelta);
  EXPECT_EQ(recent[2].strategy, PublishStrategy::kChainFull);
  EXPECT_EQ(recent[1].epoch, 2u);
}

TEST(SpanLogTest, RecentIsBounded) {
  SpanLog log(/*capacity=*/2);
  for (uint64_t e = 1; e <= 5; ++e) {
    PublishSpan span;
    span.epoch = e;
    log.Record(span);
  }
  const std::vector<PublishSpan> recent = log.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].epoch, 4u);
  EXPECT_EQ(recent[1].epoch, 5u);
  // Aggregates keep counting (default spans tag as optimal_full).
  EXPECT_EQ(
      log.Read().count[static_cast<int>(PublishStrategy::kOptimalFull)], 5);
}

TEST(SpanLogTest, PhaseNames) {
  EXPECT_STREQ(PublishPhaseName(PublishPhase::kDrain), "drain");
  EXPECT_STREQ(PublishPhaseName(PublishPhase::kExport), "export");
  EXPECT_STREQ(PublishPhaseName(PublishPhase::kArenaBuild), "arena_build");
  EXPECT_STREQ(PublishPhaseName(PublishPhase::kStats), "stats");
  EXPECT_STREQ(PublishPhaseName(PublishPhase::kSwap), "swap");
  EXPECT_STREQ(PublishPhaseName(PublishPhase::kRebuild), "rebuild");
}

TEST(SpanLogTest, StrategyNames) {
  EXPECT_STREQ(PublishStrategyName(PublishStrategy::kDelta), "delta");
  EXPECT_STREQ(PublishStrategyName(PublishStrategy::kChainFull), "chain_full");
  EXPECT_STREQ(PublishStrategyName(PublishStrategy::kOptimalFull),
               "optimal_full");
}

// ---------------------------------------------------------------------------
// SlowQueryLog

TEST(SlowQueryLogTest, BoundedRetentionAndTotal) {
  SlowQueryLog log(/*capacity=*/2);
  for (int i = 0; i < 3; ++i) {
    SlowQueryEntry entry;
    entry.source = i;
    entry.micros = 1000 + i;
    log.Record(entry);
  }
  const std::vector<SlowQueryEntry> recent = log.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].sequence, 1u);
  EXPECT_EQ(recent[0].source, 1);
  EXPECT_EQ(recent[1].sequence, 2u);
  EXPECT_EQ(recent[1].source, 2);
  EXPECT_EQ(log.TotalRecorded(), 3);
}

// ---------------------------------------------------------------------------
// Snapshot age (regression: ages must come from the monotonic clock and
// can never be negative)

TEST(SnapshotAgeTest, NeverNegative) {
  ClosureSnapshot snapshot;
  snapshot.created_at =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  EXPECT_EQ(snapshot.AgeSeconds(), 0.0);
}

TEST(SnapshotAgeTest, PublishedSnapshotAgeIsSane) {
  QueryService service;
  ASSERT_TRUE(service.Load(RandomDag(50, 2.0, 7)).ok());
  const ServiceMetrics::View view = service.Metrics();
  EXPECT_GE(view.snapshot_age_seconds, 0.0);
  EXPECT_LT(view.snapshot_age_seconds, 60.0);
}

// ---------------------------------------------------------------------------
// Exposition: agreement with ServiceMetrics::Read() and format shape

// Parses unlabeled and labeled sample lines into name{labels} -> value.
std::map<std::string, double> ParseSamples(const std::string& text) {
  std::map<std::string, double> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }
  return samples;
}

TEST(ExpositionTest, MetricszAgreesWithRead) {
  ServiceOptions options;
  options.num_workers = 2;
  QueryService service(options);
  ASSERT_TRUE(service.Load(RandomDag(300, 3.0, 11)).ok());
  for (NodeId u = 0; u < 50; ++u) (void)service.Reaches(u, (u * 7) % 300);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId u = 0; u < 300; ++u) pairs.emplace_back(u, 299 - u);
  (void)service.BatchReaches(pairs);

  const ServiceMetrics::View view = service.Metrics();
  const std::map<std::string, double> samples =
      ParseSamples(RenderMetricsz(service));

  EXPECT_EQ(samples.at("trel_reach_queries_total"),
            static_cast<double>(view.reach_queries));
  EXPECT_EQ(samples.at("trel_successor_queries_total"),
            static_cast<double>(view.successor_queries));
  EXPECT_EQ(samples.at("trel_batches_total"),
            static_cast<double>(view.batches));
  EXPECT_EQ(samples.at("trel_batch_micros_total"),
            static_cast<double>(view.batch_micros_total));
  EXPECT_EQ(samples.at("trel_publishes_total{kind=\"chain_full\"}"),
            static_cast<double>(view.publishes_chain_full));
  EXPECT_EQ(samples.at("trel_publishes_total{kind=\"optimal_full\"}"),
            static_cast<double>(view.publishes_optimal_full));
  EXPECT_EQ(samples.at("trel_publishes_total{kind=\"delta\"}"),
            static_cast<double>(view.publishes_delta));
  EXPECT_EQ(view.publishes_full,
            view.publishes_chain_full + view.publishes_optimal_full);
  EXPECT_EQ(samples.at("trel_delta_nodes_total"),
            static_cast<double>(view.delta_nodes_total));
  EXPECT_EQ(samples.at("trel_batch_kernel_outcomes_total{outcome=\"fast_"
                       "path\"}"),
            static_cast<double>(view.batch_fast_path));
  EXPECT_EQ(samples.at("trel_batch_kernel_outcomes_total{outcome=\"filter_"
                       "reject\"}"),
            static_cast<double>(view.batch_filter_rejects));
  EXPECT_EQ(samples.at("trel_batch_kernel_outcomes_total{outcome=\"extras_"
                       "search\"}"),
            static_cast<double>(view.batch_extras_searches));
  EXPECT_EQ(samples.at("trel_snapshot_epoch"),
            static_cast<double>(view.current_epoch));
  EXPECT_EQ(samples.at("trel_snapshot_nodes"),
            static_cast<double>(view.snapshot_num_nodes));
  EXPECT_EQ(samples.at("trel_snapshot_arena_bytes"),
            static_cast<double>(view.snapshot_arena_bytes));
  EXPECT_EQ(samples.at("trel_batch_latency_microseconds_count"),
            static_cast<double>(view.batches));
  EXPECT_EQ(samples.at("trel_batch_latency_microseconds_sum"),
            static_cast<double>(view.batch_micros_total));
  // All queries ran with tracing off.
  EXPECT_EQ(samples.at("trel_trace_sampled_total"), 0.0);
  EXPECT_EQ(samples.at("trel_trace_sample_period"), 0.0);
  EXPECT_EQ(samples.at("trel_slow_queries_total"), 0.0);
}

TEST(ExpositionTest, MetricszIsWellFormedPrometheus) {
  QueryService service;
  ASSERT_TRUE(service.Load(RandomDag(100, 2.0, 3)).ok());
  const std::string text = RenderMetricsz(service);

  std::set<std::string> typed_families;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition output";
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream header(line.substr(7));
      std::string family, type;
      header >> family >> type;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      // A family header may appear only once.
      EXPECT_TRUE(typed_families.insert(family).second) << family;
      continue;
    }
    if (line[0] == '#') continue;
    // Sample lines: `name[{labels}] value`, where name extends a declared
    // family (histogram samples append _bucket/_sum/_count).
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const size_t brace = name.find('{');
    if (brace != std::string::npos) name = name.substr(0, brace);
    bool declared = typed_families.count(name) > 0;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t pos = name.rfind(suffix);
      if (!declared && pos != std::string::npos &&
          pos + std::string(suffix).size() == name.size()) {
        declared = typed_families.count(name.substr(0, pos)) > 0;
      }
    }
    EXPECT_TRUE(declared) << "undeclared family for sample: " << line;
    // The value must parse as a number.
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
  // The headline families must all be present.
  for (const char* family :
       {"trel_reach_queries_total", "trel_batches_total",
        "trel_publishes_total", "trel_batch_latency_microseconds",
        "trel_publish_phase_microseconds", "trel_snapshot_epoch",
        "trel_simd_level", "trel_trace_sampled_total",
        "trel_slow_queries_total"}) {
    EXPECT_EQ(typed_families.count(family), 1u) << family;
  }
}

TEST(ExpositionTest, StatuszEmbedsMetricsLine) {
  QueryService service;
  ASSERT_TRUE(service.Load(RandomDag(80, 2.0, 5)).ok());
  const std::string statusz = RenderStatusz(service);
  EXPECT_NE(statusz.find("trel query service status"), std::string::npos);
  EXPECT_NE(statusz.find("epoch: 1"), std::string::npos);
  // The machine-checkable raw counter line (scraped by tools/obs_check.py).
  EXPECT_NE(statusz.find("metrics: epoch=1 "), std::string::npos);
  EXPECT_NE(statusz.find("publish_phases_avg_us{optimal_full}:"),
            std::string::npos);
  EXPECT_NE(statusz.find("publish_strategy: last="), std::string::npos);
}

TEST(ExpositionTest, TracezListsRecordsAndSlowQueries) {
  ServiceOptions options;
  options.trace_sample_period = 1;
  options.slow_batch_micros = 1;  // Every batch is "slow".
  QueryService service(options);
  ASSERT_TRUE(service.Load(RandomDag(60, 2.0, 9)).ok());
  (void)service.Reaches(0, 59);
  // Big enough that the batch always clears the 1us slow threshold.
  std::vector<std::pair<NodeId, NodeId>> pairs(50000, {0, 59});
  (void)service.BatchReaches(pairs);
  const std::string tracez = RenderTracez(service);
  EXPECT_NE(tracez.find("sample_period: 1"), std::string::npos);
  EXPECT_NE(tracez.find("seq=0"), std::string::npos);
  EXPECT_NE(tracez.find("tag="), std::string::npos);
  EXPECT_NE(tracez.find("batch n=50000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HttpServer

std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t got;
  while ((got = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(got));
  }
  ::close(fd);
  return response;
}

TEST(HttpServerTest, ServesRegisteredRoutes) {
  HttpServer server;
  server.Handle("/hello", []() { return std::string("hi there\n"); });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  const std::string ok = HttpGet(server.port(), "/hello");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("hi there"), std::string::npos);
  EXPECT_NE(ok.find("Content-Length:"), std::string::npos);

  // Query strings are stripped before routing.
  EXPECT_NE(HttpGet(server.port(), "/hello?x=1").find("200 OK"),
            std::string::npos);

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_NE(missing.find("/hello"), std::string::npos);  // Endpoint list.

  server.Stop();
  server.Stop();  // Idempotent.
}

// ---------------------------------------------------------------------------
// Service-level tracing

TEST(QueryServiceObsTest, SampledSinglesMatchGroundTruth) {
  Digraph graph = RandomDag(150, 2.5, 21);
  ReachabilityMatrix matrix(graph);
  ServiceOptions options;
  options.trace_sample_period = 1;  // Trace everything.
  QueryService service(options);
  ASSERT_TRUE(service.Load(graph).ok());

  Random rng(99);
  std::vector<std::pair<NodeId, NodeId>> queried;
  for (int i = 0; i < 64; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextUint64() % 150);
    const NodeId v = static_cast<NodeId>(rng.NextUint64() % 150);
    queried.emplace_back(u, v);
    EXPECT_EQ(service.Reaches(u, v), matrix.Reaches(u, v));
  }

  const std::vector<TraceRecord> records = service.tracer().Drain();
  ASSERT_EQ(records.size(), queried.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].source, queried[i].first);
    EXPECT_EQ(records[i].target, queried[i].second);
    EXPECT_EQ(records[i].answer,
              matrix.Reaches(queried[i].first, queried[i].second));
    EXPECT_EQ(records[i].epoch, 1u);
    EXPECT_FALSE(records[i].from_batch);
  }
}

TEST(QueryServiceObsTest, TraceTagsDistinguishDecisionPaths) {
  Digraph graph = RandomDag(800, 4.0, 13);
  ReachabilityMatrix matrix(graph);
  ServiceOptions options;
  options.trace_sample_period = 1;
  QueryService service(options);
  ASSERT_TRUE(service.Load(graph).ok());

  Random rng(5);
  for (int i = 0; i < 2000; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextUint64() % 800);
    const NodeId v = static_cast<NodeId>(rng.NextUint64() % 800);
    (void)service.Reaches(u, v);
  }
  const auto tags = service.tracer().TagCounts();
  // A random workload on a DAG of this size must exercise at least the
  // slot fast path and the coverage-filter reject; extras descents show
  // up whenever some node's interval set spills past the inline slot.
  EXPECT_GT(tags[static_cast<int>(ProbeTag::kSlot)], 0u);
  EXPECT_GT(tags[static_cast<int>(ProbeTag::kFilterReject)], 0u);

  // Overlay-decided queries carry their own tag: publish a delta, then
  // query FROM the changed node (gap numbering leaves the parent's label
  // untouched, so only the new leaf resolves through the overlay).
  auto leaf = service.AddLeafUnder(0);
  ASSERT_TRUE(leaf.ok());
  service.Publish();
  EXPECT_TRUE(service.Reaches(0, leaf.value()));
  EXPECT_FALSE(service.Reaches(leaf.value(), 0));
  const std::vector<TraceRecord> records = service.tracer().Drain();
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.back().source, leaf.value());
  EXPECT_EQ(records.back().tag, ProbeTag::kOverlay);
  EXPECT_EQ(records.back().epoch, 2u);
}

TEST(QueryServiceObsTest, SampledBatchEmitsBatchRecords) {
  ServiceOptions options;
  options.trace_sample_period = 1;
  QueryService service(options);
  ASSERT_TRUE(service.Load(RandomDag(200, 2.0, 31)).ok());
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 256; ++i) {
    pairs.emplace_back(static_cast<NodeId>(i % 200),
                       static_cast<NodeId>((i * 3) % 200));
  }
  (void)service.BatchReaches(pairs);
  const std::vector<TraceRecord> records = service.tracer().Drain();
  ASSERT_FALSE(records.empty());
  int batch_records = 0;
  for (const TraceRecord& r : records) {
    if (!r.from_batch) continue;
    ++batch_records;
    EXPECT_LT(r.source, 200);
    EXPECT_LT(r.target, 200);
  }
  // A sampled 256-query batch contributes a strided subset (up to 32).
  EXPECT_GT(batch_records, 0);
  EXPECT_LE(batch_records, 32);
}

TEST(QueryServiceObsTest, SlowBatchLandsInSlowLog) {
  ServiceOptions options;
  options.slow_batch_micros = 1;  // Everything qualifies.
  QueryService service(options);
  ASSERT_TRUE(service.Load(RandomDag(100, 2.0, 17)).ok());
  std::vector<std::pair<NodeId, NodeId>> pairs(500, {0, 99});
  (void)service.BatchReaches(pairs);
  const std::vector<SlowQueryEntry> recent = service.slow_log().Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_TRUE(recent[0].is_batch);
  EXPECT_EQ(recent[0].num_queries, 500);
  EXPECT_EQ(recent[0].source, 0);
  EXPECT_EQ(recent[0].target, 99);
  EXPECT_EQ(recent[0].epoch, 1u);
  EXPECT_EQ(service.slow_log().TotalRecorded(), 1);
}

TEST(QueryServiceObsTest, PublishSpansSplitFullVsDelta) {
  QueryService service;
  ASSERT_TRUE(service.Load(RandomDag(400, 3.0, 19)).ok());  // Full export.
  auto leaf = service.AddLeafUnder(0);
  ASSERT_TRUE(leaf.ok());
  service.Publish();  // Delta export.

  const SpanLog::Aggregate agg = service.span_log().Read();
  // Two full publishes (the constructor's empty bootstrap + the Load —
  // both optimal_full: a random DAG this size is chain-ineligible) and
  // one delta.
  ASSERT_EQ(agg.count[static_cast<int>(PublishStrategy::kOptimalFull)], 2);
  ASSERT_EQ(agg.count[static_cast<int>(PublishStrategy::kDelta)], 1);
  ASSERT_EQ(agg.count[static_cast<int>(PublishStrategy::kChainFull)], 0);

  const std::vector<PublishSpan> spans = service.span_log().Recent();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].strategy, PublishStrategy::kOptimalFull);
  EXPECT_EQ(spans[0].epoch, 0u);
  EXPECT_EQ(spans[1].strategy, PublishStrategy::kOptimalFull);
  EXPECT_EQ(spans[1].epoch, 1u);
  EXPECT_EQ(spans[2].strategy, PublishStrategy::kDelta);
  EXPECT_EQ(spans[2].epoch, 2u);
  for (const PublishSpan& span : spans) {
    int64_t phase_sum = 0;
    for (int p = 0; p < kNumPublishPhases; ++p) {
      EXPECT_GE(span.phase_micros[p], 0);
      phase_sum += span.phase_micros[p];
    }
    // Phases never account for more than the whole publish.
    EXPECT_LE(phase_sum, span.total_micros + 1);
  }
  // Delta publishes never build an arena, recompute stats, or relabel.
  EXPECT_EQ(
      spans[2].phase_micros[static_cast<int>(PublishPhase::kArenaBuild)], 0);
  EXPECT_EQ(spans[2].phase_micros[static_cast<int>(PublishPhase::kStats)], 0);
  EXPECT_EQ(spans[2].phase_micros[static_cast<int>(PublishPhase::kRebuild)],
            0);
}

// ---------------------------------------------------------------------------
// Small-batch bypass (satellite): batches at or below the bypass
// threshold skip the grouped pipeline entirely — confirmed through the
// tracer tags, which can only say kGroupReject when grouping ran.

TEST(SmallBatchBypassTest, SmallBatchesNeverGroupAndMatchGroundTruth) {
  Digraph graph = RandomDag(1200, 4.0, 23);
  ReachabilityMatrix matrix(graph);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());

  // 128 pairs sorted by source with long same-source runs — exactly the
  // shape the grouped path would pounce on above the threshold.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int s = 0; s < 4; ++s) {
    for (int t = 0; t < 32; ++t) {
      pairs.emplace_back(static_cast<NodeId>(s * 17),
                         static_cast<NodeId>((t * 37) % 1200));
    }
  }
  ASSERT_EQ(pairs.size(), 128u);

  std::vector<uint8_t> out(pairs.size(), 0);
  std::vector<uint8_t> tags(pairs.size(), 0);
  BatchKernelStats stats;
  closure->BatchReachesTraced(pairs.data(),
                              static_cast<int64_t>(pairs.size()), out.data(),
                              &stats, tags.data());

  EXPECT_EQ(stats.group_rejects, 0);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(out[i] != 0, matrix.Reaches(pairs[i].first, pairs[i].second))
        << "pair " << i;
    EXPECT_NE(tags[i], static_cast<uint8_t>(ProbeTag::kGroupReject));
    // The bypass shares the single-query control flow, so its tags must
    // agree with the traced scalar path.
    ProbeTrace trace;
    (void)closure->ReachesTraced(pairs[i].first, pairs[i].second, &trace);
    EXPECT_EQ(tags[i], static_cast<uint8_t>(trace.tag)) << "pair " << i;
  }
}

TEST(SmallBatchBypassTest, LargeBatchesStillGroup) {
  // Same run-heavy shape, scaled past the bypass threshold: the grouped
  // pipeline must engage (visible as group-rejected queries for
  // definitely-unreachable same-source runs).
  Digraph graph = RandomDag(1200, 4.0, 23);
  ReachabilityMatrix matrix(graph);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());

  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int s = 0; s < 16; ++s) {
    for (int t = 0; t < 64; ++t) {
      pairs.emplace_back(static_cast<NodeId>(1199 - s),
                         static_cast<NodeId>(t));
    }
  }
  std::vector<uint8_t> out(pairs.size(), 0);
  std::vector<uint8_t> tags(pairs.size(), 0);
  BatchKernelStats stats;
  closure->BatchReachesTraced(pairs.data(),
                              static_cast<int64_t>(pairs.size()), out.data(),
                              &stats, tags.data());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(out[i] != 0, matrix.Reaches(pairs[i].first, pairs[i].second))
        << "pair " << i;
  }
}

}  // namespace
}  // namespace trel
