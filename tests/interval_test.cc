#include "core/interval.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace trel {
namespace {

TEST(IntervalTest, ContainsIsInclusive) {
  const Interval interval{3, 7};
  EXPECT_FALSE(interval.Contains(2));
  EXPECT_TRUE(interval.Contains(3));
  EXPECT_TRUE(interval.Contains(5));
  EXPECT_TRUE(interval.Contains(7));
  EXPECT_FALSE(interval.Contains(8));
}

TEST(IntervalTest, SubsumesMatchesPaperDefinition) {
  // [i1,i2] subsumes [j1,j2] iff i1 <= j1 and i2 >= j2.
  EXPECT_TRUE((Interval{1, 10}.Subsumes(Interval{2, 9})));
  EXPECT_TRUE((Interval{1, 10}.Subsumes(Interval{1, 10})));
  EXPECT_FALSE((Interval{2, 9}.Subsumes(Interval{1, 10})));
  EXPECT_FALSE((Interval{1, 5}.Subsumes(Interval{3, 7})));
}

TEST(IntervalSetTest, InsertDiscardsSubsumedNewInterval) {
  IntervalSet set;
  EXPECT_TRUE(set.Insert({1, 10}));
  EXPECT_FALSE(set.Insert({3, 7}));
  EXPECT_EQ(set.size(), 1);
}

TEST(IntervalSetTest, InsertRemovesSubsumedMembers) {
  IntervalSet set;
  EXPECT_TRUE(set.Insert({3, 4}));
  EXPECT_TRUE(set.Insert({6, 7}));
  EXPECT_TRUE(set.Insert({12, 13}));
  EXPECT_TRUE(set.Insert({2, 8}));  // Swallows the first two.
  EXPECT_EQ(set.size(), 2);
  EXPECT_EQ(set.intervals()[0], (Interval{2, 8}));
  EXPECT_EQ(set.intervals()[1], (Interval{12, 13}));
}

TEST(IntervalSetTest, KeepsOverlappingNonSubsumedIntervals) {
  IntervalSet set;
  EXPECT_TRUE(set.Insert({1, 5}));
  EXPECT_TRUE(set.Insert({3, 8}));
  EXPECT_EQ(set.size(), 2);
  EXPECT_TRUE(set.Contains(2));
  EXPECT_TRUE(set.Contains(6));
}

TEST(IntervalSetTest, ContainsBinarySearches) {
  IntervalSet set;
  set.Insert({1, 2});
  set.Insert({5, 6});
  set.Insert({10, 20});
  EXPECT_TRUE(set.Contains(1));
  EXPECT_TRUE(set.Contains(6));
  EXPECT_TRUE(set.Contains(15));
  EXPECT_FALSE(set.Contains(3));
  EXPECT_FALSE(set.Contains(7));
  EXPECT_FALSE(set.Contains(21));
  EXPECT_FALSE(set.Contains(0));
}

TEST(IntervalSetTest, InsertEqualLoKeepsWider) {
  IntervalSet set;
  set.Insert({4, 6});
  EXPECT_TRUE(set.Insert({4, 9}));  // Same lo, wider: replaces.
  EXPECT_EQ(set.size(), 1);
  EXPECT_EQ(set.intervals()[0], (Interval{4, 9}));
  EXPECT_FALSE(set.Insert({4, 7}));  // Same lo, narrower: subsumed.
  EXPECT_EQ(set.size(), 1);
}

TEST(IntervalSetTest, MergeAdjacentCoalescesTouchingIntervals) {
  IntervalSet set;
  set.Insert({1, 3});
  set.Insert({4, 6});    // Adjacent to [1,3].
  set.Insert({9, 12});   // Not adjacent.
  EXPECT_EQ(set.MergeAdjacent(), 1);
  ASSERT_EQ(set.size(), 2);
  EXPECT_EQ(set.intervals()[0], (Interval{1, 6}));
  EXPECT_EQ(set.intervals()[1], (Interval{9, 12}));
}

TEST(IntervalSetTest, MergeAdjacentCoalescesOverlap) {
  IntervalSet set;
  set.Insert({1, 5});
  set.Insert({3, 8});
  EXPECT_EQ(set.MergeAdjacent(), 1);
  ASSERT_EQ(set.size(), 1);
  EXPECT_EQ(set.intervals()[0], (Interval{1, 8}));
}

TEST(IntervalSetTest, SubsumesIntervalQuery) {
  IntervalSet set;
  set.Insert({1, 5});
  set.Insert({10, 20});
  EXPECT_TRUE(set.SubsumesInterval({2, 4}));
  EXPECT_TRUE(set.SubsumesInterval({10, 20}));
  EXPECT_FALSE(set.SubsumesInterval({4, 11}));
  EXPECT_FALSE(set.SubsumesInterval({0, 3}));
}

// Property: after any insertion sequence, the set is a sorted antichain
// and answers Contains exactly like the naive union of all inserted
// intervals.
TEST(IntervalSetTest, RandomizedInsertionMatchesNaiveUnion) {
  Random rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    IntervalSet set;
    std::vector<Interval> inserted;
    for (int k = 0; k < 40; ++k) {
      const Label lo = static_cast<Label>(rng.Uniform(100));
      const Label hi = lo + static_cast<Label>(rng.Uniform(20));
      set.Insert({lo, hi});
      inserted.push_back({lo, hi});
    }
    // Antichain, sorted by lo, hi strictly increasing.
    const auto& members = set.intervals();
    for (size_t i = 1; i < members.size(); ++i) {
      EXPECT_LT(members[i - 1].lo, members[i].lo);
      EXPECT_LT(members[i - 1].hi, members[i].hi);
    }
    for (Label x = -1; x <= 125; ++x) {
      bool naive = false;
      for (const Interval& interval : inserted) {
        naive |= interval.Contains(x);
      }
      EXPECT_EQ(set.Contains(x), naive) << "x=" << x << " trial=" << trial;
    }
  }
}

}  // namespace
}  // namespace trel
