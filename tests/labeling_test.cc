#include "core/labeling.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "tests/test_util.h"

namespace trel {
namespace {

using testing_util::GraphFromArcs;

NodeLabels MustBuild(const Digraph& graph, const LabelingOptions& options = {},
                     TreeCoverStrategy strategy = TreeCoverStrategy::kOptimal) {
  auto cover = ComputeTreeCover(graph, strategy);
  TREL_CHECK(cover.ok());
  auto labels = BuildLabels(graph, cover.value(), options);
  TREL_CHECK(labels.ok()) << labels.status().ToString();
  return std::move(labels).value();
}

TEST(LabelingTest, TreeGetsOneIntervalPerNode) {
  // Section 3.1: for a tree, O(n) storage — exactly one interval per node.
  Digraph tree = RandomTree(60, 3);
  NodeLabels labels = MustBuild(tree);
  for (NodeId v = 0; v < tree.NumNodes(); ++v) {
    EXPECT_EQ(labels.intervals[v].size(), 1) << "node " << v;
  }
  EXPECT_EQ(labels.TotalIntervals(), 60);
  EXPECT_EQ(labels.StorageUnits(), 120);
}

TEST(LabelingTest, TreeIntervalIsLowestDescendantToOwnPostorder) {
  //        0
  //      / | \ .
  //     1  2  3
  //        |
  //        4
  Digraph tree = GraphFromArcs(5, {{0, 1}, {0, 2}, {0, 3}, {2, 4}});
  NodeLabels labels = MustBuild(tree);
  // Postorder with gap 1: children in insertion order: 1, (4, 2), 3, 0.
  EXPECT_EQ(labels.postorder[1], 1);
  EXPECT_EQ(labels.postorder[4], 2);
  EXPECT_EQ(labels.postorder[2], 3);
  EXPECT_EQ(labels.postorder[3], 4);
  EXPECT_EQ(labels.postorder[0], 5);
  // Lemma 1 intervals.
  EXPECT_EQ(labels.tree_interval[1], (Interval{1, 1}));
  EXPECT_EQ(labels.tree_interval[2], (Interval{2, 3}));
  EXPECT_EQ(labels.tree_interval[0], (Interval{1, 5}));
}

TEST(LabelingTest, Lemma1PathIffIntervalContains) {
  Digraph tree = RandomTree(40, 9);
  NodeLabels labels = MustBuild(tree);
  ReachabilityMatrix matrix(tree);
  for (NodeId a = 0; a < tree.NumNodes(); ++a) {
    for (NodeId b = 0; b < tree.NumNodes(); ++b) {
      EXPECT_EQ(labels.tree_interval[a].Contains(labels.postorder[b]),
                matrix.Reaches(a, b))
          << a << "->" << b;
    }
  }
}

TEST(LabelingTest, DagSubsumptionDiscardsInheritedTreeIntervals) {
  // Diamond 0->{1,2}->3: whichever of 1,2 is not 3's tree parent inherits
  // 3's tree interval as its only non-tree interval; node 0 subsumes
  // everything into its own tree interval.
  Digraph graph = GraphFromArcs(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  NodeLabels labels = MustBuild(graph);
  EXPECT_EQ(labels.intervals[0].size(), 1);
  EXPECT_EQ(labels.intervals[3].size(), 1);
  EXPECT_EQ(labels.intervals[1].size() + labels.intervals[2].size(), 3);
}

TEST(LabelingTest, GapSpacingMultipliesNumbers) {
  Digraph tree = GraphFromArcs(3, {{0, 1}, {0, 2}});
  LabelingOptions options;
  options.gap = 10;
  NodeLabels labels = MustBuild(tree, options);
  EXPECT_EQ(labels.postorder[1], 10);
  EXPECT_EQ(labels.postorder[2], 20);
  EXPECT_EQ(labels.postorder[0], 30);
  EXPECT_EQ(labels.tree_interval[0], (Interval{1, 30}));
  EXPECT_EQ(labels.tree_interval[2], (Interval{11, 20}));
}

TEST(LabelingTest, RejectsBadOptions) {
  Digraph graph = GraphFromArcs(2, {{0, 1}});
  auto cover = ComputeTreeCover(graph, TreeCoverStrategy::kOptimal);
  ASSERT_TRUE(cover.ok());
  LabelingOptions bad_gap;
  bad_gap.gap = 0;
  EXPECT_FALSE(BuildLabels(graph, cover.value(), bad_gap).ok());
  LabelingOptions bad_reserve;
  bad_reserve.gap = 4;
  bad_reserve.reserve = 4;
  EXPECT_FALSE(BuildLabels(graph, cover.value(), bad_reserve).ok());
}

TEST(LabelingTest, ReservePadsPropagatedCopiesOnly) {
  // 0 -> 1 (tree), 2 -> 1 (non-tree): 2 inherits 1's padded interval.
  Digraph graph = GraphFromArcs(3, {{0, 1}, {2, 1}});
  LabelingOptions options;
  options.gap = 10;
  options.reserve = 5;
  auto cover = ComputeTreeCover(graph, TreeCoverStrategy::kFirstParent);
  ASSERT_TRUE(cover.ok());
  auto labels = BuildLabels(graph, cover.value(), options);
  ASSERT_TRUE(labels.ok());
  const Label p1 = labels->postorder[1];
  // 1's own interval is unpadded.
  EXPECT_EQ(labels->tree_interval[1].hi, p1);
  ASSERT_EQ(labels->intervals[1].size(), 1);
  EXPECT_EQ(labels->intervals[1].intervals()[0].hi, p1);
  // 2 holds the padded copy [lo, p1 + reserve] (plus its own interval).
  bool found_padded = false;
  for (const Interval& interval : labels->intervals[2].intervals()) {
    if (interval.lo == labels->tree_interval[1].lo) {
      EXPECT_EQ(interval.hi, p1 + 5);
      found_padded = true;
    }
  }
  EXPECT_TRUE(found_padded);
}

TEST(LabelingTest, MergeAdjacentOnlyReducesCount) {
  Digraph graph = RandomDag(120, 2.0, 13);
  NodeLabels plain = MustBuild(graph);
  LabelingOptions merged_options;
  merged_options.merge_adjacent = true;
  NodeLabels merged = MustBuild(graph, merged_options);
  EXPECT_LE(merged.TotalIntervals(), plain.TotalIntervals());
}

TEST(LabelingTest, BipartiteWorstCaseIsQuadratic) {
  // Figure 3.6: m top nodes fanning into m bottom nodes costs ~m^2
  // intervals; the Figure 3.7 intermediary collapses it to O(n).
  const NodeId m = 12;
  NodeLabels dense = MustBuild(CompleteBipartite(m, m));
  NodeLabels routed = MustBuild(BipartiteWithIntermediary(m, m));
  // Dense: one top node adopts all bottoms into the tree (1 interval);
  // each other top node holds its own interval plus m bottom intervals:
  // m + 1 + (m-1)(m+1) = m^2 + m.
  EXPECT_EQ(dense.TotalIntervals(), m * m + m);
  // Routed: bottoms m, middle 1, adopting top 1, and 2 for each other top
  // node = 3m.
  EXPECT_EQ(routed.TotalIntervals(), 3 * m);
}

}  // namespace
}  // namespace trel
