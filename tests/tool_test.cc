// End-to-end test of the trel_tool binary: generate -> stats -> compress
// -> query -> dot -> alpha, via std::system.  The binary path is injected
// by CMake as TREL_TOOL_PATH.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace trel {
namespace {

std::string ToolPath() { return TREL_TOOL_PATH; }

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Runs a command, returns its exit code, captures stdout into `output`.
// The capture file is per-process: ctest runs each ToolTest case as its
// own process, concurrently under -j, and a shared name races.
int RunTool(const std::string& command, std::string& output) {
  const std::string out_file =
      TempPath("tool_out." + std::to_string(getpid()) + ".txt");
  const int code = std::system((command + " > " + out_file + " 2>&1").c_str());
  std::ifstream in(out_file);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  output = buffer.str();
  return WEXITSTATUS(code);
}

TEST(ToolTest, GenerateStatsCompressQueryPipeline) {
  const std::string graph_path = TempPath("tool_graph.el");
  const std::string db_path = TempPath("tool_closure.db");
  std::string output;

  // RunTool redirects stdout itself, so capture the edge list from the
  // captured output and write it to the graph file.
  ASSERT_EQ(RunTool(ToolPath() + " generate random 200 2 7", output), 0);
  {
    std::ofstream out(graph_path);
    out << output;
  }

  ASSERT_EQ(RunTool(ToolPath() + " stats " + graph_path, output), 0);
  EXPECT_NE(output.find("nodes:                200"), std::string::npos)
      << output;
  EXPECT_NE(output.find("compressed intervals:"), std::string::npos);

  ASSERT_EQ(RunTool(ToolPath() + " compress " + graph_path + " " + db_path,
                output),
            0);
  EXPECT_NE(output.find("wrote"), std::string::npos);

  // Query exit code: 0 = reaches, 1 = does not.  Node 0 surely reaches
  // itself... use (0,0)? The tool treats u==v as reaches.
  ASSERT_EQ(RunTool(ToolPath() + " query " + db_path + " 0 0", output), 0);
  EXPECT_NE(output.find("reaches"), std::string::npos);
}

TEST(ToolTest, DotOutputContainsArcs) {
  const std::string graph_path = TempPath("tool_dot.el");
  std::string output;
  {
    std::ofstream out(graph_path);
    out << "# nodes 3\n0 1\n1 2\n";
  }
  ASSERT_EQ(RunTool(ToolPath() + " dot " + graph_path, output), 0);
  EXPECT_NE(output.find("digraph G {"), std::string::npos);
  EXPECT_NE(output.find("n0 -> n1"), std::string::npos);
}

TEST(ToolTest, AlphaOverCsv) {
  const std::string csv_path = TempPath("tool_parts.csv");
  {
    std::ofstream out(csv_path);
    out << "assembly,part\nplane,wing\nwing,spar\n";
  }
  std::string output;
  EXPECT_EQ(RunTool(ToolPath() + " alpha " + csv_path +
                    " assembly part plane spar",
                output),
            0);
  EXPECT_NE(output.find("plane reaches spar"), std::string::npos);
  EXPECT_EQ(RunTool(ToolPath() + " alpha " + csv_path +
                    " assembly part spar plane",
                output),
            1);

  EXPECT_EQ(RunTool(ToolPath() + " successors " + csv_path +
                    " assembly part plane",
                output),
            0);
  EXPECT_NE(output.find("wing"), std::string::npos);
  EXPECT_NE(output.find("spar"), std::string::npos);
}

TEST(ToolTest, UsageAndErrorPaths) {
  std::string output;
  EXPECT_EQ(RunTool(ToolPath(), output), 2);
  EXPECT_NE(output.find("usage:"), std::string::npos);
  EXPECT_EQ(RunTool(ToolPath() + " stats /nonexistent/file.el", output), 1);
  EXPECT_EQ(RunTool(ToolPath() + " frobnicate", output), 2);
}

}  // namespace
}  // namespace trel
