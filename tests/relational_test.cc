#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "relational/alpha.h"
#include "relational/operators.h"
#include "relational/relation.h"

namespace trel {
namespace {

Relation EdgeRelation(
    std::initializer_list<std::pair<const char*, const char*>> arcs) {
  Relation r({{"src", ColumnType::kString}, {"dst", ColumnType::kString}});
  for (const auto& [a, b] : arcs) {
    TREL_CHECK(r.Append({std::string(a), std::string(b)}).ok());
  }
  return r;
}

TEST(RelationTest, AppendEnforcesSchema) {
  Relation r({{"id", ColumnType::kInt64}, {"name", ColumnType::kString}});
  EXPECT_TRUE(r.Append({int64_t{1}, std::string("a")}).ok());
  EXPECT_FALSE(r.Append({std::string("a"), int64_t{1}}).ok());  // Types.
  EXPECT_FALSE(r.Append({int64_t{1}}).ok());                    // Arity.
  EXPECT_EQ(r.NumTuples(), 1);
}

TEST(RelationTest, ColumnIndexLookup) {
  Relation r({{"x", ColumnType::kInt64}, {"y", ColumnType::kInt64}});
  EXPECT_EQ(r.ColumnIndex("y").value(), 1);
  EXPECT_FALSE(r.ColumnIndex("z").ok());
}

TEST(OperatorsTest, SelectAndProject) {
  Relation r({{"id", ColumnType::kInt64}, {"name", ColumnType::kString}});
  ASSERT_TRUE(r.Append({int64_t{1}, std::string("a")}).ok());
  ASSERT_TRUE(r.Append({int64_t{2}, std::string("b")}).ok());
  ASSERT_TRUE(r.Append({int64_t{2}, std::string("c")}).ok());

  auto selected = SelectEq(r, "id", Value{int64_t{2}});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->NumTuples(), 2);

  auto projected = Project(selected.value(), {"name"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->NumColumns(), 1);
  EXPECT_EQ(projected->tuples()[0][0], Value{std::string("b")});
  EXPECT_FALSE(Project(r, {"missing"}).ok());
}

TEST(OperatorsTest, JoinMatchesOnEquality) {
  Relation left({{"part", ColumnType::kString},
                 {"qty", ColumnType::kInt64}});
  ASSERT_TRUE(left.Append({std::string("bolt"), int64_t{4}}).ok());
  ASSERT_TRUE(left.Append({std::string("nut"), int64_t{8}}).ok());
  Relation right({{"part", ColumnType::kString},
                  {"grams", ColumnType::kInt64}});
  ASSERT_TRUE(right.Append({std::string("bolt"), int64_t{10}}).ok());

  auto joined = Join(left, "part", right, "part");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumTuples(), 1);
  EXPECT_EQ(joined->NumColumns(), 4);
  // Clashing right-side column renamed.
  EXPECT_EQ(joined->schema()[2].name, "right.part");
}

TEST(OperatorsTest, UnionAndDistinct) {
  Relation a({{"x", ColumnType::kInt64}});
  ASSERT_TRUE(a.Append({int64_t{1}}).ok());
  Relation b({{"x", ColumnType::kInt64}});
  ASSERT_TRUE(b.Append({int64_t{1}}).ok());
  ASSERT_TRUE(b.Append({int64_t{2}}).ok());

  auto both = Union(a, b);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->NumTuples(), 3);
  EXPECT_EQ(Distinct(both.value()).NumTuples(), 2);

  Relation mismatched({{"y", ColumnType::kInt64}});
  EXPECT_FALSE(Union(a, mismatched).ok());
}

TEST(AlphaTest, ClosureOfAcyclicRelation) {
  Relation base = EdgeRelation({{"a", "b"}, {"b", "c"}, {"a", "d"}});
  auto alpha = AlphaOperator::Build(base, "src", "dst");
  ASSERT_TRUE(alpha.ok());
  EXPECT_TRUE(alpha->Reaches(std::string("a"), std::string("c")));
  EXPECT_FALSE(alpha->Reaches(std::string("c"), std::string("a")));
  EXPECT_FALSE(alpha->Reaches(std::string("a"), std::string("a")));
  EXPECT_FALSE(alpha->Reaches(std::string("a"), std::string("zzz")));
  EXPECT_EQ(alpha->NumClosurePairs(), 4);  // ab, ac, ad, bc.
  EXPECT_EQ(alpha->Materialize().NumTuples(), 4);
}

TEST(AlphaTest, CyclicRelationCollapsesScc) {
  Relation base =
      EdgeRelation({{"a", "b"}, {"b", "a"}, {"b", "c"}});
  auto alpha = AlphaOperator::Build(base, "src", "dst");
  ASSERT_TRUE(alpha.ok());
  EXPECT_TRUE(alpha->Reaches(std::string("a"), std::string("a")));  // Cycle.
  EXPECT_TRUE(alpha->Reaches(std::string("b"), std::string("a")));
  EXPECT_TRUE(alpha->Reaches(std::string("a"), std::string("c")));
  EXPECT_FALSE(alpha->Reaches(std::string("c"), std::string("c")));
  // Pairs: aa, ab, ac, ba, bb, bc.
  EXPECT_EQ(alpha->NumClosurePairs(), 6);
}

TEST(AlphaTest, SelfLoopTupleMakesValueReachItself) {
  Relation base = EdgeRelation({{"a", "a"}, {"a", "b"}});
  auto alpha = AlphaOperator::Build(base, "src", "dst");
  ASSERT_TRUE(alpha.ok());
  EXPECT_TRUE(alpha->Reaches(std::string("a"), std::string("a")));
  EXPECT_FALSE(alpha->Reaches(std::string("b"), std::string("b")));
  Relation successors = alpha->SuccessorsOf(std::string("a"), "part");
  EXPECT_EQ(successors.NumTuples(), 2);  // a itself and b.
  EXPECT_EQ(successors.schema()[0].name, "part");
}

TEST(AlphaTest, IntegerDomain) {
  Relation base({{"from", ColumnType::kInt64}, {"to", ColumnType::kInt64}});
  ASSERT_TRUE(base.Append({int64_t{10}, int64_t{20}}).ok());
  ASSERT_TRUE(base.Append({int64_t{20}, int64_t{30}}).ok());
  auto alpha = AlphaOperator::Build(base, "from", "to");
  ASSERT_TRUE(alpha.ok());
  EXPECT_TRUE(alpha->Reaches(int64_t{10}, int64_t{30}));
  EXPECT_FALSE(alpha->Reaches(int64_t{30}, int64_t{10}));
}

TEST(AlphaTest, RejectsMixedTypeColumns) {
  Relation base({{"src", ColumnType::kString}, {"dst", ColumnType::kInt64}});
  EXPECT_FALSE(AlphaOperator::Build(base, "src", "dst").ok());
  Relation ok_base = EdgeRelation({});
  EXPECT_FALSE(AlphaOperator::Build(ok_base, "src", "missing").ok());
}

TEST(AlphaTest, CompressionBeatsTheMaterializedViewOnDenseGraphs) {
  // A long chain with shortcut arcs: quadratic closure, linear intervals.
  Relation base({{"s", ColumnType::kInt64}, {"d", ColumnType::kInt64}});
  const int64_t n = 60;
  for (int64_t i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(base.Append({i, i + 1}).ok());
    if (i + 2 < n) {
      ASSERT_TRUE(base.Append({i, i + 2}).ok());
    }
  }
  auto alpha = AlphaOperator::Build(base, "s", "d");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(alpha->NumClosurePairs(), n * (n - 1) / 2);
  EXPECT_LT(alpha->StorageUnits(), alpha->NumClosurePairs() / 10);
}

}  // namespace
}  // namespace trel
