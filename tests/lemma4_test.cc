// Lemma 4 of the paper characterizes the compressed closure's storage
// exactly: the number of non-tree intervals at node i equals |N_i|, where
// N_i is the set of nodes j such that
//   (i)  some path from i to j uses at least one non-tree arc, and
//   (ii) no other node k with property (i) reaches j through tree arcs
//        alone.
// One refinement the paper's wording leaves implicit: a candidate j lying
// in i's *own* subtree is subsumed by i's tree interval and stored for
// free, so it must be excluded from N_i as well (think of a non-tree arc
// that shortcuts back into the subtree below i).
// This test recomputes N_i from first principles (graph search over the
// tree cover) and compares against the interval sets the labeler
// produced — a structural check of the whole propagation pipeline.

#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/compressed_closure.h"
#include "graph/families.h"
#include "graph/generators.h"

namespace trel {
namespace {

// reachable_with_nontree[v]: v is reachable from `source` along a path
// using >= 1 non-tree arc.  States: (node, crossed a non-tree arc yet).
std::vector<bool> ReachableViaNonTreeArc(const Digraph& graph,
                                         const TreeCover& cover,
                                         NodeId source) {
  const NodeId n = graph.NumNodes();
  std::vector<std::vector<bool>> visited(2, std::vector<bool>(n, false));
  std::vector<std::pair<NodeId, int>> stack = {{source, 0}};
  visited[0][source] = true;
  while (!stack.empty()) {
    const auto [v, crossed] = stack.back();
    stack.pop_back();
    for (NodeId w : graph.OutNeighbors(v)) {
      const bool is_tree_arc = cover.parent[w] == v;
      const int next_state = (crossed || !is_tree_arc) ? 1 : 0;
      if (!visited[next_state][w]) {
        visited[next_state][w] = true;
        stack.emplace_back(w, next_state);
      }
    }
  }
  return visited[1];
}

// tree_reaches[k][j]: j is in k's subtree of the cover.
std::vector<std::vector<bool>> TreeReachability(const TreeCover& cover) {
  const NodeId n = cover.NumNodes();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (NodeId j = 0; j < n; ++j) {
    for (NodeId k = j; k != kNoNode; k = cover.parent[k]) {
      reach[k][j] = true;
    }
  }
  return reach;
}

void CheckLemma4(const Digraph& graph) {
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  const TreeCover& cover = closure->tree_cover();
  const auto tree_reach = TreeReachability(cover);

  for (NodeId i = 0; i < graph.NumNodes(); ++i) {
    const std::vector<bool> candidates =
        ReachableViaNonTreeArc(graph, cover, i);
    // N_i: candidates not tree-dominated by another candidate and not in
    // i's own subtree (self-subsumption, see header comment).
    int64_t n_i = 0;
    for (NodeId j = 0; j < graph.NumNodes(); ++j) {
      if (!candidates[j] || tree_reach[i][j]) continue;
      bool dominated = false;
      for (NodeId k = 0; k < graph.NumNodes(); ++k) {
        if (k != j && candidates[k] && tree_reach[k][j]) {
          dominated = true;
          break;
        }
      }
      if (!dominated) ++n_i;
    }
    const int64_t non_tree_intervals = closure->IntervalsOf(i).size() - 1;
    ASSERT_EQ(non_tree_intervals, n_i) << "node " << i;
  }
}

TEST(Lemma4Test, HoldsOnRandomDags) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    CheckLemma4(RandomDag(40, 2.0, 600 + seed));
  }
  for (uint64_t seed = 0; seed < 3; ++seed) {
    CheckLemma4(RandomDag(30, 5.0, 610 + seed));
  }
}

TEST(Lemma4Test, HoldsOnStructuredFamilies) {
  CheckLemma4(GridDag(5, 6));
  CheckLemma4(CompleteBipartite(7, 7));
  CheckLemma4(GenealogyDag(40, 3, 9));
  CheckLemma4(SeriesParallelDag(40, 11));
}

TEST(Lemma4Test, TreesHaveEmptyNonTreeSets) {
  CheckLemma4(RandomTree(50, 12));
}

}  // namespace
}  // namespace trel
