// Verifies the paper's two theorems empirically:
//   Theorem 1: Alg1's tree cover minimizes the total interval count over
//              all tree covers (exhaustively checked on small DAGs).
//   Theorem 2: the tree-cover compression never needs more storage than
//              the best chain-cover compression.

#include <cstdint>
#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/chain_cover.h"
#include "common/check.h"
#include "core/labeling.h"
#include "core/tree_cover.h"
#include "graph/generators.h"

namespace trel {
namespace {

int64_t IntervalCount(const Digraph& graph, const TreeCover& cover) {
  auto labels = BuildLabels(graph, cover, LabelingOptions{});
  TREL_CHECK(labels.ok());
  return labels->TotalIntervals();
}

// Enumerates every spanning tree cover (each node picks one immediate
// predecessor or none if it has none) and returns the minimum interval
// count.
int64_t BruteForceBestCover(const Digraph& graph) {
  const NodeId n = graph.NumNodes();
  std::vector<NodeId> parent(n, kNoNode);
  int64_t best = std::numeric_limits<int64_t>::max();

  // Odometer over predecessor choices.
  std::vector<int> choice(n, 0);
  while (true) {
    for (NodeId v = 0; v < n; ++v) {
      const auto& preds = graph.InNeighbors(v);
      parent[v] = preds.empty() ? kNoNode : preds[choice[v]];
    }
    auto cover = TreeCoverFromParents(graph, parent);
    TREL_CHECK(cover.ok());
    best = std::min(best, IntervalCount(graph, cover.value()));

    // Increment the odometer.
    NodeId v = 0;
    for (; v < n; ++v) {
      const int limit =
          std::max<int>(1, static_cast<int>(graph.InNeighbors(v).size()));
      if (++choice[v] < limit) break;
      choice[v] = 0;
    }
    if (v == n) break;
  }
  return best;
}

int64_t Alg1Count(const Digraph& graph) {
  auto cover = ComputeTreeCover(graph, TreeCoverStrategy::kOptimal);
  TREL_CHECK(cover.ok());
  return IntervalCount(graph, cover.value());
}

TEST(Theorem1Test, Alg1OptimalOnAllFourNodeDags) {
  int64_t graphs = EnumerateDagsOverOrder(4, [](const Digraph& graph) {
    ASSERT_EQ(Alg1Count(graph), BruteForceBestCover(graph));
  });
  EXPECT_EQ(graphs, 64);
}

TEST(Theorem1Test, Alg1OptimalOnAllFiveNodeDags) {
  int64_t graphs = EnumerateDagsOverOrder(5, [](const Digraph& graph) {
    ASSERT_EQ(Alg1Count(graph), BruteForceBestCover(graph));
  });
  EXPECT_EQ(graphs, 1024);
}

TEST(Theorem1Test, Alg1OptimalOnRandomSixNodeDags) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Digraph graph = SampleDagOverOrder(6, seed);
    ASSERT_EQ(Alg1Count(graph), BruteForceBestCover(graph)) << "seed " << seed;
  }
}

TEST(Theorem1Test, Alg1NeverWorseThanHeuristicsOnRandomDags) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Digraph graph = RandomDag(70, 2.5, seed);
    const int64_t optimal = Alg1Count(graph);
    for (TreeCoverStrategy strategy :
         {TreeCoverStrategy::kDfs, TreeCoverStrategy::kFirstParent,
          TreeCoverStrategy::kRandom}) {
      auto cover = ComputeTreeCover(graph, strategy, seed);
      ASSERT_TRUE(cover.ok());
      EXPECT_LE(optimal, IntervalCount(graph, cover.value()))
          << TreeCoverStrategyName(strategy) << " seed " << seed;
    }
  }
}

TEST(Theorem2Test, TreeCoverBeatsMinimumChainCoverOnRandomDags) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Digraph graph = RandomDag(50, 2.0, seed);
    const int64_t tree_storage = Alg1Count(graph);
    auto chains = ChainCover::Build(graph, ChainCover::Method::kMinimum);
    ASSERT_TRUE(chains.ok());
    EXPECT_LE(tree_storage, chains->StorageUnits()) << "seed " << seed;
  }
}

TEST(Theorem2Test, TreeCoverBeatsChainCoverOnTrees) {
  // Section 5: "Consider, for example, a tree.  O(n) storage suffices ...
  // Significantly greater storage would be required by any chain
  // compression technique."
  Digraph tree = RandomTree(100, 5);
  const int64_t tree_storage = Alg1Count(tree);
  auto chains = ChainCover::Build(tree, ChainCover::Method::kMinimum);
  ASSERT_TRUE(chains.ok());
  EXPECT_EQ(tree_storage, 100);
  EXPECT_GT(chains->StorageUnits(), tree_storage);
}

TEST(Theorem2Test, HoldsOnAllFourNodeDags) {
  EnumerateDagsOverOrder(4, [](const Digraph& graph) {
    auto chains = ChainCover::Build(graph, ChainCover::Method::kMinimum);
    ASSERT_TRUE(chains.ok());
    ASSERT_LE(Alg1Count(graph), chains->StorageUnits());
  });
}

}  // namespace
}  // namespace trel
