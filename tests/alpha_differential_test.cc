// Differential test for the alpha operator on randomly generated —
// possibly cyclic — base relations: the compressed view must agree with a
// ground-truth matrix over the same value graph, tuple for tuple.

#include <set>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/digraph.h"
#include "graph/reachability.h"
#include "relational/alpha.h"
#include "relational/relation.h"

namespace trel {
namespace {

struct RandomRelation {
  Relation relation{{{"src", ColumnType::kInt64},
                     {"dst", ColumnType::kInt64}}};
  Digraph graph;            // Mirror over the same ids.
  std::set<NodeId> self_loops;
};

RandomRelation MakeRandomRelation(NodeId domain, int tuples, uint64_t seed) {
  Random rng(seed);
  RandomRelation result;
  result.graph = Digraph(domain);
  std::set<std::pair<NodeId, NodeId>> used;
  for (int k = 0; k < tuples; ++k) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(domain));
    const NodeId b = static_cast<NodeId>(rng.Uniform(domain));
    if (!used.insert({a, b}).second) continue;
    TREL_CHECK(result.relation
                   .Append({static_cast<int64_t>(a), static_cast<int64_t>(b)})
                   .ok());
    if (a == b) {
      result.self_loops.insert(a);
    } else {
      TREL_CHECK(result.graph.AddArc(a, b).ok());
    }
  }
  return result;
}

class AlphaDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlphaDifferentialTest, MatchesGroundTruthIncludingCycles) {
  const NodeId kDomain = 25;
  RandomRelation input = MakeRandomRelation(kDomain, 70, GetParam());
  auto alpha = AlphaOperator::Build(input.relation, "src", "dst");
  ASSERT_TRUE(alpha.ok());
  ReachabilityMatrix truth(input.graph);

  // Note: values never mentioned in the relation are not in the closure's
  // domain; restrict the check to mentioned ids.
  std::set<NodeId> mentioned;
  for (const Tuple& tuple : input.relation.tuples()) {
    mentioned.insert(static_cast<NodeId>(std::get<int64_t>(tuple[0])));
    mentioned.insert(static_cast<NodeId>(std::get<int64_t>(tuple[1])));
  }

  int64_t expected_pairs = 0;
  for (NodeId u : mentioned) {
    for (NodeId v : mentioned) {
      bool expected;
      if (u == v) {
        // Strict semantics: self-reachability needs a cycle or self-loop.
        expected = input.self_loops.count(u) > 0;
        if (!expected) {
          for (NodeId w : input.graph.OutNeighbors(u)) {
            if (truth.Reaches(w, u)) {
              expected = true;
              break;
            }
          }
        }
      } else {
        expected = truth.Reaches(u, v);
      }
      ASSERT_EQ(alpha->Reaches(static_cast<int64_t>(u),
                               static_cast<int64_t>(v)),
                expected)
          << u << "->" << v;
      if (expected) ++expected_pairs;
    }
  }
  EXPECT_EQ(alpha->NumClosurePairs(), expected_pairs);
  EXPECT_EQ(alpha->Materialize().NumTuples(), expected_pairs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlphaDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace trel
