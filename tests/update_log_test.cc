#include "storage/update_log.h"

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"

namespace trel {
namespace {

TEST(UpdateLogTest, OpRecordsRoundTrip) {
  std::stringstream log;
  const std::vector<UpdateOp> ops = {
      {UpdateOp::Kind::kAddLeaf, kNoNode, kNoNode, {}},
      {UpdateOp::Kind::kAddLeaf, 0, kNoNode, {}},
      {UpdateOp::Kind::kAddArc, 0, 1, {}},
      {UpdateOp::Kind::kRefine, kNoNode, 1, {0, 2}},
      {UpdateOp::Kind::kRemoveArc, 0, 1, {}},
      {UpdateOp::Kind::kReoptimize, kNoNode, kNoNode, {}},
  };
  for (const UpdateOp& op : ops) {
    ASSERT_TRUE(AppendUpdateOp(log, op).ok());
  }
  auto read = ReadUpdateLog(log);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), ops);
}

TEST(UpdateLogTest, RejectsTornRecords) {
  std::stringstream log;
  ASSERT_TRUE(
      AppendUpdateOp(log, {UpdateOp::Kind::kAddArc, 0, 1, {}}).ok());
  std::string bytes = log.str();
  {
    std::stringstream torn(bytes.substr(0, bytes.size() - 2));
    EXPECT_FALSE(ReadUpdateLog(torn).ok());
  }
  {
    std::stringstream corrupt(std::string("\x77") + bytes);
    EXPECT_FALSE(ReadUpdateLog(corrupt).ok());
  }
}

TEST(UpdateLogTest, RecoverFromLogAlone) {
  std::stringstream log;
  {
    LoggedClosure live(DynamicClosure(), &log);
    auto root = live.AddLeafUnder(kNoNode);
    ASSERT_TRUE(root.ok());
    auto a = live.AddLeafUnder(root.value());
    auto b = live.AddLeafUnder(root.value());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(live.AddArc(a.value(), b.value()).ok());
    // A failing op must not be logged.
    EXPECT_FALSE(live.AddArc(b.value(), a.value()).ok());  // Cycle.

    auto recovered = LoggedClosure::Recover(nullptr, log);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ASSERT_EQ(recovered->NumNodes(), live.closure().NumNodes());
    for (NodeId u = 0; u < recovered->NumNodes(); ++u) {
      EXPECT_EQ(recovered->Successors(u), live.closure().Successors(u));
    }
  }
}

TEST(UpdateLogTest, RecoverFromSnapshotPlusLogTail) {
  Digraph graph = RandomDag(40, 2.0, 500);
  auto built = DynamicClosure::Build(graph);
  ASSERT_TRUE(built.ok());

  // Snapshot, then keep updating with a log.
  std::stringstream snapshot;
  ASSERT_TRUE(built->Save(snapshot).ok());
  std::stringstream log;
  LoggedClosure live(std::move(built).value(), &log);
  Random rng(3);
  for (int i = 0; i < 25; ++i) {
    const NodeId parent = static_cast<NodeId>(
        rng.Uniform(static_cast<uint64_t>(live.closure().NumNodes())));
    ASSERT_TRUE(live.AddLeafUnder(parent).ok());
  }
  (void)live.RefineAbove(7, live.closure().graph().InNeighbors(7));
  ASSERT_TRUE(live.Reoptimize().ok());

  auto recovered = LoggedClosure::Recover(&snapshot, log);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered->NumNodes(), live.closure().NumNodes());
  for (NodeId u = 0; u < recovered->NumNodes(); ++u) {
    EXPECT_EQ(recovered->Successors(u), live.closure().Successors(u))
        << "node " << u;
  }
  EXPECT_EQ(recovered->TotalIntervals(), live.closure().TotalIntervals());
}

}  // namespace
}  // namespace trel
