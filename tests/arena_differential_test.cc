// Differential fuzz suite for the flat LabelArena query path: every
// query the arena answers (Reaches, BatchReaches, Successors,
// CountSuccessors, Predecessors) must agree with a naive per-node
// IntervalSet reference evaluated over the same labeling, across
// randomized DAGs, gap-numbered labelings, query-only exports, and
// WithDelta overlay chains.  The reference never touches the arena —
// it reads NodeLabels directly — so a layout bug anywhere in the arena
// (Eytzinger runs, coverage filters, directory) trips it.

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "core/arena_kernels.h"
#include "core/chain_propagator.h"
#include "core/compressed_closure.h"
#include "core/dynamic_closure.h"
#include "core/hop_label_index.h"
#include "core/index_family.h"
#include "core/simd_dispatch.h"
#include "core/tree_cover_index.h"
#include "service/snapshot.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/reachability.h"

namespace trel {
namespace {

// Answers every query shape straight off the per-node labels, the way
// the paper defines them: u reaches v iff some interval of u contains
// v's postorder number.
class ReferenceClosure {
 public:
  explicit ReferenceClosure(const NodeLabels& labels) : labels_(labels) {}

  bool Reaches(NodeId u, NodeId v) const {
    return u == v || labels_.intervals[u].Contains(labels_.postorder[v]);
  }

  // Ascending postorder-number order, matching the closure's contract.
  std::vector<NodeId> Successors(NodeId u) const {
    std::vector<NodeId> out;
    for (NodeId w = 0; w < NumNodes(); ++w) {
      if (w != u && labels_.intervals[u].Contains(labels_.postorder[w])) {
        out.push_back(w);
      }
    }
    std::sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
      return labels_.postorder[a] < labels_.postorder[b];
    });
    return out;
  }

  // Ascending node id, matching the closure's arena sweep.
  std::vector<NodeId> Predecessors(NodeId v) const {
    std::vector<NodeId> out;
    for (NodeId u = 0; u < NumNodes(); ++u) {
      if (u != v && labels_.intervals[u].Contains(labels_.postorder[v])) {
        out.push_back(u);
      }
    }
    return out;
  }

  NodeId NumNodes() const {
    return static_cast<NodeId>(labels_.postorder.size());
  }

 private:
  const NodeLabels& labels_;
};

// Every query shape, all pairs, closure vs reference.
void ExpectMatchesReference(const CompressedClosure& closure,
                            const ReferenceClosure& ref,
                            const char* what) {
  ASSERT_EQ(closure.NumNodes(), ref.NumNodes()) << what;
  const NodeId n = closure.NumNodes();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(closure.Reaches(u, v), ref.Reaches(u, v))
          << what << " Reaches " << u << "->" << v;
    }
    const std::vector<NodeId> succ = ref.Successors(u);
    ASSERT_EQ(closure.Successors(u), succ) << what << " Successors " << u;
    ASSERT_EQ(closure.CountSuccessors(u), static_cast<int64_t>(succ.size()))
        << what << " CountSuccessors " << u;
    ASSERT_EQ(closure.Predecessors(u), ref.Predecessors(u))
        << what << " Predecessors " << u;
  }
}

// Random pairs including out-of-range ids and duplicates on purpose.
// One draw in five expands into a run of 16-47 queries sharing a source,
// so the batch engine's grouped path (one 512-bit filter test per run)
// gets fuzzed alongside the per-query pipeline.
std::vector<std::pair<NodeId, NodeId>> FuzzPairs(NodeId n, uint64_t seed,
                                                 int64_t count) {
  Random rng(seed);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  while (static_cast<int64_t>(pairs.size()) < count) {
    // Draw from [-2, n+1] so invalid ids show up on both sides.
    const NodeId u = static_cast<NodeId>(rng.Uniform(n + 4)) - 2;
    const int64_t run =
        rng.Uniform(5) == 0 ? 16 + static_cast<int64_t>(rng.Uniform(32)) : 1;
    for (int64_t r = 0;
         r < run && static_cast<int64_t>(pairs.size()) < count; ++r) {
      const NodeId v = static_cast<NodeId>(rng.Uniform(n + 4)) - 2;
      pairs.emplace_back(u, v);
    }
  }
  return pairs;
}

// BatchReaches snapshot semantics: invalid ids answer 0, never abort.
void ExpectBatchMatchesReference(const CompressedClosure& closure,
                                 const ReferenceClosure& ref, uint64_t seed,
                                 const char* what) {
  const NodeId n = closure.NumNodes();
  // 2048 pairs exercises the grouped kernel; 64 the per-query path.
  for (const int64_t count : {int64_t{64}, int64_t{2048}}) {
    const auto pairs = FuzzPairs(n, seed, count);
    const std::vector<uint8_t> got = closure.BatchReaches(pairs);
    ASSERT_EQ(static_cast<int64_t>(got.size()), count) << what;
    for (int64_t i = 0; i < count; ++i) {
      const auto [u, v] = pairs[i];
      const bool valid = closure.IsValidNode(u) && closure.IsValidNode(v);
      const uint8_t expected = valid && ref.Reaches(u, v) ? 1 : 0;
      ASSERT_EQ(got[i], expected)
          << what << " batch[" << count << "] " << u << "->" << v;
    }
  }
}

class ArenaDifferentialTest : public ::testing::TestWithParam<
                                  std::tuple<int, double, Label, uint64_t>> {};

// The core property: a closure built over a randomized DAG — with and
// without postorder gaps — answers exactly like the IntervalSet
// reference over its own labels.
TEST_P(ArenaDifferentialTest, ArenaAgreesWithIntervalSetReference) {
  const auto& [nodes, degree, gap, seed] = GetParam();
  const Digraph graph = RandomDag(nodes, degree, seed);

  ClosureOptions options;
  options.labeling.gap = gap;
  options.labeling.reserve = gap > 4 ? 3 : 0;
  auto built = CompressedClosure::Build(graph, options);
  ASSERT_TRUE(built.ok()) << built.status().message();

  const ReferenceClosure ref(built->labels());
  ExpectMatchesReference(*built, ref, "build");
  ExpectBatchMatchesReference(*built, ref, seed * 31 + 7, "build");

  // Cross-check the labeling itself against DFS ground truth, so a
  // labeling bug can't hide behind a reference evaluated on the same
  // (broken) labels.
  const ReachabilityMatrix truth(graph);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      ASSERT_EQ(built->Reaches(u, v), truth.Reaches(u, v))
          << "ground truth " << u << "->" << v;
    }
  }
}

// FromPartsQueryOnly must be query-for-query identical to FromParts on
// the same labeling, while dropping the per-node storage.
TEST_P(ArenaDifferentialTest, QueryOnlyExportAgrees) {
  const auto& [nodes, degree, gap, seed] = GetParam();
  const Digraph graph = RandomDag(nodes, degree, seed);
  ClosureOptions options;
  options.labeling.gap = gap;
  auto built = CompressedClosure::Build(graph, options);
  ASSERT_TRUE(built.ok()) << built.status().message();

  NodeLabels labels = built->labels();
  TreeCover cover = built->tree_cover();
  const CompressedClosure query_only =
      CompressedClosure::FromPartsQueryOnly(labels, cover);
  EXPECT_FALSE(query_only.HasLabels());
  EXPECT_TRUE(built->HasLabels());
  EXPECT_EQ(query_only.TotalIntervals(), built->TotalIntervals());

  const ReferenceClosure ref(labels);
  ExpectMatchesReference(query_only, ref, "query_only");
  ExpectBatchMatchesReference(query_only, ref, seed * 17 + 3, "query_only");
  for (NodeId v = 0; v < query_only.NumNodes(); ++v) {
    ASSERT_EQ(query_only.IntervalCountOf(v), labels.intervals[v].size())
        << "IntervalCountOf " << v;
    ASSERT_EQ(query_only.PostorderOf(v), labels.postorder[v])
        << "PostorderOf " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ArenaDifferentialTest,
    ::testing::Values(
        // (nodes, avg degree, postorder gap, seed)
        std::make_tuple(90, 1.5, Label{1}, uint64_t{11}),
        std::make_tuple(90, 1.5, Label{1}, uint64_t{12}),
        std::make_tuple(60, 5.0, Label{1}, uint64_t{13}),   // interval-heavy
        std::make_tuple(90, 2.0, Label{64}, uint64_t{14}),  // gap-numbered
        std::make_tuple(60, 4.0, Label{64}, uint64_t{15}),
        std::make_tuple(120, 0.8, Label{7}, uint64_t{16})),  // forest-like
    [](const ::testing::TestParamInfo<std::tuple<int, double, Label, uint64_t>>&
           info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_gap" +
             std::to_string(std::get<2>(info.param)) + "_seed" +
             std::to_string(std::get<3>(info.param));
    });

// A chain of WithDelta overlays over a mutating index must keep
// answering like (a) the IntervalSet reference over the index's current
// labels and (b) DFS ground truth on the current graph — for overlays
// based on both full and query-only exports.
TEST(ArenaOverlayDifferentialTest, OverlayChainAgreesWithReference) {
  for (const bool query_only_base : {false, true}) {
    auto dynamic = DynamicClosure::Build(RandomDag(60, 1.5, 21));
    ASSERT_TRUE(dynamic.ok());

    CompressedClosure snapshot = dynamic->ExportClosure(
        /*runner=*/nullptr, /*retain_labels=*/!query_only_base);
    dynamic->MarkClean();

    Random rng(97);
    for (int round = 0; round < 6; ++round) {
      // Mutate: a few random arcs plus the occasional new leaf, so the
      // delta carries both relabeled and brand-new nodes.
      for (int i = 0; i < 5; ++i) {
        const NodeId u =
            static_cast<NodeId>(rng.Uniform(dynamic->NumNodes()));
        const NodeId v =
            static_cast<NodeId>(rng.Uniform(dynamic->NumNodes()));
        (void)dynamic->AddArc(u, v);  // Cycles/duplicates are fine to drop.
      }
      ASSERT_TRUE(dynamic
                      ->AddLeafUnder(static_cast<NodeId>(
                          rng.Uniform(dynamic->NumNodes())))
                      .ok());

      ClosureDelta delta = dynamic->ExportDelta();
      snapshot = CompressedClosure::WithDelta(snapshot, delta);
      ASSERT_TRUE(snapshot.IsOverlay());

      // Reference labels come from a fresh full export of the same index
      // state; the overlay must agree with them query for query.
      const CompressedClosure full = dynamic->ExportClosure();
      const ReferenceClosure ref(full.labels());
      ExpectMatchesReference(
          snapshot, ref, query_only_base ? "overlay(query-only)" : "overlay");
      ExpectBatchMatchesReference(snapshot, ref, 400 + round,
                                  "overlay batch");

      const ReachabilityMatrix truth(dynamic->graph());
      for (NodeId u = 0; u < dynamic->NumNodes(); ++u) {
        for (NodeId v = 0; v < dynamic->NumNodes(); ++v) {
          ASSERT_EQ(snapshot.Reaches(u, v), truth.Reaches(u, v))
              << "overlay ground truth " << u << "->" << v;
        }
      }
    }
  }
}

// Sharding the arena build across threads must produce the identical
// arena, byte for byte: same slots, extras (Eytzinger runs + summaries),
// coverage filters, and directory.
TEST(ArenaParallelBuildTest, ParallelBuildIsDeterministic) {
  // Above kParallelBuildFloor (1 << 14) so the runner actually shards.
  const Digraph graph = RandomDag(20000, 2.0, 31);
  auto built = CompressedClosure::Build(graph);
  ASSERT_TRUE(built.ok());
  NodeLabels labels = built->labels();
  TreeCover cover = built->tree_cover();

  const ParallelRunner runner =
      [](int64_t count, const std::function<void(int64_t, int64_t)>& body) {
        constexpr int kThreads = 4;
        const int64_t chunk = (count + kThreads - 1) / kThreads;
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
          const int64_t begin = t * chunk;
          const int64_t end = std::min<int64_t>(count, begin + chunk);
          if (begin >= end) break;
          threads.emplace_back([&body, begin, end] { body(begin, end); });
        }
        for (std::thread& t : threads) t.join();
      };

  CompressedClosure::ExportHints hints;
  hints.runner = &runner;
  const CompressedClosure sharded =
      CompressedClosure::FromPartsQueryOnly(labels, cover, std::move(hints));
  const CompressedClosure serial =
      CompressedClosure::FromPartsQueryOnly(labels, cover);

  const LabelArena& a = sharded.arena();
  const LabelArena& b = serial.arena();
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.extras.size(), b.extras.size());
  EXPECT_EQ(std::memcmp(a.slots.data(), b.slots.data(),
                        a.slots.size() * sizeof(LabelArena::NodeSlot)),
            0);
  EXPECT_EQ(std::memcmp(a.extras.data(), b.extras.data(),
                        a.extras.size() * sizeof(Interval)),
            0);
  EXPECT_EQ(a.filters, b.filters);
  EXPECT_EQ(a.dir_labels, b.dir_labels);
  EXPECT_EQ(a.dir_nodes, b.dir_nodes);

  // Spot-check queries on the sharded build against the reference.
  const ReferenceClosure ref(labels);
  Random rng(77);
  for (int i = 0; i < 20000; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(sharded.NumNodes()));
    const NodeId v = static_cast<NodeId>(rng.Uniform(sharded.NumNodes()));
    ASSERT_EQ(sharded.Reaches(u, v), ref.Reaches(u, v))
        << "sharded " << u << "->" << v;
  }
}

// Kernel tables for every level this HOST can execute (the build always
// contains all three TUs; higher tables exist but must not run here).
std::vector<const ArenaKernels*> HostRunnableKernelTables() {
  std::vector<const ArenaKernels*> tables = {&ScalarArenaKernels()};
  const int top = static_cast<int>(HighestSupportedSimdLevel());
  if (top >= static_cast<int>(SimdLevel::kSse)) {
    tables.push_back(&SseArenaKernels());
  }
  if (top >= static_cast<int>(SimdLevel::kAvx2)) {
    tables.push_back(&Avx2ArenaKernels());
  }
  return tables;
}

// Every dispatch level must answer bit-identically on the same arena —
// the vector kernels are drop-in replacements, not approximations.
// This compares the per-level tables directly (in one process), on top
// of the TREL_SIMD-environment sweep ci.sh runs over this whole binary.
TEST(SimdKernelEquivalenceTest, ExtrasAndFilterProbesMatchScalar) {
  // Interval-heavy DAG so plenty of nodes carry extras runs of assorted
  // lengths (vector-scan range and descent range both covered).
  const Digraph graph = RandomDag(400, 5.0, 1234);
  auto built = CompressedClosure::Build(graph);
  ASSERT_TRUE(built.ok());
  const LabelArena& arena = built->arena();
  const ArenaKernels& scalar = ScalarArenaKernels();
  const std::vector<const ArenaKernels*> tables = HostRunnableKernelTables();

  int64_t runs_probed = 0;
  for (NodeId u = 0; u < arena.num_nodes(); ++u) {
    const LabelArena::NodeSlot& s = arena.slots[u];
    if (s.extra_count == 0) continue;
    ++runs_probed;
    const Interval* base = arena.extras.data() + s.extra_begin;
    for (NodeId v = 0; v < arena.num_nodes(); ++v) {
      const Label p = arena.slots[v].postorder;
      // The postorder itself plus both neighbors, so off-by-one bounds
      // in the vector compares can't hide between assigned numbers.
      for (const Label x : {p - 1, p, p + 1}) {
        const bool want = scalar.extras_contains(base, s.extra_count, x);
        for (const ArenaKernels* t : tables) {
          ASSERT_EQ(t->extras_contains(base, s.extra_count, x), want)
              << t->name << " extras u=" << u << " x=" << x;
        }
      }
    }
  }
  ASSERT_GT(runs_probed, 0) << "graph produced no extras runs to probe";

  Random rng(5);
  for (int trial = 0; trial < 4000; ++trial) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(arena.num_nodes()));
    const uint64_t* filter =
        arena.filters.data() +
        static_cast<size_t>(u) * LabelArena::kFilterWords;
    uint64_t mask[LabelArena::kFilterWords] = {};
    // Sparse masks: mostly-miss tests are the case the kernel exists for.
    const int bits = 1 + static_cast<int>(rng.Uniform(8));
    for (int b = 0; b < bits; ++b) {
      const uint64_t bucket = rng.Uniform(LabelArena::kFilterWords * 64);
      mask[bucket >> 6] |= uint64_t{1} << (bucket & 63);
    }
    const bool want = scalar.filter_intersects(filter, mask);
    for (const ArenaKernels* t : tables) {
      ASSERT_EQ(t->filter_intersects(filter, mask), want)
          << t->name << " filter u=" << u << " trial=" << trial;
    }
  }
}

TEST(SimdKernelEquivalenceTest, BatchReachesMatchesScalarBitForBit) {
  const Digraph graph = RandomDag(400, 5.0, 4321);
  auto built = CompressedClosure::Build(graph);
  ASSERT_TRUE(built.ok());
  const LabelArena& arena = built->arena();
  const ArenaKernels& scalar = ScalarArenaKernels();
  const std::vector<const ArenaKernels*> tables = HostRunnableKernelTables();

  for (const uint64_t seed : {uint64_t{1}, uint64_t{2}, uint64_t{3}}) {
    const auto pairs = FuzzPairs(arena.num_nodes(), seed, 4096);
    const int64_t n = static_cast<int64_t>(pairs.size());
    std::vector<uint8_t> want(n);
    BatchKernelStats want_stats;
    scalar.batch_reaches(arena, pairs.data(), n, want.data(), &want_stats);
    // Every query lands in exactly one tally.
    ASSERT_EQ(want_stats.fast_path + want_stats.filter_rejects +
                  want_stats.group_rejects + want_stats.extras_searches,
              n);
    for (const ArenaKernels* t : tables) {
      std::vector<uint8_t> got(n);
      BatchKernelStats stats;
      t->batch_reaches(arena, pairs.data(), n, got.data(), &stats);
      ASSERT_EQ(got, want) << t->name << " seed=" << seed;
      // The pipeline/grouping control flow is level-independent, so the
      // tallies must match exactly too, not just sum to n.
      EXPECT_EQ(stats.fast_path, want_stats.fast_path) << t->name;
      EXPECT_EQ(stats.filter_rejects, want_stats.filter_rejects) << t->name;
      EXPECT_EQ(stats.group_rejects, want_stats.group_rejects) << t->name;
      EXPECT_EQ(stats.extras_searches, want_stats.extras_searches) << t->name;
    }
  }
}

// The traced twin must behave like one more dispatch level: identical
// answers AND identical per-query probe tags on every host-runnable
// table, so a sampled trace means the same thing whatever ISA tier
// served it.  (Small batches route through the bypass, large ones
// through the grouped pipeline — both shapes are covered.)
TEST(SimdKernelEquivalenceTest, TaggedBatchMatchesScalarBitForBit) {
  const Digraph graph = RandomDag(400, 5.0, 2468);
  auto built = CompressedClosure::Build(graph);
  ASSERT_TRUE(built.ok());
  const LabelArena& arena = built->arena();
  const ArenaKernels& scalar = ScalarArenaKernels();
  const std::vector<const ArenaKernels*> tables = HostRunnableKernelTables();

  // 128 stays under the small-batch bypass threshold; 4096 engages the
  // pipelined engine with grouping.
  for (const int64_t count : {int64_t{128}, int64_t{4096}}) {
    for (const uint64_t seed : {uint64_t{7}, uint64_t{8}}) {
      const auto pairs = FuzzPairs(arena.num_nodes(), seed, count);
      std::vector<uint8_t> want(count), want_tags(count);
      BatchKernelStats want_stats;
      scalar.batch_reaches_tagged(arena, pairs.data(), count, want.data(),
                                  &want_stats, want_tags.data());
      // Tagging must not change the answers relative to the untagged
      // kernel...
      std::vector<uint8_t> untagged(count);
      scalar.batch_reaches(arena, pairs.data(), count, untagged.data(),
                           nullptr);
      ASSERT_EQ(want, untagged) << "count=" << count;
      // ...and each tag must be a valid ProbeTag whose tallies sum to n.
      std::array<int64_t, kNumProbeTags> tag_tally{};
      for (int64_t i = 0; i < count; ++i) {
        ASSERT_LT(want_tags[i], kNumProbeTags);
        ++tag_tally[want_tags[i]];
      }
      EXPECT_EQ(tag_tally[static_cast<int>(ProbeTag::kSlot)],
                want_stats.fast_path);
      EXPECT_EQ(tag_tally[static_cast<int>(ProbeTag::kFilterReject)],
                want_stats.filter_rejects);
      EXPECT_EQ(tag_tally[static_cast<int>(ProbeTag::kGroupReject)],
                want_stats.group_rejects);
      EXPECT_EQ(tag_tally[static_cast<int>(ProbeTag::kExtrasSearch)],
                want_stats.extras_searches);

      for (const ArenaKernels* t : tables) {
        std::vector<uint8_t> got(count), tags(count);
        BatchKernelStats stats;
        t->batch_reaches_tagged(arena, pairs.data(), count, got.data(),
                                &stats, tags.data());
        ASSERT_EQ(got, want) << t->name << " count=" << count;
        ASSERT_EQ(tags, want_tags) << t->name << " count=" << count;
        EXPECT_EQ(stats.fast_path, want_stats.fast_path) << t->name;
        EXPECT_EQ(stats.filter_rejects, want_stats.filter_rejects)
            << t->name;
        EXPECT_EQ(stats.group_rejects, want_stats.group_rejects) << t->name;
        EXPECT_EQ(stats.extras_searches, want_stats.extras_searches)
            << t->name;
      }
    }
  }
}

// Satellite regression test: a node with 10k+ intervals.  The recursive
// in-order walk this replaces put one call frame on the stack per
// interval; the iterative walk is bounded by tree height.  Also the
// longest Eytzinger descents the suite exercises.
TEST(ArenaDenseNodeTest, TenThousandExtraIntervals) {
  constexpr NodeId kLeaves = 10001;
  const NodeId n = kLeaves + 1;  // Node 0 is the dense source.
  NodeLabels labels;
  labels.postorder.resize(n);
  labels.intervals.resize(n);
  // Leaves own the even numbers 2..2*kLeaves; node 0 covers each leaf
  // with its own single-point interval (odd numbers stay unassigned, so
  // probes between members exercise descent misses).
  for (NodeId v = 1; v <= kLeaves; ++v) {
    labels.postorder[v] = 2 * static_cast<Label>(v);
    labels.intervals[v].Insert({2 * static_cast<Label>(v),
                                2 * static_cast<Label>(v)});
  }
  const Label self = 2 * static_cast<Label>(kLeaves) + 1;
  labels.postorder[0] = self;
  for (NodeId v = 1; v <= kLeaves; ++v) {
    labels.intervals[0].Insert({2 * static_cast<Label>(v),
                                2 * static_cast<Label>(v)});
  }
  labels.intervals[0].Insert({self, self});
  TreeCover cover;
  cover.parent.assign(n, kNoNode);
  cover.children.resize(n);

  const CompressedClosure closure =
      CompressedClosure::FromPartsQueryOnly(labels, cover);
  ASSERT_GT(closure.arena().slots[0].extra_count, 10000u);

  // The in-order walk must visit all extras, ascending, without blowing
  // the stack.
  Label prev_hi = std::numeric_limits<Label>::min();
  int64_t visited = 0;
  closure.arena().ForEachExtra(0, [&](const Interval& interval) {
    EXPECT_GT(interval.lo, prev_hi);
    prev_hi = interval.hi;
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, closure.arena().slots[0].extra_count);

  EXPECT_EQ(closure.CountSuccessors(0), static_cast<int64_t>(kLeaves));
  const std::vector<NodeId> succ = closure.Successors(0);
  ASSERT_EQ(succ.size(), static_cast<size_t>(kLeaves));
  for (NodeId v = 1; v <= kLeaves; ++v) {
    ASSERT_EQ(succ[v - 1], v);  // Ascending postorder == ascending id.
  }
  EXPECT_TRUE(closure.Reaches(0, 1));
  EXPECT_TRUE(closure.Reaches(0, kLeaves));
  EXPECT_TRUE(closure.Reaches(0, kLeaves / 2));
  EXPECT_FALSE(closure.Reaches(1, 0));
  EXPECT_FALSE(closure.Reaches(1, 2));

  // Deep-descent probes across every host-runnable kernel level,
  // including misses between members (odd numbers).
  const LabelArena& arena = closure.arena();
  const Interval* base = arena.extras.data() + arena.slots[0].extra_begin;
  const uint32_t count = arena.slots[0].extra_count;
  // (The [2, 2] interval is inline in the slot, so extras hold the even
  // numbers 4..2*kLeaves plus the odd self number — probe below that.)
  for (const ArenaKernels* t : HostRunnableKernelTables()) {
    for (const Label x : {Label{4}, Label{3}, Label{9999}, Label{10000},
                          2 * static_cast<Label>(kLeaves),
                          2 * static_cast<Label>(kLeaves) - 1}) {
      EXPECT_EQ(t->extras_contains(base, count, x), x % 2 == 0)
          << t->name << " x=" << x;
    }
  }

  const ReferenceClosure ref(labels);
  ExpectBatchMatchesReference(closure, ref, 99, "dense");
}

// ---------------------------------------------------------------------------
// Index-family differential suite: TreeCoverIndex and HopLabelIndex must
// answer bit-for-bit like DFS ground truth (and hence like the interval
// closure) on the adversarial shapes they exist for — the Fig 3.6 dense
// bipartite layers that shred interval labels, and hub-dominated DAGs.

// The generator mix: shapes where each family is at home plus shapes
// where it is at a disadvantage, so correctness never leans on the
// selector picking "its" graph.
std::vector<std::pair<const char*, Digraph>> FamilyAdversarialGraphs() {
  std::vector<std::pair<const char*, Digraph>> graphs;
  graphs.emplace_back("bipartite", CompleteBipartite(22, 22));
  graphs.emplace_back("layered_dense", LayeredDag(4, 14, 0.5, 91));
  graphs.emplace_back("hub", HubDag(40, 5, 36, 92));
  graphs.emplace_back("random_sparse", RandomDag(80, 1.5, 93));
  graphs.emplace_back("random_dense", RandomDag(50, 5.0, 94));
  graphs.emplace_back("intermediary", BipartiteWithIntermediary(20, 20));
  return graphs;
}

TEST(IndexFamilyDifferentialTest, AllFamiliesMatchDfsGroundTruth) {
  for (const auto& [name, graph] : FamilyAdversarialGraphs()) {
    const ReachabilityMatrix truth(graph);
    auto closure = CompressedClosure::Build(graph);
    ASSERT_TRUE(closure.ok()) << name;
    const TreeCoverIndex trees = TreeCoverIndex::Build(graph, 2, 7);
    const HopLabelIndex hop = HopLabelIndex::Build(graph, 8);
    const NodeId n = graph.NumNodes();
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        const bool want = truth.Reaches(u, v);
        ASSERT_EQ(closure->Reaches(u, v), want)
            << name << " intervals " << u << "->" << v;
        ASSERT_EQ(trees.Reaches(u, v), want)
            << name << " trees " << u << "->" << v;
        ASSERT_EQ(hop.Reaches(u, v), want)
            << name << " hop " << u << "->" << v;
      }
    }
  }
}

// The traced twins must return the same answers and only family-legal
// tags, since trace records cross the obs boundary by tag value.
TEST(IndexFamilyDifferentialTest, TracedTwinsAgreeAndTagLegally) {
  for (const auto& [name, graph] : FamilyAdversarialGraphs()) {
    const TreeCoverIndex trees = TreeCoverIndex::Build(graph, 3, 8);
    const HopLabelIndex hop = HopLabelIndex::Build(graph, 8);
    const NodeId n = graph.NumNodes();
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        ProbeTrace trace;
        ASSERT_EQ(trees.ReachesTraced(u, v, &trace), trees.Reaches(u, v))
            << name;
        ASSERT_TRUE(trace.tag == ProbeTag::kSlot ||
                    trace.tag == ProbeTag::kFilterReject ||
                    trace.tag == ProbeTag::kFallback)
            << name << " trees tag " << static_cast<int>(trace.tag);
        ASSERT_EQ(hop.ReachesTraced(u, v, &trace), hop.Reaches(u, v)) << name;
        ASSERT_TRUE(trace.tag == ProbeTag::kSlot ||
                    trace.tag == ProbeTag::kHopIntersect ||
                    trace.tag == ProbeTag::kFallback)
            << name << " hop tag " << static_cast<int>(trace.tag);
      }
    }
  }
}

// The selector's contract on the canonical shapes: the paper's random
// DAGs stay on intervals, the bipartite blowup flips to tree covers,
// hub-dominated graphs flip to 2-hop labels.
TEST(IndexFamilySelectorTest, PicksTheExpectedFamilyPerShape) {
  const auto intervals_of = [](const Digraph& g) {
    auto closure = CompressedClosure::Build(g);
    TREL_CHECK(closure.ok());
    return closure->TotalIntervals();
  };

  // The standard benchmark shape: interval counts blow up organically
  // (tens per node) but the graph stays sparse — intervals must win on
  // density, not on blowup.
  const Digraph standard = RandomDag(2000, 4.0, 5);
  FamilySignals signals;
  EXPECT_EQ(SelectIndexFamily(standard, intervals_of(standard), &signals),
            IndexFamily::kIntervals);
  EXPECT_GT(signals.interval_blowup, kMaxIntervalBlowup);
  EXPECT_LT(signals.arc_density, kDenseArcsPerNode);

  // Tree-like shapes stay on intervals via the blowup cutoff alone.
  const Digraph tree = RandomTree(2000, 5);
  EXPECT_EQ(SelectIndexFamily(tree, intervals_of(tree), &signals),
            IndexFamily::kIntervals);
  EXPECT_LE(signals.interval_blowup, kMaxIntervalBlowup);

  const Digraph bipartite = CompleteBipartite(60, 60);
  EXPECT_EQ(SelectIndexFamily(bipartite, intervals_of(bipartite), &signals),
            IndexFamily::kTrees);
  EXPECT_GT(signals.interval_blowup, kMaxIntervalBlowup);
  EXPECT_GE(signals.arc_density, kDenseArcsPerNode);
  EXPECT_LT(signals.hub_arc_fraction, kMinHubArcFraction);

  const Digraph hub = HubDag(400, 6, 300, 6);
  EXPECT_EQ(SelectIndexFamily(hub, intervals_of(hub), &signals),
            IndexFamily::kHop);
  EXPECT_GT(signals.interval_blowup, kMaxIntervalBlowup);
  EXPECT_GE(signals.hub_arc_fraction, kMinHubArcFraction);

  // Forcing overrides scoring; kAuto falls through to it.
  EXPECT_EQ(ResolveIndexFamily(IndexFamilySetting::kForceIntervals, hub,
                               intervals_of(hub)),
            IndexFamily::kIntervals);
  EXPECT_EQ(ResolveIndexFamily(IndexFamilySetting::kAuto, hub,
                               intervals_of(hub)),
            IndexFamily::kHop);
}

TEST(IndexFamilySelectorTest, EnvParsingNeverFails) {
  EXPECT_EQ(ParseIndexFamilySetting(nullptr), IndexFamilySetting::kAuto);
  EXPECT_EQ(ParseIndexFamilySetting(""), IndexFamilySetting::kAuto);
  EXPECT_EQ(ParseIndexFamilySetting("auto"), IndexFamilySetting::kAuto);
  EXPECT_EQ(ParseIndexFamilySetting("bogus"), IndexFamilySetting::kAuto);
  EXPECT_EQ(ParseIndexFamilySetting("intervals"),
            IndexFamilySetting::kForceIntervals);
  EXPECT_EQ(ParseIndexFamilySetting("trees"),
            IndexFamilySetting::kForceTrees);
  EXPECT_EQ(ParseIndexFamilySetting("hop"), IndexFamilySetting::kForceHop);
}

// On the shapes each family exists for, its labels must be materially
// smaller than the interval arena — this is the economic half of the
// acceptance bar (>= 3x), checked at test scale.
TEST(IndexFamilyDifferentialTest, FamiliesBeatIntervalBytesOnTheirShapes) {
  {
    const Digraph bipartite = CompleteBipartite(150, 150);
    auto closure = CompressedClosure::Build(bipartite);
    ASSERT_TRUE(closure.ok());
    const TreeCoverIndex trees = TreeCoverIndex::Build(bipartite, 2, 9);
    EXPECT_GE(closure->ArenaByteSize(), 3 * trees.LabelBytes())
        << "intervals " << closure->ArenaByteSize() << "B vs trees "
        << trees.LabelBytes() << "B";
  }
  {
    const Digraph hubby = HubDag(900, 8, 700, 10);
    auto closure = CompressedClosure::Build(hubby);
    ASSERT_TRUE(closure.ok());
    const HopLabelIndex hop = HopLabelIndex::Build(hubby);
    EXPECT_GE(closure->ArenaByteSize(), 3 * hop.LabelBytes())
        << "intervals " << closure->ArenaByteSize() << "B vs hop "
        << hop.LabelBytes() << "B";
  }
}

// WithDelta overlay chains per family, through the snapshot dispatch
// layer the service uses: any pair touching an overlaid or post-build
// node must route back to the (exact) interval overlay, so the carried
// family index never serves stale answers.
TEST(IndexFamilyOverlayTest, OverlayChainsStayExactUnderEveryFamily) {
  for (const IndexFamily family :
       {IndexFamily::kIntervals, IndexFamily::kTrees, IndexFamily::kHop}) {
    auto dynamic = DynamicClosure::Build(HubDag(30, 4, 26, 55));
    ASSERT_TRUE(dynamic.ok());

    // Full publish: interval export plus the family build, exactly as
    // QueryService::PublishLocked assembles a snapshot.
    ClosureSnapshot snapshot;
    snapshot.closure = dynamic->ExportClosure();
    dynamic->MarkClean();
    snapshot.family = family;
    snapshot.family_nodes = dynamic->NumNodes();
    if (family == IndexFamily::kTrees) {
      snapshot.tree_index = std::make_shared<const TreeCoverIndex>(
          TreeCoverIndex::Build(dynamic->graph(), 2, 3));
    } else if (family == IndexFamily::kHop) {
      snapshot.hop_index = std::make_shared<const HopLabelIndex>(
          HopLabelIndex::Build(dynamic->graph(), 8));
    }

    Random rng(137);
    for (int round = 0; round < 5; ++round) {
      for (int i = 0; i < 4; ++i) {
        const NodeId u =
            static_cast<NodeId>(rng.Uniform(dynamic->NumNodes()));
        const NodeId v =
            static_cast<NodeId>(rng.Uniform(dynamic->NumNodes()));
        (void)dynamic->AddArc(u, v);  // Cycles/duplicates simply drop.
      }
      ASSERT_TRUE(dynamic
                      ->AddLeafUnder(static_cast<NodeId>(
                          rng.Uniform(dynamic->NumNodes())))
                      .ok());

      // Delta publish: overlay the closure, carry the family forward.
      ClosureDelta delta = dynamic->ExportDelta();
      snapshot.closure = CompressedClosure::WithDelta(snapshot.closure, delta);
      ASSERT_TRUE(snapshot.closure.IsOverlay());

      const ReachabilityMatrix truth(dynamic->graph());
      const NodeId n = dynamic->NumNodes();
      int64_t family_answered = 0;
      for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = 0; v < n; ++v) {
          ASSERT_EQ(snapshot.Reaches(u, v), truth.Reaches(u, v))
              << IndexFamilyName(family) << " round " << round << " " << u
              << "->" << v;
          if (snapshot.UsesFamily(u, v)) ++family_answered;
        }
      }
      if (family != IndexFamily::kIntervals) {
        // The overlay must not swallow the family entirely; on the first
        // round (a handful of dirty nodes) it must still carry the bulk.
        EXPECT_GT(family_answered, 0)
            << IndexFamilyName(family) << " round " << round;
        if (round == 0) {
          EXPECT_GT(family_answered, static_cast<int64_t>(n) * n / 2)
              << IndexFamilyName(family);
        }
      }

      // Batch twins under the same snapshot semantics.
      const auto pairs = FuzzPairs(n, 500 + round, 512);
      std::vector<uint8_t> out(pairs.size()), tags(pairs.size());
      BatchKernelStats stats;
      snapshot.BatchReachesTraced(pairs.data(),
                                  static_cast<int64_t>(pairs.size()),
                                  out.data(), &stats, tags.data());
      std::vector<uint8_t> untagged(pairs.size());
      snapshot.BatchReaches(pairs.data(), static_cast<int64_t>(pairs.size()),
                            untagged.data(), nullptr);
      for (size_t i = 0; i < pairs.size(); ++i) {
        const auto [u, v] = pairs[i];
        const bool valid = snapshot.closure.IsValidNode(u) &&
                           snapshot.closure.IsValidNode(v);
        const uint8_t want = valid && truth.Reaches(u, v) ? 1 : 0;
        ASSERT_EQ(out[i], want) << IndexFamilyName(family) << " batch " << u
                                << "->" << v;
        ASSERT_EQ(untagged[i], want)
            << IndexFamilyName(family) << " untagged batch " << u << "->"
            << v;
        ASSERT_LT(tags[i], kNumProbeTags);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Chain-fast publish differential suite: BuildChainLabeling's closed-form
// frontier propagation must be BIT-IDENTICAL to running the generic
// propagator (BuildLabels) over the same greedy path cover, and a
// chain-built snapshot must answer exactly like DFS ground truth — on
// chain-friendly shapes and on shapes the fast path was never meant for.

std::vector<std::pair<const char*, Digraph>> ChainAdversarialGraphs() {
  std::vector<std::pair<const char*, Digraph>> graphs;
  graphs.emplace_back("chained", ChainedDag(8, 30, 3.0, 41));
  graphs.emplace_back("chained_wide", ChainedDag(24, 10, 2.2, 42));
  graphs.emplace_back("chained_sparse", ChainedDag(4, 60, 1.5, 43));
  graphs.emplace_back("tree", RandomTree(200, 44));
  graphs.emplace_back("layered", LayeredDag(6, 8, 0.35, 45));
  graphs.emplace_back("hub", HubDag(40, 5, 36, 46));
  graphs.emplace_back("random_sparse", RandomDag(120, 1.2, 47));
  graphs.emplace_back("intermediary", BipartiteWithIntermediary(16, 16));
  graphs.emplace_back("single_chain", ChainedDag(1, 40, 0.975, 48));
  return graphs;
}

TEST(ChainDifferentialTest, ChainLabelingBitIdenticalToGenericPropagator) {
  for (const auto& [name, graph] : ChainAdversarialGraphs()) {
    for (const auto& [gap, reserve] :
         {std::pair<Label, Label>{1, 0}, std::pair<Label, Label>{64, 16}}) {
      LabelingOptions options;
      options.gap = gap;
      options.reserve = reserve;
      auto chain = BuildChainLabeling(graph, options);
      ASSERT_TRUE(chain.ok()) << name << ": " << chain.status().message();

      // The generic propagator over the SAME cover is the oracle.
      auto generic = BuildLabels(graph, chain->cover, options);
      ASSERT_TRUE(generic.ok()) << name;
      ASSERT_EQ(chain->labels.postorder, generic->postorder)
          << name << " gap=" << gap;
      ASSERT_EQ(chain->labels.tree_interval, generic->tree_interval)
          << name << " gap=" << gap;
      ASSERT_EQ(chain->labels.intervals.size(), generic->intervals.size())
          << name;
      for (size_t v = 0; v < generic->intervals.size(); ++v) {
        ASSERT_EQ(chain->labels.intervals[v], generic->intervals[v])
            << name << " gap=" << gap << " node " << v;
      }
      EXPECT_EQ(chain->labels.gap, gap);
      EXPECT_EQ(chain->labels.reserve, reserve);

      // The pre-sorted directory must be exactly (postorder, node)
      // ascending — the exporter trusts it without re-sorting.
      ASSERT_EQ(chain->sorted_directory.size(),
                static_cast<size_t>(graph.NumNodes()))
          << name;
      for (size_t i = 0; i < chain->sorted_directory.size(); ++i) {
        const auto [p, v] = chain->sorted_directory[i];
        ASSERT_EQ(p, chain->labels.postorder[v]) << name << " dir " << i;
        if (i > 0) {
          ASSERT_LT(chain->sorted_directory[i - 1].first, p)
              << name << " dir order " << i;
        }
      }
    }
  }
}

TEST(ChainDifferentialTest, ChainBuiltSnapshotMatchesGroundTruth) {
  for (const auto& [name, graph] : ChainAdversarialGraphs()) {
    auto dynamic = DynamicClosure::BuildWithChains(graph);
    ASSERT_TRUE(dynamic.ok()) << name << ": " << dynamic.status().message();
    EXPECT_TRUE(dynamic->UsesChainCover()) << name;

    const CompressedClosure snapshot = dynamic->ExportClosure();
    const ReferenceClosure ref(snapshot.labels());
    ExpectMatchesReference(snapshot, ref, name);
    ExpectBatchMatchesReference(snapshot, ref, 600, name);

    const ReachabilityMatrix truth(graph);
    for (NodeId u = 0; u < graph.NumNodes(); ++u) {
      for (NodeId v = 0; v < graph.NumNodes(); ++v) {
        ASSERT_EQ(snapshot.Reaches(u, v), truth.Reaches(u, v))
            << name << " chain ground truth " << u << "->" << v;
      }
    }

    // Re-tightening with the Alg1 optimal cover (the publish cadence's
    // upgrade step) keeps answers identical and never grows the label.
    const int64_t chain_intervals = snapshot.TotalIntervals();
    dynamic->Reoptimize();
    EXPECT_FALSE(dynamic->UsesChainCover()) << name;
    const CompressedClosure optimal = dynamic->ExportClosure();
    EXPECT_LE(optimal.TotalIntervals(), chain_intervals) << name;
    for (NodeId u = 0; u < graph.NumNodes(); ++u) {
      for (NodeId v = 0; v < graph.NumNodes(); ++v) {
        ASSERT_EQ(optimal.Reaches(u, v), truth.Reaches(u, v))
            << name << " reoptimized " << u << "->" << v;
      }
    }
  }
}

// WithDelta overlay chains on a chain-fast base: the delta pipeline must
// be oblivious to which cover built the base labels.
TEST(ChainDifferentialTest, OverlayChainOnChainFastBaseStaysExact) {
  for (const bool query_only_base : {false, true}) {
    auto dynamic = DynamicClosure::BuildWithChains(ChainedDag(6, 12, 2.5, 71));
    ASSERT_TRUE(dynamic.ok());
    ASSERT_TRUE(dynamic->UsesChainCover());

    CompressedClosure snapshot = dynamic->ExportClosure(
        /*runner=*/nullptr, /*retain_labels=*/!query_only_base);
    dynamic->MarkClean();

    Random rng(173);
    for (int round = 0; round < 5; ++round) {
      for (int i = 0; i < 5; ++i) {
        const NodeId u =
            static_cast<NodeId>(rng.Uniform(dynamic->NumNodes()));
        const NodeId v =
            static_cast<NodeId>(rng.Uniform(dynamic->NumNodes()));
        (void)dynamic->AddArc(u, v);  // Cycles/duplicates are fine to drop.
      }
      ASSERT_TRUE(dynamic
                      ->AddLeafUnder(static_cast<NodeId>(
                          rng.Uniform(dynamic->NumNodes())))
                      .ok());

      ClosureDelta delta = dynamic->ExportDelta();
      snapshot = CompressedClosure::WithDelta(snapshot, delta);
      ASSERT_TRUE(snapshot.IsOverlay());

      const CompressedClosure full = dynamic->ExportClosure();
      const ReferenceClosure ref(full.labels());
      ExpectMatchesReference(snapshot, ref,
                             query_only_base ? "chain overlay(query-only)"
                                             : "chain overlay");
      ExpectBatchMatchesReference(snapshot, ref, 700 + round,
                                  "chain overlay batch");

      const ReachabilityMatrix truth(dynamic->graph());
      for (NodeId u = 0; u < dynamic->NumNodes(); ++u) {
        for (NodeId v = 0; v < dynamic->NumNodes(); ++v) {
          ASSERT_EQ(snapshot.Reaches(u, v), truth.Reaches(u, v))
              << "chain overlay ground truth " << u << "->" << v;
        }
      }
    }
  }
}

// The analyzer's verdicts on canonical shapes, and the entry-cap
// backstop on the one shape engineered to trip it.
TEST(ChainDifferentialTest, EligibilityAndEntryCapBackstop) {
  // Chain-structured: few chains, eligible.
  auto chained = AnalyzeChains(ChainedDag(8, 100, 2.5, 81));
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(chained->num_chains, 8);
  EXPECT_TRUE(chained->eligible);

  // Random degree-3: the greedy cover fragments far past n/16.
  auto random = AnalyzeChains(RandomDag(500, 3.0, 82));
  ASSERT_TRUE(random.ok());
  EXPECT_FALSE(random->eligible);
  EXPECT_GT(random->num_chains,
            static_cast<int>(500 * kMaxChainWidthFraction));

  // Cyclic input is a precondition failure, mirroring BuildLabels.
  Digraph cyclic(2);
  ASSERT_TRUE(cyclic.AddArc(0, 1).ok());
  ASSERT_TRUE(cyclic.AddArc(1, 0).ok());
  EXPECT_EQ(AnalyzeChains(cyclic).status().code(),
            StatusCode::kFailedPrecondition);

  // A dense bipartite shape fans every source-side chain into every
  // sink: with enough chains the per-node emission blows through
  // kMaxChainEntriesPerNode and the build must abort, not degrade.
  const Digraph bipartite = CompleteBipartite(120, 120);
  auto build = BuildChainLabeling(bipartite, LabelingOptions{});
  ASSERT_FALSE(build.ok());
  EXPECT_EQ(build.status().code(), StatusCode::kResourceExhausted);
  // The service-facing wrapper falls back to the Alg1 path instead.
  auto fallback = DynamicClosure::BuildWithChains(bipartite);
  ASSERT_FALSE(fallback.ok());
}

}  // namespace
}  // namespace trel
