// Differential fuzz suite for the flat LabelArena query path: every
// query the arena answers (Reaches, BatchReaches, Successors,
// CountSuccessors, Predecessors) must agree with a naive per-node
// IntervalSet reference evaluated over the same labeling, across
// randomized DAGs, gap-numbered labelings, query-only exports, and
// WithDelta overlay chains.  The reference never touches the arena —
// it reads NodeLabels directly — so a layout bug anywhere in the arena
// (Eytzinger runs, coverage filters, directory) trips it.

#include <algorithm>
#include <cstring>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/compressed_closure.h"
#include "core/dynamic_closure.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/reachability.h"

namespace trel {
namespace {

// Answers every query shape straight off the per-node labels, the way
// the paper defines them: u reaches v iff some interval of u contains
// v's postorder number.
class ReferenceClosure {
 public:
  explicit ReferenceClosure(const NodeLabels& labels) : labels_(labels) {}

  bool Reaches(NodeId u, NodeId v) const {
    return u == v || labels_.intervals[u].Contains(labels_.postorder[v]);
  }

  // Ascending postorder-number order, matching the closure's contract.
  std::vector<NodeId> Successors(NodeId u) const {
    std::vector<NodeId> out;
    for (NodeId w = 0; w < NumNodes(); ++w) {
      if (w != u && labels_.intervals[u].Contains(labels_.postorder[w])) {
        out.push_back(w);
      }
    }
    std::sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
      return labels_.postorder[a] < labels_.postorder[b];
    });
    return out;
  }

  // Ascending node id, matching the closure's arena sweep.
  std::vector<NodeId> Predecessors(NodeId v) const {
    std::vector<NodeId> out;
    for (NodeId u = 0; u < NumNodes(); ++u) {
      if (u != v && labels_.intervals[u].Contains(labels_.postorder[v])) {
        out.push_back(u);
      }
    }
    return out;
  }

  NodeId NumNodes() const {
    return static_cast<NodeId>(labels_.postorder.size());
  }

 private:
  const NodeLabels& labels_;
};

// Every query shape, all pairs, closure vs reference.
void ExpectMatchesReference(const CompressedClosure& closure,
                            const ReferenceClosure& ref,
                            const char* what) {
  ASSERT_EQ(closure.NumNodes(), ref.NumNodes()) << what;
  const NodeId n = closure.NumNodes();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(closure.Reaches(u, v), ref.Reaches(u, v))
          << what << " Reaches " << u << "->" << v;
    }
    const std::vector<NodeId> succ = ref.Successors(u);
    ASSERT_EQ(closure.Successors(u), succ) << what << " Successors " << u;
    ASSERT_EQ(closure.CountSuccessors(u), static_cast<int64_t>(succ.size()))
        << what << " CountSuccessors " << u;
    ASSERT_EQ(closure.Predecessors(u), ref.Predecessors(u))
        << what << " Predecessors " << u;
  }
}

// Random pairs including out-of-range ids and duplicates on purpose,
// large enough to cross the grouped-kernel threshold.
std::vector<std::pair<NodeId, NodeId>> FuzzPairs(NodeId n, uint64_t seed,
                                                 int64_t count) {
  Random rng(seed);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  for (int64_t i = 0; i < count; ++i) {
    // Draw from [-2, n+1] so invalid ids show up on both sides.
    const NodeId u = static_cast<NodeId>(rng.Uniform(n + 4)) - 2;
    const NodeId v = static_cast<NodeId>(rng.Uniform(n + 4)) - 2;
    pairs.emplace_back(u, v);
  }
  return pairs;
}

// BatchReaches snapshot semantics: invalid ids answer 0, never abort.
void ExpectBatchMatchesReference(const CompressedClosure& closure,
                                 const ReferenceClosure& ref, uint64_t seed,
                                 const char* what) {
  const NodeId n = closure.NumNodes();
  // 2048 pairs exercises the grouped kernel; 64 the per-query path.
  for (const int64_t count : {int64_t{64}, int64_t{2048}}) {
    const auto pairs = FuzzPairs(n, seed, count);
    const std::vector<uint8_t> got = closure.BatchReaches(pairs);
    ASSERT_EQ(static_cast<int64_t>(got.size()), count) << what;
    for (int64_t i = 0; i < count; ++i) {
      const auto [u, v] = pairs[i];
      const bool valid = closure.IsValidNode(u) && closure.IsValidNode(v);
      const uint8_t expected = valid && ref.Reaches(u, v) ? 1 : 0;
      ASSERT_EQ(got[i], expected)
          << what << " batch[" << count << "] " << u << "->" << v;
    }
  }
}

class ArenaDifferentialTest : public ::testing::TestWithParam<
                                  std::tuple<int, double, Label, uint64_t>> {};

// The core property: a closure built over a randomized DAG — with and
// without postorder gaps — answers exactly like the IntervalSet
// reference over its own labels.
TEST_P(ArenaDifferentialTest, ArenaAgreesWithIntervalSetReference) {
  const auto& [nodes, degree, gap, seed] = GetParam();
  const Digraph graph = RandomDag(nodes, degree, seed);

  ClosureOptions options;
  options.labeling.gap = gap;
  options.labeling.reserve = gap > 4 ? 3 : 0;
  auto built = CompressedClosure::Build(graph, options);
  ASSERT_TRUE(built.ok()) << built.status().message();

  const ReferenceClosure ref(built->labels());
  ExpectMatchesReference(*built, ref, "build");
  ExpectBatchMatchesReference(*built, ref, seed * 31 + 7, "build");

  // Cross-check the labeling itself against DFS ground truth, so a
  // labeling bug can't hide behind a reference evaluated on the same
  // (broken) labels.
  const ReachabilityMatrix truth(graph);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      ASSERT_EQ(built->Reaches(u, v), truth.Reaches(u, v))
          << "ground truth " << u << "->" << v;
    }
  }
}

// FromPartsQueryOnly must be query-for-query identical to FromParts on
// the same labeling, while dropping the per-node storage.
TEST_P(ArenaDifferentialTest, QueryOnlyExportAgrees) {
  const auto& [nodes, degree, gap, seed] = GetParam();
  const Digraph graph = RandomDag(nodes, degree, seed);
  ClosureOptions options;
  options.labeling.gap = gap;
  auto built = CompressedClosure::Build(graph, options);
  ASSERT_TRUE(built.ok()) << built.status().message();

  NodeLabels labels = built->labels();
  TreeCover cover = built->tree_cover();
  const CompressedClosure query_only =
      CompressedClosure::FromPartsQueryOnly(labels, cover);
  EXPECT_FALSE(query_only.HasLabels());
  EXPECT_TRUE(built->HasLabels());
  EXPECT_EQ(query_only.TotalIntervals(), built->TotalIntervals());

  const ReferenceClosure ref(labels);
  ExpectMatchesReference(query_only, ref, "query_only");
  ExpectBatchMatchesReference(query_only, ref, seed * 17 + 3, "query_only");
  for (NodeId v = 0; v < query_only.NumNodes(); ++v) {
    ASSERT_EQ(query_only.IntervalCountOf(v), labels.intervals[v].size())
        << "IntervalCountOf " << v;
    ASSERT_EQ(query_only.PostorderOf(v), labels.postorder[v])
        << "PostorderOf " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ArenaDifferentialTest,
    ::testing::Values(
        // (nodes, avg degree, postorder gap, seed)
        std::make_tuple(90, 1.5, Label{1}, uint64_t{11}),
        std::make_tuple(90, 1.5, Label{1}, uint64_t{12}),
        std::make_tuple(60, 5.0, Label{1}, uint64_t{13}),   // interval-heavy
        std::make_tuple(90, 2.0, Label{64}, uint64_t{14}),  // gap-numbered
        std::make_tuple(60, 4.0, Label{64}, uint64_t{15}),
        std::make_tuple(120, 0.8, Label{7}, uint64_t{16})),  // forest-like
    [](const ::testing::TestParamInfo<std::tuple<int, double, Label, uint64_t>>&
           info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_gap" +
             std::to_string(std::get<2>(info.param)) + "_seed" +
             std::to_string(std::get<3>(info.param));
    });

// A chain of WithDelta overlays over a mutating index must keep
// answering like (a) the IntervalSet reference over the index's current
// labels and (b) DFS ground truth on the current graph — for overlays
// based on both full and query-only exports.
TEST(ArenaOverlayDifferentialTest, OverlayChainAgreesWithReference) {
  for (const bool query_only_base : {false, true}) {
    auto dynamic = DynamicClosure::Build(RandomDag(60, 1.5, 21));
    ASSERT_TRUE(dynamic.ok());

    CompressedClosure snapshot = dynamic->ExportClosure(
        /*runner=*/nullptr, /*retain_labels=*/!query_only_base);
    dynamic->MarkClean();

    Random rng(97);
    for (int round = 0; round < 6; ++round) {
      // Mutate: a few random arcs plus the occasional new leaf, so the
      // delta carries both relabeled and brand-new nodes.
      for (int i = 0; i < 5; ++i) {
        const NodeId u =
            static_cast<NodeId>(rng.Uniform(dynamic->NumNodes()));
        const NodeId v =
            static_cast<NodeId>(rng.Uniform(dynamic->NumNodes()));
        (void)dynamic->AddArc(u, v);  // Cycles/duplicates are fine to drop.
      }
      ASSERT_TRUE(dynamic
                      ->AddLeafUnder(static_cast<NodeId>(
                          rng.Uniform(dynamic->NumNodes())))
                      .ok());

      ClosureDelta delta = dynamic->ExportDelta();
      snapshot = CompressedClosure::WithDelta(snapshot, delta);
      ASSERT_TRUE(snapshot.IsOverlay());

      // Reference labels come from a fresh full export of the same index
      // state; the overlay must agree with them query for query.
      const CompressedClosure full = dynamic->ExportClosure();
      const ReferenceClosure ref(full.labels());
      ExpectMatchesReference(
          snapshot, ref, query_only_base ? "overlay(query-only)" : "overlay");
      ExpectBatchMatchesReference(snapshot, ref, 400 + round,
                                  "overlay batch");

      const ReachabilityMatrix truth(dynamic->graph());
      for (NodeId u = 0; u < dynamic->NumNodes(); ++u) {
        for (NodeId v = 0; v < dynamic->NumNodes(); ++v) {
          ASSERT_EQ(snapshot.Reaches(u, v), truth.Reaches(u, v))
              << "overlay ground truth " << u << "->" << v;
        }
      }
    }
  }
}

// Sharding the arena build across threads must produce the identical
// arena, byte for byte: same slots, extras (Eytzinger runs + summaries),
// coverage filters, and directory.
TEST(ArenaParallelBuildTest, ParallelBuildIsDeterministic) {
  // Above kParallelBuildFloor (1 << 14) so the runner actually shards.
  const Digraph graph = RandomDag(20000, 2.0, 31);
  auto built = CompressedClosure::Build(graph);
  ASSERT_TRUE(built.ok());
  NodeLabels labels = built->labels();
  TreeCover cover = built->tree_cover();

  const ParallelRunner runner =
      [](int64_t count, const std::function<void(int64_t, int64_t)>& body) {
        constexpr int kThreads = 4;
        const int64_t chunk = (count + kThreads - 1) / kThreads;
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
          const int64_t begin = t * chunk;
          const int64_t end = std::min<int64_t>(count, begin + chunk);
          if (begin >= end) break;
          threads.emplace_back([&body, begin, end] { body(begin, end); });
        }
        for (std::thread& t : threads) t.join();
      };

  CompressedClosure::ExportHints hints;
  hints.runner = &runner;
  const CompressedClosure sharded =
      CompressedClosure::FromPartsQueryOnly(labels, cover, std::move(hints));
  const CompressedClosure serial =
      CompressedClosure::FromPartsQueryOnly(labels, cover);

  const LabelArena& a = sharded.arena();
  const LabelArena& b = serial.arena();
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.extras.size(), b.extras.size());
  EXPECT_EQ(std::memcmp(a.slots.data(), b.slots.data(),
                        a.slots.size() * sizeof(LabelArena::NodeSlot)),
            0);
  EXPECT_EQ(std::memcmp(a.extras.data(), b.extras.data(),
                        a.extras.size() * sizeof(Interval)),
            0);
  EXPECT_EQ(a.filters, b.filters);
  EXPECT_EQ(a.dir_labels, b.dir_labels);
  EXPECT_EQ(a.dir_nodes, b.dir_nodes);

  // Spot-check queries on the sharded build against the reference.
  const ReferenceClosure ref(labels);
  Random rng(77);
  for (int i = 0; i < 20000; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(sharded.NumNodes()));
    const NodeId v = static_cast<NodeId>(rng.Uniform(sharded.NumNodes()));
    ASSERT_EQ(sharded.Reaches(u, v), ref.Reaches(u, v))
        << "sharded " << u << "->" << v;
  }
}

}  // namespace
}  // namespace trel
