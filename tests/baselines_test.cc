#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/chain_cover.h"
#include "baselines/full_closure.h"
#include "baselines/inverse_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "tests/test_util.h"

namespace trel {
namespace {

using testing_util::GraphFromArcs;

TEST(FullClosureTest, MatchesDfsAndCountsPairs) {
  Digraph graph = testing_util::PaperStyleDag();
  FullClosure closure(graph);
  ReachabilityMatrix matrix(graph);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      EXPECT_EQ(closure.Reaches(u, v), matrix.Reaches(u, v));
    }
  }
  EXPECT_EQ(closure.StorageUnits(), matrix.NumClosurePairs());
}

TEST(InverseClosureTest, RejectsCycles) {
  Digraph graph = GraphFromArcs(2, {{0, 1}, {1, 0}});
  EXPECT_FALSE(InverseClosure::Build(graph).ok());
}

TEST(InverseClosureTest, MatchesGroundTruth) {
  Digraph graph = RandomDag(60, 3.0, 40);
  auto inverse = InverseClosure::Build(graph);
  ASSERT_TRUE(inverse.ok());
  ReachabilityMatrix matrix(graph);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      EXPECT_EQ(inverse->Reaches(u, v), matrix.Reaches(u, v))
          << u << "->" << v;
    }
  }
}

TEST(InverseClosureTest, StorageIsComplementOfClosure) {
  Digraph graph = RandomDag(50, 4.0, 41);
  auto inverse = InverseClosure::Build(graph);
  ASSERT_TRUE(inverse.ok());
  ReachabilityMatrix matrix(graph);
  const int64_t n = graph.NumNodes();
  // Pairs ordered by topological position: n(n-1)/2 total; reachable ones
  // are in the closure, the rest are in the inverse.
  EXPECT_EQ(inverse->NumInversePairs() + matrix.NumClosurePairs(),
            n * (n - 1) / 2);
}

TEST(InverseClosureTest, DenseGraphHasTinyInverse) {
  // Near-complete order: closure holds almost everything.
  Digraph graph = RandomDag(40, 100.0, 42);  // Capped at the maximum.
  auto inverse = InverseClosure::Build(graph);
  ASSERT_TRUE(inverse.ok());
  EXPECT_EQ(inverse->NumInversePairs(), 0);
}

TEST(ChainCoverTest, RejectsCycles) {
  Digraph graph = GraphFromArcs(2, {{0, 1}, {1, 0}});
  EXPECT_FALSE(ChainCover::Build(graph).ok());
}

TEST(ChainCoverTest, PathIsOneChain) {
  Digraph graph = GraphFromArcs(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  for (auto method :
       {ChainCover::Method::kGreedy, ChainCover::Method::kMinimum}) {
    auto cover = ChainCover::Build(graph, method);
    ASSERT_TRUE(cover.ok());
    EXPECT_EQ(cover->NumChains(), 1);
    EXPECT_EQ(cover->StorageUnits(), 5);  // One entry per node.
  }
}

TEST(ChainCoverTest, AntichainNeedsOneChainPerNode) {
  Digraph graph(6);  // No arcs at all.
  auto cover = ChainCover::Build(graph, ChainCover::Method::kMinimum);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->NumChains(), 6);
  EXPECT_EQ(cover->StorageUnits(), 6);
}

TEST(ChainCoverTest, MinimumMatchesDilworthOnDiamond) {
  // Diamond: width 2.
  Digraph graph = GraphFromArcs(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  auto cover = ChainCover::Build(graph, ChainCover::Method::kMinimum);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->NumChains(), 2);
}

class ChainCoverSweepTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, ChainCover::Method>> {
};

TEST_P(ChainCoverSweepTest, MatchesGroundTruth) {
  const auto& [seed, method] = GetParam();
  Digraph graph = RandomDag(45, 2.0, seed);
  auto cover = ChainCover::Build(graph, method);
  ASSERT_TRUE(cover.ok());
  ReachabilityMatrix matrix(graph);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      EXPECT_EQ(cover->Reaches(u, v), matrix.Reaches(u, v))
          << u << "->" << v;
    }
  }
  // Every node sits on exactly one chain with a consistent sequence.
  std::vector<std::vector<NodeId>> chains(cover->NumChains());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    ASSERT_GE(cover->ChainOf(v), 0);
    ASSERT_LT(cover->ChainOf(v), cover->NumChains());
    chains[cover->ChainOf(v)].push_back(v);
  }
  for (auto& chain : chains) {
    std::sort(chain.begin(), chain.end(), [&](NodeId a, NodeId b) {
      return cover->SeqOf(a) < cover->SeqOf(b);
    });
    for (size_t k = 0; k + 1 < chain.size(); ++k) {
      EXPECT_TRUE(matrix.Reaches(chain[k], chain[k + 1]))
          << "chain order violated";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ChainCoverSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(ChainCover::Method::kGreedy,
                                         ChainCover::Method::kMinimum)));

TEST(ChainCoverTest, MinimumNeverUsesMoreChainsThanGreedy) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Digraph graph = RandomDag(40, 1.5, seed);
    auto greedy = ChainCover::Build(graph, ChainCover::Method::kGreedy);
    auto minimum = ChainCover::Build(graph, ChainCover::Method::kMinimum);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(minimum.ok());
    EXPECT_LE(minimum->NumChains(), greedy->NumChains());
  }
}

}  // namespace
}  // namespace trel
