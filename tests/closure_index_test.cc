#include "core/closure_index.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "tests/test_util.h"

namespace trel {
namespace {

using testing_util::GraphFromArcs;

TEST(TransitiveClosureIndexTest, HandlesSimpleCycle) {
  Digraph graph = GraphFromArcs(4, {{0, 1}, {1, 2}, {2, 1}, {2, 3}});
  auto index = TransitiveClosureIndex::Build(graph);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->NumComponents(), 3);
  EXPECT_TRUE(index->Reaches(1, 2));
  EXPECT_TRUE(index->Reaches(2, 1));  // Inside the SCC.
  EXPECT_TRUE(index->Reaches(0, 3));
  EXPECT_FALSE(index->Reaches(3, 0));
}

TEST(TransitiveClosureIndexTest, SuccessorsIncludeCycleMembers) {
  Digraph graph = GraphFromArcs(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  auto index = TransitiveClosureIndex::Build(graph);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->Successors(0), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(index->Successors(3), (std::vector<NodeId>{}));
}

TEST(TransitiveClosureIndexTest, AcyclicInputDegeneratesToPlainClosure) {
  Digraph graph = testing_util::PaperStyleDag();
  auto index = TransitiveClosureIndex::Build(graph);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->NumComponents(), graph.NumNodes());
  ReachabilityMatrix matrix(graph);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      EXPECT_EQ(index->Reaches(u, v), matrix.Reaches(u, v));
    }
  }
}

// Random digraphs with cycles: index must agree with DFS ground truth.
class CyclicSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CyclicSweepTest, MatchesGroundTruth) {
  Random rng(GetParam());
  const NodeId n = 30;
  Digraph graph(n);
  // ~2.5 arcs per node, unrestricted direction => plenty of cycles.
  for (int k = 0; k < 75; ++k) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(n));
    const NodeId b = static_cast<NodeId>(rng.Uniform(n));
    if (a != b && !graph.HasArc(a, b)) {
      ASSERT_TRUE(graph.AddArc(a, b).ok());
    }
  }
  auto index = TransitiveClosureIndex::Build(graph);
  ASSERT_TRUE(index.ok());
  ReachabilityMatrix matrix(graph);
  for (NodeId u = 0; u < n; ++u) {
    std::vector<NodeId> expected;
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(index->Reaches(u, v), matrix.Reaches(u, v))
          << u << "->" << v;
      if (u != v && matrix.Reaches(u, v)) expected.push_back(v);
    }
    EXPECT_EQ(index->Successors(u), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CyclicSweepTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace trel
