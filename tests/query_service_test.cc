// QueryService: snapshot semantics, batch fan-out, and the concurrent
// reader/writer contract.  The concurrency tests here are the TSan
// targets run by tools/ci.sh.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "service/query_service.h"

namespace trel {
namespace {

ServiceOptions SmallBatchOptions() {
  ServiceOptions options;
  options.num_workers = 3;
  options.min_parallel_batch = 8;  // Force the parallel path in tests.
  return options;
}

TEST(QueryServiceTest, EmptyServiceAnswersNothing) {
  QueryService service;
  EXPECT_EQ(service.Snapshot()->epoch, 0u);
  EXPECT_EQ(service.Snapshot()->NumNodes(), 0);
  EXPECT_FALSE(service.Reaches(0, 0));
  EXPECT_TRUE(service.Successors(0).empty());
}

TEST(QueryServiceTest, LoadedSnapshotMatchesGroundTruth) {
  Digraph graph = RandomDag(120, 2.5, 77);
  ReachabilityMatrix matrix(graph);
  QueryService service;
  ASSERT_TRUE(service.Load(graph).ok());
  auto snapshot = service.Snapshot();
  EXPECT_EQ(snapshot->epoch, 1u);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      ASSERT_EQ(snapshot->Reaches(u, v), matrix.Reaches(u, v))
          << u << "->" << v;
    }
    std::vector<NodeId> successors = snapshot->Successors(u);
    std::sort(successors.begin(), successors.end());
    ASSERT_EQ(successors, matrix.Successors(u)) << "node " << u;
  }
  // Publication stats came along.
  EXPECT_EQ(snapshot->stats.num_nodes, graph.NumNodes());
  EXPECT_EQ(snapshot->stats.total_intervals,
            snapshot->closure.TotalIntervals());
}

TEST(QueryServiceTest, LoadRejectsCyclicGraph) {
  Digraph graph(2);
  ASSERT_TRUE(graph.AddArc(0, 1).ok());
  ASSERT_TRUE(graph.AddArc(1, 0).ok());
  QueryService service;
  EXPECT_FALSE(service.Load(graph).ok());
  EXPECT_EQ(service.Snapshot()->epoch, 0u);  // Failed load publishes nothing.
}

TEST(QueryServiceTest, BatchReachesMatchesSingles) {
  Digraph graph = RandomDag(200, 2.0, 78);
  QueryService service(SmallBatchOptions());
  ASSERT_TRUE(service.Load(graph).ok());
  auto snapshot = service.Snapshot();

  Random rng(5);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 5000; ++i) {
    // Include out-of-range ids: snapshot semantics, not aborts.
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(220)),
                       static_cast<NodeId>(rng.Uniform(220)));
  }
  std::vector<uint8_t> got = service.BatchReaches(pairs);
  ASSERT_EQ(got.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(got[i] != 0, snapshot->Reaches(pairs[i].first, pairs[i].second))
        << pairs[i].first << "->" << pairs[i].second;
  }
}

TEST(QueryServiceTest, BatchSuccessorsMatchesSingles) {
  Digraph graph = RandomDag(150, 2.0, 79);
  QueryService service(SmallBatchOptions());
  ASSERT_TRUE(service.Load(graph).ok());
  auto snapshot = service.Snapshot();

  std::vector<NodeId> nodes;
  for (NodeId u = -5; u < 160; ++u) nodes.push_back(u);
  std::vector<std::vector<NodeId>> got = service.BatchSuccessors(nodes);
  ASSERT_EQ(got.size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    ASSERT_EQ(got[i], snapshot->Successors(nodes[i])) << "node " << nodes[i];
  }
}

TEST(QueryServiceTest, UpdatesInvisibleUntilPublish) {
  QueryService service;
  auto root = service.AddLeafUnder(kNoNode);
  ASSERT_TRUE(root.ok());
  auto child = service.AddLeafUnder(root.value());
  ASSERT_TRUE(child.ok());

  // Readers still see the empty epoch-0 snapshot.
  EXPECT_EQ(service.Snapshot()->NumNodes(), 0);
  EXPECT_FALSE(service.Reaches(root.value(), child.value()));

  auto old_snapshot = service.Snapshot();
  EXPECT_EQ(service.Publish(), 1u);
  EXPECT_TRUE(service.Reaches(root.value(), child.value()));
  EXPECT_FALSE(service.Reaches(child.value(), root.value()));

  // The superseded snapshot is still alive and unchanged for its holder.
  EXPECT_EQ(old_snapshot->epoch, 0u);
  EXPECT_EQ(old_snapshot->NumNodes(), 0);
}

TEST(QueryServiceTest, ApplyRunsCompoundUpdates) {
  Digraph graph = RandomDag(40, 1.5, 80);
  QueryService service;
  ASSERT_TRUE(service.Load(graph).ok());
  ASSERT_TRUE(service
                  .Apply([](DynamicClosure& dynamic) {
                    TREL_ASSIGN_OR_RETURN(NodeId leaf,
                                          dynamic.AddLeafUnder(0));
                    return dynamic.AddArc(1, leaf);
                  })
                  .ok());
  service.Publish();
  auto snapshot = service.Snapshot();
  const NodeId leaf = snapshot->NumNodes() - 1;
  EXPECT_TRUE(snapshot->Reaches(0, leaf));
  EXPECT_TRUE(snapshot->Reaches(1, leaf));
}

TEST(QueryServiceTest, MetricsCountQueriesAndPublishes) {
  Digraph graph = RandomDag(50, 2.0, 81);
  QueryService service(SmallBatchOptions());
  ASSERT_TRUE(service.Load(graph).ok());
  (void)service.Reaches(0, 1);
  (void)service.BatchReaches({{0, 1}, {1, 2}, {2, 3}});
  (void)service.BatchSuccessors({0, 1});
  service.Publish();

  ServiceMetrics::View view = service.Metrics();
  EXPECT_EQ(view.reach_queries, 4);
  EXPECT_EQ(view.successor_queries, 2);
  EXPECT_EQ(view.batches, 2);
  EXPECT_EQ(view.publishes, 3);  // Construction + Load + explicit Publish.
  EXPECT_EQ(view.current_epoch, 2u);
  EXPECT_EQ(view.snapshot_num_nodes, 50);
  EXPECT_GE(view.snapshot_age_seconds, 0.0);
  EXPECT_FALSE(view.ToString().empty());
  int64_t histogram_total = 0;
  for (int64_t bucket : view.batch_latency_histogram) {
    histogram_total += bucket;
  }
  EXPECT_EQ(histogram_total, view.batches);
}

// --- Admission control ------------------------------------------------------

// Clears TREL_INDEX for the enclosing scope so tests that exercise
// ServiceOptions::index_family directly aren't overridden when the whole
// binary reruns under tools/ci.sh --family-matrix.
class ScopedClearIndexEnv {
 public:
  ScopedClearIndexEnv() {
    const char* value = std::getenv("TREL_INDEX");
    if (value != nullptr) saved_ = value;
    unsetenv("TREL_INDEX");
  }
  ~ScopedClearIndexEnv() {
    if (saved_.has_value()) setenv("TREL_INDEX", saved_->c_str(), 1);
  }

 private:
  std::optional<std::string> saved_;
};

// Every forced index family (and auto) must serve the exact same answers
// through the full service stack — singles, batches, and after delta
// publishes that overlay the carried family index.  tools/ci.sh
// --family-matrix additionally reruns this whole binary under each
// TREL_INDEX value, which exercises the env override path.
TEST(QueryServiceFamilyTest, EveryFamilyServesExactAnswers) {
  ScopedClearIndexEnv clear_env;
  const Digraph graph = HubDag(40, 5, 36, 31);
  for (const IndexFamilySetting setting :
       {IndexFamilySetting::kAuto, IndexFamilySetting::kForceIntervals,
        IndexFamilySetting::kForceTrees, IndexFamilySetting::kForceHop}) {
    ServiceOptions options = SmallBatchOptions();
    options.index_family = setting;
    QueryService service(options);
    ASSERT_TRUE(service.Load(graph).ok());

    ReachabilityMatrix truth(graph);
    std::vector<std::pair<NodeId, NodeId>> pairs;
    for (NodeId u = 0; u < graph.NumNodes(); ++u) {
      for (NodeId v = 0; v < graph.NumNodes(); ++v) pairs.emplace_back(u, v);
    }
    std::vector<uint8_t> batch = service.BatchReaches(pairs);
    for (size_t i = 0; i < pairs.size(); ++i) {
      const auto [u, v] = pairs[i];
      ASSERT_EQ(service.Reaches(u, v), truth.Reaches(u, v))
          << static_cast<int>(setting) << " " << u << "->" << v;
      ASSERT_EQ(batch[i] != 0, truth.Reaches(u, v))
          << static_cast<int>(setting) << " batch " << u << "->" << v;
    }

    // Mutate + publish (likely a delta): the carried family index must
    // keep agreeing with fresh ground truth.
    // Source 1 has no shortcut arc (only every 16th source does), so this
    // arc is guaranteed new.
    ASSERT_TRUE(service.AddArc(1, graph.NumNodes() - 1).ok());
    auto leaf = service.AddLeafUnder(1);
    ASSERT_TRUE(leaf.ok());
    service.Publish();
    const auto snapshot = service.Snapshot();
    for (NodeId u = 0; u < snapshot->NumNodes(); ++u) {
      for (NodeId v = 0; v < snapshot->NumNodes(); ++v) {
        const bool want = u == v || (u == 1 && v == graph.NumNodes() - 1) ||
                          (u < graph.NumNodes() && v < graph.NumNodes() &&
                           truth.Reaches(u, v)) ||
                          (v == *leaf && (u == 1 || truth.Reaches(u, 1)));
        ASSERT_EQ(snapshot->Reaches(u, v), want)
            << static_cast<int>(setting) << " post-delta " << u << "->" << v;
      }
    }
  }
}

TEST(QueryServiceFamilyTest, SelectionIsRecordedInMetrics) {
  ScopedClearIndexEnv clear_env;
  // Hub-dominated graph: auto must pick hop and say so in metrics.
  ServiceOptions options;
  options.num_workers = 0;
  QueryService service(options);
  ASSERT_TRUE(service.Load(HubDag(400, 6, 300, 6)).ok());
  ServiceMetrics::View view = service.Metrics();
  EXPECT_EQ(view.index_family_name, "hop");
  EXPECT_EQ(view.index_family, static_cast<int>(IndexFamily::kHop));
  EXPECT_GT(view.family_label_bytes, 0);
  EXPECT_LT(view.family_label_bytes, view.snapshot_arena_bytes);
  EXPECT_GT(view.family_selects[static_cast<int>(IndexFamily::kHop)], 0);

  // Standard sparse random DAG: auto stays on intervals.
  ASSERT_TRUE(service.Load(RandomDag(2000, 4.0, 5)).ok());
  view = service.Metrics();
  EXPECT_EQ(view.index_family_name, "intervals");
  EXPECT_EQ(view.family_label_bytes, view.snapshot_arena_bytes);
  EXPECT_GT(view.family_selects[static_cast<int>(IndexFamily::kIntervals)],
            0);
}

// --- Publish strategies -----------------------------------------------------

// Clears TREL_PUBLISH for the enclosing scope so tests that exercise
// ServiceOptions::publish_strategy directly aren't overridden when the
// whole binary reruns under tools/ci.sh --publish-matrix.
class ScopedClearPublishEnv {
 public:
  ScopedClearPublishEnv() {
    const char* value = std::getenv("TREL_PUBLISH");
    if (value != nullptr) saved_ = value;
    unsetenv("TREL_PUBLISH");
  }
  ~ScopedClearPublishEnv() {
    if (saved_.has_value()) setenv("TREL_PUBLISH", saved_->c_str(), 1);
  }

 private:
  std::optional<std::string> saved_;
};

TEST(QueryServicePublishStrategyTest, EnvParsingNeverFails) {
  EXPECT_EQ(ParsePublishStrategySetting(nullptr),
            PublishStrategySetting::kAuto);
  EXPECT_EQ(ParsePublishStrategySetting(""), PublishStrategySetting::kAuto);
  EXPECT_EQ(ParsePublishStrategySetting("auto"),
            PublishStrategySetting::kAuto);
  EXPECT_EQ(ParsePublishStrategySetting("bogus"),
            PublishStrategySetting::kAuto);
  EXPECT_EQ(ParsePublishStrategySetting("delta"),
            PublishStrategySetting::kForceDelta);
  EXPECT_EQ(ParsePublishStrategySetting("chain"),
            PublishStrategySetting::kForceChain);
  EXPECT_EQ(ParsePublishStrategySetting("optimal"),
            PublishStrategySetting::kForceOptimal);
}

// Every forced publish tier (and auto) must serve the exact same answers
// through the full service stack — singles, batches, and after a delta
// publish on top of whichever base the tier built.  tools/ci.sh
// --publish-matrix additionally reruns this whole binary under each
// TREL_PUBLISH value, which exercises the env override path.
TEST(QueryServicePublishStrategyTest, EveryStrategyServesExactAnswers) {
  ScopedClearPublishEnv clear_env;
  const Digraph graph = ChainedDag(6, 20, 2.5, 31);
  for (const PublishStrategySetting setting :
       {PublishStrategySetting::kAuto, PublishStrategySetting::kForceDelta,
        PublishStrategySetting::kForceChain,
        PublishStrategySetting::kForceOptimal}) {
    ServiceOptions options = SmallBatchOptions();
    options.publish_strategy = setting;
    QueryService service(options);
    ASSERT_TRUE(service.Load(graph).ok());

    ReachabilityMatrix truth(graph);
    std::vector<std::pair<NodeId, NodeId>> pairs;
    for (NodeId u = 0; u < graph.NumNodes(); ++u) {
      for (NodeId v = 0; v < graph.NumNodes(); ++v) pairs.emplace_back(u, v);
    }
    std::vector<uint8_t> batch = service.BatchReaches(pairs);
    for (size_t i = 0; i < pairs.size(); ++i) {
      const auto [u, v] = pairs[i];
      ASSERT_EQ(service.Reaches(u, v), truth.Reaches(u, v))
          << PublishStrategySettingName(setting) << " " << u << "->" << v;
      ASSERT_EQ(batch[i] != 0, truth.Reaches(u, v))
          << PublishStrategySettingName(setting) << " batch " << u << "->"
          << v;
    }

    // Mutate + publish (a delta under every setting — forcing never
    // changes the delta gate): answers must track fresh ground truth.
    // The shadow graph replays the same mutations for the oracle.
    Digraph mutated = graph;
    auto leaf = service.AddLeafUnder(2);
    ASSERT_TRUE(leaf.ok());
    ASSERT_EQ(mutated.AddNode(), *leaf);
    ASSERT_TRUE(mutated.AddArc(2, *leaf).ok());
    ASSERT_TRUE(service.AddArc(0, *leaf).ok());  // New by construction.
    ASSERT_TRUE(mutated.AddArc(0, *leaf).ok());
    service.Publish();
    const auto snapshot = service.Snapshot();
    EXPECT_EQ(snapshot->publish_strategy, PublishStrategy::kDelta)
        << PublishStrategySettingName(setting);
    const ReachabilityMatrix post(mutated);
    for (NodeId u = 0; u < snapshot->NumNodes(); ++u) {
      for (NodeId v = 0; v < snapshot->NumNodes(); ++v) {
        ASSERT_EQ(snapshot->Reaches(u, v), post.Reaches(u, v))
            << PublishStrategySettingName(setting) << " post-delta " << u
            << "->" << v;
      }
    }
  }
}

TEST(QueryServicePublishStrategyTest, ForcedTiersTagMetricsAndSnapshots) {
  ScopedClearPublishEnv clear_env;
  const Digraph chained = ChainedDag(6, 20, 2.5, 31);
  {
    ServiceOptions options;
    options.num_workers = 0;
    options.publish_strategy = PublishStrategySetting::kForceChain;
    QueryService service(options);
    ASSERT_TRUE(service.Load(chained).ok());
    EXPECT_EQ(service.Snapshot()->publish_strategy,
              PublishStrategy::kChainFull);
    const ServiceMetrics::View view = service.Metrics();
    EXPECT_GE(view.publishes_chain_full, 1);
    EXPECT_EQ(view.last_publish_strategy, "chain_full");
    EXPECT_GT(view.chain_full_intervals_last, 0);
    EXPECT_EQ(view.publishes_full,
              view.publishes_chain_full + view.publishes_optimal_full);
  }
  {
    ServiceOptions options;
    options.num_workers = 0;
    options.publish_strategy = PublishStrategySetting::kForceOptimal;
    QueryService service(options);
    ASSERT_TRUE(service.Load(chained).ok());
    EXPECT_EQ(service.Snapshot()->publish_strategy,
              PublishStrategy::kOptimalFull);
    const ServiceMetrics::View view = service.Metrics();
    EXPECT_EQ(view.publishes_chain_full, 0);
    EXPECT_GE(view.publishes_optimal_full, 2);  // Bootstrap + Load.
    EXPECT_EQ(view.last_publish_strategy, "optimal_full");
  }
  {
    // Forcing chain on a shape whose chain build trips the entry cap must
    // fall back to the Alg1 build — and the provenance tag must say so.
    ServiceOptions options;
    options.num_workers = 0;
    options.publish_strategy = PublishStrategySetting::kForceChain;
    QueryService service(options);
    ASSERT_TRUE(service.Load(CompleteBipartite(120, 120)).ok());
    EXPECT_EQ(service.Snapshot()->publish_strategy,
              PublishStrategy::kOptimalFull);
    EXPECT_TRUE(service.Reaches(0, 121));
    EXPECT_FALSE(service.Reaches(121, 0));
  }
}

TEST(QueryServicePublishStrategyTest, AutoSelectsByEligibilityAndCadence) {
  ScopedClearPublishEnv clear_env;
  ServiceOptions options;
  options.num_workers = 0;
  options.delta_publish = false;  // Every publish is a full export.
  options.chain_reoptimize_cadence = 2;
  QueryService service(options);

  // Chain-structured graph: auto picks the chain-fast tier at Load.
  ASSERT_TRUE(service.Load(ChainedDag(6, 20, 2.5, 31)).ok());
  EXPECT_EQ(service.Snapshot()->publish_strategy, PublishStrategy::kChainFull);
  ServiceMetrics::View view = service.Metrics();
  EXPECT_EQ(view.publishes_chain_full, 1);
  EXPECT_EQ(view.last_publish_strategy, "chain_full");

  // The next full publish is the 2nd consecutive chain-cover one, so the
  // cadence upgrades it to an Alg1-optimal rebuild mid-publish.
  auto leaf = service.AddLeafUnder(0);
  ASSERT_TRUE(leaf.ok());
  service.Publish();
  EXPECT_EQ(service.Snapshot()->publish_strategy,
            PublishStrategy::kOptimalFull);
  view = service.Metrics();
  EXPECT_EQ(view.publishes_chain_full, 1);
  EXPECT_EQ(view.last_publish_strategy, "optimal_full");
  // Both tiers have now published, so the blowup ratio is live (the chain
  // labeling can only be as good as or worse than Alg1's).
  EXPECT_GT(view.chain_full_intervals_last, 0);
  EXPECT_GT(view.optimal_full_intervals_last, 0);
  EXPECT_GE(view.chain_interval_blowup, 1.0);

  // Chain-hostile graph: auto stays on the Alg1-optimal tier at Load.
  ASSERT_TRUE(service.Load(RandomDag(500, 3.0, 11)).ok());
  EXPECT_EQ(service.Snapshot()->publish_strategy,
            PublishStrategy::kOptimalFull);
  EXPECT_EQ(service.Metrics().publishes_chain_full, 1);  // Unchanged.
}

TEST(QueryServiceAdmissionTest, RejectsAtLimitThenRecoversExactly) {
  Digraph graph = RandomDag(80, 2.5, 33);
  ReachabilityMatrix matrix(graph);
  ServiceOptions options = SmallBatchOptions();
  options.max_inflight_batches = 2;
  QueryService service(options);
  ASSERT_TRUE(service.Load(graph).ok());

  const std::vector<std::pair<NodeId, NodeId>> pairs = {
      {0, 40}, {3, 77}, {12, 12}, {60, 5}};
  const std::vector<NodeId> nodes = {0, 7, 79};

  // Pin the gate deterministically: with both slots occupied, every Try*
  // batch takes the third slot and is shed.  (Timing-based occupancy
  // would be flaky on a one-core CI box; slots are the ops drain hook.)
  {
    std::vector<QueryService::ScopedBatchSlot> pins;
    pins.push_back(service.AcquireBatchSlot());
    pins.push_back(service.AcquireBatchSlot());
    EXPECT_EQ(service.InflightBatches(), 2);

    auto rejected_reaches = service.TryBatchReaches(pairs);
    ASSERT_FALSE(rejected_reaches.ok());
    EXPECT_EQ(rejected_reaches.status().code(),
              StatusCode::kResourceExhausted);
    auto rejected_successors = service.TryBatchSuccessors(nodes);
    ASSERT_FALSE(rejected_successors.ok());
    EXPECT_EQ(rejected_successors.status().code(),
              StatusCode::kResourceExhausted);

    // Rejections are counted, never silently dropped...
    ServiceMetrics::View view = service.Metrics();
    EXPECT_EQ(view.batches_rejected, 2);
    EXPECT_EQ(view.batches, 0);  // ...and never ran as batches.
    EXPECT_EQ(view.inflight_batches, 2);

    // The trusted (non-Try) entry points are never rejected, even with
    // the gate pinned shut.
    const std::vector<uint8_t> forced = service.BatchReaches(pairs);
    ASSERT_EQ(forced.size(), pairs.size());
  }

  // Slots released: the same batches are admitted and answer exactly.
  EXPECT_EQ(service.InflightBatches(), 0);
  auto admitted_reaches = service.TryBatchReaches(pairs);
  ASSERT_TRUE(admitted_reaches.ok());
  ASSERT_EQ(admitted_reaches.value().size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(admitted_reaches.value()[i] != 0,
              matrix.Reaches(pairs[i].first, pairs[i].second))
        << pairs[i].first << "->" << pairs[i].second;
  }
  auto admitted_successors = service.TryBatchSuccessors(nodes);
  ASSERT_TRUE(admitted_successors.ok());
  ASSERT_EQ(admitted_successors.value().size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::vector<NodeId> got = admitted_successors.value()[i];
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, matrix.Successors(nodes[i])) << "node " << nodes[i];
  }
  ServiceMetrics::View view = service.Metrics();
  EXPECT_EQ(view.batches_rejected, 2);  // Unchanged by admitted traffic.
  EXPECT_EQ(view.inflight_batches, 0);
}

TEST(QueryServiceAdmissionTest, UnlimitedByDefaultNeverRejects) {
  Digraph graph = RandomDag(40, 2.0, 7);
  QueryService service(SmallBatchOptions());  // max_inflight_batches = 0.
  ASSERT_TRUE(service.Load(graph).ok());

  std::vector<QueryService::ScopedBatchSlot> pins;
  for (int i = 0; i < 16; ++i) pins.push_back(service.AcquireBatchSlot());
  auto result = service.TryBatchReaches({{0, 1}, {2, 3}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);
  EXPECT_EQ(service.Metrics().batches_rejected, 0);
}

// --- Concurrency (TSan targets) --------------------------------------------

// Readers hammer single queries, batches, and snapshot handles while one
// writer grows the graph and publishes every few updates.  Each reader
// checks invariants that hold for *every* consistent snapshot:
// monotonically non-decreasing epochs, reflexive reachability, batch
// answers consistent with the snapshot they were served from.
TEST(QueryServiceConcurrencyTest, ReadersNeverSeeTornState) {
  ServiceOptions options;
  options.num_workers = 2;
  options.min_parallel_batch = 64;
  options.stats_on_publish = false;  // Keep the publish loop tight.
  QueryService service(options);
  ASSERT_TRUE(service.Load(RandomDag(300, 2.0, 91)).ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads_done{0};

  auto reader = [&](uint64_t seed) {
    Random rng(seed);
    uint64_t last_epoch = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto snapshot = service.Snapshot();
      ASSERT_GE(snapshot->epoch, last_epoch);
      last_epoch = snapshot->epoch;
      const NodeId n = snapshot->NumNodes();
      ASSERT_GE(n, 300);
      // Reflexivity on the snapshot's own node universe.
      const NodeId u = static_cast<NodeId>(rng.Uniform(n));
      ASSERT_TRUE(snapshot->Reaches(u, u));
      // A batch is served from one snapshot: answers must agree with a
      // direct query against a snapshot taken before the batch (only
      // false->true transitions are possible as the graph only grows, and
      // within one snapshot answers are fixed).
      std::vector<std::pair<NodeId, NodeId>> pairs;
      for (int i = 0; i < 128; ++i) {
        pairs.emplace_back(static_cast<NodeId>(rng.Uniform(n)),
                           static_cast<NodeId>(rng.Uniform(n)));
      }
      std::vector<uint8_t> batch = service.BatchReaches(pairs);
      auto after = service.Snapshot();
      for (size_t i = 0; i < pairs.size(); ++i) {
        const bool before_ok =
            snapshot->Reaches(pairs[i].first, pairs[i].second);
        const bool after_ok = after->Reaches(pairs[i].first, pairs[i].second);
        // Growth-only workload: reachability is monotone across epochs.
        if (before_ok) {
          ASSERT_TRUE(batch[i] != 0);
        }
        if (!after_ok) {
          ASSERT_TRUE(batch[i] == 0);
        }
      }
      reads_done.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back(reader, static_cast<uint64_t>(t + 1));
  }

  // Writer: grow the DAG (leaves + arcs), publish every few updates.
  Random rng(17);
  for (int round = 0; round < 40; ++round) {
    for (int j = 0; j < 5; ++j) {
      const NodeId parent = static_cast<NodeId>(
          rng.Uniform(static_cast<uint64_t>(300 + round * 5 + j)));
      ASSERT_TRUE(service.AddLeafUnder(parent).ok());
    }
    // Occasional non-tree arc; duplicates/cycles are fine to reject.
    (void)service.AddArc(static_cast<NodeId>(rng.Uniform(100)),
                         static_cast<NodeId>(300 + rng.Uniform(40)));
    service.Publish();
  }

  // Let readers observe the final state, then stop.
  while (reads_done.load(std::memory_order_relaxed) < 50) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_GE(service.Metrics().current_epoch, 41u);
}

// Readers pin old snapshots across many delta publishes.  The shared
// base layer must stay alive for as long as any pinned overlay references
// it — including across forced full exports that retire the writer's
// current base — and a pinned snapshot's answers must never drift while
// overlays accumulate on top of it.
TEST(QueryServiceConcurrencyTest, ReadersHoldSnapshotsAcrossDeltaPublishes) {
  ServiceOptions options;
  options.num_workers = 0;
  options.stats_on_publish = false;  // Keep the publish loop tight.
  options.max_delta_publishes = 8;   // Retire bases mid-run.
  QueryService service(options);
  ASSERT_TRUE(service.Load(RandomDag(400, 2.0, 93)).ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> rounds_done{0};

  auto reader = [&](uint64_t seed) {
    Random rng(seed);
    while (!stop.load(std::memory_order_relaxed)) {
      // Pin one snapshot and record some of its answers.
      auto pinned = service.Snapshot();
      const NodeId n = pinned->NumNodes();
      std::vector<std::pair<NodeId, NodeId>> pairs;
      std::vector<uint8_t> expected;
      for (int i = 0; i < 32; ++i) {
        pairs.emplace_back(static_cast<NodeId>(rng.Uniform(n)),
                           static_cast<NodeId>(rng.Uniform(n)));
        expected.push_back(
            pinned->Reaches(pairs.back().first, pairs.back().second) ? 1 : 0);
      }
      // Hold the snapshot across many concurrent publishes: everything
      // about it is frozen.
      for (int probe = 0; probe < 20; ++probe) {
        ASSERT_EQ(pinned->NumNodes(), n);
        for (size_t i = 0; i < pairs.size(); ++i) {
          ASSERT_EQ(pinned->Reaches(pairs[i].first, pairs[i].second) ? 1 : 0,
                    expected[i]);
        }
        std::this_thread::yield();
      }
      rounds_done.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back(reader, static_cast<uint64_t>(t + 101));
  }

  // Writer: one-leaf batches keep the dirty set tiny, so nearly every
  // publish rides the delta path (every 9th is a forced full export).
  Random rng(29);
  NodeId num_nodes = 400;
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(
        service
            .AddLeafUnder(static_cast<NodeId>(rng.Uniform(num_nodes)))
            .ok());
    ++num_nodes;
    service.Publish();
  }

  while (rounds_done.load(std::memory_order_relaxed) < 9) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  ServiceMetrics::View view = service.Metrics();
  EXPECT_GT(view.publishes_delta, 0);
  EXPECT_GT(view.publishes_full, 1);  // Forced full exports happened.
}

// The destructor must cleanly drain the worker pool even with batches
// in flight right up to the end.
TEST(QueryServiceConcurrencyTest, DestructionWithBusyPoolIsClean) {
  for (int round = 0; round < 3; ++round) {
    QueryService service(SmallBatchOptions());
    ASSERT_TRUE(service.Load(RandomDag(100, 2.0, 92)).ok());
    std::vector<std::pair<NodeId, NodeId>> pairs(512, {0, 99});
    std::thread reader([&service, &pairs] {
      for (int i = 0; i < 20; ++i) (void)service.BatchReaches(pairs);
    });
    reader.join();
  }
}

}  // namespace
}  // namespace trel
