#include "core/closure_stats.h"

#include <gtest/gtest.h>

#include "core/path_finder.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace trel {
namespace {

using testing_util::GraphFromArcs;

TEST(ClosureStatsTest, ChainStats) {
  Digraph graph = GraphFromArcs(4, {{0, 1}, {1, 2}, {2, 3}});
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  ClosureStats stats = ComputeClosureStats(graph, closure.value());
  EXPECT_EQ(stats.num_nodes, 4);
  EXPECT_EQ(stats.num_arcs, 3);
  EXPECT_EQ(stats.num_tree_arcs, 3);
  EXPECT_EQ(stats.num_roots, 1);
  EXPECT_EQ(stats.total_intervals, 4);
  EXPECT_EQ(stats.storage_units, 8);
  EXPECT_EQ(stats.max_intervals_per_node, 1);
  EXPECT_DOUBLE_EQ(stats.single_interval_fraction, 1.0);
  EXPECT_EQ(stats.tree_depth_max, 3);
  EXPECT_DOUBLE_EQ(stats.tree_depth_avg, 1.5);
  // Histogram: 0 nodes with 0 intervals, 4 with exactly 1.
  EXPECT_EQ(stats.interval_histogram[0], 0);
  EXPECT_EQ(stats.interval_histogram[1], 4);
}

TEST(ClosureStatsTest, HistogramTailAggregates) {
  // Bipartite worst case: top nodes carry many intervals.
  Digraph graph = CompleteBipartite(6, 6);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  ClosureStats stats = ComputeClosureStats(graph, closure.value(), 4);
  EXPECT_EQ(static_cast<int>(stats.interval_histogram.size()), 4);
  int64_t total_nodes = 0;
  for (int64_t count : stats.interval_histogram) total_nodes += count;
  EXPECT_EQ(total_nodes, graph.NumNodes());
  // Five non-adopting top nodes carry 7 intervals each -> tail bucket.
  EXPECT_EQ(stats.interval_histogram[3], 5);
  EXPECT_EQ(stats.max_intervals_per_node, 7);
}

TEST(ClosureStatsTest, SumsMatchClosureAccessors) {
  Digraph graph = RandomDag(120, 2.5, 240);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  ClosureStats stats = ComputeClosureStats(graph, closure.value());
  EXPECT_EQ(stats.total_intervals, closure->TotalIntervals());
  EXPECT_EQ(stats.storage_units, closure->StorageUnits());
  EXPECT_GT(stats.single_interval_fraction, 0.2);
  EXPECT_FALSE(stats.ToString().empty());
}

}  // namespace
}  // namespace trel
