#include "core/compressed_closure.h"

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/reachability.h"
#include "tests/test_util.h"

namespace trel {
namespace {

using testing_util::GraphFromArcs;

void ExpectMatchesGroundTruth(const Digraph& graph,
                              const CompressedClosure& closure) {
  ReachabilityMatrix matrix(graph);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      ASSERT_EQ(closure.Reaches(u, v), matrix.Reaches(u, v))
          << u << "->" << v;
    }
  }
}

TEST(CompressedClosureTest, RejectsCyclicGraph) {
  Digraph graph = GraphFromArcs(2, {{0, 1}, {1, 0}});
  EXPECT_EQ(CompressedClosure::Build(graph).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CompressedClosureTest, SingleNode) {
  Digraph graph(1);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  EXPECT_TRUE(closure->Reaches(0, 0));
  EXPECT_TRUE(closure->Successors(0).empty());
  EXPECT_EQ(closure->TotalIntervals(), 1);
}

TEST(CompressedClosureTest, PaperStyleDagMatchesGroundTruth) {
  Digraph graph = testing_util::PaperStyleDag();
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  ExpectMatchesGroundTruth(graph, closure.value());
}

TEST(CompressedClosureTest, SuccessorsMatchGroundTruth) {
  Digraph graph = RandomDag(80, 2.5, 21);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  ReachabilityMatrix matrix(graph);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    std::vector<NodeId> got = closure->Successors(u);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, matrix.Successors(u)) << "node " << u;
    EXPECT_EQ(closure->CountSuccessors(u),
              static_cast<int64_t>(got.size()));
  }
}

TEST(CompressedClosureTest, PredecessorsMatchGroundTruth) {
  Digraph graph = RandomDag(60, 2.0, 22);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  ReachabilityMatrix matrix(graph);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    std::vector<NodeId> expected;
    for (NodeId u = 0; u < graph.NumNodes(); ++u) {
      if (u != v && matrix.Reaches(u, v)) expected.push_back(u);
    }
    std::vector<NodeId> got = closure->Predecessors(v);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "node " << v;
  }
}

// Overlapping antichain members ([1,5] then [3,9] is a valid sorted
// antichain) and labels with gaps between assigned numbers are the two
// regimes where naive range enumeration double-lists nodes or
// mis-handles the self exclusion.  Build the closure directly from
// synthetic parts so both regimes are pinned down exactly.
TEST(CompressedClosureTest, SuccessorsWithOverlappingIntervalsAndGaps) {
  // Four nodes with gap-style numbering (merge-adjacent labels leave
  // holes like these after updates).
  NodeLabels labels;
  labels.postorder = {16, 32, 48, 64};
  labels.gap = 16;
  for (Label p : labels.postorder) {
    labels.tree_interval.push_back({p, p});
  }
  labels.intervals.resize(4);
  // Node 3 (number 64): overlapping members covering 16,32 twice and 48
  // once, plus its own tree interval.
  ASSERT_TRUE(labels.intervals[3].Insert({10, 35}));
  ASSERT_TRUE(labels.intervals[3].Insert({30, 64}));
  // Node 0..2: just their own numbers.
  for (NodeId v = 0; v < 3; ++v) {
    ASSERT_TRUE(labels.intervals[v].Insert({labels.postorder[v],
                                            labels.postorder[v]}));
  }
  TreeCover cover;
  cover.parent.assign(4, kNoNode);
  cover.children.resize(4);
  cover.roots = {0, 1, 2, 3};

  CompressedClosure closure =
      CompressedClosure::FromParts(std::move(labels), std::move(cover));
  // Despite the overlap, each successor is listed exactly once and the
  // node itself is excluded even though 64 sits inside [30, 64].
  EXPECT_EQ(closure.Successors(3), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(closure.CountSuccessors(3), 3);
  EXPECT_TRUE(closure.Reaches(3, 0));
  EXPECT_FALSE(closure.Reaches(0, 3));
  EXPECT_TRUE(closure.Successors(0).empty());
  EXPECT_EQ(closure.CountSuccessors(0), 0);
}

// Successors and CountSuccessors must agree everywhere, across gap
// numbering, reserve pads, and merge-adjacent labels (which produce the
// widest intervals relative to the assigned numbers).
TEST(CompressedClosureTest, CountSuccessorsConsistentAcrossLabelings) {
  for (const auto& [gap, reserve, merge] :
       std::vector<std::tuple<Label, Label, bool>>{
           {1, 0, false}, {16, 0, false}, {16, 7, false}, {1, 0, true}}) {
    Digraph graph = RandomDag(90, 2.5, 24);
    ClosureOptions options;
    options.labeling.gap = gap;
    options.labeling.reserve = reserve;
    options.labeling.merge_adjacent = merge;
    auto closure = CompressedClosure::Build(graph, options);
    ASSERT_TRUE(closure.ok());
    ReachabilityMatrix matrix(graph);
    for (NodeId u = 0; u < graph.NumNodes(); ++u) {
      std::vector<NodeId> got = closure->Successors(u);
      EXPECT_EQ(closure->CountSuccessors(u),
                static_cast<int64_t>(got.size()))
          << "node " << u << " gap " << gap;
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, matrix.Successors(u)) << "node " << u << " gap " << gap;
    }
  }
}

TEST(CompressedClosureTest, StorageNeverExceedsFullClosure) {
  // Each closure pair costs one unit; each interval costs two.  The
  // compressed form can never lose to the uncompressed one by more than
  // the trivial 2x per-node floor, and on random graphs it wins big; here
  // we assert the defining inequality intervals <= pairs + n (every
  // interval covers at least one distinct successor or the node itself).
  Digraph graph = RandomDag(150, 3.0, 23);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  ReachabilityMatrix matrix(graph);
  EXPECT_LE(closure->TotalIntervals(),
            matrix.NumClosurePairs() + graph.NumNodes());
}

// ---------------------------------------------------------------------------
// Property sweep: every strategy, gap, and merge setting must agree with
// DFS ground truth on random DAGs of varying density.
// ---------------------------------------------------------------------------

struct SweepParam {
  NodeId num_nodes;
  double degree;
  uint64_t seed;
  TreeCoverStrategy strategy;
  Label gap;
  Label reserve;
  bool merge_adjacent;
  ChildOrder child_order = ChildOrder::kInsertion;
};

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  std::string name = "n" + std::to_string(p.num_nodes) + "_d" +
                     std::to_string(static_cast<int>(p.degree * 10)) + "_s" +
                     std::to_string(p.seed) + "_" +
                     TreeCoverStrategyName(p.strategy) + "_g" +
                     std::to_string(p.gap) + "_r" + std::to_string(p.reserve);
  if (p.merge_adjacent) name += "_merged";
  if (p.child_order != ChildOrder::kInsertion) {
    name += std::string("_") + ChildOrderName(p.child_order);
  }
  return name;
}

class ClosureSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ClosureSweepTest, MatchesGroundTruth) {
  const SweepParam& p = GetParam();
  Digraph graph = RandomDag(p.num_nodes, p.degree, p.seed);
  ClosureOptions options;
  options.strategy = p.strategy;
  options.seed = p.seed;
  options.child_order = p.child_order;
  options.labeling.gap = p.gap;
  options.labeling.reserve = p.reserve;
  options.labeling.merge_adjacent = p.merge_adjacent;
  auto closure = CompressedClosure::Build(graph, options);
  ASSERT_TRUE(closure.ok()) << closure.status().ToString();
  ExpectMatchesGroundTruth(graph, closure.value());
}

std::vector<SweepParam> MakeSweep() {
  std::vector<SweepParam> params;
  for (NodeId n : {2, 10, 40}) {
    for (double degree : {0.5, 1.5, 3.0}) {
      for (uint64_t seed : {1u, 2u}) {
        for (TreeCoverStrategy strategy :
             {TreeCoverStrategy::kOptimal, TreeCoverStrategy::kDfs,
              TreeCoverStrategy::kFirstParent, TreeCoverStrategy::kRandom}) {
          params.push_back({n, degree, seed, strategy, 1, 0, false});
        }
        // Gap/reserve/merge variants on the optimal strategy.
        params.push_back(
            {n, degree, seed, TreeCoverStrategy::kOptimal, 16, 0, false});
        params.push_back(
            {n, degree, seed, TreeCoverStrategy::kOptimal, 16, 7, false});
        params.push_back(
            {n, degree, seed, TreeCoverStrategy::kOptimal, 1, 0, true});
        // Sibling-reordering variants (with and without merging).
        for (ChildOrder order :
             {ChildOrder::kBySubtreeSizeAsc, ChildOrder::kBySubtreeSizeDesc,
              ChildOrder::kByNodeId}) {
          params.push_back({n, degree, seed, TreeCoverStrategy::kOptimal, 1,
                            0, true, order});
          params.push_back({n, degree, seed, TreeCoverStrategy::kOptimal, 1,
                            0, false, order});
        }
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllConfigurations, ClosureSweepTest,
                         ::testing::ValuesIn(MakeSweep()), SweepName);

// Denser spot checks (not a full cartesian sweep to keep runtime sane).
TEST(CompressedClosureTest, DenseGraphMatchesGroundTruth) {
  Digraph graph = RandomDag(30, 8.0, 31);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  ExpectMatchesGroundTruth(graph, closure.value());
}

TEST(CompressedClosureTest, LayeredGraphMatchesGroundTruth) {
  Digraph graph = LayeredDag(5, 6, 0.4, 17);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  ExpectMatchesGroundTruth(graph, closure.value());
}

TEST(CompressedClosureTest, EmptyGraph) {
  Digraph graph;
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->NumNodes(), 0);
  EXPECT_EQ(closure->TotalIntervals(), 0);
}

TEST(CompressedClosureTest, ArclessGraphIsAllSingletons) {
  Digraph graph(5);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->TotalIntervals(), 5);
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_TRUE(closure->Successors(u).empty());
    for (NodeId v = 0; v < 5; ++v) {
      EXPECT_EQ(closure->Reaches(u, v), u == v);
    }
  }
}

TEST(CompressedClosureTest, DisconnectedComponents) {
  Digraph graph = GraphFromArcs(6, {{0, 1}, {2, 3}, {4, 5}});
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  ExpectMatchesGroundTruth(graph, closure.value());
}

}  // namespace
}  // namespace trel
