#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/compressed_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "storage/buffer_pool.h"
#include "storage/closure_store.h"
#include "storage/page_store.h"
#include "storage/relation_file.h"
#include "tests/test_util.h"

namespace trel {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PageStoreTest, AllocateWriteRead) {
  auto store = PageStore::Open(TempPath("pages.db"), 256);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->AllocatePage(), 0u);
  EXPECT_EQ(store->AllocatePage(), 1u);
  std::vector<uint8_t> data(256, 0xAB);
  ASSERT_TRUE(store->WritePage(1, data).ok());
  std::vector<uint8_t> read;
  ASSERT_TRUE(store->ReadPage(1, read).ok());
  EXPECT_EQ(read, data);
  // Page 0 stays zeroed.
  ASSERT_TRUE(store->ReadPage(0, read).ok());
  EXPECT_EQ(read, std::vector<uint8_t>(256, 0));
  EXPECT_EQ(store->stats().physical_reads, 2);
  EXPECT_EQ(store->stats().physical_writes, 1);
}

TEST(PageStoreTest, RejectsBadRequests) {
  auto store = PageStore::Open(TempPath("pages2.db"), 256);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> page(256, 0);
  EXPECT_EQ(store->WritePage(0, page).code(), StatusCode::kOutOfRange);
  store->AllocatePage();
  std::vector<uint8_t> short_page(100, 0);
  EXPECT_EQ(store->WritePage(0, short_page).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(PageStore::Open(TempPath("bad.db"), 100).ok());  // Not 2^k.
}

TEST(BufferPoolTest, CachesAndCountsHits) {
  auto store = PageStore::Open(TempPath("pool.db"), 256);
  ASSERT_TRUE(store.ok());
  store->AllocatePage();
  store->AllocatePage();
  BufferPool pool(&store.value(), 4);
  ASSERT_TRUE(pool.GetPage(0).ok());
  ASSERT_TRUE(pool.GetPage(0).ok());
  ASSERT_TRUE(pool.GetPage(1).ok());
  EXPECT_EQ(pool.stats().hits, 1);
  EXPECT_EQ(pool.stats().misses, 2);
  EXPECT_EQ(store->stats().physical_reads, 2);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  auto store = PageStore::Open(TempPath("lru.db"), 256);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 3; ++i) store->AllocatePage();
  BufferPool pool(&store.value(), 2);
  ASSERT_TRUE(pool.GetPage(0).ok());
  ASSERT_TRUE(pool.GetPage(1).ok());
  ASSERT_TRUE(pool.GetPage(0).ok());  // 0 now more recent than 1.
  ASSERT_TRUE(pool.GetPage(2).ok());  // Evicts 1.
  EXPECT_EQ(pool.stats().evictions, 1);
  ASSERT_TRUE(pool.GetPage(0).ok());  // Still resident.
  EXPECT_EQ(pool.stats().hits, 2);
  ASSERT_TRUE(pool.GetPage(1).ok());  // Must re-read.
  EXPECT_EQ(pool.stats().misses, 4);
}

TEST(BufferPoolTest, WriteBackOnEviction) {
  auto store = PageStore::Open(TempPath("wb.db"), 256);
  ASSERT_TRUE(store.ok());
  store->AllocatePage();
  store->AllocatePage();
  BufferPool pool(&store.value(), 1);
  std::vector<uint8_t> data(256, 0x7F);
  ASSERT_TRUE(pool.PutPage(0, data).ok());
  ASSERT_TRUE(pool.GetPage(1).ok());  // Evicts dirty page 0.
  std::vector<uint8_t> read;
  ASSERT_TRUE(store->ReadPage(0, read).ok());
  EXPECT_EQ(read, data);
}

// Regression test for the pre-PageRef contract, under which GetPage's
// result was a raw pointer "valid until the next GetPage/PutPage call":
// holding page 0 while touching enough other pages to fill the pool made
// the old code evict (destroy) page 0's frame and left the caller reading
// freed memory.  With pinning, the held page survives arbitrary
// intervening traffic.
TEST(BufferPoolTest, PinnedPageSurvivesEvictionPressure) {
  auto store = PageStore::Open(TempPath("pin.db"), 256);
  ASSERT_TRUE(store.ok());
  const uint64_t kPages = 6;
  for (uint64_t p = 0; p < kPages; ++p) {
    store->AllocatePage();
    std::vector<uint8_t> data(256, static_cast<uint8_t>(0x10 + p));
    ASSERT_TRUE(store->WritePage(p, data).ok());
  }

  BufferPool pool(&store.value(), 2);
  auto held = pool.GetPage(0);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(pool.NumPinned(), 1u);

  // Old behavior: the second of these would evict page 0's frame.
  for (uint64_t p = 1; p < kPages; ++p) {
    auto other = pool.GetPage(p);
    ASSERT_TRUE(other.ok());
    EXPECT_EQ(other->data(), std::vector<uint8_t>(256, 0x10 + p));
  }

  // The pinned page is still resident with its original contents.
  EXPECT_EQ(held->data(), std::vector<uint8_t>(256, 0x10));
  EXPECT_EQ(held->page_id(), 0u);
  {
    // And re-getting it is a hit, not a re-read.
    const int64_t hits_before = pool.stats().hits;
    ASSERT_TRUE(pool.GetPage(0).ok());
    EXPECT_EQ(pool.stats().hits, hits_before + 1);
  }
}

TEST(BufferPoolTest, FullyPinnedPoolOverflowsInsteadOfFailing) {
  auto store = PageStore::Open(TempPath("pin_full.db"), 256);
  ASSERT_TRUE(store.ok());
  for (int p = 0; p < 4; ++p) store->AllocatePage();

  BufferPool pool(&store.value(), 1);
  auto a = pool.GetPage(0);
  ASSERT_TRUE(a.ok());
  {
    auto b = pool.GetPage(1);  // Capacity 1, page 0 pinned: over-allocate.
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(pool.NumResident(), 2u);
    EXPECT_EQ(pool.NumPinned(), 2u);
  }
  EXPECT_EQ(pool.NumPinned(), 1u);
  // The next access trims the unpinned overflow back under capacity...
  ASSERT_TRUE(pool.GetPage(2).ok());
  EXPECT_EQ(pool.NumResident(), 2u);  // Pinned page 0 + page 2.
  // ...and once the last pin drops, the pool shrinks to capacity again.
  a = BufferPool::PageRef();
  EXPECT_EQ(pool.NumPinned(), 0u);
  ASSERT_TRUE(pool.GetPage(3).ok());
  EXPECT_EQ(pool.NumResident(), 1u);
}

TEST(BufferPoolTest, PutPageToPinnedPageUpdatesThroughRef) {
  auto store = PageStore::Open(TempPath("pin_put.db"), 256);
  ASSERT_TRUE(store.ok());
  store->AllocatePage();
  BufferPool pool(&store.value(), 2);
  auto held = pool.GetPage(0);
  ASSERT_TRUE(held.ok());
  std::vector<uint8_t> update(256, 0xEE);
  ASSERT_TRUE(pool.PutPage(0, update).ok());
  EXPECT_EQ(held->data(), update);  // Ref observes the new contents.
}

TEST(BufferPoolTest, FlushWritesDirtyPages) {
  auto store = PageStore::Open(TempPath("flush.db"), 256);
  ASSERT_TRUE(store.ok());
  store->AllocatePage();
  BufferPool pool(&store.value(), 2);
  std::vector<uint8_t> data(256, 0x11);
  ASSERT_TRUE(pool.PutPage(0, data).ok());
  EXPECT_EQ(store->stats().physical_writes, 0);
  ASSERT_TRUE(pool.Flush().ok());
  EXPECT_EQ(store->stats().physical_writes, 1);
}

TEST(RelationFileTest, PrimitivesRoundTrip) {
  std::vector<uint8_t> image;
  relation_file::AppendU64(image, 0xDEADBEEFCAFEF00DULL);
  relation_file::AppendI64(image, -42);
  relation_file::AppendI32(image, -7);
  EXPECT_EQ(relation_file::ReadU64(image.data()), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(relation_file::ReadI64(image.data() + 8), -42);
  EXPECT_EQ(relation_file::ReadI32(image.data() + 16), -7);
}

TEST(RelationFileTest, ImageSpansPages) {
  auto store = PageStore::Open(TempPath("img.db"), 256);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> image(1000);
  for (size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<uint8_t>(i * 13);
  }
  ASSERT_TRUE(relation_file::WriteImage(store.value(), image).ok());
  EXPECT_EQ(store->num_pages(), 4u);
  BufferPool pool(&store.value(), 2);
  // Read a range crossing a page boundary.
  auto bytes = relation_file::ReadBytes(pool, 200, 300);
  ASSERT_TRUE(bytes.ok());
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_EQ((*bytes)[i], static_cast<uint8_t>((200 + i) * 13));
  }
}

TEST(IntervalStoreTest, OnDiskReachesMatchesInMemory) {
  Digraph graph = RandomDag(60, 2.0, 50);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());
  auto store = PageStore::Open(TempPath("ivstore.db"), 512);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(IntervalStore::Write(closure.value(), store.value()).ok());
  BufferPool pool(&store.value(), 16);
  auto on_disk = IntervalStore::Open(&pool);
  ASSERT_TRUE(on_disk.ok());
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      auto got = on_disk->Reaches(u, v);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got.value(), closure->Reaches(u, v)) << u << "->" << v;
    }
  }
}

TEST(IntervalStoreTest, OpenRejectsWrongMagic) {
  auto store = PageStore::Open(TempPath("junk.db"), 256);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> image(64, 0x5A);
  ASSERT_TRUE(relation_file::WriteImage(store.value(), image).ok());
  BufferPool pool(&store.value(), 2);
  EXPECT_FALSE(IntervalStore::Open(&pool).ok());
}

TEST(AdjacencyStoreTest, LookupAndDfsMatchGroundTruth) {
  Digraph graph = RandomDag(50, 2.0, 51);
  ReachabilityMatrix matrix(graph);

  // Full-closure relation: sorted successor lists.
  std::vector<std::vector<NodeId>> closure_lists(graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    closure_lists[v] = matrix.Successors(v);
  }
  auto closure_store = PageStore::Open(TempPath("adj_closure.db"), 512);
  ASSERT_TRUE(closure_store.ok());
  ASSERT_TRUE(
      AdjacencyStore::Write(closure_lists, closure_store.value()).ok());
  BufferPool closure_pool(&closure_store.value(), 16);
  auto lookup = AdjacencyStore::Open(&closure_pool);
  ASSERT_TRUE(lookup.ok());

  // Base relation: immediate successors only, queried by DFS.
  auto base_store = PageStore::Open(TempPath("adj_base.db"), 512);
  ASSERT_TRUE(base_store.ok());
  ASSERT_TRUE(AdjacencyStore::WriteGraph(graph, base_store.value()).ok());
  BufferPool base_pool(&base_store.value(), 16);
  auto chased = AdjacencyStore::Open(&base_pool);
  ASSERT_TRUE(chased.ok());

  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      auto a = lookup->LookupReaches(u, v);
      auto b = chased->DfsReaches(u, v);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_EQ(a.value(), matrix.Reaches(u, v)) << u << "->" << v;
      ASSERT_EQ(b.value(), matrix.Reaches(u, v)) << u << "->" << v;
    }
  }
}

TEST(AdjacencyStoreTest, DfsCostsMoreIoThanIntervalLookup) {
  // The paper's core economics: on-disk pointer chasing touches many
  // pages; an interval lookup touches a constant few.
  Digraph graph = RandomDag(400, 2.0, 52);
  auto closure = CompressedClosure::Build(graph);
  ASSERT_TRUE(closure.ok());

  auto interval_pages = PageStore::Open(TempPath("io_iv.db"), 512);
  ASSERT_TRUE(interval_pages.ok());
  ASSERT_TRUE(
      IntervalStore::Write(closure.value(), interval_pages.value()).ok());

  auto base_pages = PageStore::Open(TempPath("io_base.db"), 512);
  ASSERT_TRUE(base_pages.ok());
  ASSERT_TRUE(AdjacencyStore::WriteGraph(graph, base_pages.value()).ok());

  // Cold pool per query; count logical reads for a far-apart pair.
  int64_t interval_io = 0, dfs_io = 0;
  for (NodeId u = 0; u < 20; ++u) {
    {
      BufferPool pool(&interval_pages.value(), 4);
      auto on_disk = IntervalStore::Open(&pool);
      ASSERT_TRUE(on_disk.ok());
      ASSERT_TRUE(on_disk->Reaches(u, 399).ok());
      interval_io += pool.stats().LogicalReads();
    }
    {
      BufferPool pool(&base_pages.value(), 4);
      auto on_disk = AdjacencyStore::Open(&pool);
      ASSERT_TRUE(on_disk.ok());
      ASSERT_TRUE(on_disk->DfsReaches(u, 399).ok());
      dfs_io += pool.stats().LogicalReads();
    }
  }
  EXPECT_LT(interval_io, dfs_io);
}

}  // namespace
}  // namespace trel
