#include "relational/csv.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/check.h"

namespace trel {
namespace {

TEST(CsvTest, ReadsTypedColumns) {
  std::istringstream in("part,qty\nbolt,4\nnut,8\n");
  auto relation = ReadCsv(in);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->NumTuples(), 2);
  EXPECT_EQ(relation->schema()[0].type, ColumnType::kString);
  EXPECT_EQ(relation->schema()[1].type, ColumnType::kInt64);
  EXPECT_EQ(relation->tuples()[0][1], Value{int64_t{4}});
}

TEST(CsvTest, MixedColumnFallsBackToString) {
  std::istringstream in("x\n1\ntwo\n3\n");
  auto relation = ReadCsv(in);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->schema()[0].type, ColumnType::kString);
  EXPECT_EQ(relation->tuples()[0][0], Value{std::string("1")});
}

TEST(CsvTest, QuotedFieldsRoundTrip) {
  Relation relation({{"name", ColumnType::kString},
                     {"note", ColumnType::kString}});
  TREL_CHECK(relation.Append({std::string("a,b"), std::string("say \"hi\"")})
                 .ok());
  std::ostringstream out;
  WriteCsv(relation, out);
  std::istringstream in(out.str());
  auto read = ReadCsv(in);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->NumTuples(), 1);
  EXPECT_EQ(read->tuples()[0][0], Value{std::string("a,b")});
  EXPECT_EQ(read->tuples()[0][1], Value{std::string("say \"hi\"")});
}

TEST(CsvTest, RejectsMalformedInput) {
  {
    std::istringstream in("");
    EXPECT_FALSE(ReadCsv(in).ok());
  }
  {
    std::istringstream in("a,b\n1\n");  // Wrong arity.
    EXPECT_FALSE(ReadCsv(in).ok());
  }
  {
    std::istringstream in("a\n\"unterminated\n");
    EXPECT_FALSE(ReadCsv(in).ok());
  }
}

TEST(CsvTest, HandlesCrLfAndBlankLines) {
  std::istringstream in("x,y\r\n1,2\r\n\r\n3,4\r\n");
  auto relation = ReadCsv(in);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->NumTuples(), 2);
  EXPECT_EQ(relation->schema()[0].type, ColumnType::kInt64);
}

TEST(CsvTest, FileRoundTrip) {
  Relation relation({{"id", ColumnType::kInt64}});
  TREL_CHECK(relation.Append({int64_t{42}}).ok());
  const std::string path = ::testing::TempDir() + "/trel_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(relation, path).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->NumTuples(), 1);
  EXPECT_EQ(read->tuples()[0][0], Value{int64_t{42}});
  EXPECT_FALSE(ReadCsvFile("/nonexistent/file.csv").ok());
}

}  // namespace
}  // namespace trel
