// Delta snapshot publication: CompressedClosure::WithDelta overlays must
// be indistinguishable from from-scratch ExportClosure() snapshots on
// every query surface, across randomized interleaved update batches, and
// QueryService's full-vs-delta publish policy must follow its knobs.

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/compressed_closure.h"
#include "core/dynamic_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "service/query_service.h"

namespace trel {
namespace {

// Asserts that `got` (typically an overlay chain) answers exactly like
// `want` (a from-scratch export of the same labeling): reachability,
// enumeration, counting, and the storage measure all agree.
void ExpectSameAnswers(const CompressedClosure& got,
                       const CompressedClosure& want) {
  ASSERT_EQ(got.NumNodes(), want.NumNodes());
  ASSERT_EQ(got.TotalIntervals(), want.TotalIntervals());
  for (NodeId u = 0; u < want.NumNodes(); ++u) {
    ASSERT_EQ(got.PostorderOf(u), want.PostorderOf(u)) << "node " << u;
    for (NodeId v = 0; v < want.NumNodes(); ++v) {
      ASSERT_EQ(got.Reaches(u, v), want.Reaches(u, v)) << u << "->" << v;
    }
    ASSERT_EQ(got.Successors(u), want.Successors(u)) << "node " << u;
    ASSERT_EQ(got.CountSuccessors(u), want.CountSuccessors(u)) << "node " << u;
    ASSERT_EQ(got.Predecessors(u), want.Predecessors(u)) << "node " << u;
  }
}

TEST(DeltaSnapshotTest, SingleDeltaMatchesFullExport) {
  auto dyn = DynamicClosure::Build(RandomDag(80, 2.0, 41));
  ASSERT_TRUE(dyn.ok());
  CompressedClosure base = dyn->ExportClosure();
  dyn->MarkClean();

  ASSERT_TRUE(dyn->AddLeafUnder(3).ok());
  ASSERT_TRUE(dyn->AddArc(0, 79).ok() || true);  // Cycle rejection is fine.
  EXPECT_GT(dyn->DirtyCount(), 0);

  ClosureDelta delta = dyn->ExportDelta();
  EXPECT_EQ(dyn->DirtyCount(), 0);  // Export drained the dirty set.
  CompressedClosure overlay = CompressedClosure::WithDelta(base, delta);
  ExpectSameAnswers(overlay, dyn->ExportClosure());
}

TEST(DeltaSnapshotTest, EmptyDeltaIsExact) {
  auto dyn = DynamicClosure::Build(RandomDag(50, 2.0, 42));
  ASSERT_TRUE(dyn.ok());
  CompressedClosure base = dyn->ExportClosure();
  dyn->MarkClean();
  ClosureDelta delta = dyn->ExportDelta();
  EXPECT_TRUE(delta.entries.empty());
  CompressedClosure overlay = CompressedClosure::WithDelta(base, delta);
  EXPECT_FALSE(overlay.IsOverlay());
  ExpectSameAnswers(overlay, base);
}

// The tentpole equivalence test: a long chain of WithDelta publishes over
// randomized interleaved AddArc / AddLeafUnder / RemoveArc batches must
// track a from-scratch export at every step, and ground truth every few
// batches.
TEST(DeltaSnapshotTest, RandomizedInterleavedBatchesMatchFullExport) {
  Random rng(123);
  DynamicClosure dyn;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(dyn.AddLeafUnder(kNoNode).ok());
  }
  CompressedClosure snapshot = dyn.ExportClosure();
  dyn.MarkClean();

  for (int batch = 0; batch < 40; ++batch) {
    const int batch_size = 1 + static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < batch_size; ++i) {
      const NodeId n = dyn.NumNodes();
      const uint64_t op = rng.Uniform(10);
      if (op < 4) {
        const NodeId parent =
            op == 0 ? kNoNode : static_cast<NodeId>(rng.Uniform(n));
        ASSERT_TRUE(dyn.AddLeafUnder(parent).ok());
      } else if (op < 8) {
        const NodeId a = static_cast<NodeId>(rng.Uniform(n));
        const NodeId b = static_cast<NodeId>(rng.Uniform(n));
        Status s = dyn.AddArc(a, b);
        ASSERT_TRUE(s.ok() || s.code() == StatusCode::kInvalidArgument ||
                    s.code() == StatusCode::kAlreadyExists);
      } else {
        auto arcs = dyn.graph().Arcs();
        if (!arcs.empty()) {
          const auto& [a, b] = arcs[rng.Uniform(arcs.size())];
          ASSERT_TRUE(dyn.RemoveArc(a, b).ok());
        }
      }
    }
    ClosureDelta delta = dyn.ExportDelta();
    snapshot = CompressedClosure::WithDelta(snapshot, delta);
    ExpectSameAnswers(snapshot, dyn.ExportClosure());
    if (batch % 8 == 7) {
      ReachabilityMatrix truth(dyn.graph());
      for (NodeId u = 0; u < dyn.NumNodes(); ++u) {
        for (NodeId v = 0; v < dyn.NumNodes(); ++v) {
          ASSERT_EQ(snapshot.Reaches(u, v), truth.Reaches(u, v))
              << u << "->" << v;
        }
      }
    }
  }
}

TEST(DeltaSnapshotTest, OverlaySharesBaseStorageAndLeavesBaseUntouched) {
  auto dyn = DynamicClosure::Build(RandomDag(200, 2.0, 43));
  ASSERT_TRUE(dyn.ok());
  CompressedClosure base = dyn->ExportClosure();
  dyn->MarkClean();
  const int64_t base_intervals = base.TotalIntervals();
  const bool base_reach = base.Reaches(0, 199);

  ASSERT_TRUE(dyn->AddLeafUnder(0).ok());
  ClosureDelta delta = dyn->ExportDelta();
  ASSERT_FALSE(delta.entries.empty());
  ASSERT_LT(static_cast<NodeId>(delta.entries.size()), 200);

  CompressedClosure overlay = CompressedClosure::WithDelta(base, delta);
  EXPECT_TRUE(overlay.IsOverlay());
  EXPECT_EQ(overlay.OverlayNodeCount(),
            static_cast<int64_t>(delta.entries.size()));
  // The base layer is shared by reference, not copied.
  EXPECT_EQ(&overlay.labels(), &base.labels());
  EXPECT_EQ(&overlay.tree_cover(), &base.tree_cover());
  EXPECT_EQ(overlay.NumNodes(), 201);

  // Chained deltas flatten onto the same base.
  ASSERT_TRUE(dyn->AddLeafUnder(1).ok());
  CompressedClosure chained =
      CompressedClosure::WithDelta(overlay, dyn->ExportDelta());
  EXPECT_EQ(&chained.labels(), &base.labels());
  EXPECT_GE(chained.OverlayNodeCount(), overlay.OverlayNodeCount());
  ExpectSameAnswers(chained, dyn->ExportClosure());

  // The base snapshot is immutable: earlier answers did not move.
  EXPECT_EQ(base.NumNodes(), 200);
  EXPECT_EQ(base.TotalIntervals(), base_intervals);
  EXPECT_EQ(base.Reaches(0, 199), base_reach);
}

// RemoveArc re-propagates labels wholesale, which must surface as an
// everything-dirty delta that still reconstructs exact answers.
TEST(DeltaSnapshotTest, RemovalBatchesStayExactThroughDeltaChain) {
  auto dyn = DynamicClosure::Build(RandomDag(60, 2.5, 44));
  ASSERT_TRUE(dyn.ok());
  CompressedClosure snapshot = dyn->ExportClosure();
  dyn->MarkClean();

  Random rng(7);
  for (int round = 0; round < 10; ++round) {
    auto arcs = dyn->graph().Arcs();
    ASSERT_FALSE(arcs.empty());
    const auto& [a, b] = arcs[rng.Uniform(arcs.size())];
    ASSERT_TRUE(dyn->RemoveArc(a, b).ok());
    snapshot = CompressedClosure::WithDelta(snapshot, dyn->ExportDelta());
    ExpectSameAnswers(snapshot, dyn->ExportClosure());
  }
}

// --- QueryService publish policy -------------------------------------------

ServiceOptions SerialOptions() {
  ServiceOptions options;
  options.num_workers = 0;
  return options;
}

TEST(DeltaSnapshotTest, ServiceForcesFullExportEveryK) {
  ServiceOptions options = SerialOptions();
  options.max_delta_publishes = 4;
  QueryService service(options);
  ASSERT_TRUE(service.Load(RandomDag(300, 2.0, 45)).ok());

  // Construction and Load are new-lineage publishes: always full.
  ServiceMetrics::View view = service.Metrics();
  EXPECT_EQ(view.publishes_full, 2);
  EXPECT_EQ(view.publishes_delta, 0);

  Random rng(11);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        service.AddLeafUnder(static_cast<NodeId>(rng.Uniform(300))).ok());
    service.Publish();
  }
  view = service.Metrics();
  // Of the 12 explicit publishes, every 5th (the one after 4 consecutive
  // deltas) is forced full: publishes 5 and 10.
  EXPECT_EQ(view.publishes_full, 4);
  EXPECT_EQ(view.publishes_delta, 10);
  EXPECT_EQ(view.publishes, 14);
  EXPECT_GT(view.delta_nodes_total, 0);
  int64_t histogram_total = 0;
  for (int64_t bucket : view.delta_nodes_histogram) histogram_total += bucket;
  EXPECT_EQ(histogram_total, view.publishes_delta);

  // The live snapshot (publish 12) rode the delta path and says so.
  auto snapshot = service.Snapshot();
  EXPECT_TRUE(snapshot->delta_publish);
  EXPECT_GT(snapshot->delta_entries, 0);
  EXPECT_GT(view.snapshot_overlay_nodes, 0);

  // Delta snapshots answer exactly like the ground truth of the live
  // graph.
  Digraph graph;
  ASSERT_TRUE(service
                  .Apply([&graph](DynamicClosure& dynamic) {
                    graph = dynamic.graph();
                    return Status::Ok();
                  })
                  .ok());
  ReachabilityMatrix truth(graph);
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      ASSERT_EQ(snapshot->Reaches(u, v), truth.Reaches(u, v))
          << u << "->" << v;
    }
  }
}

TEST(DeltaSnapshotTest, ServiceDeltaDisabledAlwaysExportsFull) {
  ServiceOptions options = SerialOptions();
  options.delta_publish = false;
  QueryService service(options);
  ASSERT_TRUE(service.Load(RandomDag(100, 2.0, 46)).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.AddLeafUnder(0).ok());
    service.Publish();
  }
  ServiceMetrics::View view = service.Metrics();
  EXPECT_EQ(view.publishes_delta, 0);
  EXPECT_EQ(view.publishes_full, 7);
  EXPECT_FALSE(service.Snapshot()->delta_publish);
  EXPECT_EQ(view.snapshot_overlay_nodes, 0);
}

TEST(DeltaSnapshotTest, ServiceFallsBackToFullWhenMostNodesDirty) {
  ServiceOptions options = SerialOptions();
  options.max_delta_dirty_fraction = 0.5;
  QueryService service(options);
  ASSERT_TRUE(service.Load(RandomDag(40, 2.0, 47)).ok());
  // Removing an arc re-propagates (and dirties) every node, pushing the
  // dirty fraction past the threshold: the publish must go full.
  ASSERT_TRUE(service
                  .Apply([](DynamicClosure& dynamic) {
                    auto arcs = dynamic.graph().Arcs();
                    const auto& [a, b] = arcs.front();
                    return dynamic.RemoveArc(a, b);
                  })
                  .ok());
  service.Publish();
  ServiceMetrics::View view = service.Metrics();
  EXPECT_EQ(view.publishes_full, 3);
  EXPECT_EQ(view.publishes_delta, 0);
}

TEST(DeltaSnapshotTest, ServiceLoadForcesFullPublish) {
  ServiceOptions options = SerialOptions();
  QueryService service(options);
  ASSERT_TRUE(service.Load(RandomDag(100, 2.0, 48)).ok());
  ASSERT_TRUE(service.AddLeafUnder(0).ok());
  service.Publish();
  EXPECT_TRUE(service.Snapshot()->delta_publish);

  // A new index lineage can never ride on the previous snapshot.
  ASSERT_TRUE(service.Load(RandomDag(120, 2.0, 49)).ok());
  EXPECT_FALSE(service.Snapshot()->delta_publish);
  EXPECT_EQ(service.Snapshot()->NumNodes(), 120);
  ServiceMetrics::View view = service.Metrics();
  EXPECT_EQ(view.snapshot_overlay_nodes, 0);
}

TEST(DeltaSnapshotTest, DeltaPublishCarriesBaseStatsForward) {
  ServiceOptions options = SerialOptions();
  QueryService service(options);
  ASSERT_TRUE(service.Load(RandomDag(150, 2.0, 50)).ok());
  const ClosureStats full_stats = service.Snapshot()->stats;
  EXPECT_EQ(full_stats.num_nodes, 150);

  ASSERT_TRUE(service.AddLeafUnder(0).ok());
  service.Publish();
  auto snapshot = service.Snapshot();
  ASSERT_TRUE(snapshot->delta_publish);
  EXPECT_EQ(snapshot->NumNodes(), 151);
  // Stats describe the last *full* export, by design (see snapshot.h).
  EXPECT_EQ(snapshot->stats.num_nodes, full_stats.num_nodes);
  EXPECT_EQ(snapshot->stats.total_intervals, full_stats.total_intervals);
}

}  // namespace
}  // namespace trel
