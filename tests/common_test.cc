#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/bitset.h"
#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"

namespace trel {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << InvalidArgumentError("bad");
  EXPECT_EQ(os.str(), "INVALID_ARGUMENT: bad");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kInternal, StatusCode::kIoError}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

StatusOr<int> DoublePositive(int x) {
  TREL_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = ParsePositive(5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 5);
  EXPECT_EQ(*result, 5);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = ParsePositive(-1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(DoublePositive(21).value(), 42);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(BitsetTest, SetTestReset) {
  DynamicBitset bits(130);
  EXPECT_FALSE(bits.Test(0));
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 3u);
  bits.Reset(64);
  EXPECT_FALSE(bits.Test(64));
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(BitsetTest, UnionWith) {
  DynamicBitset a(100), b(100);
  a.Set(3);
  b.Set(70);
  b.Set(3);
  a.UnionWith(b);
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(70));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(BitsetTest, ClearAndEquality) {
  DynamicBitset a(10), b(10);
  a.Set(5);
  EXPECT_FALSE(a == b);
  a.Clear();
  EXPECT_TRUE(a == b);
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, UniformStaysInBounds) {
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
  }
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.UniformInt(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(RandomTest, UniformIsRoughlyUniform) {
  Random rng(11);
  int counts[10] = {};
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.Uniform(10)];
  for (int bucket = 0; bucket < 10; ++bucket) {
    EXPECT_NEAR(counts[bucket], kSamples / 10, kSamples / 100);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

}  // namespace
}  // namespace trel
