#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/dynamic_closure.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "tests/test_util.h"

namespace trel {
namespace {

// Answers of a loaded snapshot must be identical to the original on every
// pair and on successor enumeration.
void ExpectEquivalent(const DynamicClosure& a, const DynamicClosure& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  for (NodeId u = 0; u < a.NumNodes(); ++u) {
    EXPECT_EQ(a.Successors(u), b.Successors(u)) << "node " << u;
    EXPECT_EQ(a.TreeParent(u), b.TreeParent(u)) << "node " << u;
  }
  EXPECT_EQ(a.TotalIntervals(), b.TotalIntervals());
  EXPECT_EQ(a.stats().renumbers, b.stats().renumbers);
}

TEST(SnapshotTest, RoundTripStaticBuild) {
  Digraph graph = RandomDag(80, 2.0, 300);
  auto original = DynamicClosure::Build(graph);
  ASSERT_TRUE(original.ok());
  std::stringstream buffer;
  ASSERT_TRUE(original->Save(buffer).ok());
  auto loaded = DynamicClosure::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEquivalent(original.value(), loaded.value());
}

TEST(SnapshotTest, RoundTripAfterUpdatesAndRefinements) {
  Digraph graph = RandomDag(50, 2.0, 301);
  auto original = DynamicClosure::Build(graph);
  ASSERT_TRUE(original.ok());
  Random rng(4);
  for (int i = 0; i < 30; ++i) {
    const NodeId parent = static_cast<NodeId>(
        rng.Uniform(static_cast<uint64_t>(original->NumNodes())));
    ASSERT_TRUE(original->AddLeafUnder(parent).ok());
  }
  // A refinement (keeps refined-node state in the snapshot).
  (void)original->RefineAbove(10, original->graph().InNeighbors(10));
  (void)original->AddArc(3, 47);

  std::stringstream buffer;
  ASSERT_TRUE(original->Save(buffer).ok());
  auto loaded = DynamicClosure::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEquivalent(original.value(), loaded.value());
}

TEST(SnapshotTest, LoadedIndexRemainsUpdatable) {
  DynamicClosure original;
  auto root = original.AddLeafUnder(kNoNode);
  ASSERT_TRUE(root.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(original.AddLeafUnder(root.value()).ok());
  }

  std::stringstream buffer;
  ASSERT_TRUE(original.Save(buffer).ok());
  auto loaded = DynamicClosure::Load(buffer);
  ASSERT_TRUE(loaded.ok());

  // Continue mutating the loaded copy and verify against ground truth.
  Random rng(9);
  for (int i = 0; i < 40; ++i) {
    const NodeId parent = static_cast<NodeId>(
        rng.Uniform(static_cast<uint64_t>(loaded->NumNodes())));
    ASSERT_TRUE(loaded->AddLeafUnder(parent).ok());
  }
  ReachabilityMatrix matrix(loaded->graph());
  for (NodeId u = 0; u < loaded->NumNodes(); ++u) {
    for (NodeId v = 0; v < loaded->NumNodes(); ++v) {
      ASSERT_EQ(loaded->Reaches(u, v), matrix.Reaches(u, v))
          << u << "->" << v;
    }
  }
}

TEST(SnapshotTest, RejectsGarbageAndTruncation) {
  {
    std::stringstream buffer;
    buffer << "definitely not a snapshot";
    EXPECT_FALSE(DynamicClosure::Load(buffer).ok());
  }
  {
    Digraph graph = RandomDag(20, 1.5, 302);
    auto original = DynamicClosure::Build(graph);
    ASSERT_TRUE(original.ok());
    std::stringstream buffer;
    ASSERT_TRUE(original->Save(buffer).ok());
    std::string bytes = buffer.str();
    for (size_t cut : {size_t{4}, size_t{20}, bytes.size() / 2,
                       bytes.size() - 3}) {
      std::stringstream truncated(bytes.substr(0, cut));
      EXPECT_FALSE(DynamicClosure::Load(truncated).ok()) << "cut=" << cut;
    }
  }
}

}  // namespace
}  // namespace trel
