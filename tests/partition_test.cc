#include "graph/partition.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace trel {
namespace {

// Structural invariants every partition must satisfy, regardless of
// graph shape or K: shard assignment total and in-range, shard_nodes
// consistent, hubs sorted/deduped and flag-consistent, and — the
// invariant the sharded service's exactness rests on — every
// cross-shard arc has at least one hub endpoint.
void CheckInvariants(const Digraph& graph, const Partition& p,
                     int num_shards) {
  const NodeId n = graph.NumNodes();
  ASSERT_EQ(p.num_shards, num_shards);
  ASSERT_EQ(static_cast<NodeId>(p.shard_of.size()), n);
  ASSERT_EQ(static_cast<NodeId>(p.is_hub.size()), n);
  ASSERT_EQ(static_cast<int>(p.shard_nodes.size()), num_shards);

  std::vector<int64_t> counts(num_shards, 0);
  for (NodeId v = 0; v < n; ++v) {
    ASSERT_GE(p.shard_of[v], 0);
    ASSERT_LT(p.shard_of[v], num_shards);
    ++counts[p.shard_of[v]];
  }
  EXPECT_EQ(counts, p.shard_nodes);

  EXPECT_TRUE(std::is_sorted(p.hubs.begin(), p.hubs.end()));
  EXPECT_EQ(std::adjacent_find(p.hubs.begin(), p.hubs.end()), p.hubs.end());
  int64_t flagged = 0;
  for (NodeId v = 0; v < n; ++v) flagged += p.is_hub[v] != 0;
  EXPECT_EQ(flagged, static_cast<int64_t>(p.hubs.size()));
  for (NodeId h : p.hubs) EXPECT_TRUE(p.is_hub[h]);

  int64_t cut = 0;
  for (const auto& [a, b] : graph.Arcs()) {
    if (p.shard_of[a] != p.shard_of[b]) {
      ++cut;
      EXPECT_TRUE(p.is_hub[a] || p.is_hub[b])
          << "cut arc (" << a << "," << b << ") has no hub endpoint";
    }
  }
  EXPECT_EQ(cut, p.cut_arcs);
  EXPECT_EQ(p.total_arcs, graph.NumArcs());
}

TEST(PartitionTest, SingleShardHasNoCutsAndNoHubs) {
  const Digraph g = RandomDag(200, 3.0, /*seed=*/1);
  PartitionOptions options;
  options.num_shards = 1;
  const auto p = PartitionDag(g, options);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  CheckInvariants(g, *p, 1);
  EXPECT_EQ(p->cut_arcs, 0);
  EXPECT_TRUE(p->hubs.empty());
  EXPECT_EQ(p->shard_nodes[0], 200);
  EXPECT_EQ(p->EdgeCutFraction(), 0.0);
}

TEST(PartitionTest, PaperDagFourShards) {
  const Digraph g = testing_util::PaperStyleDag();
  PartitionOptions options;
  options.num_shards = 4;
  const auto p = PartitionDag(g, options);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  CheckInvariants(g, *p, 4);
}

TEST(PartitionTest, RandomDagsSatisfyInvariants) {
  for (const uint64_t seed : {7u, 8u, 9u}) {
    for (const int k : {2, 3, 4, 8}) {
      const Digraph g = RandomDag(300, 2.5, seed);
      PartitionOptions options;
      options.num_shards = k;
      const auto p = PartitionDag(g, options);
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      CheckInvariants(g, *p, k);
      // Contiguous topo ranges keep shards reasonably balanced even
      // after the cut points slide inside their slack windows.
      const int64_t ideal = 300 / k;
      for (const int64_t size : p->shard_nodes) {
        EXPECT_LE(size, ideal + ideal / 2 + 32);
      }
    }
  }
}

TEST(PartitionTest, ClusteredDagCutsBetweenClusters) {
  // 8 clusters of 128 nodes; cross traffic funneled through 3 gateways
  // per cluster.  A topo-range partitioner at K=4 should cut on (or
  // near) cluster boundaries, keeping the edge-cut a small fraction,
  // and the greedy cover should need few hubs (the gateways and the
  // entry nodes they feed).
  const Digraph g = ClusteredDag(/*num_clusters=*/8, /*cluster_size=*/128,
                                 /*avg_out_degree=*/3.0, /*gateways=*/3,
                                 /*cross_fraction=*/0.08, /*seed=*/42);
  PartitionOptions options;
  options.num_shards = 4;
  const auto p = PartitionDag(g, options);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  CheckInvariants(g, *p, 4);
  EXPECT_LT(p->EdgeCutFraction(), 0.10);
  // Far fewer hubs than nodes — the whole point of the gateway funnel.
  EXPECT_LE(static_cast<NodeId>(p->hubs.size()), g.NumNodes() / 8);
}

TEST(PartitionTest, MoreShardsThanNodesLeavesEmptyShards) {
  Digraph g(3);
  ASSERT_TRUE(g.AddArc(0, 1).ok());
  ASSERT_TRUE(g.AddArc(1, 2).ok());
  PartitionOptions options;
  options.num_shards = 8;
  const auto p = PartitionDag(g, options);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  CheckInvariants(g, *p, 8);
  int64_t total = 0;
  for (const int64_t size : p->shard_nodes) total += size;
  EXPECT_EQ(total, 3);
}

TEST(PartitionTest, EmptyGraph) {
  const Digraph g(0);
  PartitionOptions options;
  options.num_shards = 4;
  const auto p = PartitionDag(g, options);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  CheckInvariants(g, *p, 4);
  EXPECT_EQ(p->cut_arcs, 0);
}

TEST(PartitionTest, CyclicGraphFails) {
  Digraph g(2);
  ASSERT_TRUE(g.AddArc(0, 1).ok());
  ASSERT_TRUE(g.AddArc(1, 0).ok());
  PartitionOptions options;
  options.num_shards = 2;
  const auto p = PartitionDag(g, options);
  EXPECT_FALSE(p.ok());
}

TEST(PartitionTest, InvalidShardCountFails) {
  const Digraph g(4);
  PartitionOptions options;
  options.num_shards = 0;
  EXPECT_FALSE(PartitionDag(g, options).ok());
}

}  // namespace
}  // namespace trel
