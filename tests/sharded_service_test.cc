// Differential suite for the sharded query service: a
// ShardedQueryService at any K must be bit-for-bit indistinguishable
// from the monolithic QueryService — same answers, same error codes,
// same assigned node ids, same visibility rules — on every graph family
// and under interleaved update streams that dirty the shard boundary.
//
// TREL_SHARDS pins the shard-count sweep to one value (the CI shard
// matrix runs the suite once per K); unset, each test sweeps
// K in {1, 2, 4, 8}.

#include "service/sharded_service.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/digraph.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "service/query_service.h"
#include "tests/test_util.h"

namespace trel {
namespace {

std::vector<int> ShardCounts() {
  const char* pin = std::getenv("TREL_SHARDS");
  if (pin != nullptr && *pin != '\0') return {std::max(1, std::atoi(pin))};
  return {1, 2, 4, 8};
}

ShardedServiceOptions OptionsFor(int k) {
  ShardedServiceOptions options;
  options.num_shards = k;
  return options;
}

// Every pair, both orders: the sharded and monolithic services must
// agree with each other AND (when given) with the DFS ground truth.
void ExpectAllPairsAgree(const ShardedQueryService& sharded,
                         const QueryService& mono, NodeId n,
                         const ReachabilityMatrix* truth,
                         const std::string& context) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(static_cast<size_t>(n) * n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) pairs.emplace_back(u, v);
  }
  const std::vector<uint8_t> got = sharded.BatchReaches(pairs);
  const std::vector<uint8_t> want = mono.BatchReaches(pairs);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(got[i] != 0, want[i] != 0)
        << context << ": pair (" << pairs[i].first << "," << pairs[i].second
        << ")";
    ASSERT_EQ(sharded.Reaches(pairs[i].first, pairs[i].second), want[i] != 0)
        << context << ": single Reaches (" << pairs[i].first << ","
        << pairs[i].second << ")";
    if (truth != nullptr) {
      ASSERT_EQ(got[i] != 0, truth->Reaches(pairs[i].first, pairs[i].second))
          << context << ": oracle (" << pairs[i].first << ","
          << pairs[i].second << ")";
    }
  }
}

// Successor sets must match as SETS; the monolithic snapshot enumerates
// in label order, the sharded path in ascending global id.
void ExpectSuccessorsAgree(const ShardedQueryService& sharded,
                           const QueryService& mono, NodeId n,
                           const std::string& context) {
  for (NodeId u = 0; u < n; ++u) {
    std::vector<NodeId> want = mono.Successors(u);
    std::sort(want.begin(), want.end());
    EXPECT_EQ(sharded.Successors(u), want) << context << ": node " << u;
  }
}

void ExpectSampledPairsAgree(const ShardedQueryService& sharded,
                             const QueryService& mono, NodeId n,
                             int samples, Random& rng,
                             const std::string& context) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(samples);
  for (int i = 0; i < samples; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(n)),
                       static_cast<NodeId>(rng.Uniform(n)));
  }
  const std::vector<uint8_t> got = sharded.BatchReaches(pairs);
  const std::vector<uint8_t> want = mono.BatchReaches(pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(got[i] != 0, want[i] != 0)
        << context << ": pair (" << pairs[i].first << "," << pairs[i].second
        << ")";
  }
}

TEST(ShardedServiceTest, LoadMatchesMonolithicOnRandomDags) {
  for (const int k : ShardCounts()) {
    for (const uint64_t seed : {21u, 22u}) {
      const Digraph graph = RandomDag(120, 2.5, seed);
      const ReachabilityMatrix truth(graph);
      QueryService mono;
      ASSERT_TRUE(mono.Load(graph).ok());
      ShardedQueryService sharded(OptionsFor(k));
      ASSERT_TRUE(sharded.Load(graph).ok());
      const std::string context =
          "k=" + std::to_string(k) + " seed=" + std::to_string(seed);
      ExpectAllPairsAgree(sharded, mono, graph.NumNodes(), &truth, context);
      ExpectSuccessorsAgree(sharded, mono, graph.NumNodes(), context);
    }
  }
}

TEST(ShardedServiceTest, ClusteredAndHubDagsMatch) {
  for (const int k : ShardCounts()) {
    const std::string context = "k=" + std::to_string(k);
    {
      const Digraph graph = ClusteredDag(6, 40, 3.0, 2, 0.1, 5);
      QueryService mono;
      ASSERT_TRUE(mono.Load(graph).ok());
      ShardedQueryService sharded(OptionsFor(k));
      ASSERT_TRUE(sharded.Load(graph).ok());
      ExpectAllPairsAgree(sharded, mono, graph.NumNodes(), nullptr,
                          context + " clustered");
    }
    {
      const Digraph graph = HubDag(60, 5, 50, 6);
      QueryService mono;
      ASSERT_TRUE(mono.Load(graph).ok());
      ShardedQueryService sharded(OptionsFor(k));
      ASSERT_TRUE(sharded.Load(graph).ok());
      ExpectAllPairsAgree(sharded, mono, graph.NumNodes(), nullptr,
                          context + " hubdag");
    }
  }
}

TEST(ShardedServiceTest, OutOfRangeAndReflexiveSemanticsMatch) {
  for (const int k : ShardCounts()) {
    const Digraph graph = RandomDag(30, 2.0, 3);
    QueryService mono;
    ASSERT_TRUE(mono.Load(graph).ok());
    ShardedQueryService sharded(OptionsFor(k));
    ASSERT_TRUE(sharded.Load(graph).ok());
    for (const auto& [u, v] : std::vector<std::pair<NodeId, NodeId>>{
             {-1, 0}, {0, -1}, {30, 0}, {0, 30}, {99, 99}, {5, 5}}) {
      EXPECT_EQ(sharded.Reaches(u, v), mono.Reaches(u, v))
          << "(" << u << "," << v << ")";
    }
    EXPECT_TRUE(sharded.Reaches(5, 5));
    EXPECT_TRUE(sharded.Successors(-3).empty());
    EXPECT_TRUE(sharded.Successors(30).empty());
  }
}

TEST(ShardedServiceTest, ErrorCodeParityWithMonolithic) {
  for (const int k : ShardCounts()) {
    const Digraph graph = testing_util::PaperStyleDag();
    QueryService mono;
    ASSERT_TRUE(mono.Load(graph).ok());
    ShardedQueryService sharded(OptionsFor(k));
    ASSERT_TRUE(sharded.Load(graph).ok());

    // Invalid endpoints / parents.
    EXPECT_EQ(sharded.AddArc(-1, 2).code(), mono.AddArc(-1, 2).code());
    EXPECT_EQ(sharded.AddArc(0, 99).code(), mono.AddArc(0, 99).code());
    EXPECT_EQ(sharded.AddLeafUnder(99).status().code(),
              mono.AddLeafUnder(99).status().code());
    EXPECT_EQ(sharded.AddLeafUnder(99).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(sharded.RemoveArc(-1, 2).code(), mono.RemoveArc(-1, 2).code());

    // Self loops and cycles are invalid-argument, duplicates
    // already-exists, missing removals not-found — same precedence as
    // DynamicClosure.
    EXPECT_EQ(sharded.AddArc(3, 3).code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(sharded.AddArc(3, 3).code(), mono.AddArc(3, 3).code());
    for (NodeId u = 0; u < graph.NumNodes(); ++u) {
      for (NodeId v = 0; v < graph.NumNodes(); ++v) {
        if (u == v) continue;
        // Probe every pair on BOTH services; each probe mutates on
        // success, so apply to both to keep them in lockstep.
        const StatusCode got = sharded.AddArc(u, v).code();
        const StatusCode want = mono.AddArc(u, v).code();
        ASSERT_EQ(got, want) << "AddArc(" << u << "," << v << ")";
      }
    }
    EXPECT_EQ(sharded.RemoveArc(0, 9).code(), mono.RemoveArc(0, 9).code());
    sharded.Publish();
    mono.Publish();
    ExpectAllPairsAgree(sharded, mono, graph.NumNodes(), nullptr,
                        "k=" + std::to_string(k) + " error-parity");
  }
}

TEST(ShardedServiceTest, UnpublishedUpdatesAreInvisible) {
  for (const int k : ShardCounts()) {
    const Digraph graph = RandomDag(60, 2.0, 9);
    QueryService mono;
    ASSERT_TRUE(mono.Load(graph).ok());
    ShardedQueryService sharded(OptionsFor(k));
    ASSERT_TRUE(sharded.Load(graph).ok());

    const StatusOr<NodeId> leaf_s = sharded.AddLeafUnder(0);
    const StatusOr<NodeId> leaf_m = mono.AddLeafUnder(0);
    ASSERT_TRUE(leaf_s.ok());
    ASSERT_TRUE(leaf_m.ok());
    EXPECT_EQ(*leaf_s, *leaf_m);  // Same sequential global ids.
    // Invisible on both until Publish.
    EXPECT_FALSE(sharded.Reaches(0, *leaf_s));
    EXPECT_FALSE(mono.Reaches(0, *leaf_m));
    sharded.Publish();
    mono.Publish();
    EXPECT_TRUE(sharded.Reaches(0, *leaf_s));
    EXPECT_TRUE(mono.Reaches(0, *leaf_m));
    ExpectAllPairsAgree(sharded, mono, graph.NumNodes() + 1, nullptr,
                        "k=" + std::to_string(k) + " leaf");
  }
}

TEST(ShardedServiceTest, InterleavedUpdateStreamStaysBitForBit) {
  for (const int k : ShardCounts()) {
    for (const uint64_t seed : {31u, 32u}) {
      const Digraph graph = ClusteredDag(4, 25, 2.5, 2, 0.12, seed);
      QueryService mono;
      ASSERT_TRUE(mono.Load(graph).ok());
      ShardedQueryService sharded(OptionsFor(k));
      ASSERT_TRUE(sharded.Load(graph).ok());

      Random rng(seed * 1000 + k);
      // Driver-side arc list for removal picks; mirrors both services.
      std::vector<std::pair<NodeId, NodeId>> arcs = graph.Arcs();
      NodeId n = graph.NumNodes();
      const std::string context =
          "k=" + std::to_string(k) + " seed=" + std::to_string(seed);

      for (int op = 0; op < 160; ++op) {
        const uint64_t kind = rng.Uniform(10);
        if (kind < 4) {
          // Random arc: exercises same-shard and cross-shard inserts,
          // duplicate and cycle rejections — codes must agree.
          const NodeId u = static_cast<NodeId>(rng.Uniform(n));
          const NodeId v = static_cast<NodeId>(rng.Uniform(n));
          const Status got = sharded.AddArc(u, v);
          const Status want = mono.AddArc(u, v);
          ASSERT_EQ(got.code(), want.code())
              << context << " op " << op << ": AddArc(" << u << "," << v
              << ") sharded=" << got.ToString()
              << " mono=" << want.ToString();
          if (got.ok()) arcs.emplace_back(u, v);
        } else if (kind < 6) {
          // New leaf, occasionally a parentless root.
          const NodeId parent = rng.Uniform(8) == 0
                                    ? kNoNode
                                    : static_cast<NodeId>(rng.Uniform(n));
          const StatusOr<NodeId> got = sharded.AddLeafUnder(parent);
          const StatusOr<NodeId> want = mono.AddLeafUnder(parent);
          ASSERT_EQ(got.status().code(), want.status().code())
              << context << " op " << op;
          if (got.ok()) {
            ASSERT_EQ(*got, *want) << context << " op " << op;
            ASSERT_EQ(*got, n) << context << " op " << op;
            if (parent != kNoNode) arcs.emplace_back(parent, *got);
            ++n;
          }
        } else if (kind < 8 && !arcs.empty()) {
          // Remove a live arc (tree or non-tree, possibly cross-shard).
          const size_t pick = rng.Uniform(arcs.size());
          const auto [u, v] = arcs[pick];
          const Status got = sharded.RemoveArc(u, v);
          const Status want = mono.RemoveArc(u, v);
          ASSERT_EQ(got.code(), want.code())
              << context << " op " << op << ": RemoveArc(" << u << "," << v
              << ")";
          if (got.ok()) {
            arcs[pick] = arcs.back();
            arcs.pop_back();
          }
        } else {
          sharded.Publish();
          mono.Publish();
        }
        if (op % 20 == 19) {
          sharded.Publish();
          mono.Publish();
          ExpectSampledPairsAgree(sharded, mono, n, 300, rng,
                                  context + " op " + std::to_string(op));
        }
      }
      sharded.Publish();
      mono.Publish();
      ExpectAllPairsAgree(sharded, mono, n, nullptr, context + " final");
      ExpectSuccessorsAgree(sharded, mono, n, context + " final");
    }
  }
}

TEST(ShardedServiceTest, CrossShardArcsPromoteHubsAndStayExact) {
  for (const int k : ShardCounts()) {
    if (k < 2) continue;  // Needs a real boundary.
    const Digraph graph = ClusteredDag(4, 30, 2.0, 2, 0.05, 17);
    QueryService mono;
    ASSERT_TRUE(mono.Load(graph).ok());
    ShardedQueryService sharded(OptionsFor(k));
    ASSERT_TRUE(sharded.Load(graph).ok());
    const NodeId n = graph.NumNodes();

    // Force cross-shard arcs between ordinary (non-gateway) nodes so the
    // initial hub cover cannot absorb them without promotions.
    Random rng(99);
    int added = 0;
    const int64_t before = sharded.MetricsView().hub_promotions;
    for (int attempt = 0; attempt < 400 && added < 12; ++attempt) {
      const NodeId u = static_cast<NodeId>(rng.Uniform(n));
      const NodeId v = static_cast<NodeId>(rng.Uniform(n));
      if (sharded.ShardOf(u) == sharded.ShardOf(v)) continue;
      const Status got = sharded.AddArc(u, v);
      const Status want = mono.AddArc(u, v);
      ASSERT_EQ(got.code(), want.code())
          << "AddArc(" << u << "," << v << ")";
      if (got.ok()) ++added;
    }
    ASSERT_GT(added, 0);
    EXPECT_GT(sharded.MetricsView().hub_promotions, before);
    sharded.Publish();
    mono.Publish();
    ExpectAllPairsAgree(sharded, mono, n, nullptr, "k=" + std::to_string(k));

    const ShardedMetricsView view = sharded.MetricsView();
    EXPECT_EQ(view.num_shards, k);
    EXPECT_GT(view.num_hubs, 0);
    EXPECT_GT(view.boundary_label_bytes, 0);
    EXPECT_GT(view.boundary_republishes, 0);
  }
}

TEST(ShardedServiceTest, PublishShardMakesThatShardVisible) {
  for (const int k : ShardCounts()) {
    const Digraph graph = RandomDag(80, 2.0, 13);
    ShardedQueryService sharded(OptionsFor(k));
    ASSERT_TRUE(sharded.Load(graph).ok());
    const NodeId parent = 10;
    const int s = sharded.ShardOf(parent);
    ASSERT_GE(s, 0);
    const StatusOr<NodeId> leaf = sharded.AddLeafUnder(parent);
    ASSERT_TRUE(leaf.ok());
    EXPECT_FALSE(sharded.Reaches(parent, *leaf));
    const uint64_t epoch_before = sharded.Epoch();
    EXPECT_GT(sharded.PublishShard(s), epoch_before);
    EXPECT_TRUE(sharded.Reaches(parent, *leaf));
    EXPECT_TRUE(sharded.Reaches(*leaf, *leaf));
  }
}

TEST(ShardedServiceTest, CleanRepublishSkipsBoundaryRebuild) {
  for (const int k : ShardCounts()) {
    const Digraph graph = RandomDag(50, 2.0, 23);
    ShardedQueryService sharded(OptionsFor(k));
    ASSERT_TRUE(sharded.Load(graph).ok());
    const int64_t republishes = sharded.MetricsView().boundary_republishes;
    const int64_t skips = sharded.MetricsView().boundary_skips;
    sharded.Publish();  // Nothing changed since Load's publish.
    sharded.Publish();
    const ShardedMetricsView view = sharded.MetricsView();
    EXPECT_EQ(view.boundary_republishes, republishes);
    EXPECT_EQ(view.boundary_skips, skips + 2);
    // A boundary-dirtying update makes the next publish a real one.
    ASSERT_TRUE(sharded.AddLeafUnder(0).ok());
    sharded.Publish();
    EXPECT_EQ(sharded.MetricsView().boundary_republishes, republishes + 1);
  }
}

TEST(ShardedServiceTest, EmptyServiceBehavesLikeEmptyMonolith) {
  for (const int k : ShardCounts()) {
    ShardedQueryService sharded(OptionsFor(k));
    QueryService mono;
    EXPECT_EQ(sharded.Reaches(0, 0), mono.Reaches(0, 0));
    EXPECT_TRUE(sharded.BatchReaches({{0, 1}, {2, 2}}) ==
                mono.BatchReaches({{0, 1}, {2, 2}}));
    // Grow from nothing: roots then arcs, never having called Load.
    const StatusOr<NodeId> a_s = sharded.AddLeafUnder(kNoNode);
    const StatusOr<NodeId> a_m = mono.AddLeafUnder(kNoNode);
    ASSERT_TRUE(a_s.ok());
    ASSERT_EQ(*a_s, *a_m);
    const StatusOr<NodeId> b_s = sharded.AddLeafUnder(*a_s);
    const StatusOr<NodeId> b_m = mono.AddLeafUnder(*a_m);
    ASSERT_TRUE(b_s.ok());
    ASSERT_EQ(*b_s, *b_m);
    sharded.Publish();
    mono.Publish();
    ExpectAllPairsAgree(sharded, mono, 2, nullptr, "k=" + std::to_string(k));
    EXPECT_TRUE(sharded.Reaches(*a_s, *b_s));
  }
}

TEST(ShardedServiceTest, MetricsViewToStringIsMachineCheckable) {
  ShardedQueryService sharded(OptionsFor(2));
  ASSERT_TRUE(sharded.Load(RandomDag(40, 2.0, 3)).ok());
  const std::string s = sharded.MetricsView().ToString();
  EXPECT_NE(s.find("shards=2"), std::string::npos) << s;
  EXPECT_NE(s.find("nodes=40"), std::string::npos) << s;
  EXPECT_NE(s.find("boundary_republishes="), std::string::npos) << s;
}

// -----------------------------------------------------------------------
// Observability of the sharded front end: stage-attributed traces, the
// windowed rollup series layout, shard-attributed slow queries, and the
// flight recorder.

TEST(ShardedServiceTest, SampledSinglesCarryStageAttribution) {
  for (const int k : ShardCounts()) {
    ShardedServiceOptions options = OptionsFor(k);
    options.trace_sample_period = 1;  // Trace every query.
    ShardedQueryService sharded(options);
    ASSERT_TRUE(
        sharded.Load(ClusteredDag(std::max(2, 2 * k), 40, 2.5, 2, 0.1, 9))
            .ok());
    const NodeId n = static_cast<NodeId>(std::max(2, 2 * k) * 40);
    Random rng(17);
    for (int i = 0; i < 200; ++i) {
      (void)sharded.Reaches(static_cast<NodeId>(rng.Uniform(n)),
                            static_cast<NodeId>(rng.Uniform(n)));
    }
    const std::vector<TraceRecord> records = sharded.tracer().Drain();
    ASSERT_FALSE(records.empty()) << "k=" << k;
    for (const TraceRecord& r : records) {
      EXPECT_TRUE(r.has_stages) << "k=" << k;
      // Per-stage attribution must not exceed the end-to-end clock:
      // stages are timed inside the same interval that produced nanos.
      uint64_t stage_sum = 0;
      for (int s = 0; s < kNumQueryStages; ++s) stage_sum += r.stage_nanos[s];
      EXPECT_LE(stage_sum, static_cast<uint64_t>(r.nanos) + 1)
          << "k=" << k << " pair (" << r.source << "," << r.target << ")";
      // The deciding shard is in range or -1 (boundary-decided).
      EXPECT_GE(r.shard, -1);
      EXPECT_LT(r.shard, k);
    }
    // Shard-local decisions must attribute their shard at least once on
    // a clustered graph (most pairs are same-shard when k > 1; at k == 1
    // every in-range pair is shard 0).
    const bool any_shard_attributed =
        std::any_of(records.begin(), records.end(),
                    [](const TraceRecord& r) { return r.shard >= 0; });
    EXPECT_TRUE(any_shard_attributed) << "k=" << k;
  }
}

TEST(ShardedServiceTest, SampledBatchesEmitStageAttributedRecords) {
  ShardedServiceOptions options = OptionsFor(4);
  options.trace_sample_period = 1;
  ShardedQueryService sharded(options);
  ASSERT_TRUE(sharded.Load(ClusteredDag(8, 40, 2.5, 2, 0.1, 9)).ok());
  std::vector<std::pair<NodeId, NodeId>> pairs;
  Random rng(23);
  for (int i = 0; i < 512; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(320)),
                       static_cast<NodeId>(rng.Uniform(320)));
  }
  (void)sharded.BatchReaches(pairs);
  const std::vector<TraceRecord> records = sharded.tracer().Drain();
  ASSERT_FALSE(records.empty());
  int batch_records = 0;
  for (const TraceRecord& r : records) {
    if (!r.from_batch) continue;
    ++batch_records;
    EXPECT_TRUE(r.has_stages);
    uint64_t stage_sum = 0;
    for (int s = 0; s < kNumQueryStages; ++s) stage_sum += r.stage_nanos[s];
    // Batch records carry per-query averages floored per stage, so the
    // sum can only round down from the per-query share.
    EXPECT_LE(stage_sum, static_cast<uint64_t>(r.nanos) + 1);
  }
  EXPECT_GT(batch_records, 0);
}

TEST(ShardedServiceTest, RollupSeriesCoverStagesFrontEndAndShards) {
  for (const int k : ShardCounts()) {
    ShardedServiceOptions options = OptionsFor(k);
    options.trace_sample_period = 1;
    ShardedQueryService sharded(options);
    ASSERT_TRUE(
        sharded.Load(ClusteredDag(std::max(2, 2 * k), 40, 2.5, 2, 0.1, 9))
            .ok());
    const LatencyRollup& rollup = sharded.rollup();
    // Layout: one series per query stage, then "single", "batch", then
    // one per shard.
    ASSERT_EQ(rollup.num_series(), kNumQueryStages + 2 + k);
    for (int s = 0; s < kNumQueryStages; ++s) {
      EXPECT_EQ(rollup.series_name(s),
                QueryStageName(static_cast<QueryStage>(s)));
    }
    EXPECT_EQ(rollup.series_name(kNumQueryStages), "single");
    EXPECT_EQ(rollup.series_name(kNumQueryStages + 1), "batch");
    for (int s = 0; s < k; ++s) {
      EXPECT_EQ(rollup.series_name(kNumQueryStages + 2 + s),
                "shard" + std::to_string(s));
    }
    // Traffic lands in the front-end and per-shard series.  Self pairs
    // are answered at kRoute before shard routing, so every pair here
    // is distinct to make the shard attribution exactly total.
    const NodeId n = static_cast<NodeId>(std::max(2, 2 * k) * 40);
    Random rng(31);
    for (int i = 0; i < 100; ++i) {
      const NodeId u = static_cast<NodeId>(rng.Uniform(n));
      NodeId v = static_cast<NodeId>(rng.Uniform(n));
      while (v == u) v = static_cast<NodeId>(rng.Uniform(n));
      (void)sharded.Reaches(u, v);
    }
    EXPECT_EQ(rollup.Window(kNumQueryStages, 1).count, 100) << "k=" << k;
    int64_t shard_total = 0;
    for (int s = 0; s < k; ++s) {
      shard_total += rollup.Window(kNumQueryStages + 2 + s, 1).count;
    }
    EXPECT_EQ(shard_total, 100) << "k=" << k;
  }
}

TEST(ShardedServiceTest, SlowSinglesAreShardAttributed) {
  ShardedServiceOptions options = OptionsFor(2);
  options.slow_query_micros = 1;  // 1 us: the lowest enabled threshold.
  ShardedQueryService sharded(options);
  ASSERT_TRUE(sharded.Load(ClusteredDag(4, 40, 2.5, 2, 0.1, 9)).ok());
  // Typical singles run a few hundred nanos; over thousands of probes
  // at least one crosses 1 us (a cache miss or preemption suffices).
  Random rng(53);
  for (int i = 0; i < 20000 && sharded.slow_log().TotalRecorded() == 0; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(160));
    NodeId v = static_cast<NodeId>(rng.Uniform(160));
    while (v == u) v = static_cast<NodeId>(rng.Uniform(160));
    (void)sharded.Reaches(u, v);
  }
  const std::vector<SlowQueryEntry> entries = sharded.slow_log().Recent();
  ASSERT_FALSE(entries.empty());
  const SlowQueryEntry& e = entries.back();
  EXPECT_FALSE(e.is_batch);
  EXPECT_GE(e.source_shard, 0);
  EXPECT_LT(e.source_shard, 2);
  EXPECT_GE(e.target_shard, 0);
  EXPECT_LT(e.target_shard, 2);
  EXPECT_EQ(e.cross_shard, e.source_shard != e.target_shard);
  EXPECT_NE(e.ToString().find("shards=("), std::string::npos);
}

TEST(ShardedServiceTest, FlightRecorderCapturesOnForceAndPublishStall) {
  ShardedServiceOptions options = OptionsFor(2);
  options.trace_sample_period = 1;
  // A 1 us stall threshold: the next publish always "stalls" (0 would
  // disable the detector).
  options.flight.publish_stall_micros = 1;
  ShardedQueryService sharded(options);
  ASSERT_TRUE(sharded.Load(ClusteredDag(4, 40, 2.5, 2, 0.1, 9)).ok());
  // Load's initial publish already ran before the recorder had a
  // baseline; drive one explicit publish to exercise NotePublish.
  ASSERT_TRUE(sharded.AddLeafUnder(0).ok());
  sharded.Publish();
  EXPECT_GE(sharded.flight_recorder().TotalTriggered(), 1);
  const std::vector<FlightCapture> captures =
      sharded.flight_recorder().Captures();
  ASSERT_FALSE(captures.empty());
  EXPECT_EQ(captures.back().reason, "publish_stall");
  // Window rows cover every rollup series x exported window.
  EXPECT_EQ(captures.back().windows.size(),
            static_cast<size_t>(sharded.rollup().num_series()) *
                LatencyRollup::WindowMinutes().size());
  // A forced capture freezes sampled traces into the payload.
  Random rng(41);
  for (int i = 0; i < 50; ++i) {
    (void)sharded.Reaches(static_cast<NodeId>(rng.Uniform(160)),
                          static_cast<NodeId>(rng.Uniform(160)));
  }
  ASSERT_TRUE(sharded.flight_recorder().ForceCapture("forced_test_trigger"));
  const FlightCapture last = sharded.flight_recorder().Captures().back();
  EXPECT_EQ(last.reason, "forced_test_trigger");
  EXPECT_FALSE(last.traces.empty());
  EXPECT_FALSE(last.metrics.empty());
  const std::string json = sharded.flight_recorder().ToJson();
  EXPECT_NE(json.find("\"reason\":\"forced_test_trigger\""),
            std::string::npos);
  EXPECT_NE(json.find("\"stages\":{"), std::string::npos);
}

}  // namespace
}  // namespace trel
