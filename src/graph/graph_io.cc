#include "graph/graph_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace trel {

void WriteEdgeList(const Digraph& graph, std::ostream& os) {
  os << "# nodes " << graph.NumNodes() << "\n";
  for (const auto& [from, to] : graph.Arcs()) {
    os << from << " " << to << "\n";
  }
}

StatusOr<Digraph> ReadEdgeList(std::istream& is) {
  std::string line;
  Digraph graph;
  bool have_header = false;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string word;
      long long n = 0;
      if (header >> word >> n && word == "nodes") {
        if (have_header) {
          return InvalidArgumentError("duplicate '# nodes' header");
        }
        if (n < 0 || n > (1LL << 30)) {
          return InvalidArgumentError("node count out of range");
        }
        graph = Digraph(static_cast<NodeId>(n));
        have_header = true;
      }
      continue;
    }
    std::istringstream arc_line(line);
    long long from = 0, to = 0;
    if (!(arc_line >> from >> to)) {
      return InvalidArgumentError("malformed arc at line " +
                                  std::to_string(line_number));
    }
    if (!have_header) {
      return InvalidArgumentError("missing '# nodes' header");
    }
    Status s = graph.AddArc(static_cast<NodeId>(from),
                            static_cast<NodeId>(to));
    if (!s.ok()) {
      return InvalidArgumentError("bad arc at line " +
                                  std::to_string(line_number) + ": " +
                                  s.ToString());
    }
  }
  if (!have_header) {
    return InvalidArgumentError("missing '# nodes' header");
  }
  return graph;
}

std::string ToDot(const Digraph& graph,
                  const std::vector<NodeId>& tree_parent) {
  std::ostringstream os;
  os << "digraph G {\n";
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    os << "  n" << v << ";\n";
  }
  for (const auto& [from, to] : graph.Arcs()) {
    const bool is_tree_arc =
        !tree_parent.empty() &&
        static_cast<size_t>(to) < tree_parent.size() &&
        tree_parent[to] == from;
    os << "  n" << from << " -> n" << to;
    if (!tree_parent.empty() && !is_tree_arc) os << " [style=dashed]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace trel
