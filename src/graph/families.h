#ifndef TREL_GRAPH_FAMILIES_H_
#define TREL_GRAPH_FAMILIES_H_

#include <cstdint>

#include "graph/digraph.h"

namespace trel {

// Structured DAG families beyond the paper's random/bipartite workloads,
// used by the extended benches and property sweeps.  Each models a shape
// that shows up in the paper's motivating applications (part hierarchies,
// IS-A lattices, dependency graphs).

// Grid DAG: rows x cols nodes; arcs go right and down.  Node (r, c) has
// id r*cols + c.  Wide "lattice-like" reachability with many diamonds.
Digraph GridDag(int rows, int cols);

// Series-parallel DAG built by `operations` random series/parallel
// compositions starting from single arcs.  Models structured workflows;
// its closure compresses extremely well.
Digraph SeriesParallelDag(int operations, uint64_t seed);

// DAG with power-law out-degrees (citation-graph-like): node i links to
// `Zipf(alpha)`-many uniformly random later nodes.
Digraph PowerLawDag(NodeId num_nodes, double alpha, int max_degree,
                    uint64_t seed);

// Genealogy-style DAG: every node except the founders has exactly two
// distinct earlier parents (in-degree 2).  `founders` >= 2.
Digraph GenealogyDag(NodeId num_nodes, NodeId founders, uint64_t seed);

}  // namespace trel

#endif  // TREL_GRAPH_FAMILIES_H_
