#include "graph/reachability.h"

#include <vector>

#include "common/check.h"
#include "graph/topology.h"

namespace trel {

bool DfsReaches(const Digraph& graph, NodeId source, NodeId target) {
  TREL_CHECK(graph.IsValidNode(source));
  TREL_CHECK(graph.IsValidNode(target));
  if (source == target) return true;
  std::vector<bool> visited(graph.NumNodes(), false);
  std::vector<NodeId> stack = {source};
  visited[source] = true;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId w : graph.OutNeighbors(u)) {
      if (w == target) return true;
      if (!visited[w]) {
        visited[w] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

std::vector<NodeId> DfsReachableSet(const Digraph& graph, NodeId source) {
  TREL_CHECK(graph.IsValidNode(source));
  std::vector<bool> visited(graph.NumNodes(), false);
  std::vector<NodeId> stack = {source};
  std::vector<NodeId> result = {source};
  visited[source] = true;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId w : graph.OutNeighbors(u)) {
      if (!visited[w]) {
        visited[w] = true;
        result.push_back(w);
        stack.push_back(w);
      }
    }
  }
  return result;
}

ReachabilityMatrix::ReachabilityMatrix(const Digraph& graph) {
  const NodeId n = graph.NumNodes();
  rows_.assign(n, DynamicBitset(static_cast<size_t>(n)));

  auto order = TopologicalOrder(graph);
  if (order.ok()) {
    // DAG: union successor rows in reverse topological order.
    const std::vector<NodeId>& topo = order.value();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId u = *it;
      for (NodeId w : graph.OutNeighbors(u)) {
        rows_[u].Set(static_cast<size_t>(w));
        rows_[u].UnionWith(rows_[w]);
      }
    }
    // Keep the diagonal clear: a union through a cycle cannot happen in a
    // DAG, so no extra pass is needed.
  } else {
    // General digraph: DFS from every node.
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : DfsReachableSet(graph, u)) {
        if (v != u) rows_[u].Set(static_cast<size_t>(v));
      }
    }
  }
}

int64_t ReachabilityMatrix::NumClosurePairs() const {
  int64_t total = 0;
  for (const DynamicBitset& row : rows_) {
    total += static_cast<int64_t>(row.Count());
  }
  return total;
}

std::vector<NodeId> ReachabilityMatrix::Successors(NodeId u) const {
  TREL_CHECK_GE(u, 0);
  TREL_CHECK_LT(static_cast<size_t>(u), rows_.size());
  std::vector<NodeId> result;
  for (size_t v = 0; v < rows_[u].size(); ++v) {
    if (rows_[u].Test(v)) result.push_back(static_cast<NodeId>(v));
  }
  return result;
}

}  // namespace trel
