#ifndef TREL_GRAPH_GENERATORS_H_
#define TREL_GRAPH_GENERATORS_H_

#include <cstdint>
#include <functional>

#include "graph/digraph.h"

namespace trel {

// Synthetic workloads.  The paper's evaluation ("Following [1], synthetic
// graphs were used as data sets") is parameterized by node count and
// average out-degree; the generators here reproduce that methodology plus
// the special families used in Sections 3.2 and 3.3.

// Random DAG with `num_nodes` nodes and round(num_nodes * avg_out_degree)
// distinct arcs, sampled uniformly over ordered pairs (i, j) with i < j in
// a fixed topological order (node ids are the order).  This matches the
// Agrawal–Jagadish VLDB'87 methodology the paper cites: acyclicity is
// guaranteed by construction, arcs are otherwise uniform.  The arc count
// is capped at the DAG maximum n(n-1)/2.
Digraph RandomDag(NodeId num_nodes, double avg_out_degree, uint64_t seed);

// Random tree: node 0 is the root; each node i >= 1 gets a uniformly
// random parent in [0, i).  Arcs run parent -> child.
Digraph RandomTree(NodeId num_nodes, uint64_t seed);

// Complete tree with the given branching factor and depth (depth 0 is a
// single root).  Arcs run parent -> child.
Digraph CompleteTree(int branching, int depth);

// Layered DAG: `layers` layers of `width` nodes; each (u, w) pair in
// consecutive layers is an arc with probability `arc_prob`.
Digraph LayeredDag(int layers, int width, double arc_prob, uint64_t seed);

// Complete bipartite graph: every one of `num_top` source nodes has an arc
// to every one of `num_bottom` sink nodes.  The paper's worst case for
// interval compression (Figure 3.6): Theta(num_top * num_bottom) intervals.
Digraph CompleteBipartite(NodeId num_top, NodeId num_bottom);

// The Figure 3.7 fix: same reachability as CompleteBipartite but routed
// through one intermediary node, collapsing the closure to O(n) intervals.
// Node layout: [0, num_top) sources, num_top = intermediary,
// (num_top, num_top + num_bottom] sinks.
Digraph BipartiteWithIntermediary(NodeId num_top, NodeId num_bottom);

// Hub-dominated DAG: `num_sources` source nodes each pick 1-3 of the
// `num_hubs` hub nodes; every hub fans out to a random ~half of the
// `num_sinks` sink nodes; plus a sprinkle of direct source -> sink arcs
// (about one per 16 sources) that bypass the hubs entirely.  Node layout:
// [0, num_sources) sources, then hubs, then sinks.
//
// This is the 2-hop index's home turf: almost every arc touches one of a
// handful of hubs, yet each hub's sink set is a different random subset,
// so the interval labeling fragments into Theta(num_sources * num_sinks)
// intervals (each source's sink reachability is a union of scattered
// postorder runs) while 2-hop labels stay at a few entries per node.
Digraph HubDag(NodeId num_sources, NodeId num_hubs, NodeId num_sinks,
               uint64_t seed);

// Chain-structured DAG: `num_chains` explicit paths of `chain_length`
// nodes each (node w * chain_length + i, arcs along ascending i), plus
// random cross arcs between DIFFERENT chains until the total arc count
// reaches round(n * avg_degree).  A cross arc always runs from a smaller
// to a strictly larger in-chain position, so node id order is a
// topological order and acyclicity holds by construction.
//
// This is the chain-fast publish tier's home turf (DESIGN.md §"Publish
// strategies"): the greedy path cover recovers ~num_chains chains, so
// BuildChainLabeling needs ceil(num_chains / 64) cheap passes where
// Alg1's optimal-cover build pays per-interval antichain merges — while
// the cross arcs keep the closure dense enough that the build time
// actually matters.  avg_degree counts ALL arcs (the n - num_chains
// chain arcs included) and must be >= their share.
Digraph ChainedDag(int num_chains, NodeId chain_length, double avg_degree,
                   uint64_t seed);

// Clustered DAG: `num_clusters` contiguous-id clusters of `cluster_size`
// nodes each, with round(n * avg_out_degree) total arcs.  All arcs run
// from a smaller to a larger node id, so node id order is topological
// and acyclicity holds by construction.  A `cross_fraction` share of the
// arcs cross clusters; every cross arc leaves through one of the last
// `gateways` nodes of its source cluster (the cluster's "gateways"), so
// cross-cluster traffic concentrates on ~num_clusters * gateways nodes.
// The rest of the arcs are uniform intra-cluster pairs.
//
// This is the sharded service's home turf: a topo-range partitioner cuts
// between clusters at a small edge-cut fraction, and the greedy hub
// cover of the cut arcs recovers the gateways (see graph/partition.h).
// RandomDag is the wrong shape for that experiment — its uniform arc
// spans make every cut sever Theta(m) arcs.
Digraph ClusteredDag(int num_clusters, NodeId cluster_size,
                     double avg_out_degree, int gateways,
                     double cross_fraction, uint64_t seed);

// Enumerates every DAG over the fixed topological order 0 < 1 < ... < n-1:
// all 2^(n(n-1)/2) subsets of the arcs (i, j), i < j.  This is the
// population behind the paper's Figure 3.12 sensitivity experiment.
// Practical for n <= 6 or so; aborts if n(n-1)/2 > 40.
// Returns the number of graphs visited.
int64_t EnumerateDagsOverOrder(NodeId num_nodes,
                               const std::function<void(const Digraph&)>& fn);

// One uniform sample from the same population (each possible arc present
// independently with probability 1/2).
Digraph SampleDagOverOrder(NodeId num_nodes, uint64_t seed);

}  // namespace trel

#endif  // TREL_GRAPH_GENERATORS_H_
