#include "graph/partition.h"

#include <algorithm>
#include <cstdlib>
#include <queue>
#include <utility>

#include "common/check.h"
#include "graph/topology.h"

namespace trel {

namespace {

// Lexicographically smallest topological order (min-id Kahn).  The
// generic TopologicalOrder is BFS-layered, which interleaves far-apart
// id ranges — terrible for the cut sweep, since node ids usually encode
// locality (clusters, load order).  The lex-min order degenerates to
// the identity permutation whenever id order is itself topological, so
// id-contiguous clusters stay contiguous in position space.
StatusOr<std::vector<NodeId>> LexMinTopologicalOrder(const Digraph& graph) {
  const NodeId n = graph.NumNodes();
  std::vector<int> in_degree(n, 0);
  for (NodeId v = 0; v < n; ++v) in_degree[v] = graph.InDegree(v);
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<NodeId>>
      ready;
  for (NodeId v = 0; v < n; ++v) {
    if (in_degree[v] == 0) ready.push(v);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (NodeId w : graph.OutNeighbors(u)) {
      if (--in_degree[w] == 0) ready.push(w);
    }
  }
  if (static_cast<NodeId>(order.size()) != n) {
    return FailedPreconditionError("graph contains a cycle");
  }
  return order;
}

// Picks the K-1 cut positions.  crossing[p] counts arcs spanning a cut
// just before topological position p (valid p in [1, n-1]); each cut
// slides within its slack window to the minimum-crossing position,
// constrained to stay at or after the previous cut (empty shards are
// allowed when n < K).
std::vector<int64_t> ChooseCuts(const std::vector<int64_t>& crossing,
                                int64_t n, int num_shards,
                                double window_fraction) {
  std::vector<int64_t> cuts;
  cuts.reserve(num_shards - 1);
  const int64_t window = std::max<int64_t>(
      1, static_cast<int64_t>(window_fraction * static_cast<double>(n)));
  int64_t prev = 0;
  for (int k = 1; k < num_shards; ++k) {
    const int64_t ideal = (n * k) / num_shards;
    int64_t lo = std::max<int64_t>(prev, ideal - window);
    int64_t hi = std::min<int64_t>(n, ideal + window);
    if (lo > hi) lo = hi;
    int64_t best = lo;
    // Only interior positions have a crossing count; cuts at 0 or n make
    // an empty shard and sever nothing.
    for (int64_t p = lo; p <= hi; ++p) {
      const int64_t cost = (p >= 1 && p < n) ? crossing[p] : 0;
      const int64_t best_cost =
          (best >= 1 && best < n) ? crossing[best] : 0;
      if (cost < best_cost ||
          (cost == best_cost &&
           std::llabs(p - ideal) < std::llabs(best - ideal))) {
        best = p;
      }
    }
    cuts.push_back(best);
    prev = best;
  }
  return cuts;
}

}  // namespace

StatusOr<Partition> PartitionDag(const Digraph& graph,
                                 const PartitionOptions& options) {
  if (options.num_shards < 1) {
    return InvalidArgumentError("num_shards must be >= 1");
  }
  StatusOr<std::vector<NodeId>> order = LexMinTopologicalOrder(graph);
  TREL_RETURN_IF_ERROR(order.status());
  const int64_t n = graph.NumNodes();
  const std::vector<int> pos = PositionsInOrder(*order, graph.NumNodes());

  Partition part;
  part.num_shards = options.num_shards;
  part.shard_of.assign(n, 0);
  part.is_hub.assign(n, 0);
  part.shard_nodes.assign(options.num_shards, 0);
  part.total_arcs = graph.NumArcs();

  if (options.num_shards > 1 && n > 0) {
    // crossing[p] = #{arcs (u,v) : pos[u] < p <= pos[v]}; each arc
    // contributes to positions (pos[u], pos[v]], accumulated with a
    // difference array.
    std::vector<int64_t> diff(n + 2, 0);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : graph.OutNeighbors(u)) {
        const int64_t a = pos[u];
        const int64_t b = pos[v];
        TREL_CHECK_LT(a, b);
        diff[a + 1] += 1;
        diff[b + 1] -= 1;
      }
    }
    std::vector<int64_t> crossing(n + 1, 0);
    int64_t run = 0;
    for (int64_t p = 1; p <= n; ++p) {
      run += diff[p];
      crossing[p] = run;
    }
    const std::vector<int64_t> cuts =
        ChooseCuts(crossing, n, options.num_shards, options.window_fraction);
    for (int64_t p = 0; p < n; ++p) {
      const NodeId node = (*order)[p];
      int shard = 0;
      while (shard < static_cast<int>(cuts.size()) && p >= cuts[shard]) {
        ++shard;
      }
      part.shard_of[node] = shard;
    }
  }
  for (NodeId v = 0; v < n; ++v) ++part.shard_nodes[part.shard_of[v]];

  // Greedy vertex cover of the cut arcs by descending uncovered cross
  // degree: classic 2-approximation territory, and on hub-and-spoke
  // graphs it recovers the gateways.  Lazy-deletion heap: stale entries
  // are skipped when their recorded degree no longer matches.
  std::vector<std::pair<NodeId, NodeId>> cut;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      if (part.shard_of[u] != part.shard_of[v]) cut.emplace_back(u, v);
    }
  }
  part.cut_arcs = static_cast<int64_t>(cut.size());
  if (!cut.empty()) {
    std::vector<std::vector<int64_t>> incident(n);
    for (int64_t i = 0; i < static_cast<int64_t>(cut.size()); ++i) {
      incident[cut[i].first].push_back(i);
      incident[cut[i].second].push_back(i);
    }
    std::vector<int64_t> degree(n, 0);
    std::priority_queue<std::pair<int64_t, NodeId>> heap;
    for (NodeId v = 0; v < n; ++v) {
      degree[v] = static_cast<int64_t>(incident[v].size());
      // Negated id so ties prefer the SMALLER node id (max-heap).
      if (degree[v] > 0) heap.emplace(degree[v], -v);
    }
    std::vector<uint8_t> covered(cut.size(), 0);
    while (!heap.empty()) {
      const auto [d, neg] = heap.top();
      heap.pop();
      const NodeId v = -neg;
      if (d != degree[v] || d == 0) continue;  // stale or exhausted
      part.is_hub[v] = 1;
      degree[v] = 0;
      for (int64_t i : incident[v]) {
        if (covered[i]) continue;
        covered[i] = 1;
        const NodeId other = cut[i].first == v ? cut[i].second : cut[i].first;
        if (part.is_hub[other]) continue;
        if (--degree[other] > 0) heap.emplace(degree[other], -other);
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (part.is_hub[v]) part.hubs.push_back(v);
  }
  return part;
}

}  // namespace trel
