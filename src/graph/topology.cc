#include "graph/topology.h"

#include <vector>

#include "common/check.h"

namespace trel {

StatusOr<std::vector<NodeId>> TopologicalOrder(const Digraph& graph) {
  const NodeId n = graph.NumNodes();
  std::vector<int> in_degree(n, 0);
  for (NodeId v = 0; v < n; ++v) in_degree[v] = graph.InDegree(v);

  std::vector<NodeId> queue;
  queue.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    if (in_degree[v] == 0) queue.push_back(v);
  }

  std::vector<NodeId> order;
  order.reserve(n);
  for (size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    order.push_back(u);
    for (NodeId w : graph.OutNeighbors(u)) {
      if (--in_degree[w] == 0) queue.push_back(w);
    }
  }

  if (static_cast<NodeId>(order.size()) != n) {
    return FailedPreconditionError("graph contains a cycle");
  }
  return order;
}

bool IsAcyclic(const Digraph& graph) {
  return TopologicalOrder(graph).ok();
}

std::vector<int> PositionsInOrder(const std::vector<NodeId>& order,
                                  NodeId num_nodes) {
  std::vector<int> position(num_nodes, -1);
  for (size_t i = 0; i < order.size(); ++i) {
    TREL_CHECK_GE(order[i], 0);
    TREL_CHECK_LT(order[i], num_nodes);
    position[order[i]] = static_cast<int>(i);
  }
  return position;
}

}  // namespace trel
