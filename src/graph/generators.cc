#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace trel {
namespace {

// Packs an ordered pair into one key for the dedupe set.
uint64_t PairKey(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

}  // namespace

Digraph RandomDag(NodeId num_nodes, double avg_out_degree, uint64_t seed) {
  TREL_CHECK_GT(num_nodes, 0);
  TREL_CHECK_GE(avg_out_degree, 0.0);
  Digraph graph(num_nodes);
  const int64_t max_arcs =
      static_cast<int64_t>(num_nodes) * (num_nodes - 1) / 2;
  int64_t target = std::llround(avg_out_degree * num_nodes);
  target = std::min(target, max_arcs);

  Random rng(seed);
  std::unordered_set<uint64_t> used;
  used.reserve(static_cast<size_t>(target) * 2);

  // Rejection sampling is efficient while the graph is sparse; for dense
  // requests (> half the possible arcs) enumerate-and-shuffle instead.
  if (target <= max_arcs / 2 || max_arcs < 64) {
    int64_t added = 0;
    while (added < target) {
      NodeId a = static_cast<NodeId>(rng.Uniform(num_nodes));
      NodeId b = static_cast<NodeId>(rng.Uniform(num_nodes));
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      if (!used.insert(PairKey(a, b)).second) continue;
      TREL_CHECK(graph.AddArc(a, b).ok());
      ++added;
    }
  } else {
    std::vector<std::pair<NodeId, NodeId>> all;
    all.reserve(static_cast<size_t>(max_arcs));
    for (NodeId i = 0; i < num_nodes; ++i) {
      for (NodeId j = i + 1; j < num_nodes; ++j) all.emplace_back(i, j);
    }
    // Fisher-Yates prefix shuffle of length `target`.
    for (int64_t i = 0; i < target; ++i) {
      const int64_t j =
          i + static_cast<int64_t>(rng.Uniform(all.size() - i));
      std::swap(all[i], all[j]);
      TREL_CHECK(graph.AddArc(all[i].first, all[i].second).ok());
    }
  }
  return graph;
}

Digraph RandomTree(NodeId num_nodes, uint64_t seed) {
  TREL_CHECK_GT(num_nodes, 0);
  Digraph graph(num_nodes);
  Random rng(seed);
  for (NodeId v = 1; v < num_nodes; ++v) {
    const NodeId parent = static_cast<NodeId>(rng.Uniform(v));
    TREL_CHECK(graph.AddArc(parent, v).ok());
  }
  return graph;
}

Digraph CompleteTree(int branching, int depth) {
  TREL_CHECK_GE(branching, 1);
  TREL_CHECK_GE(depth, 0);
  // Number of nodes = (b^(depth+1) - 1) / (b - 1); build breadth-first.
  Digraph graph;
  const NodeId root = graph.AddNode();
  std::vector<NodeId> frontier = {root};
  for (int level = 0; level < depth; ++level) {
    std::vector<NodeId> next;
    next.reserve(frontier.size() * static_cast<size_t>(branching));
    for (NodeId parent : frontier) {
      for (int c = 0; c < branching; ++c) {
        const NodeId child = graph.AddNode();
        TREL_CHECK(graph.AddArc(parent, child).ok());
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return graph;
}

Digraph LayeredDag(int layers, int width, double arc_prob, uint64_t seed) {
  TREL_CHECK_GE(layers, 1);
  TREL_CHECK_GE(width, 1);
  Digraph graph(static_cast<NodeId>(layers) * width);
  Random rng(seed);
  for (int layer = 0; layer + 1 < layers; ++layer) {
    for (int a = 0; a < width; ++a) {
      for (int b = 0; b < width; ++b) {
        if (rng.Bernoulli(arc_prob)) {
          const NodeId u = static_cast<NodeId>(layer * width + a);
          const NodeId v = static_cast<NodeId>((layer + 1) * width + b);
          TREL_CHECK(graph.AddArc(u, v).ok());
        }
      }
    }
  }
  return graph;
}

Digraph CompleteBipartite(NodeId num_top, NodeId num_bottom) {
  TREL_CHECK_GT(num_top, 0);
  TREL_CHECK_GT(num_bottom, 0);
  Digraph graph(num_top + num_bottom);
  for (NodeId u = 0; u < num_top; ++u) {
    for (NodeId v = 0; v < num_bottom; ++v) {
      TREL_CHECK(graph.AddArc(u, num_top + v).ok());
    }
  }
  return graph;
}

Digraph BipartiteWithIntermediary(NodeId num_top, NodeId num_bottom) {
  TREL_CHECK_GT(num_top, 0);
  TREL_CHECK_GT(num_bottom, 0);
  Digraph graph(num_top + 1 + num_bottom);
  const NodeId middle = num_top;
  for (NodeId u = 0; u < num_top; ++u) {
    TREL_CHECK(graph.AddArc(u, middle).ok());
  }
  for (NodeId v = 0; v < num_bottom; ++v) {
    TREL_CHECK(graph.AddArc(middle, middle + 1 + v).ok());
  }
  return graph;
}

Digraph ChainedDag(int num_chains, NodeId chain_length, double avg_degree,
                   uint64_t seed) {
  TREL_CHECK_GT(num_chains, 0);
  TREL_CHECK_GT(chain_length, 0);
  const NodeId n = static_cast<NodeId>(num_chains) * chain_length;
  Digraph graph(n);
  for (int w = 0; w < num_chains; ++w) {
    for (NodeId i = 0; i + 1 < chain_length; ++i) {
      const NodeId v = static_cast<NodeId>(w) * chain_length + i;
      TREL_CHECK(graph.AddArc(v, v + 1).ok());
    }
  }
  const int64_t chain_arcs =
      static_cast<int64_t>(num_chains) * (chain_length - 1);
  int64_t target = std::llround(avg_degree * n) - chain_arcs;
  TREL_CHECK_GE(target, 0) << "avg_degree below the chain arcs' share";
  if (num_chains == 1 || chain_length == 1) target = 0;  // No cross arcs fit.
  Random rng(seed);
  std::unordered_set<uint64_t> used;
  used.reserve(static_cast<size_t>(target) * 2);
  int64_t added = 0;
  while (added < target) {
    const int wa = static_cast<int>(rng.Uniform(num_chains));
    const int wb = static_cast<int>(rng.Uniform(num_chains));
    if (wa == wb) continue;
    const NodeId ia = static_cast<NodeId>(rng.Uniform(chain_length));
    const NodeId ib = static_cast<NodeId>(rng.Uniform(chain_length));
    // Strictly increasing in-chain position keeps the graph acyclic (and
    // node id order topological) regardless of chain order.
    if (ia >= ib) continue;
    const NodeId a = static_cast<NodeId>(wa) * chain_length + ia;
    const NodeId b = static_cast<NodeId>(wb) * chain_length + ib;
    if (!used.insert(PairKey(a, b)).second) continue;
    TREL_CHECK(graph.AddArc(a, b).ok());
    ++added;
  }
  return graph;
}

Digraph ClusteredDag(int num_clusters, NodeId cluster_size,
                     double avg_out_degree, int gateways,
                     double cross_fraction, uint64_t seed) {
  TREL_CHECK_GT(num_clusters, 0);
  TREL_CHECK_GT(cluster_size, 0);
  TREL_CHECK_GT(gateways, 0);
  TREL_CHECK_LE(gateways, cluster_size);
  TREL_CHECK_GE(cross_fraction, 0.0);
  TREL_CHECK_LE(cross_fraction, 1.0);
  const NodeId n = static_cast<NodeId>(num_clusters) * cluster_size;
  Digraph graph(n);
  const int64_t target = std::llround(avg_out_degree * n);
  int64_t cross_target =
      num_clusters > 1 ? std::llround(cross_fraction * target) : 0;
  // Intra-cluster arcs need i < j pairs; a 1-node cluster has none.
  int64_t intra_target = cluster_size > 1 ? target - cross_target : 0;
  const int64_t intra_max = static_cast<int64_t>(num_clusters) *
                            cluster_size * (cluster_size - 1) / 2;
  intra_target = std::min(intra_target, intra_max);
  Random rng(seed);
  std::unordered_set<uint64_t> used;
  used.reserve(static_cast<size_t>(target) * 2);
  int64_t added = 0;
  while (added < intra_target) {
    const NodeId base =
        static_cast<NodeId>(rng.Uniform(num_clusters)) * cluster_size;
    const NodeId i = static_cast<NodeId>(rng.Uniform(cluster_size));
    const NodeId j = static_cast<NodeId>(rng.Uniform(cluster_size));
    if (i >= j) continue;
    if (!used.insert(PairKey(base + i, base + j)).second) continue;
    TREL_CHECK(graph.AddArc(base + i, base + j).ok());
    ++added;
  }
  added = 0;
  int64_t attempts = 0;
  while (added < cross_target && attempts < cross_target * 64 + 1024) {
    ++attempts;
    const int ca = static_cast<int>(rng.Uniform(num_clusters));
    const int cb = static_cast<int>(rng.Uniform(num_clusters));
    if (ca >= cb) continue;  // Forward in id order keeps it acyclic.
    // Leave through a gateway: one of the source cluster's last nodes.
    const NodeId u = static_cast<NodeId>(ca) * cluster_size + cluster_size -
                     1 - static_cast<NodeId>(rng.Uniform(gateways));
    const NodeId v = static_cast<NodeId>(cb) * cluster_size +
                     static_cast<NodeId>(rng.Uniform(cluster_size));
    if (!used.insert(PairKey(u, v)).second) continue;
    TREL_CHECK(graph.AddArc(u, v).ok());
    ++added;
  }
  return graph;
}

int64_t EnumerateDagsOverOrder(
    NodeId num_nodes, const std::function<void(const Digraph&)>& fn) {
  TREL_CHECK_GT(num_nodes, 0);
  const int num_slots = num_nodes * (num_nodes - 1) / 2;
  TREL_CHECK_LE(num_slots, 40) << "enumeration space too large";

  // Precompute the (i, j) pair for each bit position.
  std::vector<std::pair<NodeId, NodeId>> slots;
  slots.reserve(static_cast<size_t>(num_slots));
  for (NodeId i = 0; i < num_nodes; ++i) {
    for (NodeId j = i + 1; j < num_nodes; ++j) slots.emplace_back(i, j);
  }

  const uint64_t total = uint64_t{1} << num_slots;
  for (uint64_t mask = 0; mask < total; ++mask) {
    Digraph graph(num_nodes);
    for (int bit = 0; bit < num_slots; ++bit) {
      if ((mask >> bit) & 1) {
        TREL_CHECK(graph.AddArc(slots[bit].first, slots[bit].second).ok());
      }
    }
    fn(graph);
  }
  return static_cast<int64_t>(total);
}

Digraph HubDag(NodeId num_sources, NodeId num_hubs, NodeId num_sinks,
               uint64_t seed) {
  TREL_CHECK_GT(num_sources, 0);
  TREL_CHECK_GT(num_hubs, 0);
  TREL_CHECK_GT(num_sinks, 0);
  const NodeId hub_base = num_sources;
  const NodeId sink_base = num_sources + num_hubs;
  Digraph graph(num_sources + num_hubs + num_sinks);
  Random rng(seed);
  std::unordered_set<uint64_t> used;
  for (NodeId s = 0; s < num_sources; ++s) {
    const int picks = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < picks; ++i) {
      const NodeId h =
          hub_base + static_cast<NodeId>(rng.Uniform(num_hubs));
      if (used.insert(PairKey(s, h)).second) {
        TREL_CHECK(graph.AddArc(s, h).ok());
      }
    }
  }
  for (NodeId h = 0; h < num_hubs; ++h) {
    // Each hub reaches its own random half of the sinks, so different
    // hubs' sink sets interleave — that interleaving is what shreds the
    // interval labeling of the sources upstream.
    for (NodeId t = 0; t < num_sinks; ++t) {
      if (rng.Bernoulli(0.5)) {
        TREL_CHECK(graph.AddArc(hub_base + h, sink_base + t).ok());
      }
    }
  }
  // Hub-free shortcuts exercise a 2-hop index's residual path.
  for (NodeId s = 0; s < num_sources; s += 16) {
    const NodeId t = sink_base + static_cast<NodeId>(rng.Uniform(num_sinks));
    if (used.insert(PairKey(s, t)).second) {
      TREL_CHECK(graph.AddArc(s, t).ok());
    }
  }
  return graph;
}

Digraph SampleDagOverOrder(NodeId num_nodes, uint64_t seed) {
  TREL_CHECK_GT(num_nodes, 0);
  Digraph graph(num_nodes);
  Random rng(seed);
  for (NodeId i = 0; i < num_nodes; ++i) {
    for (NodeId j = i + 1; j < num_nodes; ++j) {
      if (rng.Bernoulli(0.5)) TREL_CHECK(graph.AddArc(i, j).ok());
    }
  }
  return graph;
}

}  // namespace trel
