#ifndef TREL_GRAPH_GRAPH_IO_H_
#define TREL_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <vector>
#include <string>

#include "common/statusor.h"
#include "graph/digraph.h"

namespace trel {

// Writes one "<from> <to>" line per arc, preceded by a header line
// "# nodes <n>" so isolated nodes round-trip.
void WriteEdgeList(const Digraph& graph, std::ostream& os);

// Parses the WriteEdgeList format.  Lines starting with '#' other than the
// header are comments.  Fails with InvalidArgument on malformed input.
StatusOr<Digraph> ReadEdgeList(std::istream& is);

// Graphviz rendering for debugging and documentation examples.
// `tree_parent` (optional, may be empty) draws tree-cover arcs solid and
// non-tree arcs dashed, matching the paper's figures.
std::string ToDot(const Digraph& graph,
                  const std::vector<NodeId>& tree_parent = {});

}  // namespace trel

#endif  // TREL_GRAPH_GRAPH_IO_H_
