#ifndef TREL_GRAPH_TOPOLOGY_H_
#define TREL_GRAPH_TOPOLOGY_H_

#include <vector>

#include "common/statusor.h"
#include "graph/digraph.h"

namespace trel {

// Returns the nodes of `graph` in a topological order (every arc goes from
// an earlier to a later position), or FailedPrecondition if the graph has a
// cycle.  Kahn's algorithm; deterministic (smaller node ids first among
// ready nodes is NOT guaranteed — insertion order is).
StatusOr<std::vector<NodeId>> TopologicalOrder(const Digraph& graph);

// True iff `graph` has no directed cycle.
bool IsAcyclic(const Digraph& graph);

// Inverse permutation of a topological order: position_of[v] = index of v
// in `order`.
std::vector<int> PositionsInOrder(const std::vector<NodeId>& order,
                                  NodeId num_nodes);

}  // namespace trel

#endif  // TREL_GRAPH_TOPOLOGY_H_
