#include "graph/scc.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"

namespace trel {
namespace {

// Iterative Tarjan state per node.
struct TarjanFrame {
  NodeId node;
  size_t next_child;
};

}  // namespace

Condensation CondenseScc(const Digraph& graph) {
  const NodeId n = graph.NumNodes();
  constexpr int kUnvisited = -1;

  std::vector<int> index(n, kUnvisited);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::vector<TarjanFrame> call_stack;
  std::vector<NodeId> component_of(n, kNoNode);
  std::vector<std::vector<NodeId>> members;
  int next_index = 0;

  for (NodeId start = 0; start < n; ++start) {
    if (index[start] != kUnvisited) continue;
    call_stack.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;

    while (!call_stack.empty()) {
      TarjanFrame& frame = call_stack.back();
      const NodeId u = frame.node;
      const auto& out = graph.OutNeighbors(u);
      if (frame.next_child < out.size()) {
        const NodeId w = out[frame.next_child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[u] = std::min(lowlink[u], index[w]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          // u is the root of an SCC: pop it off the stack.
          const NodeId component = static_cast<NodeId>(members.size());
          members.emplace_back();
          NodeId w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component_of[w] = component;
            members[component].push_back(w);
          } while (w != u);
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const NodeId parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
      }
    }
  }

  Condensation result;
  result.component_of = std::move(component_of);
  result.dag = Digraph(static_cast<NodeId>(members.size()));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId w : graph.OutNeighbors(u)) {
      const NodeId cu = result.component_of[u];
      const NodeId cw = result.component_of[w];
      if (cu != cw && !result.dag.HasArc(cu, cw)) {
        TREL_CHECK(result.dag.AddArc(cu, cw).ok());
      }
    }
  }
  result.members = std::move(members);
  return result;
}

}  // namespace trel
