#ifndef TREL_GRAPH_SCC_H_
#define TREL_GRAPH_SCC_H_

#include <vector>

#include "graph/digraph.h"

namespace trel {

// Decomposition of a digraph into strongly connected components plus the
// acyclic condensation graph, per the paper's note that cyclic relations
// are handled "by collapsing strongly connected components into one node".
struct Condensation {
  // component_of[v] = id of v's component in [0, NumComponents).
  std::vector<NodeId> component_of;
  // members[c] = nodes in component c.
  std::vector<std::vector<NodeId>> members;
  // Acyclic graph with one node per component; arc (a,b) iff some arc in
  // the original graph crosses from component a to component b.
  Digraph dag;

  NodeId NumComponents() const {
    return static_cast<NodeId>(members.size());
  }
};

// Computes SCCs (iterative Tarjan, safe for deep graphs) and the
// condensation DAG.
Condensation CondenseScc(const Digraph& graph);

}  // namespace trel

#endif  // TREL_GRAPH_SCC_H_
