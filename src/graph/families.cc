#include "graph/families.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace trel {

Digraph GridDag(int rows, int cols) {
  TREL_CHECK_GE(rows, 1);
  TREL_CHECK_GE(cols, 1);
  Digraph graph(static_cast<NodeId>(rows) * cols);
  auto id = [cols](int r, int c) { return static_cast<NodeId>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) TREL_CHECK(graph.AddArc(id(r, c), id(r, c + 1)).ok());
      if (r + 1 < rows) TREL_CHECK(graph.AddArc(id(r, c), id(r + 1, c)).ok());
    }
  }
  return graph;
}

Digraph SeriesParallelDag(int operations, uint64_t seed) {
  TREL_CHECK_GE(operations, 0);
  // Components as (source, sink, arcs) over a growing node space; compose
  // randomly, then emit one Digraph.
  struct Component {
    NodeId source;
    NodeId sink;
  };
  Random rng(seed);
  std::vector<std::pair<NodeId, NodeId>> arcs;
  NodeId next_node = 0;
  auto make_edge = [&]() {
    const NodeId a = next_node++;
    const NodeId b = next_node++;
    arcs.emplace_back(a, b);
    return Component{a, b};
  };

  std::vector<Component> pool = {make_edge()};
  for (int op = 0; op < operations; ++op) {
    // Grow the pool sometimes so compositions have material to work with.
    if (pool.size() < 2 || rng.Bernoulli(0.4)) {
      pool.push_back(make_edge());
      continue;
    }
    const size_t i = rng.Uniform(pool.size());
    size_t j = rng.Uniform(pool.size() - 1);
    if (j >= i) ++j;
    Component a = pool[i];
    Component b = pool[j];
    // Remove the higher index first.
    pool.erase(pool.begin() + static_cast<int64_t>(std::max(i, j)));
    pool.erase(pool.begin() + static_cast<int64_t>(std::min(i, j)));
    if (rng.Bernoulli(0.5)) {
      // Series: a.sink -> b.source.
      arcs.emplace_back(a.sink, b.source);
      pool.push_back({a.source, b.sink});
    } else {
      // Parallel: shared endpoints via fresh source/sink.
      const NodeId source = next_node++;
      const NodeId sink = next_node++;
      arcs.emplace_back(source, a.source);
      arcs.emplace_back(source, b.source);
      arcs.emplace_back(a.sink, sink);
      arcs.emplace_back(b.sink, sink);
      pool.push_back({source, sink});
    }
  }

  Digraph graph(next_node);
  for (const auto& [from, to] : arcs) {
    TREL_CHECK(graph.AddArc(from, to).ok());
  }
  return graph;
}

Digraph PowerLawDag(NodeId num_nodes, double alpha, int max_degree,
                    uint64_t seed) {
  TREL_CHECK_GT(num_nodes, 0);
  TREL_CHECK_GT(alpha, 1.0);
  TREL_CHECK_GE(max_degree, 1);
  Random rng(seed);
  Digraph graph(num_nodes);

  // Precompute the Zipf CDF over degrees 1..max_degree.
  std::vector<double> cdf(static_cast<size_t>(max_degree));
  double total = 0;
  for (int k = 1; k <= max_degree; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), alpha);
    cdf[static_cast<size_t>(k - 1)] = total;
  }
  for (double& x : cdf) x /= total;

  for (NodeId v = 0; v + 1 < num_nodes; ++v) {
    const double u = rng.NextDouble();
    int degree = 1;
    while (degree < max_degree && u > cdf[static_cast<size_t>(degree - 1)]) {
      ++degree;
    }
    for (int k = 0; k < degree; ++k) {
      const NodeId w = v + 1 +
                       static_cast<NodeId>(rng.Uniform(
                           static_cast<uint64_t>(num_nodes - v - 1)));
      // Duplicates are simply skipped.
      (void)graph.AddArc(v, w);
    }
  }
  return graph;
}

Digraph GenealogyDag(NodeId num_nodes, NodeId founders, uint64_t seed) {
  TREL_CHECK_GE(founders, 2);
  TREL_CHECK_GE(num_nodes, founders);
  Random rng(seed);
  Digraph graph(num_nodes);
  for (NodeId v = founders; v < num_nodes; ++v) {
    const NodeId p1 = static_cast<NodeId>(rng.Uniform(v));
    NodeId p2 = static_cast<NodeId>(rng.Uniform(v - 1));
    if (p2 >= p1) ++p2;
    TREL_CHECK(graph.AddArc(p1, v).ok());
    TREL_CHECK(graph.AddArc(p2, v).ok());
  }
  return graph;
}

}  // namespace trel
