#ifndef TREL_GRAPH_DIGRAPH_H_
#define TREL_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"

namespace trel {

// Node identifier.  Nodes are dense integers [0, NumNodes()).
using NodeId = int32_t;

// Sentinel for "no node" (e.g., the tree parent of a root).
inline constexpr NodeId kNoNode = -1;

// Mutable directed graph with both out- and in-adjacency lists.
//
// This is the base representation for the binary relation whose transitive
// closure the library compresses: one node per distinct value, one arc per
// tuple.  Parallel arcs are rejected; self-loops are rejected (the closure
// machinery assumes simple graphs and handles cycles via condensation, see
// scc.h).
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(NodeId num_nodes)
      : out_(num_nodes), in_(num_nodes), num_arcs_(0) {}

  Digraph(const Digraph&) = default;
  Digraph& operator=(const Digraph&) = default;
  Digraph(Digraph&&) = default;
  Digraph& operator=(Digraph&&) = default;

  NodeId NumNodes() const { return static_cast<NodeId>(out_.size()); }
  int64_t NumArcs() const { return num_arcs_; }

  // Appends a new isolated node and returns its id.
  NodeId AddNode();

  // Adds the arc (from, to).  Fails with InvalidArgument on out-of-range
  // endpoints or self-loops, AlreadyExists on duplicate arcs.
  Status AddArc(NodeId from, NodeId to);

  // Removes the arc (from, to); NotFound if absent.
  Status RemoveArc(NodeId from, NodeId to);

  bool HasArc(NodeId from, NodeId to) const;

  bool IsValidNode(NodeId node) const {
    return node >= 0 && node < NumNodes();
  }

  // Immediate successors of `node` (direct arcs out).
  const std::vector<NodeId>& OutNeighbors(NodeId node) const;
  // Immediate predecessors of `node` (direct arcs in).
  const std::vector<NodeId>& InNeighbors(NodeId node) const;

  int OutDegree(NodeId node) const {
    return static_cast<int>(OutNeighbors(node).size());
  }
  int InDegree(NodeId node) const {
    return static_cast<int>(InNeighbors(node).size());
  }

  // Nodes with no incoming arcs (the candidates the paper hooks to a
  // virtual root).
  std::vector<NodeId> RootNodes() const;
  // Nodes with no outgoing arcs.
  std::vector<NodeId> LeafNodes() const;

  // All arcs as (from, to) pairs, ordered by from then insertion order.
  std::vector<std::pair<NodeId, NodeId>> Arcs() const;

  bool operator==(const Digraph& other) const {
    return out_ == other.out_;
  }

 private:
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  int64_t num_arcs_ = 0;
};

}  // namespace trel

#endif  // TREL_GRAPH_DIGRAPH_H_
