#ifndef TREL_GRAPH_REACHABILITY_H_
#define TREL_GRAPH_REACHABILITY_H_

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "graph/digraph.h"

namespace trel {

// True iff there is a directed path from `source` to `target` (a node
// reaches itself).  On-the-fly iterative DFS — the "pointer chasing"
// baseline the paper argues against for repeated queries.
bool DfsReaches(const Digraph& graph, NodeId source, NodeId target);

// All nodes reachable from `source`, including `source` itself.
std::vector<NodeId> DfsReachableSet(const Digraph& graph, NodeId source);

// Ground-truth reachability matrix for testing and for the full-closure
// baseline: row u has bit v set iff u reaches v (u != v; the diagonal is
// left clear so Count() sums proper closure pairs).
//
// Works on any digraph (cycles allowed).  O(n * m / 64) for DAGs via
// reverse-topological bitset union; falls back to per-node DFS otherwise.
class ReachabilityMatrix {
 public:
  explicit ReachabilityMatrix(const Digraph& graph);

  bool Reaches(NodeId u, NodeId v) const {
    if (u == v) return true;
    return rows_[u].Test(static_cast<size_t>(v));
  }

  // Number of ordered pairs (u, v), u != v, with u reaching v — the
  // paper's "storage for the uncompressed transitive closure" in units of
  // successor-list entries.
  int64_t NumClosurePairs() const;

  // Successors of u excluding u itself, ascending.
  std::vector<NodeId> Successors(NodeId u) const;

 private:
  std::vector<DynamicBitset> rows_;
};

}  // namespace trel

#endif  // TREL_GRAPH_REACHABILITY_H_
