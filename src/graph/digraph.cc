#include "graph/digraph.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace trel {

NodeId Digraph::AddNode() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

Status Digraph::AddArc(NodeId from, NodeId to) {
  if (!IsValidNode(from) || !IsValidNode(to)) {
    return InvalidArgumentError("arc endpoint out of range: (" +
                                std::to_string(from) + "," +
                                std::to_string(to) + ")");
  }
  if (from == to) {
    return InvalidArgumentError("self-loop rejected: node " +
                                std::to_string(from));
  }
  if (HasArc(from, to)) {
    return AlreadyExistsError("duplicate arc (" + std::to_string(from) + "," +
                              std::to_string(to) + ")");
  }
  out_[from].push_back(to);
  in_[to].push_back(from);
  ++num_arcs_;
  return Status::Ok();
}

Status Digraph::RemoveArc(NodeId from, NodeId to) {
  if (!IsValidNode(from) || !IsValidNode(to)) {
    return InvalidArgumentError("arc endpoint out of range");
  }
  auto out_it = std::find(out_[from].begin(), out_[from].end(), to);
  if (out_it == out_[from].end()) {
    return NotFoundError("arc (" + std::to_string(from) + "," +
                         std::to_string(to) + ") not present");
  }
  out_[from].erase(out_it);
  auto in_it = std::find(in_[to].begin(), in_[to].end(), from);
  TREL_CHECK(in_it != in_[to].end());
  in_[to].erase(in_it);
  --num_arcs_;
  return Status::Ok();
}

bool Digraph::HasArc(NodeId from, NodeId to) const {
  if (!IsValidNode(from) || !IsValidNode(to)) return false;
  // Scan the smaller of the two adjacency lists.
  if (out_[from].size() <= in_[to].size()) {
    return std::find(out_[from].begin(), out_[from].end(), to) !=
           out_[from].end();
  }
  return std::find(in_[to].begin(), in_[to].end(), from) != in_[to].end();
}

const std::vector<NodeId>& Digraph::OutNeighbors(NodeId node) const {
  TREL_CHECK(IsValidNode(node)) << "node" << node;
  return out_[node];
}

const std::vector<NodeId>& Digraph::InNeighbors(NodeId node) const {
  TREL_CHECK(IsValidNode(node)) << "node" << node;
  return in_[node];
}

std::vector<NodeId> Digraph::RootNodes() const {
  std::vector<NodeId> roots;
  for (NodeId v = 0; v < NumNodes(); ++v) {
    if (in_[v].empty()) roots.push_back(v);
  }
  return roots;
}

std::vector<NodeId> Digraph::LeafNodes() const {
  std::vector<NodeId> leaves;
  for (NodeId v = 0; v < NumNodes(); ++v) {
    if (out_[v].empty()) leaves.push_back(v);
  }
  return leaves;
}

std::vector<std::pair<NodeId, NodeId>> Digraph::Arcs() const {
  std::vector<std::pair<NodeId, NodeId>> arcs;
  arcs.reserve(static_cast<size_t>(num_arcs_));
  for (NodeId u = 0; u < NumNodes(); ++u) {
    for (NodeId v : out_[u]) arcs.emplace_back(u, v);
  }
  return arcs;
}

}  // namespace trel
