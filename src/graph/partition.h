#ifndef TREL_GRAPH_PARTITION_H_
#define TREL_GRAPH_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "graph/digraph.h"

namespace trel {

// Edge-cut partitioning of a DAG into K contiguous topological ranges,
// plus a hub cover of the cut arcs (DESIGN.md §"Sharded query service").
//
// The partitioner works in topological position space: a cut at position
// p splits the order into [0, p) and [p, n); the arcs it severs are
// exactly those spanning p.  K-1 cut points are chosen near the
// equal-size positions, each slid within a slack window to the position
// with the fewest spanning arcs — contiguous topo ranges guarantee that
// shard-local subgraphs are themselves DAGs and that every arc either
// stays inside one shard or runs forward across shards.
//
// Hubs are a greedy vertex cover of the cut arcs: every arc that crosses
// shards has at least one hub endpoint.  That invariant is what makes
// the sharded service's boundary index exact — any cross-shard path must
// pass through a hub, so per-node "which hubs do I reach / reach me"
// labels witness all cross-shard reachability.  Hubs stay members of
// their home shard; being a hub only adds them to the global label
// layer.

struct PartitionOptions {
  int num_shards = 4;

  // Each cut point may slide this fraction of n away from its equal-split
  // position while hunting for a low-crossing cut.
  double window_fraction = 0.05;
};

struct Partition {
  int num_shards = 1;

  // node -> shard in [0, num_shards).
  std::vector<int32_t> shard_of;

  // Hub flags and the hub list (ascending node id).  Every cut arc has a
  // hub endpoint.
  std::vector<uint8_t> is_hub;
  std::vector<NodeId> hubs;

  // Per-shard node counts.
  std::vector<int64_t> shard_nodes;

  int64_t cut_arcs = 0;
  int64_t total_arcs = 0;

  double EdgeCutFraction() const {
    return total_arcs == 0
               ? 0.0
               : static_cast<double>(cut_arcs) / static_cast<double>(total_arcs);
  }
};

// Partitions `graph` (which must be a DAG; cycles fail with the
// topological sort's FailedPrecondition).  num_shards must be >= 1.
// Shards may be empty when the graph has fewer nodes than shards.
StatusOr<Partition> PartitionDag(const Digraph& graph,
                                 const PartitionOptions& options);

}  // namespace trel

#endif  // TREL_GRAPH_PARTITION_H_
