#include "storage/closure_store.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "storage/relation_file.h"

namespace trel {
namespace {

constexpr uint64_t kIntervalMagic = 0x74726C6976616C73ULL;  // "trlivals"
constexpr uint64_t kAdjacencyMagic = 0x74726C61646A7374ULL;  // "trladjst"

using relation_file::AppendI32;
using relation_file::AppendI64;
using relation_file::AppendU64;
using relation_file::ReadBytes;
using relation_file::ReadI32;
using relation_file::ReadI64;
using relation_file::ReadU64;
using relation_file::WriteImage;

}  // namespace

Status IntervalStore::Write(const CompressedClosure& closure,
                            PageStore& store) {
  const int64_t n = closure.NumNodes();
  const uint64_t header_size = 4 * 8;
  const uint64_t postorder_off = header_size;
  const uint64_t dir_off = postorder_off + static_cast<uint64_t>(n) * 8;
  const uint64_t data_off = dir_off + static_cast<uint64_t>(n) * 16;

  std::vector<uint8_t> image;
  AppendU64(image, kIntervalMagic);
  AppendU64(image, static_cast<uint64_t>(n));
  AppendU64(image, postorder_off);
  AppendU64(image, dir_off);
  for (NodeId v = 0; v < n; ++v) {
    AppendI64(image, closure.PostorderOf(v));
  }
  uint64_t cursor = data_off;
  for (NodeId v = 0; v < n; ++v) {
    const auto& intervals = closure.IntervalsOf(v).intervals();
    AppendU64(image, cursor);
    AppendU64(image, intervals.size());
    cursor += intervals.size() * 16;
  }
  for (NodeId v = 0; v < n; ++v) {
    for (const Interval& interval : closure.IntervalsOf(v).intervals()) {
      AppendI64(image, interval.lo);
      AppendI64(image, interval.hi);
    }
  }
  TREL_CHECK_EQ(image.size(), cursor);
  return WriteImage(store, image);
}

StatusOr<IntervalStore> IntervalStore::Open(BufferPool* pool) {
  TREL_CHECK(pool != nullptr);
  TREL_ASSIGN_OR_RETURN(std::vector<uint8_t> header, ReadBytes(*pool, 0, 32));
  if (ReadU64(header.data()) != kIntervalMagic) {
    return InvalidArgumentError("not an interval store");
  }
  IntervalStore result(pool);
  result.num_nodes_ = static_cast<int64_t>(ReadU64(header.data() + 8));
  result.postorder_off_ = ReadU64(header.data() + 16);
  result.dir_off_ = ReadU64(header.data() + 24);
  return result;
}

StatusOr<bool> IntervalStore::Reaches(NodeId u, NodeId v) {
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_) {
    return InvalidArgumentError("node out of range");
  }
  if (u == v) return true;
  TREL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> post_bytes,
      ReadBytes(*pool_, postorder_off_ + static_cast<uint64_t>(v) * 8, 8));
  const int64_t target = ReadI64(post_bytes.data());

  TREL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> dir,
      ReadBytes(*pool_, dir_off_ + static_cast<uint64_t>(u) * 16, 16));
  const uint64_t data_off = ReadU64(dir.data());
  const uint64_t count = ReadU64(dir.data() + 8);

  TREL_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                        ReadBytes(*pool_, data_off, count * 16));
  // Intervals are sorted by lo; binary search the candidate.
  int64_t lo_idx = 0, hi_idx = static_cast<int64_t>(count) - 1, found = -1;
  while (lo_idx <= hi_idx) {
    const int64_t mid = (lo_idx + hi_idx) / 2;
    if (ReadI64(data.data() + mid * 16) <= target) {
      found = mid;
      lo_idx = mid + 1;
    } else {
      hi_idx = mid - 1;
    }
  }
  if (found < 0) return false;
  return ReadI64(data.data() + found * 16 + 8) >= target;
}

Status AdjacencyStore::Write(const std::vector<std::vector<NodeId>>& lists,
                             PageStore& store) {
  const uint64_t n = lists.size();
  const uint64_t header_size = 3 * 8;
  const uint64_t dir_off = header_size;
  const uint64_t data_off = dir_off + n * 16;

  std::vector<uint8_t> image;
  AppendU64(image, kAdjacencyMagic);
  AppendU64(image, n);
  AppendU64(image, dir_off);
  uint64_t cursor = data_off;
  for (const auto& list : lists) {
    TREL_CHECK(std::is_sorted(list.begin(), list.end()));
    AppendU64(image, cursor);
    AppendU64(image, list.size());
    cursor += list.size() * 4;
  }
  for (const auto& list : lists) {
    for (NodeId w : list) AppendI32(image, w);
  }
  TREL_CHECK_EQ(image.size(), cursor);
  return WriteImage(store, image);
}

Status AdjacencyStore::WriteGraph(const Digraph& graph, PageStore& store) {
  std::vector<std::vector<NodeId>> lists(graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    lists[v] = graph.OutNeighbors(v);
    std::sort(lists[v].begin(), lists[v].end());
  }
  return Write(lists, store);
}

StatusOr<AdjacencyStore> AdjacencyStore::Open(BufferPool* pool) {
  TREL_CHECK(pool != nullptr);
  TREL_ASSIGN_OR_RETURN(std::vector<uint8_t> header, ReadBytes(*pool, 0, 24));
  if (ReadU64(header.data()) != kAdjacencyMagic) {
    return InvalidArgumentError("not an adjacency store");
  }
  AdjacencyStore result(pool);
  result.num_nodes_ = static_cast<int64_t>(ReadU64(header.data() + 8));
  result.dir_off_ = ReadU64(header.data() + 16);
  return result;
}

StatusOr<std::pair<uint64_t, uint64_t>> AdjacencyStore::DirEntry(NodeId v) {
  TREL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> dir,
      ReadBytes(*pool_, dir_off_ + static_cast<uint64_t>(v) * 16, 16));
  return std::make_pair(ReadU64(dir.data()), ReadU64(dir.data() + 8));
}

StatusOr<bool> AdjacencyStore::LookupReaches(NodeId u, NodeId v) {
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_) {
    return InvalidArgumentError("node out of range");
  }
  if (u == v) return true;
  TREL_ASSIGN_OR_RETURN(auto entry, DirEntry(u));
  const auto [data_off, count] = entry;
  // Binary search probing individual records through the pool: each probe
  // is one logical page access, as an index lookup would be.
  int64_t lo = 0, hi = static_cast<int64_t>(count) - 1;
  while (lo <= hi) {
    const int64_t mid = (lo + hi) / 2;
    TREL_ASSIGN_OR_RETURN(
        std::vector<uint8_t> record,
        ReadBytes(*pool_, data_off + static_cast<uint64_t>(mid) * 4, 4));
    const NodeId candidate = ReadI32(record.data());
    if (candidate == v) return true;
    if (candidate < v) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return false;
}

StatusOr<bool> AdjacencyStore::DfsReaches(NodeId u, NodeId v) {
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_) {
    return InvalidArgumentError("node out of range");
  }
  if (u == v) return true;
  std::vector<bool> visited(static_cast<size_t>(num_nodes_), false);
  std::vector<NodeId> stack = {u};
  visited[u] = true;
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    TREL_ASSIGN_OR_RETURN(auto entry, DirEntry(x));
    const auto [data_off, count] = entry;
    TREL_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                          ReadBytes(*pool_, data_off, count * 4));
    for (uint64_t k = 0; k < count; ++k) {
      const NodeId w = ReadI32(data.data() + k * 4);
      if (w == v) return true;
      if (!visited[w]) {
        visited[w] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

}  // namespace trel
