#ifndef TREL_STORAGE_UPDATE_LOG_H_
#define TREL_STORAGE_UPDATE_LOG_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/statusor.h"
#include "core/dynamic_closure.h"
#include "graph/digraph.h"

namespace trel {

// Write-ahead log of DynamicClosure updates.  Combined with
// DynamicClosure::Save/Load snapshots this gives the classic recovery
// story: periodically snapshot, log every update in between, and recover
// by loading the snapshot and replaying the tail.  Replay is determinate:
// DynamicClosure assigns node ids and labels purely from the operation
// sequence, so a replayed index answers identically.
struct UpdateOp {
  enum class Kind : uint8_t {
    kAddLeaf = 1,    // a = parent (kNoNode for a new root).
    kAddArc = 2,     // a -> b.
    kRemoveArc = 3,  // a -> b.
    kRefine = 4,     // b = child; parents in `parents`.
    kReoptimize = 5,
  };

  Kind kind;
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  std::vector<NodeId> parents;

  bool operator==(const UpdateOp& other) const {
    return kind == other.kind && a == other.a && b == other.b &&
           parents == other.parents;
  }
};

// Appends one length-delimited binary record.
Status AppendUpdateOp(std::ostream& out, const UpdateOp& op);

// Reads records until EOF.  Fails on a torn/corrupt record.
StatusOr<std::vector<UpdateOp>> ReadUpdateLog(std::istream& in);

// Applies `ops` to `closure` in order.  Individual operations that fail
// benignly during live use (duplicate arcs, cycle-refused arcs) are
// replayed strictly: any failure aborts recovery, because a log written
// through LoggedClosure only contains operations that succeeded.
Status ReplayUpdateLog(DynamicClosure& closure,
                       const std::vector<UpdateOp>& ops);

// Convenience wrapper that journals every successful mutation to a log
// stream before acknowledging it.  Query methods pass through.
class LoggedClosure {
 public:
  // The caller owns `log` and must keep it alive; typically an
  // std::ofstream opened in append mode.
  LoggedClosure(DynamicClosure closure, std::ostream* log);

  StatusOr<NodeId> AddLeafUnder(NodeId parent);
  Status AddArc(NodeId from, NodeId to);
  StatusOr<NodeId> RefineAbove(NodeId child,
                               const std::vector<NodeId>& parents);
  Status RemoveArc(NodeId from, NodeId to);
  Status Reoptimize();

  bool Reaches(NodeId u, NodeId v) const { return closure_.Reaches(u, v); }
  const DynamicClosure& closure() const { return closure_; }

  // Loads the snapshot (if `snapshot` is non-null) and replays `log`.
  static StatusOr<DynamicClosure> Recover(std::istream* snapshot,
                                          std::istream& log,
                                          const ClosureOptions& options =
                                              DynamicClosure::DefaultOptions());

 private:
  DynamicClosure closure_;
  std::ostream* log_;
};

}  // namespace trel

#endif  // TREL_STORAGE_UPDATE_LOG_H_
