#include "storage/update_log.h"

#include <istream>
#include <ostream>
#include <string>

#include "common/check.h"

namespace trel {
namespace {

void PutI32(std::ostream& out, int32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<char>(static_cast<uint32_t>(value) >> (8 * i));
  }
  out.write(bytes, 4);
}

bool GetI32(std::istream& in, int32_t& value) {
  char bytes[4];
  if (!in.read(bytes, 4)) return false;
  uint32_t raw = 0;
  for (int i = 3; i >= 0; --i) {
    raw = (raw << 8) | static_cast<uint8_t>(bytes[i]);
  }
  value = static_cast<int32_t>(raw);
  return true;
}

}  // namespace

Status AppendUpdateOp(std::ostream& out, const UpdateOp& op) {
  out.put(static_cast<char>(op.kind));
  PutI32(out, op.a);
  PutI32(out, op.b);
  PutI32(out, static_cast<int32_t>(op.parents.size()));
  for (NodeId p : op.parents) PutI32(out, p);
  if (!out.good()) return IoError("log append failed");
  return Status::Ok();
}

StatusOr<std::vector<UpdateOp>> ReadUpdateLog(std::istream& in) {
  std::vector<UpdateOp> ops;
  for (;;) {
    const int kind_byte = in.get();
    if (kind_byte == EOF) break;
    if (kind_byte < 1 || kind_byte > 5) {
      return InvalidArgumentError("corrupt log record kind " +
                                  std::to_string(kind_byte));
    }
    UpdateOp op;
    op.kind = static_cast<UpdateOp::Kind>(kind_byte);
    int32_t parent_count = 0;
    if (!GetI32(in, op.a) || !GetI32(in, op.b) ||
        !GetI32(in, parent_count) || parent_count < 0) {
      return InvalidArgumentError("torn log record");
    }
    op.parents.reserve(static_cast<size_t>(parent_count));
    for (int32_t k = 0; k < parent_count; ++k) {
      int32_t p;
      if (!GetI32(in, p)) return InvalidArgumentError("torn parent list");
      op.parents.push_back(p);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

Status ReplayUpdateLog(DynamicClosure& closure,
                       const std::vector<UpdateOp>& ops) {
  for (size_t k = 0; k < ops.size(); ++k) {
    const UpdateOp& op = ops[k];
    Status status;
    switch (op.kind) {
      case UpdateOp::Kind::kAddLeaf: {
        auto node = closure.AddLeafUnder(op.a);
        status = node.ok() ? Status::Ok() : node.status();
        break;
      }
      case UpdateOp::Kind::kAddArc:
        status = closure.AddArc(op.a, op.b);
        break;
      case UpdateOp::Kind::kRemoveArc:
        status = closure.RemoveArc(op.a, op.b);
        break;
      case UpdateOp::Kind::kRefine: {
        auto node = closure.RefineAbove(op.b, op.parents);
        status = node.ok() ? Status::Ok() : node.status();
        break;
      }
      case UpdateOp::Kind::kReoptimize:
        closure.Reoptimize();
        break;
    }
    if (!status.ok()) {
      return InternalError("replay failed at record " + std::to_string(k) +
                           ": " + status.ToString());
    }
  }
  return Status::Ok();
}

LoggedClosure::LoggedClosure(DynamicClosure closure, std::ostream* log)
    : closure_(std::move(closure)), log_(log) {
  TREL_CHECK(log_ != nullptr);
}

StatusOr<NodeId> LoggedClosure::AddLeafUnder(NodeId parent) {
  auto node = closure_.AddLeafUnder(parent);
  if (node.ok()) {
    TREL_RETURN_IF_ERROR(AppendUpdateOp(
        *log_, UpdateOp{UpdateOp::Kind::kAddLeaf, parent, kNoNode, {}}));
  }
  return node;
}

Status LoggedClosure::AddArc(NodeId from, NodeId to) {
  TREL_RETURN_IF_ERROR(closure_.AddArc(from, to));
  return AppendUpdateOp(*log_,
                        UpdateOp{UpdateOp::Kind::kAddArc, from, to, {}});
}

StatusOr<NodeId> LoggedClosure::RefineAbove(
    NodeId child, const std::vector<NodeId>& parents) {
  // Copy up front: callers often pass graph().InNeighbors(child), which
  // the refinement itself extends (the new node becomes a predecessor).
  const std::vector<NodeId> parents_copy = parents;
  auto node = closure_.RefineAbove(child, parents_copy);
  if (node.ok()) {
    TREL_RETURN_IF_ERROR(
        AppendUpdateOp(*log_, UpdateOp{UpdateOp::Kind::kRefine, kNoNode,
                                       child, parents_copy}));
  }
  return node;
}

Status LoggedClosure::RemoveArc(NodeId from, NodeId to) {
  TREL_RETURN_IF_ERROR(closure_.RemoveArc(from, to));
  return AppendUpdateOp(*log_,
                        UpdateOp{UpdateOp::Kind::kRemoveArc, from, to, {}});
}

Status LoggedClosure::Reoptimize() {
  closure_.Reoptimize();
  return AppendUpdateOp(
      *log_, UpdateOp{UpdateOp::Kind::kReoptimize, kNoNode, kNoNode, {}});
}

StatusOr<DynamicClosure> LoggedClosure::Recover(std::istream* snapshot,
                                                std::istream& log,
                                                const ClosureOptions& options) {
  DynamicClosure closure(options);
  if (snapshot != nullptr) {
    TREL_ASSIGN_OR_RETURN(closure, DynamicClosure::Load(*snapshot));
  }
  TREL_ASSIGN_OR_RETURN(std::vector<UpdateOp> ops, ReadUpdateLog(log));
  TREL_RETURN_IF_ERROR(ReplayUpdateLog(closure, ops));
  return closure;
}

}  // namespace trel
