#ifndef TREL_STORAGE_CLOSURE_STORE_H_
#define TREL_STORAGE_CLOSURE_STORE_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "core/compressed_closure.h"
#include "graph/digraph.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace trel {

// On-disk form of the compressed closure: a relation mapping each node to
// its postorder number and interval list.  Queries run through a
// BufferPool so that logical/physical I/O per lookup is measurable — the
// paper's claim is that a reachability query becomes "a lookup instead of
// a graph traversal".
//
// Layout (byte offsets, little-endian):
//   header:    magic u64, n u64, postorder_off u64, dir_off u64
//   postorder: n x i64
//   directory: n x { data_byte_offset u64, interval_count u64 }
//   data:      concatenated intervals, 2 x i64 each
class IntervalStore {
 public:
  // Serializes `closure` into `store` (overwrites from page 0).
  static Status Write(const CompressedClosure& closure, PageStore& store);

  // Opens a previously written store.  The pool must wrap the same store.
  static StatusOr<IntervalStore> Open(BufferPool* pool);

  // Disk-backed reachability: reads v's postorder number, u's directory
  // entry, and u's interval list through the pool.
  StatusOr<bool> Reaches(NodeId u, NodeId v);

  int64_t NumNodes() const { return num_nodes_; }

 private:
  explicit IntervalStore(BufferPool* pool) : pool_(pool) {}

  BufferPool* pool_;
  int64_t num_nodes_ = 0;
  uint64_t postorder_off_ = 0;
  uint64_t dir_off_ = 0;
};

// On-disk adjacency relation: each node's sorted list of out-neighbors.
// Used two ways in the benches: as the materialized full closure (lists =
// all successors; Reaches = one indexed lookup) and as the base relation
// (lists = immediate successors; Reaches = DFS pointer chasing across
// pages, the strategy the paper is replacing).
//
// Layout:
//   header:    magic u64, n u64, dir_off u64
//   directory: n x { data_byte_offset u64, neighbor_count u64 }
//   data:      concatenated i32 neighbor lists (each sorted)
class AdjacencyStore {
 public:
  // `lists[v]` = sorted out-neighbors of v.
  static Status Write(const std::vector<std::vector<NodeId>>& lists,
                      PageStore& store);
  // Convenience: write a digraph's immediate-successor lists.
  static Status WriteGraph(const Digraph& graph, PageStore& store);

  static StatusOr<AdjacencyStore> Open(BufferPool* pool);

  // Binary search of v inside u's on-disk list (for closure relations).
  StatusOr<bool> LookupReaches(NodeId u, NodeId v);

  // Iterative DFS over the on-disk lists (for base relations): the
  // "pointer chasing" the paper replaces.
  StatusOr<bool> DfsReaches(NodeId u, NodeId v);

  int64_t NumNodes() const { return num_nodes_; }

 private:
  explicit AdjacencyStore(BufferPool* pool) : pool_(pool) {}

  // Reads the directory entry of `v`.
  StatusOr<std::pair<uint64_t, uint64_t>> DirEntry(NodeId v);

  BufferPool* pool_;
  int64_t num_nodes_ = 0;
  uint64_t dir_off_ = 0;
};

}  // namespace trel

#endif  // TREL_STORAGE_CLOSURE_STORE_H_
