#include "storage/relation_file.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace trel {
namespace relation_file {

void AppendU64(std::vector<uint8_t>& image, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    image.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void AppendI64(std::vector<uint8_t>& image, int64_t value) {
  AppendU64(image, static_cast<uint64_t>(value));
}

void AppendI32(std::vector<uint8_t>& image, int32_t value) {
  for (int i = 0; i < 4; ++i) {
    image.push_back(static_cast<uint8_t>(static_cast<uint32_t>(value) >>
                                         (8 * i)));
  }
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) value = (value << 8) | p[i];
  return value;
}

int64_t ReadI64(const uint8_t* p) { return static_cast<int64_t>(ReadU64(p)); }

int32_t ReadI32(const uint8_t* p) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) value = (value << 8) | p[i];
  return static_cast<int32_t>(value);
}

Status WriteImage(PageStore& store, const std::vector<uint8_t>& image) {
  const size_t page_size = store.page_size();
  const uint64_t pages_needed = (image.size() + page_size - 1) / page_size;
  while (store.num_pages() < pages_needed) store.AllocatePage();
  std::vector<uint8_t> page(page_size, 0);
  for (uint64_t p = 0; p < pages_needed; ++p) {
    const size_t start = p * page_size;
    const size_t len = std::min(page_size, image.size() - start);
    std::memset(page.data(), 0, page_size);
    std::memcpy(page.data(), image.data() + start, len);
    TREL_RETURN_IF_ERROR(store.WritePage(p, page));
  }
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> ReadBytes(BufferPool& pool, uint64_t offset,
                                         uint64_t len) {
  std::vector<uint8_t> result;
  result.reserve(len);
  uint64_t remaining = len;
  uint64_t position = offset;
  const uint64_t page_size = pool.page_size();
  while (remaining > 0) {
    const uint64_t page_id = position / page_size;
    const uint64_t in_page = position % page_size;
    const uint64_t chunk = std::min(remaining, page_size - in_page);
    TREL_ASSIGN_OR_RETURN(BufferPool::PageRef page, pool.GetPage(page_id));
    const std::vector<uint8_t>& data = page.data();
    result.insert(result.end(), data.begin() + in_page,
                  data.begin() + in_page + chunk);
    position += chunk;
    remaining -= chunk;
  }
  return result;
}

}  // namespace relation_file
}  // namespace trel
