#include "storage/page_store.h"

#include <cstring>

#include "common/check.h"

namespace trel {

StatusOr<PageStore> PageStore::Open(const std::string& path, size_t page_size,
                                    bool truncate) {
  if (page_size < 64 || (page_size & (page_size - 1)) != 0) {
    return InvalidArgumentError("page size must be a power of two >= 64");
  }
  std::FILE* file = std::fopen(path.c_str(), truncate ? "w+b" : "r+b");
  if (file == nullptr) {
    return IoError("cannot open " + path);
  }
  uint64_t existing_pages = 0;
  if (!truncate) {
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    if (size < 0 || static_cast<size_t>(size) % page_size != 0) {
      std::fclose(file);
      return IoError("file size is not a multiple of the page size");
    }
    existing_pages = static_cast<uint64_t>(size) / page_size;
  }
  PageStore store(file, page_size);
  store.num_pages_ = existing_pages;
  return store;
}

PageStore::PageStore(PageStore&& other) noexcept
    : file_(other.file_),
      page_size_(other.page_size_),
      num_pages_(other.num_pages_),
      stats_(other.stats_) {
  other.file_ = nullptr;
}

PageStore& PageStore::operator=(PageStore&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    page_size_ = other.page_size_;
    num_pages_ = other.num_pages_;
    stats_ = other.stats_;
    other.file_ = nullptr;
  }
  return *this;
}

PageStore::~PageStore() {
  if (file_ != nullptr) std::fclose(file_);
}

uint64_t PageStore::AllocatePage() {
  TREL_CHECK(file_ != nullptr);
  std::vector<uint8_t> zeros(page_size_, 0);
  std::fseek(file_, static_cast<long>(num_pages_ * page_size_), SEEK_SET);
  const size_t written = std::fwrite(zeros.data(), 1, page_size_, file_);
  TREL_CHECK_EQ(written, page_size_);
  return num_pages_++;
}

Status PageStore::WritePage(uint64_t page_id,
                            const std::vector<uint8_t>& data) {
  TREL_CHECK(file_ != nullptr);
  if (page_id >= num_pages_) {
    return OutOfRangeError("page " + std::to_string(page_id) +
                           " not allocated");
  }
  if (data.size() != page_size_) {
    return InvalidArgumentError("page data size mismatch");
  }
  std::fseek(file_, static_cast<long>(page_id * page_size_), SEEK_SET);
  if (std::fwrite(data.data(), 1, page_size_, file_) != page_size_) {
    return IoError("short write");
  }
  ++stats_.physical_writes;
  return Status::Ok();
}

Status PageStore::ReadPage(uint64_t page_id, std::vector<uint8_t>& out) {
  TREL_CHECK(file_ != nullptr);
  if (page_id >= num_pages_) {
    return OutOfRangeError("page " + std::to_string(page_id) +
                           " not allocated");
  }
  out.resize(page_size_);
  std::fflush(file_);
  std::fseek(file_, static_cast<long>(page_id * page_size_), SEEK_SET);
  if (std::fread(out.data(), 1, page_size_, file_) != page_size_) {
    return IoError("short read");
  }
  ++stats_.physical_reads;
  return Status::Ok();
}

}  // namespace trel
