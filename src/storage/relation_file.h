#ifndef TREL_STORAGE_RELATION_FILE_H_
#define TREL_STORAGE_RELATION_FILE_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace trel {

// Byte-level helpers shared by the on-disk relation formats: a file is a
// flat byte image split across fixed-size pages.
namespace relation_file {

// Little-endian primitive encoding into a growing byte image.
void AppendU64(std::vector<uint8_t>& image, uint64_t value);
void AppendI64(std::vector<uint8_t>& image, int64_t value);
void AppendI32(std::vector<uint8_t>& image, int32_t value);

uint64_t ReadU64(const uint8_t* p);
int64_t ReadI64(const uint8_t* p);
int32_t ReadI32(const uint8_t* p);

// Writes `image` to `store` starting at page 0, allocating pages as
// needed and zero-padding the tail.
Status WriteImage(PageStore& store, const std::vector<uint8_t>& image);

// Reads `len` bytes starting at byte offset `offset` through the pool.
StatusOr<std::vector<uint8_t>> ReadBytes(BufferPool& pool, uint64_t offset,
                                         uint64_t len);

}  // namespace relation_file
}  // namespace trel

#endif  // TREL_STORAGE_RELATION_FILE_H_
