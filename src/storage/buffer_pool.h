#ifndef TREL_STORAGE_BUFFER_POOL_H_
#define TREL_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "storage/page_store.h"

namespace trel {

// LRU page cache over a PageStore.  Models the main-memory buffer the
// paper assumes between queries and secondary storage; hit/miss/eviction
// counters let benches report logical vs physical I/O.
class BufferPool {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t LogicalReads() const { return hits + misses; }
  };

 private:
  struct Frame;

 public:
  // RAII pin on a cached page.  While any PageRef to a page is alive the
  // frame is excluded from eviction, so the referenced bytes stay valid
  // across arbitrary intervening GetPage/PutPage calls — the earlier
  // raw-pointer contract ("valid until the next call") made every caller
  // that held a page across a second access a latent use-after-free.
  // A PutPage to a pinned page still replaces its contents (the ref
  // observes the new bytes); it never invalidates the ref.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          frame_(std::exchange(other.frame_, nullptr)) {}
    PageRef& operator=(PageRef&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = std::exchange(other.pool_, nullptr);
        frame_ = std::exchange(other.frame_, nullptr);
      }
      return *this;
    }
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;
    ~PageRef() { Release(); }

    const std::vector<uint8_t>& data() const { return frame_->data; }
    const std::vector<uint8_t>& operator*() const { return data(); }
    const std::vector<uint8_t>* operator->() const { return &data(); }
    uint64_t page_id() const { return frame_->page_id; }
    bool valid() const { return frame_ != nullptr; }

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, Frame* frame);
    void Release();

    BufferPool* pool_ = nullptr;
    Frame* frame_ = nullptr;
  };

  // `capacity` = maximum resident pages; must be >= 1.  The pool does not
  // own the store.  Pinned pages may push residency above `capacity`
  // temporarily; eviction catches up as pins are released.
  BufferPool(PageStore* store, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns a pinned reference to the cached page contents.
  StatusOr<PageRef> GetPage(uint64_t page_id);

  // Write-back update: replaces the page in the cache and marks it dirty.
  Status PutPage(uint64_t page_id, std::vector<uint8_t> data);

  // Writes all dirty pages to the store.
  Status Flush();

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }
  size_t capacity() const { return capacity_; }
  size_t page_size() const { return store_->page_size(); }
  size_t NumResident() const { return frames_.size(); }
  // Pages currently protected from eviction by outstanding PageRefs.
  size_t NumPinned() const { return num_pinned_; }

 private:
  struct Frame {
    uint64_t page_id;
    std::vector<uint8_t> data;
    bool dirty = false;
    int pins = 0;
  };

  // Evicts least-recently-used unpinned frames while over capacity; a
  // fully pinned pool is allowed to exceed capacity rather than fail.
  Status EvictIfFull();
  void Unpin(Frame* frame);

  PageStore* store_;
  size_t capacity_;
  // Most recently used at front.  std::list guarantees stable Frame
  // addresses, which PageRef relies on.
  std::list<Frame> frames_;
  std::unordered_map<uint64_t, std::list<Frame>::iterator> index_;
  size_t num_pinned_ = 0;
  Stats stats_;
};

}  // namespace trel

#endif  // TREL_STORAGE_BUFFER_POOL_H_
