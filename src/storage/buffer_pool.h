#ifndef TREL_STORAGE_BUFFER_POOL_H_
#define TREL_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "storage/page_store.h"

namespace trel {

// LRU page cache over a PageStore.  Models the main-memory buffer the
// paper assumes between queries and secondary storage; hit/miss/eviction
// counters let benches report logical vs physical I/O.
class BufferPool {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t LogicalReads() const { return hits + misses; }
  };

  // `capacity` = maximum resident pages; must be >= 1.  The pool does not
  // own the store.
  BufferPool(PageStore* store, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns a pointer to the cached page contents, valid until the next
  // GetPage/PutPage call.
  StatusOr<const std::vector<uint8_t>*> GetPage(uint64_t page_id);

  // Write-back update: replaces the page in the cache and marks it dirty.
  Status PutPage(uint64_t page_id, std::vector<uint8_t> data);

  // Writes all dirty pages to the store.
  Status Flush();

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }
  size_t capacity() const { return capacity_; }
  size_t page_size() const { return store_->page_size(); }
  size_t NumResident() const { return frames_.size(); }

 private:
  struct Frame {
    uint64_t page_id;
    std::vector<uint8_t> data;
    bool dirty = false;
  };

  // Evicts the least recently used frame if at capacity.
  Status EvictIfFull();

  PageStore* store_;
  size_t capacity_;
  // Most recently used at front.
  std::list<Frame> frames_;
  std::unordered_map<uint64_t, std::list<Frame>::iterator> index_;
  Stats stats_;
};

}  // namespace trel

#endif  // TREL_STORAGE_BUFFER_POOL_H_
