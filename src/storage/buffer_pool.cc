#include "storage/buffer_pool.h"

#include <utility>

#include "common/check.h"

namespace trel {

BufferPool::BufferPool(PageStore* store, size_t capacity)
    : store_(store), capacity_(capacity) {
  TREL_CHECK(store != nullptr);
  TREL_CHECK_GE(capacity, 1u);
}

Status BufferPool::EvictIfFull() {
  while (frames_.size() >= capacity_) {
    Frame& victim = frames_.back();
    if (victim.dirty) {
      TREL_RETURN_IF_ERROR(store_->WritePage(victim.page_id, victim.data));
    }
    index_.erase(victim.page_id);
    frames_.pop_back();
    ++stats_.evictions;
  }
  return Status::Ok();
}

StatusOr<const std::vector<uint8_t>*> BufferPool::GetPage(uint64_t page_id) {
  auto it = index_.find(page_id);
  if (it != index_.end()) {
    ++stats_.hits;
    frames_.splice(frames_.begin(), frames_, it->second);
    return const_cast<const std::vector<uint8_t>*>(&frames_.front().data);
  }
  ++stats_.misses;
  TREL_RETURN_IF_ERROR(EvictIfFull());
  Frame frame;
  frame.page_id = page_id;
  TREL_RETURN_IF_ERROR(store_->ReadPage(page_id, frame.data));
  frames_.push_front(std::move(frame));
  index_[page_id] = frames_.begin();
  return const_cast<const std::vector<uint8_t>*>(&frames_.front().data);
}

Status BufferPool::PutPage(uint64_t page_id, std::vector<uint8_t> data) {
  if (data.size() != store_->page_size()) {
    return InvalidArgumentError("page data size mismatch");
  }
  auto it = index_.find(page_id);
  if (it != index_.end()) {
    it->second->data = std::move(data);
    it->second->dirty = true;
    frames_.splice(frames_.begin(), frames_, it->second);
    return Status::Ok();
  }
  TREL_RETURN_IF_ERROR(EvictIfFull());
  Frame frame;
  frame.page_id = page_id;
  frame.data = std::move(data);
  frame.dirty = true;
  frames_.push_front(std::move(frame));
  index_[page_id] = frames_.begin();
  return Status::Ok();
}

Status BufferPool::Flush() {
  for (Frame& frame : frames_) {
    if (frame.dirty) {
      TREL_RETURN_IF_ERROR(store_->WritePage(frame.page_id, frame.data));
      frame.dirty = false;
    }
  }
  return Status::Ok();
}

}  // namespace trel
