#include "storage/buffer_pool.h"

#include <iterator>
#include <utility>

#include "common/check.h"

namespace trel {

BufferPool::PageRef::PageRef(BufferPool* pool, Frame* frame)
    : pool_(pool), frame_(frame) {
  if (frame_->pins++ == 0) ++pool_->num_pinned_;
}

void BufferPool::PageRef::Release() {
  if (frame_ == nullptr) return;
  pool_->Unpin(frame_);
  pool_ = nullptr;
  frame_ = nullptr;
}

void BufferPool::Unpin(Frame* frame) {
  TREL_CHECK_GT(frame->pins, 0);
  if (--frame->pins == 0) {
    TREL_CHECK_GT(num_pinned_, 0u);
    --num_pinned_;
  }
  // Any over-capacity residency accumulated while everything was pinned
  // is trimmed by the next GetPage/PutPage (destructors stay fallible-
  // operation free: eviction may have to write back a dirty page).
}

BufferPool::BufferPool(PageStore* store, size_t capacity)
    : store_(store), capacity_(capacity) {
  TREL_CHECK(store != nullptr);
  TREL_CHECK_GE(capacity, 1u);
}

Status BufferPool::EvictIfFull() {
  while (frames_.size() >= capacity_) {
    // Least-recently-used unpinned frame.
    auto victim = frames_.end();
    for (auto r = frames_.rbegin(); r != frames_.rend(); ++r) {
      if (r->pins == 0) {
        victim = std::next(r).base();
        break;
      }
    }
    if (victim == frames_.end()) break;  // Everything pinned: over-allocate.
    if (victim->dirty) {
      TREL_RETURN_IF_ERROR(store_->WritePage(victim->page_id, victim->data));
    }
    index_.erase(victim->page_id);
    frames_.erase(victim);
    ++stats_.evictions;
  }
  return Status::Ok();
}

StatusOr<BufferPool::PageRef> BufferPool::GetPage(uint64_t page_id) {
  auto it = index_.find(page_id);
  if (it != index_.end()) {
    ++stats_.hits;
    frames_.splice(frames_.begin(), frames_, it->second);
    return PageRef(this, &frames_.front());
  }
  ++stats_.misses;
  TREL_RETURN_IF_ERROR(EvictIfFull());
  Frame frame;
  frame.page_id = page_id;
  TREL_RETURN_IF_ERROR(store_->ReadPage(page_id, frame.data));
  frames_.push_front(std::move(frame));
  index_[page_id] = frames_.begin();
  return PageRef(this, &frames_.front());
}

Status BufferPool::PutPage(uint64_t page_id, std::vector<uint8_t> data) {
  if (data.size() != store_->page_size()) {
    return InvalidArgumentError("page data size mismatch");
  }
  auto it = index_.find(page_id);
  if (it != index_.end()) {
    it->second->data = std::move(data);
    it->second->dirty = true;
    frames_.splice(frames_.begin(), frames_, it->second);
    return Status::Ok();
  }
  TREL_RETURN_IF_ERROR(EvictIfFull());
  Frame frame;
  frame.page_id = page_id;
  frame.data = std::move(data);
  frame.dirty = true;
  frames_.push_front(std::move(frame));
  index_[page_id] = frames_.begin();
  return Status::Ok();
}

Status BufferPool::Flush() {
  for (Frame& frame : frames_) {
    if (frame.dirty) {
      TREL_RETURN_IF_ERROR(store_->WritePage(frame.page_id, frame.data));
      frame.dirty = false;
    }
  }
  return Status::Ok();
}

}  // namespace trel
