#ifndef TREL_STORAGE_PAGE_STORE_H_
#define TREL_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace trel {

// File-backed array of fixed-size pages — the simulated secondary storage
// behind the paper's motivation ("in the case of large relations, the
// information will reside on secondary storage, and hence we need to
// minimize I/O traffic").  Physical reads/writes are counted so benches
// can report I/O cost independent of the host's real disk.
class PageStore {
 public:
  static constexpr size_t kDefaultPageSize = 4096;

  struct Stats {
    int64_t physical_reads = 0;
    int64_t physical_writes = 0;
  };

  // Creates (truncating) or opens the file at `path`.
  static StatusOr<PageStore> Open(const std::string& path,
                                  size_t page_size = kDefaultPageSize,
                                  bool truncate = true);

  PageStore(PageStore&& other) noexcept;
  PageStore& operator=(PageStore&& other) noexcept;
  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;
  ~PageStore();

  // Extends the file by one zeroed page; returns its id.
  uint64_t AllocatePage();

  // `data.size()` must equal page_size(); the page must exist.
  Status WritePage(uint64_t page_id, const std::vector<uint8_t>& data);

  // Fills `out` (resized to page_size()) with the page contents.
  Status ReadPage(uint64_t page_id, std::vector<uint8_t>& out);

  size_t page_size() const { return page_size_; }
  uint64_t num_pages() const { return num_pages_; }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  PageStore(std::FILE* file, size_t page_size)
      : file_(file), page_size_(page_size) {}

  std::FILE* file_ = nullptr;
  size_t page_size_ = 0;
  uint64_t num_pages_ = 0;
  Stats stats_;
};

}  // namespace trel

#endif  // TREL_STORAGE_PAGE_STORE_H_
