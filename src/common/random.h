#ifndef TREL_COMMON_RANDOM_H_
#define TREL_COMMON_RANDOM_H_

#include <cstdint>

#include "common/check.h"

namespace trel {

// Deterministic, seedable pseudo-random generator (xoshiro256**).
// Used instead of std::mt19937 so that workloads are reproducible across
// standard library implementations: the same seed yields the same graph
// everywhere, which the experiment harness relies on.
class Random {
 public:
  explicit Random(uint64_t seed) { Reseed(seed); }

  // Re-initializes the state from `seed` via splitmix64 so that nearby
  // seeds produce unrelated streams.
  void Reseed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  // Uniform over all 64-bit values.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform over [0, bound).  `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    TREL_CHECK_GT(bound, 0u);
    // Lemire's nearly-divisionless rejection method.
    uint64_t x = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextUint64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    TREL_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace trel

#endif  // TREL_COMMON_RANDOM_H_
