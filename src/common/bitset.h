#ifndef TREL_COMMON_BITSET_H_
#define TREL_COMMON_BITSET_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace trel {

// Fixed-size bitset whose size is chosen at runtime.  Used for predecessor
// sets in the optimal tree-cover algorithm and for ground-truth closure
// matrices, where word-parallel union dominates the running time.
class DynamicBitset {
 public:
  DynamicBitset() : num_bits_(0) {}
  explicit DynamicBitset(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t size() const { return num_bits_; }

  void Set(size_t i) {
    TREL_CHECK_LT(i, num_bits_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  void Reset(size_t i) {
    TREL_CHECK_LT(i, num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(size_t i) const {
    TREL_CHECK_LT(i, num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  // this |= other.  Sizes must match.
  void UnionWith(const DynamicBitset& other) {
    TREL_CHECK_EQ(num_bits_, other.num_bits_);
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  // Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  void Clear() {
    for (uint64_t& w : words_) w = 0;
  }

  bool operator==(const DynamicBitset& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

 private:
  size_t num_bits_;
  std::vector<uint64_t> words_;
};

}  // namespace trel

#endif  // TREL_COMMON_BITSET_H_
