#ifndef TREL_COMMON_STATUS_H_
#define TREL_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace trel {

// Canonical error space for the library.  The project is built without
// exceptions; fallible operations return Status (or StatusOr<T>), and
// programming errors abort via the TREL_CHECK macros in check.h.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kIoError,
};

// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
// ...), used in logging and test failure messages.
const char* StatusCodeName(StatusCode code);

// Value-semantic success-or-error result.  An OK status carries no message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE_NAME: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors mirroring absl::*Error.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status IoError(std::string message);

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function if it is not OK.
#define TREL_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::trel::Status trel_status_tmp_ = (expr);        \
    if (!trel_status_tmp_.ok()) return trel_status_tmp_; \
  } while (false)

}  // namespace trel

#endif  // TREL_COMMON_STATUS_H_
