#ifndef TREL_COMMON_CHECK_H_
#define TREL_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace trel {
namespace internal_check {

// Accumulates a failure message and aborts the process when destroyed.
// Used only via the TREL_CHECK* macros; the streaming form lets call sites
// attach context: TREL_CHECK(x > 0) << "x=" << x;
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  const CheckFailure& operator<<(const T& value) const {
    stream_ << " " << value;
    return *this;
  }

 private:
  mutable std::ostringstream stream_;
};

// Makes the whole check expression void regardless of the streamed chain.
// operator& binds looser than operator<<, so the message is built first.
struct Voidify {
  void operator&(const CheckFailure&) const {}
};

}  // namespace internal_check
}  // namespace trel

// Aborts with a diagnostic if `condition` is false.  Always on (guards API
// contracts, not just debugging).  Supports streaming extra context.
#define TREL_CHECK(condition)                                       \
  (condition) ? static_cast<void>(0)                                \
              : ::trel::internal_check::Voidify() &                 \
                    ::trel::internal_check::CheckFailure(           \
                        __FILE__, __LINE__, #condition)

#define TREL_CHECK_EQ(a, b) TREL_CHECK((a) == (b))
#define TREL_CHECK_NE(a, b) TREL_CHECK((a) != (b))
#define TREL_CHECK_LT(a, b) TREL_CHECK((a) < (b))
#define TREL_CHECK_LE(a, b) TREL_CHECK((a) <= (b))
#define TREL_CHECK_GT(a, b) TREL_CHECK((a) > (b))
#define TREL_CHECK_GE(a, b) TREL_CHECK((a) >= (b))

#endif  // TREL_COMMON_CHECK_H_
