#ifndef TREL_COMMON_STOPWATCH_H_
#define TREL_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace trel {

// Wall-clock stopwatch for coarse harness timing.  For statistically
// rigorous micro measurements use the google-benchmark binaries instead.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace trel

#endif  // TREL_COMMON_STOPWATCH_H_
