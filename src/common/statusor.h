#ifndef TREL_COMMON_STATUSOR_H_
#define TREL_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace trel {

// Holds either a value of type T or a non-OK Status explaining why the value
// is absent.  Accessing the value of a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: allows
  // `return value;` and `return SomeError(...);` from functions returning
  // StatusOr<T>.
  StatusOr(const T& value) : value_(value) {}          // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    TREL_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TREL_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    TREL_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    TREL_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Assigns the value of `rexpr` (a StatusOr expression) to `lhs`, or returns
// its status from the enclosing function.
#define TREL_STATUSOR_CONCAT_INNER_(a, b) a##b
#define TREL_STATUSOR_CONCAT_(a, b) TREL_STATUSOR_CONCAT_INNER_(a, b)
#define TREL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()
#define TREL_ASSIGN_OR_RETURN(lhs, rexpr)                                 \
  TREL_ASSIGN_OR_RETURN_IMPL_(                                            \
      TREL_STATUSOR_CONCAT_(trel_statusor_tmp_, __LINE__), lhs, rexpr)

}  // namespace trel

#endif  // TREL_COMMON_STATUSOR_H_
