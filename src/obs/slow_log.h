#ifndef TREL_OBS_SLOW_LOG_H_
#define TREL_OBS_SLOW_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "core/arena_kernels.h"
#include "graph/digraph.h"

namespace trel {

// One query (or batch) that exceeded the service's slow threshold.
struct SlowQueryEntry {
  // Admission order (monotone); assigned by the log.
  uint64_t sequence = 0;
  bool is_batch = false;
  // For batches: the first pair of the batch (identification aid), with
  // num_queries carrying the batch size.  For singles: the query itself.
  NodeId source = 0;
  NodeId target = 0;
  int64_t num_queries = 1;
  bool answer = false;
  // How the probe was decided — singles only (batches report stats).
  ProbeTag tag = ProbeTag::kSlot;
  uint64_t epoch = 0;
  int64_t micros = 0;
  // Kernel tallies — batches only (zeros for singles).
  BatchKernelStats stats;
  // Shard attribution, filled by the sharded front end (-1 = monolithic
  // entry / unknown).  For batches: the shards of the first pair.
  int32_t source_shard = -1;
  int32_t target_shard = -1;
  bool cross_shard = false;

  // `seq=.. epoch=.. batch|single n=.. first=(u,v) us=..` plus per-kind
  // detail, plus ` shards=(su,sv) cross=0|1` when shard-attributed.
  // Shared by /tracez and SlowQueryLog::ToString.
  std::string ToString() const;
};

// Always-on bounded deque of slow queries.  Unlike the sampled tracer
// this path is taken only AFTER a query already blew a millisecond-scale
// threshold, so a mutex here is invisible; the hot path never touches
// the log (the threshold compare happens in the service, against a
// timestamp it already took for metrics).
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 64);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  // Appends `entry` (its `sequence` is assigned by the log), evicting
  // the oldest entry when full.
  void Record(SlowQueryEntry entry);

  // The retained entries, oldest first.
  std::vector<SlowQueryEntry> Recent() const;

  // Entries ever admitted (monotone counter, exposition-friendly).
  int64_t TotalRecorded() const {
    return total_.load(std::memory_order_relaxed);
  }

  // The retained entries rendered one per line, oldest first.
  std::string ToString() const;

 private:
  mutable std::mutex mutex_;
  size_t capacity_;
  uint64_t next_sequence_ = 0;  // Guarded by mutex_.
  std::deque<SlowQueryEntry> recent_;  // Guarded by mutex_.
  std::atomic<int64_t> total_{0};
};

}  // namespace trel

#endif  // TREL_OBS_SLOW_LOG_H_
