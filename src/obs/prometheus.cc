#include "obs/prometheus.h"

#include <sstream>

namespace trel {

namespace {

void AppendSampleHead(std::string& out, std::string_view name,
                      std::string_view labels) {
  out.append(name);
  if (!labels.empty()) {
    out.push_back('{');
    out.append(labels);
    out.push_back('}');
  }
  out.push_back(' ');
}

}  // namespace

void PrometheusText::Family(std::string_view name, std::string_view help,
                            std::string_view type) {
  out_.append("# HELP ");
  out_.append(name);
  out_.push_back(' ');
  out_.append(help);
  out_.push_back('\n');
  out_.append("# TYPE ");
  out_.append(name);
  out_.push_back(' ');
  out_.append(type);
  out_.push_back('\n');
}

void PrometheusText::Sample(std::string_view name, std::string_view labels,
                            int64_t value) {
  AppendSampleHead(out_, name, labels);
  out_.append(std::to_string(value));
  out_.push_back('\n');
}

void PrometheusText::Sample(std::string_view name, std::string_view labels,
                            double value) {
  AppendSampleHead(out_, name, labels);
  std::ostringstream v;
  v << value;
  out_.append(v.str());
  out_.push_back('\n');
}

void PrometheusText::Histogram(std::string_view name, std::string_view labels,
                               const int64_t* buckets, int num_buckets,
                               int64_t sum) {
  const std::string bucket_name = std::string(name) + "_bucket";
  const std::string prefix =
      labels.empty() ? std::string() : std::string(labels) + ",";
  int64_t cumulative = 0;
  for (int i = 0; i < num_buckets; ++i) {
    cumulative += buckets[i];
    // Bucket i holds [2^i, 2^(i+1)), so its inclusive upper bound label
    // is le="2^(i+1)" (the last finite bucket is open-ended and folds
    // into +Inf below).
    if (i + 1 < num_buckets) {
      Sample(bucket_name,
             prefix + "le=\"" + std::to_string(int64_t{1} << (i + 1)) + "\"",
             cumulative);
    }
  }
  Sample(bucket_name, prefix + "le=\"+Inf\"", cumulative);
  Sample(std::string(name) + "_sum", labels, sum);
  Sample(std::string(name) + "_count", labels, cumulative);
}

std::string PrometheusText::Label(std::string_view key,
                                  std::string_view value) {
  std::string out(key);
  out.append("=\"");
  for (char c : value) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '"':
        out.append("\\\"");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace trel
