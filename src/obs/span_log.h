#ifndef TREL_OBS_SPAN_LOG_H_
#define TREL_OBS_SPAN_LOG_H_

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace trel {

// The named phases of one QueryService publish, in execution order.
// Full publishes spend their time in export + arena_build (+ stats);
// delta publishes in drain (ExportDelta) + export (WithDelta) and leave
// the other phases at 0.  See DESIGN.md §5.
enum class PublishPhase : int {
  kDrain = 0,       // Dirty-set drain: ExportDelta (delta) / MarkClean (full).
  kExport = 1,      // Label export minus the arena build; WithDelta for delta.
  kArenaBuild = 2,  // Flat LabelArena construction (full publishes only).
  kStats = 3,       // Optional ClosureStats pass (full publishes only).
  kSwap = 4,        // The atomic snapshot pointer store.
};
constexpr int kNumPublishPhases = 5;

// "drain" / "export" / "arena_build" / "stats" / "swap".
const char* PublishPhaseName(PublishPhase phase);

// One publish, decomposed into phases.  total_micros is the end-to-end
// publish time; the phases need not sum exactly to it (loop overhead and
// snapshot allocation sit between them).
struct PublishSpan {
  uint64_t epoch = 0;
  bool delta = false;
  int64_t total_micros = 0;
  std::array<int64_t, kNumPublishPhases> phase_micros{};
};

// Bounded log of publish spans plus incrementally maintained per-phase
// aggregates split full vs. delta.  Mutex-guarded: publishes are rare
// (milliseconds apart at the fastest) and already serialized by the
// service's writer mutex, so a lock here costs nothing measurable.
class SpanLog {
 public:
  // Power-of-two phase-latency histogram width; bucket i counts phases
  // that took [2^i, 2^(i+1)) microseconds (PowerOfTwoBucket semantics).
  static constexpr int kBuckets = 22;

  // Index 0 = full publishes, 1 = delta publishes.
  struct Aggregate {
    std::array<int64_t, 2> count{};
    std::array<int64_t, 2> total_micros{};
    std::array<std::array<int64_t, kNumPublishPhases>, 2> phase_micros_total{};
    std::array<std::array<std::array<int64_t, kBuckets>, kNumPublishPhases>, 2>
        phase_histogram{};
  };

  explicit SpanLog(size_t capacity = 128);

  void Record(const PublishSpan& span);

  // The most recent spans, oldest first (at most `capacity`).
  std::vector<PublishSpan> Recent() const;

  Aggregate Read() const;

 private:
  mutable std::mutex mutex_;
  size_t capacity_;
  std::deque<PublishSpan> recent_;  // Guarded by mutex_.
  Aggregate aggregate_;             // Guarded by mutex_.
};

}  // namespace trel

#endif  // TREL_OBS_SPAN_LOG_H_
