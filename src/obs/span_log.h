#ifndef TREL_OBS_SPAN_LOG_H_
#define TREL_OBS_SPAN_LOG_H_

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace trel {

// The named phases of one QueryService publish, in execution order.
// Full publishes spend their time in export + arena_build (+ stats);
// delta publishes in drain (ExportDelta) + export (WithDelta) and leave
// the other phases at 0.  rebuild covers in-publish index rebuilds
// (chain-fast RebuildWithChains or the cadence-driven Reoptimize) and is
// 0 when the publish reused the standing labeling.  See DESIGN.md §5.
enum class PublishPhase : int {
  kDrain = 0,       // Dirty-set drain: ExportDelta (delta) / MarkClean (full).
  kExport = 1,      // Label export minus the arena build; WithDelta for delta.
  kArenaBuild = 2,  // Flat LabelArena construction (full publishes only).
  kStats = 3,       // Optional ClosureStats pass (full publishes only).
  kSwap = 4,        // The atomic snapshot pointer store.
  kRebuild = 5,     // In-publish relabeling (chain-fast or Alg1 reoptimize).
};
constexpr int kNumPublishPhases = 6;

// "drain" / "export" / "arena_build" / "stats" / "swap" / "rebuild".
const char* PublishPhaseName(PublishPhase phase);

// How a published snapshot was produced.  The enum value doubles as the
// aggregate index, so delta stays 0 for continuity with the old
// full-vs-delta split.
enum class PublishStrategy : uint8_t {
  kDelta = 0,        // Overlay: ExportDelta + WithDelta on the base arena.
  kChainFull = 1,    // Full export of a chain-fast (path-cover) labeling.
  kOptimalFull = 2,  // Full export of an Alg1 antichain-optimal labeling.
};
constexpr int kNumPublishStrategies = 3;

// "delta" / "chain_full" / "optimal_full".
const char* PublishStrategyName(PublishStrategy strategy);

// One publish, decomposed into phases.  total_micros is the end-to-end
// publish time; the phases need not sum exactly to it (loop overhead and
// snapshot allocation sit between them).
struct PublishSpan {
  uint64_t epoch = 0;
  PublishStrategy strategy = PublishStrategy::kOptimalFull;
  int64_t total_micros = 0;
  std::array<int64_t, kNumPublishPhases> phase_micros{};
};

// Bounded log of publish spans plus incrementally maintained per-phase
// aggregates split by strategy.  Mutex-guarded: publishes are rare
// (milliseconds apart at the fastest) and already serialized by the
// service's writer mutex, so a lock here costs nothing measurable.
class SpanLog {
 public:
  // Power-of-two phase-latency histogram width; bucket i counts phases
  // that took [2^i, 2^(i+1)) microseconds (PowerOfTwoBucket semantics).
  static constexpr int kBuckets = 22;

  // Outer index = PublishStrategy value (0 delta, 1 chain_full,
  // 2 optimal_full).
  struct Aggregate {
    std::array<int64_t, kNumPublishStrategies> count{};
    std::array<int64_t, kNumPublishStrategies> total_micros{};
    std::array<std::array<int64_t, kNumPublishPhases>, kNumPublishStrategies>
        phase_micros_total{};
    std::array<std::array<std::array<int64_t, kBuckets>, kNumPublishPhases>,
               kNumPublishStrategies>
        phase_histogram{};
  };

  explicit SpanLog(size_t capacity = 128);

  void Record(const PublishSpan& span);

  // The most recent spans, oldest first (at most `capacity`).
  std::vector<PublishSpan> Recent() const;

  Aggregate Read() const;

 private:
  mutable std::mutex mutex_;
  size_t capacity_;
  std::deque<PublishSpan> recent_;  // Guarded by mutex_.
  Aggregate aggregate_;             // Guarded by mutex_.
};

}  // namespace trel

#endif  // TREL_OBS_SPAN_LOG_H_
