#ifndef TREL_OBS_TRACE_H_
#define TREL_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/arena_kernels.h"
#include "graph/digraph.h"

namespace trel {

// The pipeline stages a sharded query can spend time in.  A monolithic
// query never sets these; the sharded front end attributes its sampled
// queries stage-by-stage (DESIGN.md §5).
enum class QueryStage : uint8_t {
  kRoute = 0,           // bounds check + per-endpoint shard routing
  kBoundaryBitset = 1,  // hub out-row x in-row intersection
  kHopCore = 2,         // hub-bit probe + hop-label core query
  kShardQuery = 3,      // same-shard defer into the owning shard's index
  kMerge = 4,           // batch-only: folding shard results back
};
constexpr int kNumQueryStages = 5;

// "route" / "boundary_bitset" / "hop_core" / "shard_query" / "merge".
const char* QueryStageName(QueryStage stage);

// Stage attribution carried alongside a sampled record.  stage_nanos are
// sub-intervals of the record's end-to-end nanos measured on the same
// clock, so their sum never exceeds it (obs_check.py asserts this on
// flight-recorder captures).
struct StageTrace {
  uint32_t stage_nanos[kNumQueryStages] = {};
  // Shard whose local index decided the query; -1 when the boundary
  // layer (bitset or hop core) decided it without consulting a shard.
  int32_t shard = -1;
};

// One sampled query, reconstructed from a ring slot by Drain().
struct TraceRecord {
  // Global sampling order (monotone across threads); older records have
  // smaller sequences.
  uint64_t sequence = 0;
  NodeId source = 0;
  NodeId target = 0;
  bool answer = false;
  // True when the record came from a sampled batch rather than a single
  // Reaches call; its nanos are then the batch's per-query average.
  bool from_batch = false;
  ProbeTag tag = ProbeTag::kSlot;
  uint32_t extras_probes = 0;
  // Snapshot epoch the query was answered against.
  uint64_t epoch = 0;
  uint64_t nanos = 0;
  // Stage attribution (sharded records only; has_stages=false otherwise).
  bool has_stages = false;
  int32_t shard = -1;
  uint32_t stage_nanos[kNumQueryStages] = {};
};

// Lock-free sampled query tracer.  Sampled records land in a small set
// of fixed-capacity rings sharded by thread (so concurrent writers
// rarely contend on a head counter); Drain() merges the rings into a
// stable, sequence-ordered snapshot without stopping writers.
//
// Overhead contract: with sampling off (period 0, the default) the hot
// path pays exactly one relaxed load and one predictable branch
// (ShouldSample).  With sampling on, 1-in-period queries additionally
// pay two clock reads and one ring write; period is rounded up to a
// power of two so the sampling test is a single mask.
//
// Every slot access is an atomic: writers park a slot's generation tag
// at 0 while its payload words are in flight, and readers accept a slot
// only when the tag reads the same nonzero value before and after the
// payload loads — a seqlock whose races are benign and TSan-clean by
// construction (torn slots are simply skipped).
class QueryTracer {
 public:
  static constexpr int kNumRings = 16;
  static constexpr uint32_t kDefaultRingCapacity = 256;  // Records per ring.

  // `ring_capacity` (per ring) is rounded up to a power of two.
  explicit QueryTracer(uint32_t ring_capacity = kDefaultRingCapacity);

  QueryTracer(const QueryTracer&) = delete;
  QueryTracer& operator=(const QueryTracer&) = delete;

  // Sample 1-in-`period` queries; 0 disables (the default).  Rounded up
  // to the next power of two.  Safe to flip at runtime from any thread.
  void SetSamplePeriod(uint32_t period);
  uint32_t sample_period() const {
    return period_.load(std::memory_order_relaxed);
  }

  // Parses TREL_TRACE_SAMPLE (unset / empty / 0 / garbage = off) for
  // services and tools that want env-controlled sampling.
  static uint32_t PeriodFromEnv();

  // The hot-path gate.  One relaxed load + one branch when sampling is
  // off; a thread-local counter mask otherwise.
  bool ShouldSample() const {
    const uint32_t p = period_.load(std::memory_order_relaxed);
    if (p == 0) return false;
    thread_local uint32_t counter = 0;
    return (++counter & (p - 1)) == 0;
  }

  // Appends one record (cold path — call only after ShouldSample).
  void Record(NodeId source, NodeId target, bool answer, bool from_batch,
              ProbeTag tag, uint32_t extras_probes, uint64_t epoch,
              uint64_t nanos) {
    Record(source, target, answer, from_batch, tag, extras_probes, epoch,
           nanos, nullptr);
  }

  // Stage-attributed variant for the sharded front end: `stages` (may be
  // null) rides in three extra slot words under the same seqlock.
  void Record(NodeId source, NodeId target, bool answer, bool from_batch,
              ProbeTag tag, uint32_t extras_probes, uint64_t epoch,
              uint64_t nanos, const StageTrace* stages);

  // Merged, sequence-ordered (oldest first) snapshot of the ring
  // contents.  Non-destructive: rings keep the most recent records.
  // Slots a writer is mid-update on are skipped.
  std::vector<TraceRecord> Drain() const;

  // Records sampled since construction (monotone; rings only retain the
  // most recent ones).
  uint64_t TotalSampled() const {
    return next_sequence_.load(std::memory_order_relaxed);
  }

  // Per-ProbeTag sampled-record counts (monotone), indexed by
  // static_cast<int>(tag).
  std::array<uint64_t, kNumProbeTags> TagCounts() const;

 private:
  struct Slot {
    // 0 = empty or mid-write; otherwise record.sequence + 1.
    std::atomic<uint64_t> gen{0};
    std::atomic<uint64_t> word0{0};  // source (high 32) | target (low 32)
    std::atomic<uint64_t> word1{0};  // epoch
    std::atomic<uint64_t> word2{0};  // nanos
    std::atomic<uint64_t> word3{0};  // flags | tag | extras_probes
    std::atomic<uint64_t> word4{0};  // stage_nanos[1] (high 32) | [0] (low 32)
    std::atomic<uint64_t> word5{0};  // stage_nanos[3] (high 32) | [2] (low 32)
    // High 32: 0 = no stage info, else shard + 2 (so shard -1 encodes
    // as 1).  Low 32: stage_nanos[4].
    std::atomic<uint64_t> word6{0};
  };
  struct Ring {
    std::atomic<uint64_t> head{0};
    std::vector<Slot> slots;
  };

  uint32_t ring_capacity_;
  std::atomic<uint32_t> period_{0};
  std::atomic<uint64_t> next_sequence_{0};
  std::array<std::atomic<uint64_t>, kNumProbeTags> tag_counts_{};
  std::array<Ring, kNumRings> rings_;
};

}  // namespace trel

#endif  // TREL_OBS_TRACE_H_
