#include "obs/rollup.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace trel {

namespace {

// Upper edge of bucket b in microseconds: buckets hold [2^b, 2^(b+1))
// nanos, so the edge is 2^(b+1) ns (the last, open-ended bucket keeps
// its lower-edge doubling as a finite, monotone stand-in).
double BucketUpperEdgeUs(int bucket) {
  return static_cast<double>(int64_t{1} << (bucket + 1)) / 1000.0;
}

}  // namespace

int64_t LatencyRollup::MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const std::vector<int>& LatencyRollup::WindowMinutes() {
  static const std::vector<int> kWindows = {1, 5};
  return kWindows;
}

LatencyRollup::LatencyRollup(std::vector<std::string> series_names,
                             NowFn now_fn)
    : names_(std::move(series_names)),
      now_fn_(now_fn != nullptr ? now_fn : &MonotonicNanos),
      cells_(names_.size() * kRingMinutes) {}

void LatencyRollup::Record(int series, int64_t nanos) {
  if (series < 0 || series >= num_series()) return;
  if (nanos < 0) nanos = 0;
  const int64_t minute = now_fn_() / kNanosPerMinute;
  Cell& cell =
      cells_[static_cast<size_t>(series) * kRingMinutes + minute % kRingMinutes];
  int64_t stamped = cell.minute.load(std::memory_order_relaxed);
  if (stamped != minute) {
    // Claim the cell for the new minute; exactly one racing writer wins
    // and clears it.  Losers (stamped already advanced) fall through and
    // record into the fresh cell.
    if (cell.minute.compare_exchange_strong(stamped, minute,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
      cell.count.store(0, std::memory_order_relaxed);
      cell.sum_nanos.store(0, std::memory_order_relaxed);
      for (auto& b : cell.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum_nanos.fetch_add(nanos, std::memory_order_relaxed);
  cell.buckets[PowerOfTwoBucket(nanos, kBuckets)].fetch_add(
      1, std::memory_order_relaxed);
}

LatencyRollup::WindowStats LatencyRollup::Window(int series,
                                                 int window_minutes,
                                                 int skip_minutes) const {
  WindowStats stats;
  if (series < 0 || series >= num_series() || window_minutes <= 0) {
    return stats;
  }
  const int64_t now_minute = now_fn_() / kNanosPerMinute;
  const int64_t newest = now_minute - skip_minutes;
  const int64_t oldest = newest - window_minutes + 1;
  int64_t buckets[kBuckets] = {};
  const Cell* row = &cells_[static_cast<size_t>(series) * kRingMinutes];
  for (int i = 0; i < kRingMinutes; ++i) {
    const Cell& cell = row[i];
    const int64_t m = cell.minute.load(std::memory_order_relaxed);
    if (m < oldest || m > newest) continue;
    stats.count += cell.count.load(std::memory_order_relaxed);
    stats.sum_nanos += cell.sum_nanos.load(std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b) {
      buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
  // Quantile ranks off the folded histogram.  Bucket totals are the
  // source of truth for ranking (count can race slightly ahead of the
  // bucket adds); an empty window reports zeros.
  int64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) total += buckets[b];
  if (total == 0) return stats;
  const auto quantile_us = [&](double q) {
    const int64_t rank =
        std::max<int64_t>(1, static_cast<int64_t>(q * static_cast<double>(total) + 0.5));
    int64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += buckets[b];
      if (seen >= rank) return BucketUpperEdgeUs(b);
    }
    return BucketUpperEdgeUs(kBuckets - 1);
  };
  stats.p50_us = quantile_us(0.50);
  stats.p99_us = quantile_us(0.99);
  stats.p999_us = quantile_us(0.999);
  return stats;
}

}  // namespace trel
