#include "obs/slow_log.h"

namespace trel {

SlowQueryLog::SlowQueryLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SlowQueryLog::Record(SlowQueryEntry entry) {
  total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  entry.sequence = next_sequence_++;
  recent_.push_back(entry);
  if (recent_.size() > capacity_) recent_.pop_front();
}

std::vector<SlowQueryEntry> SlowQueryLog::Recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<SlowQueryEntry>(recent_.begin(), recent_.end());
}

}  // namespace trel
