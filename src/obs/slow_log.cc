#include "obs/slow_log.h"

#include <sstream>

namespace trel {

std::string SlowQueryEntry::ToString() const {
  std::ostringstream out;
  out << "seq=" << sequence << " epoch=" << epoch
      << (is_batch ? " batch" : " single") << " n=" << num_queries
      << " first=(" << source << "," << target << ")" << " us=" << micros;
  if (is_batch) {
    out << " stats[fast=" << stats.fast_path
        << " filter=" << stats.filter_rejects
        << " group=" << stats.group_rejects
        << " extras=" << stats.extras_searches << "]";
  } else {
    out << " answer=" << (answer ? 1 : 0) << " tag=" << ProbeTagName(tag);
  }
  if (source_shard >= 0 || target_shard >= 0) {
    out << " shards=(" << source_shard << "," << target_shard << ")"
        << " cross=" << (cross_shard ? 1 : 0);
  }
  return out.str();
}

std::string SlowQueryLog::ToString() const {
  std::ostringstream out;
  for (const SlowQueryEntry& entry : Recent()) {
    out << entry.ToString() << "\n";
  }
  return out.str();
}

SlowQueryLog::SlowQueryLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SlowQueryLog::Record(SlowQueryEntry entry) {
  total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  entry.sequence = next_sequence_++;
  recent_.push_back(entry);
  if (recent_.size() > capacity_) recent_.pop_front();
}

std::vector<SlowQueryEntry> SlowQueryLog::Recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<SlowQueryEntry>(recent_.begin(), recent_.end());
}

}  // namespace trel
