#ifndef TREL_OBS_HTTP_SERVER_H_
#define TREL_OBS_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/status.h"

namespace trel {

// Minimal single-threaded embedded HTTP/1.0 listener for the obs
// exposition endpoints (/metricsz, /statusz, /tracez).  Deliberately
// tiny: GET only, one request per connection, responses rendered by
// registered handlers on the serving thread.  Binds 127.0.0.1 only —
// this is a diagnostics port, not a public API; put a real proxy in
// front for anything else.
class HttpServer {
 public:
  // Returns the response body for one GET of the registered path.
  using Handler = std::function<std::string()>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers `handler` for exact-match `path` (e.g. "/metricsz").
  // Call before Start(); not thread-safe against the serving loop.
  void Handle(std::string path, Handler handler);

  // Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, see
  // port()) and starts the serving thread.
  Status Start(int port);

  // The bound port; valid after a successful Start().
  int port() const { return port_; }

  // Stops the serving thread and closes the socket.  Idempotent; also
  // run by the destructor.
  void Stop();

 private:
  void ServeLoop();

  std::unordered_map<std::string, Handler> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace trel

#endif  // TREL_OBS_HTTP_SERVER_H_
