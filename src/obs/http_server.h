#ifndef TREL_OBS_HTTP_SERVER_H_
#define TREL_OBS_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace trel {

// Small embedded HTTP/1.0 listener for the obs exposition endpoints
// (/metricsz, /statusz, /tracez).  Deliberately tiny — GET only, one
// request per connection, responses rendered by registered handlers —
// but hardened for hostile or merely slow clients: an accept loop feeds
// a bounded set of worker threads, every connection gets a total
// deadline and a request-size cap, and connections beyond the cap are
// shed with a 503 instead of queuing unboundedly.  Binds 127.0.0.1
// only — this is a diagnostics port, not a public API; put a real proxy
// in front for anything else.
class HttpServer {
 public:
  // Returns the response body for one GET of the registered path.
  using Handler = std::function<std::string()>;

  struct Options {
    // Worker threads answering requests.  One slow handler (or one slow
    // reader draining a big response) occupies one worker, not the
    // whole server.
    int num_threads = 4;
    // Connections alive at once (queued + in service).  Accepts past
    // the cap are answered 503 on the accept thread and closed — load
    // shedding, never unbounded queueing.
    int max_connections = 32;
    // Total per-connection budget for *reading* the request, covering
    // every recv.  A client trickling one byte per poll interval (slow
    // loris) is cut off with a 408 when the budget expires, no matter
    // how many bytes it has dribbled.
    int request_deadline_ms = 2000;
    // Request line + headers cap; longer requests are answered 431 and
    // closed.  The handlers take no body, so anything past a few header
    // lines is garbage.
    int max_request_bytes = 8192;
    // Per-send timeout (SO_SNDTIMEO) while writing the response.  A
    // slow consumer that keeps draining gets its whole response; one
    // that stalls entirely forfeits the connection after this long.
    int write_timeout_ms = 5000;
  };

  // Counters for everything the listener decided, readable while it
  // serves.  Plain-value copy; take two and diff for rates.
  struct Stats {
    int64_t accepted = 0;        // Connections handed to workers.
    int64_t shed = 0;            // 503s sent at the connection cap.
    int64_t served_ok = 0;       // 200 responses completed.
    int64_t not_found = 0;       // 404s.
    int64_t bad_requests = 0;    // 400s (unparseable request line).
    int64_t deadline_expired = 0;  // 408s (read budget exhausted).
    int64_t too_large = 0;       // 431s (request-size cap).
    int64_t send_errors = 0;     // Responses cut short by the peer.
  };

  HttpServer() = default;
  explicit HttpServer(const Options& options) : options_(options) {}
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers `handler` for exact-match `path` (e.g. "/metricsz").
  // Call before Start(); not thread-safe against the serving loop.
  void Handle(std::string path, Handler handler);

  // Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, see
  // port()) and starts the accept thread plus the worker pool.
  Status Start(int port);

  // The bound port; valid after a successful Start().
  int port() const { return port_; }

  // Stops the accept and worker threads and closes the socket.
  // Idempotent; also run by the destructor.
  void Stop();

  Stats stats() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  // Reads, routes and answers one connection, then closes it.
  void ServeConnection(int fd);

  Options options_;
  std::unordered_map<std::string, Handler> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};

  // Accepted fds waiting for a worker; guarded by mutex_.  Its length
  // plus the in-service count is capped by Options::max_connections.
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<int> pending_;
  // Connections accepted and not yet closed (queued or in service).
  std::atomic<int> active_connections_{0};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> served_ok_{0};
  std::atomic<int64_t> not_found_{0};
  std::atomic<int64_t> bad_requests_{0};
  std::atomic<int64_t> deadline_expired_{0};
  std::atomic<int64_t> too_large_{0};
  std::atomic<int64_t> send_errors_{0};
};

}  // namespace trel

#endif  // TREL_OBS_HTTP_SERVER_H_
