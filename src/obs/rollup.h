#ifndef TREL_OBS_ROLLUP_H_
#define TREL_OBS_ROLLUP_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace trel {

// Windowed latency percentiles, live and in-process.
//
// Each named series owns a small ring of per-minute histogram cells
// (power-of-two nanosecond buckets).  Record() is wait-free on the hot
// path: one clockless bucket computation plus three relaxed atomic adds
// on the cell the current minute hashes to; a cell is claimed for a new
// minute with a single CAS, so rotation costs O(kBuckets) once per
// series-minute, never per record.  Reads (Window) fold the cells whose
// minute stamps fall inside a sliding window and walk the cumulative
// histogram for p50/p99/p999.  Quantiles are reported as the upper edge
// of the deciding bucket, so p50 <= p99 <= p999 always holds.
//
// Concurrency: every field is an atomic; readers and writers never
// block.  Records racing a minute-boundary rotation can land in a cell
// the rotating writer is clearing and be dropped — a bounded, benign
// smear confined to the boundary instant (the tracer's seqlock makes
// the same trade).
//
// The clock is injectable for tests: pass a monotonic-nanos function to
// the constructor and minute math becomes fully deterministic.
class LatencyRollup {
 public:
  static constexpr int kBuckets = 28;  // 2^27 ns ~ 134 ms top bucket.
  static constexpr int kRingMinutes = 8;
  static constexpr int64_t kNanosPerMinute = 60LL * 1000 * 1000 * 1000;

  using NowFn = int64_t (*)();

  // Monotonic nanoseconds (steady_clock); the default clock.
  static int64_t MonotonicNanos();

  // Sliding-window lengths the engine exposes (minutes, ascending).
  static const std::vector<int>& WindowMinutes();

  // One histogram ring per named series; names label exposition output.
  explicit LatencyRollup(std::vector<std::string> series_names,
                         NowFn now_fn = nullptr);

  LatencyRollup(const LatencyRollup&) = delete;
  LatencyRollup& operator=(const LatencyRollup&) = delete;

  int num_series() const { return static_cast<int>(names_.size()); }
  const std::string& series_name(int series) const { return names_[series]; }

  // O(1) hot-path record of one latency observation.
  void Record(int series, int64_t nanos);

  struct WindowStats {
    int64_t count = 0;
    int64_t sum_nanos = 0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double p999_us = 0.0;
  };

  // Folds the cells covering minutes (now - skip - minutes, now - skip].
  // skip_minutes > 0 yields a trailing window that excludes the most
  // recent minutes — the flight recorder's drift baseline.
  WindowStats Window(int series, int window_minutes,
                     int skip_minutes = 0) const;

 private:
  struct Cell {
    std::atomic<int64_t> minute{-1};  // -1 = never used.
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum_nanos{0};
    std::array<std::atomic<int64_t>, kBuckets> buckets{};
  };

  std::vector<std::string> names_;
  NowFn now_fn_;
  std::vector<Cell> cells_;  // names_.size() x kRingMinutes, row-major.
};

}  // namespace trel

#endif  // TREL_OBS_ROLLUP_H_
