#ifndef TREL_OBS_PROMETHEUS_H_
#define TREL_OBS_PROMETHEUS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace trel {

// Incremental builder for the Prometheus text exposition format
// (version 0.0.4).  Usage: one Family() per metric family, then its
// sample lines.  The builder does no name validation — callers pass
// well-formed snake_case names; label VALUES are escaped here.
class PrometheusText {
 public:
  // Emits the `# HELP` / `# TYPE` header for a family.  `type` is one of
  // "counter" / "gauge" / "histogram".
  void Family(std::string_view name, std::string_view help,
              std::string_view type);

  // One sample: `name{labels} value`.  `labels` is the raw text inside
  // the braces (e.g. `kind="full",phase="export"`); pass "" for an
  // unlabeled sample.
  void Sample(std::string_view name, std::string_view labels, int64_t value);
  void Sample(std::string_view name, std::string_view labels, double value);

  // Renders a power-of-two bucket array (PowerOfTwoBucket semantics:
  // bucket i counts [2^i, 2^(i+1))) as a cumulative Prometheus histogram:
  // `name_bucket{labels,le="2^(i+1)"}` lines, the `+Inf` bucket, then
  // `name_sum` (pass the tracked total; it is NOT derivable from the
  // buckets) and `name_count`.  Call Family(name, ..., "histogram")
  // once before the first series of the family.
  void Histogram(std::string_view name, std::string_view labels,
                 const int64_t* buckets, int num_buckets, int64_t sum);

  // Escapes a label value per the exposition format (backslash, quote,
  // newline) and wraps it in `key="..."`.
  static std::string Label(std::string_view key, std::string_view value);

  const std::string& str() const { return out_; }

 private:
  std::string out_;
};

}  // namespace trel

#endif  // TREL_OBS_PROMETHEUS_H_
