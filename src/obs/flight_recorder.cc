#include "obs/flight_recorder.h"

#include <cstdio>
#include <sstream>
#include <utility>

namespace trel {

namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendTraceJson(std::ostringstream& out, const TraceRecord& r) {
  out << "{\"seq\":" << r.sequence << ",\"src\":" << r.source
      << ",\"dst\":" << r.target << ",\"answer\":" << (r.answer ? 1 : 0)
      << ",\"batch\":" << (r.from_batch ? 1 : 0) << ",\"tag\":\""
      << ProbeTagName(r.tag) << "\",\"probes\":" << r.extras_probes
      << ",\"epoch\":" << r.epoch << ",\"nanos\":" << r.nanos;
  if (r.has_stages) {
    out << ",\"shard\":" << r.shard << ",\"stages\":{";
    for (int s = 0; s < kNumQueryStages; ++s) {
      if (s > 0) out << ",";
      out << "\"" << QueryStageName(static_cast<QueryStage>(s))
          << "\":" << r.stage_nanos[s];
    }
    out << "}";
  }
  out << "}";
}

void AppendSpanJson(std::ostringstream& out, const PublishSpan& span) {
  out << "{\"epoch\":" << span.epoch << ",\"strategy\":\""
      << PublishStrategyName(span.strategy)
      << "\",\"total_micros\":" << span.total_micros << ",\"phases\":{";
  for (int p = 0; p < kNumPublishPhases; ++p) {
    if (p > 0) out << ",";
    out << "\"" << PublishPhaseName(static_cast<PublishPhase>(p))
        << "\":" << span.phase_micros[p];
  }
  out << "}}";
}

void AppendSlowJson(std::ostringstream& out, const SlowQueryEntry& e) {
  out << "{\"seq\":" << e.sequence << ",\"batch\":" << (e.is_batch ? 1 : 0)
      << ",\"first\":[" << e.source << "," << e.target << "]"
      << ",\"n\":" << e.num_queries << ",\"us\":" << e.micros
      << ",\"epoch\":" << e.epoch << ",\"source_shard\":" << e.source_shard
      << ",\"target_shard\":" << e.target_shard
      << ",\"cross_shard\":" << (e.cross_shard ? 1 : 0) << "}";
}

void AppendWindowJson(std::ostringstream& out,
                      const FlightCapture::WindowRow& row) {
  out << "{\"series\":\"" << JsonEscape(row.series) << "\",\"window\":\""
      << row.window_minutes << "m\",\"count\":" << row.stats.count
      << ",\"p50_us\":" << row.stats.p50_us
      << ",\"p99_us\":" << row.stats.p99_us
      << ",\"p999_us\":" << row.stats.p999_us << "}";
}

}  // namespace

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::FlightRecorder(const Options& options,
                               LatencyRollup::NowFn now_fn)
    : options_(options),
      now_fn_(now_fn != nullptr ? now_fn : &LatencyRollup::MonotonicNanos) {}

void FlightRecorder::Attach(const LatencyRollup* rollup,
                            CaptureBuilder builder) {
  std::lock_guard<std::mutex> lock(mutex_);
  rollup_ = rollup;
  builder_ = std::move(builder);
}

void FlightRecorder::TriggerLocked(const std::string& reason,
                                   const std::string& detail) {
  FlightCapture capture;
  if (builder_) builder_(&capture);
  capture.sequence = next_sequence_++;
  capture.reason = reason;
  capture.detail = detail;
  capture.trigger_nanos = now_fn_();
  if (rollup_ != nullptr) {
    for (int s = 0; s < rollup_->num_series(); ++s) {
      for (const int minutes : LatencyRollup::WindowMinutes()) {
        FlightCapture::WindowRow row;
        row.series = rollup_->series_name(s);
        row.window_minutes = minutes;
        row.stats = rollup_->Window(s, minutes);
        capture.windows.push_back(std::move(row));
      }
    }
  }
  ++total_triggered_;
  captures_.push_back(std::move(capture));
  while (static_cast<int>(captures_.size()) > options_.max_captures) {
    captures_.pop_front();
  }
}

bool FlightRecorder::Check(const Inputs& inputs) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string reason;
  std::string detail;

  // Publish stall: at most one capture per stalled epoch.
  if (inputs.has_publish && options_.publish_stall_micros > 0 &&
      inputs.last_publish_micros >= options_.publish_stall_micros &&
      (!has_stall_epoch_ || inputs.last_publish_epoch != last_stall_epoch_)) {
    has_stall_epoch_ = true;
    last_stall_epoch_ = inputs.last_publish_epoch;
    reason = "publish_stall";
    std::ostringstream d;
    d << "publish epoch " << inputs.last_publish_epoch << " took "
      << inputs.last_publish_micros << " us";
    detail = d.str();
  }

  // Counter bursts: deltas between consecutive checks.  The first check
  // only seeds the baselines.
  if (reason.empty() && prev_rejected_ >= 0 && options_.rejected_burst > 0 &&
      inputs.batches_rejected - prev_rejected_ >= options_.rejected_burst) {
    reason = "rejected_burst";
    std::ostringstream d;
    d << "batches_rejected +" << (inputs.batches_rejected - prev_rejected_)
      << " since last check";
    detail = d.str();
  }
  if (reason.empty() && prev_republishes_ >= 0 &&
      options_.boundary_spike > 0 &&
      inputs.boundary_republishes - prev_republishes_ >=
          options_.boundary_spike) {
    reason = "boundary_spike";
    std::ostringstream d;
    d << "boundary_republishes +"
      << (inputs.boundary_republishes - prev_republishes_)
      << " since last check";
    detail = d.str();
  }
  prev_rejected_ = inputs.batches_rejected;
  prev_republishes_ = inputs.boundary_republishes;

  // p99 drift: the current minute's window vs the trailing 4 minutes,
  // re-armed at most once per minute so a sustained anomaly doesn't
  // flood the capture ring.
  if (reason.empty() && rollup_ != nullptr && options_.p99_drift_factor > 0) {
    const int64_t minute = now_fn_() / LatencyRollup::kNanosPerMinute;
    if (minute != last_drift_minute_) {
      for (int s = 0; s < rollup_->num_series(); ++s) {
        const LatencyRollup::WindowStats current = rollup_->Window(s, 1);
        if (current.count < options_.min_window_count) continue;
        const LatencyRollup::WindowStats baseline =
            rollup_->Window(s, 4, /*skip_minutes=*/1);
        if (baseline.count < options_.min_window_count) continue;
        if (current.p99_us >
            options_.p99_drift_factor * baseline.p99_us) {
          last_drift_minute_ = minute;
          reason = "p99_drift";
          std::ostringstream d;
          d << "series " << rollup_->series_name(s) << " 1m p99 "
            << current.p99_us << " us vs trailing baseline "
            << baseline.p99_us << " us";
          detail = d.str();
          break;
        }
      }
    }
  }

  if (reason.empty()) return false;
  TriggerLocked(reason, detail);
  return true;
}

bool FlightRecorder::ForceCapture(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  TriggerLocked(reason, "forced capture");
  return true;
}

std::vector<FlightCapture> FlightRecorder::Captures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<FlightCapture>(captures_.begin(), captures_.end());
}

int64_t FlightRecorder::TotalTriggered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_triggered_;
}

std::string FlightRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"total_triggered\":" << total_triggered_ << ",\"captures\":[";
  bool first_capture = true;
  for (const FlightCapture& c : captures_) {
    if (!first_capture) out << ",";
    first_capture = false;
    out << "{\"sequence\":" << c.sequence << ",\"reason\":\""
        << JsonEscape(c.reason) << "\",\"detail\":\"" << JsonEscape(c.detail)
        << "\",\"trigger_nanos\":" << c.trigger_nanos << ",\"traces\":[";
    for (size_t i = 0; i < c.traces.size(); ++i) {
      if (i > 0) out << ",";
      AppendTraceJson(out, c.traces[i]);
    }
    out << "],\"spans\":[";
    for (size_t i = 0; i < c.spans.size(); ++i) {
      if (i > 0) out << ",";
      AppendSpanJson(out, c.spans[i]);
    }
    out << "],\"slow\":[";
    for (size_t i = 0; i < c.slow.size(); ++i) {
      if (i > 0) out << ",";
      AppendSlowJson(out, c.slow[i]);
    }
    out << "],\"metrics\":\"" << JsonEscape(c.metrics) << "\",\"windows\":[";
    for (size_t i = 0; i < c.windows.size(); ++i) {
      if (i > 0) out << ",";
      AppendWindowJson(out, c.windows[i]);
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace trel
