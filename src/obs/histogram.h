#ifndef TREL_OBS_HISTOGRAM_H_
#define TREL_OBS_HISTOGRAM_H_

#include <cstdint>

namespace trel {

// Power-of-two bucket index for a non-negative value, clamped to
// [0, buckets): bucket i counts values in [2^i, 2^(i+1)), bucket 0
// additionally catches [0, 2), and the last bucket everything larger.
// Shared by ServiceMetrics and the obs span histograms so exposition can
// render one consistent `le` boundary scheme (upper bound of bucket i is
// 2^(i+1)).
inline int PowerOfTwoBucket(int64_t value, int buckets) {
  int bucket = 0;
  while (bucket + 1 < buckets && value >= (int64_t{1} << (bucket + 1))) {
    ++bucket;
  }
  return bucket;
}

}  // namespace trel

#endif  // TREL_OBS_HISTOGRAM_H_
