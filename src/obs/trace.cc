#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <thread>

namespace trel {

namespace {

// Word3 layout: bit 0 answer, bit 1 from_batch, bits 2..4 tag, bits
// 8..39 extras_probes.
constexpr uint64_t kAnswerBit = 1;
constexpr uint64_t kFromBatchBit = 2;
constexpr int kTagShift = 2;
constexpr uint64_t kTagMask = 0x7;
constexpr int kProbesShift = 8;

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v && p < (1u << 30)) p <<= 1;
  return p;
}

int ThreadRingIndex() {
  // Cache the shard per thread: one hash at first use, a TLS read after.
  thread_local const int index = static_cast<int>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      (QueryTracer::kNumRings - 1));
  return index;
}

}  // namespace

const char* QueryStageName(QueryStage stage) {
  switch (stage) {
    case QueryStage::kRoute:
      return "route";
    case QueryStage::kBoundaryBitset:
      return "boundary_bitset";
    case QueryStage::kHopCore:
      return "hop_core";
    case QueryStage::kShardQuery:
      return "shard_query";
    case QueryStage::kMerge:
      return "merge";
  }
  return "unknown";
}

QueryTracer::QueryTracer(uint32_t ring_capacity)
    : ring_capacity_(RoundUpPow2(ring_capacity == 0 ? 1 : ring_capacity)) {
  for (Ring& ring : rings_) {
    ring.slots = std::vector<Slot>(ring_capacity_);
  }
}

void QueryTracer::SetSamplePeriod(uint32_t period) {
  period_.store(period == 0 ? 0 : RoundUpPow2(period),
                std::memory_order_relaxed);
}

uint32_t QueryTracer::PeriodFromEnv() {
  const char* env = std::getenv("TREL_TRACE_SAMPLE");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || parsed > (1ul << 30)) return 0;
  return static_cast<uint32_t>(parsed);
}

void QueryTracer::Record(NodeId source, NodeId target, bool answer,
                         bool from_batch, ProbeTag tag, uint32_t extras_probes,
                         uint64_t epoch, uint64_t nanos,
                         const StageTrace* stages) {
  const uint64_t seq = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  tag_counts_[static_cast<int>(tag)].fetch_add(1, std::memory_order_relaxed);
  Ring& ring = rings_[ThreadRingIndex()];
  const uint64_t pos =
      ring.head.fetch_add(1, std::memory_order_relaxed) & (ring_capacity_ - 1);
  Slot& slot = ring.slots[pos];
  // Seqlock write: park the generation at 0 (readers skip), publish the
  // payload, then release the new generation.
  slot.gen.store(0, std::memory_order_release);
  slot.word0.store((static_cast<uint64_t>(static_cast<uint32_t>(source)) << 32) |
                       static_cast<uint32_t>(target),
                   std::memory_order_relaxed);
  slot.word1.store(epoch, std::memory_order_relaxed);
  slot.word2.store(nanos, std::memory_order_relaxed);
  slot.word3.store((answer ? kAnswerBit : 0) |
                       (from_batch ? kFromBatchBit : 0) |
                       ((static_cast<uint64_t>(tag) & kTagMask) << kTagShift) |
                       (static_cast<uint64_t>(extras_probes) << kProbesShift),
                   std::memory_order_relaxed);
  if (stages != nullptr) {
    slot.word4.store(static_cast<uint64_t>(stages->stage_nanos[0]) |
                         (static_cast<uint64_t>(stages->stage_nanos[1]) << 32),
                     std::memory_order_relaxed);
    slot.word5.store(static_cast<uint64_t>(stages->stage_nanos[2]) |
                         (static_cast<uint64_t>(stages->stage_nanos[3]) << 32),
                     std::memory_order_relaxed);
    slot.word6.store(
        static_cast<uint64_t>(stages->stage_nanos[4]) |
            (static_cast<uint64_t>(static_cast<uint32_t>(stages->shard + 2))
             << 32),
        std::memory_order_relaxed);
  } else {
    slot.word4.store(0, std::memory_order_relaxed);
    slot.word5.store(0, std::memory_order_relaxed);
    slot.word6.store(0, std::memory_order_relaxed);
  }
  slot.gen.store(seq + 1, std::memory_order_release);
}

std::vector<TraceRecord> QueryTracer::Drain() const {
  std::vector<TraceRecord> records;
  for (const Ring& ring : rings_) {
    for (const Slot& slot : ring.slots) {
      const uint64_t g1 = slot.gen.load(std::memory_order_acquire);
      if (g1 == 0) continue;
      const uint64_t w0 = slot.word0.load(std::memory_order_relaxed);
      const uint64_t w1 = slot.word1.load(std::memory_order_relaxed);
      const uint64_t w2 = slot.word2.load(std::memory_order_relaxed);
      const uint64_t w3 = slot.word3.load(std::memory_order_relaxed);
      const uint64_t w4 = slot.word4.load(std::memory_order_relaxed);
      const uint64_t w5 = slot.word5.load(std::memory_order_relaxed);
      const uint64_t w6 = slot.word6.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.gen.load(std::memory_order_relaxed) != g1) continue;  // Torn.
      TraceRecord record;
      record.sequence = g1 - 1;
      record.source = static_cast<NodeId>(static_cast<uint32_t>(w0 >> 32));
      record.target = static_cast<NodeId>(static_cast<uint32_t>(w0));
      record.epoch = w1;
      record.nanos = w2;
      record.answer = (w3 & kAnswerBit) != 0;
      record.from_batch = (w3 & kFromBatchBit) != 0;
      record.tag = static_cast<ProbeTag>((w3 >> kTagShift) & kTagMask);
      record.extras_probes = static_cast<uint32_t>(w3 >> kProbesShift);
      const uint32_t shard_marker = static_cast<uint32_t>(w6 >> 32);
      if (shard_marker != 0) {
        record.has_stages = true;
        record.shard = static_cast<int32_t>(shard_marker) - 2;
        record.stage_nanos[0] = static_cast<uint32_t>(w4);
        record.stage_nanos[1] = static_cast<uint32_t>(w4 >> 32);
        record.stage_nanos[2] = static_cast<uint32_t>(w5);
        record.stage_nanos[3] = static_cast<uint32_t>(w5 >> 32);
        record.stage_nanos[4] = static_cast<uint32_t>(w6);
      }
      records.push_back(record);
    }
  }
  std::sort(records.begin(), records.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.sequence < b.sequence;
            });
  return records;
}

std::array<uint64_t, kNumProbeTags> QueryTracer::TagCounts() const {
  std::array<uint64_t, kNumProbeTags> counts{};
  for (int i = 0; i < kNumProbeTags; ++i) {
    counts[i] = tag_counts_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

}  // namespace trel
