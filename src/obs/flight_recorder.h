#ifndef TREL_OBS_FLIGHT_RECORDER_H_
#define TREL_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/rollup.h"
#include "obs/slow_log.h"
#include "obs/span_log.h"
#include "obs/trace.h"

namespace trel {

// One frozen anomaly capture: everything a human needs to reconstruct
// what the service was doing when a detector fired.
struct FlightCapture {
  int64_t sequence = 0;
  std::string reason;  // Detector name (or "forced" reasons).
  std::string detail;  // Human-oriented trigger specifics.
  int64_t trigger_nanos = 0;  // Monotonic clock at trigger time.
  std::vector<TraceRecord> traces;
  std::vector<PublishSpan> spans;
  std::vector<SlowQueryEntry> slow;
  std::string metrics;  // The service's View::ToString() line.
  struct WindowRow {
    std::string series;
    int window_minutes = 0;
    LatencyRollup::WindowStats stats;
  };
  std::vector<WindowRow> windows;
};

// Anomaly flight recorder: cheap detectors over the windowed latency
// engine and a handful of cumulative counters that, on firing, freeze a
// full capture (recent traces, publish spans, slow queries, metrics
// line, window state) for /flightz.
//
// Detectors (DESIGN.md §5):
//   p99_drift       — a series' 1m p99 exceeds drift_factor x its
//                     trailing baseline (the preceding 4 minutes).
//   publish_stall   — the most recent publish took publish_stall_micros
//                     or longer.
//   rejected_burst  — batches_rejected grew by rejected_burst or more
//                     between checks.
//   boundary_spike  — boundary republishes grew by boundary_spike or
//                     more between checks.
//
// Check() is cold-path only: it runs at scrape time and after
// publishes, never per query.  All state is mutex-guarded.  The clock
// is injectable for deterministic tests.
class FlightRecorder {
 public:
  struct Options {
    double p99_drift_factor = 4.0;
    // Windows with fewer samples than this never trigger drift (smoke
    // traffic and cold starts are all noise).
    int64_t min_window_count = 64;
    int64_t publish_stall_micros = 1000000;
    int64_t rejected_burst = 8;
    int64_t boundary_spike = 16;
    int max_captures = 4;
  };

  // Counter snapshot the owning service passes to each Check().
  struct Inputs {
    int64_t batches_rejected = 0;      // Cumulative.
    int64_t boundary_republishes = 0;  // Cumulative (0 when monolithic).
    int64_t last_publish_micros = 0;
    uint64_t last_publish_epoch = 0;
    bool has_publish = false;
  };

  // Fills the capture's traces/spans/slow/metrics from the owning
  // service; the recorder adds sequence, reason, clock, and windows.
  using CaptureBuilder = std::function<void(FlightCapture*)>;

  FlightRecorder();  // Default Options.
  explicit FlightRecorder(const Options& options,
                          LatencyRollup::NowFn now_fn = nullptr);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Wires the window source and the capture payload source.  Call once
  // at service construction, before any Check().
  void Attach(const LatencyRollup* rollup, CaptureBuilder builder);

  // Runs every detector; freezes at most one capture per call.  Returns
  // true when a capture was taken.
  bool Check(const Inputs& inputs);

  // Unconditionally freezes a capture (test hook / TREL_FLIGHT_TEST_TRIGGER).
  bool ForceCapture(const std::string& reason);

  std::vector<FlightCapture> Captures() const;
  int64_t TotalTriggered() const;

  // The /flightz payload: {"total_triggered": N, "captures": [...]}.
  std::string ToJson() const;

 private:
  // Freezes a capture under mutex_ (caller holds it).
  void TriggerLocked(const std::string& reason, const std::string& detail);

  Options options_;
  LatencyRollup::NowFn now_fn_;

  mutable std::mutex mutex_;
  const LatencyRollup* rollup_ = nullptr;  // Guarded by mutex_.
  CaptureBuilder builder_;                 // Guarded by mutex_.
  std::deque<FlightCapture> captures_;     // Guarded by mutex_.
  int64_t total_triggered_ = 0;            // Guarded by mutex_.
  int64_t next_sequence_ = 0;              // Guarded by mutex_.
  // Detector state (guarded by mutex_).
  int64_t prev_rejected_ = -1;
  int64_t prev_republishes_ = -1;
  uint64_t last_stall_epoch_ = 0;
  bool has_stall_epoch_ = false;
  int64_t last_drift_minute_ = -1;  // Re-arm drift once per minute.
};

}  // namespace trel

#endif  // TREL_OBS_FLIGHT_RECORDER_H_
