#include "obs/span_log.h"

#include "obs/histogram.h"

namespace trel {

const char* PublishPhaseName(PublishPhase phase) {
  switch (phase) {
    case PublishPhase::kDrain:
      return "drain";
    case PublishPhase::kExport:
      return "export";
    case PublishPhase::kArenaBuild:
      return "arena_build";
    case PublishPhase::kStats:
      return "stats";
    case PublishPhase::kSwap:
      return "swap";
    case PublishPhase::kRebuild:
      return "rebuild";
  }
  return "unknown";
}

const char* PublishStrategyName(PublishStrategy strategy) {
  switch (strategy) {
    case PublishStrategy::kDelta:
      return "delta";
    case PublishStrategy::kChainFull:
      return "chain_full";
    case PublishStrategy::kOptimalFull:
      return "optimal_full";
  }
  return "unknown";
}

SpanLog::SpanLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void SpanLog::Record(const PublishSpan& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int kind = static_cast<int>(span.strategy);
  ++aggregate_.count[kind];
  aggregate_.total_micros[kind] += span.total_micros;
  for (int p = 0; p < kNumPublishPhases; ++p) {
    aggregate_.phase_micros_total[kind][p] += span.phase_micros[p];
    ++aggregate_.phase_histogram[kind][p]
                                [PowerOfTwoBucket(span.phase_micros[p],
                                                  kBuckets)];
  }
  recent_.push_back(span);
  if (recent_.size() > capacity_) recent_.pop_front();
}

std::vector<PublishSpan> SpanLog::Recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<PublishSpan>(recent_.begin(), recent_.end());
}

SpanLog::Aggregate SpanLog::Read() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aggregate_;
}

}  // namespace trel
