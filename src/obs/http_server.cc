#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace trel {

namespace {

// `text/plain; version=0.0.4` is the Prometheus exposition content type;
// it renders fine in a browser/curl for the human-oriented endpoints too.
constexpr char kContentType[] = "text/plain; version=0.0.4; charset=utf-8";

std::string BuildResponse(int code, const char* reason,
                          const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + kContentType +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                           MSG_NOSIGNAL
#else
                           0
#endif
    );
    if (n <= 0) return;  // Peer went away; diagnostics port, drop it.
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start(int port) {
  if (listen_fd_ >= 0) {
    return Status(StatusCode::kFailedPrecondition, "server already started");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(StatusCode::kInternal,
                  std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status(StatusCode::kInternal,
                        std::string("bind: ") + std::strerror(errno));
    close(fd);
    return status;
  }
  if (listen(fd, 16) != 0) {
    const Status status(StatusCode::kInternal,
                        std::string("listen: ") + std::strerror(errno));
    close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status status(StatusCode::kInternal,
                        std::string("getsockname: ") + std::strerror(errno));
    close(fd);
    return status;
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { ServeLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::ServeLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // Timeout (stop-flag check) or EINTR.
    const int client = accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // Bound the read: request line + headers; the handlers take no body.
    timeval tv{/*tv_sec=*/2, /*tv_usec=*/0};
    setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char buf[4096];
    std::string request;
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < sizeof(buf)) {
      const ssize_t n = recv(client, buf, sizeof(buf), 0);
      if (n <= 0) break;
      request.append(buf, static_cast<size_t>(n));
    }
    // Parse "GET <path> ..." from the request line; ignore query strings.
    std::string path;
    if (request.rfind("GET ", 0) == 0) {
      const size_t path_begin = 4;
      const size_t path_end = request.find_first_of(" ?\r\n", path_begin);
      if (path_end != std::string::npos) {
        path = request.substr(path_begin, path_end - path_begin);
      }
    }
    if (path.empty()) {
      SendAll(client, BuildResponse(400, "Bad Request", "bad request\n"));
    } else {
      const auto it = routes_.find(path);
      if (it == routes_.end()) {
        std::string body = "not found; endpoints:\n";
        for (const auto& [route, handler] : routes_) {
          body += "  " + route + "\n";
        }
        SendAll(client, BuildResponse(404, "Not Found", body));
      } else {
        SendAll(client, BuildResponse(200, "OK", it->second()));
      }
    }
    close(client);
  }
}

}  // namespace trel
