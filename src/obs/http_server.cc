#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <utility>

namespace trel {

namespace {

// `text/plain; version=0.0.4` is the Prometheus exposition content type;
// it renders fine in a browser/curl for the human-oriented endpoints too.
constexpr char kContentType[] = "text/plain; version=0.0.4; charset=utf-8";

std::string BuildResponse(int code, const char* reason,
                          const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + kContentType +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// A peer that disconnects mid-response must cost us an error counter,
// never the process: send() into a closed socket raises SIGPIPE by
// default, whose disposition is process death.  Three layers of defense,
// best one the platform offers: MSG_NOSIGNAL per send (Linux),
// SO_NOSIGPIPE per socket (BSD/macOS, see Start/accept), and a one-time
// process-wide SIG_IGN where neither exists.
#if !defined(MSG_NOSIGNAL) && !defined(SO_NOSIGPIPE)
void IgnoreSigpipeOnce() {
  static const bool ignored = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)ignored;
}
#endif

void SuppressSigpipe(int fd) {
#if defined(SO_NOSIGPIPE)
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
#if !defined(MSG_NOSIGNAL) && !defined(SO_NOSIGPIPE)
  IgnoreSigpipeOnce();
#endif
}

// Returns false if the response could not be fully written (peer gone or
// stalled past the send timeout).
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                           MSG_NOSIGNAL
#else
                           0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // Peer went away or send timeout; drop the rest.
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start(int port) {
  if (listen_fd_ >= 0) {
    return Status(StatusCode::kFailedPrecondition, "server already started");
  }
  if (options_.num_threads < 1 || options_.max_connections < 1) {
    return Status(StatusCode::kInvalidArgument,
                  "num_threads and max_connections must be >= 1");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(StatusCode::kInternal,
                  std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status(StatusCode::kInternal,
                        std::string("bind: ") + std::strerror(errno));
    close(fd);
    return status;
  }
  if (listen(fd, 64) != 0) {
    const Status status(StatusCode::kInternal,
                        std::string("listen: ") + std::strerror(errno));
    close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status status(StatusCode::kInternal,
                        std::string("getsockname: ") + std::strerror(errno));
    close(fd);
    return status;
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  stopping_.store(false, std::memory_order_relaxed);
  workers_.reserve(options_.num_threads);
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  {
    // Workers are gone; close anything still queued without serving it.
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : pending_) close(fd);
    pending_.clear();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

HttpServer::Stats HttpServer::stats() const {
  Stats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.served_ok = served_ok_.load(std::memory_order_relaxed);
  stats.not_found = not_found_.load(std::memory_order_relaxed);
  stats.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  stats.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  stats.too_large = too_large_.load(std::memory_order_relaxed);
  stats.send_errors = send_errors_.load(std::memory_order_relaxed);
  return stats;
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // Timeout (stop-flag check) or EINTR.
    const int client = accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    SuppressSigpipe(client);
    // Shedding happens here, on the accept thread, so a full worker set
    // turns into fast 503s instead of a growing queue.  The 503 itself
    // is one small send into a fresh socket buffer — effectively
    // nonblocking — so a slow client cannot stall accepting either.
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      SendAll(client, BuildResponse(503, "Service Unavailable",
                                    "overloaded; connection shed\n"));
      close(client);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_.push_back(client);
    }
    work_ready_.notify_one();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || !pending_.empty();
      });
      if (pending_.empty()) return;  // stopping_
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
    close(fd);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void HttpServer::ServeConnection(int fd) {
  // Writes are bounded per send; a consumer that keeps draining slowly
  // still gets its response, one that stalls entirely forfeits it.
  timeval send_tv{};
  send_tv.tv_sec = options_.write_timeout_ms / 1000;
  send_tv.tv_usec = (options_.write_timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_tv, sizeof(send_tv));

  // Read the request under one TOTAL deadline: poll with the remaining
  // budget before every recv, so trickled bytes never reset the clock
  // (the slow-loris hole the single-threaded listener had).
  const int64_t deadline_ms = NowMillis() + options_.request_deadline_ms;
  std::string request;
  bool timed_out = false;
  bool oversized = false;
  char buf[4096];
  while (request.find("\r\n\r\n") == std::string::npos) {
    if (static_cast<int>(request.size()) > options_.max_request_bytes) {
      oversized = true;
      break;
    }
    const int64_t remaining = deadline_ms - NowMillis();
    if (remaining <= 0) {
      timed_out = true;
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = poll(&pfd, 1, static_cast<int>(remaining));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) {
      timed_out = true;
      break;
    }
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // Peer closed (or error) before the blank line.
    request.append(buf, static_cast<size_t>(n));
  }

  std::string response;
  if (timed_out) {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    response = BuildResponse(408, "Request Timeout",
                             "request not completed in time\n");
  } else if (oversized) {
    too_large_.fetch_add(1, std::memory_order_relaxed);
    response = BuildResponse(431, "Request Header Fields Too Large",
                             "request exceeds size cap\n");
  } else {
    // Parse "GET <path> ..." from the request line; ignore query strings.
    std::string path;
    if (request.rfind("GET ", 0) == 0) {
      const size_t path_begin = 4;
      const size_t path_end = request.find_first_of(" ?\r\n", path_begin);
      if (path_end != std::string::npos) {
        path = request.substr(path_begin, path_end - path_begin);
      }
    }
    if (path.empty()) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      response = BuildResponse(400, "Bad Request", "bad request\n");
    } else {
      const auto it = routes_.find(path);
      if (it == routes_.end()) {
        not_found_.fetch_add(1, std::memory_order_relaxed);
        std::string body = "not found; endpoints:\n";
        for (const auto& [route, handler] : routes_) {
          body += "  " + route + "\n";
        }
        response = BuildResponse(404, "Not Found", body);
      } else {
        response = BuildResponse(200, "OK", it->second());
        if (SendAll(fd, response)) {
          served_ok_.fetch_add(1, std::memory_order_relaxed);
        } else {
          send_errors_.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
    }
  }
  if (!SendAll(fd, response)) {
    send_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace trel
