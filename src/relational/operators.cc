#include "relational/operators.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/check.h"

namespace trel {

Relation Select(const Relation& input,
                const std::function<bool(const Tuple&)>& predicate) {
  Relation output(input.schema());
  for (const Tuple& tuple : input.tuples()) {
    if (predicate(tuple)) {
      TREL_CHECK(output.Append(tuple).ok());
    }
  }
  return output;
}

StatusOr<Relation> SelectEq(const Relation& input, const std::string& column,
                            const Value& value) {
  TREL_ASSIGN_OR_RETURN(int index, input.ColumnIndex(column));
  return Select(input, [index, &value](const Tuple& tuple) {
    return tuple[index] == value;
  });
}

StatusOr<Relation> Project(const Relation& input,
                           const std::vector<std::string>& columns) {
  std::vector<int> indices;
  std::vector<Column> schema;
  for (const std::string& name : columns) {
    TREL_ASSIGN_OR_RETURN(int index, input.ColumnIndex(name));
    indices.push_back(index);
    schema.push_back(input.schema()[index]);
  }
  Relation output(std::move(schema));
  for (const Tuple& tuple : input.tuples()) {
    Tuple projected;
    projected.reserve(indices.size());
    for (int index : indices) projected.push_back(tuple[index]);
    TREL_CHECK(output.Append(std::move(projected)).ok());
  }
  return output;
}

StatusOr<Relation> Join(const Relation& left, const std::string& left_column,
                        const Relation& right,
                        const std::string& right_column) {
  TREL_ASSIGN_OR_RETURN(int left_index, left.ColumnIndex(left_column));
  TREL_ASSIGN_OR_RETURN(int right_index, right.ColumnIndex(right_column));
  if (left.schema()[left_index].type != right.schema()[right_index].type) {
    return InvalidArgumentError("join columns have different types");
  }

  std::vector<Column> schema = left.schema();
  for (const Column& column : right.schema()) {
    Column renamed = column;
    // Disambiguate clashing names SQL-style.
    for (const Column& existing : left.schema()) {
      if (existing.name == renamed.name) {
        renamed.name = "right." + renamed.name;
        break;
      }
    }
    schema.push_back(renamed);
  }
  Relation output(std::move(schema));

  // Build a hash table over the right side.
  std::map<Value, std::vector<const Tuple*>> hash;
  for (const Tuple& tuple : right.tuples()) {
    hash[tuple[right_index]].push_back(&tuple);
  }
  for (const Tuple& tuple : left.tuples()) {
    auto it = hash.find(tuple[left_index]);
    if (it == hash.end()) continue;
    for (const Tuple* match : it->second) {
      Tuple joined = tuple;
      joined.insert(joined.end(), match->begin(), match->end());
      TREL_CHECK(output.Append(std::move(joined)).ok());
    }
  }
  return output;
}

StatusOr<Relation> Union(const Relation& a, const Relation& b) {
  if (!(a.schema() == b.schema())) {
    return InvalidArgumentError("union schema mismatch");
  }
  Relation output(a.schema());
  for (const Tuple& tuple : a.tuples()) {
    TREL_CHECK(output.Append(tuple).ok());
  }
  for (const Tuple& tuple : b.tuples()) {
    TREL_CHECK(output.Append(tuple).ok());
  }
  return output;
}

Relation Distinct(const Relation& input) {
  Relation output(input.schema());
  std::set<Tuple> seen;
  for (const Tuple& tuple : input.tuples()) {
    if (seen.insert(tuple).second) {
      TREL_CHECK(output.Append(tuple).ok());
    }
  }
  return output;
}

}  // namespace trel
