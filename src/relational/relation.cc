#include "relational/relation.h"

#include <sstream>

namespace trel {

std::string ValueToString(const Value& value) {
  if (std::holds_alternative<int64_t>(value)) {
    return std::to_string(std::get<int64_t>(value));
  }
  return std::get<std::string>(value);
}

namespace {

bool TypeMatches(const Value& value, ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return std::holds_alternative<int64_t>(value);
    case ColumnType::kString:
      return std::holds_alternative<std::string>(value);
  }
  return false;
}

}  // namespace

Status Relation::Append(Tuple tuple) {
  if (tuple.size() != schema_.size()) {
    return InvalidArgumentError(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match schema arity " + std::to_string(schema_.size()));
  }
  for (size_t c = 0; c < tuple.size(); ++c) {
    if (!TypeMatches(tuple[c], schema_[c].type)) {
      return InvalidArgumentError("type mismatch in column '" +
                                  schema_[c].name + "'");
    }
  }
  tuples_.push_back(std::move(tuple));
  return Status::Ok();
}

StatusOr<int> Relation::ColumnIndex(const std::string& name) const {
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (schema_[c].name == name) return static_cast<int>(c);
  }
  return NotFoundError("no column named '" + name + "'");
}

std::string Relation::ToString(int64_t max_rows) const {
  std::ostringstream os;
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (c > 0) os << " | ";
    os << schema_[c].name;
  }
  os << "\n";
  int64_t shown = 0;
  for (const Tuple& tuple : tuples_) {
    if (shown++ >= max_rows) {
      os << "... (" << (NumTuples() - max_rows) << " more)\n";
      break;
    }
    for (size_t c = 0; c < tuple.size(); ++c) {
      if (c > 0) os << " | ";
      os << ValueToString(tuple[c]);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace trel
