#ifndef TREL_RELATIONAL_RELATION_H_
#define TREL_RELATIONAL_RELATION_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/statusor.h"

namespace trel {

// A relational value: integers and strings cover the workloads in this
// library (node names, measures).
using Value = std::variant<int64_t, std::string>;

std::string ValueToString(const Value& value);

// Column type tags for schema checking.
enum class ColumnType { kInt64, kString };

struct Column {
  std::string name;
  ColumnType type;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

using Tuple = std::vector<Value>;

// In-memory relation: a schema plus a bag of tuples.  This is the
// substrate for the alpha-extended relational algebra examples (the
// paper, Section 6: "we are planning to incorporate these techniques in
// prototype systems based on [the] alpha-extended relational algebra").
//
// Deliberately a bag, not a set: duplicate elimination is explicit via
// Distinct() in operators.h, as in SQL.
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<Column> schema) : schema_(std::move(schema)) {}

  // Appends a tuple; fails if arity or any value's type disagrees with
  // the schema.
  Status Append(Tuple tuple);

  // Index of the named column, or NotFound.
  StatusOr<int> ColumnIndex(const std::string& name) const;

  const std::vector<Column>& schema() const { return schema_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  int64_t NumTuples() const { return static_cast<int64_t>(tuples_.size()); }
  int NumColumns() const { return static_cast<int>(schema_.size()); }

  // Human-readable table dump (for examples and debugging).
  std::string ToString(int64_t max_rows = 20) const;

 private:
  std::vector<Column> schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace trel

#endif  // TREL_RELATIONAL_RELATION_H_
