#include "relational/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"

namespace trel {
namespace {

// Splits one CSV line honoring double quotes.
StatusOr<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                                int line_number) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) {
    return InvalidArgumentError("unterminated quote at line " +
                                std::to_string(line_number));
  }
  fields.push_back(std::move(current));
  return fields;
}

bool ParsesAsInt64(const std::string& text, int64_t& value) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  value = parsed;
  return true;
}

bool NeedsQuoting(const std::string& text) {
  return text.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& text) {
  if (!NeedsQuoting(text)) return text;
  std::string quoted = "\"";
  for (char c : text) {
    if (c == '"') quoted += "\"\"";
    else quoted.push_back(c);
  }
  quoted += "\"";
  return quoted;
}

}  // namespace

StatusOr<Relation> ReadCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return InvalidArgumentError("empty CSV input (no header)");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  TREL_ASSIGN_OR_RETURN(std::vector<std::string> header,
                        SplitCsvLine(line, 1));

  // First pass: collect raw rows; infer types afterwards.
  std::vector<std::vector<std::string>> rows;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    TREL_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                          SplitCsvLine(line, line_number));
    if (fields.size() != header.size()) {
      return InvalidArgumentError(
          "row at line " + std::to_string(line_number) + " has " +
          std::to_string(fields.size()) + " fields, header has " +
          std::to_string(header.size()));
    }
    rows.push_back(std::move(fields));
  }

  std::vector<Column> schema;
  std::vector<bool> is_int(header.size(), !rows.empty());
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      int64_t ignored;
      if (is_int[c] && !ParsesAsInt64(row[c], ignored)) is_int[c] = false;
    }
  }
  for (size_t c = 0; c < header.size(); ++c) {
    schema.push_back(
        {header[c], is_int[c] ? ColumnType::kInt64 : ColumnType::kString});
  }

  Relation relation(std::move(schema));
  for (auto& row : rows) {
    Tuple tuple;
    tuple.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      if (is_int[c]) {
        int64_t value = 0;
        TREL_CHECK(ParsesAsInt64(row[c], value));
        tuple.emplace_back(value);
      } else {
        tuple.emplace_back(std::move(row[c]));
      }
    }
    TREL_RETURN_IF_ERROR(relation.Append(std::move(tuple)));
  }
  return relation;
}

StatusOr<Relation> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open " + path);
  return ReadCsv(in);
}

void WriteCsv(const Relation& relation, std::ostream& out) {
  for (int c = 0; c < relation.NumColumns(); ++c) {
    if (c > 0) out << ",";
    out << QuoteField(relation.schema()[c].name);
  }
  out << "\n";
  for (const Tuple& tuple : relation.tuples()) {
    for (size_t c = 0; c < tuple.size(); ++c) {
      if (c > 0) out << ",";
      out << QuoteField(ValueToString(tuple[c]));
    }
    out << "\n";
  }
}

Status WriteCsvFile(const Relation& relation, const std::string& path) {
  std::ofstream out(path);
  if (!out) return IoError("cannot open " + path + " for writing");
  WriteCsv(relation, out);
  return out.good() ? Status::Ok() : IoError("write failed on " + path);
}

}  // namespace trel
