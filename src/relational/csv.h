#ifndef TREL_RELATIONAL_CSV_H_
#define TREL_RELATIONAL_CSV_H_

#include <iosfwd>
#include <string>

#include "common/statusor.h"
#include "relational/relation.h"

namespace trel {

// Minimal CSV interchange for relations: comma-separated, first line is
// the header, a column is kInt64 iff every value in it parses as a
// 64-bit integer (header names never affect typing).  Quoting supports
// double-quoted fields with "" escapes; newlines inside quotes are not
// supported.
StatusOr<Relation> ReadCsv(std::istream& in);
StatusOr<Relation> ReadCsvFile(const std::string& path);

void WriteCsv(const Relation& relation, std::ostream& out);
Status WriteCsvFile(const Relation& relation, const std::string& path);

}  // namespace trel

#endif  // TREL_RELATIONAL_CSV_H_
