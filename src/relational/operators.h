#ifndef TREL_RELATIONAL_OPERATORS_H_
#define TREL_RELATIONAL_OPERATORS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "relational/relation.h"

namespace trel {

// Classical relational operators over in-memory relations.  Small and
// eager by design — enough to express the paper's deductive-database
// examples around the alpha operator, not a query engine.

// sigma: rows satisfying `predicate`.
Relation Select(const Relation& input,
                const std::function<bool(const Tuple&)>& predicate);

// sigma with an equality constant predicate on a named column.
StatusOr<Relation> SelectEq(const Relation& input, const std::string& column,
                            const Value& value);

// pi: the named columns, in the given order.  Fails on unknown names.
StatusOr<Relation> Project(const Relation& input,
                           const std::vector<std::string>& columns);

// Equi-join on input1.column1 == input2.column2.  Output schema is
// input1's columns followed by input2's (join column included once from
// each side; callers can Project it away).  Hash join on the right side.
StatusOr<Relation> Join(const Relation& left, const std::string& left_column,
                        const Relation& right,
                        const std::string& right_column);

// Bag union; schemas must match exactly.
StatusOr<Relation> Union(const Relation& a, const Relation& b);

// Duplicate elimination.
Relation Distinct(const Relation& input);

}  // namespace trel

#endif  // TREL_RELATIONAL_OPERATORS_H_
