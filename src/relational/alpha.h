#ifndef TREL_RELATIONAL_ALPHA_H_
#define TREL_RELATIONAL_ALPHA_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/closure_index.h"
#include "relational/relation.h"

namespace trel {

// The alpha operator: transitive closure of a binary relation, the
// recursion primitive of Agrawal's alpha-extended relational algebra that
// the paper names as its integration target ("answering a transitive
// closure query in a deductive database system reduces to a lookup
// instead of a graph traversal").
//
// The operator is *materialized*: construction maps the distinct values
// of the source/destination columns to graph nodes, collapses strongly
// connected components, and builds the compressed interval closure over
// the condensation.  Queries are then lookups, and the materialized view
// is a fraction of the size of the closure relation it stands for.
class AlphaOperator {
 public:
  // Builds the closure of base[source_column, destination_column].
  // Cycles in the base relation are permitted (they collapse into one
  // reachability class).
  static StatusOr<AlphaOperator> Build(const Relation& base,
                                       const std::string& source_column,
                                       const std::string& destination_column,
                                       const ClosureOptions& options = {});

  // Membership in the closure: is (from, to) derivable?  Strict — a value
  // does not reach itself unless it lies on a cycle.
  bool Reaches(const Value& from, const Value& to) const;

  // All values reachable from `from` (strict), as a one-column relation
  // named `column_name`.
  Relation SuccessorsOf(const Value& from,
                        const std::string& column_name = "value") const;

  // The entire closure as a two-column relation (source, destination).
  // This is what a system *without* compression would have to store; it
  // is provided for interoperability and for measuring the compression
  // ratio, not for routine use.
  Relation Materialize() const;

  // Number of (source, destination) pairs in the closure, without
  // materializing them.
  int64_t NumClosurePairs() const;

  // Storage of the compressed form in the paper's units (2 per interval),
  // for comparison against NumClosurePairs().
  int64_t StorageUnits() const {
    return 2 * index_.component_closure().TotalIntervals();
  }

  int64_t NumValues() const { return static_cast<int64_t>(values_.size()); }

 private:
  AlphaOperator(std::vector<Value> values, std::map<Value, NodeId> ids,
                TransitiveClosureIndex index, std::vector<Column> schema)
      : values_(std::move(values)),
        ids_(std::move(ids)),
        index_(std::move(index)),
        value_schema_(std::move(schema)) {}

  // kNoNode when the value never appeared in the base relation.
  NodeId IdOf(const Value& value) const;
  // True iff the value reaches itself (non-trivial SCC or self-loop).
  bool OnCycle(NodeId node) const;

  std::vector<Value> values_;       // NodeId -> Value.
  std::map<Value, NodeId> ids_;     // Value -> NodeId.
  TransitiveClosureIndex index_;
  std::vector<Column> value_schema_;  // Single-column schema template.
  std::set<NodeId> self_loops_;
};

}  // namespace trel

#endif  // TREL_RELATIONAL_ALPHA_H_
