#include "relational/alpha.h"

#include <set>
#include <utility>

#include "common/check.h"
#include "graph/digraph.h"

namespace trel {

StatusOr<AlphaOperator> AlphaOperator::Build(
    const Relation& base, const std::string& source_column,
    const std::string& destination_column, const ClosureOptions& options) {
  TREL_ASSIGN_OR_RETURN(int src, base.ColumnIndex(source_column));
  TREL_ASSIGN_OR_RETURN(int dst, base.ColumnIndex(destination_column));
  if (base.schema()[src].type != base.schema()[dst].type) {
    return InvalidArgumentError(
        "source and destination columns must share a type");
  }

  // Dictionary-encode the distinct values.
  std::vector<Value> values;
  std::map<Value, NodeId> ids;
  auto intern = [&](const Value& value) {
    auto [it, inserted] =
        ids.emplace(value, static_cast<NodeId>(values.size()));
    if (inserted) values.push_back(value);
    return it->second;
  };

  // Self-loop tuples (a, a) cannot live in the simple digraph; remember
  // them separately — they make a value reach itself.
  std::set<NodeId> self_loops;
  std::vector<std::pair<NodeId, NodeId>> arcs;
  for (const Tuple& tuple : base.tuples()) {
    const NodeId a = intern(tuple[src]);
    const NodeId b = intern(tuple[dst]);
    if (a == b) {
      self_loops.insert(a);
    } else {
      arcs.emplace_back(a, b);
    }
  }

  Digraph graph(static_cast<NodeId>(values.size()));
  for (const auto& [a, b] : arcs) {
    Status status = graph.AddArc(a, b);
    if (!status.ok() && status.code() != StatusCode::kAlreadyExists) {
      return status;
    }
  }

  TREL_ASSIGN_OR_RETURN(TransitiveClosureIndex index,
                        TransitiveClosureIndex::Build(graph, options));

  std::vector<Column> schema = {
      {"value", base.schema()[src].type}};
  AlphaOperator alpha(std::move(values), std::move(ids), std::move(index),
                      std::move(schema));
  alpha.self_loops_ = std::move(self_loops);
  return alpha;
}

NodeId AlphaOperator::IdOf(const Value& value) const {
  auto it = ids_.find(value);
  return it == ids_.end() ? kNoNode : it->second;
}

bool AlphaOperator::OnCycle(NodeId node) const {
  const NodeId comp = index_.condensation().component_of[node];
  return index_.condensation().members[comp].size() > 1 ||
         self_loops_.count(node) > 0;
}

bool AlphaOperator::Reaches(const Value& from, const Value& to) const {
  const NodeId a = IdOf(from);
  const NodeId b = IdOf(to);
  if (a == kNoNode || b == kNoNode) return false;
  if (a == b) return OnCycle(a);
  return index_.Reaches(a, b);
}

Relation AlphaOperator::SuccessorsOf(const Value& from,
                                     const std::string& column_name) const {
  Relation output({{column_name, value_schema_[0].type}});
  const NodeId a = IdOf(from);
  if (a == kNoNode) return output;
  if (OnCycle(a)) {
    TREL_CHECK(output.Append({values_[a]}).ok());
  }
  for (NodeId v : index_.Successors(a)) {
    TREL_CHECK(output.Append({values_[v]}).ok());
  }
  return output;
}

Relation AlphaOperator::Materialize() const {
  Relation output({{"source", value_schema_[0].type},
                   {"destination", value_schema_[0].type}});
  for (NodeId u = 0; u < static_cast<NodeId>(values_.size()); ++u) {
    if (OnCycle(u)) {
      TREL_CHECK(output.Append({values_[u], values_[u]}).ok());
    }
    for (NodeId v : index_.Successors(u)) {
      TREL_CHECK(output.Append({values_[u], values_[v]}).ok());
    }
  }
  return output;
}

int64_t AlphaOperator::NumClosurePairs() const {
  int64_t pairs = 0;
  for (NodeId u = 0; u < static_cast<NodeId>(values_.size()); ++u) {
    pairs += static_cast<int64_t>(index_.Successors(u).size()) +
             (OnCycle(u) ? 1 : 0);
  }
  return pairs;
}

}  // namespace trel
