#include "core/predecessor_index.h"

#include <utility>

#include "common/check.h"

namespace trel {

Digraph ReverseGraph(const Digraph& graph) {
  Digraph reversed(graph.NumNodes());
  for (const auto& [from, to] : graph.Arcs()) {
    TREL_CHECK(reversed.AddArc(to, from).ok());
  }
  return reversed;
}

StatusOr<BidirectionalClosure> BidirectionalClosure::Build(
    const Digraph& graph, const ClosureOptions& options) {
  TREL_ASSIGN_OR_RETURN(CompressedClosure forward,
                        CompressedClosure::Build(graph, options));
  TREL_ASSIGN_OR_RETURN(CompressedClosure backward,
                        CompressedClosure::Build(ReverseGraph(graph),
                                                 options));
  return BidirectionalClosure(std::move(forward), std::move(backward));
}

}  // namespace trel
