#ifndef TREL_CORE_ARENA_KERNELS_H_
#define TREL_CORE_ARENA_KERNELS_H_

#include <cstdint>
#include <utility>

#include "core/label_arena.h"
#include "core/simd_dispatch.h"

namespace trel {

// How a single reachability probe was decided — the per-query analogue
// of the BatchKernelStats tallies.  Values are stable across SimD levels
// (the control flow that assigns them is shared by every kernel TU) and
// fit the 3-bit field of an obs trace record.
enum class ProbeTag : uint8_t {
  kSlot = 0,          // decided by slots alone (invalid, self, first interval)
  kFilterReject = 1,  // killed by the source's one-bit coverage-filter test
  kGroupReject = 2,   // killed by a whole-group 512-bit filter test (batch)
  kExtrasSearch = 3,  // searched an extras run (vector scan or descent)
  kOverlay = 4,       // resolved against a WithDelta overlay entry
  kHopIntersect = 5,  // decided by a 2-hop Lin/Lout merge-intersection
  kFallback = 6,      // family fallback: pruned DFS or residual-index probe
  kBoundaryBitset = 7,  // decided by a cross-shard hub-bitset row intersection
};
constexpr int kNumProbeTags = 8;

// "slot" / "filter" / "group" / "extras" / "overlay" / "hop" / "fallback" /
// "boundary".
const char* ProbeTagName(ProbeTag tag);

// Per-probe outcome detail filled by the traced query paths (sampled
// queries only — the untraced hot paths never touch this).
struct ProbeTrace {
  ProbeTag tag = ProbeTag::kSlot;
  // Intervals the probe actually compared against: the scan length for
  // linear scans, the number of tree levels for Eytzinger descents, 1
  // for a summary reject, 0 when the probe never reached the extras.
  uint32_t extras_probes = 0;
};

// Tallies from one batch-kernel invocation.  Accumulated in plain locals
// inside the kernel (never atomically on the hot path) and published to
// ServiceMetrics by the query service afterwards.
struct BatchKernelStats {
  // Queries decided by slots alone: invalid ids, u == v, the target
  // number hitting (or falling below) the source's inline first interval,
  // or a source with no extras.
  int64_t fast_path = 0;
  // Queries killed by the source's coverage filter (single-bit test).
  int64_t filter_rejects = 0;
  // Queries killed wholesale by a one-shot 512-bit group filter test
  // (runs of equal sources; see the batch engine).
  int64_t group_rejects = 0;
  // Queries that had to search an extras run (vector scan or descent).
  int64_t extras_searches = 0;

  BatchKernelStats& operator+=(const BatchKernelStats& o) {
    fast_path += o.fast_path;
    filter_rejects += o.filter_rejects;
    group_rejects += o.group_rejects;
    extras_searches += o.extras_searches;
    return *this;
  }
};

// Function table for the arena's vector-specializable query kernels.
// One table per SimdLevel, each defined in an isolated TU compiled with
// exactly that level's flags (arena_kernels_{scalar,sse,avx2}.cc); the
// process picks a table once at startup via simd_dispatch.h.  Every
// level computes bit-identical answers — levels differ only in how the
// compare work is issued.
struct ArenaKernels {
  SimdLevel level;
  const char* name;

  // True iff some interval of the extras run `base[0..count]` contains
  // `x` (summary interval at base[0], Eytzinger tree at 1..count — see
  // label_arena.h).  Called only after the coverage filter passed.
  // Short runs are scanned with wide compares; long runs descend the
  // Eytzinger tree.
  bool (*extras_contains)(const Interval* base, uint32_t count, Label x);

  // 512-bit any-intersection test over one node's coverage-filter line:
  // (filter[i] & mask[i]) != 0 for some i in [0, kFilterWords).
  bool (*filter_intersects)(const uint64_t* filter, const uint64_t* mask);

  // Software-pipelined batch point-lookup engine over an overlay-free
  // arena.  Snapshot semantics: out-of-range ids answer 0.  `stats` may
  // be null.
  void (*batch_reaches)(const LabelArena& arena,
                        const std::pair<NodeId, NodeId>* pairs, int64_t n,
                        uint8_t* out, BatchKernelStats* stats);

  // Tagged twin of batch_reaches for sampled/traced batches: identical
  // answers and stats, plus `tags[i]` = the ProbeTag that decided query
  // i.  A separate instantiation (not a branch inside the hot engine) so
  // the untraced path's codegen is untouched when tracing is off.
  void (*batch_reaches_tagged)(const LabelArena& arena,
                               const std::pair<NodeId, NodeId>* pairs,
                               int64_t n, uint8_t* out,
                               BatchKernelStats* stats, uint8_t* tags);
};

// The hot single-query membership probe: same fast path as
// LabelArena::Contains (inline first-interval test, then the one-bit
// coverage-filter reject), with the extras search routed through the
// dispatched kernel so short runs get the vector scan.  The indirect
// call only happens on the minority of probes that survive the filter.
inline bool ArenaContains(const LabelArena& arena, const ArenaKernels& kernels,
                          NodeId u, Label x) {
  const LabelArena::NodeSlot& s = arena.slots[u];
  if (x < s.first.lo) return false;  // Antichain: every lo is >= first.lo.
  if (x <= s.first.hi) return true;
  if (s.extra_count == 0) return false;
  const Interval* base = arena.extras.data() + s.extra_begin;
  __builtin_prefetch(base);
  const uint64_t b = static_cast<uint64_t>(x) >> arena.filter_shift;
  if (b >= static_cast<uint64_t>(LabelArena::kFilterWords) * 64) return false;
  if (((arena.filters[u * LabelArena::kFilterWords + (b >> 6)] >> (b & 63)) &
       1) == 0) {
    return false;
  }
  // Summary reject inline (the kernel re-checks it — one compare on an
  // already-hot line) so filter false positives above the extras' range
  // skip the indirect call entirely, matching the pre-dispatch cost.
  if (x > base[0].hi || x < base[0].lo) return false;
  if (s.extra_count <= 4) {
    // A cold single probe into a short run is latency-bound, not
    // throughput-bound: the branch-free scalar scan finishes before a
    // vector kernel's set1/broadcast setup would, and skips the
    // indirect call.  Batch probes still take the vector path.
    bool hit = false;
    for (uint32_t i = 1; i <= s.extra_count; ++i) {
      hit |= (base[i].lo <= x) & (x <= base[i].hi);
    }
    return hit;
  }
  return kernels.extras_contains(base, s.extra_count, x);
}

// Traced twin of ArenaContains for sampled queries: same answer (it
// mirrors the scalar control flow, and every kernel level is
// bit-identical to scalar by construction), plus the tag and probe count
// for the trace record.  Never called on the untraced hot path, so it
// favors clarity over pipelining.
inline bool ArenaContainsTraced(const LabelArena& arena, NodeId u, Label x,
                                ProbeTrace* trace) {
  const LabelArena::NodeSlot& s = arena.slots[u];
  trace->tag = ProbeTag::kSlot;
  trace->extras_probes = 0;
  if (x < s.first.lo) return false;
  if (x <= s.first.hi) return true;
  if (s.extra_count == 0) return false;
  const uint64_t b = static_cast<uint64_t>(x) >> arena.filter_shift;
  if (b >= static_cast<uint64_t>(LabelArena::kFilterWords) * 64 ||
      ((arena.filters[u * LabelArena::kFilterWords + (b >> 6)] >> (b & 63)) &
       1) == 0) {
    trace->tag = ProbeTag::kFilterReject;
    return false;
  }
  trace->tag = ProbeTag::kExtrasSearch;
  const Interval* base = arena.extras.data() + s.extra_begin;
  if (x > base[0].hi || x < base[0].lo) {
    trace->extras_probes = 1;  // Summary reject: one compare.
    return false;
  }
  const uint32_t k = s.extra_count;
  if (k <= 4) {
    trace->extras_probes = k;
    bool hit = false;
    for (uint32_t i = 1; i <= k; ++i) {
      hit |= (base[i].lo <= x) & (x <= base[i].hi);
    }
    return hit;
  }
  // Eytzinger descent, counting levels touched.
  uint32_t i = 1, cand = 0, probes = 0;
  while (i <= k) {
    ++probes;
    if (base[i].hi >= x) {
      cand = i;
      i = 2 * i;
    } else {
      i = 2 * i + 1;
    }
  }
  trace->extras_probes = probes;
  return cand != 0 && base[cand].lo <= x;
}

}  // namespace trel

#endif  // TREL_CORE_ARENA_KERNELS_H_
