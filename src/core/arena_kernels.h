#ifndef TREL_CORE_ARENA_KERNELS_H_
#define TREL_CORE_ARENA_KERNELS_H_

#include <cstdint>
#include <utility>

#include "core/label_arena.h"
#include "core/simd_dispatch.h"

namespace trel {

// Tallies from one batch-kernel invocation.  Accumulated in plain locals
// inside the kernel (never atomically on the hot path) and published to
// ServiceMetrics by the query service afterwards.
struct BatchKernelStats {
  // Queries decided by slots alone: invalid ids, u == v, the target
  // number hitting (or falling below) the source's inline first interval,
  // or a source with no extras.
  int64_t fast_path = 0;
  // Queries killed by the source's coverage filter (single-bit test).
  int64_t filter_rejects = 0;
  // Queries killed wholesale by a one-shot 512-bit group filter test
  // (runs of equal sources; see the batch engine).
  int64_t group_rejects = 0;
  // Queries that had to search an extras run (vector scan or descent).
  int64_t extras_searches = 0;

  BatchKernelStats& operator+=(const BatchKernelStats& o) {
    fast_path += o.fast_path;
    filter_rejects += o.filter_rejects;
    group_rejects += o.group_rejects;
    extras_searches += o.extras_searches;
    return *this;
  }
};

// Function table for the arena's vector-specializable query kernels.
// One table per SimdLevel, each defined in an isolated TU compiled with
// exactly that level's flags (arena_kernels_{scalar,sse,avx2}.cc); the
// process picks a table once at startup via simd_dispatch.h.  Every
// level computes bit-identical answers — levels differ only in how the
// compare work is issued.
struct ArenaKernels {
  SimdLevel level;
  const char* name;

  // True iff some interval of the extras run `base[0..count]` contains
  // `x` (summary interval at base[0], Eytzinger tree at 1..count — see
  // label_arena.h).  Called only after the coverage filter passed.
  // Short runs are scanned with wide compares; long runs descend the
  // Eytzinger tree.
  bool (*extras_contains)(const Interval* base, uint32_t count, Label x);

  // 512-bit any-intersection test over one node's coverage-filter line:
  // (filter[i] & mask[i]) != 0 for some i in [0, kFilterWords).
  bool (*filter_intersects)(const uint64_t* filter, const uint64_t* mask);

  // Software-pipelined batch point-lookup engine over an overlay-free
  // arena.  Snapshot semantics: out-of-range ids answer 0.  `stats` may
  // be null.
  void (*batch_reaches)(const LabelArena& arena,
                        const std::pair<NodeId, NodeId>* pairs, int64_t n,
                        uint8_t* out, BatchKernelStats* stats);
};

// The hot single-query membership probe: same fast path as
// LabelArena::Contains (inline first-interval test, then the one-bit
// coverage-filter reject), with the extras search routed through the
// dispatched kernel so short runs get the vector scan.  The indirect
// call only happens on the minority of probes that survive the filter.
inline bool ArenaContains(const LabelArena& arena, const ArenaKernels& kernels,
                          NodeId u, Label x) {
  const LabelArena::NodeSlot& s = arena.slots[u];
  if (x < s.first.lo) return false;  // Antichain: every lo is >= first.lo.
  if (x <= s.first.hi) return true;
  if (s.extra_count == 0) return false;
  const Interval* base = arena.extras.data() + s.extra_begin;
  __builtin_prefetch(base);
  const uint64_t b = static_cast<uint64_t>(x) >> arena.filter_shift;
  if (b >= static_cast<uint64_t>(LabelArena::kFilterWords) * 64) return false;
  if (((arena.filters[u * LabelArena::kFilterWords + (b >> 6)] >> (b & 63)) &
       1) == 0) {
    return false;
  }
  // Summary reject inline (the kernel re-checks it — one compare on an
  // already-hot line) so filter false positives above the extras' range
  // skip the indirect call entirely, matching the pre-dispatch cost.
  if (x > base[0].hi || x < base[0].lo) return false;
  if (s.extra_count <= 4) {
    // A cold single probe into a short run is latency-bound, not
    // throughput-bound: the branch-free scalar scan finishes before a
    // vector kernel's set1/broadcast setup would, and skips the
    // indirect call.  Batch probes still take the vector path.
    bool hit = false;
    for (uint32_t i = 1; i <= s.extra_count; ++i) {
      hit |= (base[i].lo <= x) & (x <= base[i].hi);
    }
    return hit;
  }
  return kernels.extras_contains(base, s.extra_count, x);
}

}  // namespace trel

#endif  // TREL_CORE_ARENA_KERNELS_H_
