#include "core/chain_cover.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <queue>
#include <vector>

#include "common/check.h"
#include "graph/reachability.h"
#include "graph/topology.h"

namespace trel {
namespace {

// Hopcroft–Karp maximum bipartite matching.  Left and right vertex sets
// are both the node set; adj[u] lists right vertices matchable to u.
// Returns match_right[v] = left partner of v (or -1).
std::vector<int> HopcroftKarp(int n, const std::vector<std::vector<int>>& adj) {
  constexpr int kInf = 1 << 30;
  std::vector<int> match_left(n, -1), match_right(n, -1), dist(n);

  auto bfs = [&]() {
    std::queue<int> queue;
    bool found_augmenting = false;
    for (int u = 0; u < n; ++u) {
      if (match_left[u] == -1) {
        dist[u] = 0;
        queue.push(u);
      } else {
        dist[u] = kInf;
      }
    }
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      for (int v : adj[u]) {
        const int w = match_right[v];
        if (w == -1) {
          found_augmenting = true;
        } else if (dist[w] == kInf) {
          dist[w] = dist[u] + 1;
          queue.push(w);
        }
      }
    }
    return found_augmenting;
  };

  std::function<bool(int)> dfs = [&](int u) {
    for (int v : adj[u]) {
      const int w = match_right[v];
      if (w == -1 || (dist[w] == dist[u] + 1 && dfs(w))) {
        match_left[u] = v;
        match_right[v] = u;
        return true;
      }
    }
    dist[u] = kInf;
    return false;
  };

  while (bfs()) {
    for (int u = 0; u < n; ++u) {
      if (match_left[u] == -1) dfs(u);
    }
  }
  return match_right;
}

}  // namespace

ChainAssignment GreedyPathCover(const Digraph& graph,
                                const std::vector<NodeId>& topo) {
  const NodeId n = graph.NumNodes();
  ChainAssignment out;
  out.chain_of.assign(n, ChainAssignment::kNone);
  out.seq_of.assign(n, ChainAssignment::kNone);

  // First fit over in-neighbors: is_tail[u] marks nodes that currently
  // end a chain; consuming one extends its chain by the arc (u, v).
  std::vector<uint8_t> is_tail(n, 0);
  std::vector<int> chain_len;
  std::vector<NodeId> head_of;
  for (NodeId v : topo) {
    int chosen = ChainAssignment::kNone;
    for (NodeId u : graph.InNeighbors(v)) {
      if (is_tail[u]) {
        chosen = out.chain_of[u];
        is_tail[u] = 0;
        break;
      }
    }
    if (chosen == ChainAssignment::kNone) {
      chosen = out.num_chains++;
      chain_len.push_back(0);
      head_of.push_back(v);
    }
    out.chain_of[v] = chosen;
    out.seq_of[v] = chain_len[chosen]++;
    is_tail[v] = 1;
  }

  // Renumber chains by ascending head id so the induced TreeCover's roots
  // come out in the order tree_cover.h documents.
  std::vector<int> order(out.num_chains);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&head_of](int a, int b) { return head_of[a] < head_of[b]; });
  std::vector<int> remap(out.num_chains);
  for (int i = 0; i < out.num_chains; ++i) remap[order[i]] = i;
  for (NodeId v = 0; v < n; ++v) out.chain_of[v] = remap[out.chain_of[v]];
  return out;
}

StatusOr<ChainCover> ChainCover::Build(const Digraph& graph, Method method) {
  TREL_ASSIGN_OR_RETURN(std::vector<NodeId> topo, TopologicalOrder(graph));
  const NodeId n = graph.NumNodes();
  ReachabilityMatrix matrix(graph);

  ChainCover cover;
  ChainAssignment& assignment = cover.assignment_;
  assignment.chain_of.assign(n, kNone);
  assignment.seq_of.assign(n, kNone);

  if (method == Method::kGreedy) {
    // First-fit decreasing over the topological order; chain_tails[c] is
    // the current last node of chain c.
    std::vector<NodeId> chain_tails;
    std::vector<int> chain_lengths;
    for (NodeId v : topo) {
      int chosen = kNone;
      for (int c = 0; c < static_cast<int>(chain_tails.size()); ++c) {
        if (matrix.Reaches(chain_tails[c], v)) {
          chosen = c;
          break;
        }
      }
      if (chosen == kNone) {
        chosen = static_cast<int>(chain_tails.size());
        chain_tails.push_back(v);
        chain_lengths.push_back(0);
      } else {
        chain_tails[chosen] = v;
      }
      assignment.chain_of[v] = chosen;
      assignment.seq_of[v] = chain_lengths[chosen]++;
    }
    assignment.num_chains = static_cast<int>(chain_tails.size());
  } else {
    // Dilworth via maximum matching on the strict closure relation.
    std::vector<std::vector<int>> adj(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u != v && matrix.Reaches(u, v)) adj[u].push_back(v);
      }
    }
    std::vector<int> match_right = HopcroftKarp(n, adj);
    // Invert: next_in_chain[u] = matched successor.
    std::vector<int> next(n, kNone);
    std::vector<bool> has_pred(n, false);
    for (int v = 0; v < n; ++v) {
      if (match_right[v] != -1) {
        next[match_right[v]] = v;
        has_pred[v] = true;
      }
    }
    int chains = 0;
    for (int v = 0; v < n; ++v) {
      if (has_pred[v]) continue;
      int seq = 0;
      for (int w = v; w != kNone; w = next[w]) {
        assignment.chain_of[w] = chains;
        assignment.seq_of[w] = seq++;
      }
      ++chains;
    }
    assignment.num_chains = chains;
  }

  cover.ComputeReachTables(graph);
  return cover;
}

void ChainCover::ComputeReachTables(const Digraph& graph) {
  const NodeId n = graph.NumNodes();
  first_reach_.assign(n, std::vector<int>(assignment_.num_chains, kNone));

  auto topo = TopologicalOrder(graph);
  TREL_CHECK(topo.ok());
  const std::vector<NodeId>& order = topo.value();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    auto& row = first_reach_[v];
    row[assignment_.chain_of[v]] = assignment_.seq_of[v];
    for (NodeId w : graph.OutNeighbors(v)) {
      const auto& succ_row = first_reach_[w];
      for (int c = 0; c < assignment_.num_chains; ++c) {
        if (succ_row[c] == kNone) continue;
        if (row[c] == kNone || succ_row[c] < row[c]) row[c] = succ_row[c];
      }
    }
  }

  storage_entries_ = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (int c = 0; c < assignment_.num_chains; ++c) {
      if (first_reach_[v][c] != kNone) ++storage_entries_;
    }
  }
}

bool ChainCover::Reaches(NodeId u, NodeId v) const {
  TREL_CHECK_GE(u, 0);
  TREL_CHECK_LT(static_cast<size_t>(u), assignment_.chain_of.size());
  TREL_CHECK_GE(v, 0);
  TREL_CHECK_LT(static_cast<size_t>(v), assignment_.chain_of.size());
  if (u == v) return true;
  const int entry = first_reach_[u][assignment_.chain_of[v]];
  return entry != kNone && entry <= assignment_.seq_of[v];
}

}  // namespace trel
