// AVX2 arena kernels.  This TU (and only this TU) is compiled with
// -mavx2 on x86 (see CMakeLists.txt); when the target lacks the ISA
// entirely — non-x86, or a toolchain that refuses the flag — the table
// degrades to the scalar one and the dispatcher reports the level it
// actually got.

#include "core/simd_dispatch.h"

#if defined(__AVX2__)

#define TREL_KERNEL_VARIANT 2
#include "core/arena_kernels_impl.h"

namespace trel {

const ArenaKernels& Avx2ArenaKernels() {
  static const ArenaKernels kTable{SimdLevel::kAvx2, "avx2",
                                   &KernelExtrasContains,
                                   &KernelFilterIntersects,
                                   &KernelBatchReaches,
                                   &KernelBatchReachesTagged};
  return kTable;
}

}  // namespace trel

#else  // !defined(__AVX2__)

namespace trel {

const ArenaKernels& Avx2ArenaKernels() { return ScalarArenaKernels(); }

}  // namespace trel

#endif
