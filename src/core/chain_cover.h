#ifndef TREL_CORE_CHAIN_COVER_H_
#define TREL_CORE_CHAIN_COVER_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "graph/digraph.h"

namespace trel {

// A partition of the node set into chains — sequences totally ordered by
// reachability.  chain_of[v] identifies v's chain, seq_of[v] its position
// within it (0 = head, the first member in topological order).  Shared by
// the Jagadish baseline below and the chain-fast publish path
// (chain_propagator.h), which differ in how they thread the chains.
struct ChainAssignment {
  static constexpr int kNone = -1;

  int num_chains = 0;
  std::vector<int> chain_of;
  std::vector<int> seq_of;

  NodeId NumNodes() const { return static_cast<NodeId>(chain_of.size()); }
};

// Greedy arc-threaded path cover in O(n + m): walk `topo` (a topological
// order of `graph`) and append each node to the chain of its first
// in-neighbor that is still a chain tail, else start a new chain.  Every
// chain is a directed *path in the graph itself* — each consecutive pair
// is an arc — which makes the cover a valid TreeCover (parent = chain
// predecessor) and is the property the chain-fast labeling relies on.
// ChainCover::kGreedy, by contrast, threads chains through the closure
// relation (any reachable tail extends), which yields fewer chains but
// costs a full reachability matrix.  Chains are renumbered so ascending
// chain id = ascending head node id, matching TreeCover's roots order.
ChainAssignment GreedyPathCover(const Digraph& graph,
                                const std::vector<NodeId>& topo);

// Chain-decomposition closure compression (Jagadish, "A Compressed
// Transitive Closure Technique for Efficient Fixed-Point Query
// Processing", 2nd Int'l Conf. Expert Database Systems, 1988) — the
// related-work comparator of the paper's Theorem 2.
//
// The node set is partitioned into chains; each node stores, per chain,
// the earliest (lowest sequence number) member it can reach; all later
// members of that chain are then implied.  Theorem 2: the tree-cover
// interval compression never needs more storage than the best chain
// compression (without chain reduction).
class ChainCover {
 public:
  enum class Method {
    // First-fit over a topological order: append each node to the first
    // chain whose tail reaches it.
    kGreedy,
    // Minimum chain cover (Dilworth): n - max bipartite matching on the
    // closure relation, via Hopcroft–Karp.  Quadratic memory in n; meant
    // for graphs up to a few thousand nodes.
    kMinimum,
  };

  // Fails with FailedPrecondition if `graph` is cyclic.
  static StatusOr<ChainCover> Build(const Digraph& graph,
                                    Method method = Method::kGreedy);

  bool Reaches(NodeId u, NodeId v) const;

  int NumChains() const { return assignment_.num_chains; }

  // Number of stored (node, chain) -> first-reachable entries; the
  // storage measure compared against the interval count in Theorem 2.
  int64_t StorageUnits() const { return storage_entries_; }

  int ChainOf(NodeId v) const { return assignment_.chain_of[v]; }
  int SeqOf(NodeId v) const { return assignment_.seq_of[v]; }

  const ChainAssignment& assignment() const { return assignment_; }

 private:
  ChainCover() = default;

  // Shared tail: given chain assignments, computes first-reachable tables.
  void ComputeReachTables(const Digraph& graph);

  ChainAssignment assignment_;
  // first_reach_[v][c] = lowest sequence number in chain c reachable from
  // v, or kNone.
  std::vector<std::vector<int>> first_reach_;
  int64_t storage_entries_ = 0;

  static constexpr int kNone = ChainAssignment::kNone;
};

}  // namespace trel

#endif  // TREL_CORE_CHAIN_COVER_H_
