#include "core/path_finder.h"

#include "common/check.h"

namespace trel {

std::vector<NodeId> FindPath(const Digraph& graph,
                             const CompressedClosure& closure, NodeId source,
                             NodeId target) {
  TREL_CHECK(graph.IsValidNode(source));
  TREL_CHECK(graph.IsValidNode(target));
  if (!closure.Reaches(source, target)) return {};

  std::vector<NodeId> path = {source};
  NodeId current = source;
  while (current != target) {
    NodeId next = kNoNode;
    for (NodeId w : graph.OutNeighbors(current)) {
      if (closure.Reaches(w, target)) {
        next = w;
        break;
      }
    }
    // Reaches(current, target) && current != target guarantees some
    // out-neighbor still reaches the target in a DAG.
    TREL_CHECK(next != kNoNode) << "closure inconsistent with graph";
    path.push_back(next);
    current = next;
  }
  return path;
}

}  // namespace trel
