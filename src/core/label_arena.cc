#include "core/label_arena.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace trel {

namespace {

// Below this node count the arena builds serially even when a runner is
// available: fan-out costs (enqueue, wake, join) exceed the copy work.
constexpr int64_t kParallelBuildFloor = 1 << 14;

// Shard count for the parallel directory sort.  Fixed rather than derived
// from the runner's width (the runner interface deliberately hides it);
// the merge cascade below is log2(kSortShards) passes.
constexpr int64_t kSortShards = 8;

constexpr int64_t kFilterBuckets = LabelArena::kFilterWords * 64;

// Writes sorted[0..k) into out[1..k] in Eytzinger (BFS) order: the
// in-order traversal of the implicit tree rooted at 1 visits ascending.
void FillEytzinger(const Interval* sorted, uint32_t k, Interval* out,
                   uint32_t i, uint32_t& pos) {
  if (i > k) return;
  FillEytzinger(sorted, k, out, 2 * i, pos);
  out[i] = sorted[pos++];
  FillEytzinger(sorted, k, out, 2 * i + 1, pos);
}

}  // namespace

int64_t LabelArena::DirLowerBound(Label x) const {
  return std::lower_bound(dir_labels.begin(), dir_labels.end(), x) -
         dir_labels.begin();
}

int64_t LabelArena::DirUpperBound(Label x) const {
  return std::upper_bound(dir_labels.begin(), dir_labels.end(), x) -
         dir_labels.begin();
}

int64_t LabelArena::ByteSize() const {
  return static_cast<int64_t>(slots.size() * sizeof(NodeSlot) +
                              extras.size() * sizeof(Interval) +
                              filters.size() * sizeof(uint64_t) +
                              dir_labels.size() * sizeof(Label) +
                              dir_nodes.size() * sizeof(NodeId));
}

LabelArena BuildLabelArena(const NodeLabels& labels,
                           std::vector<std::pair<Label, NodeId>> sorted_directory,
                           const ParallelRunner* runner) {
  const int64_t n = static_cast<int64_t>(labels.postorder.size());
  TREL_CHECK_EQ(labels.postorder.size(), labels.intervals.size());
  LabelArena arena;
  if (n == 0) return arena;

  const bool parallel = runner != nullptr && n >= kParallelBuildFloor;
  const auto for_range =
      [&](int64_t count, const std::function<void(int64_t, int64_t)>& body) {
        if (parallel) {
          (*runner)(count, body);
        } else {
          body(0, count);
        }
      };

  // Filter bucket scale: the largest assigned postorder number must land
  // in the last bucket or below.  Labels are nonnegative (postorder
  // numbering starts at 1; gap numbering only stretches upward).
  Label max_label = 0;
  for (int64_t v = 0; v < n; ++v) {
    TREL_CHECK_GE(labels.postorder[v], 0)
        << "filter bucketing requires nonnegative postorder numbers";
    max_label = std::max(max_label, labels.postorder[v]);
  }
  while ((max_label >> arena.filter_shift) >= kFilterBuckets) {
    ++arena.filter_shift;
  }

  // Pass 1: per-node extras run sizes, then a serial prefix sum into
  // begin offsets.  A k-interval node (k > 1) gets a run of k slots:
  // summary at index 0, the k-1 extras as the Eytzinger tree at 1..k-1.
  // The counts pass touches every IntervalSet header once — the only
  // pointer-chasing the arena ever does again.
  std::vector<uint32_t> extra_begin(static_cast<size_t>(n) + 1, 0);
  for_range(n, [&](int64_t begin, int64_t end) {
    for (int64_t v = begin; v < end; ++v) {
      const int64_t k = labels.intervals[v].size();
      extra_begin[v + 1] = k > 1 ? static_cast<uint32_t>(k) : 0;
    }
  });
  for (int64_t v = 0; v < n; ++v) {
    const uint64_t sum =
        static_cast<uint64_t>(extra_begin[v]) + extra_begin[v + 1];
    TREL_CHECK_LE(sum, std::numeric_limits<uint32_t>::max())
        << "arena extras exceed the 32-bit slot offset";
    extra_begin[v + 1] = static_cast<uint32_t>(sum);
  }

  // Pass 2: fill slots, the per-node Eytzinger runs, and the coverage
  // filters.  Disjoint writes per node, so the pass shards cleanly.
  arena.slots.resize(n);
  arena.extras.resize(extra_begin[n], Interval{1, 0});
  arena.filters.assign(static_cast<size_t>(n) * LabelArena::kFilterWords, 0);
  const int shift = arena.filter_shift;
  for_range(n, [&](int64_t begin, int64_t end) {
    for (int64_t v = begin; v < end; ++v) {
      const std::vector<Interval>& set = labels.intervals[v].intervals();
      LabelArena::NodeSlot slot;
      slot.postorder = labels.postorder[v];
      slot.extra_begin = extra_begin[v];
      if (!set.empty()) {
        slot.first = set[0];
        slot.extra_count = static_cast<uint32_t>(set.size() - 1);
      }
      if (slot.extra_count > 0) {
        TREL_CHECK_GE(set[1].lo, 0)
            << "filter bucketing requires nonnegative interval endpoints";
        Interval* out = arena.extras.data() + extra_begin[v];
        uint32_t pos = 0;
        FillEytzinger(set.data() + 1, slot.extra_count, out, 1, pos);
        // Summary slot: the extras' min lo / max hi (sorted antichain:
        // both endpoint sequences ascend), for the O(1) range reject.
        out[0] = Interval{set[1].lo, set.back().hi};
        uint64_t* words =
            arena.filters.data() + static_cast<size_t>(v) * LabelArena::kFilterWords;
        for (size_t i = 1; i < set.size(); ++i) {
          const Label b_lo = set[i].lo >> shift;
          const Label b_hi = std::min<Label>(set[i].hi >> shift,
                                             kFilterBuckets - 1);
          // Word-at-a-time fill: two masked writes plus a run of full
          // words.  Wide intervals on dense closures span hundreds of
          // buckets, and the old bit-per-bucket loop was a measurable
          // share of arena build time.
          const Label w_lo = b_lo >> 6;
          const Label w_hi = b_hi >> 6;
          const uint64_t first_mask = ~uint64_t{0} << (b_lo & 63);
          const uint64_t last_mask = ~uint64_t{0} >> (63 - (b_hi & 63));
          if (w_lo == w_hi) {
            words[w_lo] |= first_mask & last_mask;
          } else {
            words[w_lo] |= first_mask;
            for (Label w = w_lo + 1; w < w_hi; ++w) words[w] = ~uint64_t{0};
            words[w_hi] |= last_mask;
          }
        }
      }
      arena.slots[v] = slot;
    }
  });

  // Pass 3: the sorted postorder directory.  A caller-supplied directory
  // (DynamicClosure's by-postorder map) skips the sort entirely; else
  // sort here — sharded with a merge cascade when a runner is available.
  if (sorted_directory.empty()) {
    sorted_directory.resize(n);
    for_range(n, [&](int64_t begin, int64_t end) {
      for (int64_t v = begin; v < end; ++v) {
        sorted_directory[v] = {labels.postorder[v], static_cast<NodeId>(v)};
      }
    });
    if (parallel) {
      const int64_t shard = (n + kSortShards - 1) / kSortShards;
      (*runner)(kSortShards, [&](int64_t sb, int64_t se) {
        for (int64_t s = sb; s < se; ++s) {
          const int64_t lo = s * shard;
          if (lo >= n) break;
          std::sort(sorted_directory.begin() + lo,
                    sorted_directory.begin() + std::min(n, lo + shard));
        }
      });
      for (int64_t width = shard; width < n; width *= 2) {
        const int64_t merges = (n + 2 * width - 1) / (2 * width);
        (*runner)(merges, [&](int64_t mb, int64_t me) {
          for (int64_t m = mb; m < me; ++m) {
            const int64_t lo = m * 2 * width;
            const int64_t mid = std::min(n, lo + width);
            const int64_t hi = std::min(n, lo + 2 * width);
            if (mid < hi) {
              std::inplace_merge(sorted_directory.begin() + lo,
                                 sorted_directory.begin() + mid,
                                 sorted_directory.begin() + hi);
            }
          }
        });
      }
    } else {
      std::sort(sorted_directory.begin(), sorted_directory.end());
    }
  } else {
    TREL_CHECK_EQ(static_cast<int64_t>(sorted_directory.size()), n)
        << "sorted_directory must cover every node";
    TREL_CHECK(std::is_sorted(sorted_directory.begin(),
                              sorted_directory.end()))
        << "sorted_directory must be sorted by postorder number";
  }

  // Pass 4: split the directory into structure-of-arrays form.
  arena.dir_labels.resize(n);
  arena.dir_nodes.resize(n);
  for_range(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      arena.dir_labels[i] = sorted_directory[i].first;
      arena.dir_nodes[i] = sorted_directory[i].second;
    }
  });
  return arena;
}

}  // namespace trel
