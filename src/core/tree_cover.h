#ifndef TREL_CORE_TREE_COVER_H_
#define TREL_CORE_TREE_COVER_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "graph/digraph.h"

namespace trel {

// How the spanning tree (forest) covering the DAG is chosen.  The choice
// determines how many non-tree intervals survive subsumption, i.e., the
// compressed closure size.
enum class TreeCoverStrategy {
  // The paper's Alg1: process nodes in topological order; the tree parent
  // of each node is its immediate predecessor with the largest predecessor
  // set.  Theorem 1: minimizes the total interval count over all tree
  // covers (when adjacent-interval merging is off).
  kOptimal,
  // Tree arc = the arc that first discovers the node in a DFS from the
  // roots.  A reasonable heuristic; used as an ablation baseline.
  kDfs,
  // Tree parent = first immediate predecessor in insertion order.
  kFirstParent,
  // Tree parent = uniformly random immediate predecessor.  Ablation
  // baseline showing how much Alg1 buys over an arbitrary cover.
  kRandom,
};

const char* TreeCoverStrategyName(TreeCoverStrategy strategy);

// A spanning forest of the DAG in which every node's parent is one of its
// immediate predecessors.  Roots (nodes with no predecessors) have parent
// kNoNode; conceptually they hang off the paper's "virtual root".
struct TreeCover {
  // parent[v] = tree parent of v, or kNoNode for roots.
  std::vector<NodeId> parent;
  // children[v] = tree children of v in deterministic order.
  std::vector<std::vector<NodeId>> children;
  // Roots in ascending id order.
  std::vector<NodeId> roots;

  NodeId NumNodes() const { return static_cast<NodeId>(parent.size()); }
};

// Computes a tree cover of `graph` using `strategy`.  `seed` only matters
// for kRandom.  Fails with FailedPrecondition if `graph` is cyclic.
StatusOr<TreeCover> ComputeTreeCover(const Digraph& graph,
                                     TreeCoverStrategy strategy,
                                     uint64_t seed = 0);

// Ordering of siblings in the postorder traversal.  Interval *counts*
// without merging are order-independent (Lemma 4 is structural), but the
// Section 3.2 adjacent-interval merging is order-dependent; the paper
// leaves the optimum ordering open ("appears to be a combinatorial
// problem").  These heuristics are measured in bench/tbl_child_order.
enum class ChildOrder {
  // Arc insertion order (the default; matches the paper's figures).
  kInsertion,
  // Smallest subtree first: clusters small leaves next to each other.
  kBySubtreeSizeAsc,
  // Largest subtree first.
  kBySubtreeSizeDesc,
  // Ascending node id: deterministic across cover strategies.
  kByNodeId,
};

const char* ChildOrderName(ChildOrder order);

// Rewrites cover.children in place according to `order`.
void ReorderChildren(TreeCover& cover, ChildOrder order);

// Builds the TreeCover bookkeeping (children lists, roots) from an
// explicit parent assignment.  Every non-root parent must be an immediate
// predecessor of its child in `graph`; used by tests to brute-force all
// covers.  Fails on invalid parents.
StatusOr<TreeCover> TreeCoverFromParents(const Digraph& graph,
                                         std::vector<NodeId> parent);

}  // namespace trel

#endif  // TREL_CORE_TREE_COVER_H_
