#ifndef TREL_CORE_PREDECESSOR_INDEX_H_
#define TREL_CORE_PREDECESSOR_INDEX_H_

#include <vector>

#include "common/statusor.h"
#include "core/compressed_closure.h"
#include "graph/digraph.h"

namespace trel {

// Bidirectional compressed closure: a forward index over the graph plus a
// second interval labeling of the *reversed* graph, so that predecessor
// queries ("who inherits from v", "what breaks if v changes") are as
// cheap as successor queries instead of the O(total intervals) scan that
// CompressedClosure::Predecessors performs.
//
// Storage is simply two compressed closures; the paper's compression
// argument applies to each direction independently.
class BidirectionalClosure {
 public:
  static StatusOr<BidirectionalClosure> Build(
      const Digraph& graph, const ClosureOptions& options = {});

  bool Reaches(NodeId u, NodeId v) const { return forward_.Reaches(u, v); }

  // All nodes reachable from u / that reach v, excluding the node itself.
  std::vector<NodeId> Successors(NodeId u) const {
    return forward_.Successors(u);
  }
  std::vector<NodeId> Predecessors(NodeId v) const {
    return backward_.Successors(v);
  }

  int64_t CountSuccessors(NodeId u) const {
    return forward_.CountSuccessors(u);
  }
  int64_t CountPredecessors(NodeId v) const {
    return backward_.CountSuccessors(v);
  }

  NodeId NumNodes() const { return forward_.NumNodes(); }
  int64_t TotalIntervals() const {
    return forward_.TotalIntervals() + backward_.TotalIntervals();
  }
  int64_t StorageUnits() const { return 2 * TotalIntervals(); }

  const CompressedClosure& forward() const { return forward_; }
  const CompressedClosure& backward() const { return backward_; }

 private:
  BidirectionalClosure(CompressedClosure forward, CompressedClosure backward)
      : forward_(std::move(forward)), backward_(std::move(backward)) {}

  CompressedClosure forward_;
  CompressedClosure backward_;
};

// Reverses every arc of `graph`.
Digraph ReverseGraph(const Digraph& graph);

}  // namespace trel

#endif  // TREL_CORE_PREDECESSOR_INDEX_H_
