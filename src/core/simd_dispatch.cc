#include "core/simd_dispatch.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/arena_kernels.h"

namespace trel {
namespace {

SimdLevel DetectHighest() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSse;
#endif
  return SimdLevel::kScalar;
}

const ArenaKernels& Resolve() {
  const SimdLevel supported = HighestSupportedSimdLevel();
  SimdLevel level = RequestedSimdLevel(supported);
  if (static_cast<int>(level) > static_cast<int>(supported)) {
    std::fprintf(stderr,
                 "trel: TREL_SIMD=%s is not executable on this host; "
                 "falling back to %s\n",
                 SimdLevelName(level), SimdLevelName(supported));
    level = supported;
  }
  // On a non-x86 build the chosen TU may itself have degraded to scalar
  // code; the table it hands back is authoritative, not the request.
  return KernelsForLevel(level);
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse:
      return "sse";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel HighestSupportedSimdLevel() {
  static const SimdLevel kLevel = DetectHighest();
  return kLevel;
}

SimdLevel RequestedSimdLevel(SimdLevel fallback) {
  const char* env = std::getenv("TREL_SIMD");
  if (env == nullptr || env[0] == '\0') return fallback;
  if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(env, "sse") == 0) return SimdLevel::kSse;
  if (std::strcmp(env, "avx2") == 0) return SimdLevel::kAvx2;
  std::fprintf(stderr,
               "trel: ignoring unrecognized TREL_SIMD=\"%s\" "
               "(expected scalar|sse|avx2)\n",
               env);
  return fallback;
}

const ArenaKernels& KernelsForLevel(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return Avx2ArenaKernels();
    case SimdLevel::kSse:
      return SseArenaKernels();
    case SimdLevel::kScalar:
      break;
  }
  return ScalarArenaKernels();
}

const ArenaKernels& ActiveKernels() {
  static const ArenaKernels& kKernels = Resolve();
  return kKernels;
}

SimdLevel ActiveSimdLevel() { return ActiveKernels().level; }

}  // namespace trel
