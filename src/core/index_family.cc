#include "core/index_family.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace trel {

const char* IndexFamilyName(IndexFamily family) {
  switch (family) {
    case IndexFamily::kIntervals:
      return "intervals";
    case IndexFamily::kTrees:
      return "trees";
    case IndexFamily::kHop:
      return "hop";
  }
  return "unknown";
}

IndexFamilySetting ParseIndexFamilySetting(const char* value) {
  if (value == nullptr) return IndexFamilySetting::kAuto;
  if (std::strcmp(value, "intervals") == 0) {
    return IndexFamilySetting::kForceIntervals;
  }
  if (std::strcmp(value, "trees") == 0) return IndexFamilySetting::kForceTrees;
  if (std::strcmp(value, "hop") == 0) return IndexFamilySetting::kForceHop;
  return IndexFamilySetting::kAuto;
}

IndexFamilySetting IndexFamilySettingFromEnv() {
  return ParseIndexFamilySetting(std::getenv("TREL_INDEX"));
}

IndexFamily SelectIndexFamily(const Digraph& graph, int64_t total_intervals,
                              FamilySignals* signals) {
  FamilySignals local;
  FamilySignals& sig = signals != nullptr ? *signals : local;
  sig.num_nodes = graph.NumNodes();
  sig.num_arcs = graph.NumArcs();
  sig.total_intervals = total_intervals;
  const double n = std::max<double>(1.0, sig.num_nodes);
  sig.interval_blowup = static_cast<double>(total_intervals) / n;
  sig.arc_density = static_cast<double>(sig.num_arcs) / n;

  // Hub skew: how many arcs the kHubProbe highest-degree nodes touch.
  // One pass over degrees plus a partial sort of the probe set — cheap
  // enough to run on every full publish.
  sig.hub_arc_fraction = 0.0;
  if (sig.num_arcs > 0) {
    std::vector<NodeId> by_degree(static_cast<size_t>(sig.num_nodes));
    for (NodeId v = 0; v < sig.num_nodes; ++v) by_degree[v] = v;
    const auto degree = [&graph](NodeId v) {
      return graph.OutDegree(v) + graph.InDegree(v);
    };
    const size_t probe =
        std::min<size_t>(kHubProbe, by_degree.size());
    std::partial_sort(by_degree.begin(),
                      by_degree.begin() + static_cast<ptrdiff_t>(probe),
                      by_degree.end(), [&](NodeId a, NodeId b) {
                        return degree(a) > degree(b);
                      });
    std::vector<uint8_t> is_hub(static_cast<size_t>(sig.num_nodes), 0);
    for (size_t i = 0; i < probe; ++i) is_hub[by_degree[i]] = 1;
    int64_t covered = 0;
    for (NodeId v = 0; v < sig.num_nodes; ++v) {
      if (is_hub[v]) {
        covered += graph.OutDegree(v);
        continue;
      }
      for (NodeId w : graph.OutNeighbors(v)) {
        if (is_hub[w]) ++covered;
      }
    }
    sig.hub_arc_fraction =
        static_cast<double>(covered) / static_cast<double>(sig.num_arcs);
  }

  if (sig.interval_blowup <= kMaxIntervalBlowup) {
    return IndexFamily::kIntervals;
  }
  if (sig.hub_arc_fraction >= kMinHubArcFraction) return IndexFamily::kHop;
  if (sig.arc_density >= kDenseArcsPerNode) return IndexFamily::kTrees;
  return IndexFamily::kIntervals;
}

IndexFamily ResolveIndexFamily(IndexFamilySetting setting,
                               const Digraph& graph, int64_t total_intervals,
                               FamilySignals* signals) {
  switch (setting) {
    case IndexFamilySetting::kForceIntervals:
      if (signals != nullptr) {
        SelectIndexFamily(graph, total_intervals, signals);
      }
      return IndexFamily::kIntervals;
    case IndexFamilySetting::kForceTrees:
      if (signals != nullptr) {
        SelectIndexFamily(graph, total_intervals, signals);
      }
      return IndexFamily::kTrees;
    case IndexFamilySetting::kForceHop:
      if (signals != nullptr) {
        SelectIndexFamily(graph, total_intervals, signals);
      }
      return IndexFamily::kHop;
    case IndexFamilySetting::kAuto:
      break;
  }
  return SelectIndexFamily(graph, total_intervals, signals);
}

}  // namespace trel
