#include "core/closure_index.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace trel {

StatusOr<TransitiveClosureIndex> TransitiveClosureIndex::Build(
    const Digraph& graph, const ClosureOptions& options) {
  Condensation condensation = CondenseScc(graph);
  TREL_ASSIGN_OR_RETURN(CompressedClosure closure,
                        CompressedClosure::Build(condensation.dag, options));
  return TransitiveClosureIndex(std::move(condensation), std::move(closure));
}

bool TransitiveClosureIndex::Reaches(NodeId u, NodeId v) const {
  TREL_CHECK_GE(u, 0);
  TREL_CHECK_LT(u, NumNodes());
  TREL_CHECK_GE(v, 0);
  TREL_CHECK_LT(v, NumNodes());
  return closure_.Reaches(condensation_.component_of[u],
                          condensation_.component_of[v]);
}

std::vector<NodeId> TransitiveClosureIndex::Successors(NodeId u) const {
  TREL_CHECK_GE(u, 0);
  TREL_CHECK_LT(u, NumNodes());
  const NodeId cu = condensation_.component_of[u];
  std::vector<NodeId> result;
  // Own component first (cycle members are mutually reachable) ...
  for (NodeId member : condensation_.members[cu]) {
    if (member != u) result.push_back(member);
  }
  // ... then every member of every reachable component.
  for (NodeId comp : closure_.Successors(cu)) {
    result.insert(result.end(), condensation_.members[comp].begin(),
                  condensation_.members[comp].end());
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace trel
