#include "core/tree_cover.h"


#include <algorithm>
#include <string>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "common/check.h"
#include "common/random.h"
#include "graph/topology.h"

namespace trel {
namespace {

// Fills children/roots from parent[] and returns the completed cover.
TreeCover FinishCover(std::vector<NodeId> parent) {
  TreeCover cover;
  const NodeId n = static_cast<NodeId>(parent.size());
  cover.children.resize(parent.size());
  for (NodeId v = 0; v < n; ++v) {
    if (parent[v] == kNoNode) {
      cover.roots.push_back(v);
    } else {
      cover.children[parent[v]].push_back(v);
    }
  }
  cover.parent = std::move(parent);
  return cover;
}

// Alg1 (optimum tree-cover): in topological order, give each node the
// immediate predecessor with the largest predecessor set as tree parent,
// and accumulate pred(j) = union over immediate predecessors i of
// pred(i) + {i}.  Predecessor sets are bitsets; the union is
// word-parallel, so the whole pass is O(n * m / 64).
std::vector<NodeId> OptimalParents(const Digraph& graph,
                                   const std::vector<NodeId>& topo) {
  const NodeId n = graph.NumNodes();
  std::vector<NodeId> parent(n, kNoNode);
  std::vector<DynamicBitset> pred(n);
  std::vector<size_t> pred_size(n, 0);
  for (NodeId v = 0; v < n; ++v) pred[v] = DynamicBitset(n);

  for (NodeId j : topo) {
    NodeId best = kNoNode;
    size_t best_size = 0;
    for (NodeId i : graph.InNeighbors(j)) {
      // Deterministic tie-break on node id keeps builds reproducible; the
      // optimality theorem is indifferent to ties.
      if (best == kNoNode || pred_size[i] > best_size ||
          (pred_size[i] == best_size && i < best)) {
        best = i;
        best_size = pred_size[i];
      }
      pred[j].UnionWith(pred[i]);
      pred[j].Set(static_cast<size_t>(i));
    }
    parent[j] = best;
    pred_size[j] = pred[j].Count();
  }
  return parent;
}

std::vector<NodeId> DfsParents(const Digraph& graph,
                               const std::vector<NodeId>& roots) {
  const NodeId n = graph.NumNodes();
  std::vector<NodeId> parent(n, kNoNode);
  std::vector<bool> visited(n, false);
  std::vector<std::pair<NodeId, size_t>> stack;
  for (NodeId root : roots) {
    if (visited[root]) continue;
    visited[root] = true;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      const auto& out = graph.OutNeighbors(u);
      if (next < out.size()) {
        const NodeId w = out[next++];
        if (!visited[w]) {
          visited[w] = true;
          parent[w] = u;
          stack.emplace_back(w, 0);
        }
      } else {
        stack.pop_back();
      }
    }
  }
  return parent;
}

}  // namespace

const char* TreeCoverStrategyName(TreeCoverStrategy strategy) {
  switch (strategy) {
    case TreeCoverStrategy::kOptimal:
      return "optimal";
    case TreeCoverStrategy::kDfs:
      return "dfs";
    case TreeCoverStrategy::kFirstParent:
      return "first_parent";
    case TreeCoverStrategy::kRandom:
      return "random";
  }
  return "unknown";
}

StatusOr<TreeCover> ComputeTreeCover(const Digraph& graph,
                                     TreeCoverStrategy strategy,
                                     uint64_t seed) {
  TREL_ASSIGN_OR_RETURN(std::vector<NodeId> topo, TopologicalOrder(graph));
  const NodeId n = graph.NumNodes();
  std::vector<NodeId> parent(n, kNoNode);
  switch (strategy) {
    case TreeCoverStrategy::kOptimal:
      parent = OptimalParents(graph, topo);
      break;
    case TreeCoverStrategy::kDfs: {
      std::vector<NodeId> roots;
      for (NodeId v : topo) {
        if (graph.InDegree(v) == 0) roots.push_back(v);
      }
      parent = DfsParents(graph, roots);
      break;
    }
    case TreeCoverStrategy::kFirstParent:
      for (NodeId v = 0; v < n; ++v) {
        if (!graph.InNeighbors(v).empty()) parent[v] = graph.InNeighbors(v)[0];
      }
      break;
    case TreeCoverStrategy::kRandom: {
      Random rng(seed);
      for (NodeId v = 0; v < n; ++v) {
        const auto& in = graph.InNeighbors(v);
        if (!in.empty()) parent[v] = in[rng.Uniform(in.size())];
      }
      break;
    }
  }
  return FinishCover(std::move(parent));
}

const char* ChildOrderName(ChildOrder order) {
  switch (order) {
    case ChildOrder::kInsertion:
      return "insertion";
    case ChildOrder::kBySubtreeSizeAsc:
      return "subtree_asc";
    case ChildOrder::kBySubtreeSizeDesc:
      return "subtree_desc";
    case ChildOrder::kByNodeId:
      return "node_id";
  }
  return "unknown";
}

void ReorderChildren(TreeCover& cover, ChildOrder order) {
  if (order == ChildOrder::kInsertion) return;
  const NodeId n = cover.NumNodes();

  std::vector<int64_t> subtree_size;
  if (order == ChildOrder::kBySubtreeSizeAsc ||
      order == ChildOrder::kBySubtreeSizeDesc) {
    // Sizes bottom-up: process nodes in decreasing depth via a DFS
    // finish-order pass.
    subtree_size.assign(n, 1);
    std::vector<NodeId> finish_order;
    finish_order.reserve(n);
    std::vector<std::pair<NodeId, size_t>> stack;
    for (NodeId root : cover.roots) {
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [v, next] = stack.back();
        if (next < cover.children[v].size()) {
          stack.emplace_back(cover.children[v][next++], 0);
        } else {
          finish_order.push_back(v);
          stack.pop_back();
        }
      }
    }
    for (NodeId v : finish_order) {
      for (NodeId c : cover.children[v]) subtree_size[v] += subtree_size[c];
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    auto& kids = cover.children[v];
    switch (order) {
      case ChildOrder::kInsertion:
        break;
      case ChildOrder::kBySubtreeSizeAsc:
        std::stable_sort(kids.begin(), kids.end(), [&](NodeId a, NodeId b) {
          return subtree_size[a] < subtree_size[b];
        });
        break;
      case ChildOrder::kBySubtreeSizeDesc:
        std::stable_sort(kids.begin(), kids.end(), [&](NodeId a, NodeId b) {
          return subtree_size[a] > subtree_size[b];
        });
        break;
      case ChildOrder::kByNodeId:
        std::sort(kids.begin(), kids.end());
        break;
    }
  }
}

StatusOr<TreeCover> TreeCoverFromParents(const Digraph& graph,
                                         std::vector<NodeId> parent) {
  if (static_cast<NodeId>(parent.size()) != graph.NumNodes()) {
    return InvalidArgumentError("parent vector size mismatch");
  }
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (parent[v] == kNoNode) continue;
    if (!graph.HasArc(parent[v], v)) {
      return InvalidArgumentError(
          "parent " + std::to_string(parent[v]) + " of node " +
          std::to_string(v) + " is not an immediate predecessor");
    }
  }
  return FinishCover(std::move(parent));
}

}  // namespace trel
