#include "core/labeling.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "graph/topology.h"

namespace trel {

int64_t NodeLabels::TotalIntervals() const {
  int64_t total = 0;
  for (const IntervalSet& set : intervals) total += set.size();
  return total;
}

namespace {

// Iterative postorder over the forest.  Roots are visited in the order
// they appear in `cover.roots` (they all hang off the paper's virtual
// root).  Numbers are 1*gap, 2*gap, ...; anchor_v is the last number
// assigned before v's subtree was entered.  v's tree interval starts at
// anchor_v + reserve + 1 — the first `reserve` slots above each assigned
// number form that node's refinement pool (Section 4.1), and excluding
// them here keeps a node from claiming concepts later refined in above
// its *preceding* sibling.
void AssignPostorder(const TreeCover& cover, Label gap, Label reserve,
                     NodeLabels& labels) {
  const NodeId n = cover.NumNodes();
  labels.postorder.assign(n, 0);
  labels.tree_interval.assign(n, Interval{0, 0});

  Label last_assigned = 0;
  std::vector<Label> anchor(n, 0);
  // Frame: (node, next child index).
  std::vector<std::pair<NodeId, size_t>> stack;
  for (NodeId root : cover.roots) {
    anchor[root] = last_assigned;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      const auto& kids = cover.children[v];
      if (next < kids.size()) {
        const NodeId child = kids[next++];
        anchor[child] = last_assigned;
        stack.emplace_back(child, 0);
      } else {
        last_assigned += gap;
        labels.postorder[v] = last_assigned;
        labels.tree_interval[v] =
            Interval{anchor[v] + reserve + 1, last_assigned};
        stack.pop_back();
      }
    }
  }
}

}  // namespace

void PropagateIntervals(const Digraph& graph,
                        const std::vector<NodeId>& reverse_topo,
                        NodeLabels& labels,
                        const std::vector<Label>* pad_per_node) {
  const NodeId n = graph.NumNodes();
  labels.intervals.assign(n, IntervalSet());
  for (NodeId p : reverse_topo) {
    labels.intervals[p].Insert(labels.tree_interval[p]);
    // "For every arc (p,q), add all the intervals associated with the node
    // q to the intervals associated with the node p" — tree arcs included;
    // subsumption discards the redundant ones.  q's own tree interval is
    // padded with the reserve slack on the way in (Section 4.1), so that
    // predecessors keep claiming nodes later refined in below q.
    for (NodeId q : graph.OutNeighbors(p)) {
      const Label pad = pad_per_node ? (*pad_per_node)[q] : labels.reserve;
      for (const Interval& interval : labels.intervals[q].intervals()) {
        Interval to_insert = interval;
        if (interval == labels.tree_interval[q]) {
          to_insert.hi += pad;
        }
        labels.intervals[p].Insert(to_insert);
      }
    }
  }
}

StatusOr<NodeLabels> BuildLabels(const Digraph& graph, const TreeCover& cover,
                                 const LabelingOptions& options) {
  if (cover.NumNodes() != graph.NumNodes()) {
    return InvalidArgumentError("tree cover / graph size mismatch");
  }
  if (options.gap < 1) {
    return InvalidArgumentError("gap must be >= 1");
  }
  if (options.reserve < 0 || options.reserve >= options.gap) {
    return InvalidArgumentError("reserve must be in [0, gap)");
  }
  TREL_ASSIGN_OR_RETURN(std::vector<NodeId> topo, TopologicalOrder(graph));

  NodeLabels labels;
  labels.gap = options.gap;
  labels.reserve = options.reserve;
  AssignPostorder(cover, options.gap, options.reserve, labels);

  std::vector<NodeId> reverse_topo(topo.rbegin(), topo.rend());
  PropagateIntervals(graph, reverse_topo, labels);

  if (options.merge_adjacent) {
    for (IntervalSet& set : labels.intervals) set.MergeAdjacent();
  }
  return labels;
}

}  // namespace trel
