#include "core/hop_label_index.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace trel {
namespace {

// One BFS from `start` over `forward ? out : in` arcs, appending `hub`
// to per-node label builders for every node reached (including `start`
// itself — the reflexive entries are what make hub-touching paths
// complete).  `seen`/`epoch` is a reusable stamp set, `queue` a reusable
// frontier.
void LabelSweep(const Digraph& graph, NodeId start, NodeId hub, bool forward,
                std::vector<std::vector<NodeId>>* labels,
                std::vector<uint32_t>* seen, uint32_t epoch,
                std::vector<NodeId>* queue) {
  queue->clear();
  queue->push_back(start);
  (*seen)[start] = epoch;
  (*labels)[start].push_back(hub);
  for (size_t head = 0; head < queue->size(); ++head) {
    const NodeId x = (*queue)[head];
    const auto& next = forward ? graph.OutNeighbors(x) : graph.InNeighbors(x);
    for (NodeId w : next) {
      if ((*seen)[w] == epoch) continue;
      (*seen)[w] = epoch;
      (*labels)[w].push_back(hub);
      queue->push_back(w);
    }
  }
}

void Flatten(const std::vector<std::vector<NodeId>>& per_node,
             std::vector<int32_t>* offsets, std::vector<NodeId>* flat) {
  int64_t total = 0;
  for (const auto& list : per_node) total += static_cast<int64_t>(list.size());
  TREL_CHECK(total <= std::numeric_limits<int32_t>::max());
  offsets->assign(per_node.size() + 1, 0);
  flat->clear();
  flat->reserve(static_cast<size_t>(total));
  for (size_t v = 0; v < per_node.size(); ++v) {
    flat->insert(flat->end(), per_node[v].begin(), per_node[v].end());
    (*offsets)[v + 1] = static_cast<int32_t>(flat->size());
  }
}

}  // namespace

HopLabelIndex HopLabelIndex::Build(const Digraph& graph, int max_hubs) {
  TREL_CHECK(max_hubs >= 1);
  HopLabelIndex index;
  const NodeId n = graph.NumNodes();
  index.num_nodes_ = n;
  index.is_hub_.assign(static_cast<size_t>(n), 0);
  index.residual_id_.assign(static_cast<size_t>(n), kNoNode);
  if (n == 0) return index;

  // Hubs: top-max_hubs by total degree, ids ascending afterwards so the
  // per-node label lists come out sorted.  Zero-degree nodes never make
  // useful hubs; cap the candidate set to nodes that touch an arc.
  std::vector<NodeId> by_degree(static_cast<size_t>(n));
  std::iota(by_degree.begin(), by_degree.end(), 0);
  const auto degree = [&graph](NodeId v) {
    return graph.OutDegree(v) + graph.InDegree(v);
  };
  const size_t want = std::min<size_t>(max_hubs, by_degree.size());
  std::partial_sort(by_degree.begin(),
                    by_degree.begin() + static_cast<ptrdiff_t>(want),
                    by_degree.end(), [&](NodeId a, NodeId b) {
                      const int da = degree(a), db = degree(b);
                      return da != db ? da > db : a < b;
                    });
  for (size_t i = 0; i < want; ++i) {
    if (degree(by_degree[i]) == 0) break;
    index.hubs_.push_back(by_degree[i]);
  }
  std::sort(index.hubs_.begin(), index.hubs_.end());
  for (NodeId h : index.hubs_) index.is_hub_[h] = 1;

  // One forward + one backward sweep per hub, ascending, so every list
  // is appended in sorted hub order.
  std::vector<std::vector<NodeId>> lin(static_cast<size_t>(n));
  std::vector<std::vector<NodeId>> lout(static_cast<size_t>(n));
  std::vector<uint32_t> seen(static_cast<size_t>(n), 0);
  std::vector<NodeId> queue;
  uint32_t epoch = 0;
  for (NodeId h : index.hubs_) {
    LabelSweep(graph, h, h, /*forward=*/true, &lin, &seen, ++epoch, &queue);
    LabelSweep(graph, h, h, /*forward=*/false, &lout, &seen, ++epoch, &queue);
  }
  Flatten(lin, &index.lin_offset_, &index.lin_);
  Flatten(lout, &index.lout_offset_, &index.lout_);

  // Residual: the subgraph of arcs with no hub endpoint.  Only nodes
  // incident to such an arc can sit on a hub-free path, so only they get
  // remapped ids and interval labels.
  for (NodeId v = 0; v < n; ++v) {
    if (index.is_hub_[v]) continue;
    for (NodeId w : graph.OutNeighbors(v)) {
      if (index.is_hub_[w]) continue;
      if (index.residual_id_[v] == kNoNode) {
        index.residual_id_[v] = index.residual_nodes_++;
      }
      if (index.residual_id_[w] == kNoNode) {
        index.residual_id_[w] = index.residual_nodes_++;
      }
    }
  }
  if (index.residual_nodes_ > 0) {
    Digraph residual(index.residual_nodes_);
    for (NodeId v = 0; v < n; ++v) {
      if (index.residual_id_[v] == kNoNode || index.is_hub_[v]) continue;
      for (NodeId w : graph.OutNeighbors(v)) {
        if (index.is_hub_[w]) continue;
        TREL_CHECK(
            residual.AddArc(index.residual_id_[v], index.residual_id_[w])
                .ok());
      }
    }
    auto closure = CompressedClosure::Build(residual);
    TREL_CHECK(closure.ok()) << closure.status();
    index.residual_ = std::make_shared<const CompressedClosure>(
        std::move(closure).value());
  }
  return index;
}

bool HopLabelIndex::ReachesTraced(NodeId u, NodeId v,
                                  ProbeTrace* trace) const {
  TREL_CHECK(u >= 0 && u < num_nodes_);
  TREL_CHECK(v >= 0 && v < num_nodes_);
  trace->tag = ProbeTag::kSlot;
  trace->extras_probes = 0;
  if (u == v) return true;
  // Two-pointer intersect of Lout(u) and Lin(v): any common hub is a
  // witness path u -> h -> v.
  trace->tag = ProbeTag::kHopIntersect;
  const NodeId* a = lout_.data() + lout_offset_[u];
  const NodeId* a_end = lout_.data() + lout_offset_[static_cast<size_t>(u) + 1];
  const NodeId* b = lin_.data() + lin_offset_[v];
  const NodeId* b_end = lin_.data() + lin_offset_[static_cast<size_t>(v) + 1];
  uint32_t probes = 0;
  while (a != a_end && b != b_end) {
    ++probes;
    if (*a == *b) {
      trace->extras_probes = probes;
      return true;
    }
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  trace->extras_probes = probes;
  // Hubs carry reflexive entries, so for a hub endpoint the intersect
  // above was already complete: u a hub means u in Lout(u), and u
  // reaching v would put u in Lin(v) (symmetrically for v).
  if (is_hub_[u] || is_hub_[v]) return false;
  // Both non-hub: only a path through hub-free arcs remains, and both
  // its endpoints would be incident to hub-free arcs.
  trace->tag = ProbeTag::kFallback;
  const NodeId ru = residual_id_[u];
  const NodeId rv = residual_id_[v];
  if (ru == kNoNode || rv == kNoNode) return false;
  return residual_->Reaches(ru, rv);
}

}  // namespace trel
