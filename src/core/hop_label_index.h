#ifndef TREL_CORE_HOP_LABEL_INDEX_H_
#define TREL_CORE_HOP_LABEL_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/arena_kernels.h"
#include "core/compressed_closure.h"
#include "graph/digraph.h"

namespace trel {

// Exact 2-hop reachability labels over a hub spine, with an interval
// index on the hub-free residual.
//
// The high-degree "hubs" (top max_hubs nodes by total degree) get pulled
// out of the graph: every node u stores Lout(u) = the hubs u reaches and
// Lin(u) = the hubs that reach u, both as sorted arrays probed by a
// two-pointer merge.  A path that touches any hub h gives h to both
// Lout(u) and Lin(v), so a non-empty intersection decides those queries
// in O(|Lout| + |Lin|).  Paths that avoid every hub live entirely in the
// residual subgraph (arcs with no hub endpoint), which is indexed with
// the paper's own interval closure — small by construction, because on
// hub-dominated DAGs almost every arc has a hub endpoint.  Together the
// two answers are exact.
//
// This is the family for graphs where interval labels explode because a
// few hubs fan out to most of the graph: each hub contributes one 4-byte
// entry per node it touches, where the interval labeling pays a
// fragmented interval set per source.
//
// Immutable after Build; concurrent queries are safe.
class HopLabelIndex {
 public:
  static constexpr int kDefaultMaxHubs = 96;

  // Builds over `graph` (must be a DAG, like every closure build here).
  // Deterministic: hubs are the top-max_hubs nodes by total degree, ties
  // broken by id.
  static HopLabelIndex Build(const Digraph& graph,
                             int max_hubs = kDefaultMaxHubs);

  HopLabelIndex() = default;

  NodeId NumNodes() const { return num_nodes_; }
  int num_hubs() const { return static_cast<int>(hubs_.size()); }
  NodeId ResidualNodes() const { return residual_nodes_; }

  // Exact reachability; both ids must be valid.
  bool Reaches(NodeId u, NodeId v) const {
    ProbeTrace trace;
    return ReachesTraced(u, v, &trace);
  }

  // Tagged twin: kSlot for u == v, kHopIntersect when the Lin/Lout merge
  // decided (extras_probes = label entries compared), kFallback when the
  // residual interval index answered.
  bool ReachesTraced(NodeId u, NodeId v, ProbeTrace* trace) const;

  // Index footprint: both label CSRs plus the residual interval arena.
  int64_t LabelBytes() const {
    return static_cast<int64_t>((lin_.size() + lout_.size()) *
                                sizeof(NodeId)) +
           static_cast<int64_t>((lin_offset_.size() + lout_offset_.size()) *
                                sizeof(int32_t)) +
           static_cast<int64_t>(hubs_.size() * sizeof(NodeId)) +
           (residual_ != nullptr ? residual_->ArenaByteSize() : 0);
  }

  bool IsHub(NodeId v) const { return is_hub_[v] != 0; }

 private:
  NodeId num_nodes_ = 0;
  // Hub node ids, ascending; label entries are hub ids, so processing
  // hubs in ascending order keeps every list sorted for the merge.
  std::vector<NodeId> hubs_;
  std::vector<uint8_t> is_hub_;
  // CSR label arrays: Lin(v) = lin_[lin_offset_[v] .. lin_offset_[v+1]),
  // likewise Lout.  int32 offsets: totals are bounded by n * max_hubs and
  // checked at build.
  std::vector<int32_t> lin_offset_;
  std::vector<NodeId> lin_;
  std::vector<int32_t> lout_offset_;
  std::vector<NodeId> lout_;
  // Hub-free residual: nodes incident to at least one hub-free arc get a
  // dense remapped id; everyone else cannot lie on a hub-free path of
  // length >= 1.  The remap keeps the residual arena's ~96-byte fixed
  // per-node cost off the (typically many) untouched nodes.
  std::vector<NodeId> residual_id_;
  NodeId residual_nodes_ = 0;
  std::shared_ptr<const CompressedClosure> residual_;
};

}  // namespace trel

#endif  // TREL_CORE_HOP_LABEL_INDEX_H_
