#ifndef TREL_CORE_COMPRESSED_CLOSURE_H_
#define TREL_CORE_COMPRESSED_CLOSURE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "core/interval.h"
#include "core/labeling.h"
#include "core/tree_cover.h"
#include "graph/digraph.h"

namespace trel {

// Build-time options for the compressed closure.
struct ClosureOptions {
  TreeCoverStrategy strategy = TreeCoverStrategy::kOptimal;
  // Random seed, used only by TreeCoverStrategy::kRandom.
  uint64_t seed = 0;
  // Sibling traversal order; only affects storage when
  // labeling.merge_adjacent is on (see ChildOrder).
  ChildOrder child_order = ChildOrder::kInsertion;
  LabelingOptions labeling;
};

// Immutable compressed transitive closure of a DAG — the paper's primary
// contribution.  Reachability queries are O(log k) where k is the number
// of intervals at the source node (k is 1 for most nodes); enumeration
// queries cost output-size log-factors.  For a mutable index supporting
// the Section 4 incremental updates, see DynamicClosure; for cyclic
// inputs, see TransitiveClosureIndex.
//
// Storage comes in two layers.  A *base* layer (per-node labels plus the
// sorted postorder directory) is held through shared_ptr and never
// mutated, so closures built from one another via WithDelta() share it.
// An optional *overlay* holds the label entries that differ from the
// base; it is empty for closures built by Build()/FromParts().  Queries
// consult the overlay first, so an overlay closure answers exactly like a
// from-scratch export of the same labeling — only cheaper to construct
// (O(|overlay| log |overlay|) instead of O(n log n)).
class CompressedClosure {
 public:
  // Empty closure over zero nodes; placeholder state (e.g. a query
  // service before its first Load).
  CompressedClosure();

  // Compresses the closure of `graph`.  Fails with FailedPrecondition if
  // the graph is cyclic, InvalidArgument on bad options.
  static StatusOr<CompressedClosure> Build(const Digraph& graph,
                                           const ClosureOptions& options = {});

  // Wraps an already-computed labeling without re-running tree-cover
  // selection or interval propagation.  This is the cheap snapshot-export
  // path: DynamicClosure hands over a copy of its current labels so a
  // query service can publish an immutable snapshot in O(n log n) (the
  // postorder sort) instead of a full rebuild.  `labels` and `tree_cover`
  // must describe the same node set and come from a sound labeling.
  static CompressedClosure FromParts(NodeLabels labels, TreeCover tree_cover);

  // Copy-on-write overlay constructor: a closure that answers exactly
  // like a full export of the labeling `delta` was taken from, built in
  // O(|overlay| log |overlay|) by sharing every unchanged node's storage
  // with `base`.  `delta` must come from the same index lineage as `base`
  // (same node ids, monotone node count) and list every node that changed
  // since `base` was exported — DynamicClosure::ExportDelta() guarantees
  // both.  Chaining is flattened: building from an overlay closure merges
  // the accumulated overlay, so lookups never walk a chain; publishers
  // bound the overlay's growth by forcing a periodic full export (see
  // ServiceOptions::max_delta_publishes).
  static CompressedClosure WithDelta(const CompressedClosure& base,
                                     const ClosureDelta& delta);

  // True iff there is a directed path from `u` to `v` (every node reaches
  // itself).  One binary search over u's interval set.
  bool Reaches(NodeId u, NodeId v) const {
    TREL_CHECK(IsValidNode(u));
    TREL_CHECK(IsValidNode(v));
    if (u == v) return true;
    return EffectiveIntervals(u).Contains(EffectivePostorder(v));
  }

  // All nodes reachable from `u`, excluding `u` itself, in ascending
  // postorder-number order.
  std::vector<NodeId> Successors(NodeId u) const;

  // All nodes that reach `v`, excluding `v` itself.  O(total intervals)
  // scan; the structure is optimized for forward queries, matching the
  // paper's successor-list framing.
  std::vector<NodeId> Predecessors(NodeId v) const;

  // Number of successors of `u` (excluding `u`), without materializing
  // them.
  int64_t CountSuccessors(NodeId u) const;

  NodeId NumNodes() const { return num_nodes_; }
  bool IsValidNode(NodeId v) const { return v >= 0 && v < NumNodes(); }

  // The paper's storage measures.
  int64_t TotalIntervals() const { return total_intervals_; }
  int64_t StorageUnits() const { return 2 * total_intervals_; }

  // Number of nodes whose labels live in the overlay rather than the
  // shared base (0 for full exports).  Grows monotonically along a
  // WithDelta chain until the next full export.
  int64_t OverlayNodeCount() const {
    return static_cast<int64_t>(overlay_.size());
  }
  bool IsOverlay() const { return !overlay_.empty(); }

  // Introspection (used by tests, benches, and the dynamic index).
  // `labels()` and `tree_cover()` expose the shared *base* layer: exact
  // for full exports, stale for overlaid nodes of a WithDelta closure
  // (use PostorderOf/IntervalsOf for overlay-aware per-node access).
  const NodeLabels& labels() const { return *labels_; }
  const TreeCover& tree_cover() const { return *tree_cover_; }
  Label PostorderOf(NodeId v) const {
    TREL_CHECK(IsValidNode(v));
    return EffectivePostorder(v);
  }
  const IntervalSet& IntervalsOf(NodeId v) const {
    TREL_CHECK(IsValidNode(v));
    return EffectiveIntervals(v);
  }

 private:
  // One overlaid node's label state (mirrors NodeLabelDelta minus the id).
  struct OverlayEntry {
    Label postorder;
    Interval tree_interval;
    IntervalSet intervals;
  };

  CompressedClosure(NodeLabels labels, TreeCover tree_cover);

  const IntervalSet& EffectiveIntervals(NodeId v) const {
    if (!overlay_.empty()) {
      auto it = overlay_.find(v);
      if (it != overlay_.end()) return it->second.intervals;
    }
    return labels_->intervals[v];
  }
  Label EffectivePostorder(NodeId v) const {
    if (!overlay_.empty()) {
      auto it = overlay_.find(v);
      if (it != overlay_.end()) return it->second.postorder;
    }
    return labels_->postorder[v];
  }

  // Rebuilds overlay_by_postorder_ and stale_labels_ from overlay_, and
  // recounts total_intervals_ from `base_total` plus overlay adjustments.
  void ReindexOverlay();

  // Nodes listed in the closed interval [lo, hi] of postorder numbers,
  // except the node numbered `skip` (pass a number outside [lo, hi] to
  // keep everything).  Merges the base directory (minus stale entries)
  // with the overlay directory, ascending.
  void AppendNodesInRange(Label lo, Label hi, Label skip,
                          std::vector<NodeId>& out) const;
  // Number of assigned postorder numbers in [lo, hi]; pure binary search.
  int64_t CountNodesInRange(Label lo, Label hi) const;

  // --- Shared base layer (immutable once built, never overlaid) ---------
  std::shared_ptr<const NodeLabels> labels_;
  std::shared_ptr<const TreeCover> tree_cover_;
  // (postorder number, node) sorted by number, for range enumeration.
  std::shared_ptr<const std::vector<std::pair<Label, NodeId>>> by_postorder_;

  // --- Overlay layer (empty for full exports) ---------------------------
  // Changed/new nodes and their current labels.
  std::unordered_map<NodeId, OverlayEntry> overlay_;
  // (postorder number, node) over overlay_ members, sorted by number.
  std::vector<std::pair<Label, NodeId>> overlay_by_postorder_;
  // Base postorder numbers superseded by the overlay (sorted); base
  // directory entries carrying these numbers are skipped.
  std::vector<Label> stale_labels_;

  NodeId num_nodes_ = 0;
  int64_t total_intervals_ = 0;
};

}  // namespace trel

#endif  // TREL_CORE_COMPRESSED_CLOSURE_H_
