#ifndef TREL_CORE_COMPRESSED_CLOSURE_H_
#define TREL_CORE_COMPRESSED_CLOSURE_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "core/interval.h"
#include "core/labeling.h"
#include "core/tree_cover.h"
#include "graph/digraph.h"

namespace trel {

// Build-time options for the compressed closure.
struct ClosureOptions {
  TreeCoverStrategy strategy = TreeCoverStrategy::kOptimal;
  // Random seed, used only by TreeCoverStrategy::kRandom.
  uint64_t seed = 0;
  // Sibling traversal order; only affects storage when
  // labeling.merge_adjacent is on (see ChildOrder).
  ChildOrder child_order = ChildOrder::kInsertion;
  LabelingOptions labeling;
};

// Immutable compressed transitive closure of a DAG — the paper's primary
// contribution.  Reachability queries are O(log k) where k is the number
// of intervals at the source node (k is 1 for most nodes); enumeration
// queries cost output-size log-factors.  For a mutable index supporting
// the Section 4 incremental updates, see DynamicClosure; for cyclic
// inputs, see TransitiveClosureIndex.
class CompressedClosure {
 public:
  // Empty closure over zero nodes; placeholder state (e.g. a query
  // service before its first Load).
  CompressedClosure() = default;

  // Compresses the closure of `graph`.  Fails with FailedPrecondition if
  // the graph is cyclic, InvalidArgument on bad options.
  static StatusOr<CompressedClosure> Build(const Digraph& graph,
                                           const ClosureOptions& options = {});

  // Wraps an already-computed labeling without re-running tree-cover
  // selection or interval propagation.  This is the cheap snapshot-export
  // path: DynamicClosure hands over a copy of its current labels so a
  // query service can publish an immutable snapshot in O(n log n) (the
  // postorder sort) instead of a full rebuild.  `labels` and `tree_cover`
  // must describe the same node set and come from a sound labeling.
  static CompressedClosure FromParts(NodeLabels labels, TreeCover tree_cover);

  // True iff there is a directed path from `u` to `v` (every node reaches
  // itself).  One binary search over u's interval set.
  bool Reaches(NodeId u, NodeId v) const {
    TREL_CHECK(IsValidNode(u));
    TREL_CHECK(IsValidNode(v));
    if (u == v) return true;
    return labels_.intervals[u].Contains(labels_.postorder[v]);
  }

  // All nodes reachable from `u`, excluding `u` itself, in ascending
  // postorder-number order.
  std::vector<NodeId> Successors(NodeId u) const;

  // All nodes that reach `v`, excluding `v` itself.  O(total intervals)
  // scan; the structure is optimized for forward queries, matching the
  // paper's successor-list framing.
  std::vector<NodeId> Predecessors(NodeId v) const;

  // Number of successors of `u` (excluding `u`), without materializing
  // them.
  int64_t CountSuccessors(NodeId u) const;

  NodeId NumNodes() const {
    return static_cast<NodeId>(labels_.postorder.size());
  }
  bool IsValidNode(NodeId v) const { return v >= 0 && v < NumNodes(); }

  // The paper's storage measures.
  int64_t TotalIntervals() const { return labels_.TotalIntervals(); }
  int64_t StorageUnits() const { return labels_.StorageUnits(); }

  // Introspection (used by tests, benches, and the dynamic index).
  const NodeLabels& labels() const { return labels_; }
  const TreeCover& tree_cover() const { return tree_cover_; }
  Label PostorderOf(NodeId v) const {
    TREL_CHECK(IsValidNode(v));
    return labels_.postorder[v];
  }
  const IntervalSet& IntervalsOf(NodeId v) const {
    TREL_CHECK(IsValidNode(v));
    return labels_.intervals[v];
  }

 private:
  CompressedClosure(NodeLabels labels, TreeCover tree_cover);

  // Nodes listed in the closed interval [lo, hi] of postorder numbers,
  // except the node numbered `skip` (pass a number outside [lo, hi] to
  // keep everything).
  void AppendNodesInRange(Label lo, Label hi, Label skip,
                          std::vector<NodeId>& out) const;

  NodeLabels labels_;
  TreeCover tree_cover_;
  // (postorder number, node) sorted by number, for range enumeration.
  std::vector<std::pair<Label, NodeId>> by_postorder_;
};

}  // namespace trel

#endif  // TREL_CORE_COMPRESSED_CLOSURE_H_
