#ifndef TREL_CORE_COMPRESSED_CLOSURE_H_
#define TREL_CORE_COMPRESSED_CLOSURE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "core/arena_kernels.h"
#include "core/interval.h"
#include "core/label_arena.h"
#include "core/labeling.h"
#include "core/tree_cover.h"
#include "graph/digraph.h"

namespace trel {

// Build-time options for the compressed closure.
struct ClosureOptions {
  TreeCoverStrategy strategy = TreeCoverStrategy::kOptimal;
  // Random seed, used only by TreeCoverStrategy::kRandom.
  uint64_t seed = 0;
  // Sibling traversal order; only affects storage when
  // labeling.merge_adjacent is on (see ChildOrder).
  ChildOrder child_order = ChildOrder::kInsertion;
  LabelingOptions labeling;
};

// Immutable compressed transitive closure of a DAG — the paper's primary
// contribution.  Reachability queries are O(log k) where k is the number
// of intervals at the source node (k is 1 for most nodes); enumeration
// queries cost output-size log-factors.  For a mutable index supporting
// the Section 4 incremental updates, see DynamicClosure; for cyclic
// inputs, see TransitiveClosureIndex.
//
// Storage comes in two layers.  A *base* layer is held through shared_ptr
// and never mutated, so closures built from one another via WithDelta()
// share it.  It has two synchronized representations:
//   * a flat LabelArena — per-node slots with the first interval inline,
//     one contiguous array for the remaining intervals, and the sorted
//     postorder directory as parallel flat arrays.  Every query path
//     (Reaches, Successors, Predecessors, the batch kernels) reads only
//     the arena; see label_arena.h for the layout rationale.
//   * the original per-node NodeLabels, kept for structural introspection
//     (labels(), IntervalsOf() returning IntervalSet&, serialization).
// An optional *overlay* holds the label entries that differ from the
// base; it is empty for closures built by Build()/FromParts().  Queries
// consult the overlay first, so an overlay closure answers exactly like a
// from-scratch export of the same labeling — only cheaper to construct
// (O(|overlay| log |overlay|) instead of O(n log n)).
class CompressedClosure {
 public:
  // Optional accelerators for FromParts, used by the snapshot-export
  // path: a pre-sorted (postorder, node) directory skips the export's
  // O(n log n) sort (DynamicClosure maintains one as a by-postorder map),
  // and a ParallelRunner shards the arena build across a worker pool.
  struct ExportHints {
    std::vector<std::pair<Label, NodeId>> sorted_directory;
    const ParallelRunner* runner = nullptr;
    // When non-null, receives the arena-build portion of the export in
    // microseconds (the obs publish spans split "export" from "arena
    // build" with it).
    int64_t* arena_micros = nullptr;
  };

  // Empty closure over zero nodes; placeholder state (e.g. a query
  // service before its first Load).
  CompressedClosure();

  // Compresses the closure of `graph`.  Fails with FailedPrecondition if
  // the graph is cyclic, InvalidArgument on bad options.
  static StatusOr<CompressedClosure> Build(const Digraph& graph,
                                           const ClosureOptions& options = {});

  // Wraps an already-computed labeling without re-running tree-cover
  // selection or interval propagation.  This is the cheap snapshot-export
  // path: DynamicClosure hands over a copy of its current labels so a
  // query service can publish an immutable snapshot in O(n log n) (the
  // postorder sort — O(n) when hints carry a pre-sorted directory)
  // instead of a full rebuild.  `labels` and `tree_cover` must describe
  // the same node set and come from a sound labeling.
  static CompressedClosure FromParts(NodeLabels labels, TreeCover tree_cover);
  static CompressedClosure FromParts(NodeLabels labels, TreeCover tree_cover,
                                     ExportHints hints);

  // Query-only variant: builds the flat arena by READING `labels` without
  // retaining a per-node copy (labels()/IntervalsOf() are then
  // unavailable — see HasLabels()).  Every query answers identically to
  // FromParts on the same inputs, but the export skips the deep copy of
  // the per-node IntervalSets — on publish-heavy services that copy (one
  // heap allocation per node) dominates export time.  Serialization needs
  // the per-node sets, so persist FromParts closures, not these.
  static CompressedClosure FromPartsQueryOnly(const NodeLabels& labels,
                                              TreeCover tree_cover);
  static CompressedClosure FromPartsQueryOnly(const NodeLabels& labels,
                                              TreeCover tree_cover,
                                              ExportHints hints);

  // Copy-on-write overlay constructor: a closure that answers exactly
  // like a full export of the labeling `delta` was taken from, built in
  // O(|overlay| log |overlay| + n) by sharing every unchanged node's
  // storage with `base`.  `delta` must come from the same index lineage
  // as `base` (same node ids, monotone node count) and list every node
  // that changed since `base` was exported — DynamicClosure::ExportDelta()
  // guarantees both.  Chaining is flattened: building from an overlay
  // closure merges the accumulated overlay, so lookups never walk a
  // chain; publishers bound the overlay's growth by forcing a periodic
  // full export (see ServiceOptions::max_delta_publishes).
  static CompressedClosure WithDelta(const CompressedClosure& base,
                                     const ClosureDelta& delta);

  // True iff there is a directed path from `u` to `v` (every node reaches
  // itself).  Two flat array loads in the common case: u's slot (which
  // inlines its first interval) and v's slot (for the postorder number).
  bool Reaches(NodeId u, NodeId v) const {
    TREL_CHECK(IsValidNode(u));
    TREL_CHECK(IsValidNode(v));
    if (u == v) return true;
    if (overlay_.empty()) {
      // Warm u's filter line while v's slot load resolves.
      arena_->PrefetchSource(u);
      return ArenaContains(*arena_, *kernels_, u, arena_->slots[v].postorder);
    }
    return ReachesWithOverlay(u, v);
  }

  // Batch point lookups over one consistent closure, answered by the
  // dispatched software-pipelined kernel (see arena_kernels.h): slot and
  // filter prefetches run several queries ahead of the resolve point,
  // runs of equal sources share one 512-bit group filter test, and
  // surviving descents interleave so their misses overlap.  Unlike
  // Reaches, out-of-range ids answer 0 rather than aborting (snapshot
  // semantics — the service's batch path feeds ids readers took from
  // other epochs).  `out` must have room for `n`; `stats`, when non-null,
  // accumulates kernel tallies for service metrics.
  void BatchReaches(const std::pair<NodeId, NodeId>* pairs, int64_t n,
                    uint8_t* out, BatchKernelStats* stats) const;
  void BatchReaches(const std::pair<NodeId, NodeId>* pairs, int64_t n,
                    uint8_t* out) const {
    BatchReaches(pairs, n, out, nullptr);
  }
  std::vector<uint8_t> BatchReaches(
      const std::vector<std::pair<NodeId, NodeId>>& pairs) const {
    std::vector<uint8_t> out(pairs.size());
    BatchReaches(pairs.data(), static_cast<int64_t>(pairs.size()), out.data());
    return out;
  }

  // Traced twins for the obs sampler: identical answers, plus how each
  // probe was decided.  Both use snapshot semantics (out-of-range ids
  // answer 0, tag kSlot) so the service can call them without
  // pre-validating sampled queries.  Never on the untraced hot path.
  bool ReachesTraced(NodeId u, NodeId v, ProbeTrace* trace) const;
  // `tags[i]` receives the ProbeTag that decided query i.  Overlay
  // snapshots take the per-query traced path (and, like BatchReaches,
  // leave `stats` untouched); overlay-free batches go through the
  // dispatched tagged kernel.
  void BatchReachesTraced(const std::pair<NodeId, NodeId>* pairs, int64_t n,
                          uint8_t* out, BatchKernelStats* stats,
                          uint8_t* tags) const;

  // All nodes reachable from `u`, excluding `u` itself, in ascending
  // postorder-number order.  Walks the flat directory: one bulk copy per
  // interval on full exports.
  std::vector<NodeId> Successors(NodeId u) const;

  // All nodes that reach `v`, excluding `v` itself.  One linear sweep of
  // the arena's slot array (sequential, prefetch-friendly); the structure
  // is optimized for forward queries, matching the paper's successor-list
  // framing.
  std::vector<NodeId> Predecessors(NodeId v) const;

  // Number of successors of `u` (excluding `u`), without materializing
  // them.
  int64_t CountSuccessors(NodeId u) const;

  NodeId NumNodes() const { return num_nodes_; }
  bool IsValidNode(NodeId v) const { return v >= 0 && v < NumNodes(); }

  // The paper's storage measures.
  int64_t TotalIntervals() const { return total_intervals_; }
  int64_t StorageUnits() const { return 2 * total_intervals_; }

  // Number of nodes whose labels live in the overlay rather than the
  // shared base (0 for full exports).  Grows monotonically along a
  // WithDelta chain until the next full export.
  int64_t OverlayNodeCount() const {
    return static_cast<int64_t>(overlay_.size());
  }
  bool IsOverlay() const { return !overlay_.empty(); }

  // True iff `v`'s label entry lives in the overlay (always false on full
  // exports).  One flat byte load; used by the snapshot layer to decide
  // whether a family index built at the base epoch may answer for `v`.
  bool IsOverlayMember(NodeId v) const {
    TREL_CHECK(IsValidNode(v));
    return !overlay_.empty() && overlay_member_[v] != 0;
  }

  // Introspection (used by tests, benches, and the dynamic index).
  // `labels()`, `tree_cover()`, and `arena()` expose the shared *base*
  // layer: exact for full exports, stale for overlaid nodes of a
  // WithDelta closure (use PostorderOf/IntervalsOf for overlay-aware
  // per-node access).
  //
  // False iff this closure (or the base of its WithDelta chain) was
  // exported with FromPartsQueryOnly: labels() is then empty and
  // IntervalsOf() aborts; every query API works regardless.
  bool HasLabels() const {
    return labels_->postorder.size() ==
           static_cast<size_t>(arena_->num_nodes());
  }
  const NodeLabels& labels() const { return *labels_; }
  const TreeCover& tree_cover() const { return *tree_cover_; }
  const LabelArena& arena() const { return *arena_; }
  // Bytes pinned by the flat arena (slots + extras + directory).
  int64_t ArenaByteSize() const { return arena_->ByteSize(); }
  Label PostorderOf(NodeId v) const {
    TREL_CHECK(IsValidNode(v));
    return EffectivePostorder(v);
  }
  const IntervalSet& IntervalsOf(NodeId v) const {
    TREL_CHECK(IsValidNode(v));
    return EffectiveIntervals(v);
  }
  // Overlay-aware interval count without touching per-node heap storage.
  int64_t IntervalCountOf(NodeId v) const {
    TREL_CHECK(IsValidNode(v));
    if (!overlay_.empty() && overlay_member_[v] != 0) {
      return overlay_.find(v)->second.intervals.size();
    }
    return arena_->IntervalCount(v);
  }

 private:
  // One overlaid node's label state (mirrors NodeLabelDelta minus the id).
  struct OverlayEntry {
    Label postorder;
    Interval tree_interval;
    IntervalSet intervals;
  };

  // A node's postorder number plus where its intervals live, resolved
  // with AT MOST ONE overlay probe (the old EffectiveIntervals +
  // EffectivePostorder pair cost two `overlay_.find`s per node).
  struct EffectiveLabel {
    Label postorder;
    // Non-null iff the node's intervals live in the overlay; otherwise
    // they are the arena run of the node.
    const IntervalSet* overlay_intervals;
  };

  // Builds the arena by reading `labels`; `retained` is what labels_
  // keeps afterwards — the same data for FromParts, an empty set for
  // FromPartsQueryOnly.
  CompressedClosure(const NodeLabels& labels,
                    std::shared_ptr<const NodeLabels> retained,
                    TreeCover tree_cover, ExportHints hints);

  EffectiveLabel EffectiveLabelOf(NodeId v) const {
    if (!overlay_.empty() && overlay_member_[v] != 0) {
      const OverlayEntry& entry = overlay_.find(v)->second;
      return {entry.postorder, &entry.intervals};
    }
    return {arena_->slots[v].postorder, nullptr};
  }

  const IntervalSet& EffectiveIntervals(NodeId v) const {
    if (!overlay_.empty() && overlay_member_[v] != 0) {
      return overlay_.find(v)->second.intervals;
    }
    TREL_CHECK(HasLabels())
        << "per-node IntervalSets were dropped by FromPartsQueryOnly; use "
           "IntervalCountOf/queries, or export with FromParts";
    return labels_->intervals[v];
  }
  Label EffectivePostorder(NodeId v) const {
    if (!overlay_.empty() && overlay_member_[v] != 0) {
      return overlay_.find(v)->second.postorder;
    }
    return arena_->slots[v].postorder;
  }

  // Overlay-aware slow path behind Reaches' arena fast path.
  bool ReachesWithOverlay(NodeId u, NodeId v) const;

  // Rebuilds overlay_by_postorder_, stale_labels_, and overlay_member_
  // from overlay_.
  void ReindexOverlay();

  // Nodes listed in the closed interval [lo, hi] of postorder numbers,
  // except the node numbered `skip` (pass a number outside [lo, hi] to
  // keep everything).  Full exports bulk-copy directory runs; overlays
  // merge the base directory (minus stale entries) with the overlay
  // directory, ascending.
  void AppendNodesInRange(Label lo, Label hi, Label skip,
                          std::vector<NodeId>& out) const;
  // Number of assigned postorder numbers in [lo, hi]; pure binary search.
  int64_t CountNodesInRange(Label lo, Label hi) const;

  // --- Shared base layer (immutable once built, never overlaid) ---------
  std::shared_ptr<const NodeLabels> labels_;
  std::shared_ptr<const TreeCover> tree_cover_;
  // Flat query-path storage mirroring labels_ (see label_arena.h).
  std::shared_ptr<const LabelArena> arena_;
  // Process-wide dispatched kernel table (never null); resolved once at
  // first use, so every closure in the process probes with the same ISA
  // level.  See simd_dispatch.h.
  const ArenaKernels* kernels_ = &ActiveKernels();

  // --- Overlay layer (empty for full exports) ---------------------------
  // Changed/new nodes and their current labels.
  std::unordered_map<NodeId, OverlayEntry> overlay_;
  // (postorder number, node) over overlay_ members, sorted by number.
  std::vector<std::pair<Label, NodeId>> overlay_by_postorder_;
  // Base postorder numbers superseded by the overlay (sorted); base
  // directory entries carrying these numbers are skipped.
  std::vector<Label> stale_labels_;
  // overlay_member_[v] != 0 iff v has an overlay_ entry: one O(1) flat
  // load gates the hash probe, so queries touching only base nodes do no
  // probing at all.  Sized num_nodes_; empty when the overlay is empty.
  std::vector<uint8_t> overlay_member_;

  NodeId num_nodes_ = 0;
  int64_t total_intervals_ = 0;
};

}  // namespace trel

#endif  // TREL_CORE_COMPRESSED_CLOSURE_H_
