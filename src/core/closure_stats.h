#ifndef TREL_CORE_CLOSURE_STATS_H_
#define TREL_CORE_CLOSURE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/compressed_closure.h"
#include "graph/digraph.h"

namespace trel {

// Descriptive statistics of a compressed closure, for the CLI `stats`
// command, benches, and regression tests.  All quantities derive from
// the labels; nothing here affects queries.
struct ClosureStats {
  int64_t num_nodes = 0;
  int64_t num_arcs = 0;
  int64_t num_tree_arcs = 0;
  int64_t num_roots = 0;

  int64_t total_intervals = 0;
  int64_t storage_units = 0;  // 2 * total_intervals (paper's measure).
  // Bytes held by the closure's flat query arena (slots + Eytzinger
  // extras + filters + directory) — the machine-level counterpart of the
  // paper's abstract storage-unit measure.
  int64_t arena_bytes = 0;
  int64_t max_intervals_per_node = 0;
  double avg_intervals_per_node = 0.0;
  // interval_histogram[k] = number of nodes carrying exactly k intervals,
  // for k in [0, interval_histogram.size()); the last bucket aggregates
  // everything at or above it.
  std::vector<int64_t> interval_histogram;

  int64_t tree_depth_max = 0;  // Root depth = 0.
  double tree_depth_avg = 0.0;

  // Fraction of nodes answerable from their single tree interval — the
  // paper's best case ("Most successors of a node can be reached solely
  // through tree arcs").
  double single_interval_fraction = 0.0;

  std::string ToString() const;
};

// Computes stats for `closure` built over `graph`.  `histogram_buckets`
// bounds the histogram length (>= 2).
ClosureStats ComputeClosureStats(const Digraph& graph,
                                 const CompressedClosure& closure,
                                 int histogram_buckets = 8);

}  // namespace trel

#endif  // TREL_CORE_CLOSURE_STATS_H_
