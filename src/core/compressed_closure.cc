#include "core/compressed_closure.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"

namespace trel {

const char* ProbeTagName(ProbeTag tag) {
  switch (tag) {
    case ProbeTag::kSlot:
      return "slot";
    case ProbeTag::kFilterReject:
      return "filter";
    case ProbeTag::kGroupReject:
      return "group";
    case ProbeTag::kExtrasSearch:
      return "extras";
    case ProbeTag::kOverlay:
      return "overlay";
    case ProbeTag::kHopIntersect:
      return "hop";
    case ProbeTag::kFallback:
      return "fallback";
    case ProbeTag::kBoundaryBitset:
      return "boundary";
  }
  return "unknown";
}

namespace {

// Comparator for binary searches over the overlay (postorder, node)
// directory.
bool EntryBelow(const std::pair<Label, NodeId>& e, Label x) {
  return e.first < x;
}
bool AboveEntry(Label x, const std::pair<Label, NodeId>& e) {
  return x < e.first;
}

}  // namespace

CompressedClosure::CompressedClosure()
    : labels_(std::make_shared<const NodeLabels>()),
      tree_cover_(std::make_shared<const TreeCover>()),
      arena_(std::make_shared<const LabelArena>()) {}

CompressedClosure::CompressedClosure(
    const NodeLabels& labels, std::shared_ptr<const NodeLabels> retained,
    TreeCover tree_cover, ExportHints hints) {
  num_nodes_ = static_cast<NodeId>(labels.postorder.size());
  Stopwatch arena_timer;
  auto arena = std::make_shared<LabelArena>(BuildLabelArena(
      labels, std::move(hints.sorted_directory), hints.runner));
  if (hints.arena_micros != nullptr) {
    *hints.arena_micros = arena_timer.ElapsedMicros();
  }
  // The interval total falls out of the arena shape: every non-empty
  // first plus each slot's extras (extras.size() would overcount — runs
  // carry a summary slot).
  total_intervals_ = 0;
  for (const LabelArena::NodeSlot& slot : arena->slots) {
    total_intervals_ += (slot.first.lo <= slot.first.hi ? 1 : 0) +
                        static_cast<int64_t>(slot.extra_count);
  }
  arena_ = std::move(arena);
  labels_ = std::move(retained);
  tree_cover_ = std::make_shared<const TreeCover>(std::move(tree_cover));
}

StatusOr<CompressedClosure> CompressedClosure::Build(
    const Digraph& graph, const ClosureOptions& options) {
  TREL_ASSIGN_OR_RETURN(TreeCover cover,
                        ComputeTreeCover(graph, options.strategy,
                                         options.seed));
  ReorderChildren(cover, options.child_order);
  TREL_ASSIGN_OR_RETURN(NodeLabels labels,
                        BuildLabels(graph, cover, options.labeling));
  auto owned = std::make_shared<const NodeLabels>(std::move(labels));
  return CompressedClosure(*owned, owned, std::move(cover), {});
}

CompressedClosure CompressedClosure::FromParts(NodeLabels labels,
                                               TreeCover tree_cover) {
  return FromParts(std::move(labels), std::move(tree_cover), {});
}

CompressedClosure CompressedClosure::FromParts(NodeLabels labels,
                                               TreeCover tree_cover,
                                               ExportHints hints) {
  TREL_CHECK_EQ(labels.postorder.size(), labels.intervals.size());
  TREL_CHECK_EQ(labels.postorder.size(), tree_cover.parent.size());
  auto owned = std::make_shared<const NodeLabels>(std::move(labels));
  return CompressedClosure(*owned, owned, std::move(tree_cover),
                           std::move(hints));
}

CompressedClosure CompressedClosure::FromPartsQueryOnly(
    const NodeLabels& labels, TreeCover tree_cover) {
  return FromPartsQueryOnly(labels, std::move(tree_cover), ExportHints());
}

CompressedClosure CompressedClosure::FromPartsQueryOnly(
    const NodeLabels& labels, TreeCover tree_cover, ExportHints hints) {
  TREL_CHECK_EQ(labels.postorder.size(), labels.intervals.size());
  TREL_CHECK_EQ(labels.postorder.size(), tree_cover.parent.size());
  return CompressedClosure(labels, std::make_shared<const NodeLabels>(),
                           std::move(tree_cover), std::move(hints));
}

CompressedClosure CompressedClosure::WithDelta(const CompressedClosure& base,
                                               const ClosureDelta& delta) {
  TREL_CHECK_GE(delta.num_nodes, base.num_nodes_)
      << "node ids are never recycled; a shrinking universe means the delta "
         "came from a different index lineage";
  CompressedClosure result;
  result.labels_ = base.labels_;
  result.tree_cover_ = base.tree_cover_;
  result.arena_ = base.arena_;
  result.overlay_ = base.overlay_;
  result.num_nodes_ = delta.num_nodes;

  const NodeId base_layer_nodes = base.arena_->num_nodes();
  int64_t total = base.total_intervals_;
  NodeId prev = kNoNode;
  NodeId new_nodes_seen = 0;
  for (const NodeLabelDelta& entry : delta.entries) {
    TREL_CHECK_GT(entry.node, prev) << "delta entries must be sorted by node";
    TREL_CHECK_LT(entry.node, delta.num_nodes);
    prev = entry.node;
    if (entry.node >= base.num_nodes_) ++new_nodes_seen;
    // Adjust the interval total by what this entry replaces: a previous
    // overlay entry, a base-layer label, or nothing (new node).
    int64_t replaced = 0;
    auto it = result.overlay_.find(entry.node);
    if (it != result.overlay_.end()) {
      replaced = it->second.intervals.size();
      it->second = OverlayEntry{entry.postorder, entry.tree_interval,
                                entry.intervals};
    } else {
      if (entry.node < base_layer_nodes) {
        replaced = base.arena_->IntervalCount(entry.node);
      }
      result.overlay_.emplace(
          entry.node, OverlayEntry{entry.postorder, entry.tree_interval,
                                   entry.intervals});
    }
    total += entry.intervals.size() - replaced;
  }
  TREL_CHECK_EQ(new_nodes_seen, delta.num_nodes - base.num_nodes_)
      << "every node added since the base export must appear in the delta";
  result.total_intervals_ = total;
  result.ReindexOverlay();
  return result;
}

void CompressedClosure::ReindexOverlay() {
  overlay_by_postorder_.clear();
  stale_labels_.clear();
  overlay_by_postorder_.reserve(overlay_.size());
  overlay_member_.assign(static_cast<size_t>(num_nodes_), 0);
  const NodeId base_layer_nodes = arena_->num_nodes();
  for (const auto& [node, entry] : overlay_) {
    overlay_member_[node] = 1;
    overlay_by_postorder_.emplace_back(entry.postorder, node);
    if (node < base_layer_nodes) {
      stale_labels_.push_back(arena_->slots[node].postorder);
    }
  }
  std::sort(overlay_by_postorder_.begin(), overlay_by_postorder_.end());
  std::sort(stale_labels_.begin(), stale_labels_.end());
}

bool CompressedClosure::ReachesWithOverlay(NodeId u, NodeId v) const {
  const Label target = EffectivePostorder(v);
  const EffectiveLabel source = EffectiveLabelOf(u);
  if (source.overlay_intervals != nullptr) {
    return source.overlay_intervals->Contains(target);
  }
  return ArenaContains(*arena_, *kernels_, u, target);
}

void CompressedClosure::BatchReaches(const std::pair<NodeId, NodeId>* pairs,
                                     int64_t n, uint8_t* out,
                                     BatchKernelStats* stats) const {
  if (n <= 0) return;
  if (!overlay_.empty()) {
    // Overlay snapshots take the per-query path; their hash probes are
    // already gated by the overlay_member_ byte array.
    const uint32_t num = static_cast<uint32_t>(num_nodes_);
    // One unsigned compare covers both negative ids and ids past the end.
    const auto valid = [num](NodeId id) {
      return static_cast<uint32_t>(id) < num;
    };
    for (int64_t i = 0; i < n; ++i) {
      const auto [u, v] = pairs[i];
      out[i] = valid(u) && valid(v) && (u == v || ReachesWithOverlay(u, v))
                   ? 1
                   : 0;
    }
    return;
  }
  // Overlay-free: the whole batch goes through the dispatched
  // software-pipelined kernel (the arena covers all num_nodes_ ids).
  kernels_->batch_reaches(*arena_, pairs, n, out, stats);
}

bool CompressedClosure::ReachesTraced(NodeId u, NodeId v,
                                      ProbeTrace* trace) const {
  trace->tag = ProbeTag::kSlot;
  trace->extras_probes = 0;
  const uint32_t num = static_cast<uint32_t>(num_nodes_);
  if (static_cast<uint32_t>(u) >= num || static_cast<uint32_t>(v) >= num) {
    return false;
  }
  if (u == v) return true;
  if (!overlay_.empty()) {
    const Label target = EffectivePostorder(v);
    const EffectiveLabel source = EffectiveLabelOf(u);
    if (source.overlay_intervals != nullptr) {
      trace->tag = ProbeTag::kOverlay;
      return source.overlay_intervals->Contains(target);
    }
    return ArenaContainsTraced(*arena_, u, target, trace);
  }
  return ArenaContainsTraced(*arena_, u, arena_->slots[v].postorder, trace);
}

void CompressedClosure::BatchReachesTraced(
    const std::pair<NodeId, NodeId>* pairs, int64_t n, uint8_t* out,
    BatchKernelStats* stats, uint8_t* tags) const {
  if (n <= 0) return;
  if (!overlay_.empty()) {
    for (int64_t i = 0; i < n; ++i) {
      ProbeTrace trace;
      out[i] = ReachesTraced(pairs[i].first, pairs[i].second, &trace) ? 1 : 0;
      tags[i] = static_cast<uint8_t>(trace.tag);
    }
    return;
  }
  kernels_->batch_reaches_tagged(*arena_, pairs, n, out, stats, tags);
}

void CompressedClosure::AppendNodesInRange(Label lo, Label hi, Label skip,
                                           std::vector<NodeId>& out) const {
  const LabelArena& arena = *arena_;
  int64_t base_it = arena.DirLowerBound(lo);
  const int64_t base_end = static_cast<int64_t>(arena.dir_labels.size());
  if (overlay_.empty()) {
    // Full export: the directory run [lo, hi] is contiguous — bulk-copy
    // it, splitting around the (unique) skip label if present.
    const int64_t end = arena.DirUpperBound(hi);
    const NodeId* nodes = arena.dir_nodes.data();
    if (lo <= skip && skip <= hi) {
      const int64_t s = arena.DirLowerBound(skip);
      if (s < end && arena.dir_labels[s] == skip) {
        out.insert(out.end(), nodes + base_it, nodes + s);
        out.insert(out.end(), nodes + s + 1, nodes + end);
        return;
      }
    }
    out.insert(out.end(), nodes + base_it, nodes + end);
    return;
  }
  auto stale_it =
      std::lower_bound(stale_labels_.begin(), stale_labels_.end(), lo);
  auto over_it = std::lower_bound(overlay_by_postorder_.begin(),
                                  overlay_by_postorder_.end(), lo, EntryBelow);
  // Skip base entries whose number the overlay superseded.  Both runs are
  // sorted, so the stale cursor only ever moves forward.
  auto skip_stale = [&] {
    while (base_it < base_end && arena.dir_labels[base_it] <= hi) {
      while (stale_it != stale_labels_.end() &&
             *stale_it < arena.dir_labels[base_it]) {
        ++stale_it;
      }
      if (stale_it != stale_labels_.end() &&
          *stale_it == arena.dir_labels[base_it]) {
        ++base_it;
        continue;
      }
      break;
    }
  };
  skip_stale();
  for (;;) {
    const bool base_ok = base_it < base_end && arena.dir_labels[base_it] <= hi;
    const bool over_ok = over_it != overlay_by_postorder_.end() &&
                         over_it->first <= hi;
    if (!base_ok && !over_ok) break;
    if (base_ok && (!over_ok || arena.dir_labels[base_it] < over_it->first)) {
      if (arena.dir_labels[base_it] != skip) {
        out.push_back(arena.dir_nodes[base_it]);
      }
      ++base_it;
      skip_stale();
    } else {
      if (over_it->first != skip) out.push_back(over_it->second);
      ++over_it;
    }
  }
}

int64_t CompressedClosure::CountNodesInRange(Label lo, Label hi) const {
  const LabelArena& arena = *arena_;
  int64_t count = arena.DirUpperBound(hi) - arena.DirLowerBound(lo);
  if (!overlay_.empty()) {
    count -=
        std::upper_bound(stale_labels_.begin(), stale_labels_.end(), hi) -
        std::lower_bound(stale_labels_.begin(), stale_labels_.end(), lo);
    count += std::upper_bound(overlay_by_postorder_.begin(),
                              overlay_by_postorder_.end(), hi, AboveEntry) -
             std::lower_bound(overlay_by_postorder_.begin(),
                              overlay_by_postorder_.end(), lo, EntryBelow);
  }
  return count;
}

namespace {

// Applies `visit` (returning false to stop) to a node's effective
// intervals in ascending (lo, hi) order: the overlay IntervalSet when the
// node is overlaid, else the arena's inline first interval followed by an
// in-order walk of its Eytzinger extras run.
template <typename Fn>
void VisitEffectiveIntervals(const LabelArena& arena, NodeId u,
                             const IntervalSet* overlay_intervals,
                             Fn&& visit) {
  if (overlay_intervals != nullptr) {
    for (const Interval& interval : overlay_intervals->intervals()) {
      if (!visit(interval)) return;
    }
    return;
  }
  const LabelArena::NodeSlot& slot = arena.slots[u];
  if (slot.first.lo <= slot.first.hi && !visit(slot.first)) return;
  arena.ForEachExtra(u, visit);
}

}  // namespace

std::vector<NodeId> CompressedClosure::Successors(NodeId u) const {
  TREL_CHECK(IsValidNode(u));
  std::vector<NodeId> result;
  // Interval-set members are an antichain sorted by lo with increasing hi;
  // consecutive members may still overlap, so advance a cursor to avoid
  // double-listing.  The node's own tree interval contains its own number;
  // skipping it during enumeration (rather than erasing afterwards) keeps
  // this O(output) instead of O(output) + a linear scan.
  const EffectiveLabel eff = EffectiveLabelOf(u);
  const Label self = eff.postorder;
  Label cursor = std::numeric_limits<Label>::min();
  VisitEffectiveIntervals(
      *arena_, u, eff.overlay_intervals, [&](const Interval& interval) {
        const Label lo = std::max(interval.lo, cursor);
        if (lo > interval.hi) return true;
        AppendNodesInRange(lo, interval.hi, self, result);
        if (interval.hi == std::numeric_limits<Label>::max()) return false;
        cursor = interval.hi + 1;
        return true;
      });
  return result;
}

int64_t CompressedClosure::CountSuccessors(NodeId u) const {
  TREL_CHECK(IsValidNode(u));
  const EffectiveLabel eff = EffectiveLabelOf(u);
  const Label self = eff.postorder;
  int64_t count = 0;
  bool self_counted = false;
  Label cursor = std::numeric_limits<Label>::min();
  VisitEffectiveIntervals(
      *arena_, u, eff.overlay_intervals, [&](const Interval& interval) {
        const Label lo = std::max(interval.lo, cursor);
        if (lo > interval.hi) return true;
        count += CountNodesInRange(lo, interval.hi);
        // The cursor guarantees clipped ranges are disjoint, so u's own
        // number is counted at most once across the loop.
        if (lo <= self && self <= interval.hi) self_counted = true;
        if (interval.hi == std::numeric_limits<Label>::max()) return false;
        cursor = interval.hi + 1;
        return true;
      });
  return self_counted ? count - 1 : count;
}

std::vector<NodeId> CompressedClosure::Predecessors(NodeId v) const {
  TREL_CHECK(IsValidNode(v));
  std::vector<NodeId> result;
  const Label target = EffectivePostorder(v);
  const LabelArena& arena = *arena_;
  if (overlay_.empty()) {
    // One linear sweep of the slot array; extras are only consulted for
    // the minority of nodes whose first interval ends below the target.
    const NodeId n = arena.num_nodes();
    for (NodeId u = 0; u < n; ++u) {
      if (u != v && ArenaContains(arena, *kernels_, u, target)) {
        result.push_back(u);
      }
    }
    return result;
  }
  for (NodeId u = 0; u < NumNodes(); ++u) {
    if (u == v) continue;
    if (overlay_member_[u] != 0) {
      if (overlay_.find(u)->second.intervals.Contains(target)) {
        result.push_back(u);
      }
    } else if (ArenaContains(arena, *kernels_, u, target)) {
      result.push_back(u);
    }
  }
  return result;
}

}  // namespace trel
