#include "core/compressed_closure.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace trel {

CompressedClosure::CompressedClosure(NodeLabels labels, TreeCover tree_cover)
    : labels_(std::move(labels)), tree_cover_(std::move(tree_cover)) {
  by_postorder_.reserve(labels_.postorder.size());
  for (NodeId v = 0; v < static_cast<NodeId>(labels_.postorder.size()); ++v) {
    by_postorder_.emplace_back(labels_.postorder[v], v);
  }
  std::sort(by_postorder_.begin(), by_postorder_.end());
}

StatusOr<CompressedClosure> CompressedClosure::Build(
    const Digraph& graph, const ClosureOptions& options) {
  TREL_ASSIGN_OR_RETURN(TreeCover cover,
                        ComputeTreeCover(graph, options.strategy,
                                         options.seed));
  ReorderChildren(cover, options.child_order);
  TREL_ASSIGN_OR_RETURN(NodeLabels labels,
                        BuildLabels(graph, cover, options.labeling));
  return CompressedClosure(std::move(labels), std::move(cover));
}

CompressedClosure CompressedClosure::FromParts(NodeLabels labels,
                                               TreeCover tree_cover) {
  TREL_CHECK_EQ(labels.postorder.size(), labels.intervals.size());
  TREL_CHECK_EQ(labels.postorder.size(), tree_cover.parent.size());
  return CompressedClosure(std::move(labels), std::move(tree_cover));
}

void CompressedClosure::AppendNodesInRange(Label lo, Label hi, Label skip,
                                           std::vector<NodeId>& out) const {
  auto it = std::lower_bound(
      by_postorder_.begin(), by_postorder_.end(), lo,
      [](const std::pair<Label, NodeId>& e, Label x) { return e.first < x; });
  for (; it != by_postorder_.end() && it->first <= hi; ++it) {
    if (it->first == skip) continue;
    out.push_back(it->second);
  }
}

std::vector<NodeId> CompressedClosure::Successors(NodeId u) const {
  TREL_CHECK(IsValidNode(u));
  std::vector<NodeId> result;
  // Interval-set members are an antichain sorted by lo with increasing hi;
  // consecutive members may still overlap, so advance a cursor to avoid
  // double-listing.  The node's own tree interval contains its own number;
  // skipping it during enumeration (rather than erasing afterwards) keeps
  // this O(output) instead of O(output) + a linear scan.
  const Label self = labels_.postorder[u];
  Label cursor = std::numeric_limits<Label>::min();
  for (const Interval& interval : labels_.intervals[u].intervals()) {
    const Label lo = std::max(interval.lo, cursor);
    if (lo > interval.hi) continue;
    AppendNodesInRange(lo, interval.hi, self, result);
    if (interval.hi == std::numeric_limits<Label>::max()) break;
    cursor = interval.hi + 1;
  }
  return result;
}

int64_t CompressedClosure::CountSuccessors(NodeId u) const {
  TREL_CHECK(IsValidNode(u));
  const Label self = labels_.postorder[u];
  int64_t count = 0;
  bool self_counted = false;
  Label cursor = std::numeric_limits<Label>::min();
  for (const Interval& interval : labels_.intervals[u].intervals()) {
    const Label lo = std::max(interval.lo, cursor);
    if (lo > interval.hi) continue;
    auto first = std::lower_bound(
        by_postorder_.begin(), by_postorder_.end(), lo,
        [](const std::pair<Label, NodeId>& e, Label x) {
          return e.first < x;
        });
    auto last = std::upper_bound(
        by_postorder_.begin(), by_postorder_.end(), interval.hi,
        [](Label x, const std::pair<Label, NodeId>& e) {
          return x < e.first;
        });
    count += last - first;
    // The cursor guarantees clipped ranges are disjoint, so u's own number
    // is counted at most once across the loop.
    if (lo <= self && self <= interval.hi) self_counted = true;
    if (interval.hi == std::numeric_limits<Label>::max()) break;
    cursor = interval.hi + 1;
  }
  return self_counted ? count - 1 : count;
}

std::vector<NodeId> CompressedClosure::Predecessors(NodeId v) const {
  TREL_CHECK(IsValidNode(v));
  std::vector<NodeId> result;
  const Label target = labels_.postorder[v];
  for (NodeId u = 0; u < NumNodes(); ++u) {
    if (u != v && labels_.intervals[u].Contains(target)) result.push_back(u);
  }
  return result;
}

}  // namespace trel
