#include "core/compressed_closure.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace trel {

CompressedClosure::CompressedClosure(NodeLabels labels, TreeCover tree_cover)
    : labels_(std::move(labels)), tree_cover_(std::move(tree_cover)) {
  by_postorder_.reserve(labels_.postorder.size());
  for (NodeId v = 0; v < static_cast<NodeId>(labels_.postorder.size()); ++v) {
    by_postorder_.emplace_back(labels_.postorder[v], v);
  }
  std::sort(by_postorder_.begin(), by_postorder_.end());
}

StatusOr<CompressedClosure> CompressedClosure::Build(
    const Digraph& graph, const ClosureOptions& options) {
  TREL_ASSIGN_OR_RETURN(TreeCover cover,
                        ComputeTreeCover(graph, options.strategy,
                                         options.seed));
  ReorderChildren(cover, options.child_order);
  TREL_ASSIGN_OR_RETURN(NodeLabels labels,
                        BuildLabels(graph, cover, options.labeling));
  return CompressedClosure(std::move(labels), std::move(cover));
}

void CompressedClosure::AppendNodesInRange(Label lo, Label hi,
                                           std::vector<NodeId>& out) const {
  auto it = std::lower_bound(
      by_postorder_.begin(), by_postorder_.end(), lo,
      [](const std::pair<Label, NodeId>& e, Label x) { return e.first < x; });
  for (; it != by_postorder_.end() && it->first <= hi; ++it) {
    out.push_back(it->second);
  }
}

std::vector<NodeId> CompressedClosure::Successors(NodeId u) const {
  TREL_CHECK(IsValidNode(u));
  std::vector<NodeId> result;
  // Interval-set members are an antichain sorted by lo with increasing hi;
  // consecutive members may still overlap, so advance a cursor to avoid
  // double-listing.
  Label cursor = std::numeric_limits<Label>::min();
  for (const Interval& interval : labels_.intervals[u].intervals()) {
    const Label lo = std::max(interval.lo, cursor);
    if (lo > interval.hi) continue;
    AppendNodesInRange(lo, interval.hi, result);
    cursor = interval.hi + 1;
  }
  // The node's own tree interval contains its own number; drop it to match
  // successor-list semantics.
  auto self = std::find(result.begin(), result.end(), u);
  if (self != result.end()) result.erase(self);
  return result;
}

int64_t CompressedClosure::CountSuccessors(NodeId u) const {
  TREL_CHECK(IsValidNode(u));
  int64_t count = 0;
  Label cursor = std::numeric_limits<Label>::min();
  for (const Interval& interval : labels_.intervals[u].intervals()) {
    const Label lo = std::max(interval.lo, cursor);
    if (lo > interval.hi) continue;
    auto first = std::lower_bound(
        by_postorder_.begin(), by_postorder_.end(), lo,
        [](const std::pair<Label, NodeId>& e, Label x) {
          return e.first < x;
        });
    auto last = std::upper_bound(
        by_postorder_.begin(), by_postorder_.end(), interval.hi,
        [](Label x, const std::pair<Label, NodeId>& e) {
          return x < e.first;
        });
    count += last - first;
    cursor = interval.hi + 1;
  }
  return count - 1;  // Exclude u itself.
}

std::vector<NodeId> CompressedClosure::Predecessors(NodeId v) const {
  TREL_CHECK(IsValidNode(v));
  std::vector<NodeId> result;
  const Label target = labels_.postorder[v];
  for (NodeId u = 0; u < NumNodes(); ++u) {
    if (u != v && labels_.intervals[u].Contains(target)) result.push_back(u);
  }
  return result;
}

}  // namespace trel
