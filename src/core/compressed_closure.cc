#include "core/compressed_closure.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace trel {

namespace {

// Comparators for binary searches over (postorder, node) directories.
bool EntryBelow(const std::pair<Label, NodeId>& e, Label x) {
  return e.first < x;
}
bool AboveEntry(Label x, const std::pair<Label, NodeId>& e) {
  return x < e.first;
}

}  // namespace

CompressedClosure::CompressedClosure()
    : labels_(std::make_shared<const NodeLabels>()),
      tree_cover_(std::make_shared<const TreeCover>()),
      by_postorder_(
          std::make_shared<const std::vector<std::pair<Label, NodeId>>>()) {}

CompressedClosure::CompressedClosure(NodeLabels labels, TreeCover tree_cover) {
  num_nodes_ = static_cast<NodeId>(labels.postorder.size());
  total_intervals_ = labels.TotalIntervals();
  auto directory = std::make_shared<std::vector<std::pair<Label, NodeId>>>();
  directory->reserve(labels.postorder.size());
  for (NodeId v = 0; v < num_nodes_; ++v) {
    directory->emplace_back(labels.postorder[v], v);
  }
  std::sort(directory->begin(), directory->end());
  by_postorder_ = std::move(directory);
  labels_ = std::make_shared<const NodeLabels>(std::move(labels));
  tree_cover_ = std::make_shared<const TreeCover>(std::move(tree_cover));
}

StatusOr<CompressedClosure> CompressedClosure::Build(
    const Digraph& graph, const ClosureOptions& options) {
  TREL_ASSIGN_OR_RETURN(TreeCover cover,
                        ComputeTreeCover(graph, options.strategy,
                                         options.seed));
  ReorderChildren(cover, options.child_order);
  TREL_ASSIGN_OR_RETURN(NodeLabels labels,
                        BuildLabels(graph, cover, options.labeling));
  return CompressedClosure(std::move(labels), std::move(cover));
}

CompressedClosure CompressedClosure::FromParts(NodeLabels labels,
                                               TreeCover tree_cover) {
  TREL_CHECK_EQ(labels.postorder.size(), labels.intervals.size());
  TREL_CHECK_EQ(labels.postorder.size(), tree_cover.parent.size());
  return CompressedClosure(std::move(labels), std::move(tree_cover));
}

CompressedClosure CompressedClosure::WithDelta(const CompressedClosure& base,
                                               const ClosureDelta& delta) {
  TREL_CHECK_GE(delta.num_nodes, base.num_nodes_)
      << "node ids are never recycled; a shrinking universe means the delta "
         "came from a different index lineage";
  CompressedClosure result;
  result.labels_ = base.labels_;
  result.tree_cover_ = base.tree_cover_;
  result.by_postorder_ = base.by_postorder_;
  result.overlay_ = base.overlay_;
  result.num_nodes_ = delta.num_nodes;

  const NodeId base_layer_nodes =
      static_cast<NodeId>(base.labels_->postorder.size());
  int64_t total = base.total_intervals_;
  NodeId prev = kNoNode;
  NodeId new_nodes_seen = 0;
  for (const NodeLabelDelta& entry : delta.entries) {
    TREL_CHECK_GT(entry.node, prev) << "delta entries must be sorted by node";
    TREL_CHECK_LT(entry.node, delta.num_nodes);
    prev = entry.node;
    if (entry.node >= base.num_nodes_) ++new_nodes_seen;
    // Adjust the interval total by what this entry replaces: a previous
    // overlay entry, a base-layer label, or nothing (new node).
    int64_t replaced = 0;
    auto it = result.overlay_.find(entry.node);
    if (it != result.overlay_.end()) {
      replaced = it->second.intervals.size();
      it->second = OverlayEntry{entry.postorder, entry.tree_interval,
                                entry.intervals};
    } else {
      if (entry.node < base_layer_nodes) {
        replaced = base.labels_->intervals[entry.node].size();
      }
      result.overlay_.emplace(
          entry.node, OverlayEntry{entry.postorder, entry.tree_interval,
                                   entry.intervals});
    }
    total += entry.intervals.size() - replaced;
  }
  TREL_CHECK_EQ(new_nodes_seen, delta.num_nodes - base.num_nodes_)
      << "every node added since the base export must appear in the delta";
  result.total_intervals_ = total;
  result.ReindexOverlay();
  return result;
}

void CompressedClosure::ReindexOverlay() {
  overlay_by_postorder_.clear();
  stale_labels_.clear();
  overlay_by_postorder_.reserve(overlay_.size());
  const NodeId base_layer_nodes =
      static_cast<NodeId>(labels_->postorder.size());
  for (const auto& [node, entry] : overlay_) {
    overlay_by_postorder_.emplace_back(entry.postorder, node);
    if (node < base_layer_nodes) {
      stale_labels_.push_back(labels_->postorder[node]);
    }
  }
  std::sort(overlay_by_postorder_.begin(), overlay_by_postorder_.end());
  std::sort(stale_labels_.begin(), stale_labels_.end());
}

void CompressedClosure::AppendNodesInRange(Label lo, Label hi, Label skip,
                                           std::vector<NodeId>& out) const {
  const auto& base = *by_postorder_;
  auto base_it = std::lower_bound(base.begin(), base.end(), lo, EntryBelow);
  auto stale_it =
      std::lower_bound(stale_labels_.begin(), stale_labels_.end(), lo);
  auto over_it = std::lower_bound(overlay_by_postorder_.begin(),
                                  overlay_by_postorder_.end(), lo, EntryBelow);
  // Skip base entries whose number the overlay superseded.  Both runs are
  // sorted, so the stale cursor only ever moves forward.
  auto skip_stale = [&] {
    while (base_it != base.end() && base_it->first <= hi) {
      while (stale_it != stale_labels_.end() && *stale_it < base_it->first) {
        ++stale_it;
      }
      if (stale_it != stale_labels_.end() && *stale_it == base_it->first) {
        ++base_it;
        continue;
      }
      break;
    }
  };
  skip_stale();
  for (;;) {
    const bool base_ok = base_it != base.end() && base_it->first <= hi;
    const bool over_ok = over_it != overlay_by_postorder_.end() &&
                         over_it->first <= hi;
    if (!base_ok && !over_ok) break;
    if (base_ok && (!over_ok || base_it->first < over_it->first)) {
      if (base_it->first != skip) out.push_back(base_it->second);
      ++base_it;
      skip_stale();
    } else {
      if (over_it->first != skip) out.push_back(over_it->second);
      ++over_it;
    }
  }
}

int64_t CompressedClosure::CountNodesInRange(Label lo, Label hi) const {
  const auto& base = *by_postorder_;
  int64_t count =
      std::upper_bound(base.begin(), base.end(), hi, AboveEntry) -
      std::lower_bound(base.begin(), base.end(), lo, EntryBelow);
  if (!overlay_.empty()) {
    count -=
        std::upper_bound(stale_labels_.begin(), stale_labels_.end(), hi) -
        std::lower_bound(stale_labels_.begin(), stale_labels_.end(), lo);
    count += std::upper_bound(overlay_by_postorder_.begin(),
                              overlay_by_postorder_.end(), hi, AboveEntry) -
             std::lower_bound(overlay_by_postorder_.begin(),
                              overlay_by_postorder_.end(), lo, EntryBelow);
  }
  return count;
}

std::vector<NodeId> CompressedClosure::Successors(NodeId u) const {
  TREL_CHECK(IsValidNode(u));
  std::vector<NodeId> result;
  // Interval-set members are an antichain sorted by lo with increasing hi;
  // consecutive members may still overlap, so advance a cursor to avoid
  // double-listing.  The node's own tree interval contains its own number;
  // skipping it during enumeration (rather than erasing afterwards) keeps
  // this O(output) instead of O(output) + a linear scan.
  const Label self = EffectivePostorder(u);
  Label cursor = std::numeric_limits<Label>::min();
  for (const Interval& interval : EffectiveIntervals(u).intervals()) {
    const Label lo = std::max(interval.lo, cursor);
    if (lo > interval.hi) continue;
    AppendNodesInRange(lo, interval.hi, self, result);
    if (interval.hi == std::numeric_limits<Label>::max()) break;
    cursor = interval.hi + 1;
  }
  return result;
}

int64_t CompressedClosure::CountSuccessors(NodeId u) const {
  TREL_CHECK(IsValidNode(u));
  const Label self = EffectivePostorder(u);
  int64_t count = 0;
  bool self_counted = false;
  Label cursor = std::numeric_limits<Label>::min();
  for (const Interval& interval : EffectiveIntervals(u).intervals()) {
    const Label lo = std::max(interval.lo, cursor);
    if (lo > interval.hi) continue;
    count += CountNodesInRange(lo, interval.hi);
    // The cursor guarantees clipped ranges are disjoint, so u's own number
    // is counted at most once across the loop.
    if (lo <= self && self <= interval.hi) self_counted = true;
    if (interval.hi == std::numeric_limits<Label>::max()) break;
    cursor = interval.hi + 1;
  }
  return self_counted ? count - 1 : count;
}

std::vector<NodeId> CompressedClosure::Predecessors(NodeId v) const {
  TREL_CHECK(IsValidNode(v));
  std::vector<NodeId> result;
  const Label target = EffectivePostorder(v);
  for (NodeId u = 0; u < NumNodes(); ++u) {
    if (u != v && EffectiveIntervals(u).Contains(target)) result.push_back(u);
  }
  return result;
}

}  // namespace trel
